// Package repro is a Go reproduction of Randles, Kale, Hammond, Gropp &
// Kaxiras, "Performance Analysis of the Lattice Boltzmann Model Beyond
// Navier-Stokes" (IPDPS 2013): a 3-D lattice Boltzmann solver with the
// standard D3Q19 and the higher-order D3Q39 discrete velocity models, a
// 1-D decomposed message-passing runtime, deep-halo ghost cells, the
// paper's full ladder of optimizations, its roofline performance model,
// and a discrete-event simulator that projects the solver's schedule onto
// the Blue Gene/P and Blue Gene/Q machine models to regenerate the paper's
// evaluation at scale.
//
// This package is the public façade: it re-exports the configuration and
// entry points a downstream user needs. The implementation lives in the
// internal packages (see DESIGN.md for the system inventory).
//
// Quick start:
//
//	res, err := repro.Run(repro.Config{
//		Model: repro.D3Q19(),
//		N:     repro.Dims{NX: 64, NY: 32, NZ: 32},
//		Tau:   0.8,
//		Steps: 100,
//		Opt:   repro.OptSIMD,
//		Ranks: 4, Threads: 2,
//		GhostDepth: 2,
//	})
//	fmt.Printf("%.1f MFlup/s\n", res.MFlups)
package repro

import (
	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/machine"
	"repro/internal/perfsim"
)

// Core solver types.
type (
	// Config describes one simulation; see core.Config for field docs.
	Config = core.Config
	// Result summarizes a completed run.
	Result = core.Result
	// OptLevel is a rung on the paper's optimization ladder.
	OptLevel = core.OptLevel
	// InitFunc provides the initial macroscopic state per lattice point.
	InitFunc = core.InitFunc
	// Dims is a 3-D box extent (z fastest).
	Dims = grid.Dims
	// Layout selects the field memory layout (SoA or AoS).
	Layout = grid.Layout
	// Model is a discrete velocity lattice.
	Model = lattice.Model
)

// Optimization levels (cumulative), the x-axis of the paper's Fig. 8.
const (
	OptOrig = core.OptOrig
	OptGC   = core.OptGC
	OptDH   = core.OptDH
	OptCF   = core.OptCF
	OptLoBr = core.OptLoBr
	OptNBC  = core.OptNBC
	OptGCC  = core.OptGCC
	OptSIMD = core.OptSIMD
)

// Memory layouts.
const (
	SoA = grid.SoA
	AoS = grid.AoS
)

// Global boundary conditions (non-periodic domains).
type (
	// BoundarySpec assigns a condition to each of the six global faces;
	// see core.BoundarySpec for semantics.
	BoundarySpec = core.BoundarySpec
	// BoundaryFace is the condition on one global face.
	BoundaryFace = core.Face
	// BCKind identifies a face condition.
	BCKind = core.BCKind
)

// Boundary face kinds.
const (
	BCPeriodic       = core.BCPeriodic
	BCWall           = core.BCWall
	BCMovingWall     = core.BCMovingWall
	BCOutflow        = core.BCOutflow
	BCInlet          = core.BCInlet
	BCPressureOutlet = core.BCPressureOutlet
)

// Geometry subsystem (Config.Solid): voxelized solid masks over the
// global lattice, built programmatically or loaded from voxel files.
type Mask = geom.Mask

// MaskFromFunc builds a voxel mask by evaluating solid at every global
// lattice point.
func MaskFromFunc(d Dims, solid func(ix, iy, iz int) bool) *Mask {
	return geom.FromFunc(d, solid)
}

// CylinderZ returns a mask with a z-aligned circular cylinder (center
// (cx, cy), radius r) marked solid — the vortex-shedding obstacle.
func CylinderZ(d Dims, cx, cy, r float64) *Mask { return geom.CylinderZ(d, cx, cy, r) }

// LoadMask reads a voxel mask from a .csv or .raw file (see geom.Load).
func LoadMask(path string) (*Mask, error) { return geom.Load(path) }

// SaveMask writes a voxel mask to a .csv or .raw file.
func SaveMask(path string, m *Mask) error { return geom.Save(path, m) }

// Collision operators (Config.Collision). The zero CollisionSpec is the
// paper's BGK and keeps the specialized kernels bit-for-bit; TRT and MRT
// trade a generic per-cell kernel for stability at low viscosity (high
// Reynolds numbers).
type (
	// CollisionSpec selects and parameterizes the collision operator.
	CollisionSpec = collision.Spec
	// CollisionKind enumerates the operator families.
	CollisionKind = collision.Kind
)

// Collision operator kinds.
const (
	CollisionBGK = collision.BGK
	CollisionTRT = collision.TRT
	CollisionMRT = collision.MRT
)

// ParseCollision resolves an operator name ("bgk", "trt", "mrt").
func ParseCollision(name string) (CollisionKind, error) { return collision.ParseKind(name) }

// CavitySpec returns the lid-driven cavity boundary (walls on x and y,
// the high-y lid moving with speed u along +x, periodic z).
func CavitySpec(u float64) *BoundarySpec { return core.CavitySpec(u) }

// ChannelSpec returns a wall-bounded channel (no-slip y faces, the rest
// periodic); drive it with Config.Accel for Poiseuille flow.
func ChannelSpec() *BoundarySpec { return core.ChannelSpec() }

// InletChannelSpec returns an open flow-through channel: Zou-He velocity
// inlet at low x, unit-density zero-gradient outlet at high x (see
// BCPressureOutlet — a velocity-driven channel needs the pressure
// anchor), no-slip y walls, periodic z.
func InletChannelSpec(u float64, profile func(gx, gy, gz int) [3]float64) *BoundarySpec {
	return core.InletChannelSpec(u, profile)
}

// D3Q19 returns the standard 19-velocity lattice (Navier-Stokes regime).
func D3Q19() *Model { return lattice.D3Q19() }

// D3Q27 returns the full 27-velocity cubic lattice (library completeness;
// the "27 neighbors" prior art the paper's abstract cites).
func D3Q27() *Model { return lattice.D3Q27() }

// D3Q39 returns the 39-velocity Gauss-Hermite lattice (finite-Knudsen
// regime, 3rd-order equilibrium).
func D3Q39() *Model { return lattice.D3Q39() }

// ModelByName resolves "D3Q19"/"D3Q39" (case-insensitive forms accepted).
func ModelByName(name string) (*Model, error) { return lattice.ByName(name) }

// Run executes a simulation.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// ResolveThreads interprets a -threads style value: positive counts pass
// through, 0 means runtime.NumCPU()/ranks (floor 1), negatives error.
func ResolveThreads(threads, ranks int) (int, error) { return core.ResolveThreads(threads, ranks) }

// OptLevels lists all optimization levels in ladder order.
func OptLevels() []OptLevel { return core.Levels() }

// Decomposition is a Cartesian rank grid over the global box: the
// paper's 1-D slab is shape (P,1,1); 2-D pencils and 3-D blocks shrink
// the per-rank communication surface with P^(2/3).
type Decomposition = decomp.Cartesian

// ParseDecomp resolves a decomposition spec — "1d"/"2d"/"3d" (factored
// automatically, minimum communication surface) or an explicit
// "PxxPyxPz" grid — into the rank-grid shape for Config.Decomp.
func ParseDecomp(spec string, ranks int, n Dims) ([3]int, error) {
	d, err := decomp.ParseShape(spec, ranks, [3]int{n.NX, n.NY, n.NZ})
	if err != nil {
		return [3]int{}, err
	}
	return d.P, nil
}

// FactorDecomp returns the minimum-surface rank grid for ranks ranks
// using at most maxAxes decomposed axes (1 slab, 2 pencil, 3 block).
func FactorDecomp(ranks, maxAxes int, n Dims) ([3]int, error) {
	return decomp.Factor(ranks, maxAxes, [3]int{n.NX, n.NY, n.NZ})
}

// Performance-model façade (paper §III).
type (
	// Machine is a modeled compute platform (BG/P, BG/Q).
	Machine = machine.Machine
	// KernelSpec carries bytes/flops per lattice-point update.
	KernelSpec = machine.KernelSpec
	// Bound is the roofline evaluation of the paper's Eq. 5.
	Bound = machine.Bound
)

// BGP and BGQ return the paper's two platforms.
func BGP() Machine { return machine.BGP() }
func BGQ() Machine { return machine.BGQ() }

// MaxMFlups evaluates the attainable-performance model (Table II).
func MaxMFlups(m Machine, k KernelSpec) Bound { return machine.MaxMFlups(m, k) }

// Cluster-simulation façade.
type (
	// ClusterJob describes a paper-scale simulated run.
	ClusterJob = perfsim.Job
	// ClusterResult is its outcome.
	ClusterResult = perfsim.Result
)

// SimulateCluster projects the solver's schedule onto a machine model.
func SimulateCluster(j ClusterJob) (*ClusterResult, error) { return perfsim.Run(j) }
