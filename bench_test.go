// Benchmarks regenerating the paper's evaluation with the real kernels,
// one benchmark family per table/figure (DESIGN.md §6 maps each to its
// experiment id). Each reports MFlup/s — the paper's metric (Eq. 4) — as a
// custom benchmark metric alongside ns/op.
//
// Paper-scale counterparts run through the perfsim machine models; these
// are the laptop-scale measurements of the same trade-offs.
package repro_test

import (
	"fmt"
	"math"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/machine"
)

// benchInit is a smooth non-trivial initial condition.
func benchInit(n repro.Dims) repro.InitFunc {
	return func(ix, iy, iz int) (rho, ux, uy, uz float64) {
		x := 2 * math.Pi * float64(ix) / float64(n.NX)
		y := 2 * math.Pi * float64(iy) / float64(n.NY)
		return 1 + 0.02*math.Sin(x)*math.Cos(y), 0.01 * math.Sin(y), -0.01 * math.Cos(x), 0
	}
}

// runOnce executes a fixed-step simulation and reports MFlup/s.
func runOnce(b *testing.B, cfg repro.Config) {
	b.Helper()
	if cfg.Init == nil {
		cfg.Init = benchInit(cfg.N)
	}
	var mflups float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := repro.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		mflups = res.MFlups
	}
	b.ReportMetric(mflups, "MFlup/s")
}

// BenchmarkTable2Roofline evaluates the attainable-performance model
// (Table II) — cheap, but pins the analytic path into the benchmark suite.
func BenchmarkTable2Roofline(b *testing.B) {
	var sink repro.Bound
	for i := 0; i < b.N; i++ {
		for _, m := range []repro.Machine{repro.BGP(), repro.BGQ()} {
			sink = repro.MaxMFlups(m, machine.SpecD3Q19())
			sink = repro.MaxMFlups(m, machine.SpecD3Q39())
		}
	}
	_ = sink
}

// BenchmarkFig8OptLevels measures every optimization level for both
// lattices (the real-kernel Fig. 8).
func BenchmarkFig8OptLevels(b *testing.B) {
	for _, mk := range []func() *repro.Model{repro.D3Q19, repro.D3Q39} {
		model := mk()
		n := repro.Dims{NX: 48, NY: 24, NZ: 24}
		if model.Q == 39 {
			n = repro.Dims{NX: 32, NY: 16, NZ: 16}
		}
		for _, opt := range repro.OptLevels() {
			b.Run(fmt.Sprintf("%s/%s", model.Name, opt), func(b *testing.B) {
				runOnce(b, repro.Config{
					Model: model, N: n, Tau: 0.8, Steps: 10,
					Opt: opt, Ranks: 1, Threads: 1, GhostDepth: 1,
				})
			})
		}
	}
}

// BenchmarkFig9CommProtocols measures the three communication protocols of
// Fig. 9 over multiple ranks, reporting the maximum per-rank comm time.
func BenchmarkFig9CommProtocols(b *testing.B) {
	n := repro.Dims{NX: 64, NY: 16, NZ: 16}
	for _, cfg := range []struct {
		name string
		opt  repro.OptLevel
	}{
		{"Orig-noGC", repro.OptOrig},
		{"NB-C+GC", repro.OptNBC},
		{"GC-C", repro.OptGCC},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var maxComm float64
			var mflups float64
			for i := 0; i < b.N; i++ {
				res, err := repro.Run(repro.Config{
					Model: repro.D3Q19(), N: n, Tau: 0.8, Steps: 10,
					Opt: cfg.opt, Ranks: 4, Threads: 1, GhostDepth: 1,
					Init: benchInit(n),
				})
				if err != nil {
					b.Fatal(err)
				}
				maxComm = res.CommSummary().Max
				mflups = res.MFlups
			}
			b.ReportMetric(mflups, "MFlup/s")
			b.ReportMetric(1e3*maxComm, "maxcomm-ms")
		})
	}
}

// BenchmarkFig10DeepHaloQ19 sweeps ghost depth for D3Q19 (Fig. 10a).
func BenchmarkFig10DeepHaloQ19(b *testing.B) {
	n := repro.Dims{NX: 96, NY: 16, NZ: 16}
	for depth := 1; depth <= 4; depth++ {
		b.Run(fmt.Sprintf("GC%d", depth), func(b *testing.B) {
			runOnce(b, repro.Config{
				Model: repro.D3Q19(), N: n, Tau: 0.8, Steps: 12,
				Opt: repro.OptSIMD, Ranks: 2, Threads: 1, GhostDepth: depth,
			})
		})
	}
}

// BenchmarkFig10DeepHaloQ39 sweeps ghost depth for D3Q39 (Fig. 10b); note
// each depth unit is k=3 planes.
func BenchmarkFig10DeepHaloQ39(b *testing.B) {
	n := repro.Dims{NX: 96, NY: 12, NZ: 12}
	for depth := 1; depth <= 4; depth++ {
		b.Run(fmt.Sprintf("GC%d", depth), func(b *testing.B) {
			runOnce(b, repro.Config{
				Model: repro.D3Q39(), N: n, Tau: 0.9, Steps: 12,
				Opt: repro.OptSIMD, Ranks: 2, Threads: 1, GhostDepth: depth,
			})
		})
	}
}

// BenchmarkTable3RatioSweep measures the depth trade-off at two
// planes-per-rank ratios (the laptop analog of Tables III/IV).
func BenchmarkTable3RatioSweep(b *testing.B) {
	for _, ratio := range []int{8, 48} {
		for _, depth := range []int{1, 3} {
			b.Run(fmt.Sprintf("R%d/GC%d", ratio, depth), func(b *testing.B) {
				runOnce(b, repro.Config{
					Model: repro.D3Q19(), N: repro.Dims{NX: 2 * ratio, NY: 16, NZ: 16},
					Tau: 0.8, Steps: 12,
					Opt: repro.OptSIMD, Ranks: 2, Threads: 1, GhostDepth: depth,
				})
			})
		}
	}
}

// BenchmarkFig11Hybrid sweeps ranks×threads at a fixed worker budget
// (the laptop Fig. 11).
func BenchmarkFig11Hybrid(b *testing.B) {
	n := repro.Dims{NX: 48, NY: 16, NZ: 16}
	for _, c := range [][2]int{{1, 1}, {1, 2}, {1, 4}, {2, 1}, {2, 2}, {4, 1}} {
		b.Run(fmt.Sprintf("%dx%d", c[0], c[1]), func(b *testing.B) {
			runOnce(b, repro.Config{
				Model: repro.D3Q39(), N: n, Tau: 0.9, Steps: 8,
				Opt: repro.OptSIMD, Ranks: c[0], Threads: c[1], GhostDepth: 1,
			})
		})
	}
}

// BenchmarkLayoutAblation compares the SoA (collision-optimized, the
// paper's choice) and AoS layouts under identical naive kernels.
func BenchmarkLayoutAblation(b *testing.B) {
	n := repro.Dims{NX: 32, NY: 16, NZ: 16}
	for _, l := range []repro.Layout{repro.SoA, repro.AoS} {
		b.Run(l.String(), func(b *testing.B) {
			runOnce(b, repro.Config{
				Model: repro.D3Q19(), N: n, Tau: 0.8, Steps: 10,
				Opt: repro.OptGC, Ranks: 1, Threads: 1, GhostDepth: 1, Layout: l,
			})
		})
	}
}

// BenchmarkFusedVsSplit is the ablation for the paper's §VII future-work
// direction: the fused stream-collide kernel touches 2·Q·8 bytes per cell
// per step against the split path's 3·Q·8, raising the bandwidth roofline.
func BenchmarkFusedVsSplit(b *testing.B) {
	for _, mk := range []func() *repro.Model{repro.D3Q19, repro.D3Q39} {
		model := mk()
		n := repro.Dims{NX: 48, NY: 24, NZ: 24}
		if model.Q == 39 {
			n = repro.Dims{NX: 32, NY: 16, NZ: 16}
		}
		for _, fused := range []bool{false, true} {
			name := model.Name + "/split"
			if fused {
				name = model.Name + "/fused"
			}
			b.Run(name, func(b *testing.B) {
				runOnce(b, repro.Config{
					Model: model, N: n, Tau: 0.8, Steps: 10,
					Opt: repro.OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1,
					Fused: fused,
				})
			})
		}
	}
}

// BenchmarkPaperScaleSimulator measures the perfsim projection itself
// (the cost of regenerating a Fig. 8 point at 512 ranks).
func BenchmarkPaperScaleSimulator(b *testing.B) {
	job := repro.ClusterJob{
		Machine: repro.BGP(), Spec: machine.SpecD3Q19(), K: 1,
		Nodes: 128, TasksPerNode: 4, ThreadsPerTask: 1,
		NX: 128 * 4 * 64, NY: 64, NZ: 64,
		Steps: 50, Depth: 1, Opt: repro.OptSIMD,
		Imbalance: 0.05, Seed: 7,
	}
	var mflups float64
	for i := 0; i < b.N; i++ {
		res, err := repro.SimulateCluster(job)
		if err != nil {
			b.Fatal(err)
		}
		mflups = res.MFlups
	}
	b.ReportMetric(mflups, "simulated-MFlup/s")
}

// BenchmarkExperimentTables measures the full generator for the static
// tables (Table I/II rendering).
func BenchmarkExperimentTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Generate("table1", ""); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Generate("table2", ""); err != nil {
			b.Fatal(err)
		}
	}
}
