package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// runCounts executes an n-chunk batch on a pool of the given size and
// returns per-chunk execution counts and the worker IDs observed.
func runCounts(t *testing.T, threads, n int) ([]int32, map[int]bool) {
	t.Helper()
	p := NewPool(threads)
	defer p.Close()
	counts := make([]int32, n)
	var mu sync.Mutex
	workers := make(map[int]bool)
	p.Run(n, func(worker, chunk int) {
		atomic.AddInt32(&counts[chunk], 1)
		mu.Lock()
		workers[worker] = true
		mu.Unlock()
	})
	return counts, workers
}

func TestRunCoversEveryChunkExactlyOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{1, 2, 5, 23, 100} {
			counts, workers := runCounts(t, threads, n)
			for i, c := range counts {
				if c != 1 {
					t.Errorf("threads=%d n=%d: chunk %d executed %d times", threads, n, i, c)
				}
			}
			for w := range workers {
				if w < 0 || w >= threads {
					t.Errorf("threads=%d: worker ID %d out of range", threads, w)
				}
			}
		}
	}
}

func TestRunExactlyOnceProperty(t *testing.T) {
	prop := func(threadsRaw, nRaw uint8) bool {
		threads := int(threadsRaw)%8 + 1
		n := int(nRaw) % 64
		p := NewPool(threads)
		defer p.Close()
		counts := make([]int32, n)
		p.Run(n, func(worker, chunk int) {
			atomic.AddInt32(&counts[chunk], 1)
		})
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPoolReuseAcrossBatches(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for round := 0; round < 50; round++ {
		var sum atomic.Int64
		p.Run(13, func(worker, chunk int) { sum.Add(int64(chunk)) })
		if got := sum.Load(); got != 13*12/2 {
			t.Fatalf("round %d: sum %d, want %d", round, got, 13*12/2)
		}
	}
}

func TestRunPanicPropagates(t *testing.T) {
	for _, threads := range []int{1, 4} {
		p := NewPool(threads)
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("threads=%d: recovered %v, want boom", threads, r)
				}
			}()
			p.Run(20, func(worker, chunk int) {
				if chunk == 3 {
					panic("boom")
				}
			})
			t.Errorf("threads=%d: Run returned without panicking", threads)
		}()
		// The pool must survive a panicked batch.
		var n atomic.Int64
		p.Run(8, func(worker, chunk int) { n.Add(1) })
		if n.Load() != 8 {
			t.Errorf("threads=%d: post-panic batch ran %d chunks, want 8", threads, n.Load())
		}
		p.Close()
	}
}

func TestRunEmptyAndNil(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	ran := false
	p.Run(0, func(worker, chunk int) { ran = true })
	p.Run(-2, func(worker, chunk int) { ran = true })
	if ran {
		t.Error("body ran for empty batch")
	}
	var nilPool *Pool
	if nilPool.Threads() != 1 {
		t.Errorf("nil pool Threads() = %d, want 1", nilPool.Threads())
	}
	sum := 0
	nilPool.Run(4, func(worker, chunk int) {
		if worker != 0 {
			t.Errorf("nil pool worker %d, want 0", worker)
		}
		sum += chunk
	})
	if sum != 6 {
		t.Errorf("nil pool sum %d, want 6", sum)
	}
	nilPool.Close()
}

func TestCloseIdempotent(t *testing.T) {
	p := NewPool(4)
	p.Run(4, func(worker, chunk int) {})
	p.Close()
	p.Close()
	if NewPool(0).Threads() != 1 {
		t.Error("threads<1 must clamp to 1")
	}
}

func TestWorkerScratchDisjoint(t *testing.T) {
	// Per-worker scratch slots must never be touched concurrently: guard
	// each with a CAS-held flag for the duration of a chunk.
	const threads = 4
	p := NewPool(threads)
	defer p.Close()
	var busy [threads]atomic.Bool
	p.Run(200, func(worker, chunk int) {
		if !busy[worker].CompareAndSwap(false, true) {
			t.Errorf("worker %d scratch entered concurrently", worker)
		}
		for i := 0; i < 100; i++ {
			_ = i * i
		}
		busy[worker].Store(false)
	})
}

func TestChunkCounts(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	p.Run(40, func(worker, chunk int) {})
	p.Run(1, func(worker, chunk int) {}) // single-chunk inline path: worker 0
	c := p.ChunkCounts()
	if len(c) != 3 {
		t.Fatalf("got %d counters, want 3", len(c))
	}
	var total int64
	for _, n := range c {
		total += n
	}
	if total != 41 {
		t.Errorf("drained %d chunks in total, want 41", total)
	}
	if c[0] < 1 {
		t.Errorf("worker 0 drained %d chunks; the inline path must credit it", c[0])
	}
	if (*Pool)(nil).ChunkCounts() != nil {
		t.Error("nil pool must report nil counts")
	}
	if one := NewPool(1); one.ChunkCounts()[0] != 0 {
		t.Error("fresh pool must start at zero")
	}
}
