package parallel

import (
	"sync"
	"testing"
	"testing/quick"
)

// collectRanges runs the loop and returns a coverage bitmap, failing on
// overlap.
func collectRanges(t *testing.T, threads, lo, hi int) []bool {
	t.Helper()
	covered := make([]bool, hi)
	var mu sync.Mutex
	For(threads, lo, hi, func(blo, bhi int) {
		mu.Lock()
		defer mu.Unlock()
		for i := blo; i < bhi; i++ {
			if covered[i] {
				t.Errorf("index %d covered twice", i)
			}
			covered[i] = true
		}
	})
	return covered
}

func TestForCoversExactly(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 7, 100} {
		covered := collectRanges(t, threads, 0, 23)
		for i, c := range covered {
			if !c {
				t.Errorf("threads=%d: index %d not covered", threads, i)
			}
		}
	}
}

func TestForNonZeroLo(t *testing.T) {
	covered := collectRanges(t, 3, 5, 17)
	for i := 0; i < 5; i++ {
		if covered[i] {
			t.Errorf("index %d below lo covered", i)
		}
	}
	for i := 5; i < 17; i++ {
		if !covered[i] {
			t.Errorf("index %d not covered", i)
		}
	}
}

func TestForEmptyAndDegenerate(t *testing.T) {
	ran := false
	For(4, 3, 3, func(lo, hi int) { ran = true })
	if ran {
		t.Error("body ran for empty range")
	}
	For(4, 5, 2, func(lo, hi int) { ran = true })
	if ran {
		t.Error("body ran for inverted range")
	}
	// threads < 1 behaves like 1.
	count := 0
	For(0, 0, 4, func(lo, hi int) { count += hi - lo })
	if count != 4 {
		t.Errorf("threads=0 covered %d, want 4", count)
	}
}

func TestForPartitionProperty(t *testing.T) {
	prop := func(threadsRaw, nRaw uint8) bool {
		threads := int(threadsRaw)%8 + 1
		n := int(nRaw) % 64
		var mu sync.Mutex
		sum := 0
		blocks := 0
		For(threads, 0, n, func(lo, hi int) {
			mu.Lock()
			sum += hi - lo
			blocks++
			mu.Unlock()
		})
		want := threads
		if n < threads {
			want = n
		}
		return sum == n && (n == 0 || blocks == want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestForTwoCoversBothRanges(t *testing.T) {
	for _, threads := range []int{1, 2, 5} {
		covered := make([]bool, 30)
		var mu sync.Mutex
		ForTwo(threads, 2, 7, 20, 28, func(lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Errorf("threads=%d: index %d twice", threads, i)
				}
				covered[i] = true
			}
		})
		for i := 0; i < 30; i++ {
			want := (i >= 2 && i < 7) || (i >= 20 && i < 28)
			if covered[i] != want {
				t.Errorf("threads=%d: covered[%d]=%v, want %v", threads, i, covered[i], want)
			}
		}
	}
}

func TestForTwoEmptyHalves(t *testing.T) {
	total := 0
	var mu sync.Mutex
	ForTwo(3, 0, 0, 10, 14, func(lo, hi int) {
		mu.Lock()
		total += hi - lo
		mu.Unlock()
	})
	if total != 4 {
		t.Errorf("covered %d, want 4", total)
	}
	ForTwo(3, 0, 0, 0, 0, func(lo, hi int) {
		t.Error("body ran for fully empty ForTwo")
	})
}
