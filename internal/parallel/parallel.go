// Package parallel provides the intra-rank threading substrate that stands
// in for OpenMP in the paper's hybrid MPI/OpenMP study (§VI.B): a simple
// static-partition parallel-for over index ranges, executed by transient
// goroutines. Work is split into contiguous blocks, one per thread,
// mirroring an OpenMP "schedule(static)" loop over x-planes.
package parallel

import "sync"

// For partitions [lo,hi) into at most threads contiguous blocks and invokes
// body(blockLo, blockHi) for each, concurrently when threads > 1. It
// returns when every block is done. threads < 1 is treated as 1. The body
// must not panic across blocks it does not own.
func For(threads, lo, hi int, body func(lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if threads < 1 {
		threads = 1
	}
	if threads > n {
		threads = n
	}
	if threads == 1 {
		body(lo, hi)
		return
	}
	var wg sync.WaitGroup
	base := n / threads
	rem := n % threads
	start := lo
	for t := 0; t < threads; t++ {
		size := base
		if t < rem {
			size++
		}
		blo, bhi := start, start+size
		start = bhi
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(blo, bhi)
		}()
	}
	wg.Wait()
}

// ForTwo runs For over two disjoint ranges as one logical loop, keeping the
// static partition balanced across both (used for the separated ghost-region
// loops, where the left and right ghost slabs are processed together).
func ForTwo(threads, lo1, hi1, lo2, hi2 int, body func(lo, hi int)) {
	n1 := hi1 - lo1
	if n1 < 0 {
		n1 = 0
	}
	n2 := hi2 - lo2
	if n2 < 0 {
		n2 = 0
	}
	For(threads, 0, n1+n2, func(lo, hi int) {
		// Map the virtual range back onto the two real ranges.
		if lo < n1 {
			end := hi
			if end > n1 {
				end = n1
			}
			body(lo1+lo, lo1+end)
		}
		if hi > n1 {
			start := lo
			if start < n1 {
				start = n1
			}
			body(lo2+start-n1, lo2+hi-n1)
		}
	})
}
