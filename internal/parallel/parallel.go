// Package parallel provides the intra-rank threading substrate that stands
// in for OpenMP in the paper's hybrid MPI/OpenMP study (§VI.B): a persistent
// worker pool executing batches of independent chunks. Unlike the earlier
// transient-goroutine parallel-for (one goroutine spawn per call, static
// partition), the pool is created once per stepper and reused for every
// loop of every step, workers carry stable IDs for per-worker scratch
// buffers, and each batch is a shared queue that workers drain — so many
// small disjoint regions (the rim slabs of the overlapped schedule) can be
// submitted as one batch and load-balance across the whole team.
package parallel

import (
	"sync"
	"sync/atomic"
)

// Pool is a persistent team of workers. The zero of *Pool (nil) and a
// 1-thread pool both execute batches inline on the caller; a T-thread pool
// keeps T−1 background workers parked on a condition variable, and the
// caller participates as worker 0 of every batch. A Pool is driven by one
// goroutine at a time (Run is not reentrant), matching its per-stepper
// ownership.
type Pool struct {
	threads int
	// counts[w] is the number of chunks worker w has drained over the
	// pool's lifetime — the load-imbalance view of thin batches (a rim
	// batch with fewer chunks than workers leaves part of the team idle,
	// which shows up here as skew).
	counts []chunkCount

	mu     sync.Mutex
	cond   *sync.Cond
	cur    *batch // batch being executed, nil when idle
	gen    uint64 // bumped per Run; wakes workers exactly once per batch
	closed bool
	wg     sync.WaitGroup
}

// chunkCount is one worker's drained-chunk counter, padded out to its own
// cache line so the workers' increments don't false-share.
type chunkCount struct {
	n atomic.Int64
	_ [56]byte
}

// batch is one Run invocation: n chunks drained from an atomic cursor.
type batch struct {
	body   func(worker, chunk int)
	counts []chunkCount
	n      int64
	next   atomic.Int64 // next chunk index to claim
	left   atomic.Int64 // chunks not yet finished; 0 closes done
	done   chan struct{}

	aborted  atomic.Bool // a chunk panicked: claim the rest without running
	panicMu  sync.Mutex
	panicVal any
}

// NewPool creates a pool of the given team size. threads < 1 is treated as
// 1. A 1-thread pool spawns no goroutines.
func NewPool(threads int) *Pool {
	if threads < 1 {
		threads = 1
	}
	p := &Pool{threads: threads, counts: make([]chunkCount, threads)}
	p.cond = sync.NewCond(&p.mu)
	for w := 1; w < threads; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	return p
}

// Threads returns the team size; 1 for a nil pool.
func (p *Pool) Threads() int {
	if p == nil {
		return 1
	}
	return p.threads
}

// Run executes body(worker, chunk) for every chunk in [0, n) exactly once,
// distributed over the team, and returns when all chunks are done. worker
// identifies the executing team member (0 ≤ worker < Threads()) — stable
// across batches, the key for per-worker scratch. Chunks are claimed from a
// shared queue in order, so callers should submit more chunks than workers
// when chunk costs vary. If a chunk panics, the remaining chunks are
// skipped and the first panic value is re-raised on the caller after the
// team quiesces. Nil-safe: a nil pool runs everything inline as worker 0.
func (p *Pool) Run(n int, body func(worker, chunk int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.threads == 1 || n == 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		if p != nil {
			p.counts[0].n.Add(int64(n))
		}
		return
	}
	b := &batch{body: body, counts: p.counts, n: int64(n), done: make(chan struct{})}
	b.left.Store(int64(n))
	p.mu.Lock()
	p.cur = b
	p.gen++
	p.mu.Unlock()
	p.cond.Broadcast()
	b.drain(0) // the caller is worker 0
	<-b.done
	p.mu.Lock()
	p.cur = nil
	p.mu.Unlock()
	if b.panicVal != nil {
		panic(b.panicVal)
	}
}

// ChunkCounts returns the number of chunks each team member has drained
// since the pool was created, indexed by worker ID. Nil for a nil pool.
// Chunks executed on the caller's inline fast path (1-thread pools,
// single-chunk batches) are credited to worker 0.
func (p *Pool) ChunkCounts() []int64 {
	if p == nil {
		return nil
	}
	out := make([]int64, len(p.counts))
	for i := range p.counts {
		out[i] = p.counts[i].n.Load()
	}
	return out
}

// Close shuts the background workers down. Idempotent and nil-safe; the
// pool must be idle (no Run in flight).
func (p *Pool) Close() {
	if p == nil || p.threads == 1 {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// worker is the background loop of team member w: park until a new batch
// (or shutdown), help drain it, repeat. A worker that wakes after the
// batch is fully claimed simply finds no chunk and parks again.
func (p *Pool) worker(w int) {
	defer p.wg.Done()
	var seen uint64
	for {
		p.mu.Lock()
		for !p.closed && (p.cur == nil || p.gen == seen) {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		b := p.cur
		seen = p.gen
		p.mu.Unlock()
		b.drain(w)
	}
}

// drain claims and executes chunks until the batch's cursor is exhausted.
// Every claimed chunk is accounted in left — including chunks skipped
// after an abort — so done always closes.
func (b *batch) drain(worker int) {
	for {
		i := b.next.Add(1) - 1
		if i >= b.n {
			return
		}
		if !b.aborted.Load() {
			b.runChunk(worker, int(i))
			b.counts[worker].n.Add(1)
		}
		if b.left.Add(-1) == 0 {
			close(b.done)
		}
	}
}

// runChunk executes one chunk, converting a panic into batch abortion.
func (b *batch) runChunk(worker, chunk int) {
	defer func() {
		if r := recover(); r != nil {
			b.panicMu.Lock()
			if b.panicVal == nil {
				b.panicVal = r
			}
			b.panicMu.Unlock()
			b.aborted.Store(true)
		}
	}()
	b.body(worker, chunk)
}
