package comm

import "fmt"

// CartTopology maps a fabric's linear ranks onto a periodic Px×Py×Pz
// Cartesian grid, the fabric-level analog of MPI_Cart_create. Numbering is
// z-fastest (rank = cz + Pz·(cy + Py·cx)), matching the cell indexing of
// grid.Dims, so a slab grid (N,1,1) numbers ranks identically to the
// linear fabric.
type CartTopology struct {
	P [3]int
}

// NewCartTopology validates that the grid shape covers exactly n ranks.
func NewCartTopology(n int, p [3]int) (CartTopology, error) {
	for a, v := range p {
		if v < 1 {
			return CartTopology{}, fmt.Errorf("comm: topology axis %d extent %d, want >= 1", a, v)
		}
	}
	if got := p[0] * p[1] * p[2]; got != n {
		return CartTopology{}, fmt.Errorf("comm: topology %dx%dx%d covers %d ranks, fabric has %d", p[0], p[1], p[2], got, n)
	}
	return CartTopology{P: p}, nil
}

// Cart returns a Cartesian topology over this fabric's ranks.
func (f *Fabric) Cart(p [3]int) (CartTopology, error) {
	return NewCartTopology(f.n, p)
}

// Ranks returns the total rank count of the grid.
func (t CartTopology) Ranks() int { return t.P[0] * t.P[1] * t.P[2] }

// Coords returns the grid coordinates of a rank.
func (t CartTopology) Coords(rank int) [3]int {
	cz := rank % t.P[2]
	rank /= t.P[2]
	return [3]int{rank / t.P[1], rank % t.P[1], cz}
}

// Rank inverts Coords.
func (t CartTopology) Rank(c [3]int) int {
	return c[2] + t.P[2]*(c[1]+t.P[1]*c[0])
}

// Shift returns the periodic neighbor of rank displaced by disp along
// axis (the fabric-level MPI_Cart_shift): disp -1 is the lower neighbor,
// +1 the upper, and larger magnitudes walk further around the ring.
func (t CartTopology) Shift(rank, axis, disp int) int {
	c := t.Coords(rank)
	n := t.P[axis]
	c[axis] = ((c[axis]+disp)%n + n) % n
	return t.Rank(c)
}

// Neighbors returns the low- and high-side neighbor of rank on each axis:
// Neighbors(r)[axis][0] is the -1 shift, [axis][1] the +1 shift. On an
// axis of extent 1 both entries are rank itself (self-exchange).
func (t CartTopology) Neighbors(rank int) [3][2]int {
	var nb [3][2]int
	for a := 0; a < 3; a++ {
		nb[a][0] = t.Shift(rank, a, -1)
		nb[a][1] = t.Shift(rank, a, +1)
	}
	return nb
}
