package comm

import "fmt"

// NoNeighbor is returned by Shift and reported in Neighbors for a step
// off the global edge of a bounded (non-periodic) axis.
const NoNeighbor = -1

// CartTopology maps a fabric's linear ranks onto a Px×Py×Pz Cartesian
// grid, the fabric-level analog of MPI_Cart_create with per-axis periods.
// Numbering is z-fastest (rank = cz + Pz·(cy + Py·cx)), matching the cell
// indexing of grid.Dims, so a slab grid (N,1,1) numbers ranks identically
// to the linear fabric. Axes are periodic unless flagged in Bounded; on a
// bounded axis, shifts off either end resolve to NoNeighbor (MPI's
// MPI_PROC_NULL for periods[axis] = 0).
type CartTopology struct {
	P       [3]int
	Bounded [3]bool
}

// NewCartTopology validates that the grid shape covers exactly n ranks and
// returns a fully periodic topology.
func NewCartTopology(n int, p [3]int) (CartTopology, error) {
	return NewCartTopologyBounded(n, p, [3]bool{})
}

// NewCartTopologyBounded is NewCartTopology with per-axis periodicity
// control: bounded[a] = true makes axis a non-periodic.
func NewCartTopologyBounded(n int, p [3]int, bounded [3]bool) (CartTopology, error) {
	for a, v := range p {
		if v < 1 {
			return CartTopology{}, fmt.Errorf("comm: topology axis %d extent %d, want >= 1", a, v)
		}
	}
	if got := p[0] * p[1] * p[2]; got != n {
		return CartTopology{}, fmt.Errorf("comm: topology %dx%dx%d covers %d ranks, fabric has %d", p[0], p[1], p[2], got, n)
	}
	return CartTopology{P: p, Bounded: bounded}, nil
}

// Cart returns a fully periodic Cartesian topology over this fabric's ranks.
func (f *Fabric) Cart(p [3]int) (CartTopology, error) {
	return NewCartTopology(f.n, p)
}

// CartBounded returns a Cartesian topology over this fabric's ranks with
// per-axis periodicity control.
func (f *Fabric) CartBounded(p [3]int, bounded [3]bool) (CartTopology, error) {
	return NewCartTopologyBounded(f.n, p, bounded)
}

// Ranks returns the total rank count of the grid.
func (t CartTopology) Ranks() int { return t.P[0] * t.P[1] * t.P[2] }

// Coords returns the grid coordinates of a rank.
func (t CartTopology) Coords(rank int) [3]int {
	cz := rank % t.P[2]
	rank /= t.P[2]
	return [3]int{rank / t.P[1], rank % t.P[1], cz}
}

// Rank inverts Coords.
func (t CartTopology) Rank(c [3]int) int {
	return c[2] + t.P[2]*(c[1]+t.P[1]*c[0])
}

// Shift returns the neighbor of rank displaced by disp along axis (the
// fabric-level MPI_Cart_shift): disp -1 is the lower neighbor, +1 the
// upper, and larger magnitudes walk further. Periodic axes wrap around the
// ring; on a bounded axis a walk off either end returns NoNeighbor.
func (t CartTopology) Shift(rank, axis, disp int) int {
	c := t.Coords(rank)
	n := t.P[axis]
	next := c[axis] + disp
	if t.Bounded[axis] {
		if next < 0 || next >= n {
			return NoNeighbor
		}
	} else {
		next = ((next % n) + n) % n
	}
	c[axis] = next
	return t.Rank(c)
}

// Neighbors returns the low- and high-side neighbor of rank on each axis:
// Neighbors(r)[axis][0] is the -1 shift, [axis][1] the +1 shift. On a
// periodic axis of extent 1 both entries are rank itself (self-exchange);
// at the global edge of a bounded axis the entry is NoNeighbor.
func (t CartTopology) Neighbors(rank int) [3][2]int {
	var nb [3][2]int
	for a := 0; a < 3; a++ {
		nb[a][0] = t.Shift(rank, a, -1)
		nb[a][1] = t.Shift(rank, a, +1)
	}
	return nb
}
