package comm

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendRecvPair(t *testing.T) {
	f := NewFabric(2)
	err := f.Run(func(r *Rank) error {
		if r.ID == 0 {
			r.Send(1, 7, []float64{1, 2, 3})
		} else {
			buf := make([]float64, 3)
			n := r.Recv(0, 7, buf)
			if n != 3 || buf[0] != 1 || buf[2] != 3 {
				t.Errorf("recv got n=%d buf=%v", n, buf)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	f := NewFabric(2)
	err := f.Run(func(r *Rank) error {
		if r.ID == 0 {
			data := []float64{5}
			r.Send(1, 0, data)
			data[0] = -1 // must not affect the message
		} else {
			buf := make([]float64, 1)
			r.Recv(0, 0, buf)
			if buf[0] != 5 {
				t.Errorf("payload mutated after send: %v", buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	f := NewFabric(2)
	err := f.Run(func(r *Rank) error {
		if r.ID == 0 {
			r.Send(1, 1, []float64{10})
			r.Send(1, 2, []float64{20})
			r.Send(1, 1, []float64{11})
		} else {
			buf := make([]float64, 1)
			r.Recv(0, 2, buf)
			if buf[0] != 20 {
				t.Errorf("tag 2 got %v", buf[0])
			}
			r.Recv(0, 1, buf)
			if buf[0] != 10 {
				t.Errorf("tag 1 first got %v (FIFO per tag violated)", buf[0])
			}
			r.Recv(0, 1, buf)
			if buf[0] != 11 {
				t.Errorf("tag 1 second got %v", buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWait(t *testing.T) {
	f := NewFabric(2)
	err := f.Run(func(r *Rank) error {
		other := 1 - r.ID
		buf := make([]float64, 2)
		rq := r.Irecv(other, 3, buf)
		sq := r.Isend(other, 3, []float64{float64(r.ID), 9})
		r.Wait(rq, sq)
		if !rq.Done() || rq.N() != 2 {
			t.Errorf("rank %d: request not complete (n=%d)", r.ID, rq.N())
		}
		if buf[0] != float64(other) || buf[1] != 9 {
			t.Errorf("rank %d: buf=%v", r.ID, buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfMessaging(t *testing.T) {
	f := NewFabric(1)
	err := f.Run(func(r *Rank) error {
		r.Send(0, 5, []float64{3.14})
		buf := make([]float64, 1)
		r.Recv(0, 5, buf)
		if buf[0] != 3.14 {
			t.Errorf("self message got %v", buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	const n = 4
	f := NewFabric(n)
	var phase1 atomic.Int32
	err := f.Run(func(r *Rank) error {
		phase1.Add(1)
		r.Barrier()
		if got := phase1.Load(); got != n {
			t.Errorf("rank %d passed barrier with %d/%d arrived", r.ID, got, n)
		}
		// Reusability: a second barrier round must also work.
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSum(t *testing.T) {
	const n = 5
	f := NewFabric(n)
	err := f.Run(func(r *Rank) error {
		got := r.AllReduceSum([]float64{1, float64(r.ID)})
		if got[0] != n {
			t.Errorf("rank %d: sum[0] = %g, want %d", r.ID, got[0], n)
		}
		if got[1] != 0+1+2+3+4 {
			t.Errorf("rank %d: sum[1] = %g, want 10", r.ID, got[1])
		}
		// Twice in a row (scratch reuse).
		got2 := r.AllReduceSum([]float64{2})
		if got2[0] != 2*n {
			t.Errorf("rank %d: second reduce = %g", r.ID, got2[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceMax(t *testing.T) {
	const n = 4
	f := NewFabric(n)
	err := f.Run(func(r *Rank) error {
		got := r.AllReduceMax([]float64{float64(r.ID), -float64(r.ID)})
		if got[0] != n-1 || got[1] != 0 {
			t.Errorf("rank %d: max = %v", r.ID, got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	const n = 3
	f := NewFabric(n)
	err := f.Run(func(r *Rank) error {
		rows := r.Gather(1, []float64{float64(r.ID * 10)})
		if r.ID == 1 {
			if len(rows) != n {
				t.Errorf("gather rows = %d", len(rows))
			}
			for i := 0; i < n; i++ {
				if rows[i][0] != float64(i*10) {
					t.Errorf("rows[%d] = %v", i, rows[i])
				}
			}
		} else if rows != nil {
			t.Errorf("rank %d: non-root got rows", r.ID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	f := NewFabric(2)
	err := f.Run(func(r *Rank) error {
		if r.ID == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run returned nil after a rank panicked")
	}
}

func TestRingExchangeManyRanks(t *testing.T) {
	const n = 8
	f := NewFabric(n)
	err := f.Run(func(r *Rank) error {
		right := (r.ID + 1) % n
		left := (r.ID - 1 + n) % n
		buf := make([]float64, 1)
		rq := r.Irecv(left, 0, buf)
		r.Isend(right, 0, []float64{float64(r.ID)})
		r.Wait(rq)
		if buf[0] != float64(left) {
			t.Errorf("rank %d: got %v from left, want %d", r.ID, buf[0], left)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommTimeAccounting(t *testing.T) {
	f := NewFabric(2)
	err := f.Run(func(r *Rank) error {
		if r.ID == 0 {
			time.Sleep(30 * time.Millisecond)
			r.Send(1, 0, []float64{1})
		} else {
			buf := make([]float64, 1)
			r.Recv(0, 0, buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := f.CommTimes()
	if ts[1] < 20*time.Millisecond {
		t.Errorf("rank 1 comm time %v, want >= ~30ms of blocking", ts[1])
	}
	if ts[0] > 20*time.Millisecond {
		t.Errorf("rank 0 comm time %v, want small (eager send)", ts[0])
	}
}

func TestByteAndMessageCounting(t *testing.T) {
	f := NewFabric(2)
	err := f.Run(func(r *Rank) error {
		if r.ID == 0 {
			r.Send(1, 0, make([]float64, 10))
			r.Send(1, 1, make([]float64, 5))
		} else {
			buf := make([]float64, 10)
			r.Recv(0, 0, buf)
			r.Recv(0, 1, buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.BytesSent()[0]; got != 8*15 {
		t.Errorf("bytes sent = %d, want 120", got)
	}
	if got := f.MessagesSent()[0]; got != 2 {
		t.Errorf("messages sent = %d, want 2", got)
	}
}

func TestDelayModelSlowsDelivery(t *testing.T) {
	const wire = 25 * time.Millisecond
	f := NewFabric(2).WithDelay(func(src, dst, bytes int) time.Duration { return wire })
	start := time.Now()
	err := f.Run(func(r *Rank) error {
		if r.ID == 0 {
			r.Send(1, 0, []float64{1})
		} else {
			buf := make([]float64, 1)
			r.Recv(0, 0, buf)
			if e := time.Since(start); e < wire {
				t.Errorf("delivery after %v, want >= %v", e, wire)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestProbeRespectsWireTime: under a delay model, Probe must not report
// a message before its simulated arrival (the clock match() enforces),
// and must report it once the wire time has passed.
func TestProbeRespectsWireTime(t *testing.T) {
	const wire = 30 * time.Millisecond
	f := NewFabric(2).WithDelay(func(src, dst, bytes int) time.Duration { return wire })
	err := f.Run(func(r *Rank) error {
		if r.ID == 0 {
			r.Send(1, 7, []float64{1})
			r.Barrier()
			return nil
		}
		r.Barrier() // the send has happened by now
		if r.Probe(0, 7) {
			t.Error("Probe reported a message still on the wire")
		}
		time.Sleep(wire + 10*time.Millisecond)
		if !r.Probe(0, 7) {
			t.Error("Probe missed a message past its wire time")
		}
		buf := make([]float64, 1)
		r.Recv(0, 7, buf)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	f := NewFabric(2)
	err := f.Run(func(r *Rank) error {
		if r.ID == 0 {
			r.Send(1, 9, []float64{1})
			r.Barrier()
		} else {
			r.Barrier()
			deadline := time.Now().Add(time.Second)
			for !r.Probe(0, 9) {
				if time.Now().After(deadline) {
					t.Error("Probe never saw the message")
					break
				}
			}
			if r.Probe(0, 8) {
				t.Error("Probe saw a message with the wrong tag")
			}
			buf := make([]float64, 1)
			r.Recv(0, 9, buf)
			if buf[0] != 1 {
				t.Errorf("after probe, recv got %v", buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargePayloadThroughput(t *testing.T) {
	const n = 1 << 16
	f := NewFabric(2)
	err := f.Run(func(r *Rank) error {
		if r.ID == 0 {
			data := make([]float64, n)
			for i := range data {
				data[i] = math.Sqrt(float64(i))
			}
			r.Send(1, 0, data)
		} else {
			buf := make([]float64, n)
			r.Recv(0, 0, buf)
			for i := 0; i < n; i += 997 {
				if buf[i] != math.Sqrt(float64(i)) {
					t.Fatalf("corruption at %d", i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
