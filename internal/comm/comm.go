// Package comm is an in-process message-passing fabric with MPI-like
// semantics: a fixed set of ranks (goroutines) exchanging tagged messages
// through buffered channels, with blocking Send/Recv, non-blocking
// Isend/Irecv completed by Wait (the paper's MPI_Irecv / MPI_Isend /
// MPI_Waitall pattern), barriers and reductions.
//
// The fabric substitutes for MPI on Blue Gene (see DESIGN.md): it preserves
// the semantics that the paper's communication optimizations rely on —
// eager buffered sends, tag matching, posting receives early, and overlap
// of communication with computation — while running entirely inside one
// process. Per-rank time spent blocked in communication calls is recorded,
// which is the quantity plotted in the paper's Fig. 9.
package comm

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// chanCap is the per-(src,dst) channel buffer. Eager sends block only when
// this many messages are in flight between one pair of ranks, far above
// what the halo-exchange protocol keeps outstanding.
const chanCap = 256

type message struct {
	tag  int
	data []float64
	// ready is the simulated wire arrival time (zero when no delay model
	// is installed): the send stamps it, and a receive matching the
	// message blocks until it has passed.
	ready time.Time
}

// DelayFunc models per-message wire time. When non-nil, a message sent at
// time t is delivered no earlier than t plus the returned duration, so
// wall-clock measurements feel the simulated network. The clock starts at
// the send: a receiver that computes while the message is in flight —
// the GC-C overlap — genuinely hides the wire time, and only a receive
// issued before arrival blocks for the remainder. Bytes is the payload
// size in bytes (8 per float64).
type DelayFunc func(src, dst, bytes int) time.Duration

// Fabric connects N ranks. Create one with NewFabric, launch the ranks with
// Run, and read per-rank statistics afterwards. A Fabric may be used for a
// single Run at a time; statistics accumulate across Runs on the same
// fabric.
type Fabric struct {
	n     int
	chans [][]chan message
	delay DelayFunc

	scratchMu sync.Mutex // protects nothing hot: scratch slots are per-rank
	scratch   [][]float64

	bar *barrier

	ranks []*Rank
}

// NewFabric returns a fabric connecting n ranks.
func NewFabric(n int) *Fabric {
	if n < 1 {
		panic("comm: fabric needs at least one rank")
	}
	f := &Fabric{n: n, scratch: make([][]float64, n), bar: newBarrier(n)}
	f.chans = make([][]chan message, n)
	for s := 0; s < n; s++ {
		f.chans[s] = make([]chan message, n)
		for d := 0; d < n; d++ {
			f.chans[s][d] = make(chan message, chanCap)
		}
	}
	f.ranks = make([]*Rank, n)
	for i := 0; i < n; i++ {
		f.ranks[i] = &Rank{ID: i, N: n, f: f, pending: make(map[pendKey][]message)}
	}
	return f
}

// WithDelay installs a simulated per-message delay model and returns f.
func (f *Fabric) WithDelay(d DelayFunc) *Fabric {
	f.delay = d
	return f
}

// N returns the number of ranks.
func (f *Fabric) N() int { return f.n }

// Run executes fn once per rank, each in its own goroutine, and waits for
// all of them. Panics in rank functions are recovered and reported as
// errors together with any errors returned by fn.
func (f *Fabric) Run(fn func(*Rank) error) error {
	var wg sync.WaitGroup
	errs := make([]error, f.n)
	for i := 0; i < f.n; i++ {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r.ID] = fmt.Errorf("comm: rank %d panicked: %v\n%s", r.ID, p, debug.Stack())
				}
			}()
			errs[r.ID] = fn(r)
		}(f.ranks[i])
	}
	wg.Wait()
	return errors.Join(errs...)
}

// CommTimes returns the accumulated per-rank time spent blocked in
// communication calls (Send, Recv, Wait, Barrier excluded). Valid after Run
// returns.
func (f *Fabric) CommTimes() []time.Duration {
	ts := make([]time.Duration, f.n)
	for i, r := range f.ranks {
		ts[i] = r.commTime
	}
	return ts
}

// BytesSent returns per-rank payload bytes sent. Valid after Run returns.
func (f *Fabric) BytesSent() []int64 {
	bs := make([]int64, f.n)
	for i, r := range f.ranks {
		bs[i] = r.bytesSent
	}
	return bs
}

// MessagesSent returns per-rank message counts. Valid after Run returns.
func (f *Fabric) MessagesSent() []int64 {
	ms := make([]int64, f.n)
	for i, r := range f.ranks {
		ms[i] = r.msgsSent
	}
	return ms
}

type pendKey struct{ src, tag int }

// Rank is one participant's handle to the fabric. A Rank must be used only
// from the goroutine Run started for it.
type Rank struct {
	ID, N int
	f     *Fabric

	pending   map[pendKey][]message
	commTime  time.Duration
	bytesSent int64
	msgsSent  int64
}

// CommTime returns the communication time accumulated by this rank so far.
func (r *Rank) CommTime() time.Duration { return r.commTime }

// BytesSent returns the payload bytes this rank has sent so far.
func (r *Rank) BytesSent() int64 { return r.bytesSent }

// MessagesSent returns the number of messages this rank has sent so far.
func (r *Rank) MessagesSent() int64 { return r.msgsSent }

// Send delivers data to rank dst with the given tag. The payload is copied,
// so the caller may reuse data immediately (MPI buffered-send semantics).
func (r *Rank) Send(dst, tag int, data []float64) {
	t0 := time.Now()
	cp := append([]float64(nil), data...)
	m := message{tag: tag, data: cp}
	if r.f.delay != nil {
		m.ready = t0.Add(r.f.delay(r.ID, dst, 8*len(data)))
	}
	r.f.chans[r.ID][dst] <- m
	r.bytesSent += int64(8 * len(data))
	r.msgsSent++
	r.commTime += time.Since(t0)
}

// Recv blocks until a message with the given tag arrives from src, copies
// its payload into buf, and returns the number of values received. Messages
// with other tags arriving first are buffered for later receives. Recv
// panics if the payload exceeds len(buf).
func (r *Rank) Recv(src, tag int, buf []float64) int {
	t0 := time.Now()
	m := r.match(src, tag)
	n := copy(buf, m.data)
	if n < len(m.data) {
		panic(fmt.Sprintf("comm: rank %d Recv(src=%d, tag=%d): buffer %d < message %d", r.ID, src, tag, len(buf), len(m.data)))
	}
	r.commTime += time.Since(t0)
	return n
}

// match returns the next message from src with the given tag, consuming the
// pending queue first.
func (r *Rank) match(src, tag int) message {
	key := pendKey{src, tag}
	if q := r.pending[key]; len(q) > 0 {
		m := q[0]
		r.pending[key] = q[1:]
		waitWire(m)
		return m
	}
	ch := r.f.chans[src][r.ID]
	for {
		m := <-ch
		if m.tag == tag {
			waitWire(m)
			return m
		}
		k := pendKey{src, m.tag}
		r.pending[k] = append(r.pending[k], m)
	}
}

// waitWire blocks until the message's simulated wire arrival time. Only
// the matched receive waits — buffering an out-of-order message does not
// charge its wire time to the wrong call.
func waitWire(m message) {
	if m.ready.IsZero() {
		return
	}
	if d := time.Until(m.ready); d > 0 {
		time.Sleep(d)
	}
}

// Request is an in-flight non-blocking operation, completed by Wait.
type Request struct {
	recv     bool
	src, tag int
	buf      []float64
	done     bool
	n        int
}

// N returns the number of values received; valid for completed receive
// requests.
func (q *Request) N() int { return q.n }

// Done reports whether the request has completed.
func (q *Request) Done() bool { return q.done }

// Isend starts a non-blocking send. With the fabric's eager buffered
// protocol the payload is copied and enqueued immediately, so the returned
// request is already complete; it exists so call sites mirror the MPI
// Isend/Waitall structure of the paper's code.
func (r *Rank) Isend(dst, tag int, data []float64) *Request {
	r.Send(dst, tag, data)
	return &Request{done: true}
}

// Irecv posts a non-blocking receive into buf. The receive is matched when
// Wait is called on the returned request ("the MPI_Irecv is posted before
// the local stream calculation", §V.E — posting early lets Wait find the
// message already buffered, which is what shrinks the exposed wait time).
func (r *Rank) Irecv(src, tag int, buf []float64) *Request {
	return &Request{recv: true, src: src, tag: tag, buf: buf}
}

// Wait completes the given requests (MPI_Waitall).
func (r *Rank) Wait(reqs ...*Request) {
	t0 := time.Now()
	for _, q := range reqs {
		if q == nil || q.done {
			continue
		}
		if !q.recv {
			q.done = true
			continue
		}
		m := r.match(q.src, q.tag)
		q.n = copy(q.buf, m.data)
		if q.n < len(m.data) {
			panic(fmt.Sprintf("comm: rank %d Wait(src=%d, tag=%d): buffer %d < message %d", r.ID, q.src, q.tag, len(q.buf), len(m.data)))
		}
		q.done = true
	}
	r.commTime += time.Since(t0)
}

// Probe reports whether a message with the given tag from src is already
// available without blocking. Under a delay model a message counts as
// available only once its simulated wire arrival time has passed — the
// same clock match() enforces — so polling Probe to decide between
// computing and receiving sees the simulated network, not the channel.
func (r *Rank) Probe(src, tag int) bool {
	arrived := func(m message) bool {
		return m.ready.IsZero() || !m.ready.After(time.Now())
	}
	for _, m := range r.pending[pendKey{src, tag}] {
		if arrived(m) {
			return true
		}
	}
	for {
		select {
		case m := <-r.f.chans[src][r.ID]:
			k := pendKey{src, m.tag}
			r.pending[k] = append(r.pending[k], m)
			if m.tag == tag && arrived(m) {
				return true
			}
		default:
			return false
		}
	}
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() { r.f.bar.await() }

// AllReduceSum element-wise sums vals across all ranks; every rank receives
// the full result. Implemented with a shared scratch exchange bracketed by
// barriers, which is deadlock-free by construction.
func (r *Rank) AllReduceSum(vals []float64) []float64 {
	r.f.scratch[r.ID] = append([]float64(nil), vals...)
	r.Barrier()
	out := make([]float64, len(vals))
	for rank := 0; rank < r.N; rank++ {
		for i, v := range r.f.scratch[rank] {
			if i < len(out) {
				out[i] += v
			}
		}
	}
	r.Barrier()
	return out
}

// AllReduceMax element-wise maximizes vals across all ranks.
func (r *Rank) AllReduceMax(vals []float64) []float64 {
	r.f.scratch[r.ID] = append([]float64(nil), vals...)
	r.Barrier()
	out := append([]float64(nil), r.f.scratch[0]...)
	for rank := 1; rank < r.N; rank++ {
		for i, v := range r.f.scratch[rank] {
			if i < len(out) && v > out[i] {
				out[i] = v
			}
		}
	}
	r.Barrier()
	return out
}

// Gather collects each rank's vals at root, returned in rank order; other
// ranks receive nil. All ranks must call Gather.
func (r *Rank) Gather(root int, vals []float64) [][]float64 {
	r.f.scratch[r.ID] = append([]float64(nil), vals...)
	r.Barrier()
	var out [][]float64
	if r.ID == root {
		out = make([][]float64, r.N)
		for rank := 0; rank < r.N; rank++ {
			out[rank] = append([]float64(nil), r.f.scratch[rank]...)
		}
	}
	r.Barrier()
	return out
}

// barrier is a reusable N-party barrier.
type barrier struct {
	mu    sync.Mutex
	n     int
	count int
	ch    chan struct{}
}

func newBarrier(n int) *barrier {
	return &barrier{n: n, ch: make(chan struct{})}
}

func (b *barrier) await() {
	b.mu.Lock()
	ch := b.ch
	b.count++
	if b.count == b.n {
		b.count = 0
		b.ch = make(chan struct{})
		close(ch)
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	<-ch
}
