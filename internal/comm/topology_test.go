package comm

import "testing"

func TestCartTopologyRoundTrip(t *testing.T) {
	top, err := NewCartTopology(24, [3]int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[3]int]bool)
	for r := 0; r < 24; r++ {
		c := top.Coords(r)
		if seen[c] {
			t.Fatalf("duplicate coords %v", c)
		}
		seen[c] = true
		if top.Rank(c) != r {
			t.Fatalf("Rank(Coords(%d)) = %d", r, top.Rank(c))
		}
		for a := 0; a < 3; a++ {
			if top.Shift(top.Shift(r, a, +1), a, -1) != r {
				t.Errorf("shift not inverse at rank %d axis %d", r, a)
			}
			if top.Shift(r, a, top.P[a]) != r {
				t.Errorf("full-ring shift not identity at rank %d axis %d", r, a)
			}
		}
	}
}

func TestCartTopologySlabMatchesLinear(t *testing.T) {
	top, err := NewCartTopology(5, [3]int{5, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 5; r++ {
		if c := top.Coords(r); c[0] != r || c[1] != 0 || c[2] != 0 {
			t.Errorf("slab coords of %d = %v", r, c)
		}
		nb := top.Neighbors(r)
		if nb[0][0] != (r+4)%5 || nb[0][1] != (r+1)%5 {
			t.Errorf("slab x neighbors of %d = %v", r, nb[0])
		}
		if nb[1] != [2]int{r, r} || nb[2] != [2]int{r, r} {
			t.Errorf("undecomposed axes of %d should self-neighbor, got %v", r, nb)
		}
	}
}

func TestCartTopologyOnFabric(t *testing.T) {
	f := NewFabric(8)
	if _, err := f.Cart([3]int{2, 2, 2}); err != nil {
		t.Errorf("2x2x2 over 8 ranks rejected: %v", err)
	}
	if _, err := f.Cart([3]int{2, 2, 3}); err == nil {
		t.Error("mismatched topology accepted")
	}
	if _, err := f.Cart([3]int{8, 0, 1}); err == nil {
		t.Error("zero-extent topology accepted")
	}
}

// TestCartTopologyMessaging exercises a real neighbor exchange over the
// topology: every rank sends its ID around the +x ring and must receive
// its -x neighbor's ID.
func TestCartTopologyMessaging(t *testing.T) {
	f := NewFabric(8)
	top, _ := f.Cart([3]int{2, 2, 2})
	err := f.Run(func(r *Rank) error {
		up := top.Shift(r.ID, 0, +1)
		down := top.Shift(r.ID, 0, -1)
		r.Send(up, 7, []float64{float64(r.ID)})
		buf := make([]float64, 1)
		r.Recv(down, 7, buf)
		if int(buf[0]) != down {
			t.Errorf("rank %d: got %v from %d", r.ID, buf[0], down)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCartTopologyBounded: on a bounded axis, shifts off either global
// edge resolve to NoNeighbor; interior shifts and periodic axes are
// unchanged.
func TestCartTopologyBounded(t *testing.T) {
	top, err := NewCartTopologyBounded(12, [3]int{3, 2, 2}, [3]bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 12; r++ {
		c := top.Coords(r)
		nb := top.Neighbors(r)
		for a := 0; a < 3; a++ {
			wantLo, wantHi := top.Shift(r, a, -1), top.Shift(r, a, +1)
			if nb[a][0] != wantLo || nb[a][1] != wantHi {
				t.Fatalf("rank %d axis %d: Neighbors %v != Shift (%d,%d)", r, a, nb[a], wantLo, wantHi)
			}
			if !top.Bounded[a] {
				continue
			}
			if c[a] == 0 && nb[a][0] != NoNeighbor {
				t.Errorf("rank %d axis %d: low edge has neighbor %d", r, a, nb[a][0])
			}
			if c[a] == top.P[a]-1 && nb[a][1] != NoNeighbor {
				t.Errorf("rank %d axis %d: high edge has neighbor %d", r, a, nb[a][1])
			}
			if c[a] > 0 && nb[a][0] == NoNeighbor || c[a] < top.P[a]-1 && nb[a][1] == NoNeighbor {
				t.Errorf("rank %d axis %d: interior neighbor missing (%v)", r, a, nb[a])
			}
		}
		// Walking past the edge in one big stride is also NoNeighbor.
		if top.Shift(r, 0, 3) != NoNeighbor || top.Shift(r, 0, -3) != NoNeighbor {
			t.Errorf("rank %d: long shift across a bounded axis found a rank", r)
		}
		// The periodic z axis still wraps.
		if top.Shift(r, 2, 2) != r {
			t.Errorf("rank %d: periodic z full-ring shift not identity", r)
		}
	}
}
