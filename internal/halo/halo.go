// Package halo implements ghost-cell ("halo") management for the 1-D
// decomposed solver: packing and unpacking of x-plane slabs, blocking and
// non-blocking exchange protocols, and the deep-halo schedule of Kjolstad &
// Snir used by the paper (§V.A): with ghost depth d on a lattice whose
// particles cross k planes per step, each rank keeps W = d·k ghost planes
// per side and exchanges them only every d steps, recomputing the ghost
// region locally in between.
package halo

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/grid"
	"repro/internal/obs"
)

// Tags for the two message directions. "ToRight" data flows rightward: a
// rank's right border planes travel to its right neighbor's left ghost.
const (
	TagToRight = 0x100
	TagToLeft  = 0x101
)

// PackPlanes copies all Q velocities of x-planes [x0,x1) of f into buf and
// returns the number of values packed. Both layouts store whole x-planes
// contiguously, so packing is a handful of block copies. The wire format
// follows the field layout (velocity-major for SoA, cell-major for AoS);
// both endpoints of an exchange must therefore use the same layout, which
// the solver guarantees.
func PackPlanes(f *grid.Field, x0, x1 int, buf []float64) int {
	plane := f.D.PlaneCells()
	np := (x1 - x0) * plane
	if np <= 0 {
		return 0
	}
	if f.Layout == grid.AoS {
		return copy(buf, f.Data[x0*plane*f.Q:x1*plane*f.Q])
	}
	n := 0
	for v := 0; v < f.Q; v++ {
		blk := f.V(v)
		n += copy(buf[n:n+np], blk[x0*plane:x1*plane])
	}
	return n
}

// UnpackPlanes is the inverse of PackPlanes.
func UnpackPlanes(f *grid.Field, x0, x1 int, buf []float64) int {
	plane := f.D.PlaneCells()
	np := (x1 - x0) * plane
	if np <= 0 {
		return 0
	}
	if f.Layout == grid.AoS {
		return copy(f.Data[x0*plane*f.Q:x1*plane*f.Q], buf[:np*f.Q])
	}
	n := 0
	for v := 0; v < f.Q; v++ {
		blk := f.V(v)
		n += copy(blk[x0*plane:x1*plane], buf[n:n+np])
	}
	return n
}

// PackPlanesVel packs only the listed velocities of planes [x0,x1), in list
// order. Used by the no-ghost-cell ("Orig") protocol, which ships only the
// populations that actually crossed the boundary during streaming.
func PackPlanesVel(f *grid.Field, x0, x1 int, vels []int, buf []float64) int {
	plane := f.D.PlaneCells()
	np := (x1 - x0) * plane
	if np <= 0 || len(vels) == 0 {
		return 0
	}
	n := 0
	if f.Layout == grid.AoS {
		for _, v := range vels {
			for c := x0 * plane; c < x1*plane; c++ {
				buf[n] = f.Data[c*f.Q+v]
				n++
			}
		}
		return n
	}
	for _, v := range vels {
		blk := f.V(v)
		n += copy(buf[n:n+np], blk[x0*plane:x1*plane])
	}
	return n
}

// UnpackPlanesVel is the inverse of PackPlanesVel.
func UnpackPlanesVel(f *grid.Field, x0, x1 int, vels []int, buf []float64) int {
	plane := f.D.PlaneCells()
	np := (x1 - x0) * plane
	if np <= 0 || len(vels) == 0 {
		return 0
	}
	n := 0
	if f.Layout == grid.AoS {
		for _, v := range vels {
			for c := x0 * plane; c < x1*plane; c++ {
				f.Data[c*f.Q+v] = buf[n]
				n++
			}
		}
		return n
	}
	for _, v := range vels {
		blk := f.V(v)
		n += copy(blk[x0*plane:x1*plane], buf[n:n+np])
	}
	return n
}

// Exchanger owns the send/receive buffers for one rank's halo exchange.
// The field geometry is fixed at construction: own interior planes with
// width ghost planes on each x side, so plane x ∈ [width, width+own) is
// owned, [0,width) is the left ghost and [width+own, width+2·width) the
// right ghost.
type Exchanger struct {
	Q     int
	Dims  grid.Dims // field dims including ghosts
	Own   int       // owned planes
	Width int       // ghost planes per side (depth · k)
	Left  int       // left neighbor rank
	Right int       // right neighbor rank

	// Rec, when non-nil, receives pack/wire/unpack spans and per-exchange
	// traffic counts. The slab exchange is attributed to axis 0 (x).
	Rec *obs.Recorder

	sendL, sendR []float64
	recvL, recvR []float64
	reqL, reqR   *comm.Request
}

// NewExchanger builds an exchanger for a field of the given shape.
func NewExchanger(q int, d grid.Dims, own, width, left, right int) (*Exchanger, error) {
	if d.NX != own+2*width {
		return nil, fmt.Errorf("halo: field NX %d != own %d + 2*width %d", d.NX, own, width)
	}
	if width < 1 {
		return nil, fmt.Errorf("halo: width %d < 1", width)
	}
	if own < width {
		// A rank must own at least as many planes as it sends: otherwise a
		// border message would need data from two ranks away, which the
		// nearest-neighbor protocol cannot provide.
		return nil, fmt.Errorf("halo: owned planes %d < halo width %d (grow the domain or reduce depth)", own, width)
	}
	n := q * width * d.PlaneCells()
	return &Exchanger{
		Q: q, Dims: d, Own: own, Width: width, Left: left, Right: right,
		sendL: make([]float64, n), sendR: make([]float64, n),
		recvL: make([]float64, n), recvR: make([]float64, n),
	}, nil
}

// BytesPerExchange returns the payload bytes this rank sends per exchange
// (both directions).
func (e *Exchanger) BytesPerExchange() int64 {
	return int64(2 * 8 * e.Q * e.Width * e.Dims.PlaneCells())
}

// ExchangeBlocking performs a full-width halo exchange with blocking
// sends/receives (the pre-NB-C protocol, §V.E "naive implementation used
// blocking communication").
func (e *Exchanger) ExchangeBlocking(r *comm.Rank, f *grid.Field) {
	t0 := e.Rec.Begin()
	e.packBorders(f)
	// Eager buffered sends cannot deadlock; order recvs after both sends.
	r.Send(e.Left, TagToLeft, e.sendL)
	r.Send(e.Right, TagToRight, e.sendR)
	e.Rec.EndAxis(obs.Pack, 0, t0)
	e.Rec.AddComm(0, e.BytesPerExchange(), 2)
	t0 = e.Rec.Begin()
	r.Recv(e.Right, TagToLeft, e.recvR)
	r.Recv(e.Left, TagToRight, e.recvL)
	e.Rec.EndAxis(obs.Wire, 0, t0)
	t0 = e.Rec.Begin()
	e.unpackGhosts(f)
	e.Rec.EndAxis(obs.Unpack, 0, t0)
}

// PostRecvs posts the two ghost receives early (MPI_Irecv before local
// computation, §V.E).
func (e *Exchanger) PostRecvs(r *comm.Rank) {
	e.reqL = r.Irecv(e.Left, TagToRight, e.recvL)
	e.reqR = r.Irecv(e.Right, TagToLeft, e.recvR)
}

// SendBorders packs the border planes of f and sends them non-blocking.
func (e *Exchanger) SendBorders(r *comm.Rank, f *grid.Field) {
	t0 := e.Rec.Begin()
	e.packBorders(f)
	r.Isend(e.Left, TagToLeft, e.sendL)
	r.Isend(e.Right, TagToRight, e.sendR)
	e.Rec.EndAxis(obs.Pack, 0, t0)
	e.Rec.AddComm(0, e.BytesPerExchange(), 2)
}

// WaitUnpack completes the posted receives and fills the ghost planes of f.
// PostRecvs must have been called first.
func (e *Exchanger) WaitUnpack(r *comm.Rank, f *grid.Field) {
	if e.reqL == nil || e.reqR == nil {
		panic("halo: WaitUnpack without PostRecvs")
	}
	t0 := e.Rec.Begin()
	r.Wait(e.reqL, e.reqR)
	e.Rec.EndAxis(obs.Wire, 0, t0)
	e.reqL, e.reqR = nil, nil
	t0 = e.Rec.Begin()
	e.unpackGhosts(f)
	e.Rec.EndAxis(obs.Unpack, 0, t0)
}

// ExchangeNonBlocking is the NB-C protocol as one call: post receives, send
// borders, wait, unpack.
func (e *Exchanger) ExchangeNonBlocking(r *comm.Rank, f *grid.Field) {
	e.PostRecvs(r)
	e.SendBorders(r, f)
	e.WaitUnpack(r, f)
}

// ExchangeLocal fills the ghost planes directly from the owned borders for
// single-rank runs (periodic in x without messaging). It is the fast path
// used when both neighbors are the rank itself.
func (e *Exchanger) ExchangeLocal(f *grid.Field) {
	w, own := e.Width, e.Own
	// Left ghost [0,w) <- right border [own, own+w), right ghost
	// [w+own, w+own+w) <- left border [w, 2w) (periodic wraps). Staging
	// reads only owned planes and ghost writes only ghost planes, so both
	// packs may run before both unpacks.
	t0 := e.Rec.Begin()
	nR := PackPlanes(f, own, own+w, e.sendR)
	nL := PackPlanes(f, w, 2*w, e.sendL)
	e.Rec.EndAxis(obs.Pack, 0, t0)
	t0 = e.Rec.Begin()
	UnpackPlanes(f, 0, w, e.sendR[:nR])
	UnpackPlanes(f, w+own, w+own+w, e.sendL[:nL])
	e.Rec.EndAxis(obs.Unpack, 0, t0)
}

func (e *Exchanger) packBorders(f *grid.Field) {
	w, own := e.Width, e.Own
	PackPlanes(f, w, 2*w, e.sendL)     // left border -> left neighbor
	PackPlanes(f, own, own+w, e.sendR) // right border -> right neighbor
}

func (e *Exchanger) unpackGhosts(f *grid.Field) {
	w, own := e.Width, e.Own
	UnpackPlanes(f, 0, w, e.recvL)           // left ghost from left neighbor
	UnpackPlanes(f, w+own, w+own+w, e.recvR) // right ghost from right neighbor
}

// CycleExtents returns, for a deep-halo cycle of the given depth on a
// lattice with unit halo width k, the extra planes beyond the owned region
// that remain valid as *inputs* to each step s of the cycle: ext(s) =
// (depth−s)·k. The step may therefore compute outputs on owned ± (ext(s)−k)
// planes; the final step (s = depth−1) computes exactly the owned region.
func CycleExtents(depth, k int) []int {
	ext := make([]int, depth)
	for s := 0; s < depth; s++ {
		ext[s] = (depth - s) * k
	}
	return ext
}
