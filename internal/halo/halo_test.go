package halo

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/grid"
)

// fillDistinct gives every (v,cell) slot a unique value.
func fillDistinct(f *grid.Field) {
	for v := 0; v < f.Q; v++ {
		for c := 0; c < f.D.Cells(); c++ {
			f.Data[f.Idx(v, c)] = float64(v*100000 + c)
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	d := grid.Dims{NX: 6, NY: 3, NZ: 4}
	for _, l := range []grid.Layout{grid.SoA, grid.AoS} {
		src := grid.NewField(5, d, l)
		fillDistinct(src)
		buf := make([]float64, 5*2*d.PlaneCells())
		n := PackPlanes(src, 1, 3, buf)
		if n != len(buf) {
			t.Fatalf("%v: packed %d, want %d", l, n, len(buf))
		}
		dst := grid.NewField(5, d, l)
		if got := UnpackPlanes(dst, 1, 3, buf); got != n {
			t.Fatalf("%v: unpacked %d, want %d", l, got, n)
		}
		for v := 0; v < 5; v++ {
			for ix := 1; ix < 3; ix++ {
				for iy := 0; iy < d.NY; iy++ {
					for iz := 0; iz < d.NZ; iz++ {
						if dst.At(v, ix, iy, iz) != src.At(v, ix, iy, iz) {
							t.Fatalf("%v: mismatch at v=%d (%d,%d,%d)", l, v, ix, iy, iz)
						}
					}
				}
			}
		}
		// Planes outside [1,3) must be untouched.
		for v := 0; v < 5; v++ {
			for _, ix := range []int{0, 3, 4, 5} {
				if dst.At(v, ix, 0, 0) != 0 {
					t.Fatalf("%v: plane %d touched", l, ix)
				}
			}
		}
	}
}

func TestPackUnpackSameLayoutWireFormat(t *testing.T) {
	// The wire format is layout-specific (a deliberate choice: AoS planes
	// ship as one block copy). Same-layout round trips must preserve values
	// cell-by-cell; this pins the contract that both exchange endpoints use
	// the same layout.
	d := grid.Dims{NX: 4, NY: 2, NZ: 3}
	for _, l := range []grid.Layout{grid.SoA, grid.AoS} {
		src := grid.NewField(3, d, l)
		fillDistinct(src)
		buf := make([]float64, 3*d.PlaneCells())
		PackPlanes(src, 2, 3, buf)
		dst := grid.NewField(3, d, l)
		UnpackPlanes(dst, 2, 3, buf)
		for v := 0; v < 3; v++ {
			for iy := 0; iy < d.NY; iy++ {
				for iz := 0; iz < d.NZ; iz++ {
					if dst.At(v, 2, iy, iz) != src.At(v, 2, iy, iz) {
						t.Fatalf("%v: mismatch v=%d y=%d z=%d", l, v, iy, iz)
					}
				}
			}
		}
	}
}

func TestPackPlanesVelSubset(t *testing.T) {
	d := grid.Dims{NX: 4, NY: 2, NZ: 2}
	for _, l := range []grid.Layout{grid.SoA, grid.AoS} {
		src := grid.NewField(6, d, l)
		fillDistinct(src)
		vels := []int{1, 4, 5}
		buf := make([]float64, len(vels)*d.PlaneCells())
		n := PackPlanesVel(src, 1, 2, vels, buf)
		if n != len(buf) {
			t.Fatalf("%v: packed %d, want %d", l, n, len(buf))
		}
		dst := grid.NewField(6, d, l)
		UnpackPlanesVel(dst, 1, 2, vels, buf)
		for v := 0; v < 6; v++ {
			want := 0.0
			if v == 1 || v == 4 || v == 5 {
				want = src.At(v, 1, 1, 1)
			}
			if got := dst.At(v, 1, 1, 1); got != want {
				t.Fatalf("%v: v=%d got %g want %g", l, v, got, want)
			}
		}
	}
}

func TestNewExchangerValidation(t *testing.T) {
	d := grid.Dims{NX: 8, NY: 2, NZ: 2}
	if _, err := NewExchanger(3, d, 4, 2, 0, 0); err != nil {
		t.Errorf("valid exchanger rejected: %v", err)
	}
	if _, err := NewExchanger(3, d, 5, 2, 0, 0); err == nil {
		t.Error("NX mismatch accepted")
	}
	if _, err := NewExchanger(3, grid.Dims{NX: 5, NY: 2, NZ: 2}, 1, 2, 0, 0); err == nil {
		t.Error("own < width accepted")
	}
	if _, err := NewExchanger(3, grid.Dims{NX: 4, NY: 2, NZ: 2}, 4, 0, 0, 0); err == nil {
		t.Error("width 0 accepted")
	}
}

// ringFields builds one halo-extended field per rank over a global x extent,
// with globally unique values, and returns a verifier.
func ringTest(t *testing.T, ranks, own, width int, exch func(e *Exchanger, r *comm.Rank, f *grid.Field)) {
	t.Helper()
	d := grid.Dims{NX: own + 2*width, NY: 2, NZ: 2}
	q := 3
	globalVal := func(v, gx, iy, iz int) float64 {
		return float64(v*1000000 + gx*1000 + iy*10 + iz)
	}
	fab := comm.NewFabric(ranks)
	err := fab.Run(func(r *comm.Rank) error {
		f := grid.NewField(q, d, grid.SoA)
		start := r.ID * own
		for v := 0; v < q; v++ {
			for ix := 0; ix < own; ix++ {
				for iy := 0; iy < d.NY; iy++ {
					for iz := 0; iz < d.NZ; iz++ {
						f.Set(v, width+ix, iy, iz, globalVal(v, start+ix, iy, iz))
					}
				}
			}
		}
		left := (r.ID - 1 + ranks) % ranks
		right := (r.ID + 1) % ranks
		e, err := NewExchanger(q, d, own, width, left, right)
		if err != nil {
			return err
		}
		exch(e, r, f)
		// Verify ghosts now hold the periodic neighbors' border data.
		globalNX := ranks * own
		for v := 0; v < q; v++ {
			for w := 0; w < width; w++ {
				for iy := 0; iy < d.NY; iy++ {
					for iz := 0; iz < d.NZ; iz++ {
						gxL := ((start-width+w)%globalNX + globalNX) % globalNX
						if got := f.At(v, w, iy, iz); got != globalVal(v, gxL, iy, iz) {
							t.Errorf("rank %d: left ghost v=%d w=%d got %g want %g", r.ID, v, w, got, globalVal(v, gxL, iy, iz))
							return nil
						}
						gxR := (start + own + w) % globalNX
						if got := f.At(v, width+own+w, iy, iz); got != globalVal(v, gxR, iy, iz) {
							t.Errorf("rank %d: right ghost v=%d w=%d got %g want %g", r.ID, v, w, got, globalVal(v, gxR, iy, iz))
							return nil
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeBlockingRing(t *testing.T) {
	ringTest(t, 4, 3, 2, func(e *Exchanger, r *comm.Rank, f *grid.Field) {
		e.ExchangeBlocking(r, f)
	})
}

func TestExchangeNonBlockingRing(t *testing.T) {
	ringTest(t, 3, 4, 1, func(e *Exchanger, r *comm.Rank, f *grid.Field) {
		e.ExchangeNonBlocking(r, f)
	})
}

func TestExchangeSplitPhases(t *testing.T) {
	// PostRecvs / SendBorders / WaitUnpack in the overlapped order.
	ringTest(t, 4, 4, 3, func(e *Exchanger, r *comm.Rank, f *grid.Field) {
		e.PostRecvs(r)
		e.SendBorders(r, f)
		e.WaitUnpack(r, f)
	})
}

func TestExchangeTwoRanks(t *testing.T) {
	// With 2 ranks, each rank's left and right neighbor is the same rank;
	// tag direction must disambiguate the two messages.
	ringTest(t, 2, 5, 2, func(e *Exchanger, r *comm.Rank, f *grid.Field) {
		e.ExchangeNonBlocking(r, f)
	})
}

func TestExchangeLocalSingleRank(t *testing.T) {
	ringTest(t, 1, 6, 2, func(e *Exchanger, r *comm.Rank, f *grid.Field) {
		e.ExchangeLocal(f)
	})
}

func TestWaitUnpackWithoutPostPanics(t *testing.T) {
	d := grid.Dims{NX: 6, NY: 2, NZ: 2}
	e, _ := NewExchanger(2, d, 4, 1, 0, 0)
	fab := comm.NewFabric(1)
	err := fab.Run(func(r *comm.Rank) error {
		e.WaitUnpack(r, grid.NewField(2, d, grid.SoA))
		return nil
	})
	if err == nil {
		t.Fatal("expected panic error from WaitUnpack without PostRecvs")
	}
}

func TestBytesPerExchange(t *testing.T) {
	d := grid.Dims{NX: 8, NY: 3, NZ: 5}
	e, _ := NewExchanger(19, d, 4, 2, 0, 0)
	want := int64(2 * 8 * 19 * 2 * 15)
	if got := e.BytesPerExchange(); got != want {
		t.Errorf("BytesPerExchange = %d, want %d", got, want)
	}
}

func TestCycleExtents(t *testing.T) {
	got := CycleExtents(3, 2)
	want := []int{6, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CycleExtents(3,2) = %v, want %v", got, want)
		}
	}
	if one := CycleExtents(1, 3); len(one) != 1 || one[0] != 3 {
		t.Errorf("CycleExtents(1,3) = %v, want [3]", one)
	}
}
