package halo

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/grid"
)

func TestPackBoxRoundTrip(t *testing.T) {
	d := grid.Dims{NX: 5, NY: 4, NZ: 3}
	boxes := [][2][3]int{
		{{1, 0, 0}, {3, 4, 3}}, // full cross-section: fast path
		{{0, 1, 0}, {5, 2, 3}}, // y face
		{{0, 0, 2}, {5, 4, 3}}, // z face
		{{1, 1, 1}, {3, 3, 2}}, // interior box
	}
	for _, layout := range []grid.Layout{grid.SoA, grid.AoS} {
		src := grid.NewField(2, d, layout)
		for i := range src.Data {
			src.Data[i] = float64(i) + 0.25
		}
		for _, b := range boxes {
			lo, hi := b[0], b[1]
			cells := (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2])
			buf := make([]float64, 2*cells)
			if n := PackBox(src, lo, hi, buf); n != 2*cells {
				t.Fatalf("%v box %v-%v: packed %d, want %d", layout, lo, hi, n, 2*cells)
			}
			dst := grid.NewField(2, d, layout)
			if n := UnpackBox(dst, lo, hi, buf); n != 2*cells {
				t.Fatalf("%v box %v-%v: unpacked %d", layout, lo, hi, n)
			}
			for v := 0; v < 2; v++ {
				for ix := lo[0]; ix < hi[0]; ix++ {
					for iy := lo[1]; iy < hi[1]; iy++ {
						for iz := lo[2]; iz < hi[2]; iz++ {
							if got, want := dst.At(v, ix, iy, iz), src.At(v, ix, iy, iz); got != want {
								t.Fatalf("%v box %v-%v: (%d,%d,%d,%d) = %g, want %g", layout, lo, hi, v, ix, iy, iz, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// encode gives every global cell a unique value so ghost provenance is
// checkable: v*1e6 + gx*1e4 + gy*1e2 + gz.
func encode(v, gx, gy, gz int) float64 {
	return float64(v)*1e6 + float64(gx)*1e4 + float64(gy)*1e2 + float64(gz)
}

// TestCartExchangeFillsAllGhosts runs a full exchange over several rank
// grids and asserts every ghost cell — faces, edges AND corners — holds
// the periodically wrapped global value after the sequential-axis pass.
func TestCartExchangeFillsAllGhosts(t *testing.T) {
	global := [3]int{8, 6, 6}
	const q = 2
	for _, p := range [][3]int{{4, 1, 1}, {1, 2, 2}, {2, 2, 1}, {2, 2, 2}} {
		for _, nonblocking := range []bool{false, true} {
			dec, err := decomp.NewCartesian(global, p)
			if err != nil {
				t.Fatal(err)
			}
			w := [3]int{1, 1, 1}
			fab := comm.NewFabric(dec.Ranks())
			top, err := fab.Cart(p)
			if err != nil {
				t.Fatal(err)
			}
			runErr := fab.Run(func(r *comm.Rank) error {
				var start, own [3]int
				for a := 0; a < 3; a++ {
					start[a], own[a] = dec.Own(r.ID, a)
				}
				d := grid.Dims{NX: own[0] + 2*w[0], NY: own[1] + 2*w[1], NZ: own[2] + 2*w[2]}
				f := grid.NewField(q, d, grid.SoA)
				for i := range f.Data {
					f.Data[i] = -1 // poison: ghosts must all be overwritten
				}
				for v := 0; v < q; v++ {
					for ix := 0; ix < own[0]; ix++ {
						for iy := 0; iy < own[1]; iy++ {
							for iz := 0; iz < own[2]; iz++ {
								f.Set(v, w[0]+ix, w[1]+iy, w[2]+iz,
									encode(v, start[0]+ix, start[1]+iy, start[2]+iz))
							}
						}
					}
				}
				ex, err := NewCartExchanger(q, d, own, w, r.ID, top.Neighbors(r.ID))
				if err != nil {
					return err
				}
				ex.ExchangeAll(r, f, nonblocking)
				wrap := func(g, n int) int { return ((g % n) + n) % n }
				for v := 0; v < q; v++ {
					for ix := 0; ix < d.NX; ix++ {
						for iy := 0; iy < d.NY; iy++ {
							for iz := 0; iz < d.NZ; iz++ {
								gx := wrap(start[0]+ix-w[0], global[0])
								gy := wrap(start[1]+iy-w[1], global[1])
								gz := wrap(start[2]+iz-w[2], global[2])
								if got, want := f.At(v, ix, iy, iz), encode(v, gx, gy, gz); got != want {
									t.Errorf("p=%v nb=%v rank %d: cell (%d,%d,%d,%d) = %v, want %v",
										p, nonblocking, r.ID, v, ix, iy, iz, got, want)
									return nil
								}
							}
						}
					}
				}
				return nil
			})
			if runErr != nil {
				t.Fatalf("p=%v: %v", p, runErr)
			}
		}
	}
}

// TestCartExchangePerAxisWidths: the exchanger's W [3]int is genuinely
// per-axis — every ghost cell is filled with the right global value when
// each axis carries a different halo width (the per-axis ghost-depth
// feature of the box stepper).
func TestCartExchangePerAxisWidths(t *testing.T) {
	global := [3]int{8, 8, 12}
	p := [3]int{2, 2, 2}
	const q = 2
	for _, w := range [][3]int{{2, 1, 1}, {1, 2, 3}} {
		dec, err := decomp.NewCartesian(global, p)
		if err != nil {
			t.Fatal(err)
		}
		fab := comm.NewFabric(dec.Ranks())
		top, err := fab.Cart(p)
		if err != nil {
			t.Fatal(err)
		}
		runErr := fab.Run(func(r *comm.Rank) error {
			var start, own [3]int
			for a := 0; a < 3; a++ {
				start[a], own[a] = dec.Own(r.ID, a)
			}
			d := grid.Dims{NX: own[0] + 2*w[0], NY: own[1] + 2*w[1], NZ: own[2] + 2*w[2]}
			f := grid.NewField(q, d, grid.SoA)
			for i := range f.Data {
				f.Data[i] = -1 // poison: ghosts must all be overwritten
			}
			for v := 0; v < q; v++ {
				for ix := 0; ix < own[0]; ix++ {
					for iy := 0; iy < own[1]; iy++ {
						for iz := 0; iz < own[2]; iz++ {
							f.Set(v, w[0]+ix, w[1]+iy, w[2]+iz,
								encode(v, start[0]+ix, start[1]+iy, start[2]+iz))
						}
					}
				}
			}
			ex, err := NewCartExchanger(q, d, own, w, r.ID, top.Neighbors(r.ID))
			if err != nil {
				return err
			}
			for a := 0; a < 3; a++ {
				if !ex.Messaging(a) {
					t.Errorf("w=%v rank %d: axis %d not messaging on a 2x2x2 grid", w, r.ID, a)
				}
			}
			ex.ExchangeAll(r, f, true)
			wrap := func(g, n int) int { return ((g % n) + n) % n }
			for v := 0; v < q; v++ {
				for ix := 0; ix < d.NX; ix++ {
					for iy := 0; iy < d.NY; iy++ {
						for iz := 0; iz < d.NZ; iz++ {
							gx := wrap(start[0]+ix-w[0], global[0])
							gy := wrap(start[1]+iy-w[1], global[1])
							gz := wrap(start[2]+iz-w[2], global[2])
							if got, want := f.At(v, ix, iy, iz), encode(v, gx, gy, gz); got != want {
								t.Errorf("w=%v rank %d: cell (%d,%d,%d,%d) = %v, want %v",
									w, r.ID, v, ix, iy, iz, got, want)
								return nil
							}
						}
					}
				}
			}
			return nil
		})
		if runErr != nil {
			t.Fatalf("w=%v: %v", w, runErr)
		}
	}
}

// TestMessaging pins the axis classification the overlapped schedule
// dispatches on: self-neighbor axes wrap locally, NoNeighbor-only axes
// are boundary fills, anything with a real neighbor messages.
func TestMessaging(t *testing.T) {
	d := grid.Dims{NX: 6, NY: 6, NZ: 6}
	own, w := [3]int{4, 4, 4}, [3]int{1, 1, 1}
	ex, err := NewCartExchanger(2, d, own, w, 0, [3][2]int{
		{1, 1},                   // real neighbor both sides
		{0, 0},                   // self: local wrap
		{NoNeighbor, NoNeighbor}, // bounded, undecomposed
	})
	if err != nil {
		t.Fatal(err)
	}
	for a, want := range []bool{true, false, false} {
		if got := ex.Messaging(a); got != want {
			t.Errorf("Messaging(%d) = %v, want %v", a, got, want)
		}
	}
	ex.Neighbors[2] = [2]int{NoNeighbor, 1} // bounded edge with one neighbor
	if !ex.Messaging(2) {
		t.Error("bounded edge with a real neighbor must message")
	}
}

// TestCartExchangeDeepHalo repeats the ghost check with width-2 halos
// (ghost depth 2 on a k=1 lattice).
func TestCartExchangeDeepHalo(t *testing.T) {
	global := [3]int{8, 8, 8}
	p := [3]int{2, 2, 1}
	dec, _ := decomp.NewCartesian(global, p)
	w := [3]int{2, 2, 2}
	fab := comm.NewFabric(dec.Ranks())
	top, _ := fab.Cart(p)
	runErr := fab.Run(func(r *comm.Rank) error {
		var start, own [3]int
		for a := 0; a < 3; a++ {
			start[a], own[a] = dec.Own(r.ID, a)
		}
		d := grid.Dims{NX: own[0] + 2*w[0], NY: own[1] + 2*w[1], NZ: own[2] + 2*w[2]}
		f := grid.NewField(1, d, grid.SoA)
		for ix := 0; ix < own[0]; ix++ {
			for iy := 0; iy < own[1]; iy++ {
				for iz := 0; iz < own[2]; iz++ {
					f.Set(0, w[0]+ix, w[1]+iy, w[2]+iz,
						encode(0, start[0]+ix, start[1]+iy, start[2]+iz))
				}
			}
		}
		ex, err := NewCartExchanger(1, d, own, w, r.ID, top.Neighbors(r.ID))
		if err != nil {
			return err
		}
		ex.ExchangeAll(r, f, true)
		wrap := func(g, n int) int { return ((g % n) + n) % n }
		for ix := 0; ix < d.NX; ix++ {
			for iy := 0; iy < d.NY; iy++ {
				for iz := 0; iz < d.NZ; iz++ {
					gx := wrap(start[0]+ix-w[0], global[0])
					gy := wrap(start[1]+iy-w[1], global[1])
					gz := wrap(start[2]+iz-w[2], global[2])
					if got, want := f.At(0, ix, iy, iz), encode(0, gx, gy, gz); got != want {
						t.Errorf("rank %d: cell (%d,%d,%d) = %v, want %v", r.ID, ix, iy, iz, got, want)
						return nil
					}
				}
			}
		}
		// Per-axis byte accounting: x and y decomposed, z local.
		ab := ex.AxisBytes()
		if ab[0] == 0 || ab[1] == 0 || ab[2] != 0 {
			t.Errorf("rank %d: axis bytes %v, want x,y > 0 and z == 0", r.ID, ab)
		}
		if ab[0] != ex.BytesPerExchange(0) {
			t.Errorf("rank %d: axis 0 bytes %d != BytesPerExchange %d", r.ID, ab[0], ex.BytesPerExchange(0))
		}
		return nil
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
}

// TestCartExchangeBoundedAxes is the mixed periodic/bounded table: for
// every combination of rank grid and per-axis boundedness, a full
// exchange must (a) leave every ghost cell whose global coordinate falls
// outside the domain on a bounded axis untouched — no wraparound data
// ever lands in a boundary ghost face — and (b) still deliver the correct
// wrapped value to every in-domain ghost cell, edges and corners
// included.
func TestCartExchangeBoundedAxes(t *testing.T) {
	const poison = -1.0
	global := [3]int{8, 6, 6}
	const q = 2
	cases := []struct {
		name    string
		p       [3]int
		bounded [3]bool
	}{
		{"slab, x bounded", [3]int{4, 1, 1}, [3]bool{true, false, false}},
		{"slab, y bounded undecomposed", [3]int{4, 1, 1}, [3]bool{false, true, false}},
		{"slab, all bounded", [3]int{4, 1, 1}, [3]bool{true, true, true}},
		{"pencil, x bounded", [3]int{2, 2, 1}, [3]bool{true, false, false}},
		{"pencil, xy bounded", [3]int{2, 2, 1}, [3]bool{true, true, false}},
		{"block, x bounded", [3]int{2, 2, 2}, [3]bool{true, false, false}},
		{"block, xy bounded", [3]int{2, 2, 2}, [3]bool{true, true, false}},
		{"block, all bounded", [3]int{2, 2, 2}, [3]bool{true, true, true}},
		{"single rank, xy bounded", [3]int{1, 1, 1}, [3]bool{true, true, false}},
	}
	for _, tc := range cases {
		for _, nonblocking := range []bool{false, true} {
			dec, err := decomp.NewCartesianBounded(global, tc.p, tc.bounded)
			if err != nil {
				t.Fatal(err)
			}
			w := [3]int{1, 1, 1}
			fab := comm.NewFabric(dec.Ranks())
			top, err := fab.CartBounded(tc.p, tc.bounded)
			if err != nil {
				t.Fatal(err)
			}
			runErr := fab.Run(func(r *comm.Rank) error {
				var start, own [3]int
				for a := 0; a < 3; a++ {
					start[a], own[a] = dec.Own(r.ID, a)
				}
				d := grid.Dims{NX: own[0] + 2*w[0], NY: own[1] + 2*w[1], NZ: own[2] + 2*w[2]}
				f := grid.NewField(q, d, grid.SoA)
				for i := range f.Data {
					f.Data[i] = poison
				}
				for v := 0; v < q; v++ {
					for ix := 0; ix < own[0]; ix++ {
						for iy := 0; iy < own[1]; iy++ {
							for iz := 0; iz < own[2]; iz++ {
								f.Set(v, w[0]+ix, w[1]+iy, w[2]+iz,
									encode(v, start[0]+ix, start[1]+iy, start[2]+iz))
							}
						}
					}
				}
				ex, err := NewCartExchanger(q, d, own, w, r.ID, top.Neighbors(r.ID))
				if err != nil {
					return err
				}
				ex.ExchangeAll(r, f, nonblocking)
				wrap := func(g, n int) int { return ((g % n) + n) % n }
				for v := 0; v < q; v++ {
					for ix := 0; ix < d.NX; ix++ {
						for iy := 0; iy < d.NY; iy++ {
							for iz := 0; iz < d.NZ; iz++ {
								g := [3]int{start[0] + ix - w[0], start[1] + iy - w[1], start[2] + iz - w[2]}
								outside := false
								for a := 0; a < 3; a++ {
									if tc.bounded[a] && (g[a] < 0 || g[a] >= global[a]) {
										outside = true
									}
								}
								got := f.At(v, ix, iy, iz)
								if outside {
									// A boundary ghost cell: nothing may have
									// been exchanged or wrapped into it.
									if got != poison {
										t.Errorf("%s nb=%v rank %d: boundary ghost (%d,%d,%d,%d) overwritten with %v",
											tc.name, nonblocking, r.ID, v, ix, iy, iz, got)
										return nil
									}
									continue
								}
								want := encode(v, wrap(g[0], global[0]), wrap(g[1], global[1]), wrap(g[2], global[2]))
								if got != want {
									t.Errorf("%s nb=%v rank %d: cell (%d,%d,%d,%d) = %v, want %v",
										tc.name, nonblocking, r.ID, v, ix, iy, iz, got, want)
									return nil
								}
							}
						}
					}
				}
				// Per-axis byte accounting must reflect the skipped faces:
				// an edge rank of a bounded decomposed axis sends one face,
				// an interior rank two.
				for a := 0; a < 3; a++ {
					faces := 0
					for s := 0; s < 2; s++ {
						if n := ex.Neighbors[a][s]; n != NoNeighbor && n != r.ID {
							faces++
						}
					}
					per := int64(8 * q * w[a] * (d.Cells() / [3]int{d.NX, d.NY, d.NZ}[a]))
					if want := int64(faces) * per; ex.BytesPerExchange(a) != want {
						t.Errorf("%s rank %d axis %d: BytesPerExchange = %d, want %d (%d faces)",
							tc.name, r.ID, a, ex.BytesPerExchange(a), want, faces)
					}
				}
				return nil
			})
			if runErr != nil {
				t.Fatalf("%s: %v", tc.name, runErr)
			}
		}
	}
}

func TestNewCartExchangerValidation(t *testing.T) {
	d := grid.Dims{NX: 6, NY: 6, NZ: 6}
	nb := [3][2]int{{0, 0}, {0, 0}, {0, 0}}
	if _, err := NewCartExchanger(1, d, [3]int{4, 4, 4}, [3]int{1, 1, 1}, 0, nb); err != nil {
		t.Errorf("valid shape rejected: %v", err)
	}
	if _, err := NewCartExchanger(1, d, [3]int{4, 4, 3}, [3]int{1, 1, 1}, 0, nb); err == nil {
		t.Error("mismatched extent accepted")
	}
	d2 := grid.Dims{NX: 7, NY: 6, NZ: 6}
	if _, err := NewCartExchanger(1, d2, [3]int{1, 4, 4}, [3]int{3, 1, 1}, 0, nb); err == nil {
		t.Error("own < width accepted")
	}
}
