package halo

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/grid"
	"repro/internal/obs"
)

// Cartesian halo exchange: the multi-axis generalization of the 1-D
// Exchanger. Faces normal to x keep the fast contiguous-plane path of
// PackPlanes; faces normal to y and z pack strided z-runs. Edge and
// corner ghost cells are covered without dedicated messages by the
// sequential-axis ordering trick: axes exchange one after another, each
// face spanning the full local extent (ghosts included) of the axes
// already exchanged, so diagonal data rides along on the second and third
// hops — exactly the deep-halo ordering argument of Kjolstad & Snir.

// cartTag returns the message tag for data flowing along axis in
// direction dir (0 = toward lower coordinates, 1 = toward higher).
func cartTag(axis, dir int) int { return 0x200 + 2*axis + dir }

// NoNeighbor marks a missing neighbor (a global boundary face of a
// bounded axis) in CartExchanger.Neighbors; it matches comm.NoNeighbor.
const NoNeighbor = -1

// PackBox copies all Q velocities of the axis-aligned box [lo,hi) of f
// into buf and returns the number of values packed. The wire format
// follows the field layout (velocity-major for SoA, cell-major for AoS);
// both endpoints of an exchange must use the same layout. Boxes spanning
// full y/z cross-sections degenerate to the contiguous-plane fast path.
func PackBox(f *grid.Field, lo, hi [3]int, buf []float64) int {
	if fullCross(f.D, lo, hi) {
		return PackPlanes(f, lo[0], hi[0], buf)
	}
	zn := hi[2] - lo[2]
	if zn <= 0 || hi[1] <= lo[1] || hi[0] <= lo[0] {
		return 0
	}
	n := 0
	if f.Layout == grid.AoS {
		q := f.Q
		for ix := lo[0]; ix < hi[0]; ix++ {
			for iy := lo[1]; iy < hi[1]; iy++ {
				off := f.D.Index(ix, iy, lo[2]) * q
				n += copy(buf[n:n+zn*q], f.Data[off:off+zn*q])
			}
		}
		return n
	}
	for v := 0; v < f.Q; v++ {
		blk := f.V(v)
		for ix := lo[0]; ix < hi[0]; ix++ {
			for iy := lo[1]; iy < hi[1]; iy++ {
				off := f.D.Index(ix, iy, lo[2])
				n += copy(buf[n:n+zn], blk[off:off+zn])
			}
		}
	}
	return n
}

// UnpackBox is the inverse of PackBox.
func UnpackBox(f *grid.Field, lo, hi [3]int, buf []float64) int {
	if fullCross(f.D, lo, hi) {
		return UnpackPlanes(f, lo[0], hi[0], buf)
	}
	zn := hi[2] - lo[2]
	if zn <= 0 || hi[1] <= lo[1] || hi[0] <= lo[0] {
		return 0
	}
	n := 0
	if f.Layout == grid.AoS {
		q := f.Q
		for ix := lo[0]; ix < hi[0]; ix++ {
			for iy := lo[1]; iy < hi[1]; iy++ {
				off := f.D.Index(ix, iy, lo[2]) * q
				n += copy(f.Data[off:off+zn*q], buf[n:n+zn*q])
			}
		}
		return n
	}
	for v := 0; v < f.Q; v++ {
		blk := f.V(v)
		for ix := lo[0]; ix < hi[0]; ix++ {
			for iy := lo[1]; iy < hi[1]; iy++ {
				off := f.D.Index(ix, iy, lo[2])
				n += copy(blk[off:off+zn], buf[n:n+zn])
			}
		}
	}
	return n
}

// fullCross reports whether the box spans the full y and z extents, the
// precondition for the contiguous x-plane fast path.
func fullCross(d grid.Dims, lo, hi [3]int) bool {
	return lo[1] == 0 && hi[1] == d.NY && lo[2] == 0 && hi[2] == d.NZ
}

// CartExchanger owns the send/receive buffers for one rank's multi-axis
// halo exchange. The local field spans Own[a] + 2·W[a] cells on axis a:
// [W[a], W[a]+Own[a]) is owned, [0, W[a]) the low ghost and
// [W[a]+Own[a], Own[a]+2·W[a]) the high ghost.
type CartExchanger struct {
	Q    int
	Dims grid.Dims // local dims including ghosts
	Own  [3]int    // owned extents
	W    [3]int    // ghost width per side, per axis
	Self int       // this rank's ID (self-neighbor axes wrap locally)
	// Neighbors[axis][0] is the low-side rank, [axis][1] the high-side.
	// An entry of NoNeighbor marks a global boundary face of a bounded
	// (non-periodic) axis: no message crosses it and no wraparound copy is
	// made — its ghost cells are left for the caller to fill from boundary
	// conditions.
	Neighbors [3][2]int

	// Rec, when non-nil, receives per-axis pack/wire/unpack spans and
	// traffic counts.
	Rec *obs.Recorder

	send, recv [3][2][]float64
	reqs       [3][2]*comm.Request
	axisBytes  [3]int64 // payload bytes sent per axis, accumulated
}

// NewCartExchanger builds an exchanger for a field of the given shape.
func NewCartExchanger(q int, d grid.Dims, own, w [3]int, self int, neighbors [3][2]int) (*CartExchanger, error) {
	dims := [3]int{d.NX, d.NY, d.NZ}
	for a := 0; a < 3; a++ {
		if dims[a] != own[a]+2*w[a] {
			return nil, fmt.Errorf("halo: axis %d extent %d != own %d + 2*width %d", a, dims[a], own[a], w[a])
		}
		if w[a] < 1 {
			return nil, fmt.Errorf("halo: axis %d width %d < 1", a, w[a])
		}
		if own[a] < w[a] {
			// Same nearest-neighbor constraint as the 1-D exchanger: a
			// border message must be owned entirely by one rank.
			return nil, fmt.Errorf("halo: axis %d owned extent %d < halo width %d (grow the domain or reduce depth)", a, own[a], w[a])
		}
	}
	e := &CartExchanger{Q: q, Dims: d, Own: own, W: w, Self: self, Neighbors: neighbors}
	for a := 0; a < 3; a++ {
		n := q * w[a] * e.crossCells(a)
		for s := 0; s < 2; s++ {
			e.send[a][s] = make([]float64, n)
			e.recv[a][s] = make([]float64, n)
		}
	}
	return e, nil
}

// crossCells returns the number of cells in one face layer normal to
// axis: the product of the full local extents (ghosts included) of the
// other axes — full, because later-axis ghost regions ride along.
func (e *CartExchanger) crossCells(axis int) int {
	dims := [3]int{e.Dims.NX, e.Dims.NY, e.Dims.NZ}
	n := 1
	for b := 0; b < 3; b++ {
		if b != axis {
			n *= dims[b]
		}
	}
	return n
}

// face returns the box of the requested region on axis: region 0 = low
// ghost, 1 = low border, 2 = high border, 3 = high ghost. The box spans
// the full local extent of the other axes.
func (e *CartExchanger) face(axis, region int) (lo, hi [3]int) {
	hi = [3]int{e.Dims.NX, e.Dims.NY, e.Dims.NZ}
	w, own := e.W[axis], e.Own[axis]
	switch region {
	case 0:
		lo[axis], hi[axis] = 0, w
	case 1:
		lo[axis], hi[axis] = w, 2*w
	case 2:
		lo[axis], hi[axis] = own, own+w
	case 3:
		lo[axis], hi[axis] = w+own, 2*w+own
	}
	return lo, hi
}

// Messaging reports whether the axis exchanges real messages: any side
// with a neighbor that is neither this rank (local periodic wrap) nor a
// global boundary face. The overlapped schedule only shrinks its interior
// on messaging axes' account — wraps and boundary fills complete
// synchronously at their slot.
func (e *CartExchanger) Messaging(axis int) bool {
	for s := 0; s < 2; s++ {
		if n := e.Neighbors[axis][s]; n != NoNeighbor && n != e.Self {
			return true
		}
	}
	return false
}

// BytesPerExchange returns the payload bytes this rank sends along axis
// per full exchange: one face payload per side that has a real neighbor —
// zero for self-neighbor (locally wrapped) axes and for boundary faces.
func (e *CartExchanger) BytesPerExchange(axis int) int64 {
	face := int64(8 * e.Q * e.W[axis] * e.crossCells(axis))
	var total int64
	for s := 0; s < 2; s++ {
		if n := e.Neighbors[axis][s]; n != NoNeighbor && n != e.Self {
			total += face
		}
	}
	return total
}

// AxisBytes returns the accumulated payload bytes sent per axis.
func (e *CartExchanger) AxisBytes() [3]int64 { return e.axisBytes }

// ExchangeAll performs a full halo exchange: axes in x, y, z order so
// edges and corners are covered by the ride-along trick. With nonblocking
// set, each axis uses the Irecv/Isend/Waitall protocol with receives
// posted before the sends (§V.E); otherwise blocking eager sends.
func (e *CartExchanger) ExchangeAll(r *comm.Rank, f *grid.Field, nonblocking bool) {
	for axis := 0; axis < 3; axis++ {
		e.ExchangeAxis(r, f, axis, nonblocking)
	}
}

// ExchangeAxis exchanges the faces normal to one axis. Both sides of a
// self-neighbor axis wrap locally without messaging. A NoNeighbor side is
// a global boundary: nothing is sent, received or wrapped there, so no
// wraparound data can ever land in a boundary ghost face. An axis with no
// neighbors on either side (bounded, undecomposed) is a no-op.
func (e *CartExchanger) ExchangeAxis(r *comm.Rank, f *grid.Field, axis int, nonblocking bool) {
	loN, hiN := e.Neighbors[axis][0], e.Neighbors[axis][1]
	if loN == e.Self && hiN == e.Self {
		e.exchangeLocalAxis(f, axis)
		return
	}
	if loN == NoNeighbor && hiN == NoNeighbor {
		return
	}
	if nonblocking {
		e.PostRecvsAxis(r, axis)
		e.SendBordersAxis(r, f, axis)
		e.WaitUnpackAxis(r, f, axis)
		return
	}
	// Eager buffered sends cannot deadlock; order recvs after both sends.
	t0 := e.Rec.Begin()
	var msgs int64
	if loN != NoNeighbor {
		n := e.packFace(f, axis, 1, e.send[axis][0])
		r.Send(loN, cartTag(axis, 0), e.send[axis][0][:n])
		e.axisBytes[axis] += int64(8 * n)
		msgs++
	}
	if hiN != NoNeighbor {
		n := e.packFace(f, axis, 2, e.send[axis][1])
		r.Send(hiN, cartTag(axis, 1), e.send[axis][1][:n])
		e.axisBytes[axis] += int64(8 * n)
		msgs++
	}
	e.Rec.EndAxis(obs.Pack, axis, t0)
	e.Rec.AddComm(axis, e.BytesPerExchange(axis), msgs)
	if hiN != NoNeighbor {
		t0 = e.Rec.Begin()
		r.Recv(hiN, cartTag(axis, 0), e.recv[axis][1])
		e.Rec.EndAxis(obs.Wire, axis, t0)
		t0 = e.Rec.Begin()
		e.unpackFace(f, axis, 3, e.recv[axis][1])
		e.Rec.EndAxis(obs.Unpack, axis, t0)
	}
	if loN != NoNeighbor {
		t0 = e.Rec.Begin()
		r.Recv(loN, cartTag(axis, 1), e.recv[axis][0])
		e.Rec.EndAxis(obs.Wire, axis, t0)
		t0 = e.Rec.Begin()
		e.unpackFace(f, axis, 0, e.recv[axis][0])
		e.Rec.EndAxis(obs.Unpack, axis, t0)
	}
}

// PostRecvsAxis posts the ghost receives for one axis early (boundary
// sides excluded).
func (e *CartExchanger) PostRecvsAxis(r *comm.Rank, axis int) {
	if n := e.Neighbors[axis][0]; n != NoNeighbor {
		e.reqs[axis][0] = r.Irecv(n, cartTag(axis, 1), e.recv[axis][0])
	}
	if n := e.Neighbors[axis][1]; n != NoNeighbor {
		e.reqs[axis][1] = r.Irecv(n, cartTag(axis, 0), e.recv[axis][1])
	}
}

// SendBordersAxis packs and sends the border faces of one axis (boundary
// sides excluded).
func (e *CartExchanger) SendBordersAxis(r *comm.Rank, f *grid.Field, axis int) {
	t0 := e.Rec.Begin()
	var msgs int64
	if n := e.Neighbors[axis][0]; n != NoNeighbor {
		nLo := e.packFace(f, axis, 1, e.send[axis][0])
		r.Isend(n, cartTag(axis, 0), e.send[axis][0][:nLo])
		e.axisBytes[axis] += int64(8 * nLo)
		msgs++
	}
	if n := e.Neighbors[axis][1]; n != NoNeighbor {
		nHi := e.packFace(f, axis, 2, e.send[axis][1])
		r.Isend(n, cartTag(axis, 1), e.send[axis][1][:nHi])
		e.axisBytes[axis] += int64(8 * nHi)
		msgs++
	}
	e.Rec.EndAxis(obs.Pack, axis, t0)
	e.Rec.AddComm(axis, e.BytesPerExchange(axis), msgs)
}

// WaitUnpackAxis completes one axis's posted receives and fills the
// corresponding ghosts.
func (e *CartExchanger) WaitUnpackAxis(r *comm.Rank, f *grid.Field, axis int) {
	for s := 0; s < 2; s++ {
		if e.Neighbors[axis][s] != NoNeighbor && e.reqs[axis][s] == nil {
			panic("halo: WaitUnpackAxis without PostRecvsAxis")
		}
	}
	t0 := e.Rec.Begin()
	if e.reqs[axis][0] != nil && e.reqs[axis][1] != nil {
		r.Wait(e.reqs[axis][0], e.reqs[axis][1])
	} else if e.reqs[axis][0] != nil {
		r.Wait(e.reqs[axis][0])
	} else if e.reqs[axis][1] != nil {
		r.Wait(e.reqs[axis][1])
	}
	e.Rec.EndAxis(obs.Wire, axis, t0)
	t0 = e.Rec.Begin()
	if e.reqs[axis][0] != nil {
		e.unpackFace(f, axis, 0, e.recv[axis][0])
	}
	if e.reqs[axis][1] != nil {
		e.unpackFace(f, axis, 3, e.recv[axis][1])
	}
	e.Rec.EndAxis(obs.Unpack, axis, t0)
	e.reqs[axis][0], e.reqs[axis][1] = nil, nil
}

// exchangeLocalAxis wraps one undecomposed axis periodically in place:
// low ghost <- high border, high ghost <- low border.
func (e *CartExchanger) exchangeLocalAxis(f *grid.Field, axis int) {
	// Staging reads only border (owned) cells and ghost writes only ghost
	// cells, so both packs may run before both unpacks.
	t0 := e.Rec.Begin()
	nHi := e.packFace(f, axis, 2, e.send[axis][1])
	nLo := e.packFace(f, axis, 1, e.send[axis][0])
	e.Rec.EndAxis(obs.Pack, axis, t0)
	t0 = e.Rec.Begin()
	e.unpackFace(f, axis, 0, e.send[axis][1][:nHi])
	e.unpackFace(f, axis, 3, e.send[axis][0][:nLo])
	e.Rec.EndAxis(obs.Unpack, axis, t0)
}

func (e *CartExchanger) packFace(f *grid.Field, axis, region int, buf []float64) int {
	lo, hi := e.face(axis, region)
	return PackBox(f, lo, hi, buf)
}

func (e *CartExchanger) unpackFace(f *grid.Field, axis, region int, buf []float64) int {
	lo, hi := e.face(axis, region)
	return UnpackBox(f, lo, hi, buf)
}
