// Package physics validates the solver against analytic fluid dynamics:
// shear-wave and Taylor-Green viscosity measurements (the BGK relation
// ν = c_s²(τ−½) must emerge from the simulation, for both lattices), and
// the Knudsen-number machinery that motivates the paper's D3Q39 model —
// flows with Kn outside [0, 0.1] are beyond Navier-Stokes and need the
// higher-order equilibrium.
package physics

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// Regime classifies a flow by Knudsen number, following the paper's §I
// (continuum hydrodynamics is trusted for Kn in [0, 0.1]) and the standard
// rarefied-gas taxonomy.
type Regime string

const (
	RegimeContinuum  Regime = "continuum"      // Kn ≤ 0.001
	RegimeSlip       Regime = "slip"           // 0.001 < Kn ≤ 0.1
	RegimeTransition Regime = "transition"     // 0.1 < Kn ≤ 10
	RegimeFree       Regime = "free-molecular" // Kn > 10
)

// ClassifyKnudsen returns the flow regime for a Knudsen number.
func ClassifyKnudsen(kn float64) Regime {
	switch {
	case kn <= 0.001:
		return RegimeContinuum
	case kn <= 0.1:
		return RegimeSlip
	case kn <= 10:
		return RegimeTransition
	default:
		return RegimeFree
	}
}

// NavierStokesValid reports whether conventional CFD is trusted at this
// Knudsen number (the paper's [0, 0.1] interval).
func NavierStokesValid(kn float64) bool { return kn <= 0.1 }

// KnudsenNumber estimates Kn = λ/L for a BGK lattice gas: the mean free
// path is λ ≈ ν/c_s, so Kn ≈ c_s(τ−½)/L with L in lattice units.
func KnudsenNumber(m *lattice.Model, tau, L float64) float64 {
	cs := math.Sqrt(m.CsSq)
	return m.Viscosity(tau) / (cs * L)
}

// TauForKnudsen inverts KnudsenNumber.
func TauForKnudsen(m *lattice.Model, kn, L float64) float64 {
	cs := math.Sqrt(m.CsSq)
	return m.TauForViscosity(kn * cs * L)
}

// ModelForKnudsen returns the lattice a user should employ at the given
// Knudsen number: D3Q19 suffices in the continuum/slip range; beyond it the
// 3rd-order D3Q39 model is required ("flows at finite Kn ... allowing the
// accurate modeling of nanoscale flows", §VII).
func ModelForKnudsen(kn float64) *lattice.Model {
	if NavierStokesValid(kn) {
		return lattice.D3Q19()
	}
	return lattice.D3Q39()
}

// DecayResult reports a viscosity measurement from an exponentially
// decaying flow.
type DecayResult struct {
	NuMeasured float64
	NuTheory   float64
	RelError   float64
	// Amplitude0 and AmplitudeT are the mode amplitudes at start and end.
	Amplitude0, AmplitudeT float64
}

// ShearWaveViscosity initializes a transverse shear wave u_y(x) =
// U0·sin(2πx/NX), advances it, and extracts the kinematic viscosity from
// the exponential decay of the mode amplitude: A(t) = A(0)·exp(−νk²t).
func ShearWaveViscosity(m *lattice.Model, n grid.Dims, tau float64, steps int, cfgMod func(*core.Config)) (*DecayResult, error) {
	const u0 = 0.01
	kx := 2 * math.Pi / float64(n.NX)
	init := func(ix, iy, iz int) (rho, ux, uy, uz float64) {
		return 1, 0, u0 * math.Sin(kx*float64(ix)), 0
	}
	cfg := core.Config{
		Model: m, N: n, Tau: tau, Steps: steps,
		Opt: core.OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1,
		Init: init, KeepField: true,
	}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	ampT := fourierAmplitudeUy(m, res.Field, kx)
	amp0 := u0
	if ampT <= 0 || ampT >= amp0 {
		return nil, fmt.Errorf("physics: shear wave did not decay (A0=%g, AT=%g)", amp0, ampT)
	}
	nu := -math.Log(ampT/amp0) / (kx * kx * float64(steps))
	theory := m.Viscosity(tau)
	return &DecayResult{
		NuMeasured: nu, NuTheory: theory,
		RelError:   math.Abs(nu-theory) / theory,
		Amplitude0: amp0, AmplitudeT: ampT,
	}, nil
}

// fourierAmplitudeUy projects the u_y velocity field onto sin(k·x).
func fourierAmplitudeUy(m *lattice.Model, f *grid.Field, kx float64) float64 {
	n := f.D
	fc := make([]float64, m.Q)
	var amp float64
	for ix := 0; ix < n.NX; ix++ {
		var uySum float64
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				f.Cell(ix, iy, iz, fc)
				rho, _, jy, _ := m.Moments(fc)
				uySum += jy / rho
			}
		}
		mean := uySum / float64(n.NY*n.NZ)
		amp += mean * math.Sin(kx*float64(ix))
	}
	return amp * 2 / float64(n.NX)
}

// TaylorGreenResult reports the kinetic-energy decay measurement.
type TaylorGreenResult struct {
	NuMeasured float64
	NuTheory   float64
	RelError   float64
	Energy0    float64
	EnergyT    float64
}

// TaylorGreenViscosity initializes the 2-D Taylor-Green vortex
// u = U0(cos kx·sin ky, −sin kx·cos ky, 0) and measures ν from the kinetic
// energy decay E(t) = E(0)·exp(−2ν(kx²+ky²)t). cfgMod, when non-nil, may
// adjust the solver configuration (ranks, collision operator, ...) before
// each run.
func TaylorGreenViscosity(m *lattice.Model, n grid.Dims, tau float64, steps int, cfgMod func(*core.Config)) (*TaylorGreenResult, error) {
	const u0 = 0.01
	kx := 2 * math.Pi / float64(n.NX)
	ky := 2 * math.Pi / float64(n.NY)
	init := func(ix, iy, iz int) (rho, ux, uy, uz float64) {
		x, y := kx*float64(ix), ky*float64(iy)
		return 1, u0 * math.Cos(x) * math.Sin(y), -u0 * math.Sin(x) * math.Cos(y), 0
	}
	energy := func(f *grid.Field) float64 {
		fc := make([]float64, m.Q)
		var e float64
		for ix := 0; ix < n.NX; ix++ {
			for iy := 0; iy < n.NY; iy++ {
				for iz := 0; iz < n.NZ; iz++ {
					f.Cell(ix, iy, iz, fc)
					rho, jx, jy, jz := m.Moments(fc)
					e += (jx*jx + jy*jy + jz*jz) / (2 * rho)
				}
			}
		}
		return e
	}
	run := func(steps int) (*grid.Field, error) {
		cfg := core.Config{
			Model: m, N: n, Tau: tau, Steps: steps,
			Opt: core.OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1,
			Init: init, KeepField: true,
		}
		if cfgMod != nil {
			cfgMod(&cfg)
		}
		res, err := core.Run(cfg)
		if err != nil {
			return nil, err
		}
		return res.Field, nil
	}
	f0, err := run(0)
	if err != nil {
		return nil, err
	}
	fT, err := run(steps)
	if err != nil {
		return nil, err
	}
	e0, eT := energy(f0), energy(fT)
	if eT <= 0 || eT >= e0 {
		return nil, fmt.Errorf("physics: Taylor-Green energy did not decay (E0=%g, ET=%g)", e0, eT)
	}
	nu := -math.Log(eT/e0) / (2 * (kx*kx + ky*ky) * float64(steps))
	theory := m.Viscosity(tau)
	return &TaylorGreenResult{
		NuMeasured: nu, NuTheory: theory,
		RelError: math.Abs(nu-theory) / theory,
		Energy0:  e0, EnergyT: eT,
	}, nil
}

// SoundSpeedResult reports a sound-speed measurement from a density wave.
type SoundSpeedResult struct {
	CsMeasured float64
	CsTheory   float64
	RelError   float64
}

// MeasureSoundSpeed launches a small standing density wave and extracts the
// oscillation period of its fundamental mode, giving the lattice sound
// speed c_s (1/√3 for D3Q19, √(2/3) for D3Q39 — the two-speed nature the
// paper highlights).
func MeasureSoundSpeed(m *lattice.Model, n grid.Dims, tau float64) (*SoundSpeedResult, error) {
	const eps = 0.001
	kx := 2 * math.Pi / float64(n.NX)
	init := func(ix, iy, iz int) (rho, ux, uy, uz float64) {
		return 1 + eps*math.Cos(kx*float64(ix)), 0, 0, 0
	}
	amplitude := func(f *grid.Field) float64 {
		fc := make([]float64, m.Q)
		var amp float64
		for ix := 0; ix < n.NX; ix++ {
			var rhoSum float64
			for iy := 0; iy < n.NY; iy++ {
				for iz := 0; iz < n.NZ; iz++ {
					f.Cell(ix, iy, iz, fc)
					rho, _, _, _ := m.Moments(fc)
					rhoSum += rho
				}
			}
			mean := rhoSum/float64(n.NY*n.NZ) - 1
			amp += mean * math.Cos(kx*float64(ix))
		}
		return amp * 2 / float64(n.NX)
	}
	// March in time and find the first sign change of the mode amplitude:
	// a standing wave crosses zero at a quarter period... the fundamental
	// rho mode behaves as cos(ω t)·exp(−γt) with ω = c_s·k, so the first
	// zero is at t = π/(2ω).
	var prev float64 = eps
	maxSteps := 8 * n.NX
	for step := 1; step <= maxSteps; step++ {
		res, err := core.Run(core.Config{
			Model: m, N: n, Tau: tau, Steps: step,
			Opt: core.OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1,
			Init: init, KeepField: true,
		})
		if err != nil {
			return nil, err
		}
		amp := amplitude(res.Field)
		if amp <= 0 && prev > 0 {
			// Linear interpolation of the zero crossing.
			frac := prev / (prev - amp)
			tZero := float64(step-1) + frac
			omega := math.Pi / (2 * tZero)
			cs := omega / kx
			theory := math.Sqrt(m.CsSq)
			return &SoundSpeedResult{
				CsMeasured: cs, CsTheory: theory,
				RelError: math.Abs(cs-theory) / theory,
			}, nil
		}
		prev = amp
	}
	return nil, fmt.Errorf("physics: density mode of %s never crossed zero in %d steps", m.Name, maxSteps)
}
