package physics

// Physics validation of the collision-operator subsystem: TRT and MRT
// must reproduce the same transport coefficients as BGK (viscosity is set
// by the shear-moment rate alone), and TRT must deliver the stability
// headroom that motivates it — the τ → ½ regime where BGK diverges.

import (
	"math"
	"testing"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// TestCollisionOperatorViscosity: shear-wave and Taylor-Green viscosity
// measurements pass for TRT and MRT at the same tolerances the suite
// applies to BGK (ν depends only on the even/shear relaxation rate).
func TestCollisionOperatorViscosity(t *testing.T) {
	specs := []collision.Spec{
		{Kind: collision.TRT},
		{Kind: collision.TRT, Magic: 3.0 / 16},
		{Kind: collision.MRT},
	}
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		for _, spec := range specs {
			spec := spec
			mod := func(c *core.Config) { c.Collision = spec }
			res, err := ShearWaveViscosity(m, grid.Dims{NX: 32, NY: 6, NZ: 6}, 0.7, 80, mod)
			if err != nil {
				t.Fatalf("%s %s shear: %v", m.Name, spec, err)
			}
			if res.RelError > 0.05 {
				t.Errorf("%s %s: shear-wave viscosity off by %.2f%% (tol 5%%)", m.Name, spec, 100*res.RelError)
			}
			tg, err := TaylorGreenViscosity(m, grid.Dims{NX: 24, NY: 24, NZ: 6}, 0.8, 80, mod)
			if err != nil {
				t.Fatalf("%s %s Taylor-Green: %v", m.Name, spec, err)
			}
			if tg.RelError > 0.07 {
				t.Errorf("%s %s: Taylor-Green viscosity off by %.2f%% (tol 7%%)", m.Name, spec, 100*tg.RelError)
			}
		}
	}
}

// lowTauCavity runs the τ = 0.51 Re=1000 cavity (L=32, so the lid speed
// is set by the Reynolds number) used by the stability tests.
func lowTauCavity(t *testing.T, spec collision.Spec, steps int) (*core.Result, float64) {
	t.Helper()
	m := lattice.D3Q19()
	const tau, re, l = 0.51, 1000.0, 32
	lidU := re * m.Viscosity(tau) / l
	res, err := core.Run(core.Config{
		Model: m, N: grid.Dims{NX: l, NY: l, NZ: 2}, Tau: tau, Steps: steps,
		Opt: core.OptSIMD, Ranks: 1, Threads: 2, GhostDepth: 1,
		Collision: spec,
		Boundary:  core.CavitySpec(lidU), KeepField: true,
	})
	if err != nil {
		t.Fatalf("%s: %v", spec, err)
	}
	return res, lidU
}

// TestTRTStabilityAtLowTau is the headline capability test: on the
// under-resolved Re=1000 cavity at τ = 0.51, BGK blows up while TRT (and
// the default MRT) run stably with bounded velocities — the stability
// wall the ROADMAP's higher-Re item needed removed.
func TestTRTStabilityAtLowTau(t *testing.T) {
	if testing.Short() {
		t.Skip("low-tau cavity transient in -short mode")
	}
	const steps = 4000
	bgk, _ := lowTauCavity(t, collision.Spec{}, steps)
	if !math.IsNaN(bgk.Mass) {
		t.Errorf("BGK at tau=0.51 Re=1000 stayed finite (mass %g); stability test needs a harder case", bgk.Mass)
	}
	for _, spec := range []collision.Spec{{Kind: collision.TRT}, {Kind: collision.MRT}} {
		res, lidU := lowTauCavity(t, spec, steps)
		if math.IsNaN(res.Mass) || math.IsInf(res.Mass, 0) {
			t.Fatalf("%s diverged at tau=0.51 Re=1000", spec)
		}
		// Mass must stay at the initial unit density per cell, and the
		// flow must stay bounded by a modest multiple of the lid speed.
		cells := float64(32 * 32 * 2)
		if d := math.Abs(res.Mass/cells - 1); d > 0.05 {
			t.Errorf("%s: mass per cell drifted to %g", spec, res.Mass/cells)
		}
		prof := CavityProfiles(lattice.D3Q19(), res.Field, lidU)
		for _, u := range prof.U {
			if math.Abs(u) > 3 {
				t.Errorf("%s: centerline u = %g lid units (unbounded)", spec, u)
				break
			}
		}
	}
}

// TestCavityRe1000Centerlines: the new workload this PR unlocks. TRT at
// L=48 (run to steady state — the Re=1000 transient needs ~48 convective
// times) lands within 5% of the Ghia et al. centerlines; the 3%-of-lid
// acceptance bound is met at L=64+, which the lbmvalidate full suite
// checks (resolution, not operator accuracy, is the binding constraint
// at L=48).
func TestCavityRe1000Centerlines(t *testing.T) {
	if testing.Short() {
		t.Skip("Re=1000 steady-state transient in -short mode")
	}
	res, err := RunCavity(CavityConfig{
		L: 48, Re: 1000, Threads: 4, Steps: 23040, // 48 convective times
		Collision: collision.Spec{Kind: collision.TRT},
	})
	if err != nil {
		t.Fatal(err)
	}
	errU, errV, err := res.CompareCavity(1000)
	if err != nil {
		t.Fatal(err)
	}
	if errU > 0.05 || errV > 0.05 {
		t.Errorf("Re=1000 L=48 TRT: centerline errors %.3f/%.3f of lid speed (tol 0.05)", errU, errV)
	}
	t.Logf("Re=1000 L=48 TRT: errU=%.4f errV=%.4f (tau=%.4f, %d steps)", errU, errV, res.Tau, res.Steps)
}

// TestCollisionOperatorForcing: the velocity-shift body force must inject
// ρ·a per step for every operator — the shift scales with the momentum
// sector's relaxation time (τ⁻ for TRT), not blindly with τ. A TRT
// channel driven with the BGK shift would converge ~40% low at Λ = ¼;
// the Poiseuille parabola catches any such miscalibration. Λ = 3/16 is
// included because it makes bounce-back Poiseuille flow exact for TRT.
func TestCollisionOperatorForcing(t *testing.T) {
	if testing.Short() {
		t.Skip("long relaxation in -short mode")
	}
	for _, spec := range []collision.Spec{
		{Kind: collision.TRT},
		{Kind: collision.TRT, Magic: 3.0 / 16},
		{Kind: collision.MRT},
	} {
		spec := spec
		res, err := PoiseuilleChannel(lattice.D3Q19(), 16, 1.0, 1e-6, 0, func(c *core.Config) {
			c.Collision = spec
		})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		t.Logf("%s H=16: max rel err %.4f", spec, res.MaxRelErr)
		if res.MaxRelErr > 0.02 {
			t.Errorf("%s: Poiseuille profile deviates %.2f%% (tol 2%%; forcing shift miscalibrated?)", spec, 100*res.MaxRelErr)
		}
	}
}

// TestCompareCavityRejectsNaN: a diverged run reports an error instead of
// a vacuous zero deviation.
func TestCompareCavityRejectsNaN(t *testing.T) {
	r := &CavityResult{
		U: []float64{0, math.NaN()}, YU: []float64{0.25, 0.75},
		V: []float64{0, 0}, XV: []float64{0.25, 0.75},
	}
	if _, _, err := r.CompareCavity(100); err == nil {
		t.Error("NaN profile compared without error")
	}
}
