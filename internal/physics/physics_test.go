package physics

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// TestShearWaveViscosity: the measured viscosity must match ν = c_s²(τ−½)
// for both lattices at several relaxation times.
func TestShearWaveViscosity(t *testing.T) {
	n := grid.Dims{NX: 32, NY: 6, NZ: 6}
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		for _, tau := range []float64{0.7, 1.0, 1.5} {
			res, err := ShearWaveViscosity(m, n, tau, 80, nil)
			if err != nil {
				t.Fatalf("%s tau=%g: %v", m.Name, tau, err)
			}
			if res.RelError > 0.03 {
				t.Errorf("%s tau=%g: nu measured %.5f vs theory %.5f (err %.1f%%)",
					m.Name, tau, res.NuMeasured, res.NuTheory, 100*res.RelError)
			}
		}
	}
}

// TestShearWaveViscosityMultiRank: the measurement must be identical when
// the domain is decomposed and threaded.
func TestShearWaveViscosityMultiRank(t *testing.T) {
	n := grid.Dims{NX: 32, NY: 6, NZ: 6}
	m := lattice.D3Q19()
	res, err := ShearWaveViscosity(m, n, 0.9, 60, func(c *core.Config) {
		c.Ranks = 4
		c.Threads = 2
		c.GhostDepth = 2
		c.Opt = core.OptGCC
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelError > 0.03 {
		t.Errorf("multi-rank: nu %.5f vs %.5f (err %.1f%%)", res.NuMeasured, res.NuTheory, 100*res.RelError)
	}
}

func TestTaylorGreenViscosity(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 24, NZ: 6}
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		res, err := TaylorGreenViscosity(m, n, 0.8, 60, nil)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if res.RelError > 0.05 {
			t.Errorf("%s: nu measured %.5f vs theory %.5f (err %.1f%%)",
				m.Name, res.NuMeasured, res.NuTheory, 100*res.RelError)
		}
	}
}

// TestSoundSpeeds: the two lattices have different sound speeds (1/√3 vs
// √(2/3)) — the "two-speed nature" the paper mentions; both must be
// recovered from density-wave oscillation.
func TestSoundSpeeds(t *testing.T) {
	n := grid.Dims{NX: 48, NY: 6, NZ: 6}
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		res, err := MeasureSoundSpeed(m, n, 0.8)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if res.RelError > 0.05 {
			t.Errorf("%s: c_s measured %.4f vs theory %.4f (err %.1f%%)",
				m.Name, res.CsMeasured, res.CsTheory, 100*res.RelError)
		}
	}
}

func TestKnudsenClassification(t *testing.T) {
	cases := []struct {
		kn   float64
		want Regime
		ns   bool
	}{
		{0.0005, RegimeContinuum, true},
		{0.05, RegimeSlip, true},
		{0.1, RegimeSlip, true},
		{0.5, RegimeTransition, false},
		{50, RegimeFree, false},
	}
	for _, c := range cases {
		if got := ClassifyKnudsen(c.kn); got != c.want {
			t.Errorf("ClassifyKnudsen(%g) = %s, want %s", c.kn, got, c.want)
		}
		if got := NavierStokesValid(c.kn); got != c.ns {
			t.Errorf("NavierStokesValid(%g) = %v, want %v", c.kn, got, c.ns)
		}
	}
}

func TestKnudsenRoundTrip(t *testing.T) {
	m := lattice.D3Q39()
	for _, kn := range []float64{0.01, 0.1, 1.0} {
		tau := TauForKnudsen(m, kn, 32)
		if back := KnudsenNumber(m, tau, 32); math.Abs(back-kn) > 1e-12 {
			t.Errorf("Kn %g -> tau %g -> Kn %g", kn, tau, back)
		}
		if tau <= 0.5 {
			t.Errorf("Kn %g gives unstable tau %g", kn, tau)
		}
	}
}

func TestModelForKnudsen(t *testing.T) {
	if m := ModelForKnudsen(0.01); m.Name != "D3Q19" {
		t.Errorf("continuum flow got %s", m.Name)
	}
	if m := ModelForKnudsen(0.5); m.Name != "D3Q39" {
		t.Errorf("transition flow got %s", m.Name)
	}
}

// TestModelsAgreeAtLowKn: with relaxation times matched to the same
// physical viscosity, both lattices must measure that same viscosity —
// D3Q39 contains Navier-Stokes.
func TestModelsAgreeAtLowKn(t *testing.T) {
	n := grid.Dims{NX: 32, NY: 6, NZ: 6}
	nu := 0.08
	q19, q39 := lattice.D3Q19(), lattice.D3Q39()
	r19, err := ShearWaveViscosity(q19, n, q19.TauForViscosity(nu), 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	r39, err := ShearWaveViscosity(q39, n, q39.TauForViscosity(nu), 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(r19.NuMeasured-r39.NuMeasured) / nu; d > 0.05 {
		t.Errorf("models disagree at low Kn: Q19 %.5f vs Q39 %.5f (%.1f%%)", r19.NuMeasured, r39.NuMeasured, 100*d)
	}
}
