package physics

// Body-force-driven Poiseuille channel between two no-slip global wall
// faces (core.ChannelSpec): at steady state the velocity profile is the
// parabola u(y) = a/(2ν)·(y−y0)(y1−y) with the halfway bounce-back walls
// at y0 = −1/2 and y1 = H−1/2. Unlike the interior-solid channel of the
// examples, this exercises the global-boundary wall path — the walls
// consume no lattice cells.

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// PoiseuilleResult reports the steady-profile comparison.
type PoiseuilleResult struct {
	// Profile is the physical x-velocity at the H cell centers across the
	// channel (velocity-shift forcing: u = j/ρ + a/2).
	Profile []float64
	// UMaxTheory is the analytic centerline velocity a·H²/(8ν).
	UMaxTheory float64
	// MaxRelErr is the worst pointwise deviation from the analytic
	// parabola, relative to UMaxTheory.
	MaxRelErr float64
}

// PoiseuilleChannel runs a channel of height h cells driven by a constant
// acceleration along x and compares the converged profile against the
// analytic solution. steps = 0 chooses ~2.5 momentum diffusion times.
// cfgMod, when non-nil, may adjust the solver configuration (collision
// operator, ranks, ...) before the run.
func PoiseuilleChannel(m *lattice.Model, h int, tau, accel float64, steps int, cfgMod func(*core.Config)) (*PoiseuilleResult, error) {
	if m == nil {
		m = lattice.D3Q19()
	}
	k := m.MaxSpeed
	nu := m.Viscosity(tau)
	if steps == 0 {
		steps = int(2.5 * float64(h*h) / nu)
	}
	nx := 2 * k
	if nx < 4 {
		nx = 4
	}
	n := grid.Dims{NX: nx, NY: h, NZ: 2 * k}
	cfg := core.Config{
		Model: m, N: n, Tau: tau, Steps: steps,
		Opt: core.OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1,
		Boundary:  core.ChannelSpec(),
		Accel:     [3]float64{accel, 0, 0},
		KeepField: true,
	}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	y0, y1 := -0.5, float64(h)-0.5
	umax := accel * float64(h) * float64(h) / (8 * nu)
	if umax <= 0 {
		return nil, fmt.Errorf("physics: Poiseuille needs a positive drive (a=%g)", accel)
	}
	out := &PoiseuilleResult{Profile: make([]float64, h), UMaxTheory: umax}
	fc := make([]float64, m.Q)
	for iy := 0; iy < h; iy++ {
		var sum float64
		for ix := 0; ix < n.NX; ix++ {
			for iz := 0; iz < n.NZ; iz++ {
				res.Field.Cell(ix, iy, iz, fc)
				rho, jx, _, _ := m.Moments(fc)
				sum += jx / rho
			}
		}
		u := sum/float64(n.NX*n.NZ) + accel/2
		out.Profile[iy] = u
		want := accel / (2 * nu) * (float64(iy) - y0) * (y1 - float64(iy))
		if d := math.Abs(u-want) / umax; d > out.MaxRelErr {
			out.MaxRelErr = d
		}
	}
	return out, nil
}
