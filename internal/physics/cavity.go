package physics

// Lid-driven cavity validation (Hou, Zou, Chen, Doolen & Cogley,
// "Simulation of Cavity Flow by the Lattice Boltzmann Method", J. Comput.
// Phys. 118 (1995)): the canonical bounded-domain benchmark. The solver
// runs a square cavity whose top wall slides tangentially; at steady
// state the u- and v-velocity profiles along the two centerlines are
// compared against the reference solutions Hou et al. validate against
// (the multigrid Navier-Stokes tables of Ghia, Ghia & Shin, J. Comput.
// Phys. 48 (1982), Tables I-II) at Re = 100 and 400.
//
// Geometry and normalization: with halfway bounce-back the walls sit half
// a link outside the outermost cell layer, so an L-cell cavity spans
// exactly L lattice units and cell i sits at (i + 1/2)/L in wall units.
// Velocities are reported in lid units. Deviations are measured in lid
// units too (a relative measure against the only velocity scale of the
// problem, which stays meaningful at the profiles' zero crossings).

import (
	"fmt"
	"math"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// RefPoint is one tabulated reference value: a wall-unit coordinate along
// a centerline and the normalized velocity there.
type RefPoint struct {
	Coord, Value float64
}

// cavityRefU tabulates u/U along the vertical centerline (coordinate y)
// and cavityRefV tabulates v/U along the horizontal centerline
// (coordinate x), per Reynolds number: the tabulated points of the
// Ghia/Hou comparison used for validation here. The Re=1000 rows are the
// Ghia, Ghia & Shin Tables I-II values directly (Hou et al. stop at 400;
// reaching 1000 needs the TRT/MRT collision operators for stability at
// the implied viscosity).
var cavityRefU = map[int][]RefPoint{
	100: {
		{0.0000, 0.00000}, {0.0547, -0.03717}, {0.0625, -0.04192}, {0.0703, -0.04775},
		{0.1016, -0.06434}, {0.1719, -0.10150}, {0.2813, -0.15662}, {0.4531, -0.21090},
		{0.5000, -0.20581}, {0.6172, -0.13641}, {0.7344, 0.00332}, {0.8516, 0.23151},
		{0.9531, 0.68717}, {0.9609, 0.73722}, {0.9688, 0.78871}, {0.9766, 0.84123},
		{1.0000, 1.00000},
	},
	400: {
		{0.0000, 0.00000}, {0.0547, -0.08186}, {0.0625, -0.09266}, {0.0703, -0.10338},
		{0.1016, -0.14612}, {0.1719, -0.24299}, {0.2813, -0.32726}, {0.4531, -0.17119},
		{0.5000, -0.11477}, {0.6172, 0.02135}, {0.7344, 0.16256}, {0.8516, 0.29093},
		{0.9531, 0.55892}, {0.9609, 0.61756}, {0.9688, 0.68439}, {0.9766, 0.75837},
		{1.0000, 1.00000},
	},
	1000: {
		{0.0000, 0.00000}, {0.0547, -0.18109}, {0.0625, -0.20196}, {0.0703, -0.22220},
		{0.1016, -0.29730}, {0.1719, -0.38289}, {0.2813, -0.27805}, {0.4531, -0.10648},
		{0.5000, -0.06080}, {0.6172, 0.05702}, {0.7344, 0.18719}, {0.8516, 0.33304},
		{0.9531, 0.46604}, {0.9609, 0.51117}, {0.9688, 0.57492}, {0.9766, 0.65928},
		{1.0000, 1.00000},
	},
}

var cavityRefV = map[int][]RefPoint{
	100: {
		{0.0000, 0.00000}, {0.0625, 0.09233}, {0.0703, 0.10091}, {0.0781, 0.10890},
		{0.0938, 0.12317}, {0.1563, 0.16077}, {0.2266, 0.17507}, {0.2344, 0.17527},
		{0.5000, 0.05454}, {0.8047, -0.24533}, {0.8594, -0.22445}, {0.9063, -0.16914},
		{0.9453, -0.10313}, {0.9531, -0.08864}, {0.9609, -0.07391}, {0.9688, -0.05906},
		{1.0000, 0.00000},
	},
	400: {
		{0.0000, 0.00000}, {0.0625, 0.18360}, {0.0703, 0.19713}, {0.0781, 0.20920},
		{0.0938, 0.22965}, {0.1563, 0.28124}, {0.2266, 0.30203}, {0.2344, 0.30174},
		{0.5000, 0.05186}, {0.8047, -0.38598}, {0.8594, -0.44993},
		{0.9453, -0.22847}, {0.9531, -0.19254}, {0.9609, -0.15663}, {0.9688, -0.12146},
		{1.0000, 0.00000},
	},
	1000: {
		{0.0000, 0.00000}, {0.0625, 0.27485}, {0.0703, 0.29012}, {0.0781, 0.30353},
		{0.0938, 0.32627}, {0.1563, 0.37095}, {0.2266, 0.33075}, {0.2344, 0.32235},
		{0.5000, 0.02526}, {0.8047, -0.31966}, {0.8594, -0.42665}, {0.9063, -0.51550},
		{0.9453, -0.39188}, {0.9531, -0.33714}, {0.9609, -0.27669}, {0.9688, -0.21388},
		{1.0000, 0.00000},
	},
}

// CavityRefU returns the reference u/U profile along the vertical
// centerline for a tabulated Reynolds number (100, 400 or 1000), or nil.
func CavityRefU(re int) []RefPoint { return cavityRefU[re] }

// CavityRefV returns the reference v/U profile along the horizontal
// centerline for a tabulated Reynolds number (100, 400 or 1000), or nil.
func CavityRefV(re int) []RefPoint { return cavityRefV[re] }

// CavityConfig describes one lid-driven cavity run.
type CavityConfig struct {
	Model *lattice.Model // nil = D3Q19
	// L is the cavity size in cells (the domain is L×L×NZ with the
	// spanwise z axis periodic).
	L  int
	NZ int // spanwise extent, default 2
	// Re is the Reynolds number U·L/ν; it sets tau from LidU and L.
	Re float64
	// LidU is the lid speed in lattice units (default 0.1, Hou et al.).
	LidU float64
	// Steps overrides the default run length of CavitySteadySteps(Re, L,
	// LidU) — the spin-up to steady state lengthens with the Reynolds
	// number.
	Steps int
	// Ranks/Decomp/Threads/Opt/GhostDepth mirror core.Config; zero values
	// mean a single-rank SIMD depth-1 run.
	Ranks      int
	Decomp     [3]int
	Threads    int
	Opt        core.OptLevel
	GhostDepth int
	// Collision selects the collision operator (zero = BGK). BGK caps the
	// stable Reynolds number; Re = 1000 on practical resolutions needs TRT
	// or MRT.
	Collision collision.Spec
}

// CavityResult reports the steady-state centerline profiles.
type CavityResult struct {
	// U is u/LidU along the vertical centerline at cell centers
	// YU[i] = (i+1/2)/L; V is v/LidU along the horizontal centerline at
	// XV[i] = (i+1/2)/L.
	U, YU, V, XV []float64
	// Tau is the relaxation time implied by Re, L and LidU.
	Tau float64
	// Steps actually run.
	Steps int
	// Res is the underlying solver result (mass, MFlups, comm stats).
	Res *core.Result
}

// CavitySteadySteps returns the default run length for a cavity at the
// given Reynolds number: (16 + Re/20) convective times L/U. The 16
// convective times that settle Re ≲ 100 are nowhere near enough at
// Re = 1000 (the measured centerline error falls from ~13% at 16 L/U to
// its converged ~2-4% by ~48 L/U and is flat afterwards).
func CavitySteadySteps(re float64, l int, lidU float64) int {
	conv := 16 + re/20
	return int(conv * float64(l) / lidU)
}

// RunCavity executes a lid-driven cavity to (approximate) steady state
// and extracts the centerline profiles.
func RunCavity(c CavityConfig) (*CavityResult, error) {
	m := c.Model
	if m == nil {
		m = lattice.D3Q19()
	}
	if c.L < 4 {
		return nil, fmt.Errorf("physics: cavity L = %d too small", c.L)
	}
	if c.NZ == 0 {
		c.NZ = 2 * m.MaxSpeed
	}
	if c.LidU == 0 {
		c.LidU = 0.1
	}
	if c.Re <= 0 {
		return nil, fmt.Errorf("physics: cavity Re = %g, want > 0", c.Re)
	}
	if c.Ranks < 1 {
		c.Ranks = 1
	}
	if c.Opt == core.OptOrig {
		c.Opt = core.OptSIMD
	}
	if c.GhostDepth < 1 {
		c.GhostDepth = 1
	}
	nu := c.LidU * float64(c.L) / c.Re
	tau := m.TauForViscosity(nu)
	steps := c.Steps
	if steps == 0 {
		steps = CavitySteadySteps(c.Re, c.L, c.LidU)
	}
	n := grid.Dims{NX: c.L, NY: c.L, NZ: c.NZ}
	res, err := core.Run(core.Config{
		Model: m, N: n, Tau: tau, Steps: steps,
		Opt: c.Opt, Ranks: c.Ranks, Decomp: c.Decomp, Threads: c.Threads,
		GhostDepth: c.GhostDepth, Collision: c.Collision,
		Boundary:  core.CavitySpec(c.LidU),
		KeepField: true,
	})
	if err != nil {
		return nil, err
	}
	out := CavityProfiles(m, res.Field, c.LidU)
	out.Tau, out.Steps, out.Res = tau, steps, res
	return out, nil
}

// CavityProfiles extracts the normalized centerline profiles from a
// gathered cavity field (lid along +x on the high-y face): u/lidU along
// the vertical centerline and v/lidU along the horizontal one, averaged
// over the spanwise z axis.
func CavityProfiles(m *lattice.Model, f *grid.Field, lidU float64) *CavityResult {
	out := &CavityResult{}
	out.U, out.YU = centerlineU(m, f, lidU)
	out.V, out.XV = centerlineV(m, f, lidU)
	return out
}

// centerAvg averages a per-cell sampler over the spanwise z axis and the
// one or two cell columns straddling the centerline of axis extent l.
func centerCols(l int) []int {
	if l%2 == 0 {
		return []int{l/2 - 1, l / 2}
	}
	return []int{l / 2}
}

func centerlineU(m *lattice.Model, f *grid.Field, lid float64) (u, y []float64) {
	n := f.D
	fc := make([]float64, m.Q)
	cols := centerCols(n.NX)
	u = make([]float64, n.NY)
	y = make([]float64, n.NY)
	for iy := 0; iy < n.NY; iy++ {
		var sum float64
		for _, ix := range cols {
			for iz := 0; iz < n.NZ; iz++ {
				f.Cell(ix, iy, iz, fc)
				rho, jx, _, _ := m.Moments(fc)
				sum += jx / rho
			}
		}
		u[iy] = sum / float64(len(cols)*n.NZ) / lid
		y[iy] = (float64(iy) + 0.5) / float64(n.NY)
	}
	return u, y
}

func centerlineV(m *lattice.Model, f *grid.Field, lid float64) (v, x []float64) {
	n := f.D
	fc := make([]float64, m.Q)
	rows := centerCols(n.NY)
	v = make([]float64, n.NX)
	x = make([]float64, n.NX)
	for ix := 0; ix < n.NX; ix++ {
		var sum float64
		for _, iy := range rows {
			for iz := 0; iz < n.NZ; iz++ {
				f.Cell(ix, iy, iz, fc)
				rho, _, jy, _ := m.Moments(fc)
				sum += jy / rho
			}
		}
		v[ix] = sum / float64(len(rows)*n.NZ) / lid
		x[ix] = (float64(ix) + 0.5) / float64(n.NX)
	}
	return v, x
}

// InterpProfile linearly interpolates a cell-center profile at a wall
// coordinate in [0,1], using the known boundary values at the walls
// (coordinates 0 and 1) as end anchors.
func InterpProfile(coords, vals []float64, lo, hi, at float64) float64 {
	xs := append(append([]float64{0}, coords...), 1)
	ys := append(append([]float64{lo}, vals...), hi)
	for i := 1; i < len(xs); i++ {
		if at <= xs[i] {
			t := (at - xs[i-1]) / (xs[i] - xs[i-1])
			return ys[i-1] + t*(ys[i]-ys[i-1])
		}
	}
	return ys[len(ys)-1]
}

// CompareCavity measures the worst deviation (in lid units) of the
// simulated centerline profiles from the tabulated reference at the given
// Reynolds number. The u-profile anchors at u(0) = 0 (bottom wall) and
// u(1) = 1 (lid); the v-profile at v(0) = v(1) = 0 (side walls). A
// diverged run (NaN/Inf anywhere in a profile) is an error, not a zero
// deviation.
func (r *CavityResult) CompareCavity(re int) (maxErrU, maxErrV float64, err error) {
	refU, refV := CavityRefU(re), CavityRefV(re)
	if refU == nil || refV == nil {
		return 0, 0, fmt.Errorf("physics: no cavity reference data for Re = %d", re)
	}
	for _, prof := range [][]float64{r.U, r.V} {
		for _, v := range prof {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, 0, fmt.Errorf("physics: cavity run diverged (non-finite centerline velocity)")
			}
		}
	}
	for _, p := range refU {
		got := InterpProfile(r.YU, r.U, 0, 1, p.Coord)
		if d := math.Abs(got - p.Value); d > maxErrU {
			maxErrU = d
		}
	}
	for _, p := range refV {
		got := InterpProfile(r.XV, r.V, 0, 0, p.Coord)
		if d := math.Abs(got - p.Value); d > maxErrV {
			maxErrV = d
		}
	}
	return maxErrU, maxErrV, nil
}
