package physics

// Flow past a circular cylinder in a plane channel — the vortex-shedding
// validation of the geometry subsystem, following the laminar benchmark of
// Schäfer & Turek ("Benchmark computations of laminar flow around a
// cylinder", Notes Numer. Fluid Mech. 52 (1996)): a channel of height
// H = 4.1·D with a cylinder of diameter D centered at (2D, 2D) — 0.05·D
// below the channel midline, which makes the shedding onset deterministic
// — driven by a parabolic Zou-He velocity inlet U(y) = 4·Um·ŷ(1−ŷ) and
// closed by a unit-density outlet. The Reynolds number Re = Ū·D/ν uses
// the mean inflow speed Ū = 2·Um/3.
//
// Two regimes are validated against the benchmark's reference intervals:
//
//	2D-1 (Re = 20):  steady flow,   drag coefficient cD ∈ [5.57, 5.59]
//	2D-2 (Re = 100): vortex street, Strouhal St ∈ [0.295, 0.305],
//	                 max drag cD ∈ [3.22, 3.24], max lift cL ∈ [0.99, 1.01]
//
// Drag and lift come from the solver's momentum-exchange force series on
// the voxelized cylinder, cD(t) = 2·Fx(t)/(ρ0·Ū²·D·span) with span the
// spanwise extent NY (the channel height runs along z here — see the
// orientation note in BuildCylinderChannel), and the Strouhal number
// St = f·D/Ū from the zero crossings of the lift series — both the
// measurement layer this file exists to exercise end to end.

import (
	"fmt"
	"math"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// CylinderRef holds the Schäfer-Turek reference intervals for a
// benchmark Reynolds number.
type CylinderRef struct {
	Re float64
	// CdLo/CdHi bound the drag coefficient (the steady value at Re=20,
	// the oscillation maximum at Re=100).
	CdLo, CdHi float64
	// StLo/StHi bound the Strouhal number; zero for the steady regime.
	StLo, StHi float64
}

// CylinderRefFor returns the benchmark reference for Re = 20 or 100.
func CylinderRefFor(re float64) (CylinderRef, bool) {
	switch re {
	case 20:
		return CylinderRef{Re: 20, CdLo: 5.57, CdHi: 5.59}, true
	case 100:
		return CylinderRef{Re: 100, CdLo: 3.22, CdHi: 3.24, StLo: 0.295, StHi: 0.305}, true
	}
	return CylinderRef{}, false
}

// CylinderChannelConfig describes one cylinder-in-channel run.
type CylinderChannelConfig struct {
	Model *lattice.Model // nil = D3Q19
	// D is the cylinder diameter in cells — the resolution knob. The
	// channel is 22D long × 4.1D high (× a quasi-2-D spanwise extent),
	// cylinder at (2D, 2D). The steady Re=20 case is accurate from
	// D ≈ 8; the Re=100 wake needs D ≥ 16 (coarser lattices sit at a
	// cell Reynolds number the collision cannot damp and diverge).
	D int
	// Re is the Reynolds number Ū·D/ν (20 steady, 100 shedding).
	Re float64
	// UMean is the mean inflow speed Ū in lattice units (default 0.08;
	// the parabolic inlet peaks at Um = 1.5·Ū).
	UMean float64
	// Steps overrides the default run length (spin-up plus measurement).
	Steps int
	// MeasureFrom is the first step of the coefficient-measurement window
	// (0 = the default, after the spin-up transient).
	MeasureFrom int
	// Collision selects the collision operator. The shedding regime sits
	// at τ ≈ 0.53 where BGK is fragile next to voxelized walls; TRT is
	// the intended operator (the default used by the CLI scenario).
	Collision collision.Spec
	// Ranks/Decomp/Threads/Opt/GhostDepth mirror core.Config; zero values
	// mean a single-rank SIMD depth-1 run.
	Ranks      int
	Decomp     [3]int
	Threads    int
	Opt        core.OptLevel
	GhostDepth int
	// SpongeWidth/SpongeStrength configure the absorbing layer ahead of
	// the pressure outlet (see core.Face). Pressure waves shed by the
	// vortex street otherwise reflect off the outlet's zero-gradient copy
	// and ripple the drag envelope at the acoustic round-trip period.
	// Zero selects the default (width 4·D, strength 0.1 — the layer
	// starts 16·D downstream of the cylinder, far enough to leave the
	// benchmark coefficients untouched, and the long gentle ramp is what
	// absorbs: at 2·D the Re=100 drag ripple only halves, at 4·D it
	// drops 5x, below 0.1%); SpongeWidth < 0 disables the layer.
	SpongeWidth    int
	SpongeStrength float64
	// Stream selects the storage scheme (core.StreamTwoGrid or
	// core.StreamAA).
	Stream core.StreamScheme
}

// CylinderChannelResult reports the force coefficients of a completed run.
type CylinderChannelResult struct {
	N                grid.Dims
	CylX, CylZ       float64 // cylinder center (lattice x/z coordinates)
	Radius           float64 // voxelization radius
	D                int     // nominal cylinder diameter in cells
	Tau              float64
	UMean            float64
	Steps, From      int       // run length and measurement-window start
	Drag, Lift       []float64 // per-step cD(t), cL(t) over the whole run
	Cd, CdMax, ClMax float64   // window mean and maxima
	St               float64   // f·D/Ū from lift zero crossings (0 if < 2 periods)
	Periods          int       // full shedding periods inside the window
	// CdRipple is the relative peak-to-peak variation of the per-period
	// drag maxima inside the measurement window (set when Periods >= 3).
	// A converged vortex street has a flat drag envelope; outlet-reflected
	// pressure waves modulate it at the acoustic round-trip period, which
	// is the ripple the sponge layer exists to remove.
	CdRipple float64
	Res      *core.Result
}

// cylinderSteps returns the default run length: the spin-up transients
// lengthen with Re (the vortex street needs several flow-through times
// to establish), plus a measurement window of several shedding periods.
func cylinderSteps(re float64, d int, uMean float64) (steps, from int) {
	nx := 22 * d
	transit := float64(nx) / uMean
	if re < 50 {
		// Steady regime: converge, then average a short window.
		from = int(2.5 * transit)
		return from + int(0.5*transit), from
	}
	// Shedding regime: establish the street, then measure ≥ 6 periods
	// (period ≈ D/(0.3·Ū)).
	period := float64(d) / (0.3 * uMean)
	from = int(3.5 * transit)
	return from + int(7*period), from
}

// BuildCylinderChannel resolves a benchmark description into a solver
// configuration plus a result shell carrying the geometry and the
// measurement window — the entry point the CLI scenario shares with
// RunCylinderChannel (run the returned config, then Analyze the result).
func BuildCylinderChannel(c CylinderChannelConfig) (core.Config, *CylinderChannelResult, error) {
	var none core.Config
	m := c.Model
	if m == nil {
		m = lattice.D3Q19()
	}
	if c.D < 6 {
		return none, nil, fmt.Errorf("physics: cylinder diameter %d too coarse (want >= 6 cells)", c.D)
	}
	if c.Re <= 0 {
		return none, nil, fmt.Errorf("physics: cylinder Re = %g, want > 0", c.Re)
	}
	if c.UMean == 0 {
		c.UMean = 0.08
	}
	if c.Ranks < 1 {
		c.Ranks = 1
	}
	if c.Opt == core.OptOrig {
		c.Opt = core.OptSIMD
	}
	if c.GhostDepth < 1 {
		c.GhostDepth = 1
	}
	d := c.D
	// Orientation: flow along x, channel height along z, spanwise y. On
	// the z-fastest layout this keeps the kernels' contiguous z-runs as
	// long as the channel height (a height-along-y channel would have
	// runs of length NZ = 2 and starve the row-blocked kernels).
	n := grid.Dims{NX: 22 * d, NY: 2 * m.MaxSpeed, NZ: int(math.Round(4.1 * float64(d)))}
	// Lattice mapping: the halfway walls sit at z = −1/2 and NZ−1/2, so
	// benchmark coordinate z_b maps to lattice z_b·(D/0.1m) − 1/2; the
	// cylinder center (0.2m, 0.2m) lands at (2D − 1/2, 2D − 1/2) — 0.05·D
	// below the midline, as specified.
	cx, cz := 2*float64(d)-0.5, 2*float64(d)-0.5
	// Voxelization radius D/2: for a staircase circle the halfway-rule
	// extension (+1/2 along links) and the corner-cutting of the
	// voxelization cancel almost exactly, so cutting voxels at radius D/2
	// yields an effective diameter of D — calibrated against the 2D-1
	// steady drag, which lands inside the benchmark interval at D = 10.
	r := 0.5 * float64(d)
	cyl := geom.CylinderY(n, cx, cz, r)
	uMax := 1.5 * c.UMean
	nu := c.UMean * float64(d) / c.Re
	tau := m.TauForViscosity(nu)
	steps, from := c.Steps, c.MeasureFrom
	if steps == 0 {
		steps, from = cylinderSteps(c.Re, d, c.UMean)
	} else if from == 0 {
		from = steps * 2 / 3
	}
	if from >= steps {
		return none, nil, fmt.Errorf("physics: measurement window start %d >= steps %d", from, steps)
	}
	profile := func(gx, gy, gz int) [3]float64 {
		z := (float64(gz) + 0.5) / float64(n.NZ)
		return [3]float64{4 * uMax * z * (1 - z), 0, 0}
	}
	// Inlet at low x, unit-density outlet at high x, no-slip walls on the
	// z faces, periodic spanwise y (InletChannelSpec rotated one axis).
	var spec core.BoundarySpec
	spec.Faces[0][0] = core.Face{Kind: core.BCInlet, Profile: profile}
	spec.Faces[0][1] = core.Face{Kind: core.BCPressureOutlet}
	spec.Faces[2][0] = core.Face{Kind: core.BCWall}
	spec.Faces[2][1] = core.Face{Kind: core.BCWall}
	if c.SpongeWidth == 0 {
		c.SpongeWidth, c.SpongeStrength = 4*d, 0.1
	}
	if c.SpongeWidth > 0 {
		spec.Faces[0][1].SpongeWidth = c.SpongeWidth
		spec.Faces[0][1].SpongeStrength = c.SpongeStrength
	}
	cfg := core.Config{
		Model: m, N: n, Tau: tau, Steps: steps,
		Opt: c.Opt, Ranks: c.Ranks, Decomp: c.Decomp, Threads: c.Threads,
		GhostDepth: c.GhostDepth, Collision: c.Collision,
		Boundary:      &spec,
		Solid:         cyl,
		MeasureForces: true,
		Stream:        c.Stream,
	}
	out := &CylinderChannelResult{
		N: n, CylX: cx, CylZ: cz, Radius: r, D: d,
		Tau: tau, UMean: c.UMean, Steps: steps, From: from,
	}
	return cfg, out, nil
}

// RunCylinderChannel executes the benchmark and extracts the force
// coefficients from the momentum-exchange series.
func RunCylinderChannel(c CylinderChannelConfig) (*CylinderChannelResult, error) {
	cfg, out, err := BuildCylinderChannel(c)
	if err != nil {
		return nil, err
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	if err := out.Analyze(res); err != nil {
		return nil, err
	}
	return out, nil
}

// Analyze derives the force coefficients from a completed run's
// momentum-exchange series: cD(t) = 2·Fx(t)/(ρ0·Ū²·D·NY) (force per unit
// span over the dynamic pressure of the mean inflow), cL(t) likewise from
// the transverse (z) force, and the Strouhal number from the lift's mean
// crossings inside the measurement window.
func (out *CylinderChannelResult) Analyze(res *core.Result) error {
	out.Res = res
	steps, from, d := out.Steps, out.From, out.D
	if len(res.ObstacleForce) < steps {
		return fmt.Errorf("physics: force series has %d steps, want %d (MeasureForces off?)", len(res.ObstacleForce), steps)
	}
	out.Drag = make([]float64, steps)
	out.Lift = make([]float64, steps)
	norm := 2 / (out.UMean * out.UMean * float64(d) * float64(out.N.NY))
	for s := 0; s < steps; s++ {
		out.Drag[s] = res.ObstacleForce[s][0] * norm
		out.Lift[s] = res.ObstacleForce[s][2] * norm // transverse = z
	}
	out.Cd, out.CdMax, out.ClMax = 0, 0, 0
	window := out.Drag[from:]
	for i, v := range window {
		if math.IsNaN(v) {
			return fmt.Errorf("physics: cylinder run diverged (NaN drag at step %d)", from+i)
		}
		out.Cd += v
		if v > out.CdMax {
			out.CdMax = v
		}
	}
	out.Cd /= float64(len(window))
	for _, v := range out.Lift[from:] {
		if a := math.Abs(v); a > out.ClMax {
			out.ClMax = a
		}
	}
	out.St, out.Periods = 0, 0
	// Gate the frequency extraction on a real oscillation: a steady wake's
	// lift crosses its mean on numerical noise, which is not shedding.
	window2 := out.Lift[from:]
	var mean, dev float64
	for _, v := range window2 {
		mean += v
	}
	mean /= float64(len(window2))
	for _, v := range window2 {
		if a := math.Abs(v - mean); a > dev {
			dev = a
		}
	}
	if dev < 0.01 {
		return nil
	}
	if f, periods := sheddingFrequency(window2); periods >= 2 {
		out.St = f * float64(d) / out.UMean
		out.Periods = periods
	}
	out.CdRipple = dragEnvelopeRipple(window, window2)
	return nil
}

// dragEnvelopeRipple measures the flatness of the drag envelope: the drag
// series is split into shedding periods at the lift's upward mean
// crossings, the drag maximum of each period forms the envelope, and the
// ripple is the envelope's peak-to-peak spread over its mean. Returns 0
// when the window holds fewer than 3 full periods.
func dragEnvelopeRipple(drag, lift []float64) float64 {
	var mean float64
	for _, v := range lift {
		mean += v
	}
	mean /= float64(len(lift))
	var cuts []int
	for i := 1; i < len(lift); i++ {
		if lift[i-1]-mean < 0 && lift[i]-mean >= 0 {
			cuts = append(cuts, i)
		}
	}
	if len(cuts) < 4 {
		return 0
	}
	var lo, hi, sum float64
	for p := 0; p+1 < len(cuts); p++ {
		pk := drag[cuts[p]]
		for _, v := range drag[cuts[p]:cuts[p+1]] {
			if v > pk {
				pk = v
			}
		}
		if p == 0 || pk < lo {
			lo = pk
		}
		if p == 0 || pk > hi {
			hi = pk
		}
		sum += pk
	}
	return (hi - lo) / (sum / float64(len(cuts)-1))
}

// sheddingFrequency extracts the oscillation frequency (cycles per step)
// of a lift series from its mean-crossing times: upward crossings of the
// window mean, linearly interpolated, averaged over the full periods the
// window contains.
func sheddingFrequency(lift []float64) (f float64, periods int) {
	if len(lift) < 4 {
		return 0, 0
	}
	var mean float64
	for _, v := range lift {
		mean += v
	}
	mean /= float64(len(lift))
	var crossings []float64
	for i := 1; i < len(lift); i++ {
		a, b := lift[i-1]-mean, lift[i]-mean
		if a < 0 && b >= 0 {
			crossings = append(crossings, float64(i-1)+a/(a-b))
		}
	}
	if len(crossings) < 3 {
		return 0, 0
	}
	periods = len(crossings) - 1
	return float64(periods) / (crossings[len(crossings)-1] - crossings[0]), periods
}
