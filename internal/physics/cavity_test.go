package physics

import (
	"math"
	"testing"

	"repro/internal/lattice"
)

// TestCavityRefTables sanity-checks the reference data: coordinates
// ascend through [0,1], wall anchors are exact, and the well-known
// extrema of the two Reynolds numbers are present.
func TestCavityRefTables(t *testing.T) {
	for _, re := range []int{100, 400, 1000} {
		for name, tab := range map[string][]RefPoint{"u": CavityRefU(re), "v": CavityRefV(re)} {
			if tab == nil {
				t.Fatalf("Re=%d: missing %s table", re, name)
			}
			for i := 1; i < len(tab); i++ {
				if tab[i].Coord <= tab[i-1].Coord {
					t.Errorf("Re=%d %s: coords not ascending at %d", re, name, i)
				}
			}
			if tab[0].Coord != 0 || tab[len(tab)-1].Coord != 1 {
				t.Errorf("Re=%d %s: endpoints %g..%g, want 0..1", re, name, tab[0].Coord, tab[len(tab)-1].Coord)
			}
		}
		if CavityRefU(re)[len(CavityRefU(re))-1].Value != 1 {
			t.Errorf("Re=%d: lid anchor != 1", re)
		}
	}
	if CavityRefU(3200) != nil || CavityRefV(7) != nil {
		t.Error("untabulated Reynolds numbers must return nil")
	}
	// Extrema (lid units): Re=100 min u ≈ −0.211, Re=400 min v ≈ −0.450,
	// Re=1000 min v ≈ −0.516 (the Ghia et al. near-wall jet).
	minOf := func(tab []RefPoint) float64 {
		m := tab[0].Value
		for _, p := range tab {
			if p.Value < m {
				m = p.Value
			}
		}
		return m
	}
	if m := minOf(CavityRefU(100)); math.Abs(m+0.21090) > 1e-9 {
		t.Errorf("Re=100 u minimum = %g", m)
	}
	if m := minOf(CavityRefV(400)); math.Abs(m+0.44993) > 1e-9 {
		t.Errorf("Re=400 v minimum = %g", m)
	}
	if m := minOf(CavityRefV(1000)); math.Abs(m+0.51550) > 1e-9 {
		t.Errorf("Re=1000 v minimum = %g", m)
	}
}

// TestCavityRe100Centerlines is the acceptance experiment: the Re=100
// lid-driven cavity must reproduce the Hou et al. reference centerline
// profiles within 3% of the lid speed at every tabulated point.
func TestCavityRe100Centerlines(t *testing.T) {
	res, err := RunCavity(CavityConfig{L: 32, Re: 100})
	if err != nil {
		t.Fatal(err)
	}
	errU, errV, err := res.CompareCavity(100)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Re=100 L=32 steps=%d tau=%.3f: max err u=%.4f v=%.4f (lid units)", res.Steps, res.Tau, errU, errV)
	if errU > 0.03 {
		t.Errorf("u centerline deviates %.2f%% of lid speed (tol 3%%)", 100*errU)
	}
	if errV > 0.03 {
		t.Errorf("v centerline deviates %.2f%% of lid speed (tol 3%%)", 100*errV)
	}
	// The cavity leaks no fluid: mass stays at the L·L·NZ rest total to
	// within the corner-singularity correction of the moving lid (< 1e-4
	// relative at this size).
	total := float64(32 * 32 * 2)
	if d := math.Abs(res.Res.Mass-total) / total; d > 1e-4 {
		t.Errorf("cavity mass drifted %.2e relative", d)
	}
}

// TestCavityRe400Centerlines repeats the comparison at Re=400 (skipped in
// -short mode: the higher Reynolds number needs a longer transient).
func TestCavityRe400Centerlines(t *testing.T) {
	if testing.Short() {
		t.Skip("long transient in -short mode")
	}
	res, err := RunCavity(CavityConfig{L: 48, Re: 400, Steps: 16000})
	if err != nil {
		t.Fatal(err)
	}
	errU, errV, err := res.CompareCavity(400)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Re=400 L=48 steps=%d tau=%.3f: max err u=%.4f v=%.4f (lid units)", res.Steps, res.Tau, errU, errV)
	if errU > 0.03 {
		t.Errorf("u centerline deviates %.2f%% of lid speed (tol 3%%)", 100*errU)
	}
	if errV > 0.03 {
		t.Errorf("v centerline deviates %.2f%% of lid speed (tol 3%%)", 100*errV)
	}
}

// TestCavityDecompositionInvariance: the cavity physics must not depend
// on the rank grid (a short transient compared bitwise-tightly).
func TestCavityDecompositionInvariance(t *testing.T) {
	base := CavityConfig{L: 16, Re: 50, Steps: 120}
	ref, err := RunCavity(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Ranks, cfg.Decomp = 4, [3]int{2, 2, 1}
	got, err := RunCavity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.U {
		if d := math.Abs(ref.U[i] - got.U[i]); d > 1e-12 {
			t.Fatalf("u profile differs across decompositions at %d: %g", i, d)
		}
	}
	if d := math.Abs(ref.Res.Mass - got.Res.Mass); d > 1e-12*ref.Res.Mass {
		t.Errorf("mass differs across decompositions: %g", d)
	}
}

// TestPoiseuilleChannelBC: the global-wall channel must converge to the
// analytic parabola within 2% of the centerline velocity for both
// lattices.
func TestPoiseuilleChannelBC(t *testing.T) {
	if testing.Short() {
		t.Skip("long relaxation in -short mode")
	}
	for _, tc := range []struct {
		m   *lattice.Model
		h   int
		tau float64
	}{
		{lattice.D3Q19(), 16, 1.0},
		// The multispeed D3Q39 reflects its k=3 links at the same halfway
		// plane, a slightly larger slip error — a taller channel keeps it
		// inside the shared tolerance.
		{lattice.D3Q39(), 18, 1.0},
	} {
		res, err := PoiseuilleChannel(tc.m, tc.h, tc.tau, 1e-6, 0, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.m.Name, err)
		}
		t.Logf("%s H=%d: max rel err %.4f (umax %.3e)", tc.m.Name, tc.h, res.MaxRelErr, res.UMaxTheory)
		if res.MaxRelErr > 0.02 {
			t.Errorf("%s: Poiseuille profile deviates %.2f%% (tol 2%%)", tc.m.Name, 100*res.MaxRelErr)
		}
	}
}
