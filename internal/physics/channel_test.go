package physics

import (
	"math"
	"testing"

	"repro/internal/collision"
	"repro/internal/core"
)

// TestSheddingFrequency recovers the frequency of a synthetic lift
// oscillation from its mean crossings.
func TestSheddingFrequency(t *testing.T) {
	const f0 = 1.0 / 73.0
	lift := make([]float64, 400)
	for i := range lift {
		lift[i] = 0.2 + math.Sin(2*math.Pi*f0*float64(i))
	}
	f, periods := sheddingFrequency(lift)
	if periods < 4 {
		t.Fatalf("found %d periods, want >= 4", periods)
	}
	if err := math.Abs(f-f0) / f0; err > 0.01 {
		t.Errorf("frequency %g, want %g (err %.3f)", f, f0, err)
	}
	if _, periods := sheddingFrequency(lift[:50]); periods != 0 {
		t.Errorf("sub-period window yielded %d periods", periods)
	}
}

// TestBuildCylinderChannel pins the benchmark geometry: domain 22D ×
// 4.1D, cylinder voxel count ≈ π(D/2)² per spanwise layer, inlet /
// pressure-outlet / wall faces in the right places.
func TestBuildCylinderChannel(t *testing.T) {
	cfg, shell, err := BuildCylinderChannel(CylinderChannelConfig{D: 10, Re: 20, UMean: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N.NX != 220 || cfg.N.NZ != 41 || cfg.N.NY != 2 {
		t.Fatalf("domain %v, want 220x2x41", cfg.N)
	}
	area := float64(cfg.Solid.Solids()) / float64(cfg.N.NY)
	if want := math.Pi * 25; math.Abs(area-want)/want > 0.07 {
		t.Errorf("cylinder cross-section %0.f voxels, want ~%.0f", area, want)
	}
	if cfg.Boundary.Faces[0][0].Kind != core.BCInlet ||
		cfg.Boundary.Faces[0][1].Kind != core.BCPressureOutlet ||
		cfg.Boundary.Faces[2][0].Kind != core.BCWall ||
		cfg.Boundary.Faces[2][1].Kind != core.BCWall ||
		!cfg.Boundary.AxisPeriodic(1) {
		t.Errorf("boundary faces wrong: %+v", cfg.Boundary)
	}
	if !cfg.MeasureForces {
		t.Error("forces not measured")
	}
	// The parabolic inlet peaks at 1.5·Ū mid-channel.
	mid := cfg.Boundary.Faces[0][0].Profile(0, 0, cfg.N.NZ/2)
	if math.Abs(mid[0]-1.5*0.05)/0.075 > 0.01 {
		t.Errorf("inlet peak %g, want ~%g", mid[0], 1.5*0.05)
	}
	if shell.From >= shell.Steps || shell.From == 0 {
		t.Errorf("measurement window [%d, %d) malformed", shell.From, shell.Steps)
	}
	if _, _, err := BuildCylinderChannel(CylinderChannelConfig{D: 4, Re: 20}); err == nil {
		t.Error("D=4 accepted")
	}
	if _, _, err := BuildCylinderChannel(CylinderChannelConfig{D: 10, Re: 0}); err == nil {
		t.Error("Re=0 accepted")
	}
}

// TestCylinderSteadyDrag is the 2D-1 benchmark (Re = 20, steady): the
// momentum-exchange drag coefficient must land near the Schäfer-Turek
// interval [5.57, 5.59] — within 4% at the D = 10 voxelization — with no
// shedding detected.
func TestCylinderSteadyDrag(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state transient in -short mode")
	}
	res, err := RunCylinderChannel(CylinderChannelConfig{
		D: 10, Re: 20, UMean: 0.08,
		Collision: collision.Spec{Kind: collision.TRT},
		Threads:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := CylinderRefFor(20)
	mid := (ref.CdLo + ref.CdHi) / 2
	if d := math.Abs(res.Cd-mid) / mid; d > 0.04 {
		t.Errorf("steady Cd = %.4f, want within 4%% of %.2f (got %.1f%%)", res.Cd, mid, 100*d)
	}
	if res.St != 0 {
		t.Errorf("steady wake reported shedding St = %g", res.St)
	}
	if res.ClMax > 0.05 {
		t.Errorf("steady wake lift |Cl| = %g, want ~0", res.ClMax)
	}
}
