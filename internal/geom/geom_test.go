package geom

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/grid"
)

func testMask(t *testing.T) *Mask {
	t.Helper()
	d := grid.Dims{NX: 13, NY: 7, NZ: 5}
	m := FromFunc(d, func(ix, iy, iz int) bool {
		return (ix*31+iy*17+iz*7)%5 == 0
	})
	if m.Solids() == 0 || m.Solids() == d.Cells() {
		t.Fatalf("degenerate test mask: %d solids of %d", m.Solids(), d.Cells())
	}
	return m
}

func TestMaskSetAtCount(t *testing.T) {
	d := grid.Dims{NX: 4, NY: 3, NZ: 66} // spans multiple uint64 words
	m := NewMask(d)
	if !m.Empty() || m.Solids() != 0 || m.Fluids() != d.Cells() {
		t.Fatal("new mask not all-fluid")
	}
	m.Set(1, 2, 65, true)
	m.Set(0, 0, 0, true)
	m.Set(3, 2, 64, true)
	if m.Solids() != 3 || m.Fluids() != d.Cells()-3 {
		t.Fatalf("got %d solids, want 3", m.Solids())
	}
	if !m.At(1, 2, 65) || !m.At(0, 0, 0) || !m.At(3, 2, 64) || m.At(1, 2, 64) {
		t.Fatal("At disagrees with Set")
	}
	m.Set(1, 2, 65, false)
	if m.At(1, 2, 65) || m.Solids() != 2 {
		t.Fatal("clearing a bit failed")
	}
}

func TestMaskRoundTripCSV(t *testing.T) {
	m := testMask(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("csv round trip changed the mask")
	}
}

func TestMaskRoundTripRaw(t *testing.T) {
	m := testMask(t)
	var buf bytes.Buffer
	if err := WriteRaw(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRaw(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("raw round trip changed the mask")
	}
}

func TestMaskSaveLoad(t *testing.T) {
	m := testMask(t)
	dir := t.TempDir()
	for _, ext := range []string{".csv", ".raw"} {
		path := filepath.Join(dir, "mask"+ext)
		if err := Save(path, m); err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		if !got.Equal(m) {
			t.Fatalf("%s: save/load round trip changed the mask", ext)
		}
	}
	if err := Save(filepath.Join(dir, "mask.png"), m); err == nil {
		t.Fatal("unknown extension accepted")
	}
	if _, err := Load(filepath.Join(dir, "mask.png")); err == nil {
		t.Fatal("unknown extension accepted on load")
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, bad := range []string{
		"",                   // no dims
		"# only a comment\n", // no dims
		"4,4\n",              // malformed dims
		"4,4,4\n9,0,0\n",     // out of range
		"4,4,4\n1,1\n",       // malformed voxel
		"0,4,4\n",            // zero dim
		"4,4,4\n-1,0,0\n",    // negative
		"4,4,4\n1,1,one\n",   // non-numeric
	} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadCSV accepted %q", bad)
		}
	}
}

func TestReadRawErrors(t *testing.T) {
	for _, bad := range []string{
		"wrongmagic 2 2 2\n" + strings.Repeat("\x00", 8),
		"lbmvox 2 2\n",
		"lbmvox 2 2 2\n\x00\x00\x00", // truncated payload
		"lbmvox 2 2 2\n" + "\x00\x00\x00\x00\x00\x00\x00\x02", // bad byte
		"lbmvox 0 2 2\n",
	} {
		if _, err := ReadRaw(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadRaw accepted %q", bad)
		}
	}
}

func TestCylinderZ(t *testing.T) {
	d := grid.Dims{NX: 20, NY: 10, NZ: 3}
	m := CylinderZ(d, 8, 5.5, 2.5)
	if m.Empty() {
		t.Fatal("cylinder mask empty")
	}
	// Every z column is identical, and the center voxel is solid.
	for ix := 0; ix < d.NX; ix++ {
		for iy := 0; iy < d.NY; iy++ {
			for iz := 1; iz < d.NZ; iz++ {
				if m.At(ix, iy, iz) != m.At(ix, iy, 0) {
					t.Fatalf("cylinder not z-invariant at (%d,%d,%d)", ix, iy, iz)
				}
			}
		}
	}
	if !m.At(8, 5, 0) || !m.At(8, 6, 0) {
		t.Fatal("cylinder center not solid")
	}
	if m.At(8, 9, 0) || m.At(0, 5, 0) {
		t.Fatal("cylinder too large")
	}
	// Union composes.
	u := NewMask(d)
	u.Union(m)
	if !u.Equal(m) {
		t.Fatal("union with empty changed the mask")
	}
}

func TestSphereAt(t *testing.T) {
	d := grid.Dims{NX: 9, NY: 9, NZ: 9}
	m := SphereAt(d, 4, 4, 4, 2)
	if !m.At(4, 4, 4) || !m.At(6, 4, 4) || m.At(7, 4, 4) || m.At(6, 6, 6) {
		t.Fatal("sphere shape wrong")
	}
}
