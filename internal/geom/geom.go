// Package geom is the solver's geometry subsystem: voxelized solid masks
// over the global lattice. The paper positions its solver as the fluid
// engine for "complicated geometries from microfluidic devices to
// patient-specific arterial geometries" (§I); this package supplies the
// geometry half of that use case — a bit-packed solid mask that can be
// built programmatically (analytic shapes, closures) or loaded from a
// voxel file (see io.go), and that the core solver slices rank-locally
// into its halfway bounce-back fixup index.
//
// A Mask is purely geometric: it knows which global lattice points are
// solid and nothing about ranks, ghosts or boundary conditions. The core
// steppers evaluate it at wrapped (periodic axes) or clamped (bounded
// axes) global coordinates when building their local fixup links, so one
// global mask serves every decomposition identically.
package geom

import (
	"fmt"
	"math/bits"

	"repro/internal/grid"
)

// Mask is a bit-packed solid mask over a global lattice box: one bit per
// lattice point, z-fastest (matching grid.Dims indexing), set = solid.
type Mask struct {
	D    grid.Dims
	bits []uint64
}

// NewMask returns an all-fluid mask over the given global box.
func NewMask(d grid.Dims) *Mask {
	if d.NX < 1 || d.NY < 1 || d.NZ < 1 {
		panic(fmt.Sprintf("geom: bad mask dims %v", d))
	}
	return &Mask{D: d, bits: make([]uint64, (d.Cells()+63)/64)}
}

// FromFunc builds a mask by evaluating solid at every lattice point; a
// nil func yields an all-fluid mask.
func FromFunc(d grid.Dims, solid func(ix, iy, iz int) bool) *Mask {
	m := NewMask(d)
	if solid == nil {
		return m
	}
	for ix := 0; ix < d.NX; ix++ {
		for iy := 0; iy < d.NY; iy++ {
			for iz := 0; iz < d.NZ; iz++ {
				if solid(ix, iy, iz) {
					m.Set(ix, iy, iz, true)
				}
			}
		}
	}
	return m
}

// At reports whether the lattice point (ix,iy,iz) is solid. Coordinates
// must be in range; the solver wraps or clamps before asking.
func (m *Mask) At(ix, iy, iz int) bool {
	i := m.D.Index(ix, iy, iz)
	return m.bits[i>>6]&(1<<(i&63)) != 0
}

// Set marks one lattice point solid (true) or fluid (false).
func (m *Mask) Set(ix, iy, iz int, solid bool) {
	i := m.D.Index(ix, iy, iz)
	if solid {
		m.bits[i>>6] |= 1 << (i & 63)
	} else {
		m.bits[i>>6] &^= 1 << (i & 63)
	}
}

// Solids returns the number of solid lattice points.
func (m *Mask) Solids() int {
	n := 0
	for _, w := range m.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Fluids returns the number of fluid lattice points (the paper's N_fl).
func (m *Mask) Fluids() int { return m.D.Cells() - m.Solids() }

// Empty reports whether the mask has no solid points at all.
func (m *Mask) Empty() bool {
	for _, w := range m.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether two masks have identical dims and solid sets.
func (m *Mask) Equal(o *Mask) bool {
	if m.D != o.D {
		return false
	}
	for i, w := range m.bits {
		if w != o.bits[i] {
			return false
		}
	}
	return true
}

// Union marks solid every point that is solid in o (dims must match).
func (m *Mask) Union(o *Mask) {
	if m.D != o.D {
		panic(fmt.Sprintf("geom: union of %v with %v", m.D, o.D))
	}
	for i := range m.bits {
		m.bits[i] |= o.bits[i]
	}
}

// CylinderZ marks solid a circular cylinder aligned with the z axis:
// lattice points whose (x,y) distance from the center (cx, cy) is at most
// r, spanning the full z extent. The center may be fractional — placing
// it off the symmetry line by a fraction of a cell is the standard way to
// trigger vortex shedding deterministically.
func CylinderZ(d grid.Dims, cx, cy, r float64) *Mask {
	m := NewMask(d)
	r2 := r * r
	for ix := 0; ix < d.NX; ix++ {
		dx := float64(ix) - cx
		for iy := 0; iy < d.NY; iy++ {
			dy := float64(iy) - cy
			if dx*dx+dy*dy <= r2 {
				for iz := 0; iz < d.NZ; iz++ {
					m.Set(ix, iy, iz, true)
				}
			}
		}
	}
	return m
}

// CylinderY marks solid a circular cylinder aligned with the y axis:
// lattice points whose (x,z) distance from (cx, cz) is at most r,
// spanning the full y extent. The y-aligned form is the quasi-2-D
// obstacle of choice on the z-fastest layout: a channel whose height
// runs along z keeps its kernels' z-runs long.
func CylinderY(d grid.Dims, cx, cz, r float64) *Mask {
	m := NewMask(d)
	r2 := r * r
	for ix := 0; ix < d.NX; ix++ {
		dx := float64(ix) - cx
		for iz := 0; iz < d.NZ; iz++ {
			dz := float64(iz) - cz
			if dx*dx+dz*dz <= r2 {
				for iy := 0; iy < d.NY; iy++ {
					m.Set(ix, iy, iz, true)
				}
			}
		}
	}
	return m
}

// SphereAt marks solid the lattice points within radius r of (cx,cy,cz).
func SphereAt(d grid.Dims, cx, cy, cz, r float64) *Mask {
	m := NewMask(d)
	r2 := r * r
	for ix := 0; ix < d.NX; ix++ {
		dx := float64(ix) - cx
		for iy := 0; iy < d.NY; iy++ {
			dy := float64(iy) - cy
			for iz := 0; iz < d.NZ; iz++ {
				dz := float64(iz) - cz
				if dx*dx+dy*dy+dz*dz <= r2 {
					m.Set(ix, iy, iz, true)
				}
			}
		}
	}
	return m
}
