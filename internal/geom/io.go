package geom

// Voxel-file import/export: the arterial-mask pathway of the paper's §I.
// Two formats are supported, dispatched on file extension:
//
//   - .csv — textual sparse form: the first record is the global dims
//     "nx,ny,nz", every following record one solid voxel "ix,iy,iz".
//     Lines starting with '#' are comments. Compact for typical masks
//     (solids are a small fraction of the box) and diffable.
//
//   - .raw — dense binary form: a one-line header "lbmvox nx ny nz"
//     followed by exactly nx·ny·nz bytes, one per lattice point in
//     z-fastest order, 0 = fluid, 1 = solid. The shape a voxelizer or a
//     segmented medical image exports with a one-line header slapped on.
//
// Save and Load round-trip exactly in both formats (the test suite pins
// this), so either works as the interchange format for -geom.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/grid"
)

const rawMagic = "lbmvox"

// Save writes the mask to path in the format implied by the extension
// (.csv or .raw).
func Save(path string, m *Mask) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	switch filepath.Ext(path) {
	case ".csv":
		err = WriteCSV(w, m)
	case ".raw":
		err = WriteRaw(w, m)
	default:
		return fmt.Errorf("geom: unknown mask format %q (want .csv or .raw)", path)
	}
	if err != nil {
		return err
	}
	return w.Flush()
}

// Load reads a mask from path in the format implied by the extension.
func Load(path string) (*Mask, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	switch filepath.Ext(path) {
	case ".csv":
		return ReadCSV(r)
	case ".raw":
		return ReadRaw(r)
	}
	return nil, fmt.Errorf("geom: unknown mask format %q (want .csv or .raw)", path)
}

// WriteCSV writes the sparse textual form.
func WriteCSV(w io.Writer, m *Mask) error {
	if _, err := fmt.Fprintf(w, "# voxel mask: dims record, then one ix,iy,iz record per solid point\n%d,%d,%d\n", m.D.NX, m.D.NY, m.D.NZ); err != nil {
		return err
	}
	for ix := 0; ix < m.D.NX; ix++ {
		for iy := 0; iy < m.D.NY; iy++ {
			for iz := 0; iz < m.D.NZ; iz++ {
				if m.At(ix, iy, iz) {
					if _, err := fmt.Fprintf(w, "%d,%d,%d\n", ix, iy, iz); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// ReadCSV reads the sparse textual form.
func ReadCSV(r io.Reader) (*Mask, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var m *Mask
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		var a, b, c int
		if _, err := fmt.Sscanf(strings.ReplaceAll(s, ",", " "), "%d %d %d", &a, &b, &c); err != nil {
			return nil, fmt.Errorf("geom: csv line %d: %q: %v", line, s, err)
		}
		if m == nil {
			if a < 1 || b < 1 || c < 1 {
				return nil, fmt.Errorf("geom: csv line %d: bad dims %d,%d,%d", line, a, b, c)
			}
			m = NewMask(grid.Dims{NX: a, NY: b, NZ: c})
			continue
		}
		if a < 0 || a >= m.D.NX || b < 0 || b >= m.D.NY || c < 0 || c >= m.D.NZ {
			return nil, fmt.Errorf("geom: csv line %d: voxel %d,%d,%d outside %v", line, a, b, c, m.D)
		}
		m.Set(a, b, c, true)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("geom: csv mask has no dims record")
	}
	return m, nil
}

// WriteRaw writes the dense binary form.
func WriteRaw(w io.Writer, m *Mask) error {
	if _, err := fmt.Fprintf(w, "%s %d %d %d\n", rawMagic, m.D.NX, m.D.NY, m.D.NZ); err != nil {
		return err
	}
	buf := make([]byte, m.D.NZ)
	for ix := 0; ix < m.D.NX; ix++ {
		for iy := 0; iy < m.D.NY; iy++ {
			for iz := 0; iz < m.D.NZ; iz++ {
				if m.At(ix, iy, iz) {
					buf[iz] = 1
				} else {
					buf[iz] = 0
				}
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadRaw reads the dense binary form.
func ReadRaw(r io.Reader) (*Mask, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("geom: raw header: %v", err)
	}
	var magic string
	var nx, ny, nz int
	if _, err := fmt.Sscanf(header, "%s %d %d %d", &magic, &nx, &ny, &nz); err != nil || magic != rawMagic {
		return nil, fmt.Errorf("geom: bad raw header %q (want %q nx ny nz)", strings.TrimSpace(header), rawMagic)
	}
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("geom: raw header dims %d %d %d", nx, ny, nz)
	}
	m := NewMask(grid.Dims{NX: nx, NY: ny, NZ: nz})
	buf := make([]byte, nz)
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("geom: raw payload at x=%d y=%d: %v", ix, iy, err)
			}
			for iz, b := range buf {
				switch b {
				case 0:
				case 1:
					m.Set(ix, iy, iz, true)
				default:
					return nil, fmt.Errorf("geom: raw byte %d at (%d,%d,%d) (want 0 or 1)", b, ix, iy, iz)
				}
			}
		}
	}
	return m, nil
}
