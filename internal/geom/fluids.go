// Fluid-count queries over a Mask: per-plane fluid histograms and box
// fluid counts. These are the geometry half of fluid-cell-balanced
// decomposition — the paper's performance model counts fluid sites
// (N_fl), so cut planes should balance Fluids per rank, not box volume.
// decomp.BisectWeights consumes PlaneFluids; perfsim and the run report
// consume FluidsInBox over each rank's owned box.
package geom

import (
	"fmt"
	"math"

	"repro/internal/grid"
)

// PlaneFluids returns the number of fluid lattice points in each plane
// perpendicular to the given axis (0 = x, 1 = y, 2 = z): out[i] is the
// fluid count of the slice at coordinate i along that axis. The slice
// sums to Fluids().
func (m *Mask) PlaneFluids(axis int) []int {
	n := [3]int{m.D.NX, m.D.NY, m.D.NZ}
	if axis < 0 || axis > 2 {
		panic(fmt.Sprintf("geom: PlaneFluids axis %d", axis))
	}
	out := make([]int, n[axis])
	for ix := 0; ix < m.D.NX; ix++ {
		for iy := 0; iy < m.D.NY; iy++ {
			for iz := 0; iz < m.D.NZ; iz++ {
				if !m.At(ix, iy, iz) {
					out[[3]int{ix, iy, iz}[axis]]++
				}
			}
		}
	}
	return out
}

// FluidsInBox returns the number of fluid lattice points in the half-open
// box [lo, hi) (global coordinates, clipped to the mask's extent). An
// empty or fully-clipped box counts zero.
func (m *Mask) FluidsInBox(lo, hi [3]int) int {
	n := [3]int{m.D.NX, m.D.NY, m.D.NZ}
	for a := 0; a < 3; a++ {
		if lo[a] < 0 {
			lo[a] = 0
		}
		if hi[a] > n[a] {
			hi[a] = n[a]
		}
		if lo[a] >= hi[a] {
			return 0
		}
	}
	fluids := 0
	for ix := lo[0]; ix < hi[0]; ix++ {
		for iy := lo[1]; iy < hi[1]; iy++ {
			for iz := lo[2]; iz < hi[2]; iz++ {
				if !m.At(ix, iy, iz) {
					fluids++
				}
			}
		}
	}
	return fluids
}

// Bifurcation builds the demo vasculature mask: a Y-shaped vessel in the
// x-y midplane — a parent tube entering at x=0 on the y/z centerline,
// splitting at mid-length into two daughter branches that exit at x=NX-1
// near the top and bottom walls. Points within radius r of any of the
// three centerline segments are fluid; everything else is solid. With
// r ≈ 0.1·NY the mask is ≥90% solid inside its bounding box — the
// arterial sparsity regime the fluid-balanced decomposition targets.
func Bifurcation(d grid.Dims, r float64) *Mask {
	cy, cz := float64(d.NY-1)/2, float64(d.NZ-1)/2
	xs := float64(d.NX-1) * 0.5
	xe := float64(d.NX - 1)
	// Daughter endpoints leave an r-sized margin to the y walls so the
	// vessel lumen stays inside the box.
	yTop := float64(d.NY-1) - r - 1
	yBot := r + 1
	segs := [3][2][3]float64{
		{{0, cy, cz}, {xs, cy, cz}},
		{{xs, cy, cz}, {xe, yTop, cz}},
		{{xs, cy, cz}, {xe, yBot, cz}},
	}
	r2 := r * r
	return FromFunc(d, func(ix, iy, iz int) bool {
		p := [3]float64{float64(ix), float64(iy), float64(iz)}
		for _, s := range segs {
			if distSq(p, s[0], s[1]) <= r2 {
				return false // fluid
			}
		}
		return true // solid
	})
}

// distSq is the squared distance from point p to segment ab.
func distSq(p, a, b [3]float64) float64 {
	var ab, ap [3]float64
	var dot, len2 float64
	for i := 0; i < 3; i++ {
		ab[i] = b[i] - a[i]
		ap[i] = p[i] - a[i]
		dot += ab[i] * ap[i]
		len2 += ab[i] * ab[i]
	}
	t := 0.0
	if len2 > 0 {
		t = math.Min(1, math.Max(0, dot/len2))
	}
	var d2 float64
	for i := 0; i < 3; i++ {
		d := ap[i] - t*ab[i]
		d2 += d * d
	}
	return d2
}
