package geom

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

func randomMask(t *testing.T, d grid.Dims, density float64, seed int64) *Mask {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return FromFunc(d, func(ix, iy, iz int) bool {
		return rng.Float64() < density
	})
}

// PlaneFluids must agree with a brute-force per-plane count and sum to
// Fluids() on every axis.
func TestPlaneFluidsBruteForce(t *testing.T) {
	d := grid.Dims{NX: 7, NY: 5, NZ: 9}
	m := randomMask(t, d, 0.4, 1)
	n := [3]int{d.NX, d.NY, d.NZ}
	for axis := 0; axis < 3; axis++ {
		got := m.PlaneFluids(axis)
		if len(got) != n[axis] {
			t.Fatalf("axis %d: len %d, want %d", axis, len(got), n[axis])
		}
		total := 0
		for i, g := range got {
			want := 0
			for ix := 0; ix < d.NX; ix++ {
				for iy := 0; iy < d.NY; iy++ {
					for iz := 0; iz < d.NZ; iz++ {
						if [3]int{ix, iy, iz}[axis] == i && !m.At(ix, iy, iz) {
							want++
						}
					}
				}
			}
			if g != want {
				t.Errorf("axis %d plane %d: got %d, want %d", axis, i, g, want)
			}
			total += g
		}
		if total != m.Fluids() {
			t.Errorf("axis %d: planes sum to %d, Fluids() = %d", axis, total, m.Fluids())
		}
	}
}

func TestFluidsInBoxBruteForce(t *testing.T) {
	d := grid.Dims{NX: 6, NY: 8, NZ: 5}
	m := randomMask(t, d, 0.5, 2)
	rng := rand.New(rand.NewSource(3))
	n := [3]int{d.NX, d.NY, d.NZ}
	for trial := 0; trial < 50; trial++ {
		var lo, hi [3]int
		for a := 0; a < 3; a++ {
			lo[a] = rng.Intn(n[a] + 1)
			hi[a] = rng.Intn(n[a] + 1)
		}
		got := m.FluidsInBox(lo, hi)
		want := 0
		for ix := 0; ix < d.NX; ix++ {
			for iy := 0; iy < d.NY; iy++ {
				for iz := 0; iz < d.NZ; iz++ {
					p := [3]int{ix, iy, iz}
					in := true
					for a := 0; a < 3; a++ {
						if p[a] < lo[a] || p[a] >= hi[a] {
							in = false
						}
					}
					if in && !m.At(ix, iy, iz) {
						want++
					}
				}
			}
		}
		if got != want {
			t.Fatalf("box %v-%v: got %d, want %d", lo, hi, got, want)
		}
	}
	// Whole-box query equals Fluids, clipping handles out-of-range bounds.
	if got := m.FluidsInBox([3]int{-3, -3, -3}, [3]int{99, 99, 99}); got != m.Fluids() {
		t.Errorf("clipped whole box: got %d, want %d", got, m.Fluids())
	}
	if got := m.FluidsInBox([3]int{2, 2, 2}, [3]int{2, 5, 5}); got != 0 {
		t.Errorf("empty box: got %d, want 0", got)
	}
}

// The bifurcation demo mask must be in the arterial sparsity regime
// (≥90% solid), connected enough to have fluid at the inlet and both
// outlet branches, and keep its lumen off the y/z walls.
func TestBifurcationMask(t *testing.T) {
	d := grid.Dims{NX: 96, NY: 48, NZ: 48}
	m := Bifurcation(d, 0.1*float64(d.NY))
	solidFrac := float64(m.Solids()) / float64(d.Cells())
	if solidFrac < 0.90 {
		t.Errorf("solid fraction %.3f, want >= 0.90", solidFrac)
	}
	if m.Fluids() == 0 {
		t.Fatal("no fluid cells at all")
	}
	// Inlet plane (x=0) and outlet plane (x=NX-1) both carry fluid.
	px := m.PlaneFluids(0)
	if px[0] == 0 {
		t.Error("no fluid at inlet plane x=0")
	}
	if px[d.NX-1] == 0 {
		t.Error("no fluid at outlet plane x=NX-1")
	}
	// Outlet fluid sits in two disjoint y bands (top and bottom branch).
	top, bot := 0, 0
	for iy := 0; iy < d.NY; iy++ {
		for iz := 0; iz < d.NZ; iz++ {
			if !m.At(d.NX-1, iy, iz) {
				if iy >= d.NY/2 {
					top++
				} else {
					bot++
				}
			}
		}
	}
	if top == 0 || bot == 0 {
		t.Errorf("outlet branches: top %d, bottom %d fluid cells; want both > 0", top, bot)
	}
	// Lumen stays off the y walls so wall boundary conditions see solid.
	for ix := 0; ix < d.NX; ix++ {
		for iz := 0; iz < d.NZ; iz++ {
			if !m.At(ix, 0, iz) || !m.At(ix, d.NY-1, iz) {
				t.Fatalf("fluid on y wall at x=%d z=%d", ix, iz)
			}
		}
	}
}
