package geom

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Hash returns a short content hash of the mask — dims plus every solid
// bit — for cache keys (a tuned config is valid only for the exact
// geometry it was tuned on). Stable across processes and platforms.
func (m *Mask) Hash() string {
	h := sha256.New()
	var dims [24]byte
	binary.LittleEndian.PutUint64(dims[0:], uint64(m.D.NX))
	binary.LittleEndian.PutUint64(dims[8:], uint64(m.D.NY))
	binary.LittleEndian.PutUint64(dims[16:], uint64(m.D.NZ))
	h.Write(dims[:])
	var word [8]byte
	for _, w := range m.bits {
		binary.LittleEndian.PutUint64(word[:], w)
		h.Write(word[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}
