package macro

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/lattice"
)

// buildField fills a field with equilibria of a known macroscopic state.
func buildField(m *lattice.Model, n grid.Dims, state func(ix, iy, iz int) (float64, float64, float64, float64)) *grid.Field {
	f := grid.NewField(m.Q, n, grid.SoA)
	feq := make([]float64, m.Q)
	for ix := 0; ix < n.NX; ix++ {
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				rho, ux, uy, uz := state(ix, iy, iz)
				m.Equilibrium(rho, ux, uy, uz, feq)
				f.SetCell(ix, iy, iz, feq)
			}
		}
	}
	return f
}

func TestComputeRecoversState(t *testing.T) {
	m := lattice.D3Q19()
	n := grid.Dims{NX: 4, NY: 3, NZ: 5}
	state := func(ix, iy, iz int) (float64, float64, float64, float64) {
		return 1 + 0.01*float64(ix), 0.01 * float64(iy), -0.005 * float64(iz), 0.002
	}
	fields := Compute(m, buildField(m, n, state), [3]float64{})
	for ix := 0; ix < n.NX; ix++ {
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				wr, wx, wy, wz := state(ix, iy, iz)
				rho, ux, uy, uz := fields.At(ix, iy, iz)
				if math.Abs(rho-wr) > 1e-13 || math.Abs(ux-wx) > 1e-13 ||
					math.Abs(uy-wy) > 1e-13 || math.Abs(uz-wz) > 1e-13 {
					t.Fatalf("(%d,%d,%d): got (%g,%g,%g,%g) want (%g,%g,%g,%g)",
						ix, iy, iz, rho, ux, uy, uz, wr, wx, wy, wz)
				}
			}
		}
	}
}

// TestSoABlockedMatchesPerCell: the velocity-blocked SoA path must agree
// with the per-cell gather path to 0 ULP — both sum the moments in
// v-ascending order, so the only difference is traversal order.
func TestSoABlockedMatchesPerCell(t *testing.T) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		n := grid.Dims{NX: 5, NY: 4, NZ: 7}
		state := func(ix, iy, iz int) (float64, float64, float64, float64) {
			return 1 + 0.02*float64(ix*iz%3), 0.01 * float64(iy), -0.007 * float64(ix), 0.003 * float64(iz)
		}
		soa := buildField(m, n, state)
		aos := grid.NewField(m.Q, n, grid.AoS)
		fc := make([]float64, m.Q)
		for c := 0; c < n.Cells(); c++ {
			for v := 0; v < m.Q; v++ {
				fc[v] = soa.Data[soa.Idx(v, c)]
			}
			for v := 0; v < m.Q; v++ {
				aos.Data[aos.Idx(v, c)] = fc[v]
			}
		}
		shift := [3]float64{0.004, -0.002, 0.001}
		fs, fa := Compute(m, soa, shift), Compute(m, aos, shift)
		for c := 0; c < n.Cells(); c++ {
			if fs.Rho[c] != fa.Rho[c] || fs.Ux[c] != fa.Ux[c] ||
				fs.Uy[c] != fa.Uy[c] || fs.Uz[c] != fa.Uz[c] {
				t.Fatalf("%s cell %d: SoA (%v,%v,%v,%v) != AoS (%v,%v,%v,%v)", m.Name, c,
					fs.Rho[c], fs.Ux[c], fs.Uy[c], fs.Uz[c],
					fa.Rho[c], fa.Ux[c], fa.Uy[c], fa.Uz[c])
			}
		}
	}
}

func TestAccelShift(t *testing.T) {
	m := lattice.D3Q19()
	n := grid.Dims{NX: 2, NY: 2, NZ: 2}
	f := buildField(m, n, func(ix, iy, iz int) (float64, float64, float64, float64) {
		return 1, 0.01, 0, 0
	})
	fields := Compute(m, f, [3]float64{0.005, 0, 0})
	_, ux, _, _ := fields.At(0, 0, 0)
	if math.Abs(ux-0.015) > 1e-13 {
		t.Errorf("ux = %g, want 0.015", ux)
	}
}

func TestAggregates(t *testing.T) {
	m := lattice.D3Q39()
	n := grid.Dims{NX: 3, NY: 2, NZ: 2}
	f := buildField(m, n, func(ix, iy, iz int) (float64, float64, float64, float64) {
		return 2, 0.03, 0.04, 0
	})
	fields := Compute(m, f, [3]float64{})
	cells := float64(n.Cells())
	if got, want := fields.TotalMass(), 2*cells; math.Abs(got-want) > 1e-10 {
		t.Errorf("TotalMass = %g, want %g", got, want)
	}
	px, py, pz := fields.TotalMomentum()
	if math.Abs(px-2*0.03*cells) > 1e-10 || math.Abs(py-2*0.04*cells) > 1e-10 || math.Abs(pz) > 1e-10 {
		t.Errorf("momentum = (%g,%g,%g)", px, py, pz)
	}
	// |u| = 0.05 everywhere.
	if got := fields.MaxSpeed(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("MaxSpeed = %g, want 0.05", got)
	}
	if got := fields.Speed(1, 1, 1); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("Speed = %g, want 0.05", got)
	}
	// E = ρu²/2 per cell.
	if got, want := fields.KineticEnergy(), 2*0.0025/2*cells; math.Abs(got-want) > 1e-10 {
		t.Errorf("KineticEnergy = %g, want %g", got, want)
	}
}
