// Package macro extracts macroscopic observables (density, velocity,
// kinetic energy, momentum) from distribution-function fields. It is the
// shared post-processing layer used by the physics validations, the output
// writers and the examples.
package macro

import (
	"math"

	"repro/internal/grid"
	"repro/internal/lattice"
)

// Fields holds the macroscopic state over a box, cell-indexed like the
// source field (z fastest).
type Fields struct {
	D               grid.Dims
	Rho, Ux, Uy, Uz []float64
}

// Compute derives the macroscopic fields of f. The optional accelShift is
// added to the velocities (use a/2 for the velocity-shift forced scheme's
// physical velocity; zero otherwise).
//
// The SoA layout takes a velocity-blocked path: one contiguous pass per
// velocity accumulating the moments in v-ascending order — the same
// summation order as lattice.Moments, so the results are bit-identical to
// the per-cell gather while streaming the field at copy bandwidth instead
// of striding Q-apart.
func Compute(m *lattice.Model, f *grid.Field, accelShift [3]float64) *Fields {
	n := f.D.Cells()
	out := &Fields{
		D:   f.D,
		Rho: make([]float64, n),
		Ux:  make([]float64, n),
		Uy:  make([]float64, n),
		Uz:  make([]float64, n),
	}
	if f.Layout == grid.SoA {
		// Accumulate momenta into Ux/Uy/Uz, then normalize in place.
		rho, jx, jy, jz := out.Rho, out.Ux, out.Uy, out.Uz
		for v := 0; v < m.Q; v++ {
			blk := f.V(v)[:n]
			cx, cy, cz := float64(m.Cx[v]), float64(m.Cy[v]), float64(m.Cz[v])
			for c, val := range blk {
				rho[c] += val
				jx[c] += val * cx
				jy[c] += val * cy
				jz[c] += val * cz
			}
		}
		for c := 0; c < n; c++ {
			r := rho[c]
			jx[c] = jx[c]/r + accelShift[0]
			jy[c] = jy[c]/r + accelShift[1]
			jz[c] = jz[c]/r + accelShift[2]
		}
		return out
	}
	fc := make([]float64, m.Q)
	for c := 0; c < n; c++ {
		for v := 0; v < m.Q; v++ {
			fc[v] = f.Data[f.Idx(v, c)]
		}
		rho, jx, jy, jz := m.Moments(fc)
		out.Rho[c] = rho
		out.Ux[c] = jx/rho + accelShift[0]
		out.Uy[c] = jy/rho + accelShift[1]
		out.Uz[c] = jz/rho + accelShift[2]
	}
	return out
}

// At returns the macroscopic state at a lattice point.
func (f *Fields) At(ix, iy, iz int) (rho, ux, uy, uz float64) {
	c := f.D.Index(ix, iy, iz)
	return f.Rho[c], f.Ux[c], f.Uy[c], f.Uz[c]
}

// Speed returns |u| at a lattice point.
func (f *Fields) Speed(ix, iy, iz int) float64 {
	c := f.D.Index(ix, iy, iz)
	return math.Sqrt(f.Ux[c]*f.Ux[c] + f.Uy[c]*f.Uy[c] + f.Uz[c]*f.Uz[c])
}

// KineticEnergy returns Σ ρu²/2 over the box.
func (f *Fields) KineticEnergy() float64 {
	var e float64
	for c := range f.Rho {
		u2 := f.Ux[c]*f.Ux[c] + f.Uy[c]*f.Uy[c] + f.Uz[c]*f.Uz[c]
		e += f.Rho[c] * u2 / 2
	}
	return e
}

// TotalMass returns Σ ρ over the box.
func (f *Fields) TotalMass() float64 {
	var mass float64
	for _, r := range f.Rho {
		mass += r
	}
	return mass
}

// TotalMomentum returns Σ ρu over the box.
func (f *Fields) TotalMomentum() (px, py, pz float64) {
	for c := range f.Rho {
		px += f.Rho[c] * f.Ux[c]
		py += f.Rho[c] * f.Uy[c]
		pz += f.Rho[c] * f.Uz[c]
	}
	return
}

// MaxSpeed returns the largest |u| over the box (a stability indicator:
// it should stay well below c_s).
func (f *Fields) MaxSpeed() float64 {
	var worst float64
	for c := range f.Rho {
		u2 := f.Ux[c]*f.Ux[c] + f.Uy[c]*f.Uy[c] + f.Uz[c]*f.Uz[c]
		if u2 > worst {
			worst = u2
		}
	}
	return math.Sqrt(worst)
}
