package collision

import (
	"math"
	"testing"

	"repro/internal/lattice"
)

// randomish deterministic cell state: a perturbed equilibrium.
func testPopulations(m *lattice.Model) []float64 {
	f := make([]float64, m.Q)
	m.Equilibrium(1.02, 0.03, -0.02, 0.01, f)
	for i := range f {
		f[i] += 1e-3 * math.Sin(float64(3*i+1))
	}
	return f
}

func moments(m *lattice.Model, f []float64) (rho, jx, jy, jz float64) {
	return m.Moments(f)
}

func TestParseKind(t *testing.T) {
	for in, want := range map[string]Kind{"bgk": BGK, "BGK": BGK, "srt": BGK, "trt": TRT, "MRT": MRT} {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("cumulant"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestParseRates(t *testing.T) {
	got, err := ParseRates(" 1.1, 1.4 ")
	if err != nil || len(got) != 2 || got[0] != 1.1 || got[1] != 1.4 {
		t.Errorf("ParseRates = %v, %v", got, err)
	}
	if got, err := ParseRates(""); err != nil || got != nil {
		t.Errorf("empty rates = %v, %v", got, err)
	}
	if _, err := ParseRates("1.0,x"); err == nil {
		t.Error("bad rate accepted")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Kind: Kind(9)},
		{Kind: TRT, Magic: -1},
		{Kind: BGK, Magic: 0.25},
		{Kind: TRT, GhostRates: []float64{1}},
		{Kind: MRT, GhostRates: []float64{2.5}},
		{Kind: MRT, GhostRates: []float64{0}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v validated", s)
		}
	}
	good := []Spec{{}, {Kind: TRT}, {Kind: TRT, Magic: 3.0 / 16}, {Kind: MRT}, {Kind: MRT, GhostRates: []float64{1.2, 1.1}}}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %+v rejected: %v", s, err)
		}
	}
}

func TestSpecString(t *testing.T) {
	for spec, want := range map[string]string{
		Spec{}.String():          "bgk",
		Spec{Kind: TRT}.String(): "trt(magic=0.25)",
		Spec{Kind: MRT}.String(): "mrt(ghost=auto)",
		Spec{Kind: MRT, GhostRates: []float64{1.2}}.String(): "mrt(ghost=1.2)",
		Spec{Kind: TRT, Magic: 0.1875}.String():              "trt(magic=0.1875)",
	} {
		if spec != want {
			t.Errorf("String = %q, want %q", spec, want)
		}
	}
}

// TestRawMomentBasisD3Q19 pins the selected basis to the standard raw
// moments of the D3Q19 MRT literature: the graded monomials with xyz
// (which vanishes identically on D3Q19) skipped.
func TestRawMomentBasisD3Q19(t *testing.T) {
	basis, err := RawMomentBasis(lattice.D3Q19())
	if err != nil {
		t.Fatal(err)
	}
	want := [][3]int{
		{0, 0, 0},
		{0, 0, 1}, {0, 1, 0}, {1, 0, 0},
		{0, 0, 2}, {0, 1, 1}, {0, 2, 0}, {1, 0, 1}, {1, 1, 0}, {2, 0, 0},
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
		{0, 2, 2}, {2, 0, 2}, {2, 2, 0},
	}
	if len(basis) != len(want) {
		t.Fatalf("basis has %d moments, want %d", len(basis), len(want))
	}
	for i, mom := range basis {
		if [3]int{mom.A, mom.B, mom.C} != want[i] {
			t.Errorf("moment %d = (%d,%d,%d), want %v", i, mom.A, mom.B, mom.C, want[i])
		}
		if mom.Order != mom.A+mom.B+mom.C {
			t.Errorf("moment %d order %d != %d", i, mom.Order, mom.A+mom.B+mom.C)
		}
	}
}

// TestRawMomentBasisComplete: every lattice gets a full-rank basis whose
// moment matrix round-trips through the solver (M·M⁻¹SM with S=I equals M,
// i.e. the inversion is accurate).
func TestRawMomentBasisComplete(t *testing.T) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q27(), lattice.D3Q39()} {
		basis, err := RawMomentBasis(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(basis) != m.Q {
			t.Errorf("%s: basis has %d moments, want %d", m.Name, len(basis), m.Q)
		}
		// With every rate = 1, C must be the identity.
		op, err := NewMRT(m, 1.0, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		c := op.(*mrtOp).CollisionMatrix()
		for i := 0; i < m.Q; i++ {
			for j := 0; j < m.Q; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if d := math.Abs(c[i*m.Q+j] - want); d > 1e-9 {
					t.Fatalf("%s: C[%d,%d] = %g, want %g (inversion residual %g)", m.Name, i, j, c[i*m.Q+j], want, d)
				}
			}
		}
	}
}

// TestMRTAllRatesOmegaIsBGK: when the ghost rates equal the shear rate,
// C = ω·I and the operator degenerates to BGK.
func TestMRTAllRatesOmegaIsBGK(t *testing.T) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		tau := 0.8
		mrt, err := NewMRT(m, tau, []float64{1 / tau})
		if err != nil {
			t.Fatal(err)
		}
		bgk := NewBGK(m, tau)
		fa, fb := testPopulations(m), testPopulations(m)
		rho, jx, jy, jz := moments(m, fa)
		mrt.Relax(fa, rho, jx/rho, jy/rho, jz/rho)
		bgk.Relax(fb, rho, jx/rho, jy/rho, jz/rho)
		for i := range fa {
			if d := math.Abs(fa[i] - fb[i]); d > 1e-12 {
				t.Fatalf("%s: MRT(ω,...,ω) differs from BGK at %d by %g", m.Name, i, d)
			}
		}
	}
}

// TestTRTEqualRatesIsBGK: with Λ = (τ−½)² the odd rate equals the even
// rate and TRT degenerates to BGK.
func TestTRTEqualRatesIsBGK(t *testing.T) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		tau := 0.8
		magic := (tau - 0.5) * (tau - 0.5)
		trt := NewTRT(m, tau, magic)
		bgk := NewBGK(m, tau)
		fa, fb := testPopulations(m), testPopulations(m)
		rho, jx, jy, jz := moments(m, fa)
		trt.Relax(fa, rho, jx/rho, jy/rho, jz/rho)
		bgk.Relax(fb, rho, jx/rho, jy/rho, jz/rho)
		for i := range fa {
			if d := math.Abs(fa[i] - fb[i]); d > 1e-14 {
				t.Fatalf("%s: TRT(Λ=(τ-½)²) differs from BGK at %d by %g", m.Name, i, d)
			}
		}
	}
}

// TestConservation: every operator conserves the cell's mass and momentum
// when relaxing toward the equilibrium at the cell's own velocity.
func TestConservation(t *testing.T) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q27(), lattice.D3Q39()} {
		for _, spec := range []Spec{{}, {Kind: TRT}, {Kind: MRT}, {Kind: MRT, GhostRates: []float64{1.3, 1.1}}} {
			op, err := spec.New(m, 0.7)
			if err != nil {
				t.Fatal(err)
			}
			f := testPopulations(m)
			rho0, jx0, jy0, jz0 := moments(m, f)
			op.Relax(f, rho0, jx0/rho0, jy0/rho0, jz0/rho0)
			rho1, jx1, jy1, jz1 := moments(m, f)
			for name, d := range map[string]float64{
				"mass": rho1 - rho0, "jx": jx1 - jx0, "jy": jy1 - jy0, "jz": jz1 - jz0,
			} {
				if math.Abs(d) > 1e-12 {
					t.Errorf("%s %s: %s drifts by %g", m.Name, op.Name(), name, d)
				}
			}
		}
	}
}

// TestEquilibriumFixedPoint: relaxing an exact equilibrium is a no-op for
// every operator.
func TestEquilibriumFixedPoint(t *testing.T) {
	m := lattice.D3Q19()
	for _, spec := range []Spec{{}, {Kind: TRT}, {Kind: MRT}} {
		op, err := spec.New(m, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		f := make([]float64, m.Q)
		m.Equilibrium(1.1, 0.02, 0.01, -0.03, f)
		want := append([]float64(nil), f...)
		op.Relax(f, 1.1, 0.02, 0.01, -0.03)
		for i := range f {
			if d := math.Abs(f[i] - want[i]); d > 1e-13 {
				t.Errorf("%s: equilibrium moved at %d by %g", op.Name(), i, d)
			}
		}
	}
}

// TestCloneIsConcurrencySafe: clones share no scratch (relaxing through a
// clone leaves the original's buffers untouched).
func TestCloneIsConcurrencySafe(t *testing.T) {
	m := lattice.D3Q19()
	for _, spec := range []Spec{{}, {Kind: TRT}, {Kind: MRT}} {
		op, err := spec.New(m, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		cl := op.Clone()
		fa, fb := testPopulations(m), testPopulations(m)
		rho, jx, jy, jz := moments(m, fa)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for k := 0; k < 200; k++ {
				f := append([]float64(nil), fb...)
				cl.Relax(f, rho, jx/rho, jy/rho, jz/rho)
			}
		}()
		for k := 0; k < 200; k++ {
			f := append([]float64(nil), fa...)
			op.Relax(f, rho, jx/rho, jy/rho, jz/rho)
		}
		<-done
	}
}

// TestTRTOmegaMinusFromMagic: the magic relation Λ = (τ⁺−½)(τ⁻−½) holds.
func TestTRTOmegaMinusFromMagic(t *testing.T) {
	m := lattice.D3Q19()
	tau := 0.51
	trt := NewTRT(m, tau, DefaultMagic).(*trtOp)
	tauM := 1 / trt.OmegaMinus()
	if d := math.Abs((tau-0.5)*(tauM-0.5) - DefaultMagic); d > 1e-14 {
		t.Errorf("magic relation violated by %g", d)
	}
}

func TestSpecNewRejectsBadTau(t *testing.T) {
	if _, err := (Spec{Kind: TRT}).New(lattice.D3Q19(), 0.5); err == nil {
		t.Error("tau = 0.5 accepted")
	}
}
