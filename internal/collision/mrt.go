package collision

// Raw-moment multiple-relaxation-time operator. Populations are mapped to
// moment space by the matrix M whose rows are monomials of the discrete
// velocities, relaxed there with a diagonal rate vector S, and mapped
// back: f ← f − M⁻¹ S M (f − f_eq). The collision matrix C = M⁻¹SM is
// precomputed once per (lattice, τ, rates), so a cell costs one Q×Q
// matrix-vector product on top of the equilibrium.
//
// The basis is built generically from the lattice itself: candidate
// exponent triples (a,b,c) are enumerated in graded lexicographic order
// and a monomial is kept iff it is linearly independent (as a function on
// the velocity set) of those already kept, until Q moments are found. For
// D3Q19 this reproduces the standard raw basis
//
//	{1; x,y,z; x²,y²,z²,xy,xz,yz; x²y,x²z,xy²,y²z,xz²,yz²; x²y²,x²z²,y²z²}
//
// (the (1,1,1) monomial xyz vanishes identically on D3Q19 and is skipped
// by the rank test). Moments of order ≤ 2 are the hydrodynamic sector:
// density, momentum and stress, all relaxed at ω = 1/τ so the recovered
// shear viscosity is exactly the BGK ν = c_s²(τ−½) and velocity-shift
// forcing injects the same ρ·a of momentum per step. Moments of order ≥ 3
// are the ghost sector, relaxed at the Spec's per-order GhostRates.

import (
	"fmt"
	"math"

	"repro/internal/lattice"
)

// Moment is one row of the raw-moment basis: the exponents of the
// monomial c_x^A c_y^B c_z^C and its total order A+B+C.
type Moment struct {
	A, B, C int
	Order   int
}

// RawMomentBasis returns the Q independent raw moments of a lattice,
// selected greedily in graded lexicographic order. It is exported for the
// experiment tables and the basis tests.
func RawMomentBasis(m *lattice.Model) ([]Moment, error) {
	// Per-variable exponents beyond maxExp are redundant on a grid of
	// 2·MaxSpeed+1 integer values (x^(2s+1) is a combination of lower odd
	// powers on {−s..s}), so the graded enumeration below spans every
	// function on the velocity set.
	maxExp := 2 * m.MaxSpeed
	var basis []Moment
	// Orthogonalized row images kept for the rank test.
	var ortho [][]float64
	row := make([]float64, m.Q)
	for deg := 0; deg <= 3*maxExp && len(basis) < m.Q; deg++ {
		for a := 0; a <= min(deg, maxExp) && len(basis) < m.Q; a++ {
			for b := 0; b <= min(deg-a, maxExp) && len(basis) < m.Q; b++ {
				c := deg - a - b
				if c > maxExp {
					continue
				}
				mom := Moment{A: a, B: b, C: c, Order: deg}
				evalMoment(m, mom, row)
				if v, ok := orthogonalize(ortho, row); ok {
					basis = append(basis, mom)
					ortho = append(ortho, v)
				}
			}
		}
	}
	if len(basis) < m.Q {
		return nil, fmt.Errorf("collision: raw-moment basis for %s incomplete (%d of %d)", m.Name, len(basis), m.Q)
	}
	return basis, nil
}

// evalMoment fills row[i] with the monomial evaluated at velocity i.
func evalMoment(m *lattice.Model, mom Moment, row []float64) {
	for i := 0; i < m.Q; i++ {
		row[i] = intPow(m.Cx[i], mom.A) * intPow(m.Cy[i], mom.B) * intPow(m.Cz[i], mom.C)
	}
}

func intPow(c, e int) float64 {
	v := 1.0
	for ; e > 0; e-- {
		v *= float64(c)
	}
	return v
}

// orthogonalize projects row off the orthonormal set and returns the
// normalized remainder, or ok=false when row is (numerically) dependent.
func orthogonalize(ortho [][]float64, row []float64) ([]float64, bool) {
	v := append([]float64(nil), row...)
	var norm0 float64
	for _, x := range v {
		norm0 += x * x
	}
	if norm0 == 0 {
		return nil, false
	}
	// Two passes of modified Gram-Schmidt for numerical robustness.
	for pass := 0; pass < 2; pass++ {
		for _, u := range ortho {
			var dot float64
			for i := range v {
				dot += u[i] * v[i]
			}
			for i := range v {
				v[i] -= dot * u[i]
			}
		}
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm < 1e-16*norm0 {
		return nil, false
	}
	inv := 1 / math.Sqrt(norm)
	for i := range v {
		v[i] *= inv
	}
	return v, true
}

// mrtOp applies f ← f − C(f − f_eq) with C = M⁻¹SM precomputed.
type mrtOp struct {
	m     *lattice.Model
	basis []Moment
	rates []float64 // diagonal of S, one per basis moment
	c     []float64 // Q×Q collision matrix, row-major
	tau   float64
	label string
	feq   []float64
	fneq  []float64
	// RelaxRows scratch: Q non-equilibrium rows, grown on demand.
	neqStore []float64
	neqRows  [][]float64
}

// ghostRateFor resolves the relaxation rate of a ghost moment order.
// Explicit rates index by order (entry 0 = order 3, last entry extends).
// The default (empty rates) pairs the sectors through the magic relation:
// odd-order ghost moments at the ω⁻ implied by Λ = ¼ against the shear
// rate, even-order ghost moments at ω⁺ = 1/τ, so every odd/even rate pair
// satisfies (1/ω_even−½)(1/ω_odd−½) = ¼. Both halves matter empirically
// (τ = 0.51 Re=1000 cavity): relaxing the odd ghosts near rate 1 drives
// the bounce-back Λ toward 0 and smears thin boundary layers, while an
// even-ghost rate that breaks the Λ = ¼ pairing against the odd rate (in
// either direction) is unstable — e.g. odd ω⁻ with even rate 1 diverges,
// as does odd rate 1 with even ω⁺; odd ω⁻ with even ω⁺ and the uniform
// rate-1 pair are both stable.
func ghostRateFor(order int, rates []float64, tau float64) float64 {
	if len(rates) == 0 {
		if order%2 == 1 {
			return 1 / (0.5 + DefaultMagic/(tau-0.5))
		}
		return 1 / tau
	}
	i := order - 3
	if i >= len(rates) {
		i = len(rates) - 1
	}
	return rates[i]
}

// NewMRT returns the raw-moment MRT operator for a lattice. Hydrodynamic
// moments (order ≤ 2) relax at 1/τ; ghost moments at the per-order rates
// (empty = the boundary-aware defaults of ghostRateFor).
func NewMRT(m *lattice.Model, tau float64, ghostRates []float64) (Operator, error) {
	basis, err := RawMomentBasis(m)
	if err != nil {
		return nil, err
	}
	omega := 1 / tau
	q := m.Q
	rates := make([]float64, q)
	// M with row-normalization: scaling rows by a diagonal D leaves
	// C = (DM)⁻¹ S (DM) = M⁻¹SM unchanged (S and D are both diagonal)
	// while keeping the Gaussian elimination well conditioned.
	mm := make([]float64, q*q)
	row := make([]float64, q)
	for k, mom := range basis {
		if mom.Order <= 2 {
			rates[k] = omega
		} else {
			rates[k] = ghostRateFor(mom.Order, ghostRates, tau)
		}
		evalMoment(m, mom, row)
		var norm float64
		for _, x := range row {
			norm += x * x
		}
		inv := 1 / math.Sqrt(norm)
		for i := 0; i < q; i++ {
			mm[k*q+i] = row[i] * inv
		}
	}
	// C = M⁻¹ (S M): solve M·C = S·M column-block-wise.
	sm := make([]float64, q*q)
	for k := 0; k < q; k++ {
		for i := 0; i < q; i++ {
			sm[k*q+i] = rates[k] * mm[k*q+i]
		}
	}
	c, err := solveMatrix(mm, sm, q)
	if err != nil {
		return nil, fmt.Errorf("collision: %s moment matrix: %v", m.Name, err)
	}
	o := &mrtOp{
		m: m, basis: basis, rates: rates, c: c, tau: tau,
		label: Spec{Kind: MRT, GhostRates: ghostRates}.String(),
		feq:   make([]float64, q), fneq: make([]float64, q),
	}
	return o, nil
}

// solveMatrix solves A·X = B for X (all q×q row-major) by Gaussian
// elimination with partial pivoting; A and B are clobbered.
func solveMatrix(a, b []float64, q int) ([]float64, error) {
	for col := 0; col < q; col++ {
		piv, pval := col, math.Abs(a[col*q+col])
		for r := col + 1; r < q; r++ {
			if v := math.Abs(a[r*q+col]); v > pval {
				piv, pval = r, v
			}
		}
		if pval < 1e-12 {
			return nil, fmt.Errorf("singular at column %d (pivot %g)", col, pval)
		}
		if piv != col {
			for j := 0; j < q; j++ {
				a[col*q+j], a[piv*q+j] = a[piv*q+j], a[col*q+j]
				b[col*q+j], b[piv*q+j] = b[piv*q+j], b[col*q+j]
			}
		}
		inv := 1 / a[col*q+col]
		for r := 0; r < q; r++ {
			if r == col {
				continue
			}
			factor := a[r*q+col] * inv
			if factor == 0 {
				continue
			}
			for j := col; j < q; j++ {
				a[r*q+j] -= factor * a[col*q+j]
			}
			for j := 0; j < q; j++ {
				b[r*q+j] -= factor * b[col*q+j]
			}
		}
	}
	for r := 0; r < q; r++ {
		inv := 1 / a[r*q+r]
		for j := 0; j < q; j++ {
			b[r*q+j] *= inv
		}
	}
	return b, nil
}

func (o *mrtOp) Name() string { return o.label }

// ShiftTau is τ: the order-1 (momentum) moments relax at 1/τ, so MRT
// keeps the BGK forcing shift.
func (o *mrtOp) ShiftTau() float64 { return o.tau }

func (o *mrtOp) Clone() Operator {
	c := *o
	c.feq = make([]float64, o.m.Q)
	c.fneq = make([]float64, o.m.Q)
	c.neqStore, c.neqRows = nil, nil
	return &c
}

// Basis exposes the moment basis (for tables and tests).
func (o *mrtOp) Basis() []Moment { return o.basis }

// CollisionMatrix exposes the precomputed C = M⁻¹SM (row-major).
func (o *mrtOp) CollisionMatrix() []float64 { return o.c }

func (o *mrtOp) Relax(f []float64, rho, ux, uy, uz float64) {
	q := o.m.Q
	o.m.Equilibrium(rho, ux, uy, uz, o.feq)
	for i := 0; i < q; i++ {
		o.fneq[i] = f[i] - o.feq[i]
	}
	for i := 0; i < q; i++ {
		row := o.c[i*q : (i+1)*q]
		var d float64
		for j, n := range o.fneq {
			d += row[j] * n
		}
		f[i] -= d
	}
}

// RelaxRows is the z-run-blocked form of Relax: the non-equilibrium rows
// are formed once, then the Q×Q collision matrix is applied as a blocked
// row multiply — dst_i −= C[i][j]·neq_j over whole runs — which trades
// the per-cell gather/matvec/scatter for long contiguous multiply-add
// loops. The summation order per cell differs from Relax's (moments
// accumulate across rows instead of along one), a reassociation at the
// usual 1e-15 level.
func (o *mrtOp) RelaxRows(dst, src, feq [][]float64, n int) {
	q := o.m.Q
	if len(o.neqStore) < q*n {
		o.neqStore = make([]float64, q*n)
		o.neqRows = make([][]float64, q)
	}
	for v := 0; v < q; v++ {
		o.neqRows[v] = o.neqStore[v*n : (v+1)*n]
	}
	for v := 0; v < q; v++ {
		sv, ev, nv := src[v][:n], feq[v][:n], o.neqRows[v]
		for z := 0; z < n; z++ {
			nv[z] = sv[z] - ev[z]
		}
	}
	for i := 0; i < q; i++ {
		row := o.c[i*q : (i+1)*q]
		di, si := dst[i][:n], src[i][:n]
		copy(di, si) // alias-safe: neq rows are private copies
		for j := 0; j < q; j++ {
			cij := row[j]
			if cij == 0 {
				continue
			}
			nj := o.neqRows[j]
			for z := 0; z < n; z++ {
				di[z] -= cij * nj[z]
			}
		}
	}
}
