// Package collision provides the pluggable collision-operator subsystem:
// the per-cell relaxation applied after streaming. The paper's kernels are
// single-relaxation-time BGK, whose stability collapses as τ → 1/2 and
// caps the reachable Reynolds number well below the regimes the "beyond
// Navier-Stokes" framing targets. Splitting the relaxation rates between
// hydrodynamic and ghost moments removes that instability without changing
// the recovered Navier-Stokes viscosity (Reider & Sterling's accuracy
// analysis of discrete-velocity BGK models; the two-relaxation-time
// regularized LBM of Yu et al.). Three operators are provided:
//
//   - BGK: f ← f − ω(f − f_eq), ω = 1/τ — the paper's operator. The core
//     solver never routes BGK through this package on its hot paths (the
//     specialized paired/blocked/fused kernels stay bit-for-bit identical);
//     the operator exists for the generic kernel and cross-checks.
//
//   - TRT (two-relaxation-time, Ginzburg): the populations of each
//     opposite-velocity pair are split into even and odd parts, relaxed at
//     ω⁺ = 1/τ (sets the shear viscosity, exactly as BGK) and ω⁻ (free).
//     ω⁻ is chosen through the "magic" parameter Λ = (τ⁺−½)(τ⁻−½); Λ = ¼
//     gives the most robust damping of the staggered ghost modes and keeps
//     halfway bounce-back walls parallel-wall-exact.
//
//   - MRT (multiple-relaxation-time, d'Humières): populations are mapped to
//     a raw-moment basis (monomials c_x^a c_y^b c_z^c selected greedily in
//     graded order until the moment matrix has full rank, see mrt.go) and
//     relaxed with a diagonal rate vector: conserved and second-order
//     hydrodynamic moments at ω = 1/τ, ghost moments (order ≥ 3) at
//     independently chosen per-order rates. The defaults pair the odd and
//     even ghost sectors through the Λ = ¼ magic relation (see
//     ghostRateFor), which is both wall-accurate and the empirically
//     stable region; explicit GhostRates unlock the full diagonal.
//
// Operators are per-cell: Relax mutates one cell's post-streaming
// populations in place given its density and (forcing-shifted) velocity.
// An Operator is not safe for concurrent use — each worker goroutine must
// Clone its own (clones share the read-only tables, never scratch).
package collision

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/lattice"
)

// DefaultMagic is the TRT magic parameter Λ used when a Spec leaves Magic
// zero: Λ = ¼ damps the staggered ghost modes fastest and is the standard
// robust choice for bounce-back-bounded flows.
const DefaultMagic = 0.25

// Operator applies the collision relaxation to one cell.
type Operator interface {
	// Name identifies the operator (e.g. "trt(magic=0.25)").
	Name() string
	// Relax replaces the post-streaming populations f (length Q) of one
	// cell with the post-collision populations, given the cell's density
	// and equilibrium velocity (already including any forcing shift).
	Relax(f []float64, rho, ux, uy, uz float64)
	// ShiftTau returns the relaxation time the operator applies to the
	// momentum moments — the factor the velocity-shift body forcing must
	// use (equilibrium evaluated at u + ShiftTau·a injects exactly ρ·a of
	// momentum per step). τ for BGK and MRT (momentum relaxes at 1/τ);
	// τ⁻ for TRT (momentum rides in the odd sector).
	ShiftTau() float64
	// Clone returns an operator sharing the receiver's read-only tables
	// but owning private scratch, for use from another goroutine.
	Clone() Operator
}

// RowRelaxer is an optional fast-path interface: an Operator that can
// relax whole SoA z-runs at once. dst[v], src[v] and feq[v] are the
// velocity-v rows of the run (first n entries valid): src the
// post-streaming populations, feq their equilibria (computed by the
// caller, which has them as a by-product of the moment pass), dst the
// post-collision output. dst and src may alias row-for-row. Like Relax,
// RelaxRows is not safe for concurrent use — Clone per goroutine.
//
// TRT and MRT implement it; the solver's z-run-blocked operator kernel
// dispatches on it and falls back to per-cell Relax otherwise. BGK
// deliberately does not: its production path is the specialized legacy
// kernels, and keeping the forced-operator regression route per-cell
// preserves the 0-ULP guard against the naive kernel.
type RowRelaxer interface {
	RelaxRows(dst, src, feq [][]float64, n int)
}

// Kind enumerates the provided operator families.
type Kind int

const (
	// BGK is the paper's single-relaxation-time operator (the default).
	BGK Kind = iota
	// TRT is the two-relaxation-time operator.
	TRT
	// MRT is the raw-moment multiple-relaxation-time operator.
	MRT
)

var kindNames = map[Kind]string{BGK: "bgk", TRT: "trt", MRT: "mrt"}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves an operator name as accepted by the CLIs.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "bgk", "srt":
		return BGK, nil
	case "trt":
		return TRT, nil
	case "mrt":
		return MRT, nil
	}
	return 0, fmt.Errorf("collision: unknown operator %q (want bgk, trt or mrt)", s)
}

// Spec selects and parameterizes a collision operator. The zero value is
// plain BGK, which the solver maps to its specialized legacy kernels.
type Spec struct {
	Kind Kind
	// Magic is the TRT magic parameter Λ = (τ⁺−½)(τ⁻−½); zero selects
	// DefaultMagic. Ignored by BGK and MRT.
	Magic float64
	// GhostRates overrides the MRT ghost-moment relaxation rates by moment
	// order: GhostRates[0] applies to the order-3 moments, GhostRates[1]
	// to order 4, and so on; moments beyond the list reuse the last entry.
	// Empty selects the boundary-aware defaults: odd orders at the Λ = ¼
	// TRT ω⁻ (accurate bounce-back wall placement), even orders at the
	// magic-paired ω⁺ = 1/τ (see mrt.go: unpaired ghost rates are
	// unstable at small τ). Each rate must lie in (0, 2). Ignored by BGK
	// and TRT.
	GhostRates []float64
}

// IsBGK reports whether the spec selects the plain BGK operator, i.e. the
// solver's specialized legacy kernels.
func (s Spec) IsBGK() bool { return s.Kind == BGK }

// String renders the spec for run headers and tables.
func (s Spec) String() string {
	switch s.Kind {
	case TRT:
		return fmt.Sprintf("trt(magic=%g)", s.magic())
	case MRT:
		if len(s.GhostRates) == 0 {
			return "mrt(ghost=auto)"
		}
		parts := make([]string, len(s.GhostRates))
		for i, r := range s.GhostRates {
			parts[i] = strconv.FormatFloat(r, 'g', -1, 64)
		}
		return fmt.Sprintf("mrt(ghost=%s)", strings.Join(parts, ","))
	default:
		return "bgk"
	}
}

func (s Spec) magic() float64 {
	if s.Magic == 0 {
		return DefaultMagic
	}
	return s.Magic
}

// Validate checks the spec's parameters without building an operator.
func (s Spec) Validate() error {
	switch s.Kind {
	case BGK, TRT, MRT:
	default:
		return fmt.Errorf("collision: unknown kind %v", s.Kind)
	}
	if s.Magic < 0 {
		return fmt.Errorf("collision: magic parameter %g < 0", s.Magic)
	}
	if s.Kind != TRT && s.Magic != 0 {
		return fmt.Errorf("collision: magic parameter is TRT-only (spec is %s)", s.Kind)
	}
	if s.Kind != MRT && len(s.GhostRates) != 0 {
		return fmt.Errorf("collision: ghost rates are MRT-only (spec is %s)", s.Kind)
	}
	for _, r := range s.GhostRates {
		if r <= 0 || r >= 2 {
			return fmt.Errorf("collision: ghost rate %g outside the stable interval (0, 2)", r)
		}
	}
	return nil
}

// New builds the operator for a lattice and relaxation time. τ must exceed
// ½ (the shear rate ω = 1/τ sets ν = c_s²(τ−½) for every kind).
func (s Spec) New(m *lattice.Model, tau float64) (Operator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if tau <= 0.5 {
		return nil, fmt.Errorf("collision: tau %g <= 0.5", tau)
	}
	switch s.Kind {
	case TRT:
		return NewTRT(m, tau, s.magic()), nil
	case MRT:
		return NewMRT(m, tau, s.GhostRates)
	default:
		return NewBGK(m, tau), nil
	}
}

// ParseRates parses a comma-separated relaxation-rate list (the CLI
// -mrt-rates argument); an empty string yields nil (the default rates).
func ParseRates(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("collision: bad rate %q: %v", p, err)
		}
		out[i] = v
	}
	return out, nil
}

// bgkOp is the reference single-relaxation-time operator.
type bgkOp struct {
	m   *lattice.Model
	tau float64
	feq []float64
}

// NewBGK returns the BGK operator: f ← f − (f − f_eq)/τ. The arithmetic
// matches the solver's naive kernel bit-for-bit (division by τ, equilibria
// via the model's closed form), which is what lets the operator-path
// regression guard assert 0-ULP equality against the legacy kernels.
func NewBGK(m *lattice.Model, tau float64) Operator {
	return &bgkOp{m: m, tau: tau, feq: make([]float64, m.Q)}
}

func (o *bgkOp) Name() string      { return "bgk" }
func (o *bgkOp) ShiftTau() float64 { return o.tau }

func (o *bgkOp) Clone() Operator {
	c := *o
	c.feq = make([]float64, o.m.Q)
	return &c
}

func (o *bgkOp) Relax(f []float64, rho, ux, uy, uz float64) {
	o.m.Equilibrium(rho, ux, uy, uz, o.feq)
	for i := range f {
		f[i] -= (f[i] - o.feq[i]) / o.tau
	}
}

// trtOp is the two-relaxation-time operator.
type trtOp struct {
	m              *lattice.Model
	omegaP, omegaM float64
	magic          float64
	pairs          [][2]int // i < j = Opp[i]
	rest           []int    // self-opposite velocities
	feq            []float64
}

// NewTRT returns the two-relaxation-time operator: even pair combinations
// relax at ω⁺ = 1/τ (which alone sets the shear viscosity), odd ones at
// the rate implied by the magic parameter Λ = (τ⁺−½)(τ⁻−½).
func NewTRT(m *lattice.Model, tau float64, magic float64) Operator {
	if magic <= 0 {
		magic = DefaultMagic
	}
	tauM := 0.5 + magic/(tau-0.5)
	o := &trtOp{
		m: m, omegaP: 1 / tau, omegaM: 1 / tauM, magic: magic,
		feq: make([]float64, m.Q),
	}
	for i := 0; i < m.Q; i++ {
		switch j := m.Opp[i]; {
		case i < j:
			o.pairs = append(o.pairs, [2]int{i, j})
		case i == j:
			o.rest = append(o.rest, i)
		}
	}
	return o
}

// OmegaMinus exposes the odd-sector rate (for tables and tests).
func (o *trtOp) OmegaMinus() float64 { return o.omegaM }

func (o *trtOp) Name() string { return fmt.Sprintf("trt(magic=%g)", o.magic) }

// ShiftTau is τ⁻: TRT relaxes the odd (momentum-carrying) sector at ω⁻,
// so the forcing shift must scale with 1/ω⁻ to inject ρ·a per step.
func (o *trtOp) ShiftTau() float64 { return 1 / o.omegaM }

func (o *trtOp) Clone() Operator {
	c := *o
	c.feq = make([]float64, o.m.Q)
	return &c
}

func (o *trtOp) Relax(f []float64, rho, ux, uy, uz float64) {
	o.m.Equilibrium(rho, ux, uy, uz, o.feq)
	for _, p := range o.pairs {
		i, j := p[0], p[1]
		neqP := 0.5 * ((f[i] + f[j]) - (o.feq[i] + o.feq[j]))
		neqM := 0.5 * ((f[i] - f[j]) - (o.feq[i] - o.feq[j]))
		dP, dM := o.omegaP*neqP, o.omegaM*neqM
		f[i] -= dP + dM
		f[j] -= dP - dM
	}
	for _, i := range o.rest {
		// Self-opposite velocities are purely even.
		f[i] -= o.omegaP * (f[i] - o.feq[i])
	}
}

// RelaxRows is the z-run-blocked form of Relax: the same even/odd pair
// arithmetic applied to whole SoA rows, which turns the per-cell gather,
// equilibrium method call and scatter into straight-line loops over
// contiguous slices (the shape of the solver's paired BGK kernel).
func (o *trtOp) RelaxRows(dst, src, feq [][]float64, n int) {
	for _, p := range o.pairs {
		i, j := p[0], p[1]
		si, sj := src[i][:n], src[j][:n]
		ei, ej := feq[i][:n], feq[j][:n]
		di, dj := dst[i][:n], dst[j][:n]
		for z := 0; z < n; z++ {
			neqP := 0.5 * ((si[z] + sj[z]) - (ei[z] + ej[z]))
			neqM := 0.5 * ((si[z] - sj[z]) - (ei[z] - ej[z]))
			dP, dM := o.omegaP*neqP, o.omegaM*neqM
			vi, vj := si[z], sj[z]
			di[z] = vi - (dP + dM)
			dj[z] = vj - (dP - dM)
		}
	}
	for _, i := range o.rest {
		si, ei, di := src[i][:n], feq[i][:n], dst[i][:n]
		for z := 0; z < n; z++ {
			di[z] = si[z] - o.omegaP*(si[z]-ei[z])
		}
	}
}
