// Package tune closes ROADMAP direction 3's calibration loop: it fits
// perfsim's machine coefficients to observed per-phase run times
// (observe → fit), then searches the solver's configuration space with
// the fitted model and confirms the best candidates with short real
// measurements (predict → optimize). The fit half lives in fit.go, the
// auto-tuner in search.go; this file defines the observation sweep both
// halves share.
//
// Everything downstream of the real runs is deterministic: the fit is a
// pure function of the collected sweep, and the tuner is a pure function
// of the fitted coefficients plus an injectable measurement function, so
// both are testable byte-for-byte.
package tune

import (
	"fmt"
	"time"

	"repro/internal/collision"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/perfsim"
)

// The sweep's shared wire model: real runs install a fabric DelayFunc of
// Latency + bytes/LinkBW, and the simulated jobs carry the same numbers,
// so the fit recovers known constants on the wire dimensions — a built-in
// validity check — while the compute dimensions calibrate to the host.
const (
	WireLatency = 200e-6 // s per message
	WireLinkBW  = 100e6  // bytes/s per link
)

// Point is one sweep configuration, run identically in both worlds (the
// real instrumented solver and perfsim).
type Point struct {
	Label   string            `json:"label"`
	Opt     core.OptLevel     `json:"opt"`
	Ranks   int               `json:"ranks"`
	Decomp  [3]int            `json:"decomp"`
	Depth   int               `json:"depth"`
	Threads int               `json:"threads"`
	Kernel  string            `json:"kernel"` // "bgk", "trt", "mrt"
	Fused   bool              `json:"fused,omitempty"`
	Stream  core.StreamScheme `json:"stream,omitempty"`
	// Holdout points are excluded from the coefficient search objective;
	// their interior-time ratio against the fitted baseline yields the
	// per-kernel cell costs closed-form (see fitKernelCosts).
	Holdout bool `json:"holdout,omitempty"`
}

// Points returns the calibration sweep: the core points excite each
// coefficient (protocol rungs for the wire/software terms, a deep halo
// for the bytes-per-message ratio, a pencil for multi-axis exchange, a
// thread ladder for the saturation ramp and the Amdahl term), and the
// holdout points carry one non-baseline kernel each for the closed-form
// cost ratios.
func Points() []Point {
	return []Point{
		{Label: "slab GC blocking d1 r2", Opt: core.OptGC, Ranks: 2, Decomp: [3]int{2, 1, 1}, Depth: 1, Threads: 1, Kernel: "bgk"},
		{Label: "slab GC blocking d2 r2", Opt: core.OptGC, Ranks: 2, Decomp: [3]int{2, 1, 1}, Depth: 2, Threads: 1, Kernel: "bgk"},
		{Label: "slab NB-C d1 r2", Opt: core.OptNBC, Ranks: 2, Decomp: [3]int{2, 1, 1}, Depth: 1, Threads: 1, Kernel: "bgk"},
		{Label: "slab GC-C d2 r2", Opt: core.OptGCC, Ranks: 2, Decomp: [3]int{2, 1, 1}, Depth: 2, Threads: 1, Kernel: "bgk"},
		{Label: "pencil GC-C d1 r4", Opt: core.OptGCC, Ranks: 4, Decomp: [3]int{2, 2, 1}, Depth: 1, Threads: 1, Kernel: "bgk"},
		{Label: "slab SIMD r1 t1", Opt: core.OptSIMD, Ranks: 1, Decomp: [3]int{1, 1, 1}, Depth: 1, Threads: 1, Kernel: "bgk"},
		{Label: "slab SIMD r1 t2", Opt: core.OptSIMD, Ranks: 1, Decomp: [3]int{1, 1, 1}, Depth: 1, Threads: 2, Kernel: "bgk"},
		{Label: "slab SIMD r1 t4", Opt: core.OptSIMD, Ranks: 1, Decomp: [3]int{1, 1, 1}, Depth: 1, Threads: 4, Kernel: "bgk"},
		{Label: "trt GC-C d1 r2", Opt: core.OptGCC, Ranks: 2, Decomp: [3]int{2, 1, 1}, Depth: 1, Threads: 1, Kernel: "trt", Holdout: true},
		{Label: "mrt GC-C d1 r2", Opt: core.OptGCC, Ranks: 2, Decomp: [3]int{2, 1, 1}, Depth: 1, Threads: 1, Kernel: "mrt", Holdout: true},
		{Label: "fused GC-C d1 r2", Opt: core.OptGCC, Ranks: 2, Decomp: [3]int{2, 1, 1}, Depth: 1, Threads: 1, Kernel: "bgk", Fused: true, Holdout: true},
		{Label: "aa GC-C d2 r2", Opt: core.OptGCC, Ranks: 2, Decomp: [3]int{2, 1, 1}, Depth: 2, Threads: 1, Kernel: "bgk", Stream: core.StreamAA, Holdout: true},
	}
}

// Observation pairs one sweep point with its observed per-phase seconds
// (mean across ranks) and wall time.
type Observation struct {
	Point  Point            `json:"point"`
	Phases obs.PhaseSeconds `json:"phases"`
	Total  float64          `json:"total"`
}

// Sweep is a collected observation set plus the metadata the fit needs to
// re-price every point in perfsim.
type Sweep struct {
	Model   string          `json:"model"`
	Dims    [3]int          `json:"dims"`
	Steps   int             `json:"steps"`
	Machine obs.MachineInfo `json:"machine"`
	Obs     []Observation   `json:"observations"`
}

// sweepDims is the sweep's domain (D3Q39 cells carry ~2× the data, so its
// box is smaller — same scaling rule as the Real* experiments).
func sweepDims(m *lattice.Model) grid.Dims {
	if m.Q == 39 {
		return grid.Dims{NX: 48, NY: 24, NZ: 24}
	}
	return grid.Dims{NX: 64, NY: 32, NZ: 32}
}

// collisionFor maps a point's kernel tag to its operator spec.
func collisionFor(kernel string) (collision.Spec, error) {
	kind, err := collision.ParseKind(kernel)
	if err != nil {
		return collision.Spec{}, err
	}
	return collision.Spec{Kind: kind}, nil
}

// Collect runs the calibration sweep with the real instrumented solver:
// every point executes with the shared wire model injected into the
// fabric, and its per-rank phase vectors are averaged into one
// observation.
func Collect(modelName string, steps int) (*Sweep, error) {
	m, err := lattice.ByName(modelName)
	if err != nil {
		return nil, err
	}
	dims := sweepDims(m)
	delay := func(src, dst, bytes int) time.Duration {
		return time.Duration((WireLatency + float64(bytes)/WireLinkBW) * float64(time.Second))
	}
	sw := &Sweep{
		Model:   m.Name,
		Dims:    [3]int{dims.NX, dims.NY, dims.NZ},
		Steps:   steps,
		Machine: obs.HostInfo(),
	}
	for _, pt := range Points() {
		col, err := collisionFor(pt.Kernel)
		if err != nil {
			return nil, err
		}
		res, err := core.Run(core.Config{
			Model: m, N: dims, Tau: 0.8, Steps: steps,
			Opt: pt.Opt, Ranks: pt.Ranks, Decomp: pt.Decomp, Threads: pt.Threads,
			GhostDepth: pt.Depth,
			Collision:  col,
			Fused:      pt.Fused,
			Stream:     pt.Stream,
			Observe:    true,
			Fabric:     comm.NewFabric(pt.Ranks).WithDelay(delay),
		})
		if err != nil {
			return nil, fmt.Errorf("tune: sweep %s: %w", pt.Label, err)
		}
		sw.Obs = append(sw.Obs, Observation{
			Point:  pt,
			Phases: meanPhases(res.Observations),
			Total:  res.WallTime.Seconds(),
		})
	}
	return sw, nil
}

// meanPhases averages the per-rank observed phase vectors.
func meanPhases(ranks []obs.RankObservation) obs.PhaseSeconds {
	var mean obs.PhaseSeconds
	if len(ranks) == 0 {
		return mean
	}
	for i := range ranks {
		v := ranks[i].Vector()
		for p := range mean {
			mean[p] += v[p]
		}
	}
	for p := range mean {
		mean[p] /= float64(len(ranks))
	}
	return mean
}

// fitMachine is the hardware envelope the fitted-coefficient jobs run
// against: core counts generous enough to never reject a sweep point, a
// flop roofline high enough to never bind (the kernels are
// bandwidth-limited, paper §III.C), and the shared wire constants for the
// anchored fallback path.
func fitMachine() machine.Machine {
	return machine.Machine{
		Name:            "local",
		MemBWBytes:      8e9,
		PeakFlops:       1e15,
		TorusLinkBytes:  WireLinkBW,
		TorusLinks:      12,
		LinkLatency:     WireLatency,
		CoresPerNode:    256,
		ThreadsPerCore:  1,
		MemPerNodeBytes: 1 << 40,
	}
}

// PricePoint simulates one sweep point under a coefficient set. The
// sweep's one-task-per-node convention matches the real runs: every rank
// pair crosses the injected wire.
func PricePoint(sw *Sweep, pt Point, c *perfsim.Coeffs) (obs.PhaseSeconds, float64, error) {
	j, err := pointJob(sw, pt, fitMachine())
	if err != nil {
		return obs.PhaseSeconds{}, 0, err
	}
	j.Coeffs = c
	if c != nil {
		j.CellCost = c.CellCost(pt.Kernel, pt.Fused, pt.Stream)
	}
	return runPointJob(j, pt)
}

// PriceAnchored simulates a sweep point through the pre-existing
// named-calibration path with the envelope's memory bandwidth replaced by
// the anchored value — the `-exp predict` fallback model.
func PriceAnchored(sw *Sweep, pt Point, memBW float64) (obs.PhaseSeconds, float64, error) {
	mch := fitMachine()
	mch.MemBWBytes = memBW
	j, err := pointJob(sw, pt, mch)
	if err != nil {
		return obs.PhaseSeconds{}, 0, err
	}
	return runPointJob(j, pt)
}

func pointJob(sw *Sweep, pt Point, mch machine.Machine) (perfsim.Job, error) {
	m, err := lattice.ByName(sw.Model)
	if err != nil {
		return perfsim.Job{}, err
	}
	return perfsim.Job{
		Machine: mch,
		Spec:    machine.SpecForQ(m.Q),
		K:       m.MaxSpeed,
		Nodes:   pt.Ranks, TasksPerNode: 1, ThreadsPerTask: pt.Threads,
		NX: sw.Dims[0], NY: sw.Dims[1], NZ: sw.Dims[2],
		Decomp: pt.Decomp,
		Steps:  sw.Steps,
		Depth:  pt.Depth,
		Opt:    pt.Opt,
		Fused:  pt.Fused,
		Stream: pt.Stream,
		Seed:   1,
	}, nil
}

func runPointJob(j perfsim.Job, pt Point) (obs.PhaseSeconds, float64, error) {
	res, err := perfsim.Run(j)
	if err != nil {
		return obs.PhaseSeconds{}, 0, fmt.Errorf("tune: price %s: %w", pt.Label, err)
	}
	var mean obs.PhaseSeconds
	for _, ph := range res.RankPhases {
		for p := range mean {
			mean[p] += ph[p]
		}
	}
	for p := range mean {
		mean[p] /= float64(len(res.RankPhases))
	}
	return mean, res.Seconds, nil
}
