package tune

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/perfsim"
)

// TunedSchema identifies the tuned-config JSON shape.
const TunedSchema = "lbm-tuned/v1"

// Scenario is the problem a tuned config is valid for: the physics and
// geometry stay fixed, the execution knobs are searched.
type Scenario struct {
	Name     string
	Model    *lattice.Model
	N        grid.Dims
	Tau      float64
	Boundary *core.BoundarySpec
	Solid    *geom.Mask
	Accel    [3]float64
	Init     core.InitFunc
}

// Candidate is one point of the execution-config space, in the runnable
// JSON vocabulary of the CLIs (string-valued enums, per-axis depths).
type Candidate struct {
	Ranks   int    `json:"ranks"`
	Decomp  [3]int `json:"decomp"`
	Threads int    `json:"threads"`
	Opt     string `json:"opt"`
	Depth   [3]int `json:"depth"`
	Stream  string `json:"stream"`
	Kernel  string `json:"kernel"`
	Fused   bool   `json:"fused,omitempty"`
	Balance string `json:"balance,omitempty"`
	Sparse  bool   `json:"sparse,omitempty"`
}

// key is the candidate's deterministic sort tiebreaker.
func (c Candidate) key() string {
	b, _ := json.Marshal(c)
	return string(b)
}

// Apply overlays the candidate's execution knobs onto an existing solver
// config, leaving the physics (model, domain, tau, boundaries, geometry)
// untouched — how `lbmrun -auto` adopts a tuned choice.
func (c Candidate) Apply(cfg *core.Config) error {
	opt, err := core.ParseOptLevel(c.Opt)
	if err != nil {
		return err
	}
	stream, err := core.ParseStreamScheme(c.Stream)
	if err != nil {
		return err
	}
	col, err := collisionFor(c.Kernel)
	if err != nil {
		return err
	}
	bal, err := core.ParseBalance(c.Balance)
	if err != nil {
		return err
	}
	cfg.Opt, cfg.Ranks, cfg.Decomp, cfg.Threads = opt, c.Ranks, c.Decomp, c.Threads
	cfg.Collision, cfg.Stream, cfg.Fused = col, stream, c.Fused
	cfg.Balance, cfg.Sparse = bal, c.Sparse
	if c.Depth[0] == c.Depth[1] && c.Depth[1] == c.Depth[2] {
		cfg.GhostDepth, cfg.GhostDepthAxes = c.Depth[0], [3]int{}
	} else {
		cfg.GhostDepth, cfg.GhostDepthAxes = 0, c.Depth
	}
	return nil
}

// Config materializes the candidate into a runnable solver config for the
// scenario.
func (c Candidate) Config(s *Scenario, steps int) (core.Config, error) {
	cfg := core.Config{
		Model: s.Model, N: s.N, Tau: s.Tau, Steps: steps,
		Boundary: s.Boundary, Solid: s.Solid,
		Accel: s.Accel, Init: s.Init,
	}
	if err := c.Apply(&cfg); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// DefaultCandidate is the stock configuration a plain `lbmrun` executes:
// one rank, one thread, the full single-rank optimization ladder, unit
// ghost depth, two-grid streaming, dense volume decomposition. The tuned
// config's win is measured against it.
func DefaultCandidate() Candidate {
	return Candidate{
		Ranks: 1, Decomp: [3]int{1, 1, 1}, Threads: 1,
		Opt: core.OptSIMD.String(), Depth: [3]int{1, 1, 1},
		Stream: core.StreamTwoGrid.String(), Kernel: "bgk",
	}
}

// Space bounds the candidate enumeration.
type Space struct {
	// MaxWorkers caps ranks × threads — the machine's usable parallelism.
	MaxWorkers int `json:"max_workers"`
	// Ranks and Threads are the per-dimension value sets; pairs whose
	// product exceeds MaxWorkers are skipped.
	Ranks   []int `json:"ranks"`
	Threads []int `json:"threads"`
	// Depths are the ghost-depth values tried (uniformly and per-axis on
	// decomposed axes).
	Depths []int `json:"depths"`
	// Opts, Streams, Kernels and Fused span the protocol/kernel choices.
	Opts    []string `json:"opts"`
	Streams []string `json:"streams"`
	Kernels []string `json:"kernels"`
	Fused   []bool   `json:"fused"`
}

// DefaultSpace returns the standard search space for a machine with the
// given worker budget: power-of-two rank and thread counts, ghost depths
// 1-2, the overlap-capable protocol rungs, both storage schemes, both
// fused settings, and the scenario's kernel only (swapping collision
// operators changes the physics; callers can widen Kernels explicitly).
func DefaultSpace(maxWorkers int) Space {
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	var counts []int
	for v := 1; v <= maxWorkers && v <= 8; v *= 2 {
		counts = append(counts, v)
	}
	return Space{
		MaxWorkers: maxWorkers,
		Ranks:      counts,
		Threads:    counts,
		Depths:     []int{1, 2},
		Opts:       []string{core.OptNBC.String(), core.OptGCC.String(), core.OptSIMD.String()},
		Streams:    []string{core.StreamTwoGrid.String(), core.StreamAA.String()},
		Kernels:    []string{"bgk"},
		Fused:      []bool{false, true},
	}
}

// shapes returns every rank-grid orientation of every factorization of
// ranks into up to three axes — the tuner's "decomposition shape × axis
// order" dimension (a 4×1×1 slab, a 1×4×1 slab and a 2×2×1 pencil are
// distinct candidates with distinct surfaces).
func shapes(ranks int) [][3]int {
	var out [][3]int
	for px := 1; px <= ranks; px++ {
		if ranks%px != 0 {
			continue
		}
		rest := ranks / px
		for py := 1; py <= rest; py++ {
			if rest%py != 0 {
				continue
			}
			out = append(out, [3]int{px, py, rest / py})
		}
	}
	return out
}

// depthTriples returns the ghost-depth assignments tried for a shape:
// every uniform depth, plus per-axis combinations that spend depth only
// on decomposed axes (depth on an undecomposed axis buys nothing and
// costs ghost updates).
func depthTriples(shape [3]int, depths []int) [][3]int {
	var out [][3]int
	seen := map[[3]int]bool{}
	add := func(t [3]int) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, d := range depths {
		add([3]int{d, d, d})
	}
	// Per-axis: each decomposed axis independently picks from depths,
	// undecomposed axes stay at 1.
	var rec func(axis int, t [3]int)
	rec = func(axis int, t [3]int) {
		if axis == 3 {
			add(t)
			return
		}
		if shape[axis] == 1 {
			t[axis] = 1
			rec(axis+1, t)
			return
		}
		for _, d := range depths {
			t[axis] = d
			rec(axis+1, t)
		}
	}
	rec(0, [3]int{})
	return out
}

// Enumerate builds the filtered candidate list for a scenario: the cross
// product of the space's dimensions minus everything the solver would
// reject (constraint filters mirror core.Config validation) or that is
// meaningless for the scenario (fused on bounded/masked domains, sparse
// without a mask).
func Enumerate(s *Scenario, sp Space) []Candidate {
	k := s.Model.MaxSpeed
	masked := s.Solid != nil
	bounded := s.Boundary != nil
	var out []Candidate
	balances := []string{""}
	sparses := []bool{false}
	if masked {
		balances = append(balances, core.BalanceFluid.String())
		sparses = append(sparses, true)
	}
	for _, ranks := range sp.Ranks {
		for _, threads := range sp.Threads {
			if ranks*threads > sp.MaxWorkers {
				continue
			}
			for _, shape := range shapes(ranks) {
				for _, depth := range depthTriples(shape, sp.Depths) {
					// Halo width must fit the smallest block on every
					// decomposed axis (equal-extent estimate; weighted cuts
					// are re-checked at pricing).
					ok := true
					for a, n := range [3]int{s.N.NX, s.N.NY, s.N.NZ} {
						if n/shape[a] < depth[a]*k {
							ok = false
						}
					}
					if !ok {
						continue
					}
					for _, opt := range sp.Opts {
						for _, stream := range sp.Streams {
							aa := stream == core.StreamAA.String()
							if aa && !evenDepths(depth) {
								// AA exchanges at step-pair boundaries only:
								// odd depths round up anyway, so enumerating
								// them just duplicates the even candidate.
								continue
							}
							for _, fused := range sp.Fused {
								if fused && (aa || masked || bounded) {
									continue
								}
								for _, kernel := range sp.Kernels {
									if fused && kernel != "bgk" {
										continue
									}
									for _, bal := range balances {
										for _, sparse := range sparses {
											out = append(out, Candidate{
												Ranks: ranks, Decomp: shape, Threads: threads,
												Opt: opt, Depth: depth, Stream: stream,
												Kernel: kernel, Fused: fused,
												Balance: bal, Sparse: sparse,
											})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

func evenDepths(d [3]int) bool {
	return d[0]%2 == 0 && d[1]%2 == 0 && d[2]%2 == 0
}

// tuneMachine is the envelope candidate pricing runs against; like the
// fit's, it only supplies validation bounds and the flop roofline.
func tuneMachine(maxWorkers int) machine.Machine {
	m := fitMachine()
	if maxWorkers > m.CoresPerNode {
		m.CoresPerNode = maxWorkers
	}
	return m
}

// Price predicts a candidate's wall seconds with the fitted model. Ranks
// are priced as tasks of one node (the local in-process fabric: halo hops
// are shared-memory copies at CopyBW, never the torus), with the masked
// scenario's fluid weights and sparse rank profile threaded through.
func Price(s *Scenario, c Candidate, coeffs *perfsim.Coeffs, steps, maxWorkers int) (float64, error) {
	opt, err := core.ParseOptLevel(c.Opt)
	if err != nil {
		return 0, err
	}
	stream, err := core.ParseStreamScheme(c.Stream)
	if err != nil {
		return 0, err
	}
	maxDepth := 1
	for a := 0; a < 3; a++ {
		if c.Decomp[a] > 1 && c.Depth[a] > maxDepth {
			maxDepth = c.Depth[a]
		}
	}
	bounded := s.Boundary.BoundedAxes()
	j := perfsim.Job{
		Machine: tuneMachine(maxWorkers),
		Spec:    machine.SpecForQ(s.Model.Q),
		K:       s.Model.MaxSpeed,
		Nodes:   1, TasksPerNode: c.Ranks, ThreadsPerTask: c.Threads,
		NX: s.N.NX, NY: s.N.NY, NZ: s.N.NZ,
		Decomp:  c.Decomp,
		Bounded: bounded,
		Steps:   steps,
		Depth:   maxDepth,
		Opt:     opt,
		Fused:   c.Fused,
		Stream:  stream,
		Seed:    1,
		Coeffs:  coeffs,
	}
	if coeffs != nil {
		j.CellCost = coeffs.CellCost(c.Kernel, c.Fused, stream)
	}
	if s.Solid != nil {
		if c.Balance == core.BalanceFluid.String() {
			for a := 0; a < 3; a++ {
				if c.Decomp[a] > 1 {
					j.Weights[a] = s.Solid.PlaneFluids(a)
				}
			}
		}
		if c.Sparse {
			dec, err := decomp.NewCartesianWeighted(
				[3]int{s.N.NX, s.N.NY, s.N.NZ}, c.Decomp, bounded, j.Weights)
			if err != nil {
				return 0, err
			}
			j.RankFluids = perfsim.FluidCounts(dec, s.Solid)
		}
	}
	res, err := perfsim.Run(j)
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}

// Measure runs a candidate for real and reports wall seconds and MFlup/s.
// Injectable so the tuner's confirm stage is deterministic under test.
type Measure func(cfg core.Config) (seconds, mflups float64, err error)

// RealMeasure executes the candidate with the real solver.
func RealMeasure(cfg core.Config) (float64, float64, error) {
	res, err := core.Run(cfg)
	if err != nil {
		return 0, 0, err
	}
	return res.WallTime.Seconds(), res.MFlups, nil
}

// Ranked is one candidate with its predicted (and, for the confirmed
// top-k, measured) performance.
type Ranked struct {
	Candidate        Candidate `json:"candidate"`
	PredictedSeconds float64   `json:"predicted_seconds"`
	MeasuredSeconds  float64   `json:"measured_seconds,omitempty"`
	MeasuredMFlups   float64   `json:"measured_mflups,omitempty"`
}

// Tuned is the runnable output of the auto-tuner: the winning candidate
// plus the provenance needed to trust (and cache-invalidate) it.
type Tuned struct {
	Schema  string          `json:"schema"`
	Key     string          `json:"key"`
	Machine obs.MachineInfo `json:"machine"`

	Scenario   string `json:"scenario"`
	Model      string `json:"model"`
	N          [3]int `json:"n"`
	MaskHash   string `json:"mask_hash,omitempty"`
	MaxWorkers int    `json:"max_workers"`

	Choice           Candidate `json:"choice"`
	PredictedSeconds float64   `json:"predicted_seconds"`
	MeasuredSeconds  float64   `json:"measured_seconds"`
	MeasuredMFlups   float64   `json:"measured_mflups"`
	BaselineSeconds  float64   `json:"baseline_seconds"`
	BaselineMFlups   float64   `json:"baseline_mflups"`

	// Candidates is the filtered space size the prediction ranked; TopK
	// the confirmed short-list in predicted order.
	Candidates int      `json:"candidates"`
	TopK       []Ranked `json:"top_k"`
}

// CacheKey derives the tuned config's identity: machine + scenario +
// size + geometry + worker budget. A config is reused only on an exact
// match, so a changed mask or a different host forces a re-tune.
func CacheKey(s *Scenario, maxWorkers int) string {
	mi := obs.HostInfo()
	mask := ""
	if s.Solid != nil {
		mask = s.Solid.Hash()
	}
	id := fmt.Sprintf("%s|%s|%dx%dx%d|%s|%d|%s/%s/%d",
		s.Name, s.Model.Name, s.N.NX, s.N.NY, s.N.NZ, mask, maxWorkers,
		mi.OS, mi.Arch, mi.CPUs)
	return fmt.Sprintf("%x", sha256.Sum256([]byte(id)))[:16]
}

// Options bounds one tuning run.
type Options struct {
	// Space is the candidate space; zero value takes DefaultSpace(MaxWorkers).
	Space Space
	// MaxWorkers is the worker budget (required if Space is zero).
	MaxWorkers int
	// TopK is how many predicted-best candidates get real confirmation
	// runs (default 3).
	TopK int
	// ConfirmSteps is the length of each confirmation run (default 16).
	ConfirmSteps int
	// Measure confirms candidates; nil means RealMeasure.
	Measure Measure
}

// Tune searches the candidate space for a scenario: price everything
// with the fitted model, confirm the predicted top-k (plus the default
// config, the baseline) with short real measurements, and return the
// measured winner as a runnable tuned config.
func Tune(s *Scenario, coeffs *perfsim.Coeffs, opt Options) (*Tuned, error) {
	if opt.TopK == 0 {
		opt.TopK = 3
	}
	if opt.ConfirmSteps == 0 {
		opt.ConfirmSteps = 16
	}
	if opt.Measure == nil {
		opt.Measure = RealMeasure
	}
	sp := opt.Space
	if sp.MaxWorkers == 0 {
		sp = DefaultSpace(opt.MaxWorkers)
	}
	cands := Enumerate(s, sp)
	if len(cands) == 0 {
		return nil, fmt.Errorf("tune: empty candidate space for scenario %s", s.Name)
	}
	ranked := make([]Ranked, 0, len(cands))
	for _, c := range cands {
		secs, err := Price(s, c, coeffs, opt.ConfirmSteps, sp.MaxWorkers)
		if err != nil {
			// A candidate the pricing model rejects (e.g. fluid-balanced
			// cuts too thin for the halo) is simply not a candidate.
			continue
		}
		ranked = append(ranked, Ranked{Candidate: c, PredictedSeconds: secs})
	}
	if len(ranked) == 0 {
		return nil, fmt.Errorf("tune: no priceable candidates for scenario %s", s.Name)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].PredictedSeconds != ranked[j].PredictedSeconds {
			return ranked[i].PredictedSeconds < ranked[j].PredictedSeconds
		}
		return ranked[i].Candidate.key() < ranked[j].Candidate.key()
	})
	k := opt.TopK
	if k > len(ranked) {
		k = len(ranked)
	}
	top := ranked[:k]

	// Confirm: short real runs of the short-list pick the winner, so a
	// model miss can cost at most the gap inside the top-k.
	for i := range top {
		cfg, err := top[i].Candidate.Config(s, opt.ConfirmSteps)
		if err != nil {
			return nil, err
		}
		secs, mflups, err := opt.Measure(cfg)
		if err != nil {
			return nil, fmt.Errorf("tune: confirm %s: %w", top[i].Candidate.key(), err)
		}
		top[i].MeasuredSeconds = secs
		top[i].MeasuredMFlups = mflups
	}
	win := 0
	for i := 1; i < len(top); i++ {
		if top[i].MeasuredSeconds < top[win].MeasuredSeconds {
			win = i
		}
	}
	baseCfg, err := DefaultCandidate().Config(s, opt.ConfirmSteps)
	if err != nil {
		return nil, err
	}
	baseSecs, baseMflups, err := opt.Measure(baseCfg)
	if err != nil {
		return nil, fmt.Errorf("tune: baseline: %w", err)
	}

	t := &Tuned{
		Schema:           TunedSchema,
		Key:              CacheKey(s, sp.MaxWorkers),
		Machine:          obs.HostInfo(),
		Scenario:         s.Name,
		Model:            s.Model.Name,
		N:                [3]int{s.N.NX, s.N.NY, s.N.NZ},
		MaxWorkers:       sp.MaxWorkers,
		Choice:           top[win].Candidate,
		PredictedSeconds: top[win].PredictedSeconds,
		MeasuredSeconds:  top[win].MeasuredSeconds,
		MeasuredMFlups:   top[win].MeasuredMFlups,
		BaselineSeconds:  baseSecs,
		BaselineMFlups:   baseMflups,
		Candidates:       len(ranked),
		TopK:             top,
	}
	if s.Solid != nil {
		t.MaskHash = s.Solid.Hash()
	}
	return t, nil
}

// WriteTuned serializes a tuned config as indented JSON.
func WriteTuned(w io.Writer, t *Tuned) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// SaveTuned writes a tuned config to a file.
func SaveTuned(path string, t *Tuned) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTuned(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTuned reads a tuned config from a file.
func LoadTuned(path string) (*Tuned, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Tuned
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("tune: %s: %w", path, err)
	}
	if t.Schema != TunedSchema {
		return nil, fmt.Errorf("tune: %s: schema %q, want %q", path, t.Schema, TunedSchema)
	}
	return &t, nil
}

// LoadCached returns the tuned config at path if it exists and its cache
// key matches — i.e. it was tuned for exactly this scenario, geometry and
// machine. A missing file or a stale key returns (nil, nil): re-tune.
func LoadCached(path string, key string) (*Tuned, error) {
	t, err := LoadTuned(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if t.Key != key {
		return nil, nil
	}
	return t, nil
}
