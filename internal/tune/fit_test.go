package tune

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/perfsim"
)

// syntheticSweep generates observations from perfsim itself under a known
// coefficient set: the round-trip ground truth (simulate → fit → recover).
func syntheticSweep(t *testing.T, truth *perfsim.Coeffs) *Sweep {
	t.Helper()
	sw := &Sweep{
		Model:   "D3Q19",
		Dims:    [3]int{64, 32, 32},
		Steps:   8,
		Machine: obs.HostInfo(),
	}
	for _, pt := range Points() {
		phases, total, err := PricePoint(sw, pt, truth)
		if err != nil {
			t.Fatalf("synthetic %s: %v", pt.Label, err)
		}
		sw.Obs = append(sw.Obs, Observation{Point: pt, Phases: phases, Total: total})
	}
	return sw
}

func truthCoeffs() *perfsim.Coeffs {
	return &perfsim.Coeffs{
		MemBW:            12e9,
		BWSaturation:     3,
		CopyBW:           20e9,
		LinkBW:           1.3e8,
		Latency:          1.7e-4,
		MsgSW:            5e-5,
		ThreadSerialFrac: 0.04,
		KernelCost:       map[string]float64{"trt": 1.4, "mrt": 1.9},
		FusedAdjust:      1.1,
		AAAdjust:         0.95,
	}
}

// TestFitRoundTrip is the calibration loop's regression anchor: perfsim
// generates a sweep with known machine coefficients, and the fit must
// recover each searched coefficient within 5% (and each closed-form
// kernel cost almost exactly).
func TestFitRoundTrip(t *testing.T) {
	truth := truthCoeffs()
	sw := syntheticSweep(t, truth)
	res, err := Fit(sw)
	if err != nil {
		t.Fatal(err)
	}
	within := func(name string, got, want, tol float64) {
		t.Helper()
		if want == 0 {
			t.Fatalf("%s: zero truth", name)
		}
		if rel := math.Abs(got-want) / want; rel > tol {
			t.Errorf("%s: fitted %g, truth %g (%.1f%% off, want <= %.0f%%)",
				name, got, want, 100*rel, 100*tol)
		}
	}
	c := res.Coeffs
	within("mem_bw", c.MemBW, truth.MemBW, 0.05)
	within("bw_saturation", c.BWSaturation, truth.BWSaturation, 0.05)
	within("copy_bw", c.CopyBW, truth.CopyBW, 0.05)
	within("link_bw", c.LinkBW, truth.LinkBW, 0.05)
	within("latency", c.Latency, truth.Latency, 0.05)
	within("msg_sw", c.MsgSW, truth.MsgSW, 0.05)
	within("thread_serial_frac", c.ThreadSerialFrac, truth.ThreadSerialFrac, 0.05)
	within("kernel_cost[trt]", c.KernelCost["trt"], truth.KernelCost["trt"], 0.02)
	within("kernel_cost[mrt]", c.KernelCost["mrt"], truth.KernelCost["mrt"], 0.02)
	within("fused_adjust", c.FusedAdjust, truth.FusedAdjust, 0.02)
	within("aa_adjust", c.AAAdjust, truth.AAAdjust, 0.02)
	if res.FittedMAPE >= res.SeedMAPE && res.SeedMAPE > 0 {
		t.Errorf("search did not improve: seed MAPE %g, fitted %g", res.SeedMAPE, res.FittedMAPE)
	}
	if res.FittedMAPE > 0.01 {
		t.Errorf("fitted MAPE %g on self-generated data, want ~0", res.FittedMAPE)
	}
	if res.Coeffs.Validate() != nil {
		t.Errorf("fitted coefficients fail validation: %v", res.Coeffs.Validate())
	}
}

// TestFitDeterministic pins the no-wall-clock/no-randomness contract:
// fitting the same sweep twice yields byte-identical results.
func TestFitDeterministic(t *testing.T) {
	sw := syntheticSweep(t, truthCoeffs())
	a, err := Fit(sw)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(sw)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Errorf("two fits of one sweep differ:\n%s\n%s", ja, jb)
	}
}

// TestFitBeatsAnchored: on data the coefficient model can represent, the
// fitted objective must strictly beat the one-point-anchored fallback.
func TestFitBeatsAnchored(t *testing.T) {
	sw := syntheticSweep(t, truthCoeffs())
	res, err := Fit(sw)
	if err != nil {
		t.Fatal(err)
	}
	if res.FittedMAPE >= res.AnchoredMAPE {
		t.Errorf("fitted MAPE %g does not beat anchored %g", res.FittedMAPE, res.AnchoredMAPE)
	}
}

// TestDefaultThreadSerialFracRoundTrip ties the shipped generic default
// to the fit machinery: a sweep generated at the default value must fit
// back to it within 5%, so the constant can only ever be replaced by a
// value the fit reproduces.
func TestDefaultThreadSerialFracRoundTrip(t *testing.T) {
	truth := truthCoeffs()
	truth.ThreadSerialFrac = perfsim.DefaultThreadSerialFrac
	sw := syntheticSweep(t, truth)
	res, err := Fit(sw)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Coeffs.ThreadSerialFrac
	want := perfsim.DefaultThreadSerialFrac
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Errorf("thread_serial_frac round-trip: fitted %g, default %g (%.1f%% off)",
			got, want, 100*rel)
	}
}
