package tune

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/perfsim"
)

// FitSchema identifies the fit result's JSON shape.
const FitSchema = "lbm-fit/v1"

// fitPhases are the phases the objective scores — the ones perfsim's
// schedule decomposition predicts (fixup/face/sponge/force are zero in
// the periodic sweep).
var fitPhases = []obs.Phase{obs.Interior, obs.Rim, obs.Pack, obs.Wire, obs.Unpack}

// FitResult is the output of the calibration fit.
type FitResult struct {
	Schema  string          `json:"schema"`
	Machine obs.MachineInfo `json:"machine"`
	Model   string          `json:"model"`
	Steps   int             `json:"steps"`
	Coeffs  perfsim.Coeffs  `json:"coeffs"`
	// SeedMAPE/FittedMAPE are the duration-weighted per-phase MAPE of the
	// objective before and after the coefficient search; AnchoredMAPE is
	// the same objective under the pre-existing one-point-anchored model
	// (the `-exp predict` fallback), the bar the fit must beat.
	SeedMAPE     float64 `json:"seed_mape"`
	FittedMAPE   float64 `json:"fitted_mape"`
	AnchoredMAPE float64 `json:"anchored_mape"`
	// PhaseMAPE/TotalMAPE/PearsonR score the fitted model across the whole
	// sweep (holdout points included, with their fitted cell costs).
	PhaseMAPE map[string]float64 `json:"phase_mape"`
	TotalMAPE float64            `json:"total_mape"`
	PearsonR  float64            `json:"pearson_r"`
	// Evals counts objective evaluations of the coordinate descent.
	Evals int `json:"evals"`
}

// fitDim describes one searched coefficient: an accessor pair plus the
// physical bracket the walk stays inside.
type fitDim struct {
	name   string
	get    func(*perfsim.Coeffs) float64
	set    func(*perfsim.Coeffs, float64)
	lo, hi float64
}

func fitDims() []fitDim {
	return []fitDim{
		{"mem_bw", func(c *perfsim.Coeffs) float64 { return c.MemBW }, func(c *perfsim.Coeffs, v float64) { c.MemBW = v }, 1e8, 1e13},
		{"bw_saturation", func(c *perfsim.Coeffs) float64 { return c.BWSaturation }, func(c *perfsim.Coeffs, v float64) { c.BWSaturation = v }, 1, 64},
		{"copy_bw", func(c *perfsim.Coeffs) float64 { return c.CopyBW }, func(c *perfsim.Coeffs, v float64) { c.CopyBW = v }, 1e8, 1e13},
		{"link_bw", func(c *perfsim.Coeffs) float64 { return c.LinkBW }, func(c *perfsim.Coeffs, v float64) { c.LinkBW = v }, 1e6, 1e12},
		{"latency", func(c *perfsim.Coeffs) float64 { return c.Latency }, func(c *perfsim.Coeffs, v float64) { c.Latency = v }, 1e-7, 1e-2},
		{"msg_sw", func(c *perfsim.Coeffs) float64 { return c.MsgSW }, func(c *perfsim.Coeffs, v float64) { c.MsgSW = v }, 1e-9, 1e-2},
		{"thread_serial_frac", func(c *perfsim.Coeffs) float64 { return c.ThreadSerialFrac }, func(c *perfsim.Coeffs, v float64) { c.ThreadSerialFrac = v }, 1e-5, 1},
	}
}

// seedCoeffs returns the search's starting point: the shared wire
// constants for the wire dimensions (the sweep injects them, so they are
// the right neighborhood by construction), the thread ladder solved
// closed-form for the saturation and Amdahl terms, and bandwidths
// anchored by one-point scaling. The descent then only has to polish —
// which matters, because the interior model has a MemBW/BWSaturation/
// ThreadSerialFrac valley a cold pattern search can stall in.
func seedCoeffs(sw *Sweep) (perfsim.Coeffs, error) {
	c := perfsim.Coeffs{
		MemBW:            8e9,
		BWSaturation:     4,
		CopyBW:           16e9,
		LinkBW:           WireLinkBW,
		Latency:          WireLatency,
		MsgSW:            100e-6,
		ThreadSerialFrac: perfsim.DefaultThreadSerialFrac,
	}
	seedThreadLadder(sw, &c)
	seedWire(sw, &c)

	// Anchor the kernel bandwidth on the single-worker point's interior
	// phase and the copy bandwidth on its pack phase (both scale as 1/rate
	// with the flop roofline out of play).
	anchor := func(o *Observation) error {
		pred, _, err := PricePoint(sw, o.Point, &c)
		if err != nil {
			return err
		}
		if ob := o.Phases[obs.Interior]; ob > 0 && pred[obs.Interior] > 0 {
			c.MemBW = clampDim(c.MemBW*pred[obs.Interior]/ob, "mem_bw")
		}
		return nil
	}
	for i := range sw.Obs {
		o := &sw.Obs[i]
		if o.Point.Holdout {
			continue
		}
		if o.Point.Ranks == 1 && o.Point.Threads == 1 {
			if err := anchor(o); err != nil {
				return c, err
			}
			break
		}
	}
	for i := range sw.Obs {
		o := &sw.Obs[i]
		if o.Point.Holdout || o.Point.Ranks < 2 {
			continue
		}
		pred, _, err := PricePoint(sw, o.Point, &c)
		if err != nil {
			return c, err
		}
		if ob := o.Phases[obs.Pack]; ob > 0 && pred[obs.Pack] > 0 {
			c.CopyBW = clampDim(c.CopyBW*pred[obs.Pack]/ob, "copy_bw")
		}
		break
	}
	return c, nil
}

// seedThreadLadder solves the single-rank thread ladder (t = 1, 2, 4)
// closed-form for BWSaturation and ThreadSerialFrac. With interior time
// I_t ∝ (1 + c·(t−1)) / min(t/S, 1), the three observations pin c and S
// directly in each saturation regime; the regimes are tried in order and
// checked for self-consistency. Failure leaves the generic seeds alone.
func seedThreadLadder(sw *Sweep, c *perfsim.Coeffs) {
	ladder := map[int]float64{}
	for _, o := range sw.Obs {
		if o.Point.Holdout || o.Point.Ranks != 1 {
			continue
		}
		if v := o.Phases[obs.Interior]; v > 0 {
			ladder[o.Point.Threads] = v
		}
	}
	i1, i2, i4 := ladder[1], ladder[2], ladder[4]
	if i1 <= 0 || i2 <= 0 || i4 <= 0 {
		return
	}
	try := func(cf, sf float64, lo, hi float64) bool {
		if cf <= 0 || sf < lo || sf > hi {
			return false
		}
		c.ThreadSerialFrac = clampDim(cf, "thread_serial_frac")
		c.BWSaturation = clampDim(sf, "bw_saturation")
		return true
	}
	// 2 < S ≤ 4: t2 on the ramp, t4 saturated.
	cf := 2*i2/i1 - 1
	if try(cf, (1+3*cf)*i1/i4, 2, 4) {
		return
	}
	// S ≤ 2: t2 and t4 both saturated.
	if r := i4 / i2; r < 3 {
		cf = (r - 1) / (3 - r)
		if try(cf, (1+cf)*i1/i2, 1, 2) {
			return
		}
	}
	// S > 4: nothing saturates; S is unidentified beyond the max observed
	// worker count, so pin it there and let MemBW absorb the scale.
	cf = 2*i2/i1 - 1
	try(cf, 4, 4, 4)
}

// seedWire solves the wire-bearing rungs closed-form for Latency and
// LinkBW. A blocking exchange's wire phase is affine in the pair —
// count·Latency + bytes/LinkBW plus a latency-independent offset — so
// three probe pricings per rung recover its (count, bytes, offset), and
// the best-conditioned rung pair yields a 2×2 linear system. The two
// coefficients trade off inside any single rung (the valley the descent
// cannot cross coordinate-wise), which is why the sweep carries blocking
// rungs at two halo depths: half the messages at twice the size. Skipped
// when no rung pair is well-conditioned.
func seedWire(sw *Sweep, c *perfsim.Coeffs) {
	type rung struct {
		wire      float64 // observed wire seconds, offset removed
		cnt, byt  float64 // effective message count and bytes/LinkBW weight
		condRatio float64
	}
	var rungs []rung
	for i := range sw.Obs {
		o := &sw.Obs[i]
		if o.Point.Holdout || o.Phases[obs.Wire] <= 0 {
			continue
		}
		probe := func(lat, bw float64) (float64, bool) {
			pc := *c
			pc.Latency, pc.LinkBW = lat, bw
			pred, _, err := PricePoint(sw, o.Point, &pc)
			if err != nil {
				return 0, false
			}
			return pred[obs.Wire], true
		}
		const l0, l1, w0, w1 = 1e-4, 2e-4, 1e8, 2e8
		p0, ok0 := probe(l0, w0)
		p1, ok1 := probe(l1, w0)
		p2, ok2 := probe(l0, w1)
		if !ok0 || !ok1 || !ok2 {
			continue
		}
		cnt := (p1 - p0) / (l1 - l0)
		byt := (p0 - p2) / (1/w0 - 1/w1)
		off := p0 - cnt*l0 - byt/w0
		if cnt <= 0 || byt <= 0 {
			continue
		}
		rungs = append(rungs, rung{wire: o.Phases[obs.Wire] - off, cnt: cnt, byt: byt})
	}
	bestCond := 0.05 // require at least 5% normalized determinant
	for i := 0; i < len(rungs); i++ {
		for j := i + 1; j < len(rungs); j++ {
			ri, rj := rungs[i], rungs[j]
			det := ri.cnt*rj.byt - rj.cnt*ri.byt
			cond := math.Abs(det) / (ri.cnt*rj.byt + rj.cnt*ri.byt)
			if cond <= bestCond {
				continue
			}
			lat := (ri.wire*rj.byt - rj.wire*ri.byt) / det
			inv := (ri.cnt*rj.wire - rj.cnt*ri.wire) / det
			if lat <= 0 || inv <= 0 {
				continue
			}
			bestCond = cond
			c.Latency = clampDim(lat, "latency")
			c.LinkBW = clampDim(1/inv, "link_bw")
		}
	}
}

// clampDim keeps a seeded value inside its search bracket.
func clampDim(v float64, name string) float64 {
	for _, d := range fitDims() {
		if d.name == name {
			if v < d.lo {
				return d.lo
			}
			if v > d.hi {
				return d.hi
			}
			return v
		}
	}
	return v
}

// objective is the duration-weighted per-phase MAPE of a coefficient set
// over the sweep's core (non-holdout) points: each (point, phase) error
// is weighted by the observed seconds it covers, so the big phases — the
// ones that decide a tuning choice — dominate, and noisy sub-millisecond
// phases can't.
func objective(sw *Sweep, c *perfsim.Coeffs) (float64, error) {
	var sum, wsum float64
	for _, o := range sw.Obs {
		if o.Point.Holdout {
			continue
		}
		pred, _, err := PricePoint(sw, o.Point, c)
		if err != nil {
			return 0, err
		}
		for _, p := range fitPhases {
			ob := o.Phases[p]
			if ob <= 0 {
				continue
			}
			sum += ob * math.Abs(pred[p]-ob) / ob
			wsum += ob
		}
	}
	if wsum == 0 {
		return 0, fmt.Errorf("tune: sweep has no observed phase seconds to fit against")
	}
	return sum / wsum, nil
}

// AnchoredObjective scores the pre-existing anchored model (named
// calibration plus a one-point memory-bandwidth anchor, the `-exp
// predict` fallback) with the fit's own objective, so fitted-vs-unfitted
// is an apples-to-apples comparison.
func AnchoredObjective(sw *Sweep) (float64, error) {
	// Reproduce the anchor: scale the envelope bandwidth so the first core
	// point's predicted interior matches its observed interior.
	first := sw.Obs[0]
	p0, _, err := PriceAnchored(sw, first.Point, 8e9)
	if err != nil {
		return 0, err
	}
	memBW := 8e9
	if ob := first.Phases[obs.Interior]; ob > 0 && p0[obs.Interior] > 0 {
		memBW *= p0[obs.Interior] / ob
	}
	var sum, wsum float64
	for _, o := range sw.Obs {
		if o.Point.Holdout {
			continue
		}
		pred, _, err := PriceAnchored(sw, o.Point, memBW)
		if err != nil {
			return 0, err
		}
		for _, p := range fitPhases {
			ob := o.Phases[p]
			if ob <= 0 {
				continue
			}
			sum += ob * math.Abs(pred[p]-ob) / ob
			wsum += ob
		}
	}
	if wsum == 0 {
		return 0, fmt.Errorf("tune: sweep has no observed phase seconds to score")
	}
	return sum / wsum, nil
}

// Fit searches the coefficient space to minimize the objective:
// deterministic coordinate descent in log space (multiplicative steps
// with a shrinking factor), then closed-form per-kernel cell costs from
// the holdout points. No wall clock, no randomness — the result is a
// pure function of the sweep.
func Fit(sw *Sweep) (*FitResult, error) {
	if len(sw.Obs) == 0 {
		return nil, fmt.Errorf("tune: empty sweep")
	}
	cur, err := seedCoeffs(sw)
	if err != nil {
		return nil, err
	}
	evals := 0
	eval := func(c *perfsim.Coeffs) (float64, error) {
		evals++
		return objective(sw, c)
	}
	best, err := eval(&cur)
	if err != nil {
		return nil, err
	}
	seedMAPE := best

	dims := fitDims()
	// Multiplicative pattern search: walk each coefficient up or down by
	// the current factor while it helps; shrink the factor when a full
	// pass over the dimensions makes no progress. Two coarse-to-fine
	// cycles — re-opening the step after the first convergence lets the
	// search escape the shallow stalls a single annealing pass can leave
	// on coupled dimensions.
	const maxEvals = 20000
	for cycle := 0; cycle < 2; cycle++ {
		for factor := 4.0; factor > 1.0005 && evals < maxEvals; {
			improved := false
			for _, d := range dims {
				for _, dir := range [2]float64{1, -1} {
					for evals < maxEvals {
						v := d.get(&cur)
						nv := v * math.Pow(factor, dir)
						if nv < d.lo {
							nv = d.lo
						}
						if nv > d.hi {
							nv = d.hi
						}
						if nv == v {
							break
						}
						trial := cur
						d.set(&trial, nv)
						score, err := eval(&trial)
						if err != nil {
							return nil, err
						}
						if score < best {
							best, cur = score, trial
							improved = true
							continue
						}
						break
					}
				}
			}
			if !improved {
				// Diagonal pass: coupled dimensions (latency/link_bw,
				// mem_bw/bw_saturation) form curved valleys a single-axis
				// step can't descend — both coordinates individually uphill,
				// the pair downhill. Walk every dimension pair in the four
				// diagonal directions before giving up on this step size.
				for i := 0; i < len(dims); i++ {
					for j := i + 1; j < len(dims); j++ {
						for _, dd := range [4][2]float64{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}} {
							for evals < maxEvals {
								vi, vj := dims[i].get(&cur), dims[j].get(&cur)
								ni := clampDim(vi*math.Pow(factor, dd[0]), dims[i].name)
								nj := clampDim(vj*math.Pow(factor, dd[1]), dims[j].name)
								if ni == vi && nj == vj {
									break
								}
								trial := cur
								dims[i].set(&trial, ni)
								dims[j].set(&trial, nj)
								score, err := eval(&trial)
								if err != nil {
									return nil, err
								}
								if score < best {
									best, cur = score, trial
									improved = true
									continue
								}
								break
							}
						}
					}
				}
			}
			if !improved {
				factor = math.Sqrt(factor)
			}
		}
	}

	if err := fitKernelCosts(sw, &cur); err != nil {
		return nil, err
	}

	res := &FitResult{
		Schema:     FitSchema,
		Machine:    sw.Machine,
		Model:      sw.Model,
		Steps:      sw.Steps,
		Coeffs:     cur,
		SeedMAPE:   seedMAPE,
		FittedMAPE: best,
		PhaseMAPE:  map[string]float64{},
		Evals:      evals,
	}
	if res.AnchoredMAPE, err = AnchoredObjective(sw); err != nil {
		return nil, err
	}
	if err := res.score(sw); err != nil {
		return nil, err
	}
	return res, nil
}

// fitKernelCosts derives the per-kernel cell-cost multipliers from the
// holdout points: each is priced with the fitted coefficients at cost 1,
// and the observed/predicted interior-time ratio becomes the cost. The
// interior phase isolates the kernel (pack/wire/unpack are
// kernel-independent), which is why a closed form suffices.
func fitKernelCosts(sw *Sweep, c *perfsim.Coeffs) error {
	base := *c
	base.KernelCost = nil
	base.FusedAdjust = 0
	base.AAAdjust = 0
	for _, o := range sw.Obs {
		if !o.Point.Holdout {
			continue
		}
		pred, _, err := PricePoint(sw, o.Point, &base)
		if err != nil {
			return err
		}
		ob, pr := o.Phases[obs.Interior], pred[obs.Interior]
		if ob <= 0 || pr <= 0 {
			continue
		}
		ratio := ob / pr
		// Clamp to a sane band: a kernel is not 4× cheaper or dearer than
		// the baseline on these hosts; beyond that the observation is
		// noise.
		if ratio < 0.25 {
			ratio = 0.25
		}
		if ratio > 4 {
			ratio = 4
		}
		switch {
		case o.Point.Fused:
			c.FusedAdjust = ratio
		case o.Point.Stream != 0:
			c.AAAdjust = ratio
		case o.Point.Kernel != "bgk":
			if c.KernelCost == nil {
				c.KernelCost = map[string]float64{}
			}
			c.KernelCost[o.Point.Kernel] = ratio
		}
	}
	return nil
}

// WriteFit serializes a fit result as indented JSON (lbm-fit/v1).
func WriteFit(w io.Writer, r *FitResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// SaveFit writes a fit result to a file.
func SaveFit(path string, r *FitResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFit(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFit reads a fit result from a file, checking schema and validating
// the coefficients.
func LoadFit(path string) (*FitResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r FitResult
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("tune: %s: %w", path, err)
	}
	if r.Schema != FitSchema {
		return nil, fmt.Errorf("tune: %s: schema %q, want %q", path, r.Schema, FitSchema)
	}
	if err := r.Coeffs.Validate(); err != nil {
		return nil, fmt.Errorf("tune: %s: %w", path, err)
	}
	return &r, nil
}

// score fills the whole-sweep agreement metrics of a fitted result:
// per-phase MAPE, total MAPE and Pearson correlation on wall times, all
// points included.
func (r *FitResult) score(sw *Sweep) error {
	n := len(sw.Obs)
	obsTotals := make([]float64, n)
	predTotals := make([]float64, n)
	preds := make([]obs.PhaseSeconds, n)
	for i, o := range sw.Obs {
		pred, total, err := PricePoint(sw, o.Point, &r.Coeffs)
		if err != nil {
			return err
		}
		preds[i] = pred
		obsTotals[i] = o.Total
		predTotals[i] = total
	}
	for _, p := range fitPhases {
		ov := make([]float64, n)
		pv := make([]float64, n)
		for i := range sw.Obs {
			ov[i], pv[i] = sw.Obs[i].Phases[p], preds[i][p]
		}
		if mape := metrics.MAPE(ov, pv); !math.IsNaN(mape) {
			r.PhaseMAPE[p.String()] = mape
		}
	}
	r.TotalMAPE = metrics.MAPE(obsTotals, predTotals)
	r.PearsonR = metrics.Pearson(obsTotals, predTotals)
	return nil
}
