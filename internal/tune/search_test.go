package tune

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
)

func testScenario() *Scenario {
	return &Scenario{
		Name:  "test-cavity",
		Model: lattice.D3Q19(),
		N:     grid.Dims{NX: 32, NY: 16, NZ: 16},
		Tau:   0.8,
	}
}

func boundedScenario() *Scenario {
	return &Scenario{
		Name:     "test-bounded-cavity",
		Model:    lattice.D3Q19(),
		N:        grid.Dims{NX: 32, NY: 16, NZ: 16},
		Tau:      0.8,
		Boundary: core.CavitySpec(0.05),
	}
}

func maskedScenario(rad float64) *Scenario {
	d := grid.Dims{NX: 32, NY: 16, NZ: 16}
	return &Scenario{
		Name:  "test-bifurcation",
		Model: lattice.D3Q19(),
		N:     d,
		Tau:   0.8,
		Solid: geom.Bifurcation(d, rad),
	}
}

// fakeMeasure is a deterministic stand-in for real confirmation runs: it
// "measures" exactly what a fixed cost model says, so the whole Tune call
// becomes a pure function.
func fakeMeasure(cfg core.Config) (float64, float64, error) {
	secs := 1.0 / float64(cfg.Ranks*cfg.Threads)
	cells := float64(cfg.N.NX * cfg.N.NY * cfg.N.NZ)
	mflups := cells * float64(cfg.Steps) / secs / 1e6
	return secs, mflups, nil
}

func smallSpace() Space {
	return Space{
		MaxWorkers: 4,
		Ranks:      []int{1, 2},
		Threads:    []int{1, 2},
		Depths:     []int{1, 2},
		Opts:       []string{core.OptGCC.String(), core.OptSIMD.String()},
		Streams:    []string{core.StreamTwoGrid.String(), core.StreamAA.String()},
		Kernels:    []string{"bgk"},
		Fused:      []bool{false, true},
	}
}

// TestEnumerateRunnable: every enumerated candidate must materialize into
// a config the real solver accepts — the filters mirror core validation,
// and a drift between them would silently shrink the search space.
func TestEnumerateRunnable(t *testing.T) {
	for _, s := range []*Scenario{testScenario(), maskedScenario(3), boundedScenario()} {
		cands := Enumerate(s, smallSpace())
		if len(cands) == 0 {
			t.Fatalf("%s: empty enumeration", s.Name)
		}
		for _, c := range cands {
			cfg, err := c.Config(s, 2)
			if err != nil {
				t.Fatalf("%s: %s: %v", s.Name, c.key(), err)
			}
			if _, err := core.Run(cfg); err != nil {
				t.Errorf("%s: candidate rejected by solver: %s: %v", s.Name, c.key(), err)
			}
		}
	}
}

// TestEnumerateFilters spot-checks the constraint filters.
func TestEnumerateFilters(t *testing.T) {
	cands := Enumerate(testScenario(), smallSpace())
	for _, c := range cands {
		if c.Stream == core.StreamAA.String() && c.Fused {
			t.Errorf("fused AA candidate enumerated: %s", c.key())
		}
		if c.Sparse || c.Balance != "" {
			t.Errorf("sparse/balanced candidate on unmasked scenario: %s", c.key())
		}
	}
	masked := Enumerate(maskedScenario(3), smallSpace())
	var sawSparse, sawBalance bool
	for _, c := range masked {
		if c.Fused {
			t.Errorf("fused candidate on masked scenario: %s", c.key())
		}
		sawSparse = sawSparse || c.Sparse
		sawBalance = sawBalance || c.Balance != ""
	}
	if !sawSparse || !sawBalance {
		t.Errorf("masked scenario should enumerate sparse and fluid-balanced candidates")
	}
}

// TestTuneDeterministic pins the tuner's no-wall-clock contract: the same
// observations (here: a deterministic fake measure) and the same space
// produce a byte-identical tuned config.
func TestTuneDeterministic(t *testing.T) {
	s := testScenario()
	coeffs := truthCoeffs()
	opt := Options{Space: smallSpace(), Measure: fakeMeasure, ConfirmSteps: 2}
	a, err := Tune(s, coeffs, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(s, coeffs, opt)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Errorf("two tuning runs differ:\n%s\n%s", ja, jb)
	}
}

// TestTunedGoldenShape round-trips the tuned config through JSON and pins
// the schema fields the CLIs and the cache depend on.
func TestTunedGoldenShape(t *testing.T) {
	s := maskedScenario(3)
	tn, err := Tune(s, truthCoeffs(), Options{Space: smallSpace(), Measure: fakeMeasure, ConfirmSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tuned.json")
	if err := SaveTuned(path, tn); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTuned(path)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(tn)
	jb, _ := json.Marshal(back)
	if string(ja) != string(jb) {
		t.Errorf("tuned config did not round-trip:\n%s\n%s", ja, jb)
	}
	raw, _ := os.ReadFile(path)
	for _, field := range []string{
		`"schema": "lbm-tuned/v1"`, `"key"`, `"machine"`, `"scenario"`,
		`"model"`, `"n"`, `"mask_hash"`, `"max_workers"`, `"choice"`,
		`"predicted_seconds"`, `"measured_seconds"`, `"measured_mflups"`,
		`"baseline_seconds"`, `"baseline_mflups"`, `"candidates"`, `"top_k"`,
		`"ranks"`, `"decomp"`, `"threads"`, `"opt"`, `"depth"`, `"stream"`, `"kernel"`,
	} {
		if !strings.Contains(string(raw), field) {
			t.Errorf("tuned JSON missing %s", field)
		}
	}
	if tn.Key != CacheKey(s, smallSpace().MaxWorkers) {
		t.Errorf("tuned key %q != CacheKey %q", tn.Key, CacheKey(s, smallSpace().MaxWorkers))
	}
	if _, err := tn.Choice.Config(s, 100); err != nil {
		t.Errorf("winning choice does not materialize: %v", err)
	}
}

// TestStaleCacheKey: a tuned config cached for one geometry must not be
// reused for another — a changed mask changes the hash, the key, and
// forces a re-tune.
func TestStaleCacheKey(t *testing.T) {
	s := maskedScenario(3)
	tn, err := Tune(s, truthCoeffs(), Options{Space: smallSpace(), Measure: fakeMeasure, ConfirmSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tuned.json")
	if err := SaveTuned(path, tn); err != nil {
		t.Fatal(err)
	}

	hit, err := LoadCached(path, CacheKey(s, smallSpace().MaxWorkers))
	if err != nil || hit == nil {
		t.Fatalf("fresh cache should hit: %v %v", hit, err)
	}

	// Same scenario name and dims, different vessel radius: new mask hash.
	altered := maskedScenario(4)
	stale, err := LoadCached(path, CacheKey(altered, smallSpace().MaxWorkers))
	if err != nil {
		t.Fatal(err)
	}
	if stale != nil {
		t.Errorf("stale cache (different mask) must miss, got %+v", stale.Key)
	}

	// Missing file: miss, no error.
	none, err := LoadCached(filepath.Join(t.TempDir(), "absent.json"), tn.Key)
	if err != nil || none != nil {
		t.Errorf("missing cache file should be a silent miss, got %v %v", none, err)
	}
}

// TestMaskHashDiffers is the geometry half of the stale-key guarantee.
func TestMaskHashDiffers(t *testing.T) {
	d := grid.Dims{NX: 16, NY: 8, NZ: 8}
	a := geom.Bifurcation(d, 2.0).Hash()
	b := geom.Bifurcation(d, 2.5).Hash()
	if a == b {
		t.Errorf("different masks hash equal: %s", a)
	}
	if a != geom.Bifurcation(d, 2.0).Hash() {
		t.Errorf("mask hash not stable")
	}
}
