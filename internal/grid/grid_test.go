package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIndexRoundTrip(t *testing.T) {
	d := Dims{NX: 4, NY: 3, NZ: 5}
	seen := make(map[int]bool)
	for ix := 0; ix < d.NX; ix++ {
		for iy := 0; iy < d.NY; iy++ {
			for iz := 0; iz < d.NZ; iz++ {
				idx := d.Index(ix, iy, iz)
				if idx < 0 || idx >= d.Cells() {
					t.Fatalf("index out of range: %d", idx)
				}
				if seen[idx] {
					t.Fatalf("duplicate index %d", idx)
				}
				seen[idx] = true
				x, y, z := d.Coords(idx)
				if x != ix || y != iy || z != iz {
					t.Fatalf("Coords(%d) = (%d,%d,%d), want (%d,%d,%d)", idx, x, y, z, ix, iy, iz)
				}
			}
		}
	}
	if len(seen) != d.Cells() {
		t.Fatalf("covered %d cells, want %d", len(seen), d.Cells())
	}
}

// TestIndexZFastest pins the memory order the kernels rely on: z is the
// fastest-varying coordinate (the paper's iz + iy·Lz + ix·Lz·Ly).
func TestIndexZFastest(t *testing.T) {
	d := Dims{NX: 3, NY: 4, NZ: 5}
	if d.Index(0, 0, 1)-d.Index(0, 0, 0) != 1 {
		t.Error("z stride != 1")
	}
	if d.Index(0, 1, 0)-d.Index(0, 0, 0) != d.NZ {
		t.Error("y stride != NZ")
	}
	if d.Index(1, 0, 0)-d.Index(0, 0, 0) != d.NY*d.NZ {
		t.Error("x stride != NY*NZ")
	}
	if d.PlaneCells() != d.NY*d.NZ {
		t.Error("PlaneCells != NY*NZ")
	}
}

func TestFieldAccessorsBothLayouts(t *testing.T) {
	d := Dims{NX: 3, NY: 2, NZ: 4}
	for _, l := range []Layout{SoA, AoS} {
		f := NewField(5, d, l)
		want := func(v, ix, iy, iz int) float64 {
			return float64(v*1000 + d.Index(ix, iy, iz))
		}
		for v := 0; v < f.Q; v++ {
			for ix := 0; ix < d.NX; ix++ {
				for iy := 0; iy < d.NY; iy++ {
					for iz := 0; iz < d.NZ; iz++ {
						f.Set(v, ix, iy, iz, want(v, ix, iy, iz))
					}
				}
			}
		}
		for v := 0; v < f.Q; v++ {
			for ix := 0; ix < d.NX; ix++ {
				for iy := 0; iy < d.NY; iy++ {
					for iz := 0; iz < d.NZ; iz++ {
						if got := f.At(v, ix, iy, iz); got != want(v, ix, iy, iz) {
							t.Fatalf("%v At(%d,%d,%d,%d) = %g, want %g", l, v, ix, iy, iz, got, want(v, ix, iy, iz))
						}
					}
				}
			}
		}
	}
}

func TestSoAVelocityBlocks(t *testing.T) {
	d := Dims{NX: 2, NY: 2, NZ: 2}
	f := NewField(3, d, SoA)
	blk := f.V(1)
	if len(blk) != d.Cells() {
		t.Fatalf("block length %d, want %d", len(blk), d.Cells())
	}
	blk[d.Index(1, 0, 1)] = 42
	if got := f.At(1, 1, 0, 1); got != 42 {
		t.Errorf("At = %g, want 42 (V must alias the field)", got)
	}
	// Appending to the returned block must not clobber the next velocity.
	_ = append(blk, 99)
	if got := f.At(2, 0, 0, 0); got != 0 {
		t.Errorf("append through V corrupted neighbor block: %g", got)
	}
}

func TestVPanicsOnAoS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("V on AoS field did not panic")
		}
	}()
	NewField(2, Dims{1, 1, 1}, AoS).V(0)
}

func TestConvertLayoutRoundTrip(t *testing.T) {
	d := Dims{NX: 3, NY: 3, NZ: 3}
	f := NewField(4, d, SoA)
	for i := range f.Data {
		f.Data[i] = float64(i) * 0.5
	}
	g := f.ConvertLayout(AoS)
	if MaxAbsDiff(f, g) != 0 {
		t.Error("SoA -> AoS changed values")
	}
	h := g.ConvertLayout(SoA)
	for i := range f.Data {
		if f.Data[i] != h.Data[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestCellAccessors(t *testing.T) {
	d := Dims{NX: 2, NY: 2, NZ: 2}
	for _, l := range []Layout{SoA, AoS} {
		f := NewField(3, d, l)
		in := []float64{1.5, -2, 7}
		f.SetCell(1, 0, 1, in)
		out := make([]float64, 3)
		f.Cell(1, 0, 1, out)
		for v := range in {
			if in[v] != out[v] {
				t.Errorf("%v: Cell[%d] = %g, want %g", l, v, out[v], in[v])
			}
		}
	}
}

func TestFill(t *testing.T) {
	d := Dims{NX: 2, NY: 3, NZ: 2}
	f := NewField(2, d, AoS)
	f.Fill([]float64{3, 4})
	for c := 0; c < d.Cells(); c++ {
		if f.Data[f.Idx(0, c)] != 3 || f.Data[f.Idx(1, c)] != 4 {
			t.Fatalf("Fill wrong at cell %d", c)
		}
	}
}

func TestMaxAbsDiffProperty(t *testing.T) {
	d := Dims{NX: 2, NY: 2, NZ: 3}
	f := func(vals [12]float64, at uint8, delta float64) bool {
		a := NewField(1, d, SoA)
		for i, v := range vals {
			a.Data[i] = clamp(v)
		}
		b := a.Clone()
		if MaxAbsDiff(a, b) != 0 {
			return false
		}
		i := int(at) % len(b.Data)
		delta = clamp(delta)
		if delta < 0 {
			delta = -delta
		}
		delta += 0.25
		b.Data[i] += delta
		got := MaxAbsDiff(a, b)
		return got >= delta*0.999999 && got <= delta*1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// clamp maps an arbitrary generated float (possibly huge, NaN or Inf) into a
// well-behaved range so floating-point arithmetic in properties stays exact
// enough to reason about.
func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1000)
}
