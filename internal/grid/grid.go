// Package grid provides the Cartesian field storage used by the solver:
// box dimensions with z-fastest indexing (matching the paper's
// iz + iy·Lz + ix·Lz·Ly layout) and distribution-function fields in either
// the collision-optimized structure-of-arrays layout (velocities stored as
// contiguous blocks, as recommended by Wellein et al. and used in the
// paper) or the array-of-structures layout kept for the layout ablation.
package grid

import "fmt"

// Dims is the extent of a 3-D box. Indexing is z-fastest: the linear index
// of (ix,iy,iz) is iz + NZ·(iy + NY·ix).
type Dims struct {
	NX, NY, NZ int
}

// Cells returns the number of lattice points in the box.
func (d Dims) Cells() int { return d.NX * d.NY * d.NZ }

// Index returns the linear cell index of (ix,iy,iz).
func (d Dims) Index(ix, iy, iz int) int { return iz + d.NZ*(iy+d.NY*ix) }

// Coords inverts Index.
func (d Dims) Coords(idx int) (ix, iy, iz int) {
	iz = idx % d.NZ
	idx /= d.NZ
	iy = idx % d.NY
	ix = idx / d.NY
	return
}

// PlaneCells returns the number of cells in one x-plane (NY·NZ); x-plane p
// occupies linear indices [p·PlaneCells, (p+1)·PlaneCells).
func (d Dims) PlaneCells() int { return d.NY * d.NZ }

func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d.NX, d.NY, d.NZ) }

// Layout selects the memory layout of a Field.
type Layout int

const (
	// SoA stores each velocity's values contiguously: Data[v*cells + cell].
	// This is the "collision optimized" layout of Wellein et al. that the
	// paper adopts (§IV: two-dimensional arrays of
	// (NumVelocities, zDim·yDim·xDim) allocated in contiguous memory).
	SoA Layout = iota
	// AoS stores all velocities of a cell together: Data[cell*Q + v].
	// Retained for the data-layout ablation.
	AoS
)

func (l Layout) String() string {
	switch l {
	case SoA:
		return "SoA"
	case AoS:
		return "AoS"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Field is a distribution function over a box: Q values per cell.
// The box dimensions include any halo planes the caller allocated.
type Field struct {
	Q      int
	D      Dims
	Layout Layout
	Data   []float64
}

// NewField allocates a zeroed field.
func NewField(q int, d Dims, l Layout) *Field {
	return &Field{Q: q, D: d, Layout: l, Data: make([]float64, q*d.Cells())}
}

// Idx returns the linear offset into Data for velocity v at cell index.
func (f *Field) Idx(v, cell int) int {
	if f.Layout == SoA {
		return v*f.D.Cells() + cell
	}
	return cell*f.Q + v
}

// At returns the value of velocity v at (ix,iy,iz).
func (f *Field) At(v, ix, iy, iz int) float64 {
	return f.Data[f.Idx(v, f.D.Index(ix, iy, iz))]
}

// Set stores the value of velocity v at (ix,iy,iz).
func (f *Field) Set(v, ix, iy, iz int, x float64) {
	f.Data[f.Idx(v, f.D.Index(ix, iy, iz))] = x
}

// V returns the contiguous block of velocity v. It panics for AoS fields,
// whose velocities are interleaved.
func (f *Field) V(v int) []float64 {
	if f.Layout != SoA {
		panic("grid: Field.V requires the SoA layout")
	}
	n := f.D.Cells()
	return f.Data[v*n : (v+1)*n : (v+1)*n]
}

// Cell fills dst (length Q) with all velocity values of the cell at
// (ix,iy,iz), in velocity order.
func (f *Field) Cell(ix, iy, iz int, dst []float64) {
	cell := f.D.Index(ix, iy, iz)
	for v := 0; v < f.Q; v++ {
		dst[v] = f.Data[f.Idx(v, cell)]
	}
}

// SetCell stores all velocity values of a cell from src (length Q).
func (f *Field) SetCell(ix, iy, iz int, src []float64) {
	cell := f.D.Index(ix, iy, iz)
	for v := 0; v < f.Q; v++ {
		f.Data[f.Idx(v, cell)] = src[v]
	}
}

// Fill sets every value of every cell to the per-velocity values in src
// (length Q).
func (f *Field) Fill(src []float64) {
	n := f.D.Cells()
	for v := 0; v < f.Q; v++ {
		for c := 0; c < n; c++ {
			f.Data[f.Idx(v, c)] = src[v]
		}
	}
}

// Clone returns a deep copy of the field.
func (f *Field) Clone() *Field {
	g := &Field{Q: f.Q, D: f.D, Layout: f.Layout, Data: make([]float64, len(f.Data))}
	copy(g.Data, f.Data)
	return g
}

// ConvertLayout returns a copy of the field in the requested layout.
func (f *Field) ConvertLayout(l Layout) *Field {
	g := NewField(f.Q, f.D, l)
	n := f.D.Cells()
	for v := 0; v < f.Q; v++ {
		for c := 0; c < n; c++ {
			g.Data[g.Idx(v, c)] = f.Data[f.Idx(v, c)]
		}
	}
	return g
}

// MaxAbsDiff returns the largest absolute difference between two fields of
// identical shape, comparing cell by cell regardless of layout.
func MaxAbsDiff(a, b *Field) float64 {
	if a.Q != b.Q || a.D != b.D {
		panic("grid: MaxAbsDiff shape mismatch")
	}
	var worst float64
	n := a.D.Cells()
	for v := 0; v < a.Q; v++ {
		for c := 0; c < n; c++ {
			d := a.Data[a.Idx(v, c)] - b.Data[b.Idx(v, c)]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}
