package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMFlups(t *testing.T) {
	// 100 steps of 1e6 cells in 1 s = 100 MFlup/s.
	if got := MFlups(100, 1_000_000, time.Second); math.Abs(got-100) > 1e-9 {
		t.Errorf("MFlups = %g, want 100", got)
	}
	if got := MFlups(1, 1, 0); got != 0 {
		t.Errorf("MFlups with zero time = %g, want 0", got)
	}
	if got := MFlupsFromSeconds(300, 64000, 2.0); math.Abs(got-9.6) > 1e-9 {
		t.Errorf("MFlupsFromSeconds = %g, want 9.6", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4.8, 40, 12})
	if s.Min != 4.8 || s.Max != 40 || s.Median != 12 || s.N != 3 {
		t.Errorf("Summary = %+v", s)
	}
	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Errorf("even median = %g, want 2.5", even.Median)
	}
	if z := Summarize(nil); z.N != 0 || z.Max != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Summarize mutated input: %v", in)
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestSummaryOrderingProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, math.Mod(x, 1e6))
			}
		}
		s := Summarize(clean)
		if len(clean) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		if f := r.Range(2, 5); f < 2 || f >= 5 {
			t.Fatalf("Range out of range: %g", f)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(1)
	n := 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Norm mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.08 {
		t.Errorf("Norm variance = %g, want ~1", variance)
	}
}

func TestMAPE(t *testing.T) {
	// (|1.1-1|/1 + |1.8-2|/2) / 2 = (0.1 + 0.1) / 2
	if got := MAPE([]float64{1, 2}, []float64{1.1, 1.8}); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MAPE = %g, want 0.1", got)
	}
	// Zero-observation pairs are skipped, not division-by-zero poison.
	if got := MAPE([]float64{0, 2}, []float64{5, 3}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MAPE with zero obs = %g, want 0.5", got)
	}
	if !math.IsNaN(MAPE(nil, nil)) {
		t.Error("MAPE(nil) must be NaN")
	}
	if !math.IsNaN(MAPE([]float64{0}, []float64{1})) {
		t.Error("MAPE with only zero observations must be NaN")
	}
	if !math.IsNaN(MAPE([]float64{1}, []float64{1, 2})) {
		t.Error("MAPE with mismatched lengths must be NaN")
	}
}

func TestPearson(t *testing.T) {
	up := []float64{1, 2, 3, 4}
	if got := Pearson(up, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson on a perfect line = %g, want 1", got)
	}
	if got := Pearson(up, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Errorf("Pearson on a descending line = %g, want -1", got)
	}
	if !math.IsNaN(Pearson(up, []float64{3, 3, 3, 3})) {
		t.Error("Pearson with zero variance must be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Error("Pearson on a single point must be NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %g, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %g, want 0", got)
	}
}
