// Package metrics provides the paper's performance quantities (MFlup/s,
// hardware efficiency), simple order statistics for communication-balance
// reporting (min/median/max, Fig. 9), and a deterministic random number
// generator for reproducible load-imbalance injection.
package metrics

import (
	"math"
	"sort"
	"time"
)

// MFlups returns million fluid lattice-point updates per second for a run
// that updated nFluidCells interior cells over steps time steps in elapsed
// wall time (the paper's Eq. 4: P = s·N_fl / (T(s)·10⁶)). Ghost-cell
// updates are deliberately excluded, matching the paper's metric.
func MFlups(steps, nFluidCells int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(steps) * float64(nFluidCells) / elapsed.Seconds() / 1e6
}

// MFlupsFromSeconds is MFlups with an explicit time in seconds, for
// simulated (virtual-clock) results.
func MFlupsFromSeconds(steps, nFluidCells int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(steps) * float64(nFluidCells) / seconds / 1e6
}

// Summary holds order statistics of a sample, used for the paper's
// min/median/max communication-time plots.
type Summary struct {
	Min, Median, Max, Mean float64
	N                      int
}

// Summarize computes min/median/max/mean of xs. It returns a zero Summary
// for an empty sample. The median of an even sample is the mean of the two
// central values.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	med := s[len(s)/2]
	if len(s)%2 == 0 {
		med = (s[len(s)/2-1] + s[len(s)/2]) / 2
	}
	return Summary{Min: s[0], Median: med, Max: s[len(s)-1], Mean: sum / float64(len(s)), N: len(s)}
}

// SummarizeDurations is Summarize over time.Durations, in seconds.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return Summarize(xs)
}

// RNG is a SplitMix64 pseudo-random generator: tiny, fast and fully
// deterministic across platforms, used to inject reproducible load
// imbalance into the performance simulator.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Range returns a uniform value in [lo,hi).
func (r *RNG) Range(lo, hi float64) float64 { return lo + (hi-lo)*r.Float64() }

// Norm returns an approximately standard normal value (sum of 12 uniforms,
// Irwin-Hall); adequate for jitter injection and fully deterministic.
func (r *RNG) Norm() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// MAPE returns the mean absolute percentage error of predictions pred
// against observations obs, as a fraction (0.12 = 12%). Pairs whose
// observation is zero are skipped (percentage error is undefined there);
// if every pair is skipped, or the slices are empty or mismatched, MAPE
// returns NaN. This is the fitness measure of the observe-predict bridge
// (calibration error of perfsim against the real solver).
func MAPE(obs, pred []float64) float64 {
	if len(obs) == 0 || len(obs) != len(pred) {
		return math.NaN()
	}
	var sum float64
	n := 0
	for i, o := range obs {
		if o == 0 {
			continue
		}
		sum += math.Abs(pred[i]-o) / math.Abs(o)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Pearson returns the Pearson correlation coefficient of a and b, or NaN
// for mismatched/short samples or zero variance. Paired with MAPE it
// reports whether predictions track the observed trend even when their
// absolute scale is off.
func Pearson(a, b []float64) float64 {
	if len(a) < 2 || len(a) != len(b) {
		return math.NaN()
	}
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(va*vb)
}

// GeoMean returns the geometric mean of xs (all values must be positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
