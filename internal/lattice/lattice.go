// Package lattice defines the discrete velocity models used by the lattice
// Boltzmann solver: the standard D3Q19 lattice (2nd-order Hermite
// equilibrium, Navier-Stokes regime) and the higher-order D3Q39 lattice of
// Shan, Yuan and Chen (3rd-order Hermite equilibrium, finite-Knudsen
// regime), as studied in Randles et al., "Performance Analysis of the
// Lattice Boltzmann Model Beyond Navier-Stokes" (IPDPS 2013).
//
// A Model carries the velocity set, quadrature weights and lattice speed of
// sound, and provides equilibrium distributions and macroscopic moments.
// All slices returned by the constructors are freshly allocated; callers may
// not mutate a Model shared across goroutines.
package lattice

import (
	"fmt"
	"math"
)

// Model describes a discrete velocity set (a "DdQq" lattice) together with
// its Gauss-Hermite quadrature weights.
//
// The velocity ordering follows the paper: all moving velocities first
// (grouped by neighbor order), the rest velocity last, so that index Q-1 is
// the lattice point itself ("the 19th and 39th values are for the lattice
// point itself").
type Model struct {
	// Name is the conventional lattice name, e.g. "D3Q19".
	Name string
	// Q is the number of discrete velocities.
	Q int
	// CsSq is the squared lattice speed of sound c_s².
	CsSq float64
	// Cx, Cy, Cz are the integer components of each discrete velocity.
	Cx, Cy, Cz []int
	// W holds the quadrature weight of each velocity; the weights sum to 1.
	W []float64
	// Opp maps each velocity index to the index of the opposite velocity.
	Opp []int
	// Order is the Hermite expansion order of the equilibrium (2 or 3).
	Order int
	// MaxSpeed is the largest |component| over all velocities. It is the
	// number of lattice planes a particle can cross per step along an axis,
	// and therefore the fundamental halo width k used by ghost-cell
	// exchanges (a ghost depth of d requires d·k halo planes).
	MaxSpeed int
}

// D3Q19 returns the standard 19-velocity cubic lattice: 6 first neighbors,
// 12 second neighbors and the rest velocity, with c_s² = 1/3 and weights
// 1/18, 1/36 and 1/3 respectively (paper Table I). Its tensor moments are
// isotropic through 4th order, which supports the 2nd-order Hermite
// equilibrium and recovers Navier-Stokes hydrodynamics.
func D3Q19() *Model {
	m := &Model{Name: "D3Q19", CsSq: 1.0 / 3.0, Order: 2}
	// First neighbors (distance 1).
	m.add(axisVectors(1), 1.0/18.0)
	// Second neighbors (distance sqrt(2)).
	m.add(faceDiagonals(1), 1.0/36.0)
	// Rest velocity, last by convention.
	m.add([][3]int{{0, 0, 0}}, 1.0/3.0)
	m.finish()
	return m
}

// D3Q39 returns the 39-velocity Gauss-Hermite lattice of Shan, Yuan & Chen
// with c_s² = 2/3: rest + 6×(±1,0,0) + 8×(±1,±1,±1) + 6×(±2,0,0) +
// 12×(±2,±2,0) + 6×(±3,0,0). Weights are 1/12, 1/12, 1/27, 2/135, 1/432 and
// 1/1620 (the paper's Table I prints 1/142 for the (2,2,0) shell, which is a
// transcription error: only 1/432 normalizes the weights and yields the
// 6th-order isotropy required for the 3rd-order Hermite expansion; see the
// tests). Particles move up to MaxSpeed = 3 planes per step.
func D3Q39() *Model {
	m := &Model{Name: "D3Q39", CsSq: 2.0 / 3.0, Order: 3}
	// Neighbor order 1: distance 1.
	m.add(axisVectors(1), 1.0/12.0)
	// Neighbor order 2: distance sqrt(3).
	m.add(cubeDiagonals(1), 1.0/27.0)
	// Neighbor order 3: distance 2.
	m.add(axisVectors(2), 2.0/135.0)
	// Neighbor order 4: distance 2*sqrt(2).
	m.add(faceDiagonals(2), 1.0/432.0)
	// Neighbor order 5: distance 3.
	m.add(axisVectors(3), 1.0/1620.0)
	// Rest velocity, last by convention.
	m.add([][3]int{{0, 0, 0}}, 1.0/12.0)
	m.finish()
	return m
}

// D3Q27 returns the full 27-velocity cubic lattice ("models of up to 27
// neighbors", the prior state of the art the paper's abstract cites):
// rest + 6 axis + 12 face-diagonal + 8 cube-diagonal velocities with
// c_s² = 1/3 and weights 8/27, 2/27, 1/54, 1/216. Like D3Q19 it carries
// 4th-order isotropy and a 2nd-order equilibrium; it is provided for
// library completeness and cross-lattice checks.
func D3Q27() *Model {
	m := &Model{Name: "D3Q27", CsSq: 1.0 / 3.0, Order: 2}
	m.add(axisVectors(1), 2.0/27.0)
	m.add(faceDiagonals(1), 1.0/54.0)
	m.add(cubeDiagonals(1), 1.0/216.0)
	// Rest velocity, last by convention.
	m.add([][3]int{{0, 0, 0}}, 8.0/27.0)
	m.finish()
	return m
}

// ByName returns the model with the given conventional name.
func ByName(name string) (*Model, error) {
	switch name {
	case "D3Q19", "d3q19", "q19":
		return D3Q19(), nil
	case "D3Q27", "d3q27", "q27":
		return D3Q27(), nil
	case "D3Q39", "d3q39", "q39":
		return D3Q39(), nil
	}
	return nil, fmt.Errorf("lattice: unknown model %q (want D3Q19, D3Q27 or D3Q39)", name)
}

func (m *Model) add(vs [][3]int, w float64) {
	for _, v := range vs {
		m.Cx = append(m.Cx, v[0])
		m.Cy = append(m.Cy, v[1])
		m.Cz = append(m.Cz, v[2])
		m.W = append(m.W, w)
	}
}

func (m *Model) finish() {
	m.Q = len(m.W)
	m.Opp = make([]int, m.Q)
	for i := 0; i < m.Q; i++ {
		m.Opp[i] = -1
		for j := 0; j < m.Q; j++ {
			if m.Cx[j] == -m.Cx[i] && m.Cy[j] == -m.Cy[i] && m.Cz[j] == -m.Cz[i] {
				m.Opp[i] = j
				break
			}
		}
		if m.Opp[i] < 0 {
			panic("lattice: velocity set is not symmetric")
		}
		if s := absInt(m.Cx[i]); s > m.MaxSpeed {
			m.MaxSpeed = s
		}
		if s := absInt(m.Cy[i]); s > m.MaxSpeed {
			m.MaxSpeed = s
		}
		if s := absInt(m.Cz[i]); s > m.MaxSpeed {
			m.MaxSpeed = s
		}
	}
}

// axisVectors returns the six vectors (±s,0,0), (0,±s,0), (0,0,±s).
func axisVectors(s int) [][3]int {
	return [][3]int{
		{s, 0, 0}, {-s, 0, 0},
		{0, s, 0}, {0, -s, 0},
		{0, 0, s}, {0, 0, -s},
	}
}

// faceDiagonals returns the twelve vectors with two components ±s and one 0.
func faceDiagonals(s int) [][3]int {
	var vs [][3]int
	for _, a := range []int{s, -s} {
		for _, b := range []int{s, -s} {
			vs = append(vs, [3]int{a, b, 0}, [3]int{a, 0, b}, [3]int{0, a, b})
		}
	}
	return vs
}

// cubeDiagonals returns the eight vectors (±s,±s,±s).
func cubeDiagonals(s int) [][3]int {
	var vs [][3]int
	for _, a := range []int{s, -s} {
		for _, b := range []int{s, -s} {
			for _, c := range []int{s, -s} {
				vs = append(vs, [3]int{a, b, c})
			}
		}
	}
	return vs
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// EquilibriumAt returns the single-velocity equilibrium distribution
// f_i^eq(ρ,u) using the model's Hermite expansion order.
//
// Order 2 (paper Eq. 2, with the standard factor-of-two in the u² term):
//
//	f_i^eq = w_i ρ [1 + (c·u)/c_s² + (c·u)²/(2c_s⁴) − u²/(2c_s²)]
//
// Order 3 adds the term (paper Eq. 3) related to the velocity-dependent
// viscosity of the fluid:
//
//   - w_i ρ (c·u)/(6c_s²) [(c·u)²/c_s⁴ − 3u²/c_s²]
func (m *Model) EquilibriumAt(i int, rho, ux, uy, uz float64) float64 {
	cs2 := m.CsSq
	cu := float64(m.Cx[i])*ux + float64(m.Cy[i])*uy + float64(m.Cz[i])*uz
	u2 := ux*ux + uy*uy + uz*uz
	e := 1 + cu/cs2 + cu*cu/(2*cs2*cs2) - u2/(2*cs2)
	if m.Order >= 3 {
		e += cu / (6 * cs2) * (cu*cu/(cs2*cs2) - 3*u2/cs2)
	}
	return m.W[i] * rho * e
}

// Equilibrium fills feq (length Q) with the equilibrium distribution for
// density rho and velocity (ux,uy,uz).
func (m *Model) Equilibrium(rho, ux, uy, uz float64, feq []float64) {
	if len(feq) != m.Q {
		panic("lattice: Equilibrium buffer has wrong length")
	}
	for i := 0; i < m.Q; i++ {
		feq[i] = m.EquilibriumAt(i, rho, ux, uy, uz)
	}
}

// Moments returns the macroscopic density and momentum density
// (ρ, ρu_x, ρu_y, ρu_z) of a distribution f (length Q).
func (m *Model) Moments(f []float64) (rho, jx, jy, jz float64) {
	for i := 0; i < m.Q; i++ {
		rho += f[i]
		jx += f[i] * float64(m.Cx[i])
		jy += f[i] * float64(m.Cy[i])
		jz += f[i] * float64(m.Cz[i])
	}
	return
}

// Velocity returns the macroscopic velocity of a distribution f.
func (m *Model) Velocity(f []float64) (ux, uy, uz float64) {
	rho, jx, jy, jz := m.Moments(f)
	return jx / rho, jy / rho, jz / rho
}

// Viscosity returns the kinematic shear viscosity implied by the BGK
// relaxation time tau on this lattice: ν = c_s²(τ − ½).
func (m *Model) Viscosity(tau float64) float64 {
	return m.CsSq * (tau - 0.5)
}

// TauForViscosity returns the BGK relaxation time that yields kinematic
// viscosity nu on this lattice: τ = ν/c_s² + ½.
func (m *Model) TauForViscosity(nu float64) float64 {
	return nu/m.CsSq + 0.5
}

// NeighborOrderDistance returns the Euclidean length of velocity i in
// lattice units (the "Distance" column of the paper's Table I).
func (m *Model) NeighborOrderDistance(i int) float64 {
	c2 := m.Cx[i]*m.Cx[i] + m.Cy[i]*m.Cy[i] + m.Cz[i]*m.Cz[i]
	return math.Sqrt(float64(c2))
}

// Validate checks the internal consistency of the velocity set: weights sum
// to one, odd moments vanish, the second moment equals c_s²δ, and opposite
// pairs are exact. It returns a descriptive error on the first violation.
func (m *Model) Validate() error {
	const tol = 1e-12
	var sw float64
	for _, w := range m.W {
		if w <= 0 {
			return fmt.Errorf("lattice %s: non-positive weight %g", m.Name, w)
		}
		sw += w
	}
	if math.Abs(sw-1) > tol {
		return fmt.Errorf("lattice %s: weights sum to %.15f, want 1", m.Name, sw)
	}
	for a := 0; a < 3; a++ {
		var m1 float64
		for i := 0; i < m.Q; i++ {
			m1 += m.W[i] * float64(m.component(i, a))
		}
		if math.Abs(m1) > tol {
			return fmt.Errorf("lattice %s: first moment axis %d = %g, want 0", m.Name, a, m1)
		}
		for b := 0; b < 3; b++ {
			var m2 float64
			for i := 0; i < m.Q; i++ {
				m2 += m.W[i] * float64(m.component(i, a)) * float64(m.component(i, b))
			}
			want := 0.0
			if a == b {
				want = m.CsSq
			}
			if math.Abs(m2-want) > tol {
				return fmt.Errorf("lattice %s: second moment (%d,%d) = %g, want %g", m.Name, a, b, m2, want)
			}
		}
	}
	for i := 0; i < m.Q; i++ {
		j := m.Opp[i]
		if m.Cx[j] != -m.Cx[i] || m.Cy[j] != -m.Cy[i] || m.Cz[j] != -m.Cz[i] {
			return fmt.Errorf("lattice %s: Opp[%d]=%d is not the opposite velocity", m.Name, i, j)
		}
	}
	return nil
}

func (m *Model) component(i, axis int) int {
	switch axis {
	case 0:
		return m.Cx[i]
	case 1:
		return m.Cy[i]
	default:
		return m.Cz[i]
	}
}

// LatticeMoment returns the lattice tensor moment Σ_i w_i Π_k c_{i,axes[k]}
// for the given multi-index of axes (each 0, 1 or 2).
func (m *Model) LatticeMoment(axes []int) float64 {
	var s float64
	for i := 0; i < m.Q; i++ {
		p := m.W[i]
		for _, a := range axes {
			p *= float64(m.component(i, a))
		}
		s += p
	}
	return s
}

// IsotropicMoment returns the moment of an isotropic Gaussian with variance
// csSq for the given multi-index: zero for odd rank, and for even rank 2n
// the sum over all perfect pairings of Π δ(a,b)·csSq.
func IsotropicMoment(csSq float64, axes []int) float64 {
	if len(axes)%2 == 1 {
		return 0
	}
	if len(axes) == 0 {
		return 1
	}
	// Pair axes[0] with each remaining axis in turn and recurse.
	var s float64
	first := axes[0]
	rest := axes[1:]
	for j, b := range rest {
		if first != b {
			continue
		}
		sub := make([]int, 0, len(rest)-1)
		sub = append(sub, rest[:j]...)
		sub = append(sub, rest[j+1:]...)
		s += csSq * IsotropicMoment(csSq, sub)
	}
	return s
}

// IsotropyDefect returns the largest absolute difference between the lattice
// moments of the given rank and the corresponding isotropic moments. A
// lattice supports an order-n Hermite equilibrium when its moments are
// isotropic through rank 2n (e.g. rank 6 for the D3Q39's 3rd-order
// expansion).
func (m *Model) IsotropyDefect(rank int) float64 {
	axes := make([]int, rank)
	var worst float64
	var walk func(k int)
	walk = func(k int) {
		if k == rank {
			d := math.Abs(m.LatticeMoment(axes) - IsotropicMoment(m.CsSq, axes))
			if d > worst {
				worst = d
			}
			return
		}
		for a := 0; a < 3; a++ {
			axes[k] = a
			walk(k + 1)
		}
	}
	walk(0)
	return worst
}

// IsotropyOrder returns the highest tensor rank r ≤ maxRank such that all
// lattice moments of rank ≤ r match the isotropic Gaussian moments to within
// tol.
func (m *Model) IsotropyOrder(maxRank int, tol float64) int {
	order := 0
	for r := 1; r <= maxRank; r++ {
		if m.IsotropyDefect(r) > tol {
			break
		}
		order = r
	}
	return order
}
