package lattice

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hermite"
)

func TestD3Q19Counts(t *testing.T) {
	m := D3Q19()
	if m.Q != 19 {
		t.Fatalf("Q = %d, want 19", m.Q)
	}
	if m.MaxSpeed != 1 {
		t.Errorf("MaxSpeed = %d, want 1", m.MaxSpeed)
	}
	if m.CsSq != 1.0/3.0 {
		t.Errorf("CsSq = %g, want 1/3", m.CsSq)
	}
	if m.Order != 2 {
		t.Errorf("Order = %d, want 2", m.Order)
	}
	// Rest velocity last, per the paper ("the 19th value is the point itself").
	last := m.Q - 1
	if m.Cx[last] != 0 || m.Cy[last] != 0 || m.Cz[last] != 0 {
		t.Errorf("velocity %d = (%d,%d,%d), want rest", last, m.Cx[last], m.Cy[last], m.Cz[last])
	}
	if m.W[last] != 1.0/3.0 {
		t.Errorf("rest weight = %g, want 1/3", m.W[last])
	}
}

func TestD3Q39Counts(t *testing.T) {
	m := D3Q39()
	if m.Q != 39 {
		t.Fatalf("Q = %d, want 39", m.Q)
	}
	if m.MaxSpeed != 3 {
		t.Errorf("MaxSpeed = %d, want 3 (velocity (3,0,0) exists)", m.MaxSpeed)
	}
	if m.CsSq != 2.0/3.0 {
		t.Errorf("CsSq = %g, want 2/3", m.CsSq)
	}
	if m.Order != 3 {
		t.Errorf("Order = %d, want 3", m.Order)
	}
	last := m.Q - 1
	if m.Cx[last] != 0 || m.Cy[last] != 0 || m.Cz[last] != 0 {
		t.Errorf("velocity %d = (%d,%d,%d), want rest", last, m.Cx[last], m.Cy[last], m.Cz[last])
	}
	if m.W[last] != 1.0/12.0 {
		t.Errorf("rest weight = %g, want 1/12", m.W[last])
	}
}

// TestTableIShells checks the shell structure of the paper's Table I: the
// neighbor orders, distances and weights of each velocity shell.
func TestTableIShells(t *testing.T) {
	type shell struct {
		count    int
		weight   float64
		distance float64
	}
	cases := []struct {
		model  *Model
		shells []shell
	}{
		{D3Q19(), []shell{
			{6, 1.0 / 18.0, 1},
			{12, 1.0 / 36.0, math.Sqrt2},
			{1, 1.0 / 3.0, 0},
		}},
		{D3Q39(), []shell{
			{6, 1.0 / 12.0, 1},
			{8, 1.0 / 27.0, math.Sqrt(3)},
			{6, 2.0 / 135.0, 2},
			{12, 1.0 / 432.0, 2 * math.Sqrt2},
			{6, 1.0 / 1620.0, 3},
			{1, 1.0 / 12.0, 0},
		}},
	}
	for _, c := range cases {
		i := 0
		for si, s := range c.shells {
			for k := 0; k < s.count; k++ {
				if c.model.W[i] != s.weight {
					t.Errorf("%s shell %d velocity %d: weight %g, want %g", c.model.Name, si, i, c.model.W[i], s.weight)
				}
				if d := c.model.NeighborOrderDistance(i); math.Abs(d-s.distance) > 1e-12 {
					t.Errorf("%s shell %d velocity %d: distance %g, want %g", c.model.Name, si, i, d, s.distance)
				}
				i++
			}
		}
		if i != c.model.Q {
			t.Errorf("%s: shells cover %d velocities, want %d", c.model.Name, i, c.model.Q)
		}
	}
}

func TestValidate(t *testing.T) {
	for _, m := range []*Model{D3Q19(), D3Q39()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

// TestPaperWeightTypo documents the Table I transcription error: replacing
// the (2,2,0) shell weight 1/432 with the printed 1/142 breaks weight
// normalization, so 1/432 is the value the authors must have used.
func TestPaperWeightTypo(t *testing.T) {
	m := D3Q39()
	var sum float64
	for i := range m.W {
		w := m.W[i]
		if w == 1.0/432.0 {
			w = 1.0 / 142.0
		}
		sum += w
	}
	if math.Abs(sum-1) < 1e-6 {
		t.Errorf("weights with 1/142 sum to %v; expected a clear violation of 1", sum)
	}
}

// TestIsotropyOrders verifies the central claim of §II: a 3rd-order Hermite
// truncation requires 6th-order isotropy, which D3Q39 has and D3Q19 does
// not; D3Q19 provides the 4th-order isotropy needed for Navier-Stokes.
func TestIsotropyOrders(t *testing.T) {
	const tol = 1e-12
	q19 := D3Q19()
	if got := q19.IsotropyOrder(6, tol); got != 5 {
		// Rank 5 is an odd rank (vanishes by symmetry); rank 6 must fail.
		t.Errorf("D3Q19 isotropy order = %d, want 5 (isotropic through 4, odd 5 vanishes, fails at 6)", got)
	}
	if d := q19.IsotropyDefect(4); d > tol {
		t.Errorf("D3Q19 rank-4 defect = %g, want 0", d)
	}
	if d := q19.IsotropyDefect(6); d < 1e-3 {
		t.Errorf("D3Q19 rank-6 defect = %g, expected a substantial violation", d)
	}
	q39 := D3Q39()
	if got := q39.IsotropyOrder(7, tol); got != 7 {
		t.Errorf("D3Q39 isotropy order = %d, want 7 (isotropic through 6, odd 7 vanishes)", got)
	}
	if d := q39.IsotropyDefect(8); d < 1e-3 {
		t.Errorf("D3Q39 rank-8 defect = %g; 8th order isotropy is not expected", d)
	}
}

// TestIsotropicMoment checks the pairing formula on known Gaussian moments.
func TestIsotropicMoment(t *testing.T) {
	cs2 := 0.7
	cases := []struct {
		axes []int
		want float64
	}{
		{[]int{}, 1},
		{[]int{0}, 0},
		{[]int{0, 0}, cs2},
		{[]int{0, 1}, 0},
		{[]int{0, 0, 1, 1}, cs2 * cs2},
		{[]int{0, 0, 0, 0}, 3 * cs2 * cs2},
		{[]int{0, 0, 0, 0, 0, 0}, 15 * cs2 * cs2 * cs2},
		{[]int{0, 0, 0, 0, 1, 1}, 3 * cs2 * cs2 * cs2},
		{[]int{0, 0, 1, 1, 2, 2}, cs2 * cs2 * cs2},
	}
	for _, c := range cases {
		if got := IsotropicMoment(cs2, c.axes); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("IsotropicMoment(%v) = %g, want %g", c.axes, got, c.want)
		}
	}
}

// TestEquilibriumMoments: the equilibrium must carry exactly the target
// density and momentum for both models (a conservation prerequisite).
func TestEquilibriumMoments(t *testing.T) {
	for _, m := range []*Model{D3Q19(), D3Q39()} {
		feq := make([]float64, m.Q)
		rho0, ux0, uy0, uz0 := 1.07, 0.03, -0.02, 0.015
		m.Equilibrium(rho0, ux0, uy0, uz0, feq)
		rho, jx, jy, jz := m.Moments(feq)
		if math.Abs(rho-rho0) > 1e-13 {
			t.Errorf("%s: equilibrium density %g, want %g", m.Name, rho, rho0)
		}
		for _, c := range []struct {
			got, want float64
			name      string
		}{
			{jx, rho0 * ux0, "jx"}, {jy, rho0 * uy0, "jy"}, {jz, rho0 * uz0, "jz"},
		} {
			if math.Abs(c.got-c.want) > 1e-13 {
				t.Errorf("%s: equilibrium %s = %g, want %g", m.Name, c.name, c.got, c.want)
			}
		}
	}
}

// TestEquilibriumSecondMoment: at order ≥2 the equilibrium pressure tensor
// must equal ρ(c_s²δ_ab + u_a u_b), the Euler-level stress.
func TestEquilibriumSecondMoment(t *testing.T) {
	for _, m := range []*Model{D3Q19(), D3Q39()} {
		feq := make([]float64, m.Q)
		rho0, u := 0.93, [3]float64{0.04, -0.01, 0.02}
		m.Equilibrium(rho0, u[0], u[1], u[2], feq)
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				var pab float64
				for i := 0; i < m.Q; i++ {
					pab += feq[i] * float64(m.component(i, a)) * float64(m.component(i, b))
				}
				want := rho0 * u[a] * u[b]
				if a == b {
					want += rho0 * m.CsSq
				}
				if math.Abs(pab-want) > 1e-13 {
					t.Errorf("%s: P[%d][%d] = %g, want %g", m.Name, a, b, pab, want)
				}
			}
		}
	}
}

// TestEquilibriumThirdMoment: the D3Q39's 3rd-order expansion must recover
// the full Maxwellian third moment ρ[c_s²(u_aδ_bc+u_bδ_ac+u_cδ_ab)+u_au_bu_c],
// which is what extends validity beyond Navier-Stokes; D3Q19 at 2nd order
// must miss the u³ contribution.
func TestEquilibriumThirdMoment(t *testing.T) {
	m := D3Q39()
	feq := make([]float64, m.Q)
	rho0, u := 1.11, [3]float64{0.05, -0.03, 0.02}
	m.Equilibrium(rho0, u[0], u[1], u[2], feq)
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 3; c++ {
				var q float64
				for i := 0; i < m.Q; i++ {
					q += feq[i] * float64(m.component(i, a)) * float64(m.component(i, b)) * float64(m.component(i, c))
				}
				want := rho0 * u[a] * u[b] * u[c]
				if b == c {
					want += rho0 * m.CsSq * u[a]
				}
				if a == c {
					want += rho0 * m.CsSq * u[b]
				}
				if a == b {
					want += rho0 * m.CsSq * u[c]
				}
				if math.Abs(q-want) > 1e-12 {
					t.Errorf("Q[%d][%d][%d] = %g, want %g", a, b, c, q, want)
				}
			}
		}
	}
	// D3Q19 at order 2 misses the u_a u_b u_c term: check the xxx moment.
	m19 := D3Q19()
	feq19 := make([]float64, m19.Q)
	m19.Equilibrium(rho0, u[0], u[1], u[2], feq19)
	var qxxx float64
	for i := 0; i < m19.Q; i++ {
		cx := float64(m19.Cx[i])
		qxxx += feq19[i] * cx * cx * cx
	}
	want := rho0 * (3*m19.CsSq*u[0] + u[0]*u[0]*u[0])
	if math.Abs(qxxx-want) < 1e-9 {
		t.Errorf("D3Q19 Qxxx = %g unexpectedly matches the full Maxwellian %g", qxxx, want)
	}
}

// TestEquilibriumMatchesHermite cross-validates the closed-form equilibria
// against the generic tensor Hermite expansion from package hermite.
func TestEquilibriumMatchesHermite(t *testing.T) {
	for _, m := range []*Model{D3Q19(), D3Q39()} {
		cfg := quick.Config{MaxCount: 200}
		f := func(rhoRaw, uxRaw, uyRaw, uzRaw float64) bool {
			rho := 0.5 + math.Abs(math.Mod(rhoRaw, 1.0))
			ux := math.Mod(uxRaw, 0.1)
			uy := math.Mod(uyRaw, 0.1)
			uz := math.Mod(uzRaw, 0.1)
			for i := 0; i < m.Q; i++ {
				c := [3]float64{float64(m.Cx[i]), float64(m.Cy[i]), float64(m.Cz[i])}
				want := hermite.Equilibrium(m.Order, m.W[i], m.CsSq, c, rho, ux, uy, uz)
				got := m.EquilibriumAt(i, rho, ux, uy, uz)
				if math.Abs(got-want) > 1e-13*math.Max(1, math.Abs(want)) {
					t.Logf("%s i=%d got %g want %g", m.Name, i, got, want)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &cfg); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

// TestEquilibriumZeroVelocity: at u=0 the equilibrium reduces to w_i ρ.
func TestEquilibriumZeroVelocity(t *testing.T) {
	for _, m := range []*Model{D3Q19(), D3Q39()} {
		feq := make([]float64, m.Q)
		m.Equilibrium(2.5, 0, 0, 0, feq)
		for i := range feq {
			if math.Abs(feq[i]-2.5*m.W[i]) > 1e-14 {
				t.Errorf("%s: feq[%d] = %g, want %g", m.Name, i, feq[i], 2.5*m.W[i])
			}
		}
	}
}

func TestViscosityRoundTrip(t *testing.T) {
	for _, m := range []*Model{D3Q19(), D3Q39()} {
		for _, tau := range []float64{0.6, 1.0, 1.7} {
			nu := m.Viscosity(tau)
			if back := m.TauForViscosity(nu); math.Abs(back-tau) > 1e-14 {
				t.Errorf("%s: tau %g -> nu %g -> tau %g", m.Name, tau, nu, back)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"D3Q19", "q19", "d3q39"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("D2Q9"); err == nil {
		t.Error("ByName(D2Q9) succeeded, want error")
	}
}

func TestOppositeInvolution(t *testing.T) {
	for _, m := range []*Model{D3Q19(), D3Q39()} {
		for i := 0; i < m.Q; i++ {
			if m.Opp[m.Opp[i]] != i {
				t.Errorf("%s: Opp not an involution at %d", m.Name, i)
			}
		}
	}
}
