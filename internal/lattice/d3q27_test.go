package lattice

import (
	"math"
	"testing"
)

func TestD3Q27Structure(t *testing.T) {
	m := D3Q27()
	if m.Q != 27 {
		t.Fatalf("Q = %d, want 27", m.Q)
	}
	if m.MaxSpeed != 1 {
		t.Errorf("MaxSpeed = %d, want 1", m.MaxSpeed)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	last := m.Q - 1
	if m.Cx[last] != 0 || m.Cy[last] != 0 || m.Cz[last] != 0 || m.W[last] != 8.0/27.0 {
		t.Errorf("rest velocity wrong: (%d,%d,%d) w=%g", m.Cx[last], m.Cy[last], m.Cz[last], m.W[last])
	}
}

func TestD3Q27Isotropy(t *testing.T) {
	m := D3Q27()
	// 4th-order isotropic (Navier-Stokes capable), fails at 6th like D3Q19.
	if got := m.IsotropyOrder(6, 1e-12); got != 5 {
		t.Errorf("isotropy order = %d, want 5", got)
	}
}

func TestD3Q27EquilibriumMoments(t *testing.T) {
	m := D3Q27()
	feq := make([]float64, m.Q)
	m.Equilibrium(1.2, 0.03, -0.02, 0.01, feq)
	rho, jx, jy, jz := m.Moments(feq)
	if math.Abs(rho-1.2) > 1e-13 || math.Abs(jx-1.2*0.03) > 1e-13 ||
		math.Abs(jy+1.2*0.02) > 1e-13 || math.Abs(jz-1.2*0.01) > 1e-13 {
		t.Errorf("moments: rho=%g j=(%g,%g,%g)", rho, jx, jy, jz)
	}
}

func TestD3Q27ByName(t *testing.T) {
	m, err := ByName("q27")
	if err != nil || m.Name != "D3Q27" {
		t.Errorf("ByName(q27) = %v, %v", m, err)
	}
}
