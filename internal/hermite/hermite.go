// Package hermite provides tensor Hermite polynomials on a discrete
// velocity lattice and a generic Grad-Hermite equilibrium builder.
//
// It exists to cross-validate the closed-form equilibria in package lattice:
// the truncated Hermite expansion
//
//	f_i^eq = w_i Σ_{n=0..N} (1/(n! c_s^{2n})) a^(n) : H^(n)(c_i)
//
// with coefficients a^(0)=ρ, a^(1)=ρu, a^(2)=ρuu, a^(3)=ρuuu must agree with
// the paper's Eq. (2) for N=2 and Eq. (3) for N=3 on lattices of sufficient
// isotropy order.
package hermite

// H2 returns the rank-2 tensor Hermite polynomial H^(2)_ab(c) = c_a c_b −
// c_s² δ_ab evaluated at the velocity c (components cx,cy,cz cast to
// float64).
func H2(csSq float64, c [3]float64, a, b int) float64 {
	v := c[a] * c[b]
	if a == b {
		v -= csSq
	}
	return v
}

// H3 returns the rank-3 tensor Hermite polynomial
// H^(3)_abc = c_a c_b c_c − c_s²(c_a δ_bc + c_b δ_ac + c_c δ_ab).
func H3(csSq float64, c [3]float64, a, b, d int) float64 {
	v := c[a] * c[b] * c[d]
	if b == d {
		v -= csSq * c[a]
	}
	if a == d {
		v -= csSq * c[b]
	}
	if a == b {
		v -= csSq * c[d]
	}
	return v
}

// Equilibrium returns the order-N Grad-Hermite equilibrium for a single
// discrete velocity c with weight w on a lattice with speed of sound
// squared csSq. Supported orders are 1, 2 and 3.
func Equilibrium(order int, w, csSq float64, c [3]float64, rho, ux, uy, uz float64) float64 {
	u := [3]float64{ux, uy, uz}
	// n = 0 term.
	e := 1.0
	// n = 1 term: (c·u)/c_s².
	cu := c[0]*u[0] + c[1]*u[1] + c[2]*u[2]
	if order >= 1 {
		e += cu / csSq
	}
	// n = 2 term: (1/(2c_s⁴)) u_a u_b H2_ab.
	if order >= 2 {
		var s float64
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				s += u[a] * u[b] * H2(csSq, c, a, b)
			}
		}
		e += s / (2 * csSq * csSq)
	}
	// n = 3 term: (1/(6c_s⁶)) u_a u_b u_d H3_abd.
	if order >= 3 {
		var s float64
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				for d := 0; d < 3; d++ {
					s += u[a] * u[b] * u[d] * H3(csSq, c, a, b, d)
				}
			}
		}
		e += s / (6 * csSq * csSq * csSq)
	}
	return w * rho * e
}
