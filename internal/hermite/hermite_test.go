package hermite

import (
	"math"
	"testing"
	"testing/quick"
)

func TestH2Symmetry(t *testing.T) {
	cs2 := 1.0 / 3.0
	c := [3]float64{1, -1, 0}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if H2(cs2, c, a, b) != H2(cs2, c, b, a) {
				t.Errorf("H2 not symmetric at (%d,%d)", a, b)
			}
		}
	}
	// Trace of H2 is c² − 3c_s².
	var tr float64
	for a := 0; a < 3; a++ {
		tr += H2(cs2, c, a, a)
	}
	want := 2 - 3*cs2
	if math.Abs(tr-want) > 1e-14 {
		t.Errorf("trace H2 = %g, want %g", tr, want)
	}
}

func TestH3FullSymmetry(t *testing.T) {
	cs2 := 2.0 / 3.0
	c := [3]float64{2, 0, -1}
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	base := H3(cs2, c, 0, 1, 2)
	for _, p := range perms {
		if got := H3(cs2, c, p[0], p[1], p[2]); math.Abs(got-base) > 1e-14 {
			t.Errorf("H3 not symmetric under %v: %g vs %g", p, got, base)
		}
	}
}

func TestH3Values(t *testing.T) {
	cs2 := 0.5
	c := [3]float64{1, 2, 3}
	// H3_xxx = cx³ − 3c_s²cx.
	if got, want := H3(cs2, c, 0, 0, 0), 1.0-3*0.5*1; math.Abs(got-want) > 1e-14 {
		t.Errorf("H3_xxx = %g, want %g", got, want)
	}
	// H3_xyz = cx·cy·cz (no delta terms).
	if got, want := H3(cs2, c, 0, 1, 2), 6.0; math.Abs(got-want) > 1e-14 {
		t.Errorf("H3_xyz = %g, want %g", got, want)
	}
	// H3_xxy = cx²cy − c_s²cy.
	if got, want := H3(cs2, c, 0, 0, 1), 1.0*2-0.5*2; math.Abs(got-want) > 1e-14 {
		t.Errorf("H3_xxy = %g, want %g", got, want)
	}
}

func TestEquilibriumOrderNesting(t *testing.T) {
	// Order n must equal order n-1 plus its own term; at u=0 all orders
	// give w·rho.
	w, cs2 := 1.0/18.0, 1.0/3.0
	c := [3]float64{1, 1, 0}
	if got := Equilibrium(3, w, cs2, c, 2.0, 0, 0, 0); math.Abs(got-2*w) > 1e-15 {
		t.Errorf("order 3 at rest = %g, want %g", got, 2*w)
	}
	prop := func(uxR, uyR, uzR float64) bool {
		ux := math.Mod(uxR, 0.1)
		uy := math.Mod(uyR, 0.1)
		uz := math.Mod(uzR, 0.1)
		if math.IsNaN(ux + uy + uz) {
			return true
		}
		e2 := Equilibrium(2, w, cs2, c, 1, ux, uy, uz)
		e3 := Equilibrium(3, w, cs2, c, 1, ux, uy, uz)
		// The order-3 expansion adds exactly the closed-form third Hermite
		// term: w·ρ·[cu³/(6c_s⁶) − cu·u²/(2c_s⁴)].
		cu := c[0]*ux + c[1]*uy + c[2]*uz
		u2 := ux*ux + uy*uy + uz*uz
		third := w * (cu*cu*cu/(6*cs2*cs2*cs2) - cu*u2/(2*cs2*cs2))
		return math.Abs((e3-e2)-third) <= 1e-15+1e-12*math.Abs(third)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEquilibriumLinearInRho(t *testing.T) {
	w, cs2 := 1.0/12.0, 2.0/3.0
	c := [3]float64{3, 0, 0}
	a := Equilibrium(3, w, cs2, c, 1.0, 0.02, -0.01, 0.03)
	b := Equilibrium(3, w, cs2, c, 2.5, 0.02, -0.01, 0.03)
	if math.Abs(b-2.5*a) > 1e-14 {
		t.Errorf("equilibrium not linear in rho: %g vs %g", b, 2.5*a)
	}
}
