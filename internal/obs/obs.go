// Package obs is the per-phase instrumentation layer: a nil-guarded
// recorder the steppers thread through their schedules, plus the trace
// and report emitters built on top of it.
//
// The phase taxonomy follows the paper's timing decomposition (Figs. 8-11
// break runs into compute, pack/unpack and exposed wire time): every span
// a stepper records is one leaf of the schedule — interior compute, a rim
// recomputed after an axis exchange, a pack into send buffers, a blocked
// wait on the wire, an unpack into ghosts, a boundary fixup pass, an open
// face fill, a sponge blend, or force/macro accounting. Spans never nest,
// so per-phase seconds sum to the instrumented wall time of the loop.
//
// Every Recorder method is a no-op on a nil receiver: the steppers keep a
// possibly-nil *Recorder and call it unconditionally, which keeps the
// uninstrumented hot path free of branches beyond the nil check (fenced
// by BenchmarkRecorderOverhead in internal/core).
package obs

import "time"

// Phase labels one leaf span of a stepper's schedule.
type Phase uint8

const (
	// Interior is bulk stream/collide (or fused) compute: the window GC-C
	// hides communication behind.
	Interior Phase = iota
	// Rim is the deferred recompute of the sub-regions adjacent to an
	// exchanged axis, run after that axis's ghosts arrive.
	Rim
	// Pack is copying border cells into send buffers (plus local periodic
	// wrap writes on undecomposed axes).
	Pack
	// Wire is time blocked on message arrival: Recv/Wait calls in the
	// exchangers, i.e. the exposed (un-hidden) communication time.
	Wire
	// Unpack is copying received halos into the ghost layer.
	Unpack
	// Fixup is the boundary fixup pass (bounce-back, Zou-He, outlets) over
	// the per-box fixup index.
	Fixup
	// Face is ghost-face synthesis on non-messaging boundaries: open-face
	// extrapolation and bounded-axis fills.
	Face
	// Sponge is the outlet sponge-layer blend.
	Sponge
	// Force is force/macro accounting: momentum-exchange sampling and the
	// per-step force series.
	Force
	// NumPhases bounds arrays indexed by Phase.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"interior", "rim", "pack", "wire", "unpack",
	"fixup", "face", "sponge", "force",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseByName returns the Phase with the given String form.
func PhaseByName(name string) (Phase, bool) {
	for p, n := range phaseNames {
		if n == name {
			return Phase(p), true
		}
	}
	return NumPhases, false
}

// NoAxis marks a span not attributed to a lattice axis (interior compute,
// fixup, the slab protocol's single exchange direction is axis 0 instead).
const NoAxis = -1

// axisSlots is the per-phase accumulator width: axes 0-2 plus one slot
// for NoAxis.
const axisSlots = 4

func axisSlot(axis int) int {
	if axis < 0 || axis >= 3 {
		return 3
	}
	return axis
}

// Event is one recorded span, kept only when tracing: offsets are from
// the run's shared epoch so ranks align on one timeline.
type Event struct {
	Phase Phase         `json:"phase"`
	Axis  int8          `json:"axis"`
	Start time.Duration `json:"start"`
	Dur   time.Duration `json:"dur"`
}

// Recorder accumulates one rank's per-phase time. It is not safe for
// concurrent use; each rank goroutine owns one (worker threads inside a
// rank never touch it — spans wrap whole parallel regions).
type Recorder struct {
	rank  int
	epoch time.Time
	trace bool

	durs   [NumPhases][axisSlots]time.Duration
	counts [NumPhases][axisSlots]int64
	bytes  [3]int64
	msgs   [3]int64
	events []Event
}

// New returns a recorder for one rank. epoch is the run's shared origin
// for trace timestamps; trace retains every span for WriteTrace.
func New(rank int, epoch time.Time, trace bool) *Recorder {
	return &Recorder{rank: rank, epoch: epoch, trace: trace}
}

// Begin stamps the start of a span. On a nil recorder it returns the zero
// time without reading the clock.
func (r *Recorder) Begin() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// End closes a span opened by Begin under a phase with no axis attribution.
func (r *Recorder) End(p Phase, t0 time.Time) {
	r.EndAxis(p, NoAxis, t0)
}

// EndAxis closes a span opened by Begin, attributing it to an axis
// (0=x, 1=y, 2=z, or NoAxis).
func (r *Recorder) EndAxis(p Phase, axis int, t0 time.Time) {
	if r == nil {
		return
	}
	now := time.Now()
	d := now.Sub(t0)
	s := axisSlot(axis)
	r.durs[p][s] += d
	r.counts[p][s]++
	if r.trace {
		r.events = append(r.events, Event{
			Phase: p, Axis: int8(axis), Start: t0.Sub(r.epoch), Dur: d,
		})
	}
}

// AddComm counts halo payload sent over one axis: bytes of field data and
// the number of messages carrying them.
func (r *Recorder) AddComm(axis int, bytes, msgs int64) {
	if r == nil {
		return
	}
	s := axisSlot(axis)
	if s == 3 {
		s = 0 // the slab protocol's single direction is the x axis
	}
	r.bytes[s] += bytes
	r.msgs[s] += msgs
}

// PhaseObs is the aggregate of one (phase, axis) pair on one rank.
type PhaseObs struct {
	Phase string `json:"phase"`
	// Axis is 0-2, or -1 when the phase is not axis-attributed.
	Axis    int     `json:"axis"`
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// RankObservation is the serializable summary of one rank's recorder,
// plus rank-level counters the harness fills in (fabric comm time, wire
// traffic, per-worker chunk counts).
type RankObservation struct {
	Rank   int        `json:"rank"`
	Phases []PhaseObs `json:"phases"`
	// CommSeconds is the fabric-level blocked time (comm.Rank.CommTime),
	// the quantity the paper's Fig. 9 summarizes across ranks.
	CommSeconds float64 `json:"comm_seconds"`
	// CommBytes/CommMsgs are halo payload sent per axis, counted by the
	// exchangers.
	CommBytes [3]int64 `json:"comm_bytes"`
	CommMsgs  [3]int64 `json:"comm_msgs"`
	// BytesSent/Messages are the rank's total wire traffic as counted by
	// the fabric (payload copies, all tags).
	BytesSent int64 `json:"bytes_sent"`
	Messages  int64 `json:"messages"`
	// FluidCells is the number of fluid lattice sites in the rank's owned
	// box (the paper's per-rank N_fl; the whole box volume on unmasked
	// domains) — the decomposition's load-balance view on sparse
	// geometries, where box volume and useful work diverge.
	FluidCells int64 `json:"fluid_cells,omitempty"`
	// WorkerChunks is the number of schedule chunks each worker thread
	// drained from the rank's pool — the load-imbalance view of thin-rim
	// phases (nil when the rank runs single-threaded).
	WorkerChunks []int64 `json:"worker_chunks,omitempty"`
	// WorkerWeights is the total chunk weight (fluid cells under sparse
	// traversal, cells otherwise) each worker thread drained — WorkerChunks
	// weighted by how much work each chunk actually carried (nil when the
	// rank runs single-threaded).
	WorkerWeights []int64 `json:"worker_weights,omitempty"`
	// Events are the raw trace spans; populated only when tracing.
	Events []Event `json:"-"`
}

// Observation snapshots the recorder. Safe on a nil recorder (returns a
// zero observation).
func (r *Recorder) Observation() RankObservation {
	if r == nil {
		return RankObservation{}
	}
	o := RankObservation{
		Rank:      r.rank,
		CommBytes: r.bytes,
		CommMsgs:  r.msgs,
		Events:    r.events,
	}
	for p := Phase(0); p < NumPhases; p++ {
		for s := 0; s < axisSlots; s++ {
			if r.counts[p][s] == 0 {
				continue
			}
			axis := s
			if s == 3 {
				axis = NoAxis
			}
			o.Phases = append(o.Phases, PhaseObs{
				Phase:   p.String(),
				Axis:    axis,
				Seconds: r.durs[p][s].Seconds(),
				Count:   r.counts[p][s],
			})
		}
	}
	return o
}

// Seconds returns the observation's total seconds in phase p across axes.
func (o *RankObservation) Seconds(p Phase) float64 {
	var sum float64
	name := p.String()
	for _, po := range o.Phases {
		if po.Phase == name {
			sum += po.Seconds
		}
	}
	return sum
}

// PhaseSeconds is a per-phase seconds vector indexed by Phase — the
// common currency of the observe-predict bridge (observed recorder
// totals on one side, perfsim's predicted schedule on the other).
type PhaseSeconds [NumPhases]float64

// Total sums the vector.
func (ps PhaseSeconds) Total() float64 {
	var sum float64
	for _, s := range ps {
		sum += s
	}
	return sum
}

// Vector folds the observation's per-axis aggregates into a per-phase
// seconds vector.
func (o *RankObservation) Vector() PhaseSeconds {
	var ps PhaseSeconds
	for _, po := range o.Phases {
		if p, ok := PhaseByName(po.Phase); ok {
			ps[p] += po.Seconds
		}
	}
	return ps
}
