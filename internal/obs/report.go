package obs

import (
	"encoding/json"
	"io"
	"runtime"

	"repro/internal/metrics"
)

// ReportSchema identifies the structured run-report JSON layout; bump on
// any breaking change (CI's golden-shape tests pin the current value).
const ReportSchema = "lbm-report/v1"

// MachineInfo identifies the host a run executed on.
type MachineInfo struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
}

// HostInfo describes the local machine.
func HostInfo() MachineInfo {
	return MachineInfo{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// RunConfig echoes the solver configuration a report describes. It is a
// plain-value mirror of core.Config (obs cannot import core).
type RunConfig struct {
	Model     string `json:"model"`
	NX        int    `json:"nx"`
	NY        int    `json:"ny"`
	NZ        int    `json:"nz"`
	Steps     int    `json:"steps"`
	Opt       string `json:"opt"`
	Collision string `json:"collision"`
	Stream    string `json:"stream"`
	Layout    string `json:"layout"`
	Fused     bool   `json:"fused"`
	Ranks     int    `json:"ranks"`
	Decomp    [3]int `json:"decomp"`
	Threads   int    `json:"threads"`
	Depth     [3]int `json:"depth"`
	Balance   string `json:"balance,omitempty"`
	Sparse    bool   `json:"sparse,omitempty"`
	Scenario  string `json:"scenario,omitempty"`
}

// Spread is an order-statistic summary across ranks (the paper's Fig. 9
// min/median/max view, plus the mean).
type Spread struct {
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	N      int     `json:"n"`
}

func spreadOf(s metrics.Summary) Spread {
	return Spread{Min: s.Min, Median: s.Median, Max: s.Max, Mean: s.Mean, N: s.N}
}

// PhaseSummary is one (phase, axis) row of the report's breakdown: the
// spread of per-rank seconds across ranks.
type PhaseSummary struct {
	Phase string `json:"phase"`
	// Axis is 0-2, or -1 when the phase is not axis-attributed.
	Axis    int    `json:"axis"`
	Seconds Spread `json:"seconds"`
	// Count is the total span count across ranks.
	Count int64 `json:"count"`
}

// CommReport aggregates the run's communication: the Fig. 9 per-rank
// comm-time spread and the wire traffic totals.
type CommReport struct {
	Seconds   Spread   `json:"seconds"`
	AxisBytes [3]int64 `json:"axis_bytes"`
	BytesSent int64    `json:"bytes_sent"`
	Messages  int64    `json:"messages"`
}

// RunStats carries the result-level quantities of one run into BuildReport.
type RunStats struct {
	WallSeconds     float64
	MFlups          float64
	InteriorUpdates int64
	GhostUpdates    int64
	// CommSeconds is the per-rank fabric comm time (one entry per rank).
	CommSeconds []float64
	// AxisBytes is the per-axis halo surface, bytes/rank/exchange.
	AxisBytes [3]int64
}

// Report is the structured run report: everything a later reader (CI
// trajectory, calibration fit) needs to interpret one run.
type Report struct {
	Schema          string      `json:"schema"`
	Machine         MachineInfo `json:"machine"`
	Config          RunConfig   `json:"config"`
	WallSeconds     float64     `json:"wall_seconds"`
	MFlups          float64     `json:"mflups"`
	InteriorUpdates int64       `json:"interior_updates"`
	GhostUpdates    int64       `json:"ghost_updates"`
	Comm            CommReport  `json:"comm"`
	// FluidCells is the spread of per-rank fluid-cell counts — the load
	// the -balance fluid cut policy equalizes. Present on masked observed
	// runs; absent (nil) when no rank reported a count.
	FluidCells *Spread `json:"fluid_cells,omitempty"`
	// WorkerWeights is the spread of drained chunk weight across every
	// worker of every rank's team — fluid cells under sparse traversal,
	// plain cells otherwise. Present on threaded observed runs.
	WorkerWeights *Spread           `json:"worker_weights,omitempty"`
	Phases        []PhaseSummary    `json:"phases"`
	Ranks         []RankObservation `json:"ranks,omitempty"`
}

// BuildReport aggregates per-rank observations into a Report: each
// (phase, axis) pair present on any rank becomes one summary row, in
// Phase order then axis order.
func BuildReport(cfg RunConfig, st RunStats, ranks []RankObservation) *Report {
	rep := &Report{
		Schema:          ReportSchema,
		Machine:         HostInfo(),
		Config:          cfg,
		WallSeconds:     st.WallSeconds,
		MFlups:          st.MFlups,
		InteriorUpdates: st.InteriorUpdates,
		GhostUpdates:    st.GhostUpdates,
		Ranks:           ranks,
	}
	rep.Comm.Seconds = spreadOf(metrics.Summarize(st.CommSeconds))
	rep.Comm.AxisBytes = st.AxisBytes
	var fluids, weights []float64
	for _, o := range ranks {
		rep.Comm.BytesSent += o.BytesSent
		rep.Comm.Messages += o.Messages
		if o.FluidCells > 0 {
			fluids = append(fluids, float64(o.FluidCells))
		}
		for _, w := range o.WorkerWeights {
			weights = append(weights, float64(w))
		}
	}
	if fluids != nil {
		s := spreadOf(metrics.Summarize(fluids))
		rep.FluidCells = &s
	}
	if weights != nil {
		s := spreadOf(metrics.Summarize(weights))
		rep.WorkerWeights = &s
	}
	for p := Phase(0); p < NumPhases; p++ {
		for _, axis := range [axisSlots]int{0, 1, 2, NoAxis} {
			var secs []float64
			var count int64
			for _, o := range ranks {
				for _, po := range o.Phases {
					if po.Phase == p.String() && po.Axis == axis {
						secs = append(secs, po.Seconds)
						count += po.Count
					}
				}
			}
			if len(secs) == 0 {
				continue
			}
			rep.Phases = append(rep.Phases, PhaseSummary{
				Phase:   p.String(),
				Axis:    axis,
				Seconds: spreadOf(metrics.Summarize(secs)),
				Count:   count,
			})
		}
	}
	return rep
}

// WriteReport serializes a report as indented JSON.
func WriteReport(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
