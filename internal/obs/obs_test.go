package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestPhaseNamesRoundTrip(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		got, ok := PhaseByName(p.String())
		if !ok || got != p {
			t.Errorf("PhaseByName(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := PhaseByName("no-such-phase"); ok {
		t.Error("PhaseByName accepted an unknown name")
	}
}

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	t0 := r.Begin()
	if !t0.IsZero() {
		t.Error("nil Begin read the clock")
	}
	r.End(Interior, t0)
	r.EndAxis(Rim, 1, t0)
	r.AddComm(0, 100, 1)
	if o := r.Observation(); o.Phases != nil || o.CommBytes != [3]int64{} {
		t.Errorf("nil Observation = %+v, want zero", o)
	}
}

func TestRecorderAccounting(t *testing.T) {
	r := New(3, time.Now(), false)
	t0 := r.Begin()
	time.Sleep(time.Millisecond)
	r.End(Interior, t0)
	t0 = r.Begin()
	r.EndAxis(Rim, 1, t0)
	t0 = r.Begin()
	r.EndAxis(Rim, 1, t0)
	r.AddComm(1, 512, 2)
	r.AddComm(NoAxis, 64, 1) // slab protocol: folds onto x

	o := r.Observation()
	if o.Rank != 3 {
		t.Errorf("rank = %d, want 3", o.Rank)
	}
	if s := o.Seconds(Interior); s < 0.5e-3 {
		t.Errorf("interior seconds = %g, want >= 0.5ms", s)
	}
	if o.CommBytes != [3]int64{64, 512, 0} || o.CommMsgs != [3]int64{1, 2, 0} {
		t.Errorf("comm = %v / %v", o.CommBytes, o.CommMsgs)
	}
	var rim *PhaseObs
	for i := range o.Phases {
		if o.Phases[i].Phase == Rim.String() {
			rim = &o.Phases[i]
		}
	}
	if rim == nil || rim.Axis != 1 || rim.Count != 2 {
		t.Fatalf("rim row = %+v, want axis 1 count 2", rim)
	}
	// Untouched phases must not appear.
	for _, po := range o.Phases {
		if po.Phase == Sponge.String() {
			t.Error("unrecorded phase present in observation")
		}
	}
}

func TestVectorMatchesSeconds(t *testing.T) {
	r := New(0, time.Now(), false)
	for axis := 0; axis < 3; axis++ {
		t0 := r.Begin()
		r.EndAxis(Face, axis, t0)
	}
	o := r.Observation()
	v := o.Vector()
	if v[Face] != o.Seconds(Face) {
		t.Errorf("Vector()[Face] = %g, Seconds(Face) = %g", v[Face], o.Seconds(Face))
	}
	if v.Total() != o.Seconds(Face) {
		t.Errorf("Total() = %g, want %g", v.Total(), o.Seconds(Face))
	}
}

// TestReportGoldenShape pins the run-report JSON layout: the schema tag
// and the top-level keys a later reader (CI trajectory, calibration fit)
// depends on.
func TestReportGoldenShape(t *testing.T) {
	r := New(0, time.Now(), false)
	t0 := r.Begin()
	r.End(Interior, t0)
	t0 = r.Begin()
	r.EndAxis(Pack, 0, t0)
	r.AddComm(0, 1024, 4)

	cfg := RunConfig{Model: "D3Q19", NX: 8, NY: 8, NZ: 8, Steps: 2, Opt: "GC",
		Ranks: 1, Decomp: [3]int{1, 1, 1}, Threads: 1, Depth: [3]int{1, 1, 1}}
	st := RunStats{WallSeconds: 0.5, MFlups: 10, InteriorUpdates: 1024,
		CommSeconds: []float64{0.1}}
	o := r.Observation()
	o.BytesSent, o.Messages = 1024, 4 // the harness fills these from the fabric
	rep := BuildReport(cfg, st, []RankObservation{o})

	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != ReportSchema {
		t.Errorf("schema = %v, want %q", m["schema"], ReportSchema)
	}
	for _, key := range []string{"machine", "config", "wall_seconds", "mflups",
		"interior_updates", "ghost_updates", "comm", "phases", "ranks"} {
		if _, ok := m[key]; !ok {
			t.Errorf("report missing top-level key %q", key)
		}
	}
	phases, ok := m["phases"].([]any)
	if !ok || len(phases) != 2 {
		t.Fatalf("phases = %v, want 2 rows (interior, pack[x])", m["phases"])
	}
	row := phases[0].(map[string]any)
	for _, key := range []string{"phase", "axis", "seconds", "count"} {
		if _, ok := row[key]; !ok {
			t.Errorf("phase row missing key %q", key)
		}
	}
	secs := row["seconds"].(map[string]any)
	for _, key := range []string{"min", "median", "max", "mean", "n"} {
		if _, ok := secs[key]; !ok {
			t.Errorf("spread missing key %q", key)
		}
	}
	if bs := m["comm"].(map[string]any)["bytes_sent"]; bs != float64(1024) {
		t.Errorf("comm.bytes_sent = %v, want 1024", bs)
	}
}

// TestTraceGoldenShape pins the Chrome trace-event layout: complete "X"
// events with microsecond timestamps, one pid per rank.
func TestTraceGoldenShape(t *testing.T) {
	epoch := time.Now()
	r := New(2, epoch, true)
	t0 := r.Begin()
	r.End(Interior, t0)
	t0 = r.Begin()
	r.EndAxis(Wire, 1, t0)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, []RankObservation{r.Observation()}); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	if len(tf.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(tf.TraceEvents))
	}
	for _, ev := range tf.TraceEvents {
		if ev["ph"] != "X" || ev["cat"] != "lbm" {
			t.Errorf("event = %v, want complete-event ph X cat lbm", ev)
		}
		if ev["pid"] != float64(2) {
			t.Errorf("pid = %v, want rank 2", ev["pid"])
		}
		for _, key := range []string{"name", "ts", "dur", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event missing key %q", key)
			}
		}
	}
	if name := tf.TraceEvents[1]["name"]; name != "wire[y]" {
		t.Errorf("axis event name = %v, want wire[y]", name)
	}
	if args, ok := tf.TraceEvents[1]["args"].(map[string]any); !ok || args["axis"] != "y" {
		t.Errorf("axis args = %v, want axis y", tf.TraceEvents[1]["args"])
	}

	// An untraced recorder still yields a valid, empty trace.
	buf.Reset()
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil || len(tf.TraceEvents) != 0 {
		t.Errorf("empty trace = %s (err %v)", buf.Bytes(), err)
	}
}
