package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceSchema names the trace format: the Chrome trace-event ("catapult")
// JSON object form, loadable in chrome://tracing or https://ui.perfetto.dev.
const TraceSchema = "chrome-trace-events"

// traceEvent is one complete ("X") event: ts and dur are microseconds,
// pid is the rank, so each rank renders as its own process row and the
// overlapped schedule (interior compute concurrent with wire waits on
// other ranks) is visible as a timeline.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

var axisNames = [3]string{"x", "y", "z"}

// WriteTrace renders the retained spans of every rank as Chrome
// trace-event JSON. Observations recorded without tracing contribute no
// events; an all-empty input still produces a valid (empty) trace.
func WriteTrace(w io.Writer, ranks []RankObservation) error {
	tf := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for _, o := range ranks {
		for _, e := range o.Events {
			ev := traceEvent{
				Name: e.Phase.String(),
				Cat:  "lbm",
				Ph:   "X",
				Ts:   float64(e.Start.Nanoseconds()) / 1e3,
				Dur:  float64(e.Dur.Nanoseconds()) / 1e3,
				Pid:  o.Rank,
				Tid:  0,
			}
			if e.Axis >= 0 && int(e.Axis) < len(axisNames) {
				ev.Name = fmt.Sprintf("%s[%s]", e.Phase, axisNames[e.Axis])
				ev.Args = map[string]string{"axis": axisNames[e.Axis]}
			}
			tf.TraceEvents = append(tf.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tf)
}
