package core

import (
	"testing"
	"time"

	"repro/internal/collision"
	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/lattice"

	"repro/internal/grid"
)

// benchStepper builds a single-rank stepper for white-box kernel
// benchmarking.
func benchStepper(b *testing.B, m *lattice.Model, n grid.Dims, opt OptLevel) *stepper {
	b.Helper()
	cfg := &Config{
		Model: m, N: n, Tau: 0.8, Steps: 1,
		Opt: opt, Ranks: 1, Threads: 1, GhostDepth: 1,
		Init: waveInit(n),
	}
	if err := cfg.init(); err != nil {
		b.Fatal(err)
	}
	dec, err := decomp.NewCartesian([3]int{n.NX, n.NY, n.NZ}, [3]int{1, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	var st *stepper
	fab := comm.NewFabric(1)
	if err := fab.Run(func(r *comm.Rank) error {
		st, err = newStepper(cfg, dec, r)
		if err != nil {
			return err
		}
		st.initField()
		st.ex.ExchangeLocal(st.f)
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	return st
}

var benchDims = grid.Dims{NX: 32, NY: 32, NZ: 32}

func reportCellRate(b *testing.B, cells int) {
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcell/s")
}

// Streaming kernels (the DH ladder step isolated).
func BenchmarkStreamKernels(b *testing.B) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		k := m.MaxSpeed
		lo, hi := k, k+benchDims.NX-2*k // interior, no wrap needed in x
		cells := (hi - lo) * benchDims.PlaneCells()
		b.Run(m.Name+"/scalar", func(b *testing.B) {
			st := benchStepper(b, m, benchDims, OptGC)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.streamScalar(0, st.slabBox(lo, hi))
			}
			reportCellRate(b, cells)
		})
		b.Run(m.Name+"/copy", func(b *testing.B) {
			st := benchStepper(b, m, benchDims, OptDH)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.streamCopy(0, st.slabBox(lo, hi))
			}
			reportCellRate(b, cells)
		})
		b.Run(m.Name+"/indexed", func(b *testing.B) {
			st := benchStepper(b, m, benchDims, OptLoBr)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.streamCopyIndexed(0, st.slabBox(lo, hi))
			}
			reportCellRate(b, cells)
		})
	}
}

// Collision kernels (naive vs row-generic vs paired vs blocked).
func BenchmarkCollideKernels(b *testing.B) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		k := m.MaxSpeed
		lo, hi := k, k+benchDims.NX-2*k
		cells := (hi - lo) * benchDims.PlaneCells()
		cases := []struct {
			name string
			opt  OptLevel
			run  func(st *stepper)
		}{
			{"naive", OptGC, func(st *stepper) { st.collideNaive(0, st.slabBox(lo, hi)) }},
			{"rowGeneric", OptDH, func(st *stepper) { st.collideRowGeneric(0, st.slabBox(lo, hi)) }},
			{"paired", OptCF, func(st *stepper) { st.collidePaired(0, st.slabBox(lo, hi)) }},
			{"pairedBlocked", OptSIMD, func(st *stepper) { st.collidePairedBlocked(0, st.slabBox(lo, hi)) }},
		}
		for _, c := range cases {
			b.Run(m.Name+"/"+c.name, func(b *testing.B) {
				st := benchStepper(b, m, benchDims, c.opt)
				st.streamRegion(lo, hi) // populate fadv
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.run(st)
				}
				reportCellRate(b, cells)
			})
		}
	}
}

// Fused kernel vs split stream+collide at the kernel level.
func BenchmarkFusedKernel(b *testing.B) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		k := m.MaxSpeed
		lo, hi := k, k+benchDims.NX-2*k
		cells := (hi - lo) * benchDims.PlaneCells()
		b.Run(m.Name+"/split", func(b *testing.B) {
			st := benchStepper(b, m, benchDims, OptSIMD)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.streamCopyIndexed(0, st.slabBox(lo, hi))
				st.collidePairedBlocked(0, st.slabBox(lo, hi))
			}
			reportCellRate(b, cells)
		})
		b.Run(m.Name+"/fused", func(b *testing.B) {
			st := benchStepper(b, m, benchDims, OptSIMD)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.fusedRows(0, st.slabBox(lo, hi))
				st.swap()
			}
			reportCellRate(b, cells)
		})
	}
}

// Halo exchange cost per depth (pack+local wrap).
func BenchmarkHaloLocalExchange(b *testing.B) {
	m := lattice.D3Q19()
	for _, depth := range []int{1, 2, 4} {
		b.Run(string(rune('0'+depth)), func(b *testing.B) {
			cfg := &Config{
				Model: m, N: benchDims, Tau: 0.8, Steps: 1,
				Opt: OptSIMD, Ranks: 1, Threads: 1, GhostDepth: depth,
			}
			if err := cfg.init(); err != nil {
				b.Fatal(err)
			}
			dec, _ := decomp.NewCartesian([3]int{benchDims.NX, benchDims.NY, benchDims.NZ}, [3]int{1, 1, 1})
			var st *stepper
			fab := comm.NewFabric(1)
			if err := fab.Run(func(r *comm.Rank) error {
				var err error
				st, err = newStepper(cfg, dec, r)
				if err != nil {
					return err
				}
				st.initField()
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.ex.ExchangeLocal(st.f)
			}
		})
	}
}

// benchCartStepper builds a single-rank box stepper for white-box kernel
// benchmarking of the multi-axis path.
func benchCartStepper(b *testing.B, m *lattice.Model, n grid.Dims, opt OptLevel, fused bool) *cartStepper {
	b.Helper()
	cfg := &Config{
		Model: m, N: n, Tau: 0.8, Steps: 1,
		Opt: opt, Ranks: 1, Threads: 1, GhostDepth: 1, Fused: fused,
		Init: waveInit(n),
	}
	if err := cfg.init(); err != nil {
		b.Fatal(err)
	}
	dec, err := decomp.NewCartesian([3]int{n.NX, n.NY, n.NZ}, [3]int{1, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	var cs *cartStepper
	fab := comm.NewFabric(1)
	if err := fab.Run(func(r *comm.Rank) error {
		cs, err = newCartStepper(cfg, dec, r)
		if err != nil {
			return err
		}
		cs.initField()
		cs.refreshAxes([3]bool{true, true, true})
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	return cs
}

// ownedBox returns the stepper's owned region (the depth-1 destination
// box of a steady step).
func (cs *cartStepper) ownedBox() box {
	var b box
	for a := 0; a < 3; a++ {
		b.lo[a] = cs.w[a]
		b.hi[a] = cs.w[a] + cs.own[a]
	}
	return b
}

// Box-stepper kernels: interior box and per-axis rim slabs of the GC-C
// schedule, and the full owned box, for the stream and paired-collide
// kernels (the regression baseline the overlapped schedule rides on).
func BenchmarkBoxKernels(b *testing.B) {
	m := lattice.D3Q19()
	cs := benchCartStepper(b, m, benchDims, OptSIMD, false)
	owned := cs.ownedBox()
	plan := planStep(owned, cs.own, cs.w, cs.k, [3]bool{true, true, true}, [3]bool{false, true, true})
	cases := []struct {
		name string
		run  func()
		box  box
	}{
		{"stream/full", func() { cs.streamBox(owned) }, owned},
		{"stream/interior", func() { cs.streamBox(plan.interiorS) }, plan.interiorS},
		{"collide/full", func() { cs.collideBox(owned) }, owned},
		{"collide/interior", func() { cs.collideBox(plan.interiorC) }, plan.interiorC},
		{"rims/x", func() {
			cs.streamBoxPair(plan.phases[0].streamRims[0], plan.phases[0].streamRims[1])
			cs.collideBoxPair(plan.phases[0].collideRims[0], plan.phases[0].collideRims[1])
		}, plan.phases[0].streamRims[0]},
	}
	for _, c := range cases {
		b.Run(m.Name+"/"+c.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.run()
			}
			reportCellRate(b, c.box.cells())
		})
	}
}

// Fused kernel on the box path vs the split stream+collide over the same
// owned box.
func BenchmarkBoxFusedKernel(b *testing.B) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		b.Run(m.Name+"/split", func(b *testing.B) {
			cs := benchCartStepper(b, m, benchDims, OptSIMD, false)
			owned := cs.ownedBox()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs.streamBox(owned)
				cs.collideBox(owned)
			}
			reportCellRate(b, owned.cells())
		})
		b.Run(m.Name+"/fused", func(b *testing.B) {
			cs := benchCartStepper(b, m, benchDims, OptSIMD, true)
			owned := cs.ownedBox()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs.fusedBox(owned)
				cs.swap()
			}
			reportCellRate(b, owned.cells())
		})
	}
}

// Box operator kernels: the per-cell path vs the z-run-blocked RowRelaxer
// path, against the BGK fast path (collideBoxPaired) as the yardstick —
// the blocked kernel is what carries TRT/MRT within ~1.5× of it.
func BenchmarkBoxCollideOperator(b *testing.B) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		cs := benchCartStepper(b, m, benchDims, OptSIMD, false)
		owned := cs.ownedBox()
		cs.streamBox(owned) // populate fadv
		b.Run(m.Name+"/bgk-fastpath", func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs.collideBoxPaired(0, owned)
			}
			reportCellRate(b, owned.cells())
		})
		for _, spec := range []collision.Spec{{Kind: collision.TRT}, {Kind: collision.MRT}} {
			op, err := spec.New(m, 0.8)
			if err != nil {
				b.Fatal(err)
			}
			sc := newScratches(1, m.Q, cs.d.NZ, nil, false)[0]
			b.Run(m.Name+"/"+spec.String()+"/percell", func(b *testing.B) {
				opc := op.Clone()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					collideOpBox(opc, m, cs.fadv, cs.f, owned, 0, 0, 0, sc)
				}
				reportCellRate(b, owned.cells())
			})
			b.Run(m.Name+"/"+spec.String()+"/rows", func(b *testing.B) {
				rr := op.Clone().(collision.RowRelaxer)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					collideOpRows(rr, cs.pairs, cs.coef, m.Q, cs.fadv, cs.f, owned, 0, 0, 0, sc)
				}
				reportCellRate(b, owned.cells())
			})
		}
	}
}

// End-to-end box exchange protocols on a pencil with a simulated wire
// delay: the GC-C overlap must not be slower than NB-C once messages
// cost real time (the acceptance bar of the per-axis schedule). The wire
// time is milliseconds because time.Sleep resolves no finer (~1 ms on
// typical kernels), with the domain sized so one rank's interior compute
// is of the same order and can genuinely hide it.
func BenchmarkBoxExchangeProtocols(b *testing.B) {
	n := grid.Dims{NX: 64, NY: 64, NZ: 64}
	delay := func(src, dst, bytes int) time.Duration { return 2 * time.Millisecond }
	cases := []struct {
		name  string
		opt   OptLevel
		fused bool
	}{
		{"nbc", OptNBC, false},
		{"gcc", OptGCC, false},
		{"gcc-fused", OptGCC, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var mflups float64
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{
					Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 10,
					Opt: c.opt, Ranks: 4, Decomp: [3]int{2, 2, 1}, Threads: 1, GhostDepth: 1,
					Fused: c.fused, Init: waveInit(n),
					Fabric: comm.NewFabric(4).WithDelay(delay),
				})
				if err != nil {
					b.Fatal(err)
				}
				mflups += res.MFlups
			}
			b.ReportMetric(mflups/float64(b.N), "MFlup/s")
		})
	}
}

// Whole-step thread scaling: full runs through the persistent worker
// pool, on the periodic slab fast path and on a TRT lid-driven cavity
// (box stepper, bounce-back fixups, face fills — every threaded path of
// a bounded step). On multi-core hosts Mcell/s rises with the thread
// count; the CI smoke sweep executes one iteration of each case to keep
// the pool dispatch paths compiling and running.
func BenchmarkThreadedStep(b *testing.B) {
	m := lattice.D3Q19()
	n := grid.Dims{NX: 48, NY: 32, NZ: 32}
	const steps = 5
	cases := []struct {
		name    string
		threads int
		spec    collision.Spec
		cavity  bool
	}{
		{"bgk/1t", 1, collision.Spec{}, false},
		{"bgk/4t", 4, collision.Spec{}, false},
		{"trt-cavity/1t", 1, collision.Spec{Kind: collision.TRT}, true},
		{"trt-cavity/4t", 4, collision.Spec{Kind: collision.TRT}, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := Config{
				Model: m, N: n, Tau: 0.7, Steps: steps,
				Opt: OptSIMD, Ranks: 1, Threads: c.threads, GhostDepth: 1,
				Collision: c.spec, Init: waveInit(n),
			}
			if c.cavity {
				cfg.Boundary = CavitySpec(0.05)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			reportCellRate(b, steps*n.Cells())
		})
	}
}

// Operator-driven collision kernels (the generic path TRT and MRT run
// through; BGK stays on the specialized kernels above).
func BenchmarkCollideOperator(b *testing.B) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		k := m.MaxSpeed
		lo, hi := k, k+benchDims.NX-2*k
		cells := (hi - lo) * benchDims.PlaneCells()
		for _, spec := range []collision.Spec{{Kind: collision.BGK}, {Kind: collision.TRT}, {Kind: collision.MRT}} {
			b.Run(m.Name+"/"+spec.String(), func(b *testing.B) {
				st := benchStepper(b, m, benchDims, OptSIMD)
				op, err := spec.New(m, 0.8)
				if err != nil {
					b.Fatal(err)
				}
				st.op = op
				for _, sc := range st.scratch {
					sc.op = op.Clone()
				}
				st.streamRegion(lo, hi)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st.collideOperator(0, st.slabBox(lo, hi))
				}
				reportCellRate(b, cells)
			})
		}
	}
}

// Storage schemes end-to-end: the same 64-cubed periodic box stepped
// through the two-grid and AA in-place paths. AA touches one f array
// instead of two, so on a bandwidth-bound box it should post the
// higher Mcell/s and (with -benchmem) roughly half the steady-state
// field allocation. Even ghost depth on both keeps the exchange
// cadence identical (AA rounds odd depths up anyway).
func BenchmarkStreamScheme(b *testing.B) {
	m := lattice.D3Q19()
	n := grid.Dims{NX: 64, NY: 64, NZ: 64}
	const steps = 4
	for _, c := range []struct {
		name    string
		stream  StreamScheme
		threads int
	}{
		{"twogrid/1t", StreamTwoGrid, 1},
		{"aa/1t", StreamAA, 1},
		{"twogrid/4t", StreamTwoGrid, 4},
		{"aa/4t", StreamAA, 4},
	} {
		b.Run(c.name, func(b *testing.B) {
			cfg := Config{
				Model: m, N: n, Tau: 0.7, Steps: steps,
				Opt: OptSIMD, Ranks: 1, Threads: c.threads, GhostDepth: 2,
				Stream: c.stream, Init: waveInit(n),
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			reportCellRate(b, steps*n.Cells())
		})
	}
}
