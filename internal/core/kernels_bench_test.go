package core

import (
	"testing"

	"repro/internal/collision"
	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/lattice"

	"repro/internal/grid"
)

// benchStepper builds a single-rank stepper for white-box kernel
// benchmarking.
func benchStepper(b *testing.B, m *lattice.Model, n grid.Dims, opt OptLevel) *stepper {
	b.Helper()
	cfg := &Config{
		Model: m, N: n, Tau: 0.8, Steps: 1,
		Opt: opt, Ranks: 1, Threads: 1, GhostDepth: 1,
		Init: waveInit(n),
	}
	if err := cfg.init(); err != nil {
		b.Fatal(err)
	}
	dec, err := decomp.NewCartesian([3]int{n.NX, n.NY, n.NZ}, [3]int{1, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	var st *stepper
	fab := comm.NewFabric(1)
	if err := fab.Run(func(r *comm.Rank) error {
		st, err = newStepper(cfg, dec, r)
		if err != nil {
			return err
		}
		st.initField()
		st.ex.ExchangeLocal(st.f)
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	return st
}

var benchDims = grid.Dims{NX: 32, NY: 32, NZ: 32}

func reportCellRate(b *testing.B, cells int) {
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcell/s")
}

// Streaming kernels (the DH ladder step isolated).
func BenchmarkStreamKernels(b *testing.B) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		k := m.MaxSpeed
		lo, hi := k, k+benchDims.NX-2*k // interior, no wrap needed in x
		cells := (hi - lo) * benchDims.PlaneCells()
		b.Run(m.Name+"/scalar", func(b *testing.B) {
			st := benchStepper(b, m, benchDims, OptGC)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.streamScalar(lo, hi)
			}
			reportCellRate(b, cells)
		})
		b.Run(m.Name+"/copy", func(b *testing.B) {
			st := benchStepper(b, m, benchDims, OptDH)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.streamCopy(lo, hi)
			}
			reportCellRate(b, cells)
		})
		b.Run(m.Name+"/indexed", func(b *testing.B) {
			st := benchStepper(b, m, benchDims, OptLoBr)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.streamCopyIndexed(lo, hi)
			}
			reportCellRate(b, cells)
		})
	}
}

// Collision kernels (naive vs row-generic vs paired vs blocked).
func BenchmarkCollideKernels(b *testing.B) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		k := m.MaxSpeed
		lo, hi := k, k+benchDims.NX-2*k
		cells := (hi - lo) * benchDims.PlaneCells()
		cases := []struct {
			name string
			opt  OptLevel
			run  func(st *stepper)
		}{
			{"naive", OptGC, func(st *stepper) { st.collideNaive(lo, hi) }},
			{"rowGeneric", OptDH, func(st *stepper) { st.collideRowGeneric(lo, hi) }},
			{"paired", OptCF, func(st *stepper) { st.collidePaired(lo, hi) }},
			{"pairedBlocked", OptSIMD, func(st *stepper) { st.collidePairedBlocked(lo, hi) }},
		}
		for _, c := range cases {
			b.Run(m.Name+"/"+c.name, func(b *testing.B) {
				st := benchStepper(b, m, benchDims, c.opt)
				st.streamRegion(lo, hi) // populate fadv
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.run(st)
				}
				reportCellRate(b, cells)
			})
		}
	}
}

// Fused kernel vs split stream+collide at the kernel level.
func BenchmarkFusedKernel(b *testing.B) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		k := m.MaxSpeed
		lo, hi := k, k+benchDims.NX-2*k
		cells := (hi - lo) * benchDims.PlaneCells()
		b.Run(m.Name+"/split", func(b *testing.B) {
			st := benchStepper(b, m, benchDims, OptSIMD)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.streamCopyIndexed(lo, hi)
				st.collidePairedBlocked(lo, hi)
			}
			reportCellRate(b, cells)
		})
		b.Run(m.Name+"/fused", func(b *testing.B) {
			st := benchStepper(b, m, benchDims, OptSIMD)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.fusedRows(lo, hi)
				st.swap()
			}
			reportCellRate(b, cells)
		})
	}
}

// Halo exchange cost per depth (pack+local wrap).
func BenchmarkHaloLocalExchange(b *testing.B) {
	m := lattice.D3Q19()
	for _, depth := range []int{1, 2, 4} {
		b.Run(string(rune('0'+depth)), func(b *testing.B) {
			cfg := &Config{
				Model: m, N: benchDims, Tau: 0.8, Steps: 1,
				Opt: OptSIMD, Ranks: 1, Threads: 1, GhostDepth: depth,
			}
			if err := cfg.init(); err != nil {
				b.Fatal(err)
			}
			dec, _ := decomp.NewCartesian([3]int{benchDims.NX, benchDims.NY, benchDims.NZ}, [3]int{1, 1, 1})
			var st *stepper
			fab := comm.NewFabric(1)
			if err := fab.Run(func(r *comm.Rank) error {
				var err error
				st, err = newStepper(cfg, dec, r)
				if err != nil {
					return err
				}
				st.initField()
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.ex.ExchangeLocal(st.f)
			}
		})
	}
}

// Operator-driven collision kernels (the generic path TRT and MRT run
// through; BGK stays on the specialized kernels above).
func BenchmarkCollideOperator(b *testing.B) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		k := m.MaxSpeed
		lo, hi := k, k+benchDims.NX-2*k
		cells := (hi - lo) * benchDims.PlaneCells()
		for _, spec := range []collision.Spec{{Kind: collision.BGK}, {Kind: collision.TRT}, {Kind: collision.MRT}} {
			b.Run(m.Name+"/"+spec.String(), func(b *testing.B) {
				st := benchStepper(b, m, benchDims, OptSIMD)
				op, err := spec.New(m, 0.8)
				if err != nil {
					b.Fatal(err)
				}
				st.op = op
				st.streamRegion(lo, hi)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st.collideOperator(lo, hi)
				}
				reportCellRate(b, cells)
			})
		}
	}
}
