package core

// Fused stream-collide: the paper's future-work direction (§VII:
// "investigation into methods to alter the algorithm as to reduce the
// memory accesses per lattice update could increase the potential
// hardware efficiency"). Instead of streaming f into f_adv (write Q
// values/cell) and then colliding f_adv into f (read Q + write Q), the
// fused kernel gathers each cell's neighbors into a cache-resident row
// buffer and writes the post-collision values directly:
//
//	next[x] = collide(gather prev[x−c])
//
// One read and one write of the field per step — 2·Q·8 = 304 (D3Q19) /
// 624 (D3Q39) bytes per cell instead of the split path's 456 / 936 —
// which directly raises the roofline of the bandwidth-limited code. The
// two buffers swap roles after every step. Because the previous state is
// never overwritten mid-step, the fused path needs no stream/collide
// staggering in the overlapped (GC-C) schedule: any plane range may be
// computed as soon as its inputs are valid.

import (
	"repro/internal/halo"
	"repro/internal/obs"
)

// FusedBytesPerCell returns the per-cell main-memory traffic of the fused
// kernel: 2·Q·8 bytes (one read, one write), versus the split path's
// 3·Q·8 counted by the paper's performance model.
func FusedBytesPerCell(q int) float64 { return 2 * 8 * float64(q) }

// swap exchanges the state and scratch fields after a fused step.
func (s *stepper) swap() { s.f, s.fadv = s.fadv, s.f }

// fusedRegion computes one fused step for destination planes [lo,hi),
// reading s.f and writing s.fadv. The caller must swap afterwards.
func (s *stepper) fusedRegion(lo, hi int) {
	if hi <= lo {
		return
	}
	t0 := s.rec.Begin()
	s.br.run(s.fusedRows, s.slabBox(lo, hi))
	s.rec.End(obs.Interior, t0)
}

// fusedRegionPair computes a fused step over two disjoint plane ranges,
// submitted as one chunk batch.
func (s *stepper) fusedRegionPair(lo1, hi1, lo2, hi2 int) {
	s.br.run(s.fusedRows, s.slabBox(lo1, hi1), s.slabBox(lo2, hi2))
}

// fusedRows is the kernel body: for each destination row it gathers the
// streamed values of every velocity into the worker's row buffers
// (rotated copies, as in the DH streaming kernel) and applies the
// pair-symmetric collision, writing the next state.
func (s *stepper) fusedRows(worker int, bx box) {
	m := s.model
	ny, nz := s.d.NY, s.d.NZ
	plane := s.d.PlaneCells()
	omega := 1 / s.cfg.Tau
	c := s.coef
	sc := s.scratch[worker]
	b := sc.rb
	rows := sc.rows(nz)
	for ix := bx.lo[0]; ix < bx.hi[0]; ix++ {
		for iy := bx.lo[1]; iy < bx.hi[1]; iy++ {
			// Gather: rows[v][z] = f[v] at (ix−cx, wrap(iy−cy), wrap(z−cz)).
			for v := 0; v < m.Q; v++ {
				sx := ix - m.Cx[v]
				sy := iy - m.Cy[v]
				if sy < 0 {
					sy += ny
				} else if sy >= ny {
					sy -= ny
				}
				off := sx*plane + sy*nz
				rotateCopy(rows[v], s.f.V(v)[off:off+nz], m.Cz[v])
			}
			// Collide from the row buffers into the next state.
			for z := 0; z < nz; z++ {
				b.rho[z], b.jx[z], b.jy[z], b.jz[z] = 0, 0, 0, 0
			}
			for _, p := range s.pairs {
				if p.i == p.j {
					for z, val := range rows[p.i] {
						b.rho[z] += val
					}
					continue
				}
				si, sj := rows[p.i], rows[p.j]
				cx, cy, cz := c.cx[p.i], c.cy[p.i], c.cz[p.i]
				for z := 0; z < nz; z++ {
					vi, vj := si[z], sj[z]
					sum, diff := vi+vj, vi-vj
					b.rho[z] += sum
					b.jx[z] += cx * diff
					b.jy[z] += cy * diff
					b.jz[z] += cz * diff
				}
			}
			for z := 0; z < nz; z++ {
				inv := 1 / b.rho[z]
				b.ux[z] = b.jx[z]*inv + s.shiftX
				b.uy[z] = b.jy[z]*inv + s.shiftY
				b.uz[z] = b.jz[z]*inv + s.shiftZ
				b.u2[z] = b.ux[z]*b.ux[z] + b.uy[z]*b.uy[z] + b.uz[z]*b.uz[z]
			}
			base := s.d.Index(ix, iy, 0)
			for _, p := range s.pairs {
				if p.i == p.j {
					sv := rows[p.i]
					dv := s.fadv.V(p.i)[base : base+nz]
					w := c.w[p.i]
					for z := 0; z < nz; z++ {
						feq := w * b.rho[z] * (1 - b.u2[z]*c.invCs2h)
						dv[z] = sv[z] - omega*(sv[z]-feq)
					}
					continue
				}
				si, sj := rows[p.i], rows[p.j]
				di := s.fadv.V(p.i)[base : base+nz]
				dj := s.fadv.V(p.j)[base : base+nz]
				cx, cy, cz, w := c.cx[p.i], c.cy[p.i], c.cz[p.i], c.w[p.i]
				for z := 0; z < nz; z++ {
					cu := cx*b.ux[z] + cy*b.uy[z] + cz*b.uz[z]
					cu2 := cu * cu
					even := 1 + cu2*c.invCs4h - b.u2[z]*c.invCs2h
					odd := cu * c.invCs2
					if c.third {
						odd += cu2*cu*c.thA - cu*b.u2[z]*c.thB
					}
					wr := w * b.rho[z]
					di[z] = si[z] - omega*(si[z]-wr*(even+odd))
					dj[z] = sj[z] - omega*(sj[z]-wr*(even-odd))
				}
			}
		}
	}
}

// fusedCycle runs one deep-halo cycle with the fused kernel.
func (s *stepper) fusedCycle(runLen int) {
	exts := halo.CycleExtents(s.depth, s.k)
	overlap := s.cfg.Opt >= OptGCC && s.r.N > 1
	switch {
	case s.r.N == 1:
		s.ex.ExchangeLocal(s.f)
	case overlap:
		s.fusedOverlappedFirstStep(exts[0])
	case s.cfg.Opt >= OptNBC:
		s.ex.ExchangeNonBlocking(s.r, s.f)
	default:
		s.ex.ExchangeBlocking(s.r, s.f)
	}
	start := 0
	if overlap {
		s.jitter()
		start = 1
	}
	for si := start; si < runLen; si++ {
		lo, hi := s.regionFor(exts[si])
		s.fusedRegion(lo, hi)
		s.swap()
		s.countUpdates(lo, hi)
		s.jitter()
	}
}

// fusedOverlappedFirstStep is the GC-C schedule for the fused kernel,
// with the interior/rim split taken from the box schedule planner (stale
// axis x). Since the previous state is read-only during the step, the
// only constraint is input validity: the interior may run while messages
// fly; the ghost-dependent rim follows WaitUnpack.
func (s *stepper) fusedOverlappedFirstStep(ext int) {
	lo, hi := s.regionFor(ext)
	plan := s.planFirstStep(lo, hi)
	isLo, isHi := plan.interiorS.lo[0], plan.interiorS.hi[0]
	s.ex.PostRecvs(s.r)
	s.ex.SendBorders(s.r, s.f)
	s.fusedRegion(isLo, isHi)
	s.ex.WaitUnpack(s.r, s.f)
	t0 := s.rec.Begin()
	s.fusedRegionPair(lo, isLo, isHi, hi)
	s.rec.EndAxis(obs.Rim, 0, t0)
	s.swap()
	s.countUpdates(lo, hi)
}

// Box (multi-axis) fused kernel: the same one-read-one-write cell update
// over the cart stepper's ghost-on-every-axis geometry. With ghosts on
// all axes the gather loses even the y wrap and z rotation of the slab
// form — every velocity's source row is one contiguous offset copy.

// swap exchanges the cart stepper's state and scratch fields after a
// fused step.
func (cs *cartStepper) swap() { cs.f, cs.fadv = cs.fadv, cs.f }

// fusedBox computes one fused step for destination box b, reading cs.f
// and writing cs.fadv. The caller swaps after the step completes.
func (cs *cartStepper) fusedBox(b box) {
	t0 := cs.rec.Begin()
	cs.br.run(cs.fusedBoxRows, b)
	cs.rec.End(obs.Interior, t0)
}

// fusedBoxPair computes a fused step over two disjoint boxes (rim slabs),
// submitted as one chunk batch.
func (cs *cartStepper) fusedBoxPair(b1, b2 box) {
	cs.br.run(cs.fusedBoxRows, b1, b2)
}

// fusedBoxRows is the kernel body: for each destination row it gathers
// the streamed values of every velocity into a row buffer (plain offset
// copies — no wraps) and applies the pair-symmetric collision, writing
// the next state.
func (cs *cartStepper) fusedBoxRows(worker int, bx box) {
	m := cs.model
	zn := bx.hi[2] - bx.lo[2]
	if bx.hi[0] <= bx.lo[0] || zn <= 0 || bx.hi[1] <= bx.lo[1] {
		return
	}
	omega := 1 / cs.cfg.Tau
	c := cs.coef
	sc := cs.scratch[worker]
	b := sc.rb
	rows := sc.rows(zn)
	for ix := bx.lo[0]; ix < bx.hi[0]; ix++ {
		for iy := bx.lo[1]; iy < bx.hi[1]; iy++ {
			for v := 0; v < m.Q; v++ {
				off := cs.d.Index(ix-m.Cx[v], iy-m.Cy[v], bx.lo[2]-m.Cz[v])
				copy(rows[v], cs.f.V(v)[off:off+zn])
			}
			for z := 0; z < zn; z++ {
				b.rho[z], b.jx[z], b.jy[z], b.jz[z] = 0, 0, 0, 0
			}
			for _, p := range cs.pairs {
				if p.i == p.j {
					for z, val := range rows[p.i] {
						b.rho[z] += val
					}
					continue
				}
				si, sj := rows[p.i], rows[p.j]
				cx, cy, cz := c.cx[p.i], c.cy[p.i], c.cz[p.i]
				for z := 0; z < zn; z++ {
					vi, vj := si[z], sj[z]
					sum, diff := vi+vj, vi-vj
					b.rho[z] += sum
					b.jx[z] += cx * diff
					b.jy[z] += cy * diff
					b.jz[z] += cz * diff
				}
			}
			for z := 0; z < zn; z++ {
				inv := 1 / b.rho[z]
				b.ux[z] = b.jx[z]*inv + cs.shiftX
				b.uy[z] = b.jy[z]*inv + cs.shiftY
				b.uz[z] = b.jz[z]*inv + cs.shiftZ
				b.u2[z] = b.ux[z]*b.ux[z] + b.uy[z]*b.uy[z] + b.uz[z]*b.uz[z]
			}
			base := cs.d.Index(ix, iy, bx.lo[2])
			for _, p := range cs.pairs {
				if p.i == p.j {
					sv := rows[p.i]
					dv := cs.fadv.V(p.i)[base : base+zn]
					w := c.w[p.i]
					for z := 0; z < zn; z++ {
						feq := w * b.rho[z] * (1 - b.u2[z]*c.invCs2h)
						dv[z] = sv[z] - omega*(sv[z]-feq)
					}
					continue
				}
				si, sj := rows[p.i], rows[p.j]
				di := cs.fadv.V(p.i)[base : base+zn]
				dj := cs.fadv.V(p.j)[base : base+zn]
				cx, cy, cz, w := c.cx[p.i], c.cy[p.i], c.cz[p.i], c.w[p.i]
				for z := 0; z < zn; z++ {
					cu := cx*b.ux[z] + cy*b.uy[z] + cz*b.uz[z]
					cu2 := cu * cu
					even := 1 + cu2*c.invCs4h - b.u2[z]*c.invCs2h
					odd := cu * c.invCs2
					if c.third {
						odd += cu2*cu*c.thA - cu*b.u2[z]*c.thB
					}
					wr := w * b.rho[z]
					di[z] = si[z] - omega*(si[z]-wr*(even+odd))
					dj[z] = sj[z] - omega*(sj[z]-wr*(even-odd))
				}
			}
		}
	}
}
