package core

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/metrics"
)

// refSolverBounded is the textbook oracle for non-periodic domains: a
// full-array pull-streaming solver that applies the boundary conditions
// link by link at stream time — halfway bounce-back (with the moving-wall
// momentum correction) for links crossing a wall face, coordinate
// clamping for links crossing an outflow face, periodic wrap elsewhere.
// It shares no kernel or boundary code with the solver under test.
// In-domain solid cells are held at rest and skipped (the production
// solver lets them carry garbage that fluid cells never read, so
// comparisons against this oracle go through maxDiffFluid).
func refSolverBounded(m *lattice.Model, n grid.Dims, tau float64, steps int, init InitFunc, spec *BoundarySpec, solid *geom.Mask) *grid.Field {
	f := grid.NewField(m.Q, n, grid.SoA)
	fadv := grid.NewField(m.Q, n, grid.SoA)
	feq := make([]float64, m.Q)
	rest := make([]float64, m.Q)
	m.Equilibrium(1, 0, 0, 0, rest)
	isSolid := func(ix, iy, iz int) bool { return solid != nil && solid.At(ix, iy, iz) }
	for ix := 0; ix < n.NX; ix++ {
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				if isSolid(ix, iy, iz) {
					f.SetCell(ix, iy, iz, rest)
					continue
				}
				rho, ux, uy, uz := init(ix, iy, iz)
				m.Equilibrium(rho, ux, uy, uz, feq)
				f.SetCell(ix, iy, iz, feq)
			}
		}
	}
	dims := [3]int{n.NX, n.NY, n.NZ}
	fc := make([]float64, m.Q)
	for s := 0; s < steps; s++ {
		for ix := 0; ix < n.NX; ix++ {
			for iy := 0; iy < n.NY; iy++ {
				for iz := 0; iz < n.NZ; iz++ {
					if isSolid(ix, iy, iz) {
						continue
					}
					cell := [3]int{ix, iy, iz}
					for v := 0; v < m.Q; v++ {
						src := [3]int{ix - m.Cx[v], iy - m.Cy[v], iz - m.Cz[v]}
						wallHit, outside, movAxis, movSide := false, 0, -1, -1
						inAxis, inSide := -1, -1
						press := false
						for a := 0; a < 3; a++ {
							if spec.AxisPeriodic(a) {
								src[a] = ((src[a] % dims[a]) + dims[a]) % dims[a]
								continue
							}
							side := -1
							if src[a] < 0 {
								side = 0
							} else if src[a] >= dims[a] {
								side = 1
							}
							if side < 0 {
								continue
							}
							outside++
							switch spec.Faces[a][side].Kind {
							case BCWall:
								wallHit = true
							case BCMovingWall:
								wallHit = true
								movAxis, movSide = a, side
							case BCInlet:
								wallHit = true
								inAxis, inSide = a, side
								// Clamp for the profile evaluation below.
								if side == 0 {
									src[a] = 0
								} else {
									src[a] = dims[a] - 1
								}
							case BCOutflow:
								if side == 0 {
									src[a] = 0
								} else {
									src[a] = dims[a] - 1
								}
							case BCPressureOutlet:
								press = true
								if side == 0 {
									src[a] = 0
								} else {
									src[a] = dims[a] - 1
								}
							}
						}
						switch {
						case wallHit:
							delta := 0.0
							if outside == 1 && movAxis >= 0 {
								u := spec.Faces[movAxis][movSide].U
								cu := float64(m.Cx[v])*u[0] + float64(m.Cy[v])*u[1] + float64(m.Cz[v])*u[2]
								delta = 2 * m.W[v] * cu / m.CsSq
							}
							if outside == 1 && inAxis >= 0 {
								// Zou-He inversion: the full odd part of the
								// inlet equilibrium at the clamped endpoint.
								face := &spec.Faces[inAxis][inSide]
								u := face.U
								if face.Profile != nil {
									u = face.Profile(src[0], src[1], src[2])
								}
								delta = m.EquilibriumAt(v, 1, u[0], u[1], u[2]) -
									m.EquilibriumAt(m.Opp[v], 1, u[0], u[1], u[2])
							}
							fadv.Set(v, ix, iy, iz, f.At(m.Opp[v], cell[0], cell[1], cell[2])+delta)
						case isSolid(src[0], src[1], src[2]):
							fadv.Set(v, ix, iy, iz, f.At(m.Opp[v], cell[0], cell[1], cell[2]))
						case press:
							// Pressure outlet: the clamped source cell's
							// population with its equilibrium re-anchored
							// at unit density (non-equilibrium
							// extrapolation).
							f.Cell(src[0], src[1], src[2], fc)
							rho, jx, jy, jz := m.Moments(fc)
							ux, uy, uz := jx/rho, jy/rho, jz/rho
							val := f.At(v, src[0], src[1], src[2]) +
								m.EquilibriumAt(v, 1, ux, uy, uz) -
								m.EquilibriumAt(v, rho, ux, uy, uz)
							fadv.Set(v, ix, iy, iz, val)
						default:
							fadv.Set(v, ix, iy, iz, f.At(v, src[0], src[1], src[2]))
						}
					}
				}
			}
		}
		for ix := 0; ix < n.NX; ix++ {
			for iy := 0; iy < n.NY; iy++ {
				for iz := 0; iz < n.NZ; iz++ {
					if isSolid(ix, iy, iz) {
						continue
					}
					fadv.Cell(ix, iy, iz, fc)
					rho, jx, jy, jz := m.Moments(fc)
					ux, uy, uz := jx/rho, jy/rho, jz/rho
					m.Equilibrium(rho, ux, uy, uz, feq)
					for v := 0; v < m.Q; v++ {
						f.Set(v, ix, iy, iz, fc[v]-(fc[v]-feq[v])/tau)
					}
				}
			}
		}
	}
	return f
}

// runAndCompareBounded executes cfg and holds it to the bounded oracle
// (comparison over fluid cells via boundary_test.go's maxDiffFluid).
func runAndCompareBounded(t *testing.T, cfg Config) *Result {
	t.Helper()
	cfg.KeepField = true
	if cfg.Init == nil {
		cfg.Init = waveInit(cfg.N)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s decomp=%v depth=%d: %v", cfg.Opt, cfg.Decomp, cfg.GhostDepth, err)
	}
	want := refSolverBounded(cfg.Model, cfg.N, cfg.Tau, cfg.Steps, cfg.Init, cfg.Boundary, cfg.Solid)
	if d := maxDiffFluid(res.Field, want, maskAtFn(cfg.Solid)); d > eqTol {
		t.Errorf("%s %s decomp=%v depth=%d: max |Δf| vs bounded oracle = %g (tol %g)",
			cfg.Model.Name, cfg.Opt, cfg.Decomp, cfg.GhostDepth, d, eqTol)
	}
	return res
}

// cavityWallsSpec: walls on x and y, moving lid on high y, periodic z.
func cavityWallsSpec(u float64) *BoundarySpec { return CavitySpec(u) }

func TestBoundedCavityAgainstOracleQ19(t *testing.T) {
	n := grid.Dims{NX: 8, NY: 8, NZ: 6}
	spec := cavityWallsSpec(0.08)
	for _, opt := range []OptLevel{OptGC, OptDH, OptCF, OptLoBr, OptNBC, OptGCC, OptSIMD} {
		for _, p := range [][3]int{{1, 1, 1}, {2, 2, 1}, {2, 2, 2}} {
			runAndCompareBounded(t, Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
				Opt: opt, Ranks: p[0] * p[1] * p[2], Decomp: p, Threads: 1, GhostDepth: 1,
				Boundary: spec,
			})
		}
	}
}

func TestBoundedCavityAgainstOracleQ39(t *testing.T) {
	// k = 3 for D3Q39: every axis needs at least w = depth·3 owned cells.
	n := grid.Dims{NX: 8, NY: 8, NZ: 6}
	spec := cavityWallsSpec(0.05)
	for _, opt := range []OptLevel{OptGC, OptSIMD} {
		runAndCompareBounded(t, Config{
			Model: lattice.D3Q39(), N: n, Tau: 0.9, Steps: 4,
			Opt: opt, Ranks: 2, Decomp: [3]int{2, 1, 1}, Threads: 1, GhostDepth: 1,
			Boundary: spec,
		})
	}
}

// TestBoundedDeepHalo: wall and moving-wall faces are enforced by
// post-stream fixups every step, so they must agree with the per-step
// oracle at every ghost depth.
func TestBoundedDeepHalo(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 12, NZ: 8}
	spec := cavityWallsSpec(0.08)
	for _, depth := range []int{2, 3} {
		for _, steps := range []int{4, 7} {
			runAndCompareBounded(t, Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: steps,
				Opt: OptSIMD, Ranks: 4, Decomp: [3]int{2, 2, 1}, Threads: 1, GhostDepth: depth,
				Boundary: spec,
			})
		}
	}
}

// TestBoundedOutflow: zero-gradient faces refresh ghosts once per cycle,
// so the oracle comparison pins the depth-1 schedule (one fill per step).
func TestBoundedOutflow(t *testing.T) {
	n := grid.Dims{NX: 10, NY: 8, NZ: 6}
	var spec BoundarySpec
	spec.Faces[0][0] = Face{Kind: BCWall}
	spec.Faces[0][1] = Face{Kind: BCOutflow}
	spec.Faces[1][0] = Face{Kind: BCWall}
	spec.Faces[1][1] = Face{Kind: BCWall}
	for _, p := range [][3]int{{1, 1, 1}, {2, 2, 1}, {2, 1, 2}} {
		runAndCompareBounded(t, Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 6,
			Opt: OptSIMD, Ranks: p[0] * p[1] * p[2], Decomp: p, Threads: 1, GhostDepth: 1,
			Boundary: &spec,
		})
	}
}

// TestBoundedThreading: the fixup and fill paths must be thread-count
// invariant.
func TestBoundedThreading(t *testing.T) {
	n := grid.Dims{NX: 10, NY: 10, NZ: 6}
	spec := cavityWallsSpec(0.08)
	for _, threads := range []int{2, 4} {
		runAndCompareBounded(t, Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.85, Steps: 4,
			Opt: OptSIMD, Ranks: 2, Decomp: [3]int{1, 2, 1}, Threads: threads, GhostDepth: 2,
			Boundary: spec,
		})
	}
}

// TestBoundedSolidObstacle: interior solid mask combined with bounded
// global faces — the arterial-geometry combination the paper motivates.
func TestBoundedSolidObstacle(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 10, NZ: 6}
	solid := func(ix, iy, iz int) bool {
		dx, dy := ix-6, iy-5
		return dx*dx+dy*dy < 4
	}
	spec := cavityWallsSpec(0.06)
	for _, p := range [][3]int{{1, 1, 1}, {2, 2, 1}} {
		runAndCompareBounded(t, Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 6,
			Opt: OptSIMD, Ranks: p[0] * p[1] * p[2], Decomp: p, Threads: 1, GhostDepth: 1,
			Boundary: spec, Solid: geom.FromFunc(n, solid),
		})
	}
}

// TestBoundedCrossDecomposition is the bounded twin of
// TestCrossDecompositionEquivalence: the same lid-driven problem solved
// with 1-D, 2-D and 3-D rank grids must agree on the final field to
// within float reassociation and on the conserved sums to 1e-12.
func TestBoundedCrossDecomposition(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 24, NZ: 8}
	steps := 30
	if testing.Short() {
		steps = 8
	}
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: steps,
		Opt: OptSIMD, Ranks: 8, Threads: 1, GhostDepth: 1,
		Boundary: cavityWallsSpec(0.1), KeepField: true,
	}
	shapes := [][3]int{{8, 1, 1}, {4, 2, 1}, {2, 2, 2}}
	results := make([]*Result, len(shapes))
	for i, p := range shapes {
		cfg := base
		cfg.Decomp = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("decomp %v: %v", p, err)
		}
		results[i] = res
	}
	ref := results[0]
	for i, p := range shapes[1:] {
		res := results[i+1]
		if d := grid.MaxAbsDiff(ref.Field, res.Field); d > 1e-12 {
			t.Errorf("decomp %v vs 1-D: max |Δf| = %g", p, d)
		}
		if d := math.Abs(res.Mass - ref.Mass); d > 1e-12*ref.Mass {
			t.Errorf("decomp %v: mass %0.15f vs 1-D %0.15f", p, res.Mass, ref.Mass)
		}
		for _, m := range []struct {
			got, want float64
			name      string
		}{
			{res.MomX, ref.MomX, "px"}, {res.MomY, ref.MomY, "py"}, {res.MomZ, ref.MomZ, "pz"},
		} {
			if math.Abs(m.got-m.want) > 1e-12*ref.Mass {
				t.Errorf("decomp %v: %s = %g vs 1-D %g", p, m.name, m.got, m.want)
			}
		}
	}
	// Sanity: the lid must have set the cavity in motion.
	if results[0].MomX <= 0 {
		t.Errorf("lid-driven cavity momentum not positive: %g", results[0].MomX)
	}
}

// TestBounceBackMassConservationRandomMasks is the property test:
// stationary bounce-back — random interior solids and global walls alike
// — conserves fluid mass exactly (to summation roundoff), because every
// population that leaves the fluid across a wall link is re-injected at
// the same cell.
func TestBounceBackMassConservationRandomMasks(t *testing.T) {
	n := grid.Dims{NX: 14, NY: 12, NZ: 10}
	var wallSpec BoundarySpec
	wallSpec.Faces[0][0] = Face{Kind: BCWall}
	wallSpec.Faces[0][1] = Face{Kind: BCWall}
	wallSpec.Faces[1][0] = Face{Kind: BCWall}
	wallSpec.Faces[1][1] = Face{Kind: BCWall}
	for trial := 0; trial < 5; trial++ {
		rng := metrics.NewRNG(uint64(trial)*0x9e3779b9 + 7)
		mask := make([]bool, n.Cells())
		for c := range mask {
			mask[c] = rng.Float64() < 0.2
		}
		solid := func(ix, iy, iz int) bool { return mask[n.Index(ix, iy, iz)] }
		init := waveInit(n)
		var mass0 float64
		for ix := 0; ix < n.NX; ix++ {
			for iy := 0; iy < n.NY; iy++ {
				for iz := 0; iz < n.NZ; iz++ {
					if solid(ix, iy, iz) {
						continue
					}
					rho, _, _, _ := init(ix, iy, iz)
					mass0 += rho
				}
			}
		}
		for _, boundary := range []*BoundarySpec{nil, &wallSpec} {
			res, err := Run(Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 12,
				Opt: OptSIMD, Ranks: 4, Decomp: [3]int{2, 2, 1}, Threads: 1, GhostDepth: 1,
				Solid: geom.FromFunc(n, solid), Boundary: boundary, Init: init,
			})
			if err != nil {
				t.Fatalf("trial %d boundary=%v: %v", trial, boundary != nil, err)
			}
			if d := math.Abs(res.Mass - mass0); d > 1e-10*mass0 {
				t.Errorf("trial %d boundary=%v: fluid mass drifted %g (rel %g)", trial, boundary != nil, d, d/mass0)
			}
		}
	}
}

// TestBoundedValidation pins the configuration errors of the boundary
// layer.
func TestBoundedValidation(t *testing.T) {
	base := Config{
		Model: lattice.D3Q19(), N: grid.Dims{NX: 8, NY: 8, NZ: 8},
		Tau: 0.8, Steps: 1, Ranks: 2, Opt: OptGC, GhostDepth: 1,
		Boundary: cavityWallsSpec(0.1),
	}
	cases := []struct {
		name string
		mod  func(c *Config)
	}{
		{"orig with boundaries", func(c *Config) { c.Opt = OptOrig }},
		{"AoS with boundaries", func(c *Config) { c.Layout = grid.AoS }},
		{"fused with boundaries", func(c *Config) { c.Fused = true }},
		{"mixed periodicity on one axis", func(c *Config) {
			s := *c.Boundary
			s.Faces[2][1] = Face{Kind: BCWall}
			c.Boundary = &s
		}},
		{"moving wall with normal velocity", func(c *Config) {
			s := *c.Boundary
			s.Faces[1][1].U = [3]float64{0, 0.1, 0}
			c.Boundary = &s
		}},
		{"velocity on a plain wall", func(c *Config) {
			s := *c.Boundary
			s.Faces[0][0].U = [3]float64{0.1, 0, 0}
			c.Boundary = &s
		}},
		{"bounded axis smaller than halo", func(c *Config) { c.GhostDepth = 5 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mod(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
	if _, err := Run(base); err != nil {
		t.Errorf("base bounded config rejected: %v", err)
	}
	// An all-periodic spec is the default domain and must behave like nil:
	// slab shapes keep the specialized stepper, every level including Orig
	// works.
	cfg := base
	cfg.Boundary = &BoundarySpec{}
	cfg.Opt = OptOrig
	if _, err := Run(cfg); err != nil {
		t.Errorf("all-periodic spec rejected on the Orig slab path: %v", err)
	}
}
