package core

import (
	"strings"
	"testing"
)

// TestParseGhostDepth pins down the accepted forms and — just as
// important — the error text for the malformed ones. A truncated
// "-depth 2,3" or a trailing comma used to fall through to a generic
// Atoi failure; the message must now name what the flag wants.
func TestParseGhostDepth(t *testing.T) {
	cases := []struct {
		in      string
		uniform int
		axes    [3]int
		wantErr string // substring of the error, "" for success
	}{
		{in: "2", uniform: 2},
		{in: " 3 ", uniform: 3},
		{in: "1,2,3", uniform: 1, axes: [3]int{1, 2, 3}},
		{in: "2, 2, 2", uniform: 2, axes: [3]int{2, 2, 2}},

		{in: "0", wantErr: "depth 0 < 1"},
		{in: "-1", wantErr: "depth -1 < 1"},
		{in: "two", wantErr: `bad ghost depth "two"`},
		{in: "", wantErr: `bad ghost depth ""`},
		{in: "1,0,1", wantErr: "axis 1 depth 0 < 1"},
		{in: "1,,3", wantErr: `bad ghost depth "1,,3"`},

		// The cases this test exists for: wrong arity must say so.
		{in: "2,3", wantErr: "2 values (want 1 uniform depth or 3 per-axis depths dx,dy,dz)"},
		{in: "1,2,3,4", wantErr: "4 values (want 1 uniform depth or 3 per-axis depths dx,dy,dz)"},
		{in: "2,", wantErr: `trailing comma (want d or dx,dy,dz)`},
		{in: "1,2,3,", wantErr: `trailing comma (want d or dx,dy,dz)`},
	}
	for _, tc := range cases {
		uniform, axes, err := ParseGhostDepth(tc.in)
		if tc.wantErr != "" {
			if err == nil {
				t.Errorf("ParseGhostDepth(%q): got (%d, %v), want error containing %q", tc.in, uniform, axes, tc.wantErr)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseGhostDepth(%q): error %q does not contain %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseGhostDepth(%q): unexpected error %v", tc.in, err)
			continue
		}
		if uniform != tc.uniform || axes != tc.axes {
			t.Errorf("ParseGhostDepth(%q) = (%d, %v), want (%d, %v)", tc.in, uniform, axes, tc.uniform, tc.axes)
		}
	}
}

// TestResolveThreads: explicit counts pass through, negatives fail
// loudly, and the auto value (0) always lands at >= 1 even when ranks
// exceed the core count.
func TestResolveThreads(t *testing.T) {
	if n, err := ResolveThreads(7, 1); err != nil || n != 7 {
		t.Errorf("ResolveThreads(7, 1) = (%d, %v), want (7, nil)", n, err)
	}
	if _, err := ResolveThreads(-1, 1); err == nil {
		t.Error("ResolveThreads(-1, 1): want error, got nil")
	}
	for _, ranks := range []int{0, 1, 1 << 20} {
		n, err := ResolveThreads(0, ranks)
		if err != nil || n < 1 {
			t.Errorf("ResolveThreads(0, %d) = (%d, %v), want >= 1 thread and no error", ranks, n, err)
		}
	}
}
