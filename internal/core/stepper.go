package core

import (
	"math"
	"time"

	"repro/internal/collision"
	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// testForceOperatorPath, when set by a test in this package, routes BGK
// configurations through the generic operator kernel instead of the
// specialized legacy kernels (the equivalence guard for the indirection).
var testForceOperatorPath bool

// buildOperator resolves a config's collision operator: nil for plain BGK
// (the legacy kernels), a collision.Operator otherwise.
func buildOperator(cfg *Config) (collision.Operator, error) {
	if cfg.Collision.IsBGK() && !testForceOperatorPath {
		return nil, nil
	}
	return cfg.Collision.New(cfg.Model, cfg.Tau)
}

// stepper holds one rank's state for the stepping loop.
//
// Local plane coordinates: the field spans [0, own+2W) in x, where W is the
// halo width (GhostDepth·k). Planes [W, W+own) are owned; [0,W) is the left
// ghost region and [W+own, own+2W) the right one. For OptOrig, W equals k
// and the side regions are transient egress margins rather than ghosts.
type stepper struct {
	cfg   *Config
	model *lattice.Model
	r     *comm.Rank

	startX int // first owned global plane
	own    int // owned planes
	k      int // lattice max speed (planes crossed per step)
	depth  int // deep-halo depth
	w      int // halo width = depth·k

	d       grid.Dims // local field dims (own+2w, NY, NZ)
	f, fadv *grid.Field
	ex      *halo.Exchanger
	orig    *origProto

	br           boxRunner
	scratch      []*workerScratch
	ghostUpdates int64
	coef         eqCoefs
	pairs        []velPair
	srcY         [][]int32          // per velocity: pull-stream source row per dst row (LoBr+)
	op           collision.Operator // non-nil routes collisions through the generic operator kernel
	jit          *metrics.RNG
	rec          *obs.Recorder // nil unless Config.Observe; every call site is nil-safe

	// Obstacles and forcing (see boundary.go, fixindex.go).
	mask                   []bool
	fix                    *fixIndex
	stepForce              [numBodies][3]float64
	forceSer               []float64
	shiftX, shiftY, shiftZ float64
}

func newStepper(cfg *Config, dec decomp.Cartesian, r *comm.Rank) (*stepper, error) {
	startX, own := dec.Own(r.ID, decomp.AxisX)
	left := dec.Neighbor(r.ID, decomp.AxisX, -1)
	right := dec.Neighbor(r.ID, decomp.AxisX, +1)
	k := cfg.Model.MaxSpeed
	w := cfg.GhostDepth * k
	s := &stepper{
		cfg: cfg, model: cfg.Model, r: r,
		startX: startX, own: own,
		k: k, depth: cfg.GhostDepth, w: w,
		coef:  newEqCoefs(cfg.Model),
		pairs: velocityPairs(cfg.Model),
	}
	op, err := buildOperator(cfg)
	if err != nil {
		return nil, err
	}
	s.op = op
	s.d = grid.Dims{NX: own + 2*w, NY: cfg.N.NY, NZ: cfg.N.NZ}
	s.br = newBoxRunner(cfg.Threads)
	s.scratch = newScratches(s.br.threads(), cfg.Model.Q, s.d.NZ, s.op, false)
	s.f = grid.NewField(cfg.Model.Q, s.d, cfg.Layout)
	s.fadv = grid.NewField(cfg.Model.Q, s.d, cfg.Layout)
	if cfg.Opt == OptOrig {
		s.orig = newOrigProto(s, left, right)
	} else {
		ex, err := halo.NewExchanger(cfg.Model.Q, s.d, own, w, left, right)
		if err != nil {
			return nil, err
		}
		s.ex = ex
	}
	if cfg.Opt >= OptLoBr {
		s.buildSrcYTables()
	}
	if cfg.StepJitter > 0 {
		s.jit = metrics.NewRNG(uint64(r.ID)*0x9e3779b9 + 1)
	}
	// Velocity-shift forcing: equilibrium evaluated at u + τ_j·a, where
	// τ_j is the relaxation time the operator applies to momentum (τ for
	// BGK/MRT, τ⁻ for TRT) — that is what makes the injected momentum
	// exactly ρ·a per step for every operator.
	shiftTau := cfg.Tau
	if s.op != nil {
		shiftTau = s.op.ShiftTau()
	}
	s.shiftX = shiftTau * cfg.Accel[0]
	s.shiftY = shiftTau * cfg.Accel[1]
	s.shiftZ = shiftTau * cfg.Accel[2]
	s.buildMask()
	return s, nil
}

// buildSrcYTables precomputes, for every velocity, the pull-stream source
// row index for each destination row: srcY[v][y] = (y − cy) mod NY. This is
// the branch-reduction analog of the paper's Fig. 6 index arrays: the inner
// loops then contain no wrap arithmetic at all.
func (s *stepper) buildSrcYTables() {
	ny := s.d.NY
	s.srcY = make([][]int32, s.model.Q)
	for v := 0; v < s.model.Q; v++ {
		tab := make([]int32, ny)
		for y := 0; y < ny; y++ {
			tab[y] = int32(((y-s.model.Cy[v])%ny + ny) % ny)
		}
		s.srcY[v] = tab
	}
}

// testPoisonGhosts, set by tests, floods every cell with NaN before the
// owned region is initialized. Every ghost copy is then poison until the
// exchange or face fill that defines it runs, so a kernel that consumes a
// ghost value one step too early — an off-by-one in the shrinking-box
// schedule, a missed axis in a refresh, a fill pass that skips a layer —
// drags NaN into the owned region and fails the bit-exact comparison
// against the clean run. NaN is the one poison that survives arithmetic.
var testPoisonGhosts bool

func poisonField(f *grid.Field) {
	for i := range f.Data {
		f.Data[i] = math.NaN()
	}
}

// initField writes the equilibrium of the configured initial condition into
// the owned region. Ghost planes are populated by the first exchange.
func (s *stepper) initField() {
	if testPoisonGhosts {
		poisonField(s.f)
	}
	feq := make([]float64, s.model.Q)
	rest := make([]float64, s.model.Q)
	s.model.Equilibrium(1, 0, 0, 0, rest)
	for ix := 0; ix < s.own; ix++ {
		gx := s.startX + ix
		for iy := 0; iy < s.d.NY; iy++ {
			for iz := 0; iz < s.d.NZ; iz++ {
				if s.mask != nil && s.mask[s.d.Index(s.w+ix, iy, iz)] {
					// Solid cells hold a benign rest state; their values are
					// never consumed (every link out of them is bounced).
					s.f.SetCell(s.w+ix, iy, iz, rest)
					continue
				}
				rho, ux, uy, uz := s.cfg.Init(gx, iy, iz)
				s.model.Equilibrium(rho, ux, uy, uz, feq)
				s.f.SetCell(s.w+ix, iy, iz, feq)
			}
		}
	}
}

// run advances the configured number of steps.
func (s *stepper) run() {
	if s.orig != nil {
		for n := 0; n < s.cfg.Steps; n++ {
			s.orig.step()
			s.endForceStep()
			s.jitter()
		}
		return
	}
	for done := 0; done < s.cfg.Steps; {
		runLen := s.depth
		if rest := s.cfg.Steps - done; rest < runLen {
			runLen = rest
		}
		if s.cfg.Fused {
			s.fusedCycle(runLen)
		} else {
			s.cycle(runLen)
		}
		done += runLen
	}
}

// jitter injects the configured deterministic per-rank delay.
func (s *stepper) jitter() {
	if s.jit == nil {
		return
	}
	time.Sleep(time.Duration(s.jit.Float64() * float64(s.cfg.StepJitter)))
}

// cycle performs one deep-halo cycle: a halo exchange followed by runLen
// (≤ depth) stream+collide steps on a shrinking valid region.
func (s *stepper) cycle(runLen int) {
	exts := halo.CycleExtents(s.depth, s.k)
	overlap := s.cfg.Opt >= OptGCC && s.r.N > 1
	switch {
	case s.r.N == 1:
		// Single rank: periodic wrap in x is a local copy.
		s.ex.ExchangeLocal(s.f)
	case overlap:
		s.overlappedFirstStep(exts[0])
	case s.cfg.Opt >= OptNBC:
		s.ex.ExchangeNonBlocking(s.r, s.f)
	default:
		s.ex.ExchangeBlocking(s.r, s.f)
	}
	start := 0
	if overlap {
		s.jitter()
		start = 1
	}
	for si := start; si < runLen; si++ {
		ext := exts[si]
		lo, hi := s.regionFor(ext)
		s.streamRegion(lo, hi)
		s.applyBounceBack(lo, hi)
		s.collideRegion(lo, hi)
		s.countUpdates(lo, hi)
		s.endForceStep()
		s.jitter()
	}
}

// regionFor returns the destination plane range computable in a step whose
// inputs are valid on owned ± ext planes: owned ± (ext − k).
func (s *stepper) regionFor(ext int) (lo, hi int) {
	return s.w - (ext - s.k), s.w + s.own + (ext - s.k)
}

// planFirstStep runs the box schedule planner for the slab's overlapped
// first step: the slab is the one-stale-axis (x) degenerate case, with
// full y/z extents and borders packed before any compute (no late packs).
func (s *stepper) planFirstStep(lo, hi int) stepPlan {
	dest := box{lo: [3]int{lo, 0, 0}, hi: [3]int{hi, s.d.NY, s.d.NZ}}
	return planStep(dest, [3]int{s.own, s.d.NY, s.d.NZ}, [3]int{s.w, 0, 0}, s.k,
		[3]bool{true, false, false}, [3]bool{})
}

// overlappedFirstStep implements the GC-C schedule (§V.F, Fig. 7) for the
// first step of a cycle: receives posted, borders of the previous state
// sent, interior streamed and partially collided while messages fly, then
// the ghost-dependent rim finished after WaitUnpack. The interior/rim
// split comes from the box schedule planner (schedule.go), which chooses
// it so no collide overwrites state an edge stream still needs.
func (s *stepper) overlappedFirstStep(ext int) {
	lo, hi := s.regionFor(ext) // [k, own+2w−k)
	plan := s.planFirstStep(lo, hi)
	// Stream may run ahead wherever its inputs avoid the ghost planes;
	// collide only where edge streams will not re-read f.
	isLo, isHi := plan.interiorS.lo[0], plan.interiorS.hi[0]
	icLo, icHi := plan.interiorC.lo[0], plan.interiorC.hi[0]

	s.ex.PostRecvs(s.r)
	s.ex.SendBorders(s.r, s.f)
	s.streamRegion(isLo, isHi)
	s.applyBounceBack(isLo, isHi)
	s.collideRegion(icLo, icHi)
	s.ex.WaitUnpack(s.r, s.f)
	t0 := s.rec.Begin()
	s.streamRegionPair(lo, isLo, isHi, hi)
	s.rec.EndAxis(obs.Rim, 0, t0)
	s.applyBounceBack(lo, isLo)
	s.applyBounceBack(isHi, hi)
	t0 = s.rec.Begin()
	s.collideRegionPair(lo, icLo, icHi, hi)
	s.rec.EndAxis(obs.Rim, 0, t0)
	s.countUpdates(lo, hi)
	s.endForceStep()
}

// countUpdates accumulates the ghost-region overhead metric.
func (s *stepper) countUpdates(lo, hi int) {
	extra := (hi - lo) - s.own
	if extra > 0 {
		s.ghostUpdates += int64(extra) * int64(s.d.PlaneCells())
	}
}

// slabBox is the box form of a destination plane range: planes [lo,hi)
// with the full y/z cross-section.
func (s *stepper) slabBox(lo, hi int) box {
	return box{lo: [3]int{lo, 0, 0}, hi: [3]int{hi, s.d.NY, s.d.NZ}}
}

// streamKernel resolves the streaming kernel for the configured level.
func (s *stepper) streamKernel() func(worker int, b box) {
	switch {
	case s.cfg.Opt <= OptGC:
		return s.streamScalar
	case s.cfg.Opt < OptLoBr:
		return s.streamCopy
	default:
		return s.streamCopyIndexed
	}
}

// streamRegion advances the streaming step for destination planes [lo,hi).
func (s *stepper) streamRegion(lo, hi int) {
	if hi <= lo {
		return
	}
	t0 := s.rec.Begin()
	s.br.run(s.streamKernel(), s.slabBox(lo, hi))
	s.rec.End(obs.Interior, t0)
}

// streamRegionPair streams two disjoint plane ranges (the separated
// ghost-region loops of §V.D) as one chunk batch, so the thin rim pair
// load-balances across the whole team.
func (s *stepper) streamRegionPair(lo1, hi1, lo2, hi2 int) {
	s.br.run(s.streamKernel(), s.slabBox(lo1, hi1), s.slabBox(lo2, hi2))
}

// collideKernelSlab resolves the collision kernel for the configured
// operator and level.
func (s *stepper) collideKernelSlab() func(worker int, b box) {
	switch {
	case s.op != nil:
		return s.collideOperator
	case s.cfg.Opt <= OptGC:
		return s.collideNaive
	case s.cfg.Opt == OptDH:
		return s.collideRowGeneric
	case s.cfg.Opt < OptSIMD:
		return s.collidePaired
	default:
		return s.collidePairedBlocked
	}
}

// collideRegion applies the configured collision to planes [lo,hi).
func (s *stepper) collideRegion(lo, hi int) {
	if hi <= lo {
		return
	}
	t0 := s.rec.Begin()
	s.br.run(s.collideKernelSlab(), s.slabBox(lo, hi))
	s.rec.End(obs.Interior, t0)
}

// collideRegionPair collides two disjoint plane ranges.
func (s *stepper) collideRegionPair(lo1, hi1, lo2, hi2 int) {
	s.br.run(s.collideKernelSlab(), s.slabBox(lo1, hi1), s.slabBox(lo2, hi2))
}

// ownedSums returns mass and momentum summed over the owned fluid cells.
func (s *stepper) ownedSums() (mass, mx, my, mz float64) {
	fc := make([]float64, s.model.Q)
	for ix := s.w; ix < s.w+s.own; ix++ {
		for iy := 0; iy < s.d.NY; iy++ {
			for iz := 0; iz < s.d.NZ; iz++ {
				if s.mask != nil && s.mask[s.d.Index(ix, iy, iz)] {
					continue
				}
				s.f.Cell(ix, iy, iz, fc)
				rho, jx, jy, jz := s.model.Moments(fc)
				mass += rho
				mx += jx
				my += jy
				mz += jz
			}
		}
	}
	return
}

// ownedSlab packs the owned region of the final state velocity-major (for
// every velocity, the owned planes in order), independent of layout.
func (s *stepper) ownedSlab() []float64 {
	plane := s.d.PlaneCells()
	n := s.own * plane
	out := make([]float64, s.model.Q*n)
	if s.f.Layout == grid.SoA {
		for v := 0; v < s.model.Q; v++ {
			blk := s.f.V(v)
			copy(out[v*n:(v+1)*n], blk[s.w*plane:(s.w+s.own)*plane])
		}
		return out
	}
	for v := 0; v < s.model.Q; v++ {
		for c := 0; c < n; c++ {
			out[v*n+c] = s.f.Data[(s.w*plane+c)*s.model.Q+v]
		}
	}
	return out
}

// ghosts, gather, axisBytes and forceSeries adapt the stepper to the
// shared Run harness (the cart stepper implements the same quartet).
func (s *stepper) ghosts() int64          { return s.ghostUpdates }
func (s *stepper) close()                 { s.br.close() }
func (s *stepper) gather() []float64      { return s.ownedSlab() }
func (s *stepper) forceSeries() []float64 { return s.forceSer }

// setRecorder attaches the per-phase recorder to the stepper and its
// exchanger (called by Run before initField when Config.Observe is set).
func (s *stepper) setRecorder(rec *obs.Recorder) {
	s.rec = rec
	if s.ex != nil {
		s.ex.Rec = rec
	}
}

// observation snapshots the recorder plus the pool's per-worker chunk
// counts.
func (s *stepper) observation() obs.RankObservation {
	o := s.rec.Observation()
	if s.br.pool.Threads() > 1 {
		o.WorkerChunks = s.br.pool.ChunkCounts()
		o.WorkerWeights = s.br.weightTotals()
	}
	return o
}

// axisBytes reports this rank's halo payload per full exchange: the
// exchanger's own accounting (x only — the slab has no y/z halo). Zero
// for the no-ghost Orig protocol and for single-rank local wraps.
func (s *stepper) axisBytes() [3]int64 {
	if s.ex == nil || s.r.N == 1 {
		return [3]int64{}
	}
	return [3]int64{s.ex.BytesPerExchange(), 0, 0}
}

// velPair groups a velocity with its opposite for the pair-symmetric
// collision kernels; rest velocities pair with themselves.
type velPair struct {
	i, j int // j = Opp[i]; i == j for the rest velocity
}

func velocityPairs(m *lattice.Model) []velPair {
	var ps []velPair
	for i := 0; i < m.Q; i++ {
		j := m.Opp[i]
		if i < j {
			ps = append(ps, velPair{i, j})
		} else if i == j {
			ps = append(ps, velPair{i, i})
		}
	}
	return ps
}
