package core

// Solid obstacles and body forces. The paper's code is the fluid component
// of a multiphysics framework for "complicated geometries from microfluidic
// devices to patient-specific arterial geometries" (§I) and praises the
// LBM's "advantageous handling of complex flow phenomena in irregular
// boundary conditions" (§II); this file supplies those two ingredients for
// the periodic benchmark solver:
//
//   - a solid mask with halfway bounce-back walls, implemented as a
//     post-streaming fixup so every optimization level's kernels stay
//     untouched: any population that streamed out of a solid cell is
//     replaced by the reflection of the fluid cell's own pre-stream
//     population, which places the no-slip wall half a link beyond the
//     fluid cell and conserves fluid mass exactly;
//
//   - a constant body acceleration via the exact-difference velocity shift:
//     the equilibrium is evaluated at u + τ·a, which adds ρ·a of momentum
//     per cell per step (the standard driving for channel flows).
//
// The bounce-back fixup runs between stream and collide, so it is
// incompatible with the fused kernel (which has no such point); the
// configuration validator enforces that.

import "repro/internal/grid"

// fixup is one bounce-back link: population v of (fluid) cell was streamed
// from a solid neighbor and must be replaced by the cell's own opposite
// pre-stream population, plus delta — zero for stationary walls, the
// 2·w_v·ρ0·(c_v·u_w)/c_s² momentum correction for a moving global
// boundary face (see bc.go). The fixup reads only the fluid cell's own
// populations, never the solid neighbor's, which is what keeps bounded
// runs bit-comparable across decompositions and ghost depths.
type fixup struct {
	cell  int32
	v     uint8
	opp   uint8
	delta float64
}

// buildMask evaluates the global solid mask over the local field
// (including ghost/margin planes, with periodic wrap in x) and precomputes
// the per-plane bounce-back fixup lists.
func (s *stepper) buildMask() {
	if s.cfg.Solid == nil {
		return
	}
	nx, ny, nz := s.d.NX, s.d.NY, s.d.NZ
	gnx := s.cfg.N.NX
	s.mask = make([]bool, s.d.Cells())
	for ix := 0; ix < nx; ix++ {
		gx := ((s.startX+ix-s.w)%gnx + gnx) % gnx
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				s.mask[s.d.Index(ix, iy, iz)] = s.cfg.Solid(gx, iy, iz)
			}
		}
	}
	m := s.model
	s.fix = make([][]fixup, nx)
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				cell := s.d.Index(ix, iy, iz)
				if s.mask[cell] {
					continue
				}
				for v := 0; v < m.Q; v++ {
					sx := ix - m.Cx[v]
					if sx < 0 || sx >= nx {
						continue // outside the allocation; never streamed
					}
					sy := ((iy-m.Cy[v])%ny + ny) % ny
					sz := ((iz-m.Cz[v])%nz + nz) % nz
					if s.mask[s.d.Index(sx, sy, sz)] {
						s.fix[ix] = append(s.fix[ix], fixup{
							cell: int32(cell), v: uint8(v), opp: uint8(m.Opp[v]),
						})
					}
				}
			}
		}
	}
}

// applyBounceBack replaces, for destination planes [lo,hi), every
// population streamed out of a solid cell with the reflected pre-stream
// population of the receiving fluid cell: f_adv[v][x] = f[opp(v)][x].
func (s *stepper) applyBounceBack(lo, hi int) {
	if s.fix == nil || hi <= lo {
		return
	}
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.fix) {
		hi = len(s.fix)
	}
	f, fadv := s.f, s.fadv
	if f.Layout == grid.SoA {
		cells := s.d.Cells()
		for ix := lo; ix < hi; ix++ {
			for _, fx := range s.fix[ix] {
				fadv.Data[int(fx.v)*cells+int(fx.cell)] = f.Data[int(fx.opp)*cells+int(fx.cell)] + fx.delta
			}
		}
		return
	}
	q := f.Q
	for ix := lo; ix < hi; ix++ {
		for _, fx := range s.fix[ix] {
			fadv.Data[int(fx.cell)*q+int(fx.v)] = f.Data[int(fx.cell)*q+int(fx.opp)] + fx.delta
		}
	}
}

// FluidCells counts the non-solid cells of a global domain under a mask
// (the paper's N_fl in Eq. 4); a nil mask means every cell is fluid.
func FluidCells(n grid.Dims, solid func(ix, iy, iz int) bool) int {
	if solid == nil {
		return n.Cells()
	}
	count := 0
	for ix := 0; ix < n.NX; ix++ {
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				if !solid(ix, iy, iz) {
					count++
				}
			}
		}
	}
	return count
}
