package core

// Solid obstacles and body forces. The paper's code is the fluid component
// of a multiphysics framework for "complicated geometries from microfluidic
// devices to patient-specific arterial geometries" (§I) and praises the
// LBM's "advantageous handling of complex flow phenomena in irregular
// boundary conditions" (§II); this file supplies those two ingredients for
// the periodic benchmark solver:
//
//   - a voxel solid mask (geom.Mask) with halfway bounce-back walls,
//     implemented as a post-streaming fixup so every optimization level's
//     kernels stay untouched: any population that streamed out of a solid
//     cell is replaced by the reflection of the fluid cell's own pre-stream
//     population, which places the no-slip wall half a link beyond the
//     fluid cell and conserves fluid mass exactly;
//
//   - a constant body acceleration via the exact-difference velocity shift:
//     the equilibrium is evaluated at u + τ·a, which adds ρ·a of momentum
//     per cell per step (the standard driving for channel flows).
//
// The fixup links live in the per-box fixup index of fixindex.go, which
// also supplies the momentum-exchange force measurement. The bounce-back
// fixup runs between stream and collide, so it is incompatible with the
// fused kernel (which has no such point); the configuration validator
// enforces that.

import (
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/obs"
)

// buildMask evaluates the global voxel mask over the local field
// (including ghost/margin planes, with periodic wrap in x) and builds the
// bounce-back fixup index. The slab stepper handles only fully periodic
// domains, so every link is an obstacle link with zero delta.
func (s *stepper) buildMask() {
	if s.cfg.Solid == nil {
		return
	}
	nx, ny, nz := s.d.NX, s.d.NY, s.d.NZ
	gnx := s.cfg.N.NX
	s.mask = make([]bool, s.d.Cells())
	for ix := 0; ix < nx; ix++ {
		gx := ((s.startX+ix-s.w)%gnx + gnx) % gnx
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				s.mask[s.d.Index(ix, iy, iz)] = s.cfg.Solid.At(gx, iy, iz)
			}
		}
	}
	m := s.model
	s.fix = newFixIndex(s.d, m)
	for ix := 0; ix < nx; ix++ {
		owned := ix >= s.w && ix < s.w+s.own
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				cell := s.d.Index(ix, iy, iz)
				if s.mask[cell] {
					continue
				}
				for v := 0; v < m.Q; v++ {
					sx := ix - m.Cx[v]
					if sx < 0 || sx >= nx {
						continue // outside the allocation; never streamed
					}
					sy := ((iy-m.Cy[v])%ny + ny) % ny
					sz := ((iz-m.Cz[v])%nz + nz) % nz
					if s.mask[s.d.Index(sx, sy, sz)] {
						flags := fixObstacle
						if owned {
							flags |= fixOwned
						}
						s.fix.add(ix, iy, iz, v, m.Opp[v], 0, flags)
					}
				}
			}
		}
	}
	s.fix.finish()
}

// applyBounceBack applies the fixup links of destination planes [lo,hi)
// (full y/z extent): through the per-box index, or the legacy plane scan
// under Config.FixupScan, accumulating momentum-exchange forces when the
// run measures them.
func (s *stepper) applyBounceBack(lo, hi int) {
	if s.fix.empty() || hi <= lo {
		return
	}
	t0 := s.rec.Begin()
	defer s.rec.End(obs.Fixup, t0)
	b := s.slabBox(lo, hi)
	switch {
	case s.cfg.MeasureForces:
		// Serial: force sums must keep one accumulation order.
		s.fix.applyBoxForce(s.f, s.fadv, b, &s.stepForce)
	case s.cfg.FixupScan:
		s.fix.applyPlanes(s.f, s.fadv, lo, hi)
	default:
		s.br.run(func(worker int, sub box) {
			s.fix.applyBox(s.f, s.fadv, sub)
		}, b)
	}
}

// endForceStep closes one time step's force accumulation: the step's
// owned-link sums join the per-step series that Run reduces across ranks.
func appendForceStep(series []float64, acc *[numBodies][3]float64) []float64 {
	for b := 0; b < numBodies; b++ {
		series = append(series, acc[b][0], acc[b][1], acc[b][2])
		acc[b] = [3]float64{}
	}
	return series
}

func (s *stepper) endForceStep() {
	if !s.cfg.MeasureForces {
		return
	}
	t0 := s.rec.Begin()
	s.forceSer = appendForceStep(s.forceSer, &s.stepForce)
	s.rec.End(obs.Force, t0)
}

// FluidCells counts the non-solid cells of a global domain under a voxel
// mask (the paper's N_fl in Eq. 4); a nil mask means every cell is fluid.
func FluidCells(n grid.Dims, solid *geom.Mask) int {
	if solid == nil {
		return n.Cells()
	}
	return solid.Fluids()
}
