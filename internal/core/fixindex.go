package core

// The per-box bounce-back fixup index. Fixup links used to live in
// per-x-plane lists: applying them to a sub-box meant scanning every link
// of every plane in range and filtering by y/z — O(plane) per phase, which
// the phased overlapped schedule pays once per rim and which dominates for
// boundary-heavy geometries (arterial masks, dense obstacle fields). The
// index stores the links CSR-style: sorted by cell (z-fastest, matching
// the build order), with one span per (ix,iy) row. Applying to a box is
// then a walk of exactly the rows the box covers, with the z range of each
// row located by binary search — O(links in box + rows in box), on both
// steppers at every optimization level.
//
// The same link inventory doubles as the momentum-exchange force
// measurement (Ladd's method): a link that bounces population v at fluid
// cell x transferred the momentum of the incoming population c_opp·f_opp
// to the body and received back c_v·(f_opp + delta), so the body gains
//
//	ΔF = c_opp · (2·f_opp + delta)
//
// per link per step. Links are tagged with their body (the user's voxel
// mask, or the global boundary faces) and with whether their cell is
// owned — only owned links are counted, which is what makes the per-rank
// partial sums reduce to decomposition-independent totals.
//
// The legacy whole-plane scan survives as applyPlanes/applyPlanesStrict
// (Config.FixupScan), the reference path the equivalence tests and the
// lbmbench fixup experiment compare against.

import (
	"sort"

	"repro/internal/grid"
	"repro/internal/lattice"
)

// fixup is one bounce-back link: population v of (fluid) cell was streamed
// from a solid neighbor and must be replaced by the cell's own opposite
// pre-stream population, plus delta — zero for stationary walls, the
// Zou-He odd-part term for moving walls and velocity inlets (see bc.go).
// The fixup reads only the fluid cell's own populations, never the solid
// neighbor's, which is what keeps bounded runs bit-comparable across
// decompositions and ghost depths.
type fixup struct {
	cell  int32
	v     uint8
	opp   uint8
	flags uint8
	delta float64
}

// fixup flags.
const (
	// fixOwned marks links whose fluid cell lies in the rank's owned box:
	// exactly the links counted by the force accumulation (ghost-region
	// copies of the same physical link are someone else's to count).
	fixOwned uint8 = 1 << iota
	// fixObstacle marks links whose solid endpoint comes from the user's
	// voxel mask; links without it bounce off a global boundary face.
	fixObstacle
)

// Force-accumulation bodies.
const (
	bodyObstacle = iota // the voxel mask (drag/lift target)
	bodyFaces           // the global boundary faces, aggregated
	numBodies
)

// fixIndex is the CSR-ordered link inventory of one rank's local box.
type fixIndex struct {
	d     grid.Dims
	links []fixup // sorted by (ix, iy, iz, v) — the build order
	rows  []int32 // len NX·NY+1; row (ix,iy) spans links[rows[ix·NY+iy] : rows[ix·NY+iy+1]]
	// nextRow is the CSR build cursor (rows below it have their start set).
	nextRow int
	// cxo/cyo/czo are c_opp per link velocity v (i.e. −c_v), the
	// momentum-exchange direction of a link bouncing v.
	cxo, cyo, czo []float64
}

func newFixIndex(d grid.Dims, m *lattice.Model) *fixIndex {
	fi := &fixIndex{
		d:    d,
		rows: make([]int32, d.NX*d.NY+1),
		cxo:  make([]float64, m.Q),
		cyo:  make([]float64, m.Q),
		czo:  make([]float64, m.Q),
	}
	for v := 0; v < m.Q; v++ {
		fi.cxo[v] = -float64(m.Cx[v])
		fi.cyo[v] = -float64(m.Cy[v])
		fi.czo[v] = -float64(m.Cz[v])
	}
	return fi
}

// add appends one link. Calls must come in (ix, iy, iz, v) lexicographic
// order — the natural order of the build loops — so the CSR rows stay
// sorted and the per-row z binary search works.
func (fi *fixIndex) add(ix, iy, iz, v, opp int, delta float64, flags uint8) {
	row := ix*fi.d.NY + iy
	for fi.nextRow <= row {
		fi.rows[fi.nextRow] = int32(len(fi.links))
		fi.nextRow++
	}
	fi.links = append(fi.links, fixup{
		cell: int32(fi.d.Index(ix, iy, iz)), v: uint8(v), opp: uint8(opp),
		delta: delta, flags: flags,
	})
}

// finish seals the CSR row table after the last add.
func (fi *fixIndex) finish() {
	for fi.nextRow <= fi.d.NX*fi.d.NY {
		fi.rows[fi.nextRow] = int32(len(fi.links))
		fi.nextRow++
	}
}

// empty reports whether the index holds no links (nil-safe).
func (fi *fixIndex) empty() bool { return fi == nil || len(fi.links) == 0 }

// clampTo clips box b to the index's local dims.
func (fi *fixIndex) clampTo(b box) box {
	hi := [3]int{fi.d.NX, fi.d.NY, fi.d.NZ}
	for a := 0; a < 3; a++ {
		if b.lo[a] < 0 {
			b.lo[a] = 0
		}
		if b.hi[a] > hi[a] {
			b.hi[a] = hi[a]
		}
	}
	return b
}

// zSlice narrows one row's links to those with iz in [zlo, zhi). Links in
// a row are sorted by cell, and cell mod NZ is iz, so both bounds are
// binary searches.
func zSlice(seg []fixup, nz, zlo, zhi int) []fixup {
	lo := sort.Search(len(seg), func(i int) bool { return int(seg[i].cell)%nz >= zlo })
	hi := lo + sort.Search(len(seg[lo:]), func(i int) bool { return int(seg[lo+i].cell)%nz >= zhi })
	return seg[lo:hi]
}

// applyBox replaces, for every link whose cell lies in box b, the
// population streamed out of the solid neighbor with the reflected
// pre-stream population of the receiving fluid cell:
// f_adv[v][x] = f[opp(v)][x] + delta. Exactly the links of b are applied,
// which is what the phased overlapped schedule requires (a fixup applied
// before its cell's rim stream would be overwritten by it).
func (fi *fixIndex) applyBox(f, fadv *grid.Field, b box) {
	if fi.empty() {
		return
	}
	b = fi.clampTo(b)
	nz := fi.d.NZ
	fullZ := b.lo[2] == 0 && b.hi[2] == nz
	if fullZ && b.lo[1] == 0 && b.hi[1] == fi.d.NY {
		// Full cross-section: the links of the covered planes are one
		// contiguous CSR span — skip the per-row walk entirely.
		fi.applyPlanes(f, fadv, b.lo[0], b.hi[0])
		return
	}
	if f.Layout == grid.SoA {
		cells := fi.d.Cells()
		fd, ad := f.Data, fadv.Data
		for ix := b.lo[0]; ix < b.hi[0]; ix++ {
			rowBase := ix * fi.d.NY
			for iy := b.lo[1]; iy < b.hi[1]; iy++ {
				seg := fi.links[fi.rows[rowBase+iy]:fi.rows[rowBase+iy+1]]
				if !fullZ {
					seg = zSlice(seg, nz, b.lo[2], b.hi[2])
				}
				for _, fx := range seg {
					ad[int(fx.v)*cells+int(fx.cell)] = fd[int(fx.opp)*cells+int(fx.cell)] + fx.delta
				}
			}
		}
		return
	}
	q := f.Q
	for ix := b.lo[0]; ix < b.hi[0]; ix++ {
		rowBase := ix * fi.d.NY
		for iy := b.lo[1]; iy < b.hi[1]; iy++ {
			seg := fi.links[fi.rows[rowBase+iy]:fi.rows[rowBase+iy+1]]
			if !fullZ {
				seg = zSlice(seg, nz, b.lo[2], b.hi[2])
			}
			for _, fx := range seg {
				fadv.Data[int(fx.cell)*q+int(fx.v)] = f.Data[int(fx.cell)*q+int(fx.opp)] + fx.delta
			}
		}
	}
}

// applyBoxForce is applyBox with momentum-exchange accumulation: every
// owned link adds c_opp·(2·f_opp + delta) to its body's force (SoA only —
// the force path always runs on the SoA steppers).
func (fi *fixIndex) applyBoxForce(f, fadv *grid.Field, b box, acc *[numBodies][3]float64) {
	if fi.empty() {
		return
	}
	b = fi.clampTo(b)
	nz := fi.d.NZ
	cells := fi.d.Cells()
	fullZ := b.lo[2] == 0 && b.hi[2] == nz
	fd, ad := f.Data, fadv.Data
	apply := func(seg []fixup) {
		for _, fx := range seg {
			fo := fd[int(fx.opp)*cells+int(fx.cell)]
			ad[int(fx.v)*cells+int(fx.cell)] = fo + fx.delta
			if fx.flags&fixOwned == 0 {
				continue
			}
			body := bodyFaces
			if fx.flags&fixObstacle != 0 {
				body = bodyObstacle
			}
			p := 2*fo + fx.delta
			acc[body][0] += fi.cxo[fx.v] * p
			acc[body][1] += fi.cyo[fx.v] * p
			acc[body][2] += fi.czo[fx.v] * p
		}
	}
	if fullZ && b.lo[1] == 0 && b.hi[1] == fi.d.NY {
		apply(fi.links[fi.rows[b.lo[0]*fi.d.NY]:fi.rows[b.hi[0]*fi.d.NY]])
		return
	}
	for ix := b.lo[0]; ix < b.hi[0]; ix++ {
		rowBase := ix * fi.d.NY
		for iy := b.lo[1]; iy < b.hi[1]; iy++ {
			seg := fi.links[fi.rows[rowBase+iy]:fi.rows[rowBase+iy+1]]
			if !fullZ {
				seg = zSlice(seg, nz, b.lo[2], b.hi[2])
			}
			apply(seg)
		}
	}
}

// applyPlanes is the legacy lenient whole-plane scan: every link whose
// cell lies in x-planes [lo, hi) is applied regardless of its y/z
// position. Links at cells outside a step's destination box touch only
// state that is already stale and never read before the next refresh, so
// the unsynchronized stepping paths may use this form; the phased
// schedule may not (see applyPlanesStrict). Reference path for the
// fixup-index equivalence tests and benchmarks.
func (fi *fixIndex) applyPlanes(f, fadv *grid.Field, lo, hi int) {
	if fi.empty() {
		return
	}
	if lo < 0 {
		lo = 0
	}
	if hi > fi.d.NX {
		hi = fi.d.NX
	}
	if hi <= lo {
		return
	}
	seg := fi.links[fi.rows[lo*fi.d.NY]:fi.rows[hi*fi.d.NY]]
	if f.Layout == grid.SoA {
		cells := fi.d.Cells()
		fd, ad := f.Data, fadv.Data
		for _, fx := range seg {
			ad[int(fx.v)*cells+int(fx.cell)] = fd[int(fx.opp)*cells+int(fx.cell)] + fx.delta
		}
		return
	}
	q := f.Q
	for _, fx := range seg {
		fadv.Data[int(fx.cell)*q+int(fx.v)] = f.Data[int(fx.cell)*q+int(fx.opp)] + fx.delta
	}
}

// applyPlanesStrict is the legacy strict scan: the whole-plane lists are
// walked and every link filtered by the box's y/z range — the O(plane)
// cost per phase the per-box index removes. Reference path only.
func (fi *fixIndex) applyPlanesStrict(f, fadv *grid.Field, b box) {
	if fi.empty() {
		return
	}
	b = fi.clampTo(b)
	nz, ny := fi.d.NZ, fi.d.NY
	cells := fi.d.Cells()
	fd, ad := f.Data, fadv.Data
	for ix := b.lo[0]; ix < b.hi[0]; ix++ {
		seg := fi.links[fi.rows[ix*ny]:fi.rows[(ix+1)*ny]]
		for _, fx := range seg {
			c := int(fx.cell)
			iz := c % nz
			iy := (c / nz) % ny
			if iy < b.lo[1] || iy >= b.hi[1] || iz < b.lo[2] || iz >= b.hi[2] {
				continue
			}
			ad[int(fx.v)*cells+c] = fd[int(fx.opp)*cells+c] + fx.delta
		}
	}
}
