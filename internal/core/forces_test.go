package core

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// TestForcesCrossDecomposition: the momentum-exchange force series on a
// cylinder in an inlet-driven channel must agree step for step across
// 1-D, 2-D and 3-D decompositions, deep halos and the overlapped
// schedule — the per-rank owned-link partial sums reduce to totals that
// differ only by float summation order (1e-12).
func TestForcesCrossDecomposition(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 16, NZ: 4}
	cyl := geom.CylinderZ(n, 8, 8.3, 2.5)
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 25,
		Opt: OptSIMD, Threads: 1, GhostDepth: 1,
		Boundary: InletChannelSpec(0.05, nil), Solid: cyl,
		MeasureForces: true,
	}
	ref := base
	ref.Ranks, ref.Decomp = 1, [3]int{1, 1, 1}
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.ObstacleForce) != base.Steps || len(want.FaceForce) != base.Steps {
		t.Fatalf("force series length %d/%d, want %d", len(want.ObstacleForce), len(want.FaceForce), base.Steps)
	}
	// The developing flow must push the cylinder downstream.
	if fx := want.ObstacleForce[base.Steps-1][0]; fx <= 0 {
		t.Errorf("cylinder drag %g, want > 0 (flow along +x)", fx)
	}
	cases := []struct {
		name      string
		decomp    [3]int
		opt       OptLevel
		depth     int
		depthAxes [3]int
	}{
		{"slab-shape", [3]int{4, 1, 1}, OptSIMD, 1, [3]int{}},
		{"pencil", [3]int{2, 2, 1}, OptSIMD, 1, [3]int{}},
		{"pencil-gcc-deep", [3]int{2, 2, 1}, OptGCC, 2, [3]int{}},
		{"block", [3]int{2, 2, 2}, OptNBC, 1, [3]int{}},
		{"pencil-axis-depth", [3]int{2, 2, 1}, OptGCC, 0, [3]int{2, 1, 1}},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Decomp = tc.decomp
		cfg.Ranks = tc.decomp[0] * tc.decomp[1] * tc.decomp[2]
		cfg.Opt = tc.opt
		cfg.GhostDepth = tc.depth
		cfg.GhostDepthAxes = tc.depthAxes
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var worst float64
		for s := 0; s < base.Steps; s++ {
			for a := 0; a < 3; a++ {
				if d := math.Abs(got.ObstacleForce[s][a] - want.ObstacleForce[s][a]); d > worst {
					worst = d
				}
				if d := math.Abs(got.FaceForce[s][a] - want.FaceForce[s][a]); d > worst {
					worst = d
				}
			}
		}
		if worst > 1e-12 {
			t.Errorf("%s: force series deviates from the 1-rank run by %g", tc.name, worst)
		}
	}
}

// TestForcesSlabVsBox: the slab stepper (periodic 1-D path) and the box
// stepper must measure identical obstacle forces on a periodic
// sphere-in-crossflow problem.
func TestForcesSlabVsBox(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 12, NZ: 10}
	sphere := geom.SphereAt(n, 8, 6, 5, 2.8)
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 20,
		Opt: OptSIMD, Threads: 2, GhostDepth: 1,
		Solid: sphere, Accel: [3]float64{2e-5, 0, 0},
		Init: func(ix, iy, iz int) (rho, ux, uy, uz float64) {
			return 1, 0.03, 0, 0 // uniform crossflow: drag settles along +x
		},
		MeasureForces: true,
	}
	slab := base
	slab.Ranks, slab.Decomp = 2, [3]int{2, 1, 1} // periodic slab stepper
	want, err := Run(slab)
	if err != nil {
		t.Fatal(err)
	}
	boxCfg := base
	boxCfg.Ranks, boxCfg.Decomp = 4, [3]int{2, 2, 1} // box stepper
	got, err := Run(boxCfg)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for s := 0; s < base.Steps; s++ {
		for a := 0; a < 3; a++ {
			if d := math.Abs(got.ObstacleForce[s][a] - want.ObstacleForce[s][a]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-12 {
		t.Errorf("slab vs box obstacle force series deviate by %g", worst)
	}
	if fx := want.ObstacleForce[base.Steps-1][0]; fx <= 0 {
		t.Errorf("sphere drag %g, want > 0 (forced flow along +x)", fx)
	}
}

// TestForceWallBalancePoiseuille: in the steady body-forced Poiseuille
// channel the walls must absorb exactly the momentum the forcing injects:
// F_wall·x = a·M_fluid per step (the discrete momentum balance of the
// bounce-back links) — a quantitative check of the momentum-exchange
// formula against an analytic invariant.
func TestForceWallBalancePoiseuille(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state transient in -short mode")
	}
	n := grid.Dims{NX: 6, NY: 10, NZ: 4}
	a := 1e-5
	steps := 1500 // ≳ 2 momentum diffusion times at tau = 1
	res, err := Run(Config{
		Model: lattice.D3Q19(), N: n, Tau: 1.0, Steps: steps,
		Opt: OptSIMD, Ranks: 2, Decomp: [3]int{2, 1, 1}, Threads: 1, GhostDepth: 1,
		Boundary: ChannelSpec(), Accel: [3]float64{a, 0, 0},
		MeasureForces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := a * res.Mass
	got := res.FaceForce[steps-1][0]
	if d := math.Abs(got-want) / want; d > 0.01 {
		t.Errorf("steady wall drag %g, want a·M = %g (rel err %.4f)", got, want, d)
	}
	// Transverse components vanish by symmetry.
	if math.Abs(res.FaceForce[steps-1][1]) > 1e-12 || math.Abs(res.FaceForce[steps-1][2]) > 1e-12 {
		t.Errorf("spurious transverse wall force %v", res.FaceForce[steps-1])
	}
	// No obstacle: the mask body reports zero.
	if res.ObstacleForce[steps-1] != ([3]float64{}) {
		t.Errorf("obstacle force %v without a mask", res.ObstacleForce[steps-1])
	}
}
