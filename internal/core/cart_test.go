package core

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// Multi-axis decomposition tests: the oracle comparisons reuse the
// independent refSolver of core_test.go, so a 2-D or 3-D run is held to
// the same 1e-12 standard as every slab configuration.

func TestCartOptLevelsAgainstOracleQ19(t *testing.T) {
	n := grid.Dims{NX: 8, NY: 6, NZ: 6}
	for _, opt := range []OptLevel{OptGC, OptDH, OptCF, OptLoBr, OptNBC, OptGCC, OptSIMD} {
		for _, p := range [][3]int{{2, 2, 1}, {1, 2, 2}, {2, 2, 2}} {
			runAndCompare(t, Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
				Opt: opt, Ranks: p[0] * p[1] * p[2], Decomp: p, Threads: 1, GhostDepth: 1,
			})
		}
	}
}

func TestCartOptLevelsAgainstOracleQ39(t *testing.T) {
	// k = 3 for D3Q39: every axis needs at least w = depth·3 owned cells.
	n := grid.Dims{NX: 8, NY: 8, NZ: 6}
	for _, opt := range []OptLevel{OptGC, OptDH, OptSIMD} {
		runAndCompare(t, Config{
			Model: lattice.D3Q39(), N: n, Tau: 0.9, Steps: 4,
			Opt: opt, Ranks: 4, Decomp: [3]int{2, 2, 1}, Threads: 1, GhostDepth: 1,
		})
	}
}

func TestCartDeepHalo(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 8, NZ: 8}
	for _, depth := range []int{2, 3} {
		for _, steps := range []int{4, 7} {
			runAndCompare(t, Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: steps,
				Opt: OptSIMD, Ranks: 8, Decomp: [3]int{2, 2, 2}, Threads: 1, GhostDepth: depth,
			})
		}
	}
}

func TestCartUnevenBlocks(t *testing.T) {
	// 17×9×11 over 3×2×2: blocks of 6/6/5, 5/4 and 6/5 cells.
	n := grid.Dims{NX: 17, NY: 9, NZ: 11}
	runAndCompare(t, Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.75, Steps: 5,
		Opt: OptSIMD, Ranks: 12, Decomp: [3]int{3, 2, 2}, Threads: 1, GhostDepth: 2,
	})
}

func TestCartThreading(t *testing.T) {
	n := grid.Dims{NX: 10, NY: 8, NZ: 8}
	for _, threads := range []int{2, 4} {
		runAndCompare(t, Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.85, Steps: 4,
			Opt: OptSIMD, Ranks: 4, Decomp: [3]int{2, 2, 1}, Threads: threads, GhostDepth: 2,
		})
	}
}

// TestCrossDecompositionEquivalence is the acceptance experiment: the
// same problem solved with 1-D, 2-D and 3-D rank grids must agree on the
// final field to within float reassociation, and the 3-D 2×2×2 run's
// conserved sums must match the 8-rank slab's to 1e-12.
func TestCrossDecompositionEquivalence(t *testing.T) {
	n := grid.Dims{NX: 32, NY: 32, NZ: 32}
	steps := 50
	if testing.Short() {
		steps = 10
	}
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: steps,
		Opt: OptSIMD, Ranks: 8, Threads: 1, GhostDepth: 1,
		Init: waveInit(n), KeepField: true,
	}
	shapes := [][3]int{{8, 1, 1}, {4, 2, 1}, {2, 2, 2}}
	results := make([]*Result, len(shapes))
	for i, p := range shapes {
		cfg := base
		cfg.Decomp = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("decomp %v: %v", p, err)
		}
		results[i] = res
	}
	ref := results[0]
	for i, p := range shapes[1:] {
		res := results[i+1]
		if d := grid.MaxAbsDiff(ref.Field, res.Field); d > 1e-12 {
			t.Errorf("decomp %v vs slab: max |Δf| = %g", p, d)
		}
		if d := math.Abs(res.Mass - ref.Mass); d > 1e-12*ref.Mass {
			t.Errorf("decomp %v: mass %0.15f vs slab %0.15f", p, res.Mass, ref.Mass)
		}
		for _, m := range []struct {
			got, want float64
			name      string
		}{
			{res.MomX, ref.MomX, "px"}, {res.MomY, ref.MomY, "py"}, {res.MomZ, ref.MomZ, "pz"},
		} {
			if math.Abs(m.got-m.want) > 1e-12*ref.Mass {
				t.Errorf("decomp %v: %s = %g vs slab %g", p, m.name, m.got, m.want)
			}
		}
	}
	// The 3-D block's per-axis surface must beat the slab's single fat
	// face: total halo bytes strictly smaller at 8 ranks.
	slabTotal := ref.HaloAxisBytes[0] + ref.HaloAxisBytes[1] + ref.HaloAxisBytes[2]
	blk := results[2].HaloAxisBytes
	blkTotal := blk[0] + blk[1] + blk[2]
	if blk[0] == 0 || blk[1] == 0 || blk[2] == 0 {
		t.Errorf("3-D run axis bytes %v: want all axes nonzero", blk)
	}
	if blkTotal >= slabTotal {
		t.Errorf("3-D halo bytes %d not below slab %d at 8 ranks", blkTotal, slabTotal)
	}
}

// TestCartSolidObstacles holds the multi-axis bounce-back to the slab
// solver's result: identical fields and exact mass conservation.
func TestCartSolidObstacles(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 10, NZ: 10}
	solid := func(ix, iy, iz int) bool {
		dx, dy, dz := ix-6, iy-5, iz-5
		return dx*dx+dy*dy+dz*dz < 6
	}
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 8,
		Opt: OptSIMD, Ranks: 4, Threads: 1, GhostDepth: 2,
		Solid: geom.FromFunc(n, solid), Init: waveInit(n), KeepField: true,
	}
	slabCfg := base
	slabCfg.Decomp = [3]int{4, 1, 1}
	want, err := Run(slabCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][3]int{{2, 2, 1}, {1, 2, 2}} {
		cfg := base
		cfg.Decomp = p
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("decomp %v: %v", p, err)
		}
		if d := grid.MaxAbsDiff(want.Field, got.Field); d > 1e-12 {
			t.Errorf("decomp %v: max |Δf| vs slab = %g", p, d)
		}
		if math.Abs(got.Mass-want.Mass) > 1e-10 {
			t.Errorf("decomp %v: mass %g vs slab %g", p, got.Mass, want.Mass)
		}
	}
}

func TestCartForcing(t *testing.T) {
	n := grid.Dims{NX: 8, NY: 8, NZ: 8}
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.9, Steps: 6,
		Opt: OptSIMD, Ranks: 8, Threads: 1, GhostDepth: 1,
		Accel: [3]float64{1e-4, 0, 0}, KeepField: true,
	}
	slabCfg := base
	slabCfg.Decomp = [3]int{8, 1, 1}
	want, err := Run(slabCfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Decomp = [3]int{2, 2, 2}
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(want.Field, got.Field); d > 1e-12 {
		t.Errorf("forced 3-D vs slab: max |Δf| = %g", d)
	}
	if got.MomX <= 0 {
		t.Errorf("forced momentum not positive: %g", got.MomX)
	}
}

func TestCartGhostUpdatesAccounting(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 16, NZ: 16}
	res, err := Run(Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 4,
		Opt: OptGC, Ranks: 8, Decomp: [3]int{2, 2, 2}, GhostDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each cycle's first step computes a box grown by 2k on every axis:
	// 10³ − 8³ = 488 extra cells per rank per cycle; 2 cycles, 8 ranks.
	want := int64(2 * 8 * (10*10*10 - 8*8*8))
	if res.GhostUpdates != want {
		t.Errorf("ghost updates = %d, want %d", res.GhostUpdates, want)
	}
}

// TestCartFusedEquivalence: the fused kernel on pencil and block
// decompositions — the box form with no wrap arithmetic — must match the
// oracle at every exchange protocol, including the overlapped schedule.
func TestCartFusedEquivalence(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 8, NZ: 7}
	for _, opt := range []OptLevel{OptGC, OptNBC, OptGCC, OptSIMD} {
		for _, p := range [][3]int{{2, 2, 1}, {1, 2, 2}, {2, 2, 2}} {
			runAndCompare(t, Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
				Opt: opt, Ranks: p[0] * p[1] * p[2], Decomp: p, Threads: 1, GhostDepth: 1,
				Fused: true,
			})
		}
	}
	// D3Q39 (k = 3) on a pencil.
	n39 := grid.Dims{NX: 8, NY: 8, NZ: 6}
	runAndCompare(t, Config{
		Model: lattice.D3Q39(), N: n39, Tau: 0.9, Steps: 4,
		Opt: OptGCC, Ranks: 4, Decomp: [3]int{2, 2, 1}, Threads: 1, GhostDepth: 1,
		Fused: true,
	})
}

// TestCartFusedDeepHalo: the fused box kernel under the deep-halo
// schedule, overlapped and threaded.
func TestCartFusedDeepHalo(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 12, NZ: 8}
	for _, depth := range []int{2, 3} {
		for _, threads := range []int{1, 4} {
			runAndCompare(t, Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.75, Steps: 7,
				Opt: OptGCC, Ranks: 4, Decomp: [3]int{2, 2, 1}, Threads: threads, GhostDepth: depth,
				Fused: true,
			})
		}
	}
}

// TestCartPerAxisDepth: per-axis ghost depths — each axis refreshed on
// its own cadence with its own halo width — must match the oracle on
// every path that supports them, split and fused, overlapped or not.
func TestCartPerAxisDepth(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 10, NZ: 8}
	for _, opt := range []OptLevel{OptGC, OptNBC, OptGCC, OptSIMD} {
		for _, depths := range [][3]int{{2, 1, 1}, {1, 2, 1}, {1, 2, 3}} {
			for _, p := range [][3]int{{2, 2, 1}, {2, 1, 2}} {
				runAndCompare(t, Config{
					Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 7,
					Opt: opt, Ranks: p[0] * p[1] * p[2], Decomp: p, Threads: 1,
					GhostDepthAxes: depths,
				})
			}
		}
	}
	// Slab-shaped rank grids route to the box stepper under per-axis
	// depths; fused rides along.
	for _, fused := range []bool{false, true} {
		runAndCompare(t, Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 6,
			Opt: OptGCC, Ranks: 2, Decomp: [3]int{2, 1, 1}, Threads: 2,
			GhostDepthAxes: [3]int{2, 1, 1}, Fused: fused,
		})
	}
}

// TestCartPerAxisDepthBounded: per-axis depths against the bounded
// oracle (walls fix up every step, so any refresh cadence must agree).
func TestCartPerAxisDepthBounded(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 12, NZ: 6}
	for _, opt := range []OptLevel{OptNBC, OptGCC} {
		runAndCompareBounded(t, Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 7,
			Opt: opt, Ranks: 4, Decomp: [3]int{2, 2, 1}, Threads: 1,
			GhostDepthAxes: [3]int{2, 2, 1}, Boundary: CavitySpec(0.08),
		})
	}
}

// TestCartOverlapLadderDepthSweep pins the overlapped box schedule per
// ladder level × depth against the slab reference on the same problem:
// GC-C and Fused now run on every decomposition, and their fields must
// stay within reassociation of the 1-D slab path.
func TestCartOverlapLadderDepthSweep(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 8, NZ: 8}
	for _, fused := range []bool{false, true} {
		for _, depth := range []int{1, 2} {
			base := Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 6,
				Opt: OptGCC, Ranks: 4, Threads: 1, GhostDepth: depth,
				Fused: fused, Init: waveInit(n), KeepField: true,
			}
			slab := base
			slab.Decomp = [3]int{4, 1, 1}
			want, err := Run(slab)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range [][3]int{{2, 2, 1}, {1, 2, 2}} {
				cfg := base
				cfg.Decomp = p
				got, err := Run(cfg)
				if err != nil {
					t.Fatalf("fused=%v depth=%d decomp=%v: %v", fused, depth, p, err)
				}
				if d := grid.MaxAbsDiff(want.Field, got.Field); d > 1e-12 {
					t.Errorf("fused=%v depth=%d decomp=%v: max |Δf| vs slab = %g", fused, depth, p, d)
				}
			}
		}
	}
}

func TestCartValidation(t *testing.T) {
	base := Config{
		Model: lattice.D3Q19(), N: grid.Dims{NX: 8, NY: 8, NZ: 8},
		Tau: 0.8, Steps: 1, Ranks: 8, Decomp: [3]int{2, 2, 2}, Opt: OptGC, GhostDepth: 1,
	}
	cases := []struct {
		name string
		mod  func(c *Config)
	}{
		{"orig multi-axis", func(c *Config) { c.Opt = OptOrig }},
		{"AoS multi-axis", func(c *Config) { c.Layout = grid.AoS }},
		{"fused bounded", func(c *Config) { c.Fused = true; c.Boundary = CavitySpec(0.05) }},
		{"shape/ranks mismatch", func(c *Config) { c.Ranks = 4 }},
		{"block smaller than halo", func(c *Config) { c.GhostDepth = 5 }},
		{"per-axis depth zero entry", func(c *Config) { c.GhostDepthAxes = [3]int{2, 0, 1} }},
		{"per-axis depth too deep", func(c *Config) { c.GhostDepthAxes = [3]int{1, 5, 1} }},
		{"per-axis depth with AoS slab", func(c *Config) {
			c.Ranks, c.Decomp = 1, [3]int{1, 1, 1}
			c.Layout = grid.AoS
			c.GhostDepthAxes = [3]int{2, 1, 1}
		}},
		{"axis overcommit", func(c *Config) { c.Decomp = [3]int{1, 1, 8}; c.N.NZ = 4; c.N.NY = 16 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mod(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
	if _, err := Run(base); err != nil {
		t.Errorf("base config rejected: %v", err)
	}
}
