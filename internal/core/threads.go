package core

import (
	"fmt"
	"runtime"
)

// ResolveThreads interprets a command-line -threads value. A positive
// count is taken as-is; 0 means whole-socket ranks — runtime.NumCPU()
// divided by the rank count, floor one, so ranks × threads fills the
// machine's cores; negative counts are rejected.
func ResolveThreads(threads, ranks int) (int, error) {
	if threads < 0 {
		return 0, fmt.Errorf("threads must be >= 0 (0 = NumCPU/ranks), got %d", threads)
	}
	if threads > 0 {
		return threads, nil
	}
	if ranks < 1 {
		ranks = 1
	}
	t := runtime.NumCPU() / ranks
	if t < 1 {
		t = 1
	}
	return t, nil
}
