package core

import "repro/internal/lattice"

// Collision kernels, one per optimization level. All compute the BGK
// relaxation f ← f_adv − ω(f_adv − f_eq(ρ,u)) with ω = 1/τ, reading the
// post-streaming field fadv and writing the state field f (the structure of
// the paper's Fig. 4). They differ in loop order, specialization and
// arithmetic shape, never in the math.

// eqCoefs holds the precomputed equilibrium coefficients shared by the
// specialized kernels: the reciprocal speed-of-sound powers and float copies
// of the velocity components (the "CF" specialization — what -O5/-qipa did
// for the paper's C code).
type eqCoefs struct {
	cx, cy, cz []float64
	w          []float64
	invCs2     float64 // 1/c_s²
	invCs4h    float64 // 1/(2c_s⁴)
	invCs2h    float64 // 1/(2c_s²)
	third      bool
	thA        float64 // 1/(6c_s⁶)
	thB        float64 // 1/(2c_s⁴)
}

func newEqCoefs(m *lattice.Model) eqCoefs {
	c := eqCoefs{
		cx: make([]float64, m.Q), cy: make([]float64, m.Q), cz: make([]float64, m.Q),
		w:       append([]float64(nil), m.W...),
		invCs2:  1 / m.CsSq,
		invCs4h: 1 / (2 * m.CsSq * m.CsSq),
		invCs2h: 1 / (2 * m.CsSq),
		third:   m.Order >= 3,
		thA:     1 / (6 * m.CsSq * m.CsSq * m.CsSq),
		thB:     1 / (2 * m.CsSq * m.CsSq),
	}
	for i := 0; i < m.Q; i++ {
		c.cx[i] = float64(m.Cx[i])
		c.cy[i] = float64(m.Cy[i])
		c.cz[i] = float64(m.Cz[i])
	}
	return c
}

// collideNaive is the unoptimized kernel: per-cell velocity gather through
// the generic accessors, divisions by ρ and τ, and equilibria computed by
// method calls (paper Fig. 4 before any tuning). The gather buffer comes
// from the worker's scratch slot; the arithmetic is untouched.
func (s *stepper) collideNaive(worker int, bx box) {
	m := s.model
	nz := s.d.NZ
	fc := s.scratch[worker].fc
	for ix := bx.lo[0]; ix < bx.hi[0]; ix++ {
		for iy := bx.lo[1]; iy < bx.hi[1]; iy++ {
			for iz := 0; iz < nz; iz++ {
				cell := s.d.Index(ix, iy, iz)
				for v := 0; v < m.Q; v++ {
					fc[v] = s.fadv.Data[s.fadv.Idx(v, cell)]
				}
				rho, jx, jy, jz := m.Moments(fc)
				ux := jx/rho + s.shiftX
				uy := jy/rho + s.shiftY
				uz := jz/rho + s.shiftZ
				for v := 0; v < m.Q; v++ {
					feq := m.EquilibriumAt(v, rho, ux, uy, uz)
					s.f.Data[s.f.Idx(v, cell)] = fc[v] - (fc[v]-feq)/s.cfg.Tau
				}
			}
		}
	}
}

// rowBufs are the z-line accumulators used by the row-structured kernels,
// allocated once per worker (workerScratch) at the local field's NZ and
// indexed up to each call's z-run length.
type rowBufs struct {
	rho, jx, jy, jz []float64
	ux, uy, uz, u2  []float64
}

func newRowBufs(nz int) rowBufs {
	return rowBufs{
		rho: make([]float64, nz), jx: make([]float64, nz), jy: make([]float64, nz), jz: make([]float64, nz),
		ux: make([]float64, nz), uy: make([]float64, nz), uz: make([]float64, nz), u2: make([]float64, nz),
	}
}

// collideRowGeneric is the data-handling kernel (§V.B): moments accumulated
// one velocity block at a time in memory order (maximizing cache reuse of
// the contiguous SoA blocks), divisions replaced by reciprocals, equilibria
// inlined. Still a generic velocity loop.
func (s *stepper) collideRowGeneric(worker int, bx box) {
	m := s.model
	nz := s.d.NZ
	omega := 1 / s.cfg.Tau
	c := s.coef
	b := s.scratch[worker].rb
	for ix := bx.lo[0]; ix < bx.hi[0]; ix++ {
		for iy := bx.lo[1]; iy < bx.hi[1]; iy++ {
			base := s.d.Index(ix, iy, 0)
			for z := 0; z < nz; z++ {
				b.rho[z], b.jx[z], b.jy[z], b.jz[z] = 0, 0, 0, 0
			}
			for v := 0; v < m.Q; v++ {
				sv := s.fadv.V(v)[base : base+nz]
				cx, cy, cz := c.cx[v], c.cy[v], c.cz[v]
				for z, val := range sv {
					b.rho[z] += val
					b.jx[z] += cx * val
					b.jy[z] += cy * val
					b.jz[z] += cz * val
				}
			}
			for z := 0; z < nz; z++ {
				inv := 1 / b.rho[z]
				b.ux[z] = b.jx[z]*inv + s.shiftX
				b.uy[z] = b.jy[z]*inv + s.shiftY
				b.uz[z] = b.jz[z]*inv + s.shiftZ
				b.u2[z] = b.ux[z]*b.ux[z] + b.uy[z]*b.uy[z] + b.uz[z]*b.uz[z]
			}
			for v := 0; v < m.Q; v++ {
				sv := s.fadv.V(v)[base : base+nz]
				dv := s.f.V(v)[base : base+nz]
				cx, cy, cz, w := c.cx[v], c.cy[v], c.cz[v], c.w[v]
				for z := 0; z < nz; z++ {
					cu := cx*b.ux[z] + cy*b.uy[z] + cz*b.uz[z]
					e := 1 + cu*c.invCs2 + cu*cu*c.invCs4h - b.u2[z]*c.invCs2h
					if c.third {
						e += cu*cu*cu*c.thA - cu*b.u2[z]*c.thB
					}
					feq := w * b.rho[z] * e
					dv[z] = sv[z] - omega*(sv[z]-feq)
				}
			}
		}
	}
}

// collidePaired is the specialized kernel (§V.C stand-in): velocities are
// processed as opposite pairs, sharing the even part of the equilibrium
// (f_eq(+c) and f_eq(−c) differ only in the sign of the odd terms), with
// all coefficients precomputed and no method calls or branches in the inner
// loops.
func (s *stepper) collidePaired(worker int, bx box) {
	nz := s.d.NZ
	omega := 1 / s.cfg.Tau
	c := s.coef
	b := s.scratch[worker].rb
	for ix := bx.lo[0]; ix < bx.hi[0]; ix++ {
		for iy := bx.lo[1]; iy < bx.hi[1]; iy++ {
			base := s.d.Index(ix, iy, 0)
			for z := 0; z < nz; z++ {
				b.rho[z], b.jx[z], b.jy[z], b.jz[z] = 0, 0, 0, 0
			}
			for _, p := range s.pairs {
				if p.i == p.j { // rest velocity: no momentum contribution
					sv := s.fadv.V(p.i)[base : base+nz]
					for z, val := range sv {
						b.rho[z] += val
					}
					continue
				}
				si := s.fadv.V(p.i)[base : base+nz]
				sj := s.fadv.V(p.j)[base : base+nz]
				cx, cy, cz := c.cx[p.i], c.cy[p.i], c.cz[p.i]
				for z := 0; z < nz; z++ {
					vi, vj := si[z], sj[z]
					sum, diff := vi+vj, vi-vj
					b.rho[z] += sum
					b.jx[z] += cx * diff
					b.jy[z] += cy * diff
					b.jz[z] += cz * diff
				}
			}
			for z := 0; z < nz; z++ {
				inv := 1 / b.rho[z]
				b.ux[z] = b.jx[z]*inv + s.shiftX
				b.uy[z] = b.jy[z]*inv + s.shiftY
				b.uz[z] = b.jz[z]*inv + s.shiftZ
				b.u2[z] = b.ux[z]*b.ux[z] + b.uy[z]*b.uy[z] + b.uz[z]*b.uz[z]
			}
			for _, p := range s.pairs {
				if p.i == p.j {
					sv := s.fadv.V(p.i)[base : base+nz]
					dv := s.f.V(p.i)[base : base+nz]
					w := c.w[p.i]
					for z := 0; z < nz; z++ {
						feq := w * b.rho[z] * (1 - b.u2[z]*c.invCs2h)
						dv[z] = sv[z] - omega*(sv[z]-feq)
					}
					continue
				}
				si := s.fadv.V(p.i)[base : base+nz]
				sj := s.fadv.V(p.j)[base : base+nz]
				di := s.f.V(p.i)[base : base+nz]
				dj := s.f.V(p.j)[base : base+nz]
				cx, cy, cz, w := c.cx[p.i], c.cy[p.i], c.cz[p.i], c.w[p.i]
				if c.third {
					for z := 0; z < nz; z++ {
						cu := cx*b.ux[z] + cy*b.uy[z] + cz*b.uz[z]
						even := 1 + cu*cu*c.invCs4h - b.u2[z]*c.invCs2h
						odd := cu*c.invCs2 + cu*cu*cu*c.thA - cu*b.u2[z]*c.thB
						wr := w * b.rho[z]
						di[z] = si[z] - omega*(si[z]-wr*(even+odd))
						dj[z] = sj[z] - omega*(sj[z]-wr*(even-odd))
					}
				} else {
					for z := 0; z < nz; z++ {
						cu := cx*b.ux[z] + cy*b.uy[z] + cz*b.uz[z]
						even := 1 + cu*cu*c.invCs4h - b.u2[z]*c.invCs2h
						odd := cu * c.invCs2
						wr := w * b.rho[z]
						di[z] = si[z] - omega*(si[z]-wr*(even+odd))
						dj[z] = sj[z] - omega*(sj[z]-wr*(even-odd))
					}
				}
			}
		}
	}
}

// collidePairedBlocked is the SIMD-shaped kernel (§V.G stand-in): the
// paired kernel with the z loops restructured into 4-wide blocks with
// explicit multiply-add grouping — the form hand-written double-hummer/QPX
// intrinsics impose, which also gives the Go compiler maximal instruction-
// level parallelism and hoisted bounds checks.
func (s *stepper) collidePairedBlocked(worker int, bx box) {
	nz := s.d.NZ
	omega := 1 / s.cfg.Tau
	c := s.coef
	b := s.scratch[worker].rb
	for ix := bx.lo[0]; ix < bx.hi[0]; ix++ {
		for iy := bx.lo[1]; iy < bx.hi[1]; iy++ {
			base := s.d.Index(ix, iy, 0)
			for z := 0; z < nz; z++ {
				b.rho[z], b.jx[z], b.jy[z], b.jz[z] = 0, 0, 0, 0
			}
			for _, p := range s.pairs {
				if p.i == p.j {
					sv := s.fadv.V(p.i)[base : base+nz]
					for z, val := range sv {
						b.rho[z] += val
					}
					continue
				}
				si := s.fadv.V(p.i)[base : base+nz : base+nz]
				sj := s.fadv.V(p.j)[base : base+nz : base+nz]
				cx, cy, cz := c.cx[p.i], c.cy[p.i], c.cz[p.i]
				z := 0
				for ; z+4 <= nz; z += 4 {
					v0, v1, v2, v3 := si[z], si[z+1], si[z+2], si[z+3]
					w0, w1, w2, w3 := sj[z], sj[z+1], sj[z+2], sj[z+3]
					s0, s1, s2, s3 := v0+w0, v1+w1, v2+w2, v3+w3
					d0, d1, d2, d3 := v0-w0, v1-w1, v2-w2, v3-w3
					b.rho[z] += s0
					b.rho[z+1] += s1
					b.rho[z+2] += s2
					b.rho[z+3] += s3
					b.jx[z] += cx * d0
					b.jx[z+1] += cx * d1
					b.jx[z+2] += cx * d2
					b.jx[z+3] += cx * d3
					b.jy[z] += cy * d0
					b.jy[z+1] += cy * d1
					b.jy[z+2] += cy * d2
					b.jy[z+3] += cy * d3
					b.jz[z] += cz * d0
					b.jz[z+1] += cz * d1
					b.jz[z+2] += cz * d2
					b.jz[z+3] += cz * d3
				}
				for ; z < nz; z++ {
					vi, vj := si[z], sj[z]
					sum, diff := vi+vj, vi-vj
					b.rho[z] += sum
					b.jx[z] += cx * diff
					b.jy[z] += cy * diff
					b.jz[z] += cz * diff
				}
			}
			for z := 0; z < nz; z++ {
				inv := 1 / b.rho[z]
				b.ux[z] = b.jx[z]*inv + s.shiftX
				b.uy[z] = b.jy[z]*inv + s.shiftY
				b.uz[z] = b.jz[z]*inv + s.shiftZ
				b.u2[z] = b.ux[z]*b.ux[z] + b.uy[z]*b.uy[z] + b.uz[z]*b.uz[z]
			}
			for _, p := range s.pairs {
				if p.i == p.j {
					sv := s.fadv.V(p.i)[base : base+nz]
					dv := s.f.V(p.i)[base : base+nz]
					w := c.w[p.i]
					for z := 0; z < nz; z++ {
						feq := w * b.rho[z] * (1 - b.u2[z]*c.invCs2h)
						dv[z] = sv[z] - omega*(sv[z]-feq)
					}
					continue
				}
				si := s.fadv.V(p.i)[base : base+nz : base+nz]
				sj := s.fadv.V(p.j)[base : base+nz : base+nz]
				di := s.f.V(p.i)[base : base+nz : base+nz]
				dj := s.f.V(p.j)[base : base+nz : base+nz]
				cx, cy, cz, w := c.cx[p.i], c.cy[p.i], c.cz[p.i], c.w[p.i]
				for z := 0; z < nz; z++ {
					cu := cx*b.ux[z] + cy*b.uy[z] + cz*b.uz[z]
					cu2 := cu * cu
					even := 1 + cu2*c.invCs4h - b.u2[z]*c.invCs2h
					odd := cu * c.invCs2
					if c.third {
						odd += cu2*cu*c.thA - cu*b.u2[z]*c.thB
					}
					wr := w * b.rho[z]
					di[z] = si[z] - omega*(si[z]-wr*(even+odd))
					dj[z] = sj[z] - omega*(sj[z]-wr*(even-odd))
				}
			}
		}
	}
}
