package core

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/metrics"
)

// noiseMask returns a boundary-heavy pseudorandom voxel mask (the
// arterial-mask stand-in: ~20% solid, links everywhere).
func noiseMask(n grid.Dims, seed uint64) *geom.Mask {
	rng := metrics.NewRNG(seed*0x9e3779b9 + 5)
	return geom.FromFunc(n, func(ix, iy, iz int) bool {
		return rng.Float64() < 0.2
	})
}

// TestFixupIndexVsPlaneScan: the per-box fixup index must reproduce the
// legacy whole-plane scan to 1e-12 (in fact these paths apply the same
// link set) on every stepper and schedule: the periodic slab, multi-axis
// boxes at 1-D/2-D/3-D shapes, bounded domains, the phased GC-C overlap
// whose rims exercise the strict form, and per-axis ghost depths.
func TestFixupIndexVsPlaneScan(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 12, NZ: 8}
	mask := noiseMask(n, 1)
	cavity := CavitySpec(0.05)
	cases := []struct {
		name      string
		decomp    [3]int
		opt       OptLevel
		depth     int
		depthAxes [3]int
		boundary  *BoundarySpec
	}{
		{"slab-periodic", [3]int{2, 1, 1}, OptSIMD, 1, [3]int{}, nil},
		{"slab-periodic-deep", [3]int{2, 1, 1}, OptGCC, 2, [3]int{}, nil},
		{"pencil-periodic", [3]int{2, 2, 1}, OptSIMD, 2, [3]int{}, nil},
		{"pencil-bounded-gcc", [3]int{2, 2, 1}, OptGCC, 2, [3]int{}, cavity},
		{"block-bounded", [3]int{2, 2, 2}, OptNBC, 1, [3]int{}, cavity},
		{"pencil-axis-depth", [3]int{2, 2, 1}, OptGCC, 0, [3]int{2, 1, 1}, cavity},
	}
	for _, tc := range cases {
		base := Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 7,
			Opt: tc.opt, Ranks: tc.decomp[0] * tc.decomp[1] * tc.decomp[2],
			Decomp: tc.decomp, Threads: 2,
			GhostDepth: tc.depth, GhostDepthAxes: tc.depthAxes,
			Init: waveInit(n), Solid: mask, Boundary: tc.boundary,
			KeepField: true,
		}
		idx := base
		ref := base
		ref.FixupScan = true
		got, err := Run(idx)
		if err != nil {
			t.Fatalf("%s (index): %v", tc.name, err)
		}
		want, err := Run(ref)
		if err != nil {
			t.Fatalf("%s (plane scan): %v", tc.name, err)
		}
		if d := maxDiffFluid(got.Field, want.Field, mask.At); d > 1e-12 {
			t.Errorf("%s: per-box index deviates from the plane scan by %g", tc.name, d)
		}
	}
}

// TestFixupIndexAoS covers the index's AoS branch (the layout ablation
// supports solids through the GC level): the AoS run must match the
// masked oracle and the legacy scan exactly.
func TestFixupIndexAoS(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 8, NZ: 6}
	mask := noiseMask(n, 2)
	init := waveInit(n)
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
		Opt: OptGC, Ranks: 2, Threads: 1, GhostDepth: 1,
		Layout: grid.AoS, Init: init, Solid: mask, KeepField: true,
	}
	got, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	scan := base
	scan.FixupScan = true
	ref, err := Run(scan)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiffFluid(got.Field, ref.Field, mask.At); d > 1e-12 {
		t.Errorf("AoS index vs plane scan deviate by %g", d)
	}
	want := refSolverMask(base.Model, n, base.Tau, base.Steps, init, mask.At, [3]float64{})
	if d := maxDiffFluid(got.Field, want, mask.At); d > eqTol {
		t.Errorf("AoS index vs oracle deviate by %g", d)
	}
}

// TestMaskRankLocalSlicing: every rank's local mask window must agree
// with the global voxel mask at the corresponding global coordinates —
// owned cells exactly, ghost cells under the periodic wrap — for 1-D,
// 2-D and 3-D decompositions.
func TestMaskRankLocalSlicing(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 10, NZ: 8}
	mask := noiseMask(n, 3)
	g := [3]int{n.NX, n.NY, n.NZ}
	for _, shape := range [][3]int{{4, 1, 1}, {2, 2, 1}, {2, 2, 2}} {
		cfg := Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 0,
			Opt: OptSIMD, Ranks: shape[0] * shape[1] * shape[2], Decomp: shape,
			GhostDepth: 2, Solid: mask,
		}
		if err := cfg.init(); err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		dec, err := decomp.NewCartesianBounded(g, shape, [3]bool{})
		if err != nil {
			t.Fatal(err)
		}
		fab := comm.NewFabric(cfg.Ranks)
		err = fab.Run(func(r *comm.Rank) error {
			cs, err := newCartStepper(&cfg, dec, r)
			if err != nil {
				return err
			}
			for ix := 0; ix < cs.d.NX; ix++ {
				gx := ((cs.start[0]+ix-cs.w[0])%n.NX + n.NX) % n.NX
				for iy := 0; iy < cs.d.NY; iy++ {
					gy := ((cs.start[1]+iy-cs.w[1])%n.NY + n.NY) % n.NY
					for iz := 0; iz < cs.d.NZ; iz++ {
						gz := ((cs.start[2]+iz-cs.w[2])%n.NZ + n.NZ) % n.NZ
						if cs.mask[cs.d.Index(ix, iy, iz)] != mask.At(gx, gy, gz) {
							t.Errorf("shape %v rank %d: local (%d,%d,%d) != global (%d,%d,%d)",
								shape, r.ID, ix, iy, iz, gx, gy, gz)
							return nil
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestFixupValidation pins the geometry-layer configuration errors.
func TestFixupValidation(t *testing.T) {
	n := grid.Dims{NX: 8, NY: 6, NZ: 6}
	mask := geom.NewMask(grid.Dims{NX: 4, NY: 6, NZ: 6})
	if _, err := Run(Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 1,
		Opt: OptSIMD, Solid: mask,
	}); err == nil {
		t.Error("mismatched mask dims accepted")
	}
	if _, err := Run(Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 1,
		Opt: OptSIMD, MeasureForces: true, FixupScan: true,
	}); err == nil {
		t.Error("MeasureForces + FixupScan accepted")
	}
	if _, err := Run(Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 1,
		Opt: OptGC, Fused: true, MeasureForces: true,
	}); err == nil {
		t.Error("MeasureForces + Fused accepted")
	}
	if _, err := Run(Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 1,
		Opt: OptGC, Layout: grid.AoS, MeasureForces: true,
	}); err == nil {
		t.Error("MeasureForces + AoS accepted")
	}
}
