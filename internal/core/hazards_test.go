package core

import (
	"math"
	"testing"

	"repro/internal/collision"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// TestGhostPoisonInvariance floods every ghost cell with NaN at init and
// demands the gathered result stay bit-identical to the clean run. Any
// latent schedule hazard — a kernel box extending one layer past the
// refreshed halo extent, a refresh skipping an axis, an open-face fill
// missing a layer the next step consumes, an AA pair reading a slot the
// pair-start exchange didn't cover — pulls NaN into an owned cell, and
// NaN survives every downstream collision. The clean/poisoned comparison
// is immune to the usual NaN-comparison trap (NaN > x is false) because
// the poisoned field is scanned for NaN explicitly first.
func TestGhostPoisonInvariance(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 16, NZ: 16}
	solid := geom.CylinderZ(n, 8, 8.3, 2.5)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"slab-gc", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptGC, Ranks: 2, Threads: 2, GhostDepth: 1,
		}},
		{"slab-gcc-fused-deep", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptGCC, Ranks: 2, Threads: 2, GhostDepth: 2, Fused: true,
		}},
		{"block-deep-trt", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 5,
			Opt: OptGCC, Ranks: 8, Threads: 2, Decomp: [3]int{2, 2, 2}, GhostDepth: 2,
			Collision: collision.Spec{Kind: collision.TRT},
		}},
		{"pencil-inlet-masked", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 5,
			Opt: OptGCC, Ranks: 4, Threads: 2, Decomp: [3]int{2, 2, 1}, GhostDepth: 1,
			Boundary: InletChannelSpec(0.05, nil), Solid: solid,
		}},
		{"aa-block-periodic", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptSIMD, Ranks: 8, Threads: 2, Decomp: [3]int{2, 2, 2}, GhostDepth: 1,
			Stream: StreamAA,
		}},
		{"aa-pencil-inlet-masked-deep", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 5,
			Opt: OptGCC, Ranks: 4, Threads: 2, Decomp: [3]int{2, 2, 1}, GhostDepth: 2,
			Boundary: InletChannelSpec(0.05, nil), Solid: solid,
			Stream: StreamAA,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clean := runField(t, tc.cfg)
			testPoisonGhosts = true
			defer func() { testPoisonGhosts = false }()
			poisoned := runField(t, tc.cfg)
			testPoisonGhosts = false
			bad := 0
			for _, v := range poisoned.Data {
				if math.IsNaN(v) {
					bad++
				}
			}
			if bad > 0 {
				t.Fatalf("%d NaN values leaked into the gathered field: a kernel consumed a ghost before its exchange/fill", bad)
			}
			if d := grid.MaxAbsDiff(clean, poisoned); d != 0 {
				t.Errorf("poisoned ghosts changed the result: max |Δf| = %g, want bit-exact", d)
			}
		})
	}
}
