package core

// Multi-axis (2-D pencil / 3-D block) decomposition path. The paper's 1-D
// slab keeps its specialized stepper (stepper.go) and full optimization
// ladder bit-for-bit; this file generalizes the owned-region/ghost-width
// bookkeeping from (startX, own, w) scalars to per-axis extents. Ghost
// layers of width w[a] = depth[a]·k exist on all three axes (axes with one
// rank wrap locally), which removes every modulo from the kernels:
// streaming becomes pure offset block copies and the deep-halo schedule
// shrinks an axis-aligned box instead of an x interval. Depth is per axis
// (Config.GhostDepthAxes): axis a's ghosts are refreshed every depth[a]
// steps, so a pencil can spend halo width where its surface is largest.
//
// The ladder maps onto the box kernels as follows: levels through GC use
// the per-cell naive collide, DH the row-accumulating generic collide,
// and CF upward the pair-symmetric collide (whose per-cell arithmetic is
// identical to the slab path's paired/blocked kernels, keeping 1-D and
// 3-D runs within float reassociation of each other). NB-C and above
// switch the per-axis exchange to the posted-receive protocol; GC-C and
// above run the phased overlapped schedule of schedule.go (interior box
// while messages fly, per-axis rims after each WaitUnpackAxis), and the
// fused kernel has a box form with no wrap arithmetic at all. Only the
// no-ghost Orig protocol remains slab-only, by construction.

import (
	"time"

	"repro/internal/collision"
	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// box is an axis-aligned local cell region: [lo[a], hi[a]) per axis.
type box struct {
	lo, hi [3]int
}

// cells returns the number of cells in the box.
func (b box) cells() int {
	n := 1
	for a := 0; a < 3; a++ {
		if b.hi[a] <= b.lo[a] {
			return 0
		}
		n *= b.hi[a] - b.lo[a]
	}
	return n
}

// cartStepper holds one rank's state for the multi-axis stepping loop.
// Local coordinates on axis a: [w[a], w[a]+own[a]) is owned, [0, w[a]) the
// low ghost and [w[a]+own[a], own[a]+2w[a]) the high ghost.
type cartStepper struct {
	cfg   *Config
	model *lattice.Model
	r     *comm.Rank
	dec   decomp.Cartesian

	start [3]int // first owned global cell per axis
	own   [3]int // owned extents
	k     int    // lattice max speed
	depth [3]int // deep-halo depth per axis
	w     [3]int // ghost width per side per axis (depth[a]·k)

	d       grid.Dims
	f, fadv *grid.Field // fadv is nil under AA streaming (single-field)
	ex      *halo.CartExchanger
	aa      bool // AA-pattern in-place streaming (aa.go)

	br           boxRunner
	scratch      []*workerScratch
	ghostUpdates int64
	coef         eqCoefs
	pairs        []velPair
	op           collision.Operator // non-nil routes collisions through the generic operator kernel
	jit          *metrics.RNG
	rec          *obs.Recorder // nil unless Config.Observe; every call site is nil-safe

	mask []bool
	// Sparse row-run traversal (sparse.go): per-row CSR of fluid
	// z-intervals, built when Config.Sparse and a mask are present. Nil
	// runStart keeps every kernel on its dense branch.
	runs                   []zrun
	runStart               []int32
	rowWeight              []int32
	fix                    *fixIndex
	stepForce              [numBodies][3]float64
	forceSer               []float64
	shiftX, shiftY, shiftZ float64

	spec      *BoundarySpec  // global-face boundary conditions (nil = periodic)
	rest      []float64      // rest-state equilibrium, the wall ghost filler
	class     [3][]axisClass // per-axis local-index classification (set when spec or mask present)
	sponge    [3][]float64   // per-axis, per-local-index sponge blend factor (nil = no sponge on axis)
	hasSponge bool

	// AA-pattern state (aa.go): aaStar records that the run ended after a
	// transport sub-step (odd Steps), leaving the field in star
	// arrangement; aaFill and the aaFc/aaFeqR/aaFeq1 buffers serve the
	// serial open-face fix pass.
	aaStar               bool
	aaFill               []float64
	aaFc, aaFeqR, aaFeq1 []float64
}

func newCartStepper(cfg *Config, dec decomp.Cartesian, r *comm.Rank) (*cartStepper, error) {
	cs := &cartStepper{
		cfg: cfg, model: cfg.Model, r: r, dec: dec,
		k: cfg.Model.MaxSpeed, depth: cfg.ghostDepths(),
		aa:    cfg.Stream == StreamAA,
		coef:  newEqCoefs(cfg.Model),
		pairs: velocityPairs(cfg.Model),
		spec:  cfg.Boundary,
	}
	if cs.aa {
		cs.depth = aaDepths(cs.depth)
	}
	for a := 0; a < 3; a++ {
		cs.w[a] = cs.depth[a] * cs.k
	}
	op, err := buildOperator(cfg)
	if err != nil {
		return nil, err
	}
	cs.op = op
	for a := 0; a < 3; a++ {
		cs.start[a], cs.own[a] = dec.Own(r.ID, a)
	}
	cs.d = grid.Dims{NX: cs.own[0] + 2*cs.w[0], NY: cs.own[1] + 2*cs.w[1], NZ: cs.own[2] + 2*cs.w[2]}
	cs.br = newBoxRunner(cfg.Threads)
	cs.scratch = newScratches(cs.br.threads(), cfg.Model.Q, cs.d.NZ, cs.op, cs.aa)
	cs.f = grid.NewField(cfg.Model.Q, cs.d, cfg.Layout)
	if !cs.aa {
		// AA streams in place: the second field never exists, which is the
		// scheme's whole point — footprint and f-traffic are halved.
		cs.fadv = grid.NewField(cfg.Model.Q, cs.d, cfg.Layout)
	}
	cs.rest = make([]float64, cfg.Model.Q)
	cfg.Model.Equilibrium(1, 0, 0, 0, cs.rest)
	// Neighbor ranks come from the fabric-level Cartesian topology (the
	// MPI_Cart_create analog); the decomposition supplies only extents and
	// per-axis periodicity. Both number ranks z-fastest, which the
	// equivalence tests pin. At the global edge of a bounded axis the
	// topology reports NoNeighbor, which makes the exchanger skip that
	// face and leaves its ghosts to the boundary fill below.
	top, err := comm.NewCartTopologyBounded(r.N, dec.Shape(), dec.Bounded)
	if err != nil {
		return nil, err
	}
	neighbors := top.Neighbors(r.ID)
	ex, err := halo.NewCartExchanger(cfg.Model.Q, cs.d, cs.own, cs.w, r.ID, neighbors)
	if err != nil {
		return nil, err
	}
	cs.ex = ex
	if cfg.StepJitter > 0 {
		cs.jit = metrics.NewRNG(uint64(r.ID)*0x9e3779b9 + 1)
	}
	// Forcing shift scaled by the operator's momentum relaxation time
	// (see the slab stepper).
	shiftTau := cfg.Tau
	if cs.op != nil {
		shiftTau = cs.op.ShiftTau()
	}
	cs.shiftX = shiftTau * cfg.Accel[0]
	cs.shiftY = shiftTau * cfg.Accel[1]
	cs.shiftZ = shiftTau * cfg.Accel[2]
	cs.buildMask()
	cs.buildSponge()
	return cs, nil
}

// initField writes the equilibrium of the configured initial condition
// into the owned box; ghosts are populated by the first exchange.
func (cs *cartStepper) initField() {
	if testPoisonGhosts {
		poisonField(cs.f)
	}
	feq := make([]float64, cs.model.Q)
	rest := make([]float64, cs.model.Q)
	cs.model.Equilibrium(1, 0, 0, 0, rest)
	w := cs.w
	for ix := 0; ix < cs.own[0]; ix++ {
		for iy := 0; iy < cs.own[1]; iy++ {
			for iz := 0; iz < cs.own[2]; iz++ {
				if cs.mask != nil && cs.mask[cs.d.Index(w[0]+ix, w[1]+iy, w[2]+iz)] {
					cs.f.SetCell(w[0]+ix, w[1]+iy, w[2]+iz, rest)
					continue
				}
				rho, ux, uy, uz := cs.cfg.Init(cs.start[0]+ix, cs.start[1]+iy, cs.start[2]+iz)
				cs.model.Equilibrium(rho, ux, uy, uz, feq)
				cs.f.SetCell(w[0]+ix, w[1]+iy, w[2]+iz, feq)
			}
		}
	}
}

// run advances the configured number of steps. Each axis runs its own
// deep-halo cycle: axis a's ghosts are refreshed every depth[a] steps and
// its valid extent shrinks by k per step in between, so the computed
// destination box is the intersection of the per-axis validity intervals.
func (cs *cartStepper) run() {
	if cs.aa {
		cs.runAA()
		return
	}
	var since [3]int // steps since each axis's refresh; due when == depth[a]
	for a := range since {
		since[a] = cs.depth[a] // every axis due at step 0
	}
	for step := 0; step < cs.cfg.Steps; step++ {
		var stale [3]bool
		for a := 0; a < 3; a++ {
			if since[a] >= cs.depth[a] {
				stale[a], since[a] = true, 0
			}
		}
		var ext [3]int
		for a := 0; a < 3; a++ {
			ext[a] = (cs.depth[a] - since[a]) * cs.k
		}
		b := cs.boxFor(ext)
		cs.step(b, stale)
		cs.countUpdates(b)
		cs.jitter()
		for a := range since {
			since[a]++
		}
	}
}

func (cs *cartStepper) jitter() {
	if cs.jit == nil {
		return
	}
	time.Sleep(time.Duration(cs.jit.Float64() * float64(cs.cfg.StepJitter)))
}

// step advances one time step on destination box b, refreshing the stale
// axes' ghosts first — overlapped with the compute under the GC-C
// schedule when messages are in play, synchronously otherwise.
func (cs *cartStepper) step(b box, stale [3]bool) {
	cs.fillOpenFaces()
	if cs.cfg.Opt >= OptGCC && cs.hasMessagingStale(stale) {
		cs.overlappedStep(b, stale)
	} else {
		if stale != ([3]bool{}) {
			cs.refreshAxes(stale)
		}
		if cs.cfg.Fused {
			cs.fusedBox(b)
		} else {
			cs.streamBox(b)
			cs.applyBounceBackBox(b)
			cs.collideBox(b)
		}
	}
	if cs.cfg.Fused {
		cs.swap()
	}
	cs.spongeBox(b)
	cs.endForceStep()
}

// hasMessagingStale reports whether any stale axis exchanges real
// messages (the precondition for the overlapped schedule to hide
// anything).
func (cs *cartStepper) hasMessagingStale(stale [3]bool) bool {
	for a := 0; a < 3; a++ {
		if stale[a] && cs.ex.Messaging(a) {
			return true
		}
	}
	return false
}

// refreshAxes makes the stale axes' ghost layers valid, synchronously.
// Axes are processed in x, y, z order, and within an axis the boundary
// fill runs before the exchange: the fill of axis a spans the full local
// extent of the other axes, so the already-refreshed earlier axes give it
// current corner data, and the exchanges of later axes transport the
// filled faces to neighboring ranks — the same sequential ride-along that
// covers periodic edges and corners, extended to boundary data. Interior
// ranks of a bounded axis only exchange; edge ranks additionally fill
// their NoNeighbor faces. Axes that are not stale still hold a valid
// (shrunken) ghost extent and are skipped; the data a later axis's
// payload carries from their ghost regions is exact within that extent,
// which is all the receiver's shrinking box ever reads.
func (cs *cartStepper) refreshAxes(stale [3]bool) {
	nonblocking := cs.cfg.Opt >= OptNBC
	for axis := 0; axis < 3; axis++ {
		if !stale[axis] {
			continue
		}
		cs.fillAxisFaces(axis)
		cs.ex.ExchangeAxis(cs.r, cs.f, axis, nonblocking)
	}
}

// fillAxisFaces fills the boundary ghost faces (NoNeighbor sides) of one
// axis, if any. Open faces are skipped: fillOpenFaces refreshed them at
// the start of the step (every step, not just refresh steps).
func (cs *cartStepper) fillAxisFaces(axis int) {
	if cs.spec == nil {
		return
	}
	for side := 0; side < 2; side++ {
		if cs.ex.Neighbors[axis][side] == halo.NoNeighbor && !openFace(cs.spec.Faces[axis][side].Kind) {
			cs.fillFace(axis, side)
		}
	}
}

// overlappedStep is the per-axis GC-C schedule (§V.F generalized to every
// decomposition): ghost receives for the messaging stale axes are posted
// up front, then each stale axis is refreshed at its slot in x→y→z order
// — boundary fills and border sends (or the local wraparound) first,
// WaitUnpackAxis to complete — with the compute interleaved so every wire
// window hides work: the interior box overlaps the first messaging axis's
// messages, and each later axis's messages overlap the previous axis's
// rim compute. Packing an axis only at its slot, after the previous
// axis's unpack, is what preserves the sequential ride-along corner
// coverage: every payload spans the full local extent — fresh ghosts
// included — of the axes already exchanged.
func (cs *cartStepper) overlappedStep(b box, stale [3]bool) {
	// Stale axes that exchange no messages — local wraps and boundary
	// fills — refresh synchronously before any compute. The ride-along
	// corner argument needs a consistent axis order across ranks, not the
	// x→y→z order specifically (whether an axis messages is a property of
	// the rank grid, so every rank agrees on this split), and keeping
	// them out of the phase chain leaves the largest possible interior
	// box overlapping the first messages and no message-free rim phases.
	var chain, packLate [3]bool
	var axes []int
	for a := 0; a < 3; a++ {
		if stale[a] && !cs.ex.Messaging(a) {
			cs.beginAxis(a) // completes synchronously
		}
	}
	for a := 0; a < 3; a++ {
		if !stale[a] || !cs.ex.Messaging(a) {
			continue
		}
		chain[a] = true
		packLate[a] = len(axes) > 0
		axes = append(axes, a)
	}
	plan := planStep(b, cs.own, cs.w, cs.k, chain, packLate)
	for _, a := range axes {
		cs.ex.PostRecvsAxis(cs.r, a)
	}
	cs.beginAxis(axes[0])
	cs.computeInterior(plan)
	for i, a := range axes {
		if i > 0 {
			// The previous axis completed below; this axis's pack now
			// reads its fresh ghosts, and the previous axis's rims
			// compute while this axis's messages fly.
			cs.beginAxis(a)
			cs.computeRims(plan, axes[i-1])
		}
		cs.ex.WaitUnpackAxis(cs.r, cs.f, a)
	}
	cs.computeRims(plan, axes[len(axes)-1])
}

// beginAxis starts one axis's ghost refresh at its slot: boundary faces
// are filled first (they ride along on this and later axes' payloads),
// then the borders go out — as messages on a messaging axis (completed
// later by WaitUnpackAxis), or synchronously as the local periodic wrap.
func (cs *cartStepper) beginAxis(axis int) {
	cs.fillAxisFaces(axis)
	if cs.ex.Messaging(axis) {
		cs.ex.SendBordersAxis(cs.r, cs.f, axis)
		return
	}
	cs.ex.ExchangeAxis(cs.r, cs.f, axis, false) // local wrap or boundary no-op
}

// computeInterior runs the overlap-safe part of a step: the stream-ahead
// box (and, for the split kernels, the collide-ahead box) of the plan.
func (cs *cartStepper) computeInterior(p stepPlan) {
	if cs.cfg.Fused {
		cs.fusedBox(p.interiorS)
		return
	}
	cs.streamBox(p.interiorS)
	cs.applyBounceBackBoxIn(p.interiorS)
	cs.collideBox(p.interiorC)
}

// computeRims finishes one stale axis's rim slabs after its ghosts became
// valid.
func (cs *cartStepper) computeRims(p stepPlan, axis int) {
	ph := p.phases[axis]
	if cs.cfg.Fused {
		t0 := cs.rec.Begin()
		cs.fusedBoxPair(ph.streamRims[0], ph.streamRims[1])
		cs.rec.EndAxis(obs.Rim, axis, t0)
		return
	}
	t0 := cs.rec.Begin()
	cs.streamBoxPair(ph.streamRims[0], ph.streamRims[1])
	cs.rec.EndAxis(obs.Rim, axis, t0)
	cs.applyBounceBackBoxIn(ph.streamRims[0])
	cs.applyBounceBackBoxIn(ph.streamRims[1])
	t0 = cs.rec.Begin()
	cs.collideBoxPair(ph.collideRims[0], ph.collideRims[1])
	cs.rec.EndAxis(obs.Rim, axis, t0)
}

// faceBox returns the ghost box of one global boundary face: the full
// w[axis] ghost layers on the given side of axis, spanning the full local
// extent of the other axes.
func (cs *cartStepper) faceBox(axis, side int) box {
	b := box{hi: [3]int{cs.d.NX, cs.d.NY, cs.d.NZ}}
	if side == 0 {
		b.lo[axis], b.hi[axis] = 0, cs.w[axis]
	} else {
		b.lo[axis], b.hi[axis] = cs.w[axis]+cs.own[axis], cs.own[axis]+2*cs.w[axis]
	}
	return b
}

// fillFace writes boundary data into the ghost box of one global face.
// Wall faces (moving or not) hold the rest-state equilibrium: their
// values are never consumed by fluid cells — the bounce-back fixups
// replace every population streamed out of a solid ghost — but a valid
// distribution keeps the extended-box collisions of deep-halo cycles
// stable and the ride-along exchange payloads deterministic. Velocity
// inlets hold the inlet equilibrium (ρ0 = 1 at the prescribed velocity)
// for the same reason, per lattice point when the face has a profile.
// Outflow faces are zero-gradient: every ghost layer copies the
// outermost owned layer.
func (cs *cartStepper) fillFace(axis, side int) {
	t0 := cs.rec.Begin()
	defer cs.rec.EndAxis(obs.Face, axis, t0)
	switch face := &cs.spec.Faces[axis][side]; face.Kind {
	case BCInlet:
		cs.fillInletFace(face, cs.faceBox(axis, side))
	case BCWall, BCMovingWall:
		cs.fillRestFace(cs.faceBox(axis, side))
	case BCOutflow:
		src := cs.w[axis] // first owned layer
		if side == 1 {
			src = cs.w[axis] + cs.own[axis] - 1 // last owned layer
		}
		b := cs.faceBox(axis, side)
		for l := b.lo[axis]; l < b.hi[axis]; l++ {
			cs.copyAxisLayer(axis, l, src)
		}
	case BCPressureOutlet:
		src := cs.w[axis]
		if side == 1 {
			src = cs.w[axis] + cs.own[axis] - 1
		}
		cs.fillPressureLayer(axis, side, src)
	}
}

// fillInletFace writes the inlet equilibrium into the ghost box of a
// velocity-inlet face, row-blocked over z-runs and chunked across the
// team. A uniform face computes the Q equilibrium values once per chunk
// and fills per-velocity runs; a profiled face makes exactly the same
// per-point Equilibrium calls as the old per-cell loop, staged through
// the worker's row buffers so the writes become contiguous per-velocity
// copies — same values either way, bit for bit.
func (cs *cartStepper) fillInletFace(face *Face, fb box) {
	m := cs.model
	cs.br.run(func(worker int, b box) {
		sc := cs.scratch[worker]
		zn := b.hi[2] - b.lo[2]
		if zn <= 0 {
			return
		}
		feq := sc.feqR
		if face.Profile == nil {
			m.Equilibrium(1, face.U[0], face.U[1], face.U[2], feq)
			for v := 0; v < m.Q; v++ {
				blk := cs.f.V(v)
				val := feq[v]
				for ix := b.lo[0]; ix < b.hi[0]; ix++ {
					for iy := b.lo[1]; iy < b.hi[1]; iy++ {
						run := blk[cs.d.Index(ix, iy, b.lo[2]) : cs.d.Index(ix, iy, b.lo[2])+zn]
						for z := range run {
							run[z] = val
						}
					}
				}
			}
			return
		}
		rows := sc.rows(zn)
		for ix := b.lo[0]; ix < b.hi[0]; ix++ {
			for iy := b.lo[1]; iy < b.hi[1]; iy++ {
				for iz := b.lo[2]; iz < b.hi[2]; iz++ {
					c := [3]axisClass{cs.class[0][ix], cs.class[1][iy], cs.class[2][iz]}
					u := face.velocityAt(c[0].g, c[1].g, c[2].g)
					m.Equilibrium(1, u[0], u[1], u[2], feq)
					for v := 0; v < m.Q; v++ {
						rows[v][iz-b.lo[2]] = feq[v]
					}
				}
				base := cs.d.Index(ix, iy, b.lo[2])
				for v := 0; v < m.Q; v++ {
					copy(cs.f.V(v)[base:base+zn], rows[v])
				}
			}
		}
	}, fb)
}

// fillRestFace writes the rest-state equilibrium into a wall face's ghost
// box as per-velocity z-run fills, chunked across the team.
func (cs *cartStepper) fillRestFace(fb box) {
	cs.br.run(func(worker int, b box) {
		zn := b.hi[2] - b.lo[2]
		if zn <= 0 {
			return
		}
		for v := 0; v < cs.model.Q; v++ {
			blk := cs.f.V(v)
			val := cs.rest[v]
			for ix := b.lo[0]; ix < b.hi[0]; ix++ {
				for iy := b.lo[1]; iy < b.hi[1]; iy++ {
					run := blk[cs.d.Index(ix, iy, b.lo[2]) : cs.d.Index(ix, iy, b.lo[2])+zn]
					for z := range run {
						run[z] = val
					}
				}
			}
		}
	}, fb)
}

// fillPressureLayer writes the non-equilibrium extrapolation of the
// outermost owned layer (axis position src) into every ghost layer of
// the face: each cell's populations with their equilibrium re-anchored
// at unit density, f + f_eq(1, u) − f_eq(ρ, u).
func (cs *cartStepper) fillPressureLayer(axis, side, src int) {
	b := cs.faceBox(axis, side)
	m := cs.model
	fc := make([]float64, m.Q)
	feqR := make([]float64, m.Q)
	feq1 := make([]float64, m.Q)
	// Iterate the transverse cross-section: project the face box onto the
	// src layer, transform once per column, write all w ghost layers.
	lo, hi := b.lo, b.hi
	lo[axis], hi[axis] = src, src+1
	for ix := lo[0]; ix < hi[0]; ix++ {
		for iy := lo[1]; iy < hi[1]; iy++ {
			for iz := lo[2]; iz < hi[2]; iz++ {
				cs.f.Cell(ix, iy, iz, fc)
				rho, jx, jy, jz := m.Moments(fc)
				ux, uy, uz := jx/rho, jy/rho, jz/rho
				m.Equilibrium(rho, ux, uy, uz, feqR)
				m.Equilibrium(1, ux, uy, uz, feq1)
				for v := 0; v < m.Q; v++ {
					fc[v] += feq1[v] - feqR[v]
				}
				p := [3]int{ix, iy, iz}
				for l := b.lo[axis]; l < b.hi[axis]; l++ {
					p[axis] = l
					cs.f.SetCell(p[0], p[1], p[2], fc)
				}
			}
		}
	}
}

// openFace reports whether a face kind is an open (non-solid) boundary
// whose ghost fill is a function of the current interior state — the
// faces refilled at the start of every step rather than only at refresh,
// which keeps them zero-gradient against the *current* layer under deep
// halos (and is what the link-by-link oracle of the tests assumes).
func openFace(k BCKind) bool { return k == BCOutflow || k == BCPressureOutlet }

// fillOpenFaces refreshes the open-face ghosts of every bounded axis
// from the pre-stream state; called at the start of each step, before
// any exchange packs, so the fills also ride along on this step's
// payloads exactly as a refresh-time fill would.
func (cs *cartStepper) fillOpenFaces() {
	if cs.spec == nil {
		return
	}
	for axis := 0; axis < 3; axis++ {
		for side := 0; side < 2; side++ {
			if cs.ex.Neighbors[axis][side] == halo.NoNeighbor && openFace(cs.spec.Faces[axis][side].Kind) {
				cs.fillFace(axis, side)
			}
		}
	}
}

// copyAxisLayer copies the full cross-section layer at axis position src
// to position dst (local indices, ghosts included in the cross-section).
func (cs *cartStepper) copyAxisLayer(axis, dst, src int) {
	d := cs.d
	for v := 0; v < cs.model.Q; v++ {
		blk := cs.f.V(v)
		switch axis {
		case 0:
			// An x layer is one contiguous NY·NZ block.
			n := d.NY * d.NZ
			copy(blk[dst*n:(dst+1)*n], blk[src*n:(src+1)*n])
		case 1:
			for ix := 0; ix < d.NX; ix++ {
				do := d.Index(ix, dst, 0)
				so := d.Index(ix, src, 0)
				copy(blk[do:do+d.NZ], blk[so:so+d.NZ])
			}
		default:
			for ix := 0; ix < d.NX; ix++ {
				for iy := 0; iy < d.NY; iy++ {
					blk[d.Index(ix, iy, dst)] = blk[d.Index(ix, iy, src)]
				}
			}
		}
	}
}

// boxFor returns the destination box computable in a step whose inputs
// are valid on owned ± ext[a] cells per axis: owned ± (ext[a] − k).
func (cs *cartStepper) boxFor(ext [3]int) box {
	var b box
	for a := 0; a < 3; a++ {
		b.lo[a] = cs.w[a] - (ext[a] - cs.k)
		b.hi[a] = cs.w[a] + cs.own[a] + (ext[a] - cs.k)
	}
	return b
}

// countUpdates accumulates the ghost-region overhead metric.
func (cs *cartStepper) countUpdates(b box) {
	if extra := b.cells() - cs.own[0]*cs.own[1]*cs.own[2]; extra > 0 {
		cs.ghostUpdates += int64(extra)
	}
}

// streamBox advances the streaming step for destination box b. With
// ghosts on every axis there is no wrap arithmetic at all: each velocity
// moves as offset block copies of z-runs (the DH data-handling form,
// which every optimization level shares on this path — streaming only
// moves values, so the level's arithmetic is untouched).
func (cs *cartStepper) streamBox(b box) {
	t0 := cs.rec.Begin()
	cs.br.run(cs.streamBoxRange, b)
	cs.rec.End(obs.Interior, t0)
}

// streamBoxPair streams two disjoint boxes as one chunk batch, so a thin
// rim pair load-balances across the whole team.
func (cs *cartStepper) streamBoxPair(b1, b2 box) {
	cs.br.run(cs.streamBoxRange, b1, b2)
}

func (cs *cartStepper) streamBoxRange(worker int, b box) {
	m := cs.model
	zn := b.hi[2] - b.lo[2]
	if zn <= 0 || b.hi[1] <= b.lo[1] {
		return
	}
	if cs.runStart != nil {
		// Sparse: copy only the fluid runs of each row. Streaming moves
		// values without arithmetic, so the restriction is trivially exact
		// on fluid cells; solid destinations keep their stale fadv, which
		// the fixups and the mask-skipping collides below never read.
		cs.forRuns(b, func(ix, iy, zlo, zhi int) {
			n := zhi - zlo
			for v := 0; v < m.Q; v++ {
				sOff := cs.d.Index(ix-m.Cx[v], iy-m.Cy[v], zlo-m.Cz[v])
				dOff := cs.d.Index(ix, iy, zlo)
				copy(cs.fadv.V(v)[dOff:dOff+n], cs.f.V(v)[sOff:sOff+n])
			}
		})
		return
	}
	for v := 0; v < m.Q; v++ {
		src := cs.f.V(v)
		dst := cs.fadv.V(v)
		cx, cy, cz := m.Cx[v], m.Cy[v], m.Cz[v]
		for ix := b.lo[0]; ix < b.hi[0]; ix++ {
			for iy := b.lo[1]; iy < b.hi[1]; iy++ {
				sOff := cs.d.Index(ix-cx, iy-cy, b.lo[2]-cz)
				dOff := cs.d.Index(ix, iy, b.lo[2])
				copy(dst[dOff:dOff+zn], src[sOff:sOff+zn])
			}
		}
	}
}

// collideKernel resolves the collision kernel matching the configured
// operator and optimization level.
func (cs *cartStepper) collideKernel() func(worker int, b box) {
	switch {
	case cs.op != nil:
		return cs.collideBoxOperator
	case cs.cfg.Opt <= OptGC:
		return cs.collideBoxNaive
	case cs.cfg.Opt == OptDH:
		return cs.collideBoxGeneric
	default:
		return cs.collideBoxPaired
	}
}

// collideBox applies the configured collision to box b.
func (cs *cartStepper) collideBox(b box) {
	t0 := cs.rec.Begin()
	cs.br.run(cs.collideKernel(), b)
	cs.rec.End(obs.Interior, t0)
}

// collideBoxPair collides two disjoint boxes as one chunk batch.
func (cs *cartStepper) collideBoxPair(b1, b2 box) {
	cs.br.run(cs.collideKernel(), b1, b2)
}

// collideBoxNaive mirrors collideNaive over a box: per-cell gather,
// divisions, equilibria by method call. The gather buffer comes from the
// worker's scratch slot; the arithmetic is untouched. Rows come from
// forRuns: the full box dense, fluid z-runs under sparse traversal —
// every cell is independent here, so the two traversals agree per cell.
func (cs *cartStepper) collideBoxNaive(worker int, b box) {
	m := cs.model
	fc := cs.scratch[worker].fc
	cs.forRuns(b, func(ix, iy, zlo, zhi int) {
		for iz := zlo; iz < zhi; iz++ {
			cell := cs.d.Index(ix, iy, iz)
			for v := 0; v < m.Q; v++ {
				fc[v] = cs.fadv.Data[cs.fadv.Idx(v, cell)]
			}
			rho, jx, jy, jz := m.Moments(fc)
			ux := jx/rho + cs.shiftX
			uy := jy/rho + cs.shiftY
			uz := jz/rho + cs.shiftZ
			for v := 0; v < m.Q; v++ {
				feq := m.EquilibriumAt(v, rho, ux, uy, uz)
				cs.f.Data[cs.f.Idx(v, cell)] = fc[v] - (fc[v]-feq)/cs.cfg.Tau
			}
		}
	})
}

// collideBoxGeneric mirrors collideRowGeneric over a box: moments
// accumulated one velocity block at a time over z-runs, reciprocals,
// inlined equilibria. Every moment and equilibrium is per-z, so the
// run-restricted traversal reproduces the dense values exactly.
func (cs *cartStepper) collideBoxGeneric(worker int, b box) {
	m := cs.model
	omega := 1 / cs.cfg.Tau
	c := cs.coef
	rb := cs.scratch[worker].rb
	cs.forRuns(b, func(ix, iy, zlo, zhi int) {
		zn := zhi - zlo
		base := cs.d.Index(ix, iy, zlo)
		for z := 0; z < zn; z++ {
			rb.rho[z], rb.jx[z], rb.jy[z], rb.jz[z] = 0, 0, 0, 0
		}
		for v := 0; v < m.Q; v++ {
			sv := cs.fadv.V(v)[base : base+zn]
			cx, cy, cz := c.cx[v], c.cy[v], c.cz[v]
			for z, val := range sv {
				rb.rho[z] += val
				rb.jx[z] += cx * val
				rb.jy[z] += cy * val
				rb.jz[z] += cz * val
			}
		}
		for z := 0; z < zn; z++ {
			inv := 1 / rb.rho[z]
			rb.ux[z] = rb.jx[z]*inv + cs.shiftX
			rb.uy[z] = rb.jy[z]*inv + cs.shiftY
			rb.uz[z] = rb.jz[z]*inv + cs.shiftZ
			rb.u2[z] = rb.ux[z]*rb.ux[z] + rb.uy[z]*rb.uy[z] + rb.uz[z]*rb.uz[z]
		}
		for v := 0; v < m.Q; v++ {
			sv := cs.fadv.V(v)[base : base+zn]
			dv := cs.f.V(v)[base : base+zn]
			cx, cy, cz, w := c.cx[v], c.cy[v], c.cz[v], c.w[v]
			for z := 0; z < zn; z++ {
				cu := cx*rb.ux[z] + cy*rb.uy[z] + cz*rb.uz[z]
				e := 1 + cu*c.invCs2 + cu*cu*c.invCs4h - rb.u2[z]*c.invCs2h
				if c.third {
					e += cu*cu*cu*c.thA - cu*rb.u2[z]*c.thB
				}
				feq := w * rb.rho[z] * e
				dv[z] = sv[z] - omega*(sv[z]-feq)
			}
		}
	})
}

// collideBoxPaired mirrors collidePaired over a box: opposite-pair
// symmetric equilibria with precomputed coefficients. Its per-cell
// arithmetic is identical to the slab path's paired and blocked kernels,
// which is what keeps cross-decomposition runs within reassociation
// tolerance of each other.
func (cs *cartStepper) collideBoxPaired(worker int, b box) {
	omega := 1 / cs.cfg.Tau
	c := cs.coef
	rb := cs.scratch[worker].rb
	cs.forRuns(b, func(ix, iy, zlo, zhi int) {
		zn := zhi - zlo
		base := cs.d.Index(ix, iy, zlo)
		for z := 0; z < zn; z++ {
			rb.rho[z], rb.jx[z], rb.jy[z], rb.jz[z] = 0, 0, 0, 0
		}
		for _, p := range cs.pairs {
			if p.i == p.j {
				sv := cs.fadv.V(p.i)[base : base+zn]
				for z, val := range sv {
					rb.rho[z] += val
				}
				continue
			}
			si := cs.fadv.V(p.i)[base : base+zn]
			sj := cs.fadv.V(p.j)[base : base+zn]
			cx, cy, cz := c.cx[p.i], c.cy[p.i], c.cz[p.i]
			for z := 0; z < zn; z++ {
				vi, vj := si[z], sj[z]
				sum, diff := vi+vj, vi-vj
				rb.rho[z] += sum
				rb.jx[z] += cx * diff
				rb.jy[z] += cy * diff
				rb.jz[z] += cz * diff
			}
		}
		for z := 0; z < zn; z++ {
			inv := 1 / rb.rho[z]
			rb.ux[z] = rb.jx[z]*inv + cs.shiftX
			rb.uy[z] = rb.jy[z]*inv + cs.shiftY
			rb.uz[z] = rb.jz[z]*inv + cs.shiftZ
			rb.u2[z] = rb.ux[z]*rb.ux[z] + rb.uy[z]*rb.uy[z] + rb.uz[z]*rb.uz[z]
		}
		for _, p := range cs.pairs {
			if p.i == p.j {
				sv := cs.fadv.V(p.i)[base : base+zn]
				dv := cs.f.V(p.i)[base : base+zn]
				w := c.w[p.i]
				for z := 0; z < zn; z++ {
					feq := w * rb.rho[z] * (1 - rb.u2[z]*c.invCs2h)
					dv[z] = sv[z] - omega*(sv[z]-feq)
				}
				continue
			}
			si := cs.fadv.V(p.i)[base : base+zn]
			sj := cs.fadv.V(p.j)[base : base+zn]
			di := cs.f.V(p.i)[base : base+zn]
			dj := cs.f.V(p.j)[base : base+zn]
			cx, cy, cz, w := c.cx[p.i], c.cy[p.i], c.cz[p.i], c.w[p.i]
			for z := 0; z < zn; z++ {
				cu := cx*rb.ux[z] + cy*rb.uy[z] + cz*rb.uz[z]
				cu2 := cu * cu
				even := 1 + cu2*c.invCs4h - rb.u2[z]*c.invCs2h
				odd := cu * c.invCs2
				if c.third {
					odd += cu2*cu*c.thA - cu*rb.u2[z]*c.thB
				}
				wr := w * rb.rho[z]
				di[z] = si[z] - omega*(si[z]-wr*(even+odd))
				dj[z] = sj[z] - omega*(sj[z]-wr*(even-odd))
			}
		}
	})
}

// axisClass classifies one local index on one axis: the in-domain global
// coordinate (periodic wrap, or zero-gradient clamp beyond a non-wall
// face) and the bounded face the point lies beyond, if any.
type axisClass struct {
	g    int // in-domain global coordinate (wrapped or clamped)
	side int // -1 inside the domain; else 0/1, the bounded face crossed
}

// classifyAxis precomputes axisClass for every local index of one axis.
func (cs *cartStepper) classifyAxis(a, n int) []axisClass {
	g := [3]int{cs.cfg.N.NX, cs.cfg.N.NY, cs.cfg.N.NZ}[a]
	out := make([]axisClass, n)
	for i := 0; i < n; i++ {
		gi := cs.start[a] + i - cs.w[a]
		c := axisClass{side: -1}
		switch {
		case cs.spec.AxisPeriodic(a):
			c.g = ((gi % g) + g) % g
		case gi < 0:
			c.g, c.side = 0, 0
		case gi >= g:
			c.g, c.side = g-1, 1
		default:
			c.g = gi
		}
		out[i] = c
	}
	return out
}

// solidAt classifies one local point: whether it is solid, and whether
// the solidity comes from a global boundary face (walls, moving walls,
// velocity inlets) rather than the user's voxel mask. Mask coordinates
// wrap on periodic axes and clamp beyond non-wall bounded faces (the
// mask analog of zero gradient).
func (cs *cartStepper) solidAt(c [3]axisClass) (solid, face bool) {
	for a := 0; a < 3; a++ {
		if c[a].side >= 0 {
			switch cs.spec.Faces[a][c[a].side].Kind {
			case BCWall, BCMovingWall, BCInlet:
				return true, true
			}
		}
	}
	return cs.cfg.Solid != nil && cs.cfg.Solid.At(c[0].g, c[1].g, c[2].g), false
}

// faceDelta returns the bounce-back correction for a link whose solid
// endpoint has the given classification. Endpoints beyond exactly one
// bounded face pick up the face's term:
//
//   - moving wall: the standard 2·w_v·ρ0·(c_v·u_w)/c_s² momentum
//     correction (the second-order odd part of the wall equilibrium);
//
//   - velocity inlet: the full Zou-He odd part
//     f_eq_v(1, u_w) − f_eq_opp(1, u_w) — the even/odd pair split of the
//     collision subsystem applied to the wall equilibrium, third-order
//     terms included, with u_w from the face's profile at the endpoint.
//
// Endpoints beyond two or three faces (edge and corner ghosts) bounce as
// stationary walls, the corner convention of the cavity literature — no
// inlet or lid data reaches a corner link.
func (cs *cartStepper) faceDelta(v int, c [3]axisClass) float64 {
	outside, axis := 0, -1
	for a := 0; a < 3; a++ {
		if c[a].side >= 0 {
			outside++
			axis = a
		}
	}
	if outside != 1 {
		return 0
	}
	m := cs.model
	face := &cs.spec.Faces[axis][c[axis].side]
	switch face.Kind {
	case BCMovingWall:
		cu := float64(m.Cx[v])*face.U[0] + float64(m.Cy[v])*face.U[1] + float64(m.Cz[v])*face.U[2]
		return 2 * m.W[v] * cu / m.CsSq
	case BCInlet:
		u := face.velocityAt(c[0].g, c[1].g, c[2].g)
		return m.EquilibriumAt(v, 1, u[0], u[1], u[2]) - m.EquilibriumAt(m.Opp[v], 1, u[0], u[1], u[2])
	}
	return 0
}

// buildMask evaluates the solid geometry over the local box (ghosts
// included) and builds the per-box bounce-back fixup index. Two sources
// make a cell solid: the user's voxel mask over the global domain and the
// region beyond a wall, moving-wall or velocity-inlet global face; the
// per-link corrections come from faceDelta. Links are tagged with their
// body (mask vs faces) and with ownership, the force-measurement filter.
func (cs *cartStepper) buildMask() {
	if cs.cfg.Solid == nil && !cs.spec.hasWallFaces() {
		return
	}
	nx, ny, nz := cs.d.NX, cs.d.NY, cs.d.NZ
	cs.class = [3][]axisClass{
		cs.classifyAxis(0, nx), cs.classifyAxis(1, ny), cs.classifyAxis(2, nz),
	}
	class := cs.class
	m := cs.model
	cs.mask = make([]bool, cs.d.Cells())
	obstacle := make([]bool, cs.d.Cells())
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				solid, face := cs.solidAt([3]axisClass{class[0][ix], class[1][iy], class[2][iz]})
				cs.mask[cs.d.Index(ix, iy, iz)] = solid
				obstacle[cs.d.Index(ix, iy, iz)] = solid && !face
			}
		}
	}
	ownedAt := func(a, i int) bool { return i >= cs.w[a] && i < cs.w[a]+cs.own[a] }
	cs.fix = newFixIndex(cs.d, m)
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			owned2 := ownedAt(0, ix) && ownedAt(1, iy)
			for iz := 0; iz < nz; iz++ {
				cell := cs.d.Index(ix, iy, iz)
				if cs.mask[cell] {
					continue
				}
				owned := owned2 && ownedAt(2, iz)
				for v := 0; v < m.Q; v++ {
					sx, sy, sz := ix-m.Cx[v], iy-m.Cy[v], iz-m.Cz[v]
					if sx < 0 || sx >= nx || sy < 0 || sy >= ny || sz < 0 || sz >= nz {
						continue // outside the allocation; never streamed
					}
					src := cs.d.Index(sx, sy, sz)
					if !cs.mask[src] {
						continue
					}
					var flags uint8
					if owned {
						flags |= fixOwned
					}
					if obstacle[src] {
						flags |= fixObstacle
					}
					cs.fix.add(ix, iy, iz, v, m.Opp[v],
						cs.faceDelta(v, [3]axisClass{class[0][sx], class[1][sy], class[2][sz]}), flags)
				}
			}
		}
	}
	cs.fix.finish()
	if cs.cfg.Sparse {
		cs.buildRuns()
	}
}

// buildSponge precomputes the per-axis sponge blend factors of any
// pressure-outlet face that enables the absorbing layer (Face.SpongeWidth
// / SpongeStrength). The factor is a function of the *global* coordinate
// only — a quadratic ramp σ(g) = S·ξ², ξ rising from 0 at the inner edge
// to 1 at the outlet face — so every rank, every decomposition and every
// ghost copy agrees on it, and the layer stays invariant to 1e-12 across
// shapes and thread counts like the rest of the stepper. Factors of
// multiple sponge faces combine as 1 − Π(1 − σ_a).
func (cs *cartStepper) buildSponge() {
	if cs.spec == nil {
		return
	}
	gdim := [3]int{cs.cfg.N.NX, cs.cfg.N.NY, cs.cfg.N.NZ}
	ns := [3]int{cs.d.NX, cs.d.NY, cs.d.NZ}
	for a := 0; a < 3; a++ {
		for side := 0; side < 2; side++ {
			f := &cs.spec.Faces[a][side]
			if f.SpongeWidth <= 0 || f.SpongeStrength <= 0 {
				continue
			}
			if cs.sponge[a] == nil {
				cs.sponge[a] = make([]float64, ns[a])
			}
			cs.hasSponge = true
			for i := 0; i < ns[a]; i++ {
				g := cs.start[a] + i - cs.w[a]
				if g < 0 {
					g = 0
				}
				if g >= gdim[a] {
					g = gdim[a] - 1
				}
				dist := g
				if side == 1 {
					dist = gdim[a] - 1 - g
				}
				if dist >= f.SpongeWidth {
					continue
				}
				xi := 1 - float64(dist)/float64(f.SpongeWidth)
				s := f.SpongeStrength * xi * xi
				cs.sponge[a][i] = 1 - (1-cs.sponge[a][i])*(1-s)
			}
		}
	}
}

// spongeSig fills sig[:zn] with the combined sponge factor of row
// (ix, iy) over z ∈ [zlo, zlo+zn); returns false when the whole row lies
// outside every sponge layer.
func (cs *cartStepper) spongeSig(sig []float64, ix, iy, zlo, zn int) bool {
	prod := 1.0
	if sx := cs.sponge[0]; sx != nil {
		prod *= 1 - sx[ix]
	}
	if sy := cs.sponge[1]; sy != nil {
		prod *= 1 - sy[iy]
	}
	sz := cs.sponge[2]
	if sz == nil {
		s := 1 - prod
		if s == 0 {
			return false
		}
		for z := 0; z < zn; z++ {
			sig[z] = s
		}
		return true
	}
	any := false
	for z := 0; z < zn; z++ {
		sig[z] = 1 - prod*(1-sz[zlo+z])
		if sig[z] != 0 {
			any = true
		}
	}
	return any
}

// applySpongeRow blends one row's post-collision populations toward the
// unit-density equilibrium at the local velocity, f ← f + σ·(f_eq(1, u) −
// f), per cell. This is the absorbing layer that stops pressure waves
// from reflecting off the outlet's zero-gradient copy (the source of the
// Re=100 Cd-envelope ripple): the density perturbation — the acoustic
// carrier — is damped by (1 − σ) per step toward the ρ₀ = 1 the
// BCPressureOutlet anchors (sponges are restricted to those faces, so the
// target is consistent), while the non-equilibrium part shrinks by the
// same factor, a smooth effective-viscosity ramp over the sponge columns.
// The local velocity is kept, so vortical outflow passes through and is
// only flattened, not blocked. Deliberately non-conservative: the
// absorbed acoustic mass leaves through the open face. Shared verbatim by
// the two-grid post-collide pass and the AA kernels (operating on their
// out-row buffers), so the two schemes stay bit-identical here. Each cell
// is independent — the §8 row contract holds.
func applySpongeRow(m *lattice.Model, fc []float64, rows [][]float64, sig []float64, msk []bool, zn int) {
	for z := 0; z < zn; z++ {
		s := sig[z]
		if s == 0 || (msk != nil && msk[z]) {
			continue
		}
		for v := 0; v < m.Q; v++ {
			fc[v] = rows[v][z]
		}
		rho, jx, jy, jz := m.Moments(fc)
		ux, uy, uz := jx/rho, jy/rho, jz/rho
		for v := 0; v < m.Q; v++ {
			feq := m.EquilibriumAt(v, 1, ux, uy, uz)
			rows[v][z] = fc[v] + s*(feq-fc[v])
		}
	}
}

// spongeBox applies the sponge blend to the sponge-layer cells of box b,
// after the step's collisions. Ghost copies inside b are sponged too
// (σ is global-coordinate-based), which is what keeps deep-halo and
// multi-rank runs equivalent to the single-rank one.
func (cs *cartStepper) spongeBox(b box) {
	if !cs.hasSponge {
		return
	}
	t0 := cs.rec.Begin()
	defer cs.rec.End(obs.Sponge, t0)
	cs.br.run(func(worker int, sub box) {
		sc := cs.scratch[worker]
		sv := sc.sv
		cs.forRuns(sub, func(ix, iy, zlo, zhi int) {
			zn := zhi - zlo
			sig := sc.rowFeq[:zn]
			if !cs.spongeSig(sig, ix, iy, zlo, zn) {
				return
			}
			base := cs.d.Index(ix, iy, zlo)
			for v := 0; v < cs.model.Q; v++ {
				sv[v] = cs.f.V(v)[base : base+zn]
			}
			var msk []bool
			if cs.runStart == nil && cs.mask != nil {
				// Dense rows still carry solid cells; sparse runs are
				// all-fluid by construction.
				msk = cs.mask[base : base+zn]
			}
			applySpongeRow(cs.model, sc.fc, sv, sig, msk, zn)
		})
	}, b)
}

// applyBounceBackBox applies the fixup links of destination box b through
// the per-box index (or the legacy lenient whole-plane scan under
// Config.FixupScan), accumulating momentum-exchange forces when the run
// measures them. Restricting to exactly b is always safe: cells outside b
// were not streamed this step, hold stale state, and are rewritten by a
// wider stream before ever being read again.
func (cs *cartStepper) applyBounceBackBox(b box) {
	if cs.fix.empty() {
		return
	}
	t0 := cs.rec.Begin()
	defer cs.rec.End(obs.Fixup, t0)
	switch {
	case cs.cfg.MeasureForces:
		// Serial: the momentum-exchange sums must keep one accumulation
		// order to stay decomposition- and thread-count-independent.
		cs.fix.applyBoxForce(cs.f, cs.fadv, b, &cs.stepForce)
	case cs.cfg.FixupScan:
		cs.fix.applyPlanes(cs.f, cs.fadv, b.lo[0], b.hi[0])
	default:
		cs.runFixupBox(b)
	}
}

// runFixupBox applies the fixup links of box b through the CSR index,
// chunked across the team by row spans. Each link writes one (velocity,
// cell) slot of fadv and reads only f; links partition by their cell's
// (x, y) row, so chunks never touch the same memory.
func (cs *cartStepper) runFixupBox(b box) {
	cs.br.run(func(worker int, sub box) {
		cs.fix.applyBox(cs.f, cs.fadv, sub)
	}, b)
}

// applyBounceBackBoxIn applies exactly the links of box b — the form the
// phased schedule requires (a fixup applied to a cell before that cell's
// rim stream would be overwritten by it, so each fixup must run in the
// phase that streams its cell, and only there).
func (cs *cartStepper) applyBounceBackBoxIn(b box) {
	if cs.fix.empty() {
		return
	}
	t0 := cs.rec.Begin()
	defer cs.rec.End(obs.Fixup, t0)
	switch {
	case cs.cfg.MeasureForces:
		cs.fix.applyBoxForce(cs.f, cs.fadv, b, &cs.stepForce)
	case cs.cfg.FixupScan:
		cs.fix.applyPlanesStrict(cs.f, cs.fadv, b)
	default:
		cs.runFixupBox(b)
	}
}

// endForceStep closes one step's force accumulation (see boundary.go).
func (cs *cartStepper) endForceStep() {
	if !cs.cfg.MeasureForces {
		return
	}
	t0 := cs.rec.Begin()
	cs.forceSer = appendForceStep(cs.forceSer, &cs.stepForce)
	cs.rec.End(obs.Force, t0)
}

// ownedSums returns mass and momentum summed over the owned fluid cells.
// After an odd number of AA steps the field is in star arrangement:
// population v of cell y lives in slot (opp(v), y + c_v) — the slot its
// own transport pushed, which is valid for every owned fluid cell.
func (cs *cartStepper) ownedSums() (mass, mx, my, mz float64) {
	m := cs.model
	fc := make([]float64, m.Q)
	w := cs.w
	for ix := 0; ix < cs.own[0]; ix++ {
		for iy := 0; iy < cs.own[1]; iy++ {
			for iz := 0; iz < cs.own[2]; iz++ {
				if cs.mask != nil && cs.mask[cs.d.Index(w[0]+ix, w[1]+iy, w[2]+iz)] {
					continue
				}
				if cs.aaStar {
					for v := 0; v < m.Q; v++ {
						fc[v] = cs.f.V(m.Opp[v])[cs.d.Index(w[0]+ix+m.Cx[v], w[1]+iy+m.Cy[v], w[2]+iz+m.Cz[v])]
					}
				} else {
					cs.f.Cell(w[0]+ix, w[1]+iy, w[2]+iz, fc)
				}
				rho, jx, jy, jz := m.Moments(fc)
				mass += rho
				mx += jx
				my += jy
				mz += jz
			}
		}
	}
	return
}

// ownedBlock packs the owned box of the final state velocity-major (for
// every velocity, x-major y then z runs), the wire format assembleCart
// expects. Under AA star arrangement each velocity's block is read from
// the opposite slot shifted by +c_v (see ownedSums); solid cells carry
// whatever their untouched slots hold, so masked comparisons must filter
// them (they hold scheme-specific garbage in both schemes).
func (cs *cartStepper) ownedBlock() []float64 {
	n := cs.own[0] * cs.own[1] * cs.own[2]
	out := make([]float64, cs.model.Q*n)
	m := cs.model
	w, zn := cs.w, cs.own[2]
	pos := 0
	for v := 0; v < m.Q; v++ {
		blk := cs.f.V(v)
		var ox, oy, oz int
		if cs.aaStar {
			blk = cs.f.V(m.Opp[v])
			ox, oy, oz = m.Cx[v], m.Cy[v], m.Cz[v]
		}
		for ix := 0; ix < cs.own[0]; ix++ {
			for iy := 0; iy < cs.own[1]; iy++ {
				off := cs.d.Index(w[0]+ix+ox, w[1]+iy+oy, w[2]+oz)
				pos += copy(out[pos:pos+zn], blk[off:off+zn])
			}
		}
	}
	return out
}

// ghosts, gather, axisBytes and forceSeries adapt the cart stepper to the
// shared Run harness. axisBytes comes from the exchanger that does the
// sending, so it stays truthful to the actual pack shapes.
// setRecorder attaches the phase recorder to the stepper and its
// exchanger; observation snapshots it after the run (see stepper.go).
func (cs *cartStepper) setRecorder(rec *obs.Recorder) {
	cs.rec = rec
	cs.ex.Rec = rec
}

func (cs *cartStepper) observation() obs.RankObservation {
	o := cs.rec.Observation()
	if cs.br.pool.Threads() > 1 {
		o.WorkerChunks = cs.br.pool.ChunkCounts()
		o.WorkerWeights = cs.br.weightTotals()
	}
	return o
}

func (cs *cartStepper) ghosts() int64          { return cs.ghostUpdates }
func (cs *cartStepper) close()                 { cs.br.close() }
func (cs *cartStepper) gather() []float64      { return cs.ownedBlock() }
func (cs *cartStepper) forceSeries() []float64 { return cs.forceSer }
func (cs *cartStepper) axisBytes() [3]int64 {
	return [3]int64{cs.ex.BytesPerExchange(0), cs.ex.BytesPerExchange(1), cs.ex.BytesPerExchange(2)}
}

// assembleCart glues the per-rank owned blocks into one global SoA field.
func assembleCart(cfg *Config, dec decomp.Cartesian, blocks [][]float64) *grid.Field {
	g := grid.NewField(cfg.Model.Q, cfg.N, grid.SoA)
	for r := 0; r < dec.Ranks(); r++ {
		var st, sz [3]int
		for a := 0; a < 3; a++ {
			st[a], sz[a] = dec.Own(r, a)
		}
		src := blocks[r]
		n := sz[0] * sz[1] * sz[2]
		pos := 0
		for v := 0; v < cfg.Model.Q; v++ {
			blk := g.V(v)
			for ix := 0; ix < sz[0]; ix++ {
				for iy := 0; iy < sz[1]; iy++ {
					off := cfg.N.Index(st[0]+ix, st[1]+iy, st[2])
					copy(blk[off:off+sz[2]], src[pos:pos+sz[2]])
					pos += sz[2]
				}
			}
		}
		if pos != cfg.Model.Q*n {
			panic("core: cart gather size mismatch")
		}
	}
	return g
}
