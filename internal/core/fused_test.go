package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/lattice"
)

// TestFusedEquivalence: the fused kernel must match the oracle across
// optimization levels, rank counts, depths and threads, for both models.
func TestFusedEquivalence(t *testing.T) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		n := grid.Dims{NX: 16, NY: 6, NZ: 7}
		for _, opt := range []OptLevel{OptGC, OptNBC, OptGCC, OptSIMD} {
			for _, ranks := range []int{1, 2} {
				cfg := Config{
					Model: m, N: n, Tau: 0.8, Steps: 5,
					Opt: opt, Ranks: ranks, Threads: 1, GhostDepth: 1,
					Fused: true,
				}
				runAndCompare(t, cfg)
			}
		}
	}
}

func TestFusedDeepHalo(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 5, NZ: 5}
	for _, depth := range []int{2, 3} {
		for _, ranks := range []int{1, 3} {
			runAndCompare(t, Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.9, Steps: 7,
				Opt: OptGCC, Ranks: ranks, Threads: 1, GhostDepth: depth,
				Fused: true,
			})
		}
	}
}

func TestFusedThreaded(t *testing.T) {
	n := grid.Dims{NX: 18, NY: 6, NZ: 8}
	for _, threads := range []int{2, 4} {
		runAndCompare(t, Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.75, Steps: 4,
			Opt: OptSIMD, Ranks: 2, Threads: threads, GhostDepth: 2,
			Fused: true,
		})
	}
}

func TestFusedQ39DeepHaloMultiRank(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 6, NZ: 6}
	runAndCompare(t, Config{
		Model: lattice.D3Q39(), N: n, Tau: 1.0, Steps: 4,
		Opt: OptGCC, Ranks: 2, Threads: 2, GhostDepth: 2,
		Fused: true,
	})
}

func TestFusedValidation(t *testing.T) {
	base := Config{Model: lattice.D3Q19(), N: grid.Dims{NX: 8, NY: 4, NZ: 4}, Tau: 0.8, Steps: 1, Fused: true}
	cfg := base
	cfg.Opt = OptOrig
	if _, err := Run(cfg); err == nil {
		t.Error("fused + Orig accepted")
	}
	cfg = base
	cfg.Opt = OptGC
	cfg.Layout = grid.AoS
	if _, err := Run(cfg); err == nil {
		t.Error("fused + AoS accepted")
	}
	cfg = base
	cfg.Opt = OptGC
	if _, err := Run(cfg); err != nil {
		t.Errorf("valid fused config rejected: %v", err)
	}
}

func TestFusedBytesPerCell(t *testing.T) {
	if got := FusedBytesPerCell(19); got != 304 {
		t.Errorf("FusedBytesPerCell(19) = %g, want 304", got)
	}
	if got := FusedBytesPerCell(39); got != 624 {
		t.Errorf("FusedBytesPerCell(39) = %g, want 624", got)
	}
}

// TestRandomizedConfigEquivalence is the property-based sweep: random
// (bounded) configurations of the solver must match the oracle, fused or
// not.
func TestRandomizedConfigEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep in -short mode")
	}
	prop := func(optR, ranksR, threadsR, depthR, stepsR uint8, fused bool) bool {
		levels := Levels()
		opt := levels[int(optR)%len(levels)]
		ranks := int(ranksR)%3 + 1
		threads := int(threadsR)%2 + 1
		depth := int(depthR)%3 + 1
		steps := int(stepsR)%6 + 1
		if opt == OptOrig {
			depth = 1
			fused = false
		}
		n := grid.Dims{NX: 18, NY: 5, NZ: 6}
		cfg := Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: steps,
			Opt: opt, Ranks: ranks, Threads: threads, GhostDepth: depth,
			Fused: fused, KeepField: true, Init: waveInit(n),
		}
		res, err := Run(cfg)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		want := refSolver(cfg.Model, cfg.N, cfg.Tau, cfg.Steps, cfg.Init)
		d := grid.MaxAbsDiff(res.Field, want)
		if d > eqTol {
			t.Logf("opt=%v ranks=%d threads=%d depth=%d steps=%d fused=%v: diff %g",
				opt, ranks, threads, depth, steps, fused, d)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFusedStability: a long fused run stays finite and conserves mass.
func TestFusedStability(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 8, NZ: 8}
	res, err := Run(Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 100,
		Opt: OptSIMD, Ranks: 2, Threads: 1, GhostDepth: 2, Fused: true,
		Init: waveInit(n),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Mass) || math.IsInf(res.Mass, 0) {
		t.Fatalf("mass = %g", res.Mass)
	}
}
