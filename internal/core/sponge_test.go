package core

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/lattice"
)

// pulseResidual launches an acoustic density pulse in a flow-through
// channel closed by pressure outlets on both x faces and returns the
// largest density disturbance left in the domain after the wave fronts
// have had time to cross and leave. An ideal open boundary absorbs the
// pulse completely; the zero-gradient outlet reflects part of it back.
func pulseResidual(t *testing.T, sponge bool, stream StreamScheme) float64 {
	t.Helper()
	m := lattice.D3Q19()
	n := grid.Dims{NX: 96, NY: 4, NZ: 4}
	var spec BoundarySpec
	spec.Faces[0][0] = Face{Kind: BCPressureOutlet}
	spec.Faces[0][1] = Face{Kind: BCPressureOutlet}
	if sponge {
		// A gentle ramp absorbs best: steep σ gradients reflect at the
		// sponge entrance before the wave ever reaches the outlet.
		for s := 0; s < 2; s++ {
			spec.Faces[0][s].SpongeWidth = 20
			spec.Faces[0][s].SpongeStrength = 0.1
		}
	}
	// 2.5 domain crossings at the lattice sound speed: both fronts reach a
	// face, any reflection travels back through the interior, and the
	// sponged run's absorbed tail has fully drained.
	steps := int(2.5 * float64(n.NX) * math.Sqrt(3))
	cfg := Config{
		Model: m, N: n, Tau: 0.8, Steps: steps,
		Opt: OptGCC, Ranks: 2, Threads: 2, GhostDepth: 1,
		Boundary: &spec, Stream: stream, KeepField: true,
		Init: func(ix, iy, iz int) (rho, ux, uy, uz float64) {
			x := float64(ix) - float64(n.NX)/2
			return 1 + 0.05*math.Exp(-x*x/(2*36)), 0, 0, 0
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fc := make([]float64, m.Q)
	var worst float64
	for ix := 0; ix < n.NX; ix++ {
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				res.Field.Cell(ix, iy, iz, fc)
				rho, _, _, _ := m.Moments(fc)
				if d := math.Abs(rho - 1); d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}

// TestSpongeAbsorbsOutletReflection: the ramped-equilibrium sponge ahead
// of a pressure outlet must swallow most of what the bare zero-gradient
// copy reflects — the mechanism behind the Re=100 drag-envelope ripple,
// reduced here to a cheap acoustic pulse. Checked on both streaming
// schemes (the AA kernels apply the sponge inside their collide rows).
func TestSpongeAbsorbsOutletReflection(t *testing.T) {
	for _, tc := range []struct {
		name   string
		stream StreamScheme
	}{{"twogrid", StreamTwoGrid}, {"aa", StreamAA}} {
		t.Run(tc.name, func(t *testing.T) {
			bare := pulseResidual(t, false, tc.stream)
			damped := pulseResidual(t, true, tc.stream)
			if damped > bare/3 {
				t.Errorf("sponge left %.2e residual disturbance, bare outlet %.2e; want at least 3x absorption", damped, bare)
			}
			t.Logf("residual |rho-1|: bare %.3e, sponged %.3e (%.1fx)", bare, damped, bare/damped)
		})
	}
}

// TestSpongeSchemeEquivalence: the sponge pass must leave AA and two-grid
// within reassociation tolerance of each other (the shared applySpongeRow
// makes it bit-equal per cell).
func TestSpongeSchemeEquivalence(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 16, NZ: 16}
	spec := InletChannelSpec(0.04, nil)
	spec.Faces[0][1].SpongeWidth = 6
	spec.Faces[0][1].SpongeStrength = 0.2
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 6,
		Opt: OptGCC, Ranks: 4, Threads: 2, Decomp: [3]int{2, 2, 1}, GhostDepth: 1,
		Boundary: spec,
	}
	tg, aa := aaVariant(base)
	a := runField(t, tg)
	b := runField(t, aa)
	if d := grid.MaxAbsDiff(a, b); d > eqTol {
		t.Errorf("sponged AA vs two-grid: max |Δf| = %g (tol %g)", d, eqTol)
	}
}
