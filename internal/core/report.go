package core

import (
	"repro/internal/grid"
	"repro/internal/obs"
)

// ReportConfig mirrors a solver Config into the report's plain-value echo
// form (obs cannot import core, so the glue lives here).
func ReportConfig(cfg *Config) obs.RunConfig {
	layout := "soa"
	if cfg.Layout == grid.AoS {
		layout = "aos"
	}
	rc := obs.RunConfig{
		Model:     cfg.Model.Name,
		NX:        cfg.N.NX,
		NY:        cfg.N.NY,
		NZ:        cfg.N.NZ,
		Steps:     cfg.Steps,
		Opt:       cfg.Opt.String(),
		Collision: cfg.Collision.String(),
		Stream:    cfg.Stream.String(),
		Layout:    layout,
		Fused:     cfg.Fused,
		Ranks:     cfg.Ranks,
		Decomp:    cfg.Decomp,
		Threads:   cfg.Threads,
		Depth:     cfg.ghostDepths(),
		Sparse:    cfg.Sparse,
	}
	if cfg.Balance != BalanceVolume {
		rc.Balance = cfg.Balance.String()
	}
	return rc
}

// NewReport builds the structured run report of a completed run: machine
// info, the config echo, MFlup/s, the Fig. 9 comm-time spread and the
// per-phase breakdown aggregated across ranks. The per-rank observations
// require Config.Observe; without it the report still carries config,
// wall time and comm statistics.
func NewReport(cfg *Config, res *Result) *obs.Report {
	commSecs := make([]float64, len(res.PerRank))
	for i, s := range res.PerRank {
		commSecs[i] = s.CommTime.Seconds()
	}
	st := obs.RunStats{
		WallSeconds:     res.WallTime.Seconds(),
		MFlups:          res.MFlups,
		InteriorUpdates: res.InteriorUpdates,
		GhostUpdates:    res.GhostUpdates,
		CommSeconds:     commSecs,
		AxisBytes:       res.HaloAxisBytes,
	}
	ranks := res.Observations
	if ranks == nil {
		// Fall back to fabric-level stats so uninstrumented runs still
		// report their traffic.
		ranks = make([]obs.RankObservation, len(res.PerRank))
		for i, s := range res.PerRank {
			ranks[i] = obs.RankObservation{
				Rank:        i,
				CommSeconds: s.CommTime.Seconds(),
				BytesSent:   s.BytesSent,
				Messages:    s.Messages,
			}
		}
	}
	return obs.BuildReport(ReportConfig(cfg), st, ranks)
}
