package core

import (
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/obs"
)

// TestObserveBitIdentity: the instrumentation layer is purely
// observational — with Observe and Trace on, every stepper path must
// reproduce the uninstrumented field to the last bit. Covers the full
// nine-path matrix plus the AA in-place streaming paths the recorder
// also hooks.
func TestObserveBitIdentity(t *testing.T) {
	cases := stepperPathCases()
	n := grid.Dims{NX: 24, NY: 16, NZ: 16}
	cases = append(cases,
		struct {
			name string
			cfg  Config
		}{"slab-aa-gcc", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptGCC, Ranks: 2, GhostDepth: 1, Stream: StreamAA,
		}},
		struct {
			name string
			cfg  Config
		}{"pencil-aa-gcc", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptGCC, Ranks: 4, Decomp: [3]int{2, 2, 1}, GhostDepth: 1, Stream: StreamAA,
		}},
	)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain := tc.cfg
			plain.Threads = 2
			instr := plain
			instr.Observe = true
			instr.Trace = true
			a := runField(t, plain)
			b := runField(t, instr)
			if d := grid.MaxAbsDiff(a, b); d != 0 {
				t.Errorf("observed run differs from plain: max |Δf| = %g, want bit-exact", d)
			}
		})
	}
}

// TestObservationContents: an observed run must deliver one observation
// per rank with the phases its schedule actually executes, wire traffic
// on the exchanged axes, and per-worker chunk counts when threaded.
func TestObservationContents(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 16, NZ: 16}
	res, err := Run(Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
		Opt: OptGCC, Ranks: 4, Decomp: [3]int{2, 2, 1}, Threads: 2,
		GhostDepth: 1, Init: waveInit(n), Observe: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Observations) != 4 {
		t.Fatalf("got %d observations, want 4", len(res.Observations))
	}
	wall := res.WallTime.Seconds()
	for r := range res.Observations {
		o := &res.Observations[r]
		if o.Rank != r {
			t.Errorf("observation %d has rank %d", r, o.Rank)
		}
		for _, p := range []obs.Phase{obs.Interior, obs.Rim, obs.Pack, obs.Unpack} {
			if o.Seconds(p) <= 0 {
				t.Errorf("rank %d: phase %s recorded no time", r, p)
			}
		}
		// Spans never nest, so the per-phase total is bounded by the wall.
		if tot := o.Vector().Total(); tot > wall {
			t.Errorf("rank %d: phase seconds %.4f exceed wall %.4f", r, tot, wall)
		}
		// The pencil decomposes x and y: payload counters on both axes.
		if o.CommBytes[0] <= 0 || o.CommBytes[1] <= 0 || o.CommBytes[2] != 0 {
			t.Errorf("rank %d: comm bytes %v, want x,y > 0 and z = 0", r, o.CommBytes)
		}
		if o.CommMsgs[0] <= 0 || o.CommMsgs[1] <= 0 {
			t.Errorf("rank %d: comm msgs %v, want x,y > 0", r, o.CommMsgs)
		}
		if len(o.WorkerChunks) != 2 {
			t.Fatalf("rank %d: worker chunks %v, want 2 workers", r, o.WorkerChunks)
		}
		if o.WorkerChunks[0]+o.WorkerChunks[1] <= 0 {
			t.Errorf("rank %d: no chunks drained: %v", r, o.WorkerChunks)
		}
	}
	// Single-threaded ranks omit the chunk view.
	res1, err := Run(Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 2,
		Opt: OptGC, Ranks: 1, Threads: 1, GhostDepth: 1,
		Init: waveInit(n), Observe: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wc := res1.Observations[0].WorkerChunks; wc != nil {
		t.Errorf("single-threaded rank reported worker chunks %v, want nil", wc)
	}
	if res1.Observations[0].Events != nil {
		t.Error("untraced run retained trace events")
	}
}

// TestTraceEventsRetained: with Trace set, the observations carry the raw
// spans, stamped against a common epoch so ranks align on one timeline.
func TestTraceEventsRetained(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 16, NZ: 16}
	res, err := Run(Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 3,
		Opt: OptGCC, Ranks: 2, Threads: 1, GhostDepth: 1,
		Init: waveInit(n), Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range res.Observations {
		evs := res.Observations[r].Events
		if len(evs) == 0 {
			t.Fatalf("rank %d retained no trace events", r)
		}
		for _, e := range evs {
			if e.Start < 0 || e.Dur < 0 {
				t.Errorf("rank %d: event %s starts %v for %v, want non-negative", r, e.Phase, e.Start, e.Dur)
			}
		}
	}
}

// BenchmarkRecorderOverhead fences the disabled-path cost: a nil recorder
// must make every Begin/End pair a branch on a nil pointer, and a whole
// uninstrumented step must not regress measurably against the pre-obs
// kernels (compare the off/on sub-benchmarks for the enabled cost).
func BenchmarkRecorderOverhead(b *testing.B) {
	b.Run("nil-span", func(b *testing.B) {
		var r *obs.Recorder
		for i := 0; i < b.N; i++ {
			t0 := r.Begin()
			r.End(obs.Interior, t0)
		}
	})
	b.Run("live-span", func(b *testing.B) {
		r := obs.New(0, time.Now(), false)
		for i := 0; i < b.N; i++ {
			t0 := r.Begin()
			r.End(obs.Interior, t0)
		}
	})
	n := grid.Dims{NX: 32, NY: 16, NZ: 16}
	for _, observe := range []bool{false, true} {
		name := "step-off"
		if observe {
			name = "step-on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 1,
				Opt: OptGCC, Ranks: 2, Threads: 1, GhostDepth: 1,
				Init: waveInit(n), Observe: observe,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
