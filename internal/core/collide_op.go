package core

// Generic operator-driven collision kernels. The paper's BGK relaxation
// keeps its specialized kernels (collide.go, fused.go) — when
// Config.Collision is the zero (BGK) spec those paths are dispatched
// exactly as before, bit-for-bit. Any other collision operator (TRT, MRT)
// runs through these kernels instead, in one of two forms:
//
//   - collideOpRows, the z-run-blocked fast path for operators that
//     implement collision.RowRelaxer: moments accumulated one velocity
//     block at a time over contiguous z-runs (the DH data-handling form),
//     equilibria inlined into row buffers, one RelaxRows call per row.
//     This removes the per-cell gather/scatter and method calls that made
//     the original operator kernel cost ~2.5× the BGK fast path, and is
//     what lets TRT/MRT ride the overlapped box schedule at full speed.
//
//   - collideOpBox, the per-cell fallback (gather, Moments, one Relax,
//     scatter) for operators without a row form and for the AoS layout.
//     The forced-operator BGK regression route stays on it deliberately:
//     its arithmetic matches the naive kernel to 0 ULP.

import (
	"repro/internal/collision"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// collideOpBox applies op to every cell of box b, reading src
// (post-streaming) and writing dst. op and sc must be private to the
// calling worker (the per-worker scratch carries a pre-cloned operator).
func collideOpBox(op collision.Operator, m *lattice.Model, src, dst *grid.Field,
	b box, shiftX, shiftY, shiftZ float64, sc *workerScratch) {
	fc := sc.fc
	d := src.D
	if src.Layout == grid.SoA {
		// Hoist the per-velocity blocks so the inner gather/scatter is
		// direct indexing rather than Idx arithmetic.
		sv, dv := sc.sv, sc.dv
		for v := 0; v < m.Q; v++ {
			sv[v] = src.V(v)
			dv[v] = dst.V(v)
		}
		for ix := b.lo[0]; ix < b.hi[0]; ix++ {
			for iy := b.lo[1]; iy < b.hi[1]; iy++ {
				base := d.Index(ix, iy, 0)
				for iz := b.lo[2]; iz < b.hi[2]; iz++ {
					cell := base + iz
					for v := 0; v < m.Q; v++ {
						fc[v] = sv[v][cell]
					}
					rho, jx, jy, jz := m.Moments(fc)
					op.Relax(fc, rho, jx/rho+shiftX, jy/rho+shiftY, jz/rho+shiftZ)
					for v := 0; v < m.Q; v++ {
						dv[v][cell] = fc[v]
					}
				}
			}
		}
		return
	}
	for ix := b.lo[0]; ix < b.hi[0]; ix++ {
		for iy := b.lo[1]; iy < b.hi[1]; iy++ {
			for iz := b.lo[2]; iz < b.hi[2]; iz++ {
				cell := d.Index(ix, iy, iz)
				for v := 0; v < m.Q; v++ {
					fc[v] = src.Data[src.Idx(v, cell)]
				}
				rho, jx, jy, jz := m.Moments(fc)
				op.Relax(fc, rho, jx/rho+shiftX, jy/rho+shiftY, jz/rho+shiftZ)
				for v := 0; v < m.Q; v++ {
					dst.Data[dst.Idx(v, cell)] = fc[v]
				}
			}
		}
	}
}

// collideOpRows is the z-run-blocked operator kernel: per (x,y) row over
// the box's z-run, the moments accumulate as opposite-pair sums and
// differences over contiguous SoA loads and the equilibria are computed
// once per cell into row buffers with the pair-symmetric inlined form —
// both exactly the shape of the specialized paired BGK kernel — before
// the operator relaxes whole rows. rr and sc must be private to the
// calling worker (the scratch carries the row buffers and headers); the
// fields must be SoA.
func collideOpRows(rr collision.RowRelaxer, pairs []velPair, c eqCoefs, q int, src, dst *grid.Field,
	b box, shiftX, shiftY, shiftZ float64, sc *workerScratch) {
	zn := b.hi[2] - b.lo[2]
	if zn <= 0 || b.hi[1] <= b.lo[1] || b.hi[0] <= b.lo[0] {
		return
	}
	rb := sc.rb
	feq := sc.rows(zn)
	sv, dv := sc.sv, sc.dv
	d := src.D
	for ix := b.lo[0]; ix < b.hi[0]; ix++ {
		for iy := b.lo[1]; iy < b.hi[1]; iy++ {
			base := d.Index(ix, iy, b.lo[2])
			for v := 0; v < q; v++ {
				sv[v] = src.V(v)[base : base+zn]
				dv[v] = dst.V(v)[base : base+zn]
			}
			for z := 0; z < zn; z++ {
				rb.rho[z], rb.jx[z], rb.jy[z], rb.jz[z] = 0, 0, 0, 0
			}
			for _, p := range pairs {
				if p.i == p.j {
					for z, val := range sv[p.i] {
						rb.rho[z] += val
					}
					continue
				}
				si, sj := sv[p.i], sv[p.j]
				cx, cy, cz := c.cx[p.i], c.cy[p.i], c.cz[p.i]
				for z := 0; z < zn; z++ {
					vi, vj := si[z], sj[z]
					sum, diff := vi+vj, vi-vj
					rb.rho[z] += sum
					rb.jx[z] += cx * diff
					rb.jy[z] += cy * diff
					rb.jz[z] += cz * diff
				}
			}
			for z := 0; z < zn; z++ {
				inv := 1 / rb.rho[z]
				rb.ux[z] = rb.jx[z]*inv + shiftX
				rb.uy[z] = rb.jy[z]*inv + shiftY
				rb.uz[z] = rb.jz[z]*inv + shiftZ
				rb.u2[z] = rb.ux[z]*rb.ux[z] + rb.uy[z]*rb.uy[z] + rb.uz[z]*rb.uz[z]
			}
			for _, p := range pairs {
				if p.i == p.j {
					fv := feq[p.i]
					w := c.w[p.i]
					for z := 0; z < zn; z++ {
						fv[z] = w * rb.rho[z] * (1 - rb.u2[z]*c.invCs2h)
					}
					continue
				}
				fi, fj := feq[p.i], feq[p.j]
				cx, cy, cz, w := c.cx[p.i], c.cy[p.i], c.cz[p.i], c.w[p.i]
				for z := 0; z < zn; z++ {
					cu := cx*rb.ux[z] + cy*rb.uy[z] + cz*rb.uz[z]
					cu2 := cu * cu
					even := 1 + cu2*c.invCs4h - rb.u2[z]*c.invCs2h
					odd := cu * c.invCs2
					if c.third {
						odd += cu2*cu*c.thA - cu*rb.u2[z]*c.thB
					}
					wr := w * rb.rho[z]
					fi[z] = wr * (even + odd)
					fj[z] = wr * (even - odd)
				}
			}
			rr.RelaxRows(dv, sv, feq, zn)
		}
	}
}

// collideOperator is the slab stepper's operator kernel over an x/y
// sub-box (full z extent, like the BGK kernels of collide.go). The
// worker's scratch holds its private operator clone.
func (s *stepper) collideOperator(worker int, b box) {
	sc := s.scratch[worker]
	b.lo[2], b.hi[2] = 0, s.d.NZ
	if rr, ok := sc.op.(collision.RowRelaxer); ok && s.f.Layout == grid.SoA {
		collideOpRows(rr, s.pairs, s.coef, s.model.Q, s.fadv, s.f, b, s.shiftX, s.shiftY, s.shiftZ, sc)
		return
	}
	collideOpBox(sc.op, s.model, s.fadv, s.f, b, s.shiftX, s.shiftY, s.shiftZ, sc)
}

// collideBoxOperator is the cart stepper's operator kernel over box b.
// Under sparse traversal the per-(x,y)-row fluid runs are fed to the
// same kernels as single-row boxes: both kernels are strictly per-cell
// (RowRelaxer implementations relax each z independently), so the
// restriction reproduces the dense values exactly.
func (cs *cartStepper) collideBoxOperator(worker int, b box) {
	sc := cs.scratch[worker]
	if rr, ok := sc.op.(collision.RowRelaxer); ok && cs.f.Layout == grid.SoA {
		if cs.runStart == nil {
			collideOpRows(rr, cs.pairs, cs.coef, cs.model.Q, cs.fadv, cs.f, b, cs.shiftX, cs.shiftY, cs.shiftZ, sc)
			return
		}
		cs.forRuns(b, func(ix, iy, zlo, zhi int) {
			rb := box{lo: [3]int{ix, iy, zlo}, hi: [3]int{ix + 1, iy + 1, zhi}}
			collideOpRows(rr, cs.pairs, cs.coef, cs.model.Q, cs.fadv, cs.f, rb, cs.shiftX, cs.shiftY, cs.shiftZ, sc)
		})
		return
	}
	if cs.runStart != nil {
		cs.forRuns(b, func(ix, iy, zlo, zhi int) {
			rb := box{lo: [3]int{ix, iy, zlo}, hi: [3]int{ix + 1, iy + 1, zhi}}
			collideOpBox(sc.op, cs.model, cs.fadv, cs.f, rb, cs.shiftX, cs.shiftY, cs.shiftZ, sc)
		})
		return
	}
	collideOpBox(sc.op, cs.model, cs.fadv, cs.f, b, cs.shiftX, cs.shiftY, cs.shiftZ, sc)
}
