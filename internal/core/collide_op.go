package core

// Generic operator-driven collision kernel. The paper's BGK relaxation
// keeps its specialized kernels (collide.go, fused.go) — when
// Config.Collision is the zero (BGK) spec those paths are dispatched
// exactly as before, bit-for-bit. Any other collision operator (TRT, MRT)
// runs through this kernel instead: per-cell gather, macroscopic moments,
// one Operator.Relax call, scatter. The indirection costs roughly the
// naive kernel's memory behaviour plus the operator arithmetic, which is
// the deliberate trade — the operator axis buys stability (τ → ½, high
// Reynolds numbers) rather than speed, and only the runs that ask for it
// pay for it.

import (
	"repro/internal/collision"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// collideOpBox applies op to every cell of box b with x restricted to
// [x0,x1), reading src (post-streaming) and writing dst. op must be
// private to the calling goroutine (Clone per worker).
func collideOpBox(op collision.Operator, m *lattice.Model, src, dst *grid.Field,
	b box, x0, x1 int, shiftX, shiftY, shiftZ float64) {
	fc := make([]float64, m.Q)
	d := src.D
	if src.Layout == grid.SoA {
		// Hoist the per-velocity blocks so the inner gather/scatter is
		// direct indexing rather than Idx arithmetic.
		sv := make([][]float64, m.Q)
		dv := make([][]float64, m.Q)
		for v := 0; v < m.Q; v++ {
			sv[v] = src.V(v)
			dv[v] = dst.V(v)
		}
		for ix := x0; ix < x1; ix++ {
			for iy := b.lo[1]; iy < b.hi[1]; iy++ {
				base := d.Index(ix, iy, 0)
				for iz := b.lo[2]; iz < b.hi[2]; iz++ {
					cell := base + iz
					for v := 0; v < m.Q; v++ {
						fc[v] = sv[v][cell]
					}
					rho, jx, jy, jz := m.Moments(fc)
					op.Relax(fc, rho, jx/rho+shiftX, jy/rho+shiftY, jz/rho+shiftZ)
					for v := 0; v < m.Q; v++ {
						dv[v][cell] = fc[v]
					}
				}
			}
		}
		return
	}
	for ix := x0; ix < x1; ix++ {
		for iy := b.lo[1]; iy < b.hi[1]; iy++ {
			for iz := b.lo[2]; iz < b.hi[2]; iz++ {
				cell := d.Index(ix, iy, iz)
				for v := 0; v < m.Q; v++ {
					fc[v] = src.Data[src.Idx(v, cell)]
				}
				rho, jx, jy, jz := m.Moments(fc)
				op.Relax(fc, rho, jx/rho+shiftX, jy/rho+shiftY, jz/rho+shiftZ)
				for v := 0; v < m.Q; v++ {
					dst.Data[dst.Idx(v, cell)] = fc[v]
				}
			}
		}
	}
}

// collideOperator is the slab stepper's operator kernel over destination
// planes [x0,x1) (full y/z extent, like the BGK kernels of collide.go).
func (s *stepper) collideOperator(x0, x1 int) {
	b := box{hi: [3]int{s.d.NX, s.d.NY, s.d.NZ}}
	collideOpBox(s.op.Clone(), s.model, s.fadv, s.f, b, x0, x1, s.shiftX, s.shiftY, s.shiftZ)
}

// collideBoxOperator is the cart stepper's operator kernel over box b.
func (cs *cartStepper) collideBoxOperator(b box, x0, x1 int) {
	collideOpBox(cs.op.Clone(), cs.model, cs.fadv, cs.f, b, x0, x1, cs.shiftX, cs.shiftY, cs.shiftZ)
}
