package core

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// parabola returns the analytic Poiseuille inflow profile across the y
// walls of an H-cell channel: u_x(ŷ) = 4·umax·ŷ(1−ŷ) with ŷ = (y+½)/H in
// wall units (halfway walls at −½ and H−½).
func parabola(umax float64, h int) func(gx, gy, gz int) [3]float64 {
	return func(gx, gy, gz int) [3]float64 {
		y := (float64(gy) + 0.5) / float64(h)
		return [3]float64{4 * umax * y * (1 - y), 0, 0}
	}
}

// TestInletAgainstOracle holds the Zou-He velocity inlet to the
// link-by-link bounded oracle: uniform and parabolic inflow, with and
// without an interior obstacle, across decompositions, ghost depths and
// the overlapped schedule, for both lattices (the D3Q39 case exercises
// the third-order terms of the odd-part inversion).
func TestInletAgainstOracle(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 10, NZ: 6}
	plate := geom.FromFunc(n, func(ix, iy, iz int) bool {
		return ix == 6 && iy >= 3 && iy < 7
	})
	uniform := InletChannelSpec(0.04, nil)
	parab := InletChannelSpec(0, parabola(0.06, n.NY))
	cases := []struct {
		name   string
		model  *lattice.Model
		spec   *BoundarySpec
		solid  *geom.Mask
		decomp [3]int
		opt    OptLevel
		depth  int
	}{
		{"uniform-1rank", lattice.D3Q19(), uniform, nil, [3]int{1, 1, 1}, OptSIMD, 1},
		{"uniform-slabshape", lattice.D3Q19(), uniform, nil, [3]int{2, 1, 1}, OptSIMD, 1},
		{"uniform-pencil-deep", lattice.D3Q19(), uniform, nil, [3]int{2, 2, 1}, OptSIMD, 2},
		{"uniform-plate-gcc", lattice.D3Q19(), uniform, plate, [3]int{2, 2, 1}, OptGCC, 2},
		{"parabola-pencil", lattice.D3Q19(), parab, nil, [3]int{2, 2, 1}, OptSIMD, 1},
		{"parabola-plate-block", lattice.D3Q19(), parab, plate, [3]int{2, 2, 2}, OptNBC, 1},
		{"uniform-q39", lattice.D3Q39(), uniform, nil, [3]int{2, 1, 1}, OptSIMD, 1},
	}
	for _, tc := range cases {
		n := n
		if tc.model.MaxSpeed > 1 {
			n = grid.Dims{NX: 16, NY: 10, NZ: 8}
		}
		runAndCompareBounded(t, Config{
			Model: tc.model, N: n, Tau: 0.8, Steps: 6,
			Opt: tc.opt, Ranks: tc.decomp[0] * tc.decomp[1] * tc.decomp[2],
			Decomp: tc.decomp, Threads: 1, GhostDepth: tc.depth,
			Boundary: tc.spec, Solid: tc.solid,
		})
	}
}

// TestInletOutflowNoLeakThroughSolids is the poison test of the open
// boundaries: a channel whose cross-section is completely blocked by a
// solid barrier, started from rest. Bounce-back seals every link through
// the barrier and the corner links between the inlet and the walls bounce
// as stationary walls, so the fluid downstream of the barrier must stay
// at the rest equilibrium — any inlet or outflow data reaching it (through
// solid cells, or riding around a corner on the exchange payloads) would
// show up as a velocity. Run across decompositions so the ghost corners
// of every shape are exercised.
func TestInletOutflowNoLeakThroughSolids(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 10, NZ: 6}
	barrier := 12
	wall := geom.FromFunc(n, func(ix, iy, iz int) bool { return ix == barrier })
	m := lattice.D3Q19()
	rest := make([]float64, m.Q)
	m.Equilibrium(1, 0, 0, 0, rest)
	for _, shape := range [][3]int{{1, 1, 1}, {4, 1, 1}, {2, 2, 1}} {
		res, err := Run(Config{
			Model: m, N: n, Tau: 0.9, Steps: 150,
			Opt: OptGCC, Ranks: shape[0] * shape[1] * shape[2], Decomp: shape,
			Threads: 1, GhostDepth: 2,
			Boundary: InletChannelSpec(0.02, nil), Solid: wall,
			KeepField: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if math.IsNaN(res.Mass) {
			t.Fatalf("%v: diverged", shape)
		}
		var worst float64
		for v := 0; v < m.Q; v++ {
			for ix := barrier + 1; ix < n.NX; ix++ {
				for iy := 0; iy < n.NY; iy++ {
					for iz := 0; iz < n.NZ; iz++ {
						if d := math.Abs(res.Field.At(v, ix, iy, iz) - rest[v]); d > worst {
							worst = d
						}
					}
				}
			}
		}
		if worst > 1e-12 {
			t.Errorf("%v: inlet/outflow data leaked past the solid barrier: max |f − rest| = %g", shape, worst)
		}
	}
}

// TestInletMassFluxPoiseuille: with the analytic Poiseuille parabola
// prescribed at the inlet of a straight channel, the steady state must
// carry the analytic mass flux through every cross-section (flux
// conservation along the channel) and reproduce the inflow profile at
// mid-channel.
func TestInletMassFluxPoiseuille(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state transient in -short mode")
	}
	m := lattice.D3Q19()
	n := grid.Dims{NX: 24, NY: 16, NZ: 2}
	umax := 0.05
	prof := parabola(umax, n.NY)
	res, err := Run(Config{
		Model: m, N: n, Tau: 0.8, Steps: 4000,
		Opt: OptSIMD, Ranks: 2, Decomp: [3]int{2, 1, 1}, Threads: 2, GhostDepth: 1,
		Boundary:  InletChannelSpec(0, prof),
		KeepField: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The prescribed flux: the discrete sum of the parabola over the inlet
	// cross-section at ρ0 = 1.
	var want float64
	for iy := 0; iy < n.NY; iy++ {
		want += prof(0, iy, 0)[0] * float64(n.NZ)
	}
	fc := make([]float64, m.Q)
	flux := func(ix int) float64 {
		var fl float64
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				res.Field.Cell(ix, iy, iz, fc)
				_, jx, _, _ := m.Moments(fc)
				fl += jx
			}
		}
		return fl
	}
	for _, ix := range []int{0, n.NX / 2, n.NX - 2} {
		got := flux(ix)
		if d := math.Abs(got-want) / want; d > 0.02 {
			t.Errorf("mass flux at x=%d: %g, want %g (rel err %.3f)", ix, got, want, d)
		}
	}
	// Mid-channel profile vs the analytic parabola, in umax units.
	var worst float64
	for iy := 0; iy < n.NY; iy++ {
		var sum float64
		for iz := 0; iz < n.NZ; iz++ {
			res.Field.Cell(n.NX/2, iy, iz, fc)
			rho, jx, _, _ := m.Moments(fc)
			sum += jx / rho
		}
		got := sum / float64(n.NZ)
		if d := math.Abs(got-prof(0, iy, 0)[0]) / umax; d > worst {
			worst = d
		}
	}
	if worst > 0.03 {
		t.Errorf("mid-channel profile deviates from the inlet parabola by %.1f%% of umax", 100*worst)
	}
}

// TestInletValidation pins the inlet-spec configuration errors.
func TestInletValidation(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 8, NZ: 6}
	run := func(spec *BoundarySpec) error {
		_, err := Run(Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 1,
			Opt: OptSIMD, Boundary: spec,
		})
		return err
	}
	outward := InletChannelSpec(0.05, nil)
	outward.Faces[0][0].U[0] = -0.05
	if run(outward) == nil {
		t.Error("outward-flowing inlet accepted")
	}
	zero := InletChannelSpec(0.05, nil)
	zero.Faces[0][0].U = [3]float64{}
	if run(zero) == nil {
		t.Error("zero-velocity inlet accepted")
	}
	wallProfile := CavitySpec(0.05)
	wallProfile.Faces[0][0].Profile = func(gx, gy, gz int) [3]float64 { return [3]float64{} }
	if run(wallProfile) == nil {
		t.Error("velocity profile on a wall face accepted")
	}
	if run(InletChannelSpec(0.05, nil)) != nil {
		t.Error("valid inlet channel rejected")
	}
}
