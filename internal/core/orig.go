package core

import (
	"repro/internal/grid"
	"repro/internal/halo"
	"repro/internal/obs"
)

// origProto implements the naive distributed protocol of the paper's Fig. 2:
// no persistent ghost cells. Each step pushes the streamed populations into
// k-plane egress margins, exchanges exactly the populations that crossed
// the rank boundary ("LBM_Exchange") with blocking sends, merges them into
// the owned region of the advected field, and only then collides. The
// collide therefore directly waits on the neighbors' stream results — the
// serialization that ghost cells later remove.
type origProto struct {
	s           *stepper
	left, right int
	// crossL[m-1] lists velocities with cx ≤ −m; crossR[m-1] those with
	// cx ≥ m — the populations that can cross m planes leftward/rightward.
	crossL, crossR [][]int
	bufL, bufR     [][]float64
	recv           []float64
}

// Message tags: one per (direction, plane offset).
const (
	tagOrigL = 0x300
	tagOrigR = 0x340
)

func newOrigProto(s *stepper, left, right int) *origProto {
	m := s.model
	p := &origProto{s: s, left: left, right: right}
	plane := s.d.PlaneCells()
	maxLen := 0
	for off := 1; off <= s.k; off++ {
		var l, r []int
		for v := 0; v < m.Q; v++ {
			if m.Cx[v] <= -off {
				l = append(l, v)
			}
			if m.Cx[v] >= off {
				r = append(r, v)
			}
		}
		p.crossL = append(p.crossL, l)
		p.crossR = append(p.crossR, r)
		if len(l) > maxLen {
			maxLen = len(l)
		}
		if len(r) > maxLen {
			maxLen = len(r)
		}
	}
	p.bufL = make([][]float64, s.k)
	p.bufR = make([][]float64, s.k)
	for j := 0; j < s.k; j++ {
		p.bufL[j] = make([]float64, len(p.crossL[s.k-j-1])*plane)
		p.bufR[j] = make([]float64, len(p.crossR[j])*plane)
	}
	p.recv = make([]float64, maxLen*plane)
	return p
}

// step advances one time step under the naive protocol.
func (p *origProto) step() {
	s := p.s
	t0 := s.rec.Begin()
	s.br.run(s.streamPushScalar, s.slabBox(s.w, s.w+s.own))
	s.rec.End(obs.Interior, t0)
	p.exchange()
	s.applyBounceBack(s.w, s.w+s.own)
	s.collideRegion(s.w, s.w+s.own)
}

// exchange ships the egress margins of fadv to the neighbors, which merge
// them into their owned planes. Margin plane j ∈ [0,k) on the left carries
// populations with cx ≤ −(k−j) and lands on the left neighbor's owned
// plane own+j; right margin plane j carries cx ≥ j+1 and lands on the
// right neighbor's owned plane k+j (local coordinates).
func (p *origProto) exchange() {
	s := p.s
	k, own := s.k, s.own
	plane := s.d.PlaneCells()
	if s.r.N == 1 {
		// Periodic wrap: the margins fold back onto the owned region
		// (attributed to Unpack — a merge into owned planes, no packing).
		t0 := s.rec.Begin()
		for j := 0; j < k; j++ {
			copyPlaneVels(s.fadv, j, own+j, p.crossL[k-j-1])
			copyPlaneVels(s.fadv, own+k+j, k+j, p.crossR[j])
		}
		s.rec.End(obs.Unpack, t0)
		return
	}
	t0 := s.rec.Begin()
	var bytes, msgs int64
	for j := 0; j < k; j++ {
		vels := p.crossL[k-j-1]
		n := halo.PackPlanesVel(s.fadv, j, j+1, vels, p.bufL[j])
		s.r.Send(p.left, tagOrigL+j, p.bufL[j][:n])
		bytes, msgs = bytes+int64(8*n), msgs+1
	}
	for j := 0; j < k; j++ {
		vels := p.crossR[j]
		n := halo.PackPlanesVel(s.fadv, own+k+j, own+k+j+1, vels, p.bufR[j])
		s.r.Send(p.right, tagOrigR+j, p.bufR[j][:n])
		bytes, msgs = bytes+int64(8*n), msgs+1
	}
	s.rec.End(obs.Pack, t0)
	s.rec.AddComm(0, bytes, msgs)
	for j := 0; j < k; j++ {
		vels := p.crossL[k-j-1]
		n := len(vels) * plane
		t0 = s.rec.Begin()
		s.r.Recv(p.right, tagOrigL+j, p.recv[:n])
		s.rec.End(obs.Wire, t0)
		t0 = s.rec.Begin()
		halo.UnpackPlanesVel(s.fadv, own+j, own+j+1, vels, p.recv[:n])
		s.rec.End(obs.Unpack, t0)
	}
	for j := 0; j < k; j++ {
		vels := p.crossR[j]
		n := len(vels) * plane
		t0 = s.rec.Begin()
		s.r.Recv(p.left, tagOrigR+j, p.recv[:n])
		s.rec.End(obs.Wire, t0)
		t0 = s.rec.Begin()
		halo.UnpackPlanesVel(s.fadv, k+j, k+j+1, vels, p.recv[:n])
		s.rec.End(obs.Unpack, t0)
	}
}

// streamPushScalar is the paper's Fig. 3 push kernel: iterate source cells,
// velocity innermost, scatter to x+c with modulo wrap in y and z. x lands
// in the owned region or the egress margins, both inside the allocation.
// Chunking sources is race-free: for a fixed velocity the push map is a
// bijection on cells, so no two source cells write the same slot.
func (s *stepper) streamPushScalar(worker int, b box) {
	m := s.model
	ny, nz := s.d.NY, s.d.NZ
	for ix := b.lo[0]; ix < b.hi[0]; ix++ {
		for iy := b.lo[1]; iy < b.hi[1]; iy++ {
			for iz := 0; iz < nz; iz++ {
				src := s.d.Index(ix, iy, iz)
				for v := 0; v < m.Q; v++ {
					dx := ix + m.Cx[v]
					dy := (iy + m.Cy[v] + ny) % ny
					dz := (iz + m.Cz[v] + nz) % nz
					s.fadv.Data[s.fadv.Idx(v, s.d.Index(dx, dy, dz))] = s.f.Data[s.f.Idx(v, src)]
				}
			}
		}
	}
}

// copyPlaneVels copies the listed velocities of one x-plane onto another
// within the same field (single-rank periodic wrap of the egress margins).
func copyPlaneVels(f *grid.Field, from, to int, vels []int) {
	plane := f.D.PlaneCells()
	if f.Layout == grid.SoA {
		for _, v := range vels {
			blk := f.V(v)
			copy(blk[to*plane:(to+1)*plane], blk[from*plane:(from+1)*plane])
		}
		return
	}
	for _, v := range vels {
		for c := 0; c < plane; c++ {
			f.Data[(to*plane+c)*f.Q+v] = f.Data[(from*plane+c)*f.Q+v]
		}
	}
}
