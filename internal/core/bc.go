package core

// Non-periodic global boundaries. The paper positions its solver as the
// fluid engine for "complicated geometries … in irregular boundary
// conditions" (§I-II); this file supplies the global-boundary half of that
// story (the interior half is the solid mask of boundary.go). A
// BoundarySpec assigns a condition to each of the six global faces; a face
// that is not periodic turns its axis into a bounded axis: the halo layer
// skips the wraparound exchange across it and the box stepper fills the
// ghost face from boundary data instead —
//
//   - walls and moving walls reuse the halfway bounce-back fixup
//     machinery (post-stream population replacement, with the standard
//     2·w_v·ρ0·(c_v·u_w)/c_s² momentum correction for a moving face), so
//     every optimization level's kernels stay untouched;
//
//   - outflow faces are zero-gradient: the ghost layers are refreshed each
//     cycle with a copy of the outermost owned layer.
//
// Bounded runs always use the multi-axis box stepper (whose no-modulo
// kernels have no wrap arithmetic to unpick), even for slab-shaped rank
// grids; the specialized periodic slab stepper and its ladder stay
// bit-for-bit unchanged.

import "fmt"

// BCKind identifies the condition on one global boundary face.
type BCKind int

const (
	// BCPeriodic wraps the face to the opposite one (the default).
	BCPeriodic BCKind = iota
	// BCWall is a halfway bounce-back no-slip wall half a link beyond the
	// outermost cell layer.
	BCWall
	// BCMovingWall is a halfway bounce-back wall translating with the
	// face's tangential velocity U (lid-driven flows), via bounce-back
	// with momentum correction.
	BCMovingWall
	// BCOutflow is a zero-gradient open face: ghost layers copy the
	// outermost interior layer.
	BCOutflow
)

var bcNames = map[BCKind]string{
	BCPeriodic: "periodic", BCWall: "wall", BCMovingWall: "moving-wall", BCOutflow: "outflow",
}

func (k BCKind) String() string {
	if s, ok := bcNames[k]; ok {
		return s
	}
	return fmt.Sprintf("BCKind(%d)", int(k))
}

// Face is the condition on one global boundary face.
type Face struct {
	Kind BCKind
	// U is the wall velocity of a BCMovingWall face; it must be tangential
	// (zero component along the face normal). Ignored for other kinds.
	U [3]float64
}

// BoundarySpec assigns a condition to each global face:
// Faces[axis][0] is the low face (global index -1/2), Faces[axis][1] the
// high face. An axis whose faces are both BCPeriodic behaves exactly like
// the default periodic domain; mixing periodic with non-periodic on one
// axis is invalid (periodicity is an axis property).
type BoundarySpec struct {
	Faces [3][2]Face
}

// CavitySpec returns the lid-driven cavity boundary: no-slip walls on x
// and y except the high-y lid moving with velocity u along +x; z stays
// periodic (the quasi-2-D spanwise direction of Hou et al.).
func CavitySpec(u float64) *BoundarySpec {
	var b BoundarySpec
	b.Faces[0][0] = Face{Kind: BCWall}
	b.Faces[0][1] = Face{Kind: BCWall}
	b.Faces[1][0] = Face{Kind: BCWall}
	b.Faces[1][1] = Face{Kind: BCMovingWall, U: [3]float64{u, 0, 0}}
	return &b
}

// ChannelSpec returns a wall-bounded channel: no-slip walls on the y
// faces, everything else periodic (drive it with Config.Accel for
// Poiseuille flow).
func ChannelSpec() *BoundarySpec {
	var b BoundarySpec
	b.Faces[1][0] = Face{Kind: BCWall}
	b.Faces[1][1] = Face{Kind: BCWall}
	return &b
}

// AxisPeriodic reports whether axis keeps periodic wrap semantics. A nil
// spec is fully periodic.
func (b *BoundarySpec) AxisPeriodic(axis int) bool {
	return b == nil || b.Faces[axis][0].Kind == BCPeriodic
}

// BoundedAxes returns the per-axis non-periodicity flags.
func (b *BoundarySpec) BoundedAxes() [3]bool {
	var out [3]bool
	for a := 0; a < 3; a++ {
		out[a] = !b.AxisPeriodic(a)
	}
	return out
}

// validate checks face-kind consistency.
func (b *BoundarySpec) validate() error {
	if b == nil {
		return nil
	}
	for a := 0; a < 3; a++ {
		lo, hi := b.Faces[a][0], b.Faces[a][1]
		if (lo.Kind == BCPeriodic) != (hi.Kind == BCPeriodic) {
			return fmt.Errorf("core: axis %d mixes %s and %s faces (periodicity is an axis property)", a, lo.Kind, hi.Kind)
		}
		for s, f := range [2]Face{lo, hi} {
			if f.Kind == BCMovingWall && f.U[a] != 0 {
				return fmt.Errorf("core: axis %d side %d moving wall has normal velocity %g (tangential only)", a, s, f.U[a])
			}
			if f.Kind != BCMovingWall && f.U != ([3]float64{}) {
				return fmt.Errorf("core: axis %d side %d %s face carries a wall velocity (only moving walls move)", a, s, f.Kind)
			}
		}
	}
	return nil
}

// hasWallFaces reports whether any face is a (possibly moving) wall.
func (b *BoundarySpec) hasWallFaces() bool {
	if b == nil {
		return false
	}
	for a := 0; a < 3; a++ {
		for s := 0; s < 2; s++ {
			if k := b.Faces[a][s].Kind; k == BCWall || k == BCMovingWall {
				return true
			}
		}
	}
	return false
}
