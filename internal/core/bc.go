package core

// Non-periodic global boundaries. The paper positions its solver as the
// fluid engine for "complicated geometries … in irregular boundary
// conditions" (§I-II); this file supplies the global-boundary half of that
// story (the interior half is the solid mask of boundary.go). A
// BoundarySpec assigns a condition to each of the six global faces; a face
// that is not periodic turns its axis into a bounded axis: the halo layer
// skips the wraparound exchange across it and the box stepper fills the
// ghost face from boundary data instead —
//
//   - walls and moving walls reuse the halfway bounce-back fixup
//     machinery (post-stream population replacement, with the standard
//     2·w_v·ρ0·(c_v·u_w)/c_s² momentum correction for a moving face), so
//     every optimization level's kernels stay untouched;
//
//   - outflow faces are zero-gradient: the ghost layers are refreshed each
//     cycle with a copy of the outermost owned layer.
//
// Bounded runs always use the multi-axis box stepper (whose no-modulo
// kernels have no wrap arithmetic to unpick), even for slab-shaped rank
// grids; the specialized periodic slab stepper and its ladder stay
// bit-for-bit unchanged.

import "fmt"

// BCKind identifies the condition on one global boundary face.
type BCKind int

const (
	// BCPeriodic wraps the face to the opposite one (the default).
	BCPeriodic BCKind = iota
	// BCWall is a halfway bounce-back no-slip wall half a link beyond the
	// outermost cell layer.
	BCWall
	// BCMovingWall is a halfway bounce-back wall translating with the
	// face's tangential velocity U (lid-driven flows), via bounce-back
	// with momentum correction.
	BCMovingWall
	// BCOutflow is a zero-gradient open face: ghost layers copy the
	// outermost interior layer. It imposes nothing on the pressure, so a
	// domain driven by a velocity inlet should close with BCPressureOutlet
	// instead — with both ends prescribing fluxes that ignore the local
	// density, the mean density drifts without bound.
	BCOutflow
	// BCPressureOutlet is an open face anchored at unit density: ghost
	// layers hold the non-equilibrium extrapolation of the outermost
	// interior layer (Guo et al.) — the layer's populations with their
	// equilibrium part re-evaluated at ρ0 = 1 and the local velocity,
	//
	//	f_ghost = f + f_eq(ρ0, u) − f_eq(ρ, u),
	//
	// which keeps the zero-gradient velocity behaviour of BCOutflow while
	// pinning the outlet pressure, the closure a velocity-inlet channel
	// needs for a steady mass balance.
	BCPressureOutlet
	// BCInlet is a Zou-He velocity inlet: the face prescribes the full flow
	// velocity (normal component included, pointing into the domain),
	// either uniformly (Face.U) or per lattice point (Face.Profile). The
	// unknown populations entering the domain are reconstructed by the
	// non-equilibrium bounce-back inversion: split each opposite-velocity
	// pair into its even and odd parts — exactly the TRT pair algebra of
	// the collision subsystem — bounce the even (non-equilibrium) part
	// like a wall, and prescribe the odd part from the wall equilibrium:
	//
	//	f_v = f_opp + (f_eq_v − f_eq_opp)|(ρ0=1, u_w)
	//
	// which rides the standard bounce-back fixup machinery with a per-link
	// delta (the parenthesized odd part, third-order equilibrium terms
	// included for the D3Q39 lattice). Ghost layers behind the face hold
	// the inlet equilibrium so extended deep-halo collisions stay stable.
	BCInlet
)

var bcNames = map[BCKind]string{
	BCPeriodic: "periodic", BCWall: "wall", BCMovingWall: "moving-wall",
	BCOutflow: "outflow", BCInlet: "velocity-inlet", BCPressureOutlet: "pressure-outlet",
}

func (k BCKind) String() string {
	if s, ok := bcNames[k]; ok {
		return s
	}
	return fmt.Sprintf("BCKind(%d)", int(k))
}

// Face is the condition on one global boundary face.
type Face struct {
	Kind BCKind
	// U is the wall velocity of a BCMovingWall face (tangential only — zero
	// component along the face normal) or the uniform inflow velocity of a
	// BCInlet face (normal component required, pointing into the domain).
	// Ignored for other kinds.
	U [3]float64
	// Profile, for a BCInlet face, prescribes a spatially varying inflow
	// velocity: it is evaluated at global lattice coordinates with the
	// face-normal coordinate clamped to the outermost in-domain layer (the
	// wall itself sits half a link beyond). Non-nil Profile overrides U.
	// The returned velocity must point into the domain. Must be nil for
	// every other kind.
	Profile func(gx, gy, gz int) [3]float64
	// SpongeWidth and SpongeStrength, on a BCPressureOutlet face, enable an
	// absorbing layer over the SpongeWidth global lattice columns adjacent
	// to the face: each post-collision state is blended toward its local
	// equilibrium by σ(g) = SpongeStrength·ξ², with ξ ramping quadratically
	// from 0 at the layer's inner edge to 1 at the outlet. The layer damps
	// vortices before they reach the outlet's zero-gradient copy, removing
	// the pressure-wave reflection that otherwise ripples the measured drag.
	// Strength must lie in (0, 1]; set both fields or neither.
	SpongeWidth    int
	SpongeStrength float64
}

// velocityAt resolves the face's prescribed velocity at a global lattice
// point (Profile when set, the uniform U otherwise).
func (f *Face) velocityAt(gx, gy, gz int) [3]float64 {
	if f.Profile != nil {
		return f.Profile(gx, gy, gz)
	}
	return f.U
}

// BoundarySpec assigns a condition to each global face:
// Faces[axis][0] is the low face (global index -1/2), Faces[axis][1] the
// high face. An axis whose faces are both BCPeriodic behaves exactly like
// the default periodic domain; mixing periodic with non-periodic on one
// axis is invalid (periodicity is an axis property).
type BoundarySpec struct {
	Faces [3][2]Face
}

// CavitySpec returns the lid-driven cavity boundary: no-slip walls on x
// and y except the high-y lid moving with velocity u along +x; z stays
// periodic (the quasi-2-D spanwise direction of Hou et al.).
func CavitySpec(u float64) *BoundarySpec {
	var b BoundarySpec
	b.Faces[0][0] = Face{Kind: BCWall}
	b.Faces[0][1] = Face{Kind: BCWall}
	b.Faces[1][0] = Face{Kind: BCWall}
	b.Faces[1][1] = Face{Kind: BCMovingWall, U: [3]float64{u, 0, 0}}
	return &b
}

// ChannelSpec returns a wall-bounded channel: no-slip walls on the y
// faces, everything else periodic (drive it with Config.Accel for
// Poiseuille flow).
func ChannelSpec() *BoundarySpec {
	var b BoundarySpec
	b.Faces[1][0] = Face{Kind: BCWall}
	b.Faces[1][1] = Face{Kind: BCWall}
	return &b
}

// InletChannelSpec returns an open flow-through channel: a Zou-He
// velocity inlet on the low-x face (uniform u along +x, or the given
// profile), a unit-density zero-gradient outlet on the high-x face (the
// pressure anchor a velocity-driven channel needs — see BCPressureOutlet),
// no-slip walls on the y faces and a periodic (quasi-2-D spanwise) z
// axis — the inlet → obstacle → outflow geometry of the vortex-shedding
// scenario.
func InletChannelSpec(u float64, profile func(gx, gy, gz int) [3]float64) *BoundarySpec {
	var b BoundarySpec
	b.Faces[0][0] = Face{Kind: BCInlet, U: [3]float64{u, 0, 0}, Profile: profile}
	b.Faces[0][1] = Face{Kind: BCPressureOutlet}
	b.Faces[1][0] = Face{Kind: BCWall}
	b.Faces[1][1] = Face{Kind: BCWall}
	return &b
}

// AxisPeriodic reports whether axis keeps periodic wrap semantics. A nil
// spec is fully periodic.
func (b *BoundarySpec) AxisPeriodic(axis int) bool {
	return b == nil || b.Faces[axis][0].Kind == BCPeriodic
}

// BoundedAxes returns the per-axis non-periodicity flags.
func (b *BoundarySpec) BoundedAxes() [3]bool {
	var out [3]bool
	for a := 0; a < 3; a++ {
		out[a] = !b.AxisPeriodic(a)
	}
	return out
}

// validate checks face-kind consistency.
func (b *BoundarySpec) validate() error {
	if b == nil {
		return nil
	}
	for a := 0; a < 3; a++ {
		lo, hi := b.Faces[a][0], b.Faces[a][1]
		if (lo.Kind == BCPeriodic) != (hi.Kind == BCPeriodic) {
			return fmt.Errorf("core: axis %d mixes %s and %s faces (periodicity is an axis property)", a, lo.Kind, hi.Kind)
		}
		for s, f := range [2]Face{lo, hi} {
			switch f.Kind {
			case BCMovingWall:
				if f.U[a] != 0 {
					return fmt.Errorf("core: axis %d side %d moving wall has normal velocity %g (tangential only)", a, s, f.U[a])
				}
			case BCInlet:
				// The inflow must point into the domain: positive normal
				// component on the low face, negative on the high one.
				// A Profile is trusted to do the same (not checkable here).
				if f.Profile == nil {
					inward := f.U[a]
					if s == 1 {
						inward = -inward
					}
					if inward <= 0 {
						return fmt.Errorf("core: axis %d side %d velocity inlet must flow into the domain (normal velocity %g)", a, s, f.U[a])
					}
				}
			default:
				if f.U != ([3]float64{}) {
					return fmt.Errorf("core: axis %d side %d %s face carries a wall velocity (only moving walls and inlets move)", a, s, f.Kind)
				}
			}
			if f.Kind != BCInlet && f.Profile != nil {
				return fmt.Errorf("core: axis %d side %d %s face carries a velocity profile (inlet-only)", a, s, f.Kind)
			}
			if f.SpongeWidth != 0 || f.SpongeStrength != 0 {
				if f.Kind != BCPressureOutlet {
					return fmt.Errorf("core: axis %d side %d %s face carries a sponge layer (pressure-outlet-only)", a, s, f.Kind)
				}
				if f.SpongeWidth <= 0 || f.SpongeStrength <= 0 {
					return fmt.Errorf("core: axis %d side %d sponge needs both a positive width and a positive strength (got width %d, strength %g)", a, s, f.SpongeWidth, f.SpongeStrength)
				}
				if f.SpongeStrength > 1 {
					return fmt.Errorf("core: axis %d side %d sponge strength %g out of range (0, 1]", a, s, f.SpongeStrength)
				}
			}
		}
	}
	return nil
}

// hasWallFaces reports whether any face uses the bounce-back fixup
// machinery: walls, moving walls and velocity inlets (whose Zou-He
// inversion is a bounce-back with a prescribed odd part).
func (b *BoundarySpec) hasWallFaces() bool {
	if b == nil {
		return false
	}
	for a := 0; a < 3; a++ {
		for s := 0; s < 2; s++ {
			switch b.Faces[a][s].Kind {
			case BCWall, BCMovingWall, BCInlet:
				return true
			}
		}
	}
	return false
}
