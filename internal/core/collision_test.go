package core

// Regression guards for the collision-operator subsystem.
//
// The paper-reproduction perf path is the BGK fast path: a Config whose
// Collision spec is (the zero-value) BGK must dispatch to the direct
// legacy kernels — the same code objects as before the operator axis
// existed — at every optimization level and every decomposition, so its
// results are 0-ULP identical by identity. Two guards enforce that:
//
//   - TestBGKKeepsLegacyKernels asserts, white-box, that BGK configs build
//     steppers with no operator attached (op == nil is the dispatch
//     condition for the legacy kernels).
//
//   - TestOperatorPathBGKBitForBit flips the test-only force flag so the
//     same BGK math runs through the generic operator kernel and asserts
//     the fields are bitwise equal to the legacy naive kernel (whose
//     arithmetic the BGK operator reproduces exactly) — proving the
//     indirection machinery (regions, clones, threading, decompositions)
//     is transparent.

import (
	"testing"

	"repro/internal/collision"
	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// buildSteppers constructs the rank-0 stepper of a config white-box.
func buildSlabStepper(t *testing.T, cfg Config) *stepper {
	t.Helper()
	if err := cfg.init(); err != nil {
		t.Fatal(err)
	}
	dec, err := decomp.NewCartesian([3]int{cfg.N.NX, cfg.N.NY, cfg.N.NZ}, [3]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	var st *stepper
	fab := comm.NewFabric(1)
	if err := fab.Run(func(r *comm.Rank) error {
		st, err = newStepper(&cfg, dec, r)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return st
}

func buildCartStepper(t *testing.T, cfg Config) *cartStepper {
	t.Helper()
	if err := cfg.init(); err != nil {
		t.Fatal(err)
	}
	dec, err := decomp.NewCartesianBounded([3]int{cfg.N.NX, cfg.N.NY, cfg.N.NZ}, [3]int{1, 1, 1}, cfg.Boundary.BoundedAxes())
	if err != nil {
		t.Fatal(err)
	}
	var cs *cartStepper
	fab := comm.NewFabric(1)
	if err := fab.Run(func(r *comm.Rank) error {
		cs, err = newCartStepper(&cfg, dec, r)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return cs
}

// TestBGKKeepsLegacyKernels: the zero-value (and explicit) BGK spec never
// attaches an operator, at every opt level, on both stepper families — the
// dispatch condition that keeps the paper's kernels bit-for-bit.
func TestBGKKeepsLegacyKernels(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 6, NZ: 6}
	for _, opt := range Levels() {
		cfg := Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 1,
			Opt: opt, Ranks: 1, Threads: 1, GhostDepth: 1,
			Collision: collision.Spec{Kind: collision.BGK},
		}
		if st := buildSlabStepper(t, cfg); st.op != nil {
			t.Errorf("%s: BGK slab stepper carries operator %s", opt, st.op.Name())
		}
	}
	cav := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 1,
		Opt: OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1,
		Boundary: CavitySpec(0.05),
	}
	if cs := buildCartStepper(t, cav); cs.op != nil {
		t.Errorf("BGK cart stepper carries operator %s", cs.op.Name())
	}
	trt := cav
	trt.Collision = collision.Spec{Kind: collision.TRT}
	if cs := buildCartStepper(t, trt); cs.op == nil {
		t.Error("TRT cart stepper has no operator")
	}
}

// runField executes cfg and returns the gathered field.
func runField(t *testing.T, cfg Config) *grid.Field {
	t.Helper()
	cfg.KeepField = true
	if cfg.Init == nil {
		cfg.Init = waveInit(cfg.N)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s ranks=%d decomp=%v: %v", cfg.Opt, cfg.Ranks, cfg.Decomp, err)
	}
	return res.Field
}

// TestOperatorPathBGKBitForBit: the generic operator kernel running BGK
// arithmetic is bitwise identical to the legacy naive collide (the kernel
// of the Orig/GC levels) across ranks, threads and decompositions, and
// within reassociation tolerance of the specialized kernels of the higher
// levels.
func TestOperatorPathBGKBitForBit(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 6, NZ: 6}
	force := func(cfg Config) *grid.Field {
		testForceOperatorPath = true
		defer func() { testForceOperatorPath = false }()
		return runField(t, cfg)
	}
	cases := []Config{
		{Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 4, Opt: OptOrig, Ranks: 2, Threads: 1, GhostDepth: 1},
		{Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 4, Opt: OptGC, Ranks: 2, Threads: 2, GhostDepth: 2},
		{Model: lattice.D3Q39(), N: grid.Dims{NX: 12, NY: 6, NZ: 6}, Tau: 0.8, Steps: 2, Opt: OptGC, Ranks: 1, Threads: 1, GhostDepth: 1},
		// Multi-axis (cart) path: ≤ GC levels use the box naive kernel.
		{Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 4, Opt: OptGC, Ranks: 4, Decomp: [3]int{2, 2, 1}, Threads: 1, GhostDepth: 1},
		// Bounded path (cavity walls) on the box stepper.
		{Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 4, Opt: OptGC, Ranks: 2, Decomp: [3]int{2, 1, 1}, Threads: 1, GhostDepth: 1, Boundary: CavitySpec(0.05)},
	}
	for _, cfg := range cases {
		legacy := runField(t, cfg)
		viaOp := force(cfg)
		if d := grid.MaxAbsDiff(legacy, viaOp); d != 0 {
			t.Errorf("%s %s ranks=%d decomp=%v bounded=%v: operator path differs from naive kernel by %g (want 0 ULP)",
				cfg.Model.Name, cfg.Opt, cfg.Ranks, cfg.Decomp, cfg.Boundary != nil, d)
		}
	}
	// Specialized-kernel levels reassociate the same math; the operator
	// path must stay within the suite's equivalence tolerance.
	for _, opt := range []OptLevel{OptDH, OptCF, OptNBC, OptGCC, OptSIMD} {
		cfg := Config{Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 4, Opt: opt, Ranks: 2, Threads: 1, GhostDepth: 1}
		legacy := runField(t, cfg)
		viaOp := force(cfg)
		if d := grid.MaxAbsDiff(legacy, viaOp); d > eqTol {
			t.Errorf("%s: operator path vs specialized kernels: max |Δf| = %g (tol %g)", opt, d, eqTol)
		}
	}
}

// TestTRTDegeneratesToBGK: with Λ = (τ−½)² both TRT rates equal 1/τ and a
// TRT run must match the BGK fast path within reassociation tolerance —
// the end-to-end version of the operator-level identity.
func TestTRTDegeneratesToBGK(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 6, NZ: 6}
	tau := 0.8
	magic := (tau - 0.5) * (tau - 0.5)
	base := Config{Model: lattice.D3Q19(), N: n, Tau: tau, Steps: 5, Opt: OptSIMD, Ranks: 2, Threads: 1, GhostDepth: 1}
	bgk := runField(t, base)
	trtCfg := base
	trtCfg.Collision = collision.Spec{Kind: collision.TRT, Magic: magic}
	trt := runField(t, trtCfg)
	if d := grid.MaxAbsDiff(bgk, trt); d > eqTol {
		t.Errorf("TRT(Λ=(τ-½)²) vs BGK: max |Δf| = %g (tol %g)", d, eqTol)
	}
}

// TestMRTDegeneratesToBGK: ghost rates pinned to 1/τ collapse the MRT
// collision matrix to ω·I; a run must match BGK within the (slightly
// looser) tolerance of the Q×Q matrix arithmetic.
func TestMRTDegeneratesToBGK(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 6, NZ: 6}
	tau := 0.8
	base := Config{Model: lattice.D3Q19(), N: n, Tau: tau, Steps: 5, Opt: OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1}
	bgk := runField(t, base)
	mrtCfg := base
	mrtCfg.Collision = collision.Spec{Kind: collision.MRT, GhostRates: []float64{1 / tau}}
	mrt := runField(t, mrtCfg)
	if d := grid.MaxAbsDiff(bgk, mrt); d > 1e-10 {
		t.Errorf("MRT(ω,...,ω) vs BGK: max |Δf| = %g (tol 1e-10)", d)
	}
}

// TestCollisionCrossDecomposition: TRT and MRT runs are decomposition-
// invariant like BGK — slab, multi-rank slab and 2-D/3-D box runs agree
// within reassociation tolerance, periodic and bounded.
func TestCollisionCrossDecomposition(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 6, NZ: 6}
	specs := []collision.Spec{
		{Kind: collision.TRT},
		{Kind: collision.MRT},
		{Kind: collision.MRT, GhostRates: []float64{1.3, 1.1}},
	}
	for _, spec := range specs {
		for _, boundary := range []*BoundarySpec{nil, CavitySpec(0.05)} {
			base := Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.6, Steps: 6,
				Opt: OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1,
				Collision: spec, Boundary: boundary,
			}
			ref := runField(t, base)
			variants := []Config{base, base, base}
			variants[0].Ranks, variants[0].Decomp = 2, [3]int{2, 1, 1}
			variants[0].Threads = 2
			variants[1].Ranks, variants[1].Decomp = 4, [3]int{2, 2, 1}
			variants[2].Ranks, variants[2].Decomp = 8, [3]int{2, 2, 2}
			for _, cfg := range variants {
				got := runField(t, cfg)
				if d := grid.MaxAbsDiff(ref, got); d > eqTol {
					t.Errorf("%s decomp=%v bounded=%v: max |Δf| = %g (tol %g)",
						spec, cfg.Decomp, boundary != nil, d, eqTol)
				}
			}
		}
	}
}

// TestCollisionDeepHaloAndLadder: the operator path is exact under the
// deep-halo schedule and identical at every ladder level (streaming and
// exchange protocols change; the operator collide does not).
func TestCollisionDeepHaloAndLadder(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 6, NZ: 6}
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 6,
		Opt: OptGC, Ranks: 2, Threads: 1, GhostDepth: 1,
		Collision: collision.Spec{Kind: collision.TRT},
	}
	ref := runField(t, base)
	for _, opt := range []OptLevel{OptDH, OptLoBr, OptNBC, OptGCC, OptSIMD} {
		for _, depth := range []int{1, 2} {
			cfg := base
			cfg.Opt, cfg.GhostDepth = opt, depth
			got := runField(t, cfg)
			if d := grid.MaxAbsDiff(ref, got); d > eqTol {
				t.Errorf("TRT %s depth=%d: max |Δf| = %g (tol %g)", opt, depth, d, eqTol)
			}
		}
	}
}

// TestOperatorRowKernelMatchesPerCell: the z-run-blocked operator kernel
// (collideOpRows, the RowRelaxer fast path) must agree with the per-cell
// kernel (collideOpBox) to reassociation level — same moments, same
// relaxation, different loop order and equilibrium inlining.
func TestOperatorRowKernelMatchesPerCell(t *testing.T) {
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		for _, spec := range []collision.Spec{
			{Kind: collision.TRT},
			{Kind: collision.MRT},
			{Kind: collision.MRT, GhostRates: []float64{1.4, 1.1}},
		} {
			n := grid.Dims{NX: 7, NY: 6, NZ: 9}
			src := grid.NewField(m.Q, n, grid.SoA)
			init := waveInit(n)
			feq := make([]float64, m.Q)
			for ix := 0; ix < n.NX; ix++ {
				for iy := 0; iy < n.NY; iy++ {
					for iz := 0; iz < n.NZ; iz++ {
						rho, ux, uy, uz := init(ix, iy, iz)
						m.Equilibrium(rho, ux, uy, uz, feq)
						// Perturb off equilibrium so the ghost rates matter.
						for v := range feq {
							feq[v] *= 1 + 0.05*float64(v%5)
						}
						src.SetCell(ix, iy, iz, feq)
					}
				}
			}
			op, err := spec.New(m, 0.6)
			if err != nil {
				t.Fatal(err)
			}
			rr, ok := op.(collision.RowRelaxer)
			if !ok {
				t.Fatalf("%s %s: operator does not implement RowRelaxer", m.Name, spec)
			}
			b := box{hi: [3]int{n.NX, n.NY, n.NZ}}
			perCell := grid.NewField(m.Q, n, grid.SoA)
			rows := grid.NewField(m.Q, n, grid.SoA)
			sc := newScratches(1, m.Q, n.NZ, nil, false)[0]
			collideOpBox(op.Clone(), m, src, perCell, b, 1e-4, 0, 0, sc)
			collideOpRows(rr, velocityPairs(m), newEqCoefs(m), m.Q, src, rows, b, 1e-4, 0, 0, sc)
			if d := grid.MaxAbsDiff(perCell, rows); d > 1e-13 {
				t.Errorf("%s %s: row kernel vs per-cell kernel max |Δf| = %g", m.Name, spec, d)
			}
		}
	}
}

// TestCollisionOverlapAndPerAxisDepth: TRT and MRT on the overlapped box
// schedule (GC-C pencils/blocks, the path the blocked kernel unlocks) and
// under per-axis ghost depths, against the single-rank reference.
func TestCollisionOverlapAndPerAxisDepth(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 8, NZ: 6}
	for _, spec := range []collision.Spec{{Kind: collision.TRT}, {Kind: collision.MRT}} {
		base := Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.6, Steps: 6,
			Opt: OptGCC, Ranks: 1, Threads: 1, GhostDepth: 1,
			Collision: spec,
		}
		ref := runField(t, base)
		variants := []Config{base, base, base}
		variants[0].Ranks, variants[0].Decomp = 4, [3]int{2, 2, 1}
		variants[1].Ranks, variants[1].Decomp, variants[1].GhostDepth = 8, [3]int{2, 2, 2}, 2
		variants[2].Ranks, variants[2].Decomp = 4, [3]int{2, 2, 1}
		variants[2].GhostDepthAxes = [3]int{2, 1, 2}
		for _, cfg := range variants {
			got := runField(t, cfg)
			if d := grid.MaxAbsDiff(ref, got); d > eqTol {
				t.Errorf("%s decomp=%v depth=%d axes=%v: max |Δf| = %g (tol %g)",
					spec, cfg.Decomp, cfg.GhostDepth, cfg.GhostDepthAxes, d, eqTol)
			}
		}
	}
}

// TestCollisionValidation: spec errors and the Fused exclusion surface as
// config errors.
func TestCollisionValidation(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 6, NZ: 6}
	base := Config{Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 1, Opt: OptSIMD, Ranks: 1, GhostDepth: 1}
	bad := []func(*Config){
		func(c *Config) { c.Collision = collision.Spec{Kind: collision.TRT}; c.Fused = true },
		func(c *Config) { c.Collision = collision.Spec{Kind: collision.MRT, GhostRates: []float64{3}} },
		func(c *Config) { c.Collision = collision.Spec{Kind: collision.BGK, Magic: 0.25} },
	}
	for i, mod := range bad {
		cfg := base
		mod(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad collision config %d accepted", i)
		}
	}
	// The BGK + Fused combination stays legal.
	cfg := base
	cfg.Fused = true
	if _, err := Run(cfg); err != nil {
		t.Errorf("BGK fused run rejected: %v", err)
	}
}
