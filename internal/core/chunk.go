package core

// In-rank threading substrate shared by both steppers: a per-stepper
// persistent worker pool, longest-axis box chunking, and per-worker kernel
// scratch. Every parallel loop of a step — stream, collide, fused, face
// fills, fixup applies, on interiors and rim slabs alike — is expressed as
// a batch of (box, chunk) items drained by the pool, so the thin rim
// phases of the overlapped schedule get the full team instead of a static
// x partition that collapses on a 1–2-plane slab.
//
// Chunks split a box along the longer of its x and y extents. The z axis
// is deliberately never split: the slab kernels move whole z-lines as
// cyclic rotations (a sub-range of a rotation is not a rotation), and the
// row-structured kernels amortize their setup over full z-runs. Every rim
// shape is thin on at most one axis, so x/y chunking always leaves a long
// axis to cut. Chunking is bit-exact at any thread count: all kernels
// compute each (x, y) row independently, so partitioning rows changes only
// which worker computes them, never the arithmetic.

import (
	"repro/internal/collision"
	"repro/internal/parallel"
)

// chunksPerWorker over-partitions each batch for load balance: boundary
// rows with bounce-back fixups and face columns cost more than bulk rows,
// and the queue evens that out when chunks outnumber workers.
const chunksPerWorker = 4

// minChunkCells keeps chunks coarse enough that claim overhead stays
// negligible against kernel work.
const minChunkCells = 4096

// boxRunner executes box kernels on a worker pool, chunking each box
// along its longest splittable axis. It is owned and driven by a single
// stepper goroutine; the chunk and weight buffers are reused across
// batches.
//
// When rowWeight is installed (sparse traversal, sparse.go) chunk
// boundaries are placed by fluid weight instead of cell count: a chunk
// of a nearly-empty region widens until it carries as much fluid as a
// bulk chunk, and spans with no fluid at all are dropped from the batch
// — the team's queue then balances useful work, not box volume.
type boxRunner struct {
	pool   *parallel.Pool
	chunks []box
	chunkW []int64 // per-chunk weight (fluid cells weighted, cells dense)
	// rowWeight[ix·ny + iy] is the (x, y) row's fluid-cell count over the
	// full local z extent — a safe overestimate for sub-z boxes (chunking
	// never splits z, and a zero full-row weight is zero on any interval).
	rowWeight []int32
	ny        int
	weights   []weightTally // per-worker drained chunk weight
}

// weightTally is a per-worker weight accumulator, padded to a cache
// line like parallel.Pool's chunk counters so workers don't false-share.
type weightTally struct {
	n int64
	_ [56]byte
}

func newBoxRunner(threads int) boxRunner {
	pool := parallel.NewPool(threads)
	return boxRunner{pool: pool, weights: make([]weightTally, pool.Threads())}
}

// threads returns the team size.
func (br *boxRunner) threads() int { return br.pool.Threads() }

// close releases the pool's workers.
func (br *boxRunner) close() { br.pool.Close() }

// weightTotals returns the cumulative chunk weight drained per worker.
func (br *boxRunner) weightTotals() []int64 {
	out := make([]int64, len(br.weights))
	for i := range br.weights {
		out[i] = br.weights[i].n
	}
	return out
}

// run executes kernel over every cell of the given boxes exactly once
// (under sparse weighting: every cell of every fluid-carrying span).
// All boxes of a call form one batch: their chunks share the pool's queue,
// so disjoint regions of one schedule phase (the two rim slabs of an axis)
// balance across the whole team.
func (br *boxRunner) run(kernel func(worker int, b box), boxes ...box) {
	if br.pool.Threads() == 1 {
		for _, b := range boxes {
			if b.cells() > 0 {
				kernel(0, b)
			}
		}
		return
	}
	br.chunks = br.chunks[:0]
	br.chunkW = br.chunkW[:0]
	if br.rowWeight == nil {
		total := 0
		for _, b := range boxes {
			total += b.cells()
		}
		if total == 0 {
			return
		}
		chunkCells := total / (br.pool.Threads() * chunksPerWorker)
		if chunkCells < minChunkCells {
			chunkCells = minChunkCells
		}
		for _, b := range boxes {
			br.chunks = appendBoxChunks(br.chunks, b, chunkCells)
		}
		for _, c := range br.chunks {
			br.chunkW = append(br.chunkW, int64(c.cells()))
		}
	} else {
		var total int64
		for _, b := range boxes {
			total += br.boxWeight(b)
		}
		if total == 0 {
			return
		}
		target := total / int64(br.pool.Threads()*chunksPerWorker)
		if target < minChunkCells {
			target = minChunkCells
		}
		for _, b := range boxes {
			br.appendWeightedChunks(b, target)
		}
	}
	chunks, chunkW, weights := br.chunks, br.chunkW, br.weights
	if len(chunks) == 0 {
		return
	}
	// Single-chunk batches also go through the pool: Run's n==1 fast path
	// executes inline on the caller while keeping the per-worker drained-
	// chunk counters accurate.
	br.pool.Run(len(chunks), func(worker, i int) {
		kernel(worker, chunks[i])
		weights[worker].n += chunkW[i]
	})
}

// boxWeight sums the row weights over the box's (x, y) cross-section.
func (br *boxRunner) boxWeight(b box) int64 {
	if b.cells() == 0 {
		return 0
	}
	var s int64
	for ix := b.lo[0]; ix < b.hi[0]; ix++ {
		row := ix * br.ny
		for iy := b.lo[1]; iy < b.hi[1]; iy++ {
			s += int64(br.rowWeight[row+iy])
		}
	}
	return s
}

// sliceWeight sums the row weights of one cross-slice of b at position i
// on the split axis.
func (br *boxRunner) sliceWeight(b box, axis, i int) int64 {
	var s int64
	if axis == 0 {
		row := i * br.ny
		for iy := b.lo[1]; iy < b.hi[1]; iy++ {
			s += int64(br.rowWeight[row+iy])
		}
		return s
	}
	for ix := b.lo[0]; ix < b.hi[0]; ix++ {
		s += int64(br.rowWeight[ix*br.ny+i])
	}
	return s
}

// appendWeightedChunks splits b along the longer of its x and y extents
// into contiguous chunks of roughly target fluid weight each. Leading
// all-solid slices and zero-weight tails never enter a chunk: the rows
// they would carry have no fluid runs, so dropping them changes nothing
// the kernels would compute.
func (br *boxRunner) appendWeightedChunks(b box, target int64) {
	if b.cells() == 0 {
		return
	}
	axis := 0
	if b.hi[1]-b.lo[1] > b.hi[0]-b.lo[0] {
		axis = 1
	}
	start := b.lo[axis]
	var acc int64
	for i := b.lo[axis]; i < b.hi[axis]; i++ {
		w := br.sliceWeight(b, axis, i)
		if acc == 0 && w == 0 {
			start = i + 1 // all-solid slice ahead of any fluid: drop it
			continue
		}
		acc += w
		if acc >= target {
			c := b
			c.lo[axis], c.hi[axis] = start, i+1
			br.chunks = append(br.chunks, c)
			br.chunkW = append(br.chunkW, acc)
			start, acc = i+1, 0
		}
	}
	if acc > 0 {
		c := b
		c.lo[axis], c.hi[axis] = start, b.hi[axis]
		br.chunks = append(br.chunks, c)
		br.chunkW = append(br.chunkW, acc)
	}
}

// appendBoxChunks splits b along the longer of its x and y extents into
// pieces of roughly chunkCells cells each and appends them to dst. A box
// too small to split is appended whole.
func appendBoxChunks(dst []box, b box, chunkCells int) []box {
	cells := b.cells()
	if cells == 0 {
		return dst
	}
	axis := 0
	if b.hi[1]-b.lo[1] > b.hi[0]-b.lo[0] {
		axis = 1
	}
	n := b.hi[axis] - b.lo[axis]
	want := (cells + chunkCells - 1) / chunkCells
	if want > n {
		want = n
	}
	if want <= 1 {
		return append(dst, b)
	}
	base, rem := n/want, n%want
	lo := b.lo[axis]
	for i := 0; i < want; i++ {
		size := base
		if i < rem {
			size++
		}
		c := b
		c.lo[axis], c.hi[axis] = lo, lo+size
		lo += size
		dst = append(dst, c)
	}
	return dst
}

// workerScratch holds one worker's kernel scratch, allocated once per
// stepper at the local field's dimensions. Worker w owns scratch slot w
// exclusively for the duration of each chunk, which is what removes the
// per-call make([]float64, Q) and row-buffer allocations the transient
// loops paid on every block of every step.
type workerScratch struct {
	fc     []float64   // Q-length per-cell gather buffer
	rb     rowBufs     // z-run moment accumulators (capacity NZ)
	vrows  [][]float64 // Q z-row buffers: fused gather rows / operator feq rows
	vstore []float64
	nzCap  int
	sv, dv [][]float64        // per-velocity slice headers (operator kernels)
	op     collision.Operator // per-worker operator clone; nil for plain BGK
	feqR   []float64          // Q-length equilibrium buffers (face fills)
	feqW   []float64
	rowFeq []float64 // Q×NZ feq store for profiled inlet faces

	// AA-pattern kernels gather a row's pulled populations into aaIn,
	// collide into aaOut, and scatter from there (aa.go); allocated only
	// under StreamAA.
	aaIn, aaOut     [][]float64
	aaInSt, aaOutSt []float64
}

// aaRows re-slices the worker's AA in/out row buffers to z-runs of length
// zn (zn ≤ nzCap).
func (sc *workerScratch) aaRows(zn int) (in, out [][]float64) {
	for v := range sc.aaIn {
		sc.aaIn[v] = sc.aaInSt[v*sc.nzCap : v*sc.nzCap+zn]
		sc.aaOut[v] = sc.aaOutSt[v*sc.nzCap : v*sc.nzCap+zn]
	}
	return sc.aaIn, sc.aaOut
}

// rows returns the worker's Q row buffers re-sliced to a z-run of length
// zn (zn ≤ nzCap).
func (sc *workerScratch) rows(zn int) [][]float64 {
	for v := range sc.vrows {
		sc.vrows[v] = sc.vstore[v*sc.nzCap : v*sc.nzCap+zn]
	}
	return sc.vrows
}

// newScratches allocates one scratch slot per pool worker. op, when
// non-nil, is cloned per worker (operators share read-only tables but
// carry private relaxation scratch); aa additionally allocates the
// AA-pattern gather/collide row stores.
func newScratches(threads, q, nz int, op collision.Operator, aa bool) []*workerScratch {
	out := make([]*workerScratch, threads)
	for w := range out {
		sc := &workerScratch{
			fc:     make([]float64, q),
			rb:     newRowBufs(nz),
			vrows:  make([][]float64, q),
			vstore: make([]float64, q*nz),
			nzCap:  nz,
			sv:     make([][]float64, q),
			dv:     make([][]float64, q),
			feqR:   make([]float64, q),
			feqW:   make([]float64, q),
			rowFeq: make([]float64, q*nz),
		}
		if op != nil {
			sc.op = op.Clone()
		}
		if aa {
			sc.aaIn = make([][]float64, q)
			sc.aaOut = make([][]float64, q)
			sc.aaInSt = make([]float64, q*nz)
			sc.aaOutSt = make([]float64, q*nz)
		}
		out[w] = sc
	}
	return out
}
