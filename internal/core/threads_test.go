package core

import (
	"testing"

	"repro/internal/collision"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// TestThreadCountInvariance: the in-rank worker pool must be bit-exact —
// every parallel kernel computes each (x, y) row independently, so
// chunking only repartitions rows across workers. A run at 8 threads must
// reproduce the 1-thread field to the last bit on every stepper path:
// slab and box, split and fused, BGK and the operator kernels, periodic,
// bounded and masked domains, with the thin GC-C rim slabs drained from
// the shared chunk queue.
func TestThreadCountInvariance(t *testing.T) {
	for _, tc := range stepperPathCases() {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.cfg
			ref.Threads = 1
			thr := tc.cfg
			thr.Threads = 8
			a := runField(t, ref)
			b := runField(t, thr)
			if d := grid.MaxAbsDiff(a, b); d != 0 {
				t.Errorf("threads=8 differs from threads=1: max |Δf| = %g, want bit-exact", d)
			}
		})
	}
}

// stepperPathCases is the nine-path matrix exercising every stepper
// implementation: slab and box, split and fused, BGK and the operator
// kernels, periodic, bounded and masked domains, plus the Fig. 2 naive
// protocol. Shared by the thread-invariance and observe-identity tests.
func stepperPathCases() []struct {
	name string
	cfg  Config
} {
	n := grid.Dims{NX: 24, NY: 16, NZ: 16}
	profile := func(gx, gy, gz int) [3]float64 {
		return [3]float64{0.02 * float64(gy%5) / 4, 0, 0}
	}
	solid := func(ix, iy, iz int) bool {
		dx, dy := float64(ix)-9, float64(iy)-8.3
		return dx*dx+dy*dy < 6.5
	}
	return []struct {
		name string
		cfg  Config
	}{
		{"slab-bgk-simd", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptSIMD, Ranks: 1, GhostDepth: 1,
		}},
		{"slab-gcc-fused-2r", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptGCC, Ranks: 2, GhostDepth: 1, Fused: true,
		}},
		{"slab-trt-gcc", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 5,
			Opt: OptGCC, Ranks: 2, GhostDepth: 1,
			Collision: collision.Spec{Kind: collision.TRT},
		}},
		{"pencil-cavity-trt-deep", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 5,
			Opt: OptGCC, Ranks: 4, Decomp: [3]int{2, 2, 1}, GhostDepth: 2,
			Collision: collision.Spec{Kind: collision.TRT},
			Boundary:  CavitySpec(0.05),
		}},
		{"block-masked-mrt-gcc", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 5,
			Opt: OptGCC, Ranks: 8, Decomp: [3]int{2, 2, 2}, GhostDepth: 1,
			Collision: collision.Spec{Kind: collision.MRT},
			Solid:     geom.FromFunc(n, solid),
		}},
		{"pencil-inlet-profile-bgk", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptGCC, Ranks: 4, Decomp: [3]int{2, 2, 1}, GhostDepth: 1,
			Boundary: InletChannelSpec(0.02, profile),
		}},
		{"block-fused-periodic", Config{
			Model: lattice.D3Q39(), N: grid.Dims{NX: 24, NY: 16, NZ: 16}, Tau: 0.8, Steps: 4,
			Opt: OptSIMD, Ranks: 8, Decomp: [3]int{2, 2, 2}, GhostDepth: 1, Fused: true,
		}},
		{"slab-aos-gc-2r", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptGC, Ranks: 2, GhostDepth: 1, Layout: grid.AoS,
		}},
		{"slab-orig", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptOrig, Ranks: 2, GhostDepth: 1,
		}},
	}
}

// TestThreadCountForceInvariance: momentum-exchange force accumulation
// stays serial inside each rank (one float summation order), so the
// per-step force series must match exactly across thread counts.
func TestThreadCountForceInvariance(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 16, NZ: 4}
	cyl := geom.CylinderZ(n, 8, 8.3, 2.5)
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 10,
		Opt: OptGCC, Ranks: 4, Decomp: [3]int{2, 2, 1}, GhostDepth: 1,
		Boundary: InletChannelSpec(0.05, nil), Solid: cyl,
		MeasureForces: true, Init: waveInit(n),
	}
	ref := base
	ref.Threads = 1
	thr := base
	thr.Threads = 8
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(thr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ObstacleForce) != len(want.ObstacleForce) {
		t.Fatalf("force series length %d, want %d", len(got.ObstacleForce), len(want.ObstacleForce))
	}
	for s := range want.ObstacleForce {
		if got.ObstacleForce[s] != want.ObstacleForce[s] {
			t.Errorf("step %d: obstacle force %v != %v", s, got.ObstacleForce[s], want.ObstacleForce[s])
		}
		if got.FaceForce[s] != want.FaceForce[s] {
			t.Errorf("step %d: face force %v != %v", s, got.FaceForce[s], want.FaceForce[s])
		}
	}
}
