package core

// Sparse row-run traversal (Config.Sparse). On a masked domain whose
// bounding box is mostly solid — the paper's arterial geometries are
// ~95% empty — the dense box kernels still touch every lattice site and
// spend most of their bandwidth streaming, colliding and re-masking
// cells that hold nothing. The sparse path precomputes, per local
// (x, y) row, the run-length encoding of its fluid z-intervals and
// drives every row-structured kernel over those runs only. The kernels'
// per-row arithmetic is strictly per-z independent (the §8 row
// contract, which also covers sub-row splits), so restricting a row to
// its fluid runs changes which cells are computed, never the values at
// the cells that are: sparse matches dense bit-for-bit on every fluid
// cell, at any thread count.
//
// Solid cells keep whatever initField wrote (the rest state, or under
// AA their untouched slots): the fixup index replaces every population
// streamed out of a solid cell at its fluid destination, so values at
// solid sites are never consumed at the fluid level — the same argument
// that lets wall ghost faces hold the rest state (see fillFace). Rows
// with no fluid at all additionally drop out of the pool's chunk
// batches: boxRunner chunks by fluid weight when a row-weight table is
// installed, and all-solid spans contribute nothing (chunk.go).

// zrun is one contiguous fluid interval [lo, hi) of a local row's z
// extent.
type zrun struct {
	lo, hi int32
}

// buildRuns precomputes the per-row fluid-run CSR over the local mask
// (ghosts included): row r = ix·NY + iy owns runs[runStart[r]:
// runStart[r+1]]. rowWeight[r] is the row's total fluid-cell count over
// the full local z extent — the chunk weight boxRunner balances on.
// Called at the end of buildMask when sparse traversal is enabled; with
// no mask the run index stays nil and every kernel takes its dense
// branch.
func (cs *cartStepper) buildRuns() {
	nx, ny, nz := cs.d.NX, cs.d.NY, cs.d.NZ
	cs.runStart = make([]int32, nx*ny+1)
	cs.rowWeight = make([]int32, nx*ny)
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			r := ix*ny + iy
			base := cs.d.Index(ix, iy, 0)
			row := cs.mask[base : base+nz]
			var weight int32
			for z := 0; z < nz; {
				if row[z] {
					z++
					continue
				}
				lo := z
				for z < nz && !row[z] {
					z++
				}
				cs.runs = append(cs.runs, zrun{lo: int32(lo), hi: int32(z)})
				weight += int32(z - lo)
			}
			cs.runStart[r+1] = int32(len(cs.runs))
			cs.rowWeight[r] = weight
		}
	}
	cs.br.rowWeight = cs.rowWeight
	cs.br.ny = ny
}

// forRuns drives a per-row kernel body over box b: over full [lo, hi)
// z-rows on the dense path, and over each row's fluid runs clipped to
// b's z range when the sparse run index is installed. The body must be
// per-z independent (every box kernel is — the §8 contract), which
// makes the two traversals bit-identical on the cells they share.
func (cs *cartStepper) forRuns(b box, row func(ix, iy, zlo, zhi int)) {
	if b.hi[2] <= b.lo[2] || b.hi[1] <= b.lo[1] || b.hi[0] <= b.lo[0] {
		return
	}
	if cs.runStart == nil {
		for ix := b.lo[0]; ix < b.hi[0]; ix++ {
			for iy := b.lo[1]; iy < b.hi[1]; iy++ {
				row(ix, iy, b.lo[2], b.hi[2])
			}
		}
		return
	}
	ny := cs.d.NY
	for ix := b.lo[0]; ix < b.hi[0]; ix++ {
		for iy := b.lo[1]; iy < b.hi[1]; iy++ {
			r := ix*ny + iy
			for _, ru := range cs.runs[cs.runStart[r]:cs.runStart[r+1]] {
				zlo, zhi := int(ru.lo), int(ru.hi)
				if zlo < b.lo[2] {
					zlo = b.lo[2]
				}
				if zhi > b.hi[2] {
					zhi = b.hi[2]
				}
				if zlo < zhi {
					row(ix, iy, zlo, zhi)
				}
			}
		}
	}
}
