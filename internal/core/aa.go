package core

// AA-pattern in-place streaming (Bailey et al., "Accelerating Lattice
// Boltzmann Fluid Flow Simulations Using Graphics Processors", 2009),
// DESIGN.md §9. One field instead of two: each step pair reads and writes
// the array exactly once per sub-step, halving the f-memory traffic and
// footprint that dominate this bandwidth-bound code.
//
// Convention, matched to this codebase's step (pull-stream → collide):
//
//   - transport (even sub-step): cell y pulls population v from the
//     upwind normal slot a[v](y − c_v), collides, and pushes result r_v
//     into the *reversed* downwind slot a[opp(v)](y + c_v). The read set
//     {(v, y−c_v)} and write set {(opp(v), y+c_v)} are the same exclusive
//     slot star — slot (m, u) belongs to cell u + c_m alone — so rows
//     never race and the worker pool stays bit-exact at any chunking
//     (the §8 row-independence contract).
//
//   - compact (odd sub-step): cell y reads its own slots reversed
//     (population v from a[opp(v)](y)), collides, writes them back in
//     normal arrangement. Purely cell-local. After compact the array is
//     bit-identical to the two-grid f, which is why halo exchanges happen
//     only at pair boundaries and the existing pack/unpack maps apply
//     unchanged — no parity-dependent exchanger needed. Per-axis depths
//     round up to even (aaDepths) to make the refresh cadence land there.
//
// Bounce-back folds into the transport kernel through the same CSR fixup
// index: a link (y, v) (upwind endpoint y − c_v solid) pulls the cell's
// own reflected slot a[opp(v)](y) + δ instead (conflict-free: that slot's
// star owner is the solid cell, whose scatter is skipped), and after the
// collision pushes a[opp(v)](y) = r_opp(v)(y) + δ — the value compact
// will read as population v. Compact needs no fixup handling at all.
// Solid cells never scatter (their stars overlap fluid pull-fixup reads
// and push-bounce slots); their slots hold deterministic garbage, which
// is why cross-scheme comparisons mask solid cells.
//
// Open faces (outflow / pressure outlet) are refilled by fillOpenFaces at
// every pair start exactly like the two-grid path; the odd step's refill
// is emulated by aaFixOpenFaces, a serial pass between transport and
// compact that overwrites the pushed slots of every compact-box consumer
// whose upwind source lies beyond the face plane with the fill value the
// two-grid path would have streamed (a function of the source's
// transverse column only). Limitation: one open-bounded axis at a time —
// corner fills of two open axes are fill-of-fill in the two-grid path,
// which the slot algebra cannot reproduce cheaply (config-level check in
// core.go). The GC-C message overlap is also not scheduled under AA
// (refreshes are synchronous at pair starts); a follow-on can overlap the
// pair-start exchange with the previous compact's interior.

import (
	"repro/internal/collision"
	"repro/internal/halo"
	"repro/internal/obs"
)

// runAA advances the configured number of steps with AA streaming. The
// deep-halo bookkeeping is the same shrinking-box schedule as run(), with
// refreshes restricted to pair starts by the even per-axis depths.
func (cs *cartStepper) runAA() {
	var since [3]int
	for a := range since {
		since[a] = cs.depth[a] // every axis due at step 0
	}
	for step := 0; step < cs.cfg.Steps; step++ {
		var ext [3]int
		for a := 0; a < 3; a++ {
			if step%2 == 0 && since[a] >= cs.depth[a] {
				since[a] = 0
			}
			ext[a] = (cs.depth[a] - since[a]) * cs.k
		}
		b := cs.boxFor(ext)
		if step%2 == 0 {
			cs.fillOpenFaces()
			var stale [3]bool
			for a := 0; a < 3; a++ {
				stale[a] = since[a] == 0
			}
			if stale != ([3]bool{}) {
				cs.refreshAxes(stale)
			}
			if cs.cfg.MeasureForces {
				cs.aaForcePre()
				cs.endForceStep()
			}
			cs.aaTransportBox(b)
			if step+1 < cs.cfg.Steps {
				var extNext [3]int
				for a := 0; a < 3; a++ {
					extNext[a] = ext[a] - cs.k
				}
				cs.aaFixOpenFaces(cs.boxFor(extNext))
			}
		} else {
			if cs.cfg.MeasureForces {
				cs.aaForcePost()
				cs.endForceStep()
			}
			cs.aaCompactBox(b)
		}
		cs.countUpdates(b)
		cs.jitter()
		for a := range since {
			since[a]++
		}
	}
	cs.aaStar = cs.cfg.Steps%2 == 1
}

// aaTransportBox runs the transport sub-step on destination box b.
func (cs *cartStepper) aaTransportBox(b box) {
	t0 := cs.rec.Begin()
	cs.br.run(cs.aaTransportRange, b)
	cs.rec.End(obs.Interior, t0)
}

// aaCompactBox runs the compact sub-step on destination box b.
func (cs *cartStepper) aaCompactBox(b box) {
	t0 := cs.rec.Begin()
	cs.br.run(cs.aaCompactRange, b)
	cs.rec.End(obs.Interior, t0)
}

// aaTransportRange is the transport kernel over one chunk: per (x, y)
// row, pull the upwind rows into the in buffers, overwrite pulled-solid
// links from the fixup index, collide into the out buffers, scatter into
// the reversed downwind slots (skipping solid source cells), and push the
// bounce-back slots.
func (cs *cartStepper) aaTransportRange(worker int, b box) {
	if b.hi[2] <= b.lo[2] || b.hi[1] <= b.lo[1] || b.hi[0] <= b.lo[0] {
		return
	}
	sc := cs.scratch[worker]
	if cs.runStart != nil {
		// Sparse: every run is all-fluid, so the masked-row slow paths of
		// the row body never engage; the per-run fixup segment is the
		// z-sliced view of the row's links, exactly the links the dense
		// full-row pass applies within the run's interval.
		cs.forRuns(b, func(ix, iy, zlo, zhi int) {
			cs.aaTransportRow(sc, ix, iy, zlo, zhi, nil)
		})
		return
	}
	zn := b.hi[2] - b.lo[2]
	for ix := b.lo[0]; ix < b.hi[0]; ix++ {
		for iy := b.lo[1]; iy < b.hi[1]; iy++ {
			var msk []bool
			if cs.mask != nil {
				base := cs.d.Index(ix, iy, b.lo[2])
				row := cs.mask[base : base+zn]
				for _, s := range row {
					if s {
						msk = row
						break
					}
				}
			}
			cs.aaTransportRow(sc, ix, iy, b.lo[2], b.hi[2], msk)
		}
	}
}

// aaTransportRow is the transport body for one row's z-interval
// [zlo, zhi). msk, when non-nil, flags the interval's solid cells
// (msk[z-zlo]); sparse runs pass nil — they carry no solid cells.
func (cs *cartStepper) aaTransportRow(sc *workerScratch, ix, iy, zlo, zhi int, msk []bool) {
	m := cs.model
	zn := zhi - zlo
	in, out := sc.aaRows(zn)
	nz := cs.d.NZ
	// Masked z positions are skipped in the gather, not just the
	// scatter: a solid cell's star slots are concurrently written by
	// its fluid neighbours' push-bounce, and its own pulled values
	// are discarded anyway.
	for v := 0; v < m.Q; v++ {
		off := cs.d.Index(ix-m.Cx[v], iy-m.Cy[v], zlo-m.Cz[v])
		src := cs.f.V(v)
		if msk == nil {
			copy(in[v], src[off:off+zn])
			continue
		}
		iv := in[v]
		for z := 0; z < zn; z++ {
			if msk[z] {
				iv[z] = 0
				continue
			}
			iv[z] = src[off+z]
		}
	}
	var seg []fixup
	if !cs.fix.empty() {
		row := ix*cs.d.NY + iy
		seg = cs.fix.links[cs.fix.rows[row]:cs.fix.rows[row+1]]
		if (zlo != 0 || zhi != nz) && len(seg) > 0 {
			seg = zSlice(seg, nz, zlo, zhi)
		}
		for _, fx := range seg {
			z := int(fx.cell)%nz - zlo
			in[fx.v][z] = cs.f.V(int(fx.opp))[fx.cell] + fx.delta
		}
	}
	cs.aaRelaxRows(sc, in, out, zn)
	cs.aaSpongeRow(sc, out, ix, iy, zlo, zn)
	for v := 0; v < m.Q; v++ {
		dst := cs.f.V(m.Opp[v])
		off := cs.d.Index(ix+m.Cx[v], iy+m.Cy[v], zlo+m.Cz[v])
		if msk == nil {
			copy(dst[off:off+zn], out[v])
			continue
		}
		ov := out[v]
		for z := 0; z < zn; z++ {
			if msk[z] {
				continue
			}
			dst[off+z] = ov[z]
		}
	}
	for _, fx := range seg {
		z := int(fx.cell)%nz - zlo
		cs.f.V(int(fx.opp))[fx.cell] = out[fx.opp][z] + fx.delta
	}
}

// aaCompactRange is the compact kernel over one chunk: per (x, y) row,
// read the cell's own slots reversed, collide, write back in normal
// arrangement (skipping solid cells). Entirely cell-local.
func (cs *cartStepper) aaCompactRange(worker int, b box) {
	if b.hi[2] <= b.lo[2] || b.hi[1] <= b.lo[1] || b.hi[0] <= b.lo[0] {
		return
	}
	sc := cs.scratch[worker]
	if cs.runStart != nil {
		cs.forRuns(b, func(ix, iy, zlo, zhi int) {
			cs.aaCompactRow(sc, ix, iy, zlo, zhi, nil)
		})
		return
	}
	zn := b.hi[2] - b.lo[2]
	for ix := b.lo[0]; ix < b.hi[0]; ix++ {
		for iy := b.lo[1]; iy < b.hi[1]; iy++ {
			var msk []bool
			if cs.mask != nil {
				base := cs.d.Index(ix, iy, b.lo[2])
				row := cs.mask[base : base+zn]
				for _, s := range row {
					if s {
						msk = row
						break
					}
				}
			}
			cs.aaCompactRow(sc, ix, iy, b.lo[2], b.hi[2], msk)
		}
	}
}

// aaCompactRow is the compact body for one row's z-interval [zlo, zhi);
// msk as in aaTransportRow.
func (cs *cartStepper) aaCompactRow(sc *workerScratch, ix, iy, zlo, zhi int, msk []bool) {
	m := cs.model
	zn := zhi - zlo
	in, out := sc.aaRows(zn)
	base := cs.d.Index(ix, iy, zlo)
	for v := 0; v < m.Q; v++ {
		copy(in[v], cs.f.V(m.Opp[v])[base:base+zn])
	}
	cs.aaRelaxRows(sc, in, out, zn)
	cs.aaSpongeRow(sc, out, ix, iy, zlo, zn)
	for v := 0; v < m.Q; v++ {
		dst := cs.f.V(v)
		if msk == nil {
			copy(dst[base:base+zn], out[v])
			continue
		}
		ov := out[v]
		for z := 0; z < zn; z++ {
			if msk[z] {
				continue
			}
			dst[base+z] = ov[z]
		}
	}
}

// aaSpongeRow applies the sponge blend to a collided out-row before it is
// scattered (transport) or written back (compact) — the same point in the
// update as the two-grid post-collide spongeBox pass, via the same
// applySpongeRow arithmetic, so the schemes stay bit-identical. Masked
// cells are skipped inside applySpongeRow.
func (cs *cartStepper) aaSpongeRow(sc *workerScratch, out [][]float64, ix, iy, zlo, zn int) {
	if !cs.hasSponge {
		return
	}
	sig := sc.rowFeq[:zn]
	if !cs.spongeSig(sig, ix, iy, zlo, zn) {
		return
	}
	var msk []bool
	if cs.mask != nil {
		base := cs.d.Index(ix, iy, zlo)
		msk = cs.mask[base : base+zn]
	}
	applySpongeRow(cs.model, sc.fc, out, sig, msk, zn)
}

// aaRelaxRows collides one gathered row (in → out), dispatching to the
// arithmetic of the two-grid kernel the configuration would use, so
// cross-scheme runs stay bit-identical per cell (and therefore within
// the standard 1e-12 reassociation envelope overall).
func (cs *cartStepper) aaRelaxRows(sc *workerScratch, in, out [][]float64, zn int) {
	switch {
	case cs.op != nil:
		if rr, ok := sc.op.(collision.RowRelaxer); ok {
			cs.aaRelaxOpRows(rr, sc, in, out, zn)
			return
		}
		cs.aaRelaxOpCell(sc, in, out, zn)
	case cs.cfg.Opt <= OptGC:
		cs.aaRelaxNaive(sc, in, out, zn)
	case cs.cfg.Opt == OptDH:
		cs.aaRelaxGeneric(sc, in, out, zn)
	default:
		cs.aaRelaxPaired(sc, in, out, zn)
	}
}

// aaRelaxNaive mirrors collideBoxNaive per cell: gather, Moments,
// equilibria by method call, divisions.
func (cs *cartStepper) aaRelaxNaive(sc *workerScratch, in, out [][]float64, zn int) {
	m := cs.model
	fc := sc.fc
	for z := 0; z < zn; z++ {
		for v := 0; v < m.Q; v++ {
			fc[v] = in[v][z]
		}
		rho, jx, jy, jz := m.Moments(fc)
		ux := jx/rho + cs.shiftX
		uy := jy/rho + cs.shiftY
		uz := jz/rho + cs.shiftZ
		for v := 0; v < m.Q; v++ {
			feq := m.EquilibriumAt(v, rho, ux, uy, uz)
			out[v][z] = fc[v] - (fc[v]-feq)/cs.cfg.Tau
		}
	}
}

// aaRelaxGeneric mirrors collideBoxGeneric: per-velocity row moment
// accumulation, reciprocals, inlined equilibria.
func (cs *cartStepper) aaRelaxGeneric(sc *workerScratch, in, out [][]float64, zn int) {
	m := cs.model
	omega := 1 / cs.cfg.Tau
	c := cs.coef
	rb := sc.rb
	for z := 0; z < zn; z++ {
		rb.rho[z], rb.jx[z], rb.jy[z], rb.jz[z] = 0, 0, 0, 0
	}
	for v := 0; v < m.Q; v++ {
		sv := in[v]
		cx, cy, cz := c.cx[v], c.cy[v], c.cz[v]
		for z, val := range sv {
			rb.rho[z] += val
			rb.jx[z] += cx * val
			rb.jy[z] += cy * val
			rb.jz[z] += cz * val
		}
	}
	for z := 0; z < zn; z++ {
		inv := 1 / rb.rho[z]
		rb.ux[z] = rb.jx[z]*inv + cs.shiftX
		rb.uy[z] = rb.jy[z]*inv + cs.shiftY
		rb.uz[z] = rb.jz[z]*inv + cs.shiftZ
		rb.u2[z] = rb.ux[z]*rb.ux[z] + rb.uy[z]*rb.uy[z] + rb.uz[z]*rb.uz[z]
	}
	for v := 0; v < m.Q; v++ {
		sv, dv := in[v], out[v]
		cx, cy, cz, w := c.cx[v], c.cy[v], c.cz[v], c.w[v]
		for z := 0; z < zn; z++ {
			cu := cx*rb.ux[z] + cy*rb.uy[z] + cz*rb.uz[z]
			e := 1 + cu*c.invCs2 + cu*cu*c.invCs4h - rb.u2[z]*c.invCs2h
			if c.third {
				e += cu*cu*cu*c.thA - cu*rb.u2[z]*c.thB
			}
			feq := w * rb.rho[z] * e
			dv[z] = sv[z] - omega*(sv[z]-feq)
		}
	}
}

// aaRelaxPaired mirrors collideBoxPaired: opposite-pair symmetric
// equilibria with precomputed coefficients — the CF-and-above fast path.
func (cs *cartStepper) aaRelaxPaired(sc *workerScratch, in, out [][]float64, zn int) {
	omega := 1 / cs.cfg.Tau
	c := cs.coef
	rb := sc.rb
	for z := 0; z < zn; z++ {
		rb.rho[z], rb.jx[z], rb.jy[z], rb.jz[z] = 0, 0, 0, 0
	}
	for _, p := range cs.pairs {
		if p.i == p.j {
			for z, val := range in[p.i] {
				rb.rho[z] += val
			}
			continue
		}
		si, sj := in[p.i], in[p.j]
		cx, cy, cz := c.cx[p.i], c.cy[p.i], c.cz[p.i]
		for z := 0; z < zn; z++ {
			vi, vj := si[z], sj[z]
			sum, diff := vi+vj, vi-vj
			rb.rho[z] += sum
			rb.jx[z] += cx * diff
			rb.jy[z] += cy * diff
			rb.jz[z] += cz * diff
		}
	}
	for z := 0; z < zn; z++ {
		inv := 1 / rb.rho[z]
		rb.ux[z] = rb.jx[z]*inv + cs.shiftX
		rb.uy[z] = rb.jy[z]*inv + cs.shiftY
		rb.uz[z] = rb.jz[z]*inv + cs.shiftZ
		rb.u2[z] = rb.ux[z]*rb.ux[z] + rb.uy[z]*rb.uy[z] + rb.uz[z]*rb.uz[z]
	}
	for _, p := range cs.pairs {
		if p.i == p.j {
			sv, dv := in[p.i], out[p.i]
			w := c.w[p.i]
			for z := 0; z < zn; z++ {
				feq := w * rb.rho[z] * (1 - rb.u2[z]*c.invCs2h)
				dv[z] = sv[z] - omega*(sv[z]-feq)
			}
			continue
		}
		si, sj := in[p.i], in[p.j]
		di, dj := out[p.i], out[p.j]
		cx, cy, cz, w := c.cx[p.i], c.cy[p.i], c.cz[p.i], c.w[p.i]
		for z := 0; z < zn; z++ {
			cu := cx*rb.ux[z] + cy*rb.uy[z] + cz*rb.uz[z]
			cu2 := cu * cu
			even := 1 + cu2*c.invCs4h - rb.u2[z]*c.invCs2h
			odd := cu * c.invCs2
			if c.third {
				odd += cu2*cu*c.thA - cu*rb.u2[z]*c.thB
			}
			wr := w * rb.rho[z]
			di[z] = si[z] - omega*(si[z]-wr*(even+odd))
			dj[z] = sj[z] - omega*(sj[z]-wr*(even-odd))
		}
	}
}

// aaRelaxOpRows mirrors collideOpRows: pair-accumulated moments and
// pair-symmetric inlined equilibria into the worker's feq rows, then one
// RelaxRows call.
func (cs *cartStepper) aaRelaxOpRows(rr collision.RowRelaxer, sc *workerScratch, in, out [][]float64, zn int) {
	c := cs.coef
	rb := sc.rb
	feq := sc.rows(zn)
	for z := 0; z < zn; z++ {
		rb.rho[z], rb.jx[z], rb.jy[z], rb.jz[z] = 0, 0, 0, 0
	}
	for _, p := range cs.pairs {
		if p.i == p.j {
			for z, val := range in[p.i] {
				rb.rho[z] += val
			}
			continue
		}
		si, sj := in[p.i], in[p.j]
		cx, cy, cz := c.cx[p.i], c.cy[p.i], c.cz[p.i]
		for z := 0; z < zn; z++ {
			vi, vj := si[z], sj[z]
			sum, diff := vi+vj, vi-vj
			rb.rho[z] += sum
			rb.jx[z] += cx * diff
			rb.jy[z] += cy * diff
			rb.jz[z] += cz * diff
		}
	}
	for z := 0; z < zn; z++ {
		inv := 1 / rb.rho[z]
		rb.ux[z] = rb.jx[z]*inv + cs.shiftX
		rb.uy[z] = rb.jy[z]*inv + cs.shiftY
		rb.uz[z] = rb.jz[z]*inv + cs.shiftZ
		rb.u2[z] = rb.ux[z]*rb.ux[z] + rb.uy[z]*rb.uy[z] + rb.uz[z]*rb.uz[z]
	}
	for _, p := range cs.pairs {
		if p.i == p.j {
			fv := feq[p.i]
			w := c.w[p.i]
			for z := 0; z < zn; z++ {
				fv[z] = w * rb.rho[z] * (1 - rb.u2[z]*c.invCs2h)
			}
			continue
		}
		fi, fj := feq[p.i], feq[p.j]
		cx, cy, cz, w := c.cx[p.i], c.cy[p.i], c.cz[p.i], c.w[p.i]
		for z := 0; z < zn; z++ {
			cu := cx*rb.ux[z] + cy*rb.uy[z] + cz*rb.uz[z]
			cu2 := cu * cu
			even := 1 + cu2*c.invCs4h - rb.u2[z]*c.invCs2h
			odd := cu * c.invCs2
			if c.third {
				odd += cu2*cu*c.thA - cu*rb.u2[z]*c.thB
			}
			wr := w * rb.rho[z]
			fi[z] = wr * (even + odd)
			fj[z] = wr * (even - odd)
		}
	}
	rr.RelaxRows(out, in, feq, zn)
}

// aaRelaxOpCell mirrors collideOpBox per cell for operators without a row
// form.
func (cs *cartStepper) aaRelaxOpCell(sc *workerScratch, in, out [][]float64, zn int) {
	m := cs.model
	fc := sc.fc
	for z := 0; z < zn; z++ {
		for v := 0; v < m.Q; v++ {
			fc[v] = in[v][z]
		}
		rho, jx, jy, jz := m.Moments(fc)
		sc.op.Relax(fc, rho, jx/rho+cs.shiftX, jy/rho+cs.shiftY, jz/rho+cs.shiftZ)
		for v := 0; v < m.Q; v++ {
			out[v][z] = fc[v]
		}
	}
}

// aaForcePre accumulates the even sub-step's momentum-exchange forces
// before transport, from the pair-start normal-arranged state — exactly
// the pre-stream values the two-grid applyBoxForce reads, in one global
// CSR order (serial, hence thread- and chunk-invariant).
func (cs *cartStepper) aaForcePre() {
	if cs.fix.empty() {
		return
	}
	t0 := cs.rec.Begin()
	defer cs.rec.End(obs.Force, t0)
	fi := cs.fix
	cells := cs.d.Cells()
	fd := cs.f.Data
	for _, fx := range fi.links {
		if fx.flags&fixOwned == 0 {
			continue
		}
		fo := fd[int(fx.opp)*cells+int(fx.cell)]
		body := bodyFaces
		if fx.flags&fixObstacle != 0 {
			body = bodyObstacle
		}
		p := 2*fo + fx.delta
		cs.stepForce[body][0] += fi.cxo[fx.v] * p
		cs.stepForce[body][1] += fi.cyo[fx.v] * p
		cs.stepForce[body][2] += fi.czo[fx.v] * p
	}
}

// aaForcePost accumulates the odd sub-step's forces before compact. The
// pushed slot holds r_opp + δ, so the two-grid quantity 2·r_opp + δ is
// recovered as 2·(slot − δ) + δ (equal up to one rounding when δ ≠ 0 —
// force series cross-scheme checks use tolerances, not bit equality).
func (cs *cartStepper) aaForcePost() {
	if cs.fix.empty() {
		return
	}
	t0 := cs.rec.Begin()
	defer cs.rec.End(obs.Force, t0)
	fi := cs.fix
	cells := cs.d.Cells()
	fd := cs.f.Data
	for _, fx := range fi.links {
		if fx.flags&fixOwned == 0 {
			continue
		}
		s := fd[int(fx.opp)*cells+int(fx.cell)]
		body := bodyFaces
		if fx.flags&fixObstacle != 0 {
			body = bodyObstacle
		}
		p := 2*(s-fx.delta) + fx.delta
		cs.stepForce[body][0] += fi.cxo[fx.v] * p
		cs.stepForce[body][1] += fi.cyo[fx.v] * p
		cs.stepForce[body][2] += fi.czo[fx.v] * p
	}
}

// aaFixOpenFaces emulates the odd step's open-face ghost refill: for
// every cell y of the upcoming compact box bc whose upwind source
// g = y − c_v lies beyond an open face plane, the pushed slot
// (opp(v), y) is overwritten with the fill value the two-grid path would
// have refilled into g and streamed — the zero-gradient copy (outflow) or
// the unit-density non-equilibrium extrapolation (pressure outlet) of the
// outermost owned layer's post-transport state, a function of the
// source's transverse column only. Serial and alias-free: every written
// slot's star owner is a ghost cell, so neither compact consumers beyond
// bc nor the odd-final recovery (which reads owned stars only) see it.
func (cs *cartStepper) aaFixOpenFaces(bc box) {
	if cs.spec == nil {
		return
	}
	for axis := 0; axis < 3; axis++ {
		for side := 0; side < 2; side++ {
			if cs.ex.Neighbors[axis][side] == halo.NoNeighbor && openFace(cs.spec.Faces[axis][side].Kind) {
				t0 := cs.rec.Begin()
				cs.aaFixOpenFace(axis, side, bc)
				cs.rec.EndAxis(obs.Face, axis, t0)
			}
		}
	}
}

func (cs *cartStepper) aaFixOpenFace(axis, side int, bc box) {
	m := cs.model
	face := &cs.spec.Faces[axis][side]
	src := cs.w[axis] // outermost owned layer
	if side == 1 {
		src = cs.w[axis] + cs.own[axis] - 1
	}
	// Consumers with a crossing source sit within k of the face plane, on
	// the domain side (deeper open-axis ghosts are refilled before anything
	// reads them).
	cb := bc
	if side == 0 {
		if cb.lo[axis] < cs.w[axis] {
			cb.lo[axis] = cs.w[axis]
		}
		if cb.hi[axis] > cs.w[axis]+cs.k {
			cb.hi[axis] = cs.w[axis] + cs.k
		}
	} else {
		edge := cs.w[axis] + cs.own[axis]
		if cb.hi[axis] > edge {
			cb.hi[axis] = edge
		}
		if cb.lo[axis] < edge-cs.k {
			cb.lo[axis] = edge - cs.k
		}
	}
	if cb.cells() == 0 {
		return
	}
	pressure := face.Kind == BCPressureOutlet
	t1, t2 := transverseAxes(axis)
	dims := [3]int{cs.d.NX, cs.d.NY, cs.d.NZ}
	if pressure {
		cs.aaFillColumns(axis, src, t1, t2, cb)
	}
	cv := [3][]int{m.Cx, m.Cy, m.Cz}
	for i0 := cb.lo[0]; i0 < cb.hi[0]; i0++ {
		for i1 := cb.lo[1]; i1 < cb.hi[1]; i1++ {
			for i2 := cb.lo[2]; i2 < cb.hi[2]; i2++ {
				y := [3]int{i0, i1, i2}
				yIdx := cs.d.Index(i0, i1, i2)
				if cs.mask != nil && cs.mask[yIdx] {
					continue
				}
				for v := 0; v < m.Q; v++ {
					ga := y[axis] - cv[axis][v]
					if side == 0 {
						if ga >= cs.w[axis] {
							continue
						}
					} else if ga < cs.w[axis]+cs.own[axis] {
						continue
					}
					g := [3]int{y[0] - m.Cx[v], y[1] - m.Cy[v], y[2] - m.Cz[v]}
					if cs.mask != nil && cs.mask[cs.d.Index(g[0], g[1], g[2])] {
						continue // bounce-back link; the push already handled it
					}
					var val float64
					if pressure {
						val = cs.aaFill[(g[t1]*dims[t2]+g[t2])*m.Q+v]
					} else {
						// Zero-gradient: fill_v(g) = r_v(o), read from the
						// star slot of the source column's owned-edge cell.
						o := g
						o[axis] = src
						val = cs.f.V(m.Opp[v])[cs.d.Index(o[0]+m.Cx[v], o[1]+m.Cy[v], o[2]+m.Cz[v])]
					}
					cs.f.V(m.Opp[v])[yIdx] = val
				}
			}
		}
	}
}

// aaFillColumns computes the pressure-outlet fill values of every
// transverse column a consumer in cb can reference, mirroring
// fillPressureLayer's arithmetic on the star-arranged post-transport
// state: gather r(o) from the owned-edge cell's star, re-anchor its
// equilibrium at unit density.
func (cs *cartStepper) aaFillColumns(axis, src, t1, t2 int, cb box) {
	m := cs.model
	dims := [3]int{cs.d.NX, cs.d.NY, cs.d.NZ}
	if cs.aaFill == nil {
		cs.aaFill = make([]float64, dims[t1]*dims[t2]*m.Q)
		cs.aaFc = make([]float64, m.Q)
		cs.aaFeqR = make([]float64, m.Q)
		cs.aaFeq1 = make([]float64, m.Q)
	}
	fc, feqR, feq1 := cs.aaFc, cs.aaFeqR, cs.aaFeq1
	lo1, hi1 := cb.lo[t1]-cs.k, cb.hi[t1]+cs.k
	lo2, hi2 := cb.lo[t2]-cs.k, cb.hi[t2]+cs.k
	for i1 := lo1; i1 < hi1; i1++ {
		for i2 := lo2; i2 < hi2; i2++ {
			var o [3]int
			o[axis], o[t1], o[t2] = src, i1, i2
			for v := 0; v < m.Q; v++ {
				fc[v] = cs.f.V(m.Opp[v])[cs.d.Index(o[0]+m.Cx[v], o[1]+m.Cy[v], o[2]+m.Cz[v])]
			}
			rho, jx, jy, jz := m.Moments(fc)
			ux, uy, uz := jx/rho, jy/rho, jz/rho
			m.Equilibrium(rho, ux, uy, uz, feqR)
			m.Equilibrium(1, ux, uy, uz, feq1)
			base := (i1*dims[t2] + i2) * m.Q
			for v := 0; v < m.Q; v++ {
				cs.aaFill[base+v] = fc[v] + feq1[v] - feqR[v]
			}
		}
	}
}

// transverseAxes returns the two non-axis axes in increasing order.
func transverseAxes(axis int) (int, int) {
	switch axis {
	case 0:
		return 1, 2
	case 1:
		return 0, 2
	default:
		return 0, 1
	}
}

// AABytesPerCell is the per-step f-traffic of the AA scheme: one read and
// one write of the single field per sub-step — half the two-grid figure
// (see FusedBytesPerCell, which AA matches by construction).
func AABytesPerCell(q int) int { return 2 * 8 * q }
