package core

// Streaming kernels. All halo-based levels use the pull form: each
// destination cell gathers f_i from x − c_i, which makes the computed
// region exactly the iterated one (the push form of the paper's Fig. 3 is
// kept for the no-ghost Orig protocol in orig.go, where scattering into the
// egress margins is the point). Pull and push visit the same data and move
// the same bytes; they differ only in write locality.

// streamScalar is the naive pull kernel: velocity-innermost loops with
// modulo wrap arithmetic on every access, per the paper's Fig. 3 structure.
// Like every slab kernel it takes an x/y sub-box with the full z extent
// (z-lines wrap and are never split by the chunker).
func (s *stepper) streamScalar(worker int, b box) {
	m := s.model
	ny, nz := s.d.NY, s.d.NZ
	for ix := b.lo[0]; ix < b.hi[0]; ix++ {
		for iy := b.lo[1]; iy < b.hi[1]; iy++ {
			for iz := 0; iz < nz; iz++ {
				dst := s.d.Index(ix, iy, iz)
				for v := 0; v < m.Q; v++ {
					sx := ix - m.Cx[v]
					sy := ((iy-m.Cy[v])%ny + ny) % ny
					sz := ((iz-m.Cz[v])%nz + nz) % nz
					s.fadv.Data[s.fadv.Idx(v, dst)] = s.f.Data[s.f.Idx(v, s.d.Index(sx, sy, sz))]
				}
			}
		}
	}
}

// streamCopy is the data-handling kernel (§V.B): velocities outermost so
// each contiguous velocity block is traversed in memory order, with the
// z-line movement expressed as bulk rotated copies. Requires SoA layout.
func (s *stepper) streamCopy(worker int, b box) {
	m := s.model
	ny, nz := s.d.NY, s.d.NZ
	plane := s.d.PlaneCells()
	for v := 0; v < m.Q; v++ {
		src := s.f.V(v)
		dst := s.fadv.V(v)
		cx, cy, cz := m.Cx[v], m.Cy[v], m.Cz[v]
		for ix := b.lo[0]; ix < b.hi[0]; ix++ {
			srcBase := (ix - cx) * plane
			dstBase := ix * plane
			for iy := b.lo[1]; iy < b.hi[1]; iy++ {
				sy := iy - cy
				if sy < 0 {
					sy += ny
				} else if sy >= ny {
					sy -= ny
				}
				srow := src[srcBase+sy*nz : srcBase+sy*nz+nz]
				drow := dst[dstBase+iy*nz : dstBase+iy*nz+nz]
				rotateCopy(drow, srow, cz)
			}
		}
	}
}

// streamCopyIndexed is streamCopy with the per-row wrap replaced by the
// precomputed source-row tables (§V.D branch reduction): the loop body
// contains no conditional at all.
func (s *stepper) streamCopyIndexed(worker int, b box) {
	m := s.model
	nz := s.d.NZ
	plane := s.d.PlaneCells()
	for v := 0; v < m.Q; v++ {
		src := s.f.V(v)
		dst := s.fadv.V(v)
		cx, cz := m.Cx[v], m.Cz[v]
		rows := s.srcY[v]
		for ix := b.lo[0]; ix < b.hi[0]; ix++ {
			srcBase := (ix - cx) * plane
			dstBase := ix * plane
			for iy := b.lo[1]; iy < b.hi[1]; iy++ {
				sOff := srcBase + int(rows[iy])*nz
				dOff := dstBase + iy*nz
				rotateCopy(dst[dOff:dOff+nz], src[sOff:sOff+nz], cz)
			}
		}
	}
}

// rotateCopy writes dst[z] = src[(z − cz) mod n]: a cyclic shift of the
// z-line by +cz, realized as at most two block copies.
func rotateCopy(dst, src []float64, cz int) {
	n := len(dst)
	switch {
	case cz == 0:
		copy(dst, src)
	case cz > 0:
		copy(dst[cz:], src[:n-cz])
		copy(dst[:cz], src[n-cz:])
	default:
		c := -cz
		copy(dst[:n-c], src[c:])
		copy(dst[n-c:], src[:c])
	}
}
