package core

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// refSolverMask extends the oracle with halfway bounce-back and
// velocity-shift forcing, sharing no code with the solver under test.
func refSolverMask(m *lattice.Model, n grid.Dims, tau float64, steps int, init InitFunc,
	solid func(ix, iy, iz int) bool, accel [3]float64) *grid.Field {
	f := grid.NewField(m.Q, n, grid.SoA)
	fadv := grid.NewField(m.Q, n, grid.SoA)
	feq := make([]float64, m.Q)
	isSolid := func(ix, iy, iz int) bool { return solid != nil && solid(ix, iy, iz) }
	for ix := 0; ix < n.NX; ix++ {
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				rho, ux, uy, uz := init(ix, iy, iz)
				if isSolid(ix, iy, iz) {
					rho, ux, uy, uz = 1, 0, 0, 0
				}
				m.Equilibrium(rho, ux, uy, uz, feq)
				f.SetCell(ix, iy, iz, feq)
			}
		}
	}
	wrap := func(a, n int) int { return ((a % n) + n) % n }
	fc := make([]float64, m.Q)
	for s := 0; s < steps; s++ {
		for v := 0; v < m.Q; v++ {
			for ix := 0; ix < n.NX; ix++ {
				for iy := 0; iy < n.NY; iy++ {
					for iz := 0; iz < n.NZ; iz++ {
						sx := wrap(ix-m.Cx[v], n.NX)
						sy := wrap(iy-m.Cy[v], n.NY)
						sz := wrap(iz-m.Cz[v], n.NZ)
						if isSolid(sx, sy, sz) {
							// Halfway bounce-back: reflect own population.
							fadv.Set(v, ix, iy, iz, f.At(m.Opp[v], ix, iy, iz))
						} else {
							fadv.Set(v, ix, iy, iz, f.At(v, sx, sy, sz))
						}
					}
				}
			}
		}
		for ix := 0; ix < n.NX; ix++ {
			for iy := 0; iy < n.NY; iy++ {
				for iz := 0; iz < n.NZ; iz++ {
					fadv.Cell(ix, iy, iz, fc)
					rho, jx, jy, jz := m.Moments(fc)
					ux := jx/rho + tau*accel[0]
					uy := jy/rho + tau*accel[1]
					uz := jz/rho + tau*accel[2]
					m.Equilibrium(rho, ux, uy, uz, feq)
					for v := 0; v < m.Q; v++ {
						f.Set(v, ix, iy, iz, fc[v]-(fc[v]-feq[v])/tau)
					}
				}
			}
		}
	}
	return f
}

// maskAtFn adapts a voxel mask to the closure form the oracles take.
func maskAtFn(m *geom.Mask) func(ix, iy, iz int) bool {
	if m == nil {
		return nil
	}
	return m.At
}

// maxDiffFluid compares two fields over fluid cells only (solid cells are
// implementation-defined scratch).
func maxDiffFluid(a, b *grid.Field, solid func(ix, iy, iz int) bool) float64 {
	var worst float64
	n := a.D
	for v := 0; v < a.Q; v++ {
		for ix := 0; ix < n.NX; ix++ {
			for iy := 0; iy < n.NY; iy++ {
				for iz := 0; iz < n.NZ; iz++ {
					if solid != nil && solid(ix, iy, iz) {
						continue
					}
					d := math.Abs(a.At(v, ix, iy, iz) - b.At(v, ix, iy, iz))
					if d > worst {
						worst = d
					}
				}
			}
		}
	}
	return worst
}

// plateMask is a small solid plate in the domain interior.
func plateMask(n grid.Dims) func(ix, iy, iz int) bool {
	return func(ix, iy, iz int) bool {
		return ix == n.NX/2 && iy >= n.NY/4 && iy < 3*n.NY/4
	}
}

// TestBounceBackEquivalence: with a solid plate, every non-fused level must
// match the masked oracle across rank counts.
func TestBounceBackEquivalence(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 8, NZ: 5}
	solid := plateMask(n)
	init := waveInit(n)
	for _, opt := range Levels() {
		for _, ranks := range []int{1, 2, 4} {
			cfg := Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 6,
				Opt: opt, Ranks: ranks, Threads: 1, GhostDepth: depthFor(opt, 1),
				Init: init, Solid: geom.FromFunc(n, solid), KeepField: true,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s ranks=%d: %v", opt, ranks, err)
			}
			want := refSolverMask(cfg.Model, n, cfg.Tau, cfg.Steps, init, solid, [3]float64{})
			if d := maxDiffFluid(res.Field, want, solid); d > eqTol {
				t.Errorf("%s ranks=%d: max fluid |Δf| = %g", opt, ranks, d)
			}
		}
	}
}

// TestBounceBackDeepHaloAndThreads covers the mask under the deep-halo
// schedule, the overlapped GC-C path and threading.
func TestBounceBackDeepHaloAndThreads(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 8, NZ: 5}
	solid := plateMask(n)
	init := waveInit(n)
	for _, cfg := range []Config{
		{Opt: OptGC, Ranks: 2, Threads: 2, GhostDepth: 2},
		{Opt: OptGCC, Ranks: 3, Threads: 1, GhostDepth: 2},
		{Opt: OptSIMD, Ranks: 2, Threads: 2, GhostDepth: 3},
	} {
		cfg.Model = lattice.D3Q19()
		cfg.N = n
		cfg.Tau = 0.8
		cfg.Steps = 6
		cfg.Init = init
		cfg.Solid = geom.FromFunc(n, solid)
		cfg.KeepField = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s depth=%d: %v", cfg.Opt, cfg.GhostDepth, err)
		}
		want := refSolverMask(cfg.Model, n, cfg.Tau, cfg.Steps, init, solid, [3]float64{})
		if d := maxDiffFluid(res.Field, want, solid); d > eqTol {
			t.Errorf("%s ranks=%d depth=%d threads=%d: max fluid |Δf| = %g",
				cfg.Opt, cfg.Ranks, cfg.GhostDepth, cfg.Threads, d)
		}
	}
}

// TestBounceBackMassConservation: halfway bounce-back conserves fluid mass
// exactly.
func TestBounceBackMassConservation(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 8, NZ: 6}
	solid := plateMask(n)
	init := waveInit(n)
	var mass0 float64
	for ix := 0; ix < n.NX; ix++ {
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				if solid(ix, iy, iz) {
					continue
				}
				rho, _, _, _ := init(ix, iy, iz)
				mass0 += rho
			}
		}
	}
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		res, err := Run(Config{
			Model: m, N: n, Tau: 0.8, Steps: 25,
			Opt: OptNBC, Ranks: 2, Threads: 1, GhostDepth: 1,
			Init: init, Solid: geom.FromFunc(n, solid),
		})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if math.Abs(res.Mass-mass0) > 1e-9*mass0 {
			t.Errorf("%s: fluid mass %0.12f, want %0.12f", m.Name, res.Mass, mass0)
		}
	}
}

// TestForcingEquivalence: the velocity-shift forcing must match the oracle
// at every level, fused included.
func TestForcingEquivalence(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 6, NZ: 6}
	accel := [3]float64{1e-5, -5e-6, 2e-6}
	init := waveInit(n)
	for _, opt := range []OptLevel{OptOrig, OptGC, OptDH, OptCF, OptNBC, OptSIMD} {
		for _, fused := range []bool{false, true} {
			if fused && opt == OptOrig {
				continue
			}
			cfg := Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
				Opt: opt, Ranks: 2, Threads: 1, GhostDepth: 1,
				Init: init, Accel: accel, Fused: fused, KeepField: true,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s fused=%v: %v", opt, fused, err)
			}
			want := refSolverMask(cfg.Model, n, cfg.Tau, cfg.Steps, init, nil, accel)
			if d := grid.MaxAbsDiff(res.Field, want); d > eqTol {
				t.Errorf("%s fused=%v: max |Δf| = %g", opt, fused, d)
			}
		}
	}
}

// TestPoiseuilleProfile: a body-force-driven channel between two solid
// walls must converge to the parabolic Poiseuille profile with the correct
// peak velocity u(z) = a/(2ν)·(z−z0)(z1−z), walls half a link outside the
// fluid.
func TestPoiseuilleProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("long relaxation in -short mode")
	}
	m := lattice.D3Q19()
	n := grid.Dims{NX: 4, NY: 4, NZ: 19}
	tau := 1.2 // high viscosity: fast convergence
	a := 1e-6
	solid := func(ix, iy, iz int) bool { return iz == 0 || iz == n.NZ-1 }
	res, err := Run(Config{
		Model: m, N: n, Tau: tau, Steps: 6000,
		Opt: OptSIMD, Ranks: 2, Threads: 1, GhostDepth: 1,
		Solid: geom.FromFunc(n, solid), Accel: [3]float64{a, 0, 0}, KeepField: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	nu := m.Viscosity(tau)
	z0, z1 := 0.5, float64(n.NZ-1)-0.5 // halfway wall positions
	fc := make([]float64, m.Q)
	var worst float64
	umax := a / (2 * nu) * (z1 - z0) * (z1 - z0) / 4
	for iz := 1; iz < n.NZ-1; iz++ {
		res.Field.Cell(1, 1, iz, fc)
		rho, jx, _, _ := m.Moments(fc)
		// Physical velocity of the forced scheme: u = j/ρ + a/2.
		got := jx/rho + a/2
		want := a / (2 * nu) * (float64(iz) - z0) * (z1 - float64(iz))
		if d := math.Abs(got - want); d > worst {
			worst = d
		}
	}
	if worst > 0.02*umax {
		t.Errorf("Poiseuille profile deviates by %.3g (%.1f%% of umax %.3g)", worst, 100*worst/umax, umax)
	}
}

// TestNoSlipWall: flow past a plate must be slower next to the wall than in
// the free stream.
func TestNoSlipWall(t *testing.T) {
	m := lattice.D3Q19()
	n := grid.Dims{NX: 12, NY: 12, NZ: 6}
	solid := func(ix, iy, iz int) bool { return iy == 0 }
	res, err := Run(Config{
		Model: m, N: n, Tau: 0.9, Steps: 150,
		Opt: OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1,
		Init: func(ix, iy, iz int) (rho, ux, uy, uz float64) {
			return 1, 0.02, 0, 0
		},
		Solid: geom.FromFunc(n, solid), KeepField: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fc := make([]float64, m.Q)
	ux := func(iy int) float64 {
		res.Field.Cell(6, iy, 3, fc)
		rho, jx, _, _ := m.Moments(fc)
		return jx / rho
	}
	nearWall, freeStream := ux(1), ux(n.NY/2)
	if nearWall >= freeStream*0.8 {
		t.Errorf("no-slip violated: u(wall+1)=%.5f vs u(mid)=%.5f", nearWall, freeStream)
	}
}

// TestSolidValidation checks the fused-with-solids rejection and the fluid
// cell accounting.
func TestSolidValidation(t *testing.T) {
	n := grid.Dims{NX: 8, NY: 4, NZ: 4}
	solid := func(ix, iy, iz int) bool { return ix == 2 }
	if _, err := Run(Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 1,
		Opt: OptGC, Fused: true, Solid: geom.FromFunc(n, solid),
	}); err == nil {
		t.Error("fused + solid accepted")
	}
	res, err := Run(Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 2,
		Opt: OptGC, Solid: geom.FromFunc(n, solid),
	})
	if err != nil {
		t.Fatal(err)
	}
	wantFluid := n.Cells() - 16 // one plane of 4×4 solid
	if got := FluidCells(n, geom.FromFunc(n, solid)); got != wantFluid {
		t.Errorf("FluidCells = %d, want %d", got, wantFluid)
	}
	if res.InteriorUpdates != int64(2*wantFluid) {
		t.Errorf("InteriorUpdates = %d, want %d (N_fl excludes solids, Eq. 4)", res.InteriorUpdates, 2*wantFluid)
	}
}
