package core

// Sparse-traversal benchmark on the bifurcating-vessel demo mask (the
// ~95%-solid arterial regime): the same full masked step — stream,
// bounce-back fixups, collide over the owned box — under dense traversal
// and under the row-run sparse traversal. Both report a fluid-cell
// update rate, so the sparse win shows as rate, not as skipped work.
// Part of the CI benchmark smoke sweep.

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// benchSparseStepper builds a single-rank cart stepper over the
// bifurcation mask, with or without sparse row-run traversal.
func benchSparseStepper(b *testing.B, n grid.Dims, sparse bool) *cartStepper {
	b.Helper()
	cfg := &Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 1,
		Opt: OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1,
		Init: waveInit(n), Solid: geom.Bifurcation(n, 0.1*float64(n.NY)),
		Sparse: sparse,
	}
	if err := cfg.init(); err != nil {
		b.Fatal(err)
	}
	dec, err := decomp.NewCartesian([3]int{n.NX, n.NY, n.NZ}, [3]int{1, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	var cs *cartStepper
	fab := comm.NewFabric(1)
	if err := fab.Run(func(r *comm.Rank) error {
		cs, err = newCartStepper(cfg, dec, r)
		if err != nil {
			return err
		}
		cs.initField()
		cs.refreshAxes([3]bool{true, true, true})
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	return cs
}

func BenchmarkSparseStep(b *testing.B) {
	n := grid.Dims{NX: 64, NY: 32, NZ: 32}
	for _, c := range []struct {
		name   string
		sparse bool
	}{{"dense", false}, {"sparse", true}} {
		b.Run(c.name, func(b *testing.B) {
			cs := benchSparseStepper(b, n, c.sparse)
			owned := cs.ownedBox()
			fluid := cs.cfg.Solid.Fluids()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs.streamBox(owned)
				cs.applyBounceBackBox(owned)
				cs.collideBox(owned)
			}
			reportCellRate(b, fluid)
		})
	}
}
