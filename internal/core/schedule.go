package core

// The box step schedule: the planner behind both steppers' stepping loops.
//
// A deep-halo step computes an axis-aligned destination box. At the moment
// the step starts, some axes' ghost layers may still be in flight ("stale"
// axes: their refresh — message exchange, local wraparound or boundary
// fill — completes only during the step). The planner splits the
// destination box into
//
//   - an interior box, whose inputs never touch a stale axis's ghost
//     layers and which may therefore be computed while messages fly
//     (the GC-C overlap of §V.F generalized to any axis set), and
//   - per-axis rim slabs, computed one stale axis at a time as that
//     axis's ghosts become valid.
//
// The rims are arranged so the streamed region stays a box that grows
// axis by axis: after phase a it spans the full destination range on
// every axis ≤ a and the interior range on the stale axes beyond. Phase
// a's rim therefore needs ghost data of axes ≤ a only — exactly what the
// sequential-axis ride-along exchange has delivered by then.
//
// The split kernels add one constraint the fused kernel does not have:
// collision overwrites the pre-stream state f, which rim streaming still
// reads within distance k of its destinations. The collide boxes are
// therefore the stream boxes eroded by k toward every not-yet-streamed
// region, which keeps them boxes with the same axis-by-axis growth: the
// interior collide box sits 2k inside the owned extent of every stale
// axis, and each phase expands one axis to the full destination range.
//
// planStep is pure geometry — no fields, no communication — which is what
// lets one scheduler drive the slab stepper (stale = {x}), the multi-axis
// box stepper (stale = the axes refreshed this step) and the fused kernel
// (stream boxes only), and what the property tests in schedule_test.go
// pin: the boxes tile the destination exactly, interior inputs avoid
// stale ghosts, and collide boxes stay k inside the streamed region.

// stepPlan is the interior/rim decomposition of one step's destination box.
type stepPlan struct {
	dest  box
	stale [3]bool

	// interiorS is the stream-ahead box: destinations whose inputs avoid
	// every stale axis's ghost layers. interiorC is the collide-ahead box,
	// k further inside interiorS on stale axes.
	interiorS, interiorC box

	// phases[a] holds the axis-a rim boxes, meaningful only when stale[a]:
	// streamRims are the two axis-a slabs that complete the streamed box
	// along axis a; collideRims likewise for the collided box.
	phases [3]phasePlan
}

// phasePlan is one stale axis's rim work: index 0 the low-side slab,
// 1 the high-side slab. Empty boxes (hi ≤ lo on the phase axis) occur
// when the owned extent is too small for an interior on that axis.
type phasePlan struct {
	streamRims  [2]box
	collideRims [2]box
}

// planStep decomposes the destination box dest of a step on a domain with
// per-axis owned extents own and ghost widths w (lattice max speed k)
// into interior and per-axis rim boxes, given which axes are stale.
// With no stale axes the interior is the whole destination box.
//
// packLate marks axes whose border faces are packed (for messages or the
// local wraparound) only after the interior compute has started — the
// phased multi-axis schedule packs each axis at its slot, after the
// previous axis's unpack, so its payload carries fresh ride-along corner
// data. Collision writes the state field f that those packs read, so the
// collide-ahead box additionally keeps out of a packLate axis's border
// layers [w, 2w) and [own, own+w); the deferred cells join that axis's
// collide rim. For w ≤ 2k (depth ≤ 2) the restriction is vacuous.
func planStep(dest box, own, w [3]int, k int, stale, packLate [3]bool) stepPlan {
	p := stepPlan{dest: dest, stale: stale, interiorS: dest, interiorC: dest}
	for a := 0; a < 3; a++ {
		if !stale[a] {
			continue
		}
		// Stream-ahead: inputs (distance ≤ k) must stay inside the owned
		// range [w, w+own) of a stale axis.
		p.interiorS.lo[a] = w[a] + k
		p.interiorS.hi[a] = w[a] + own[a] - k
		if p.interiorS.hi[a] < p.interiorS.lo[a] {
			p.interiorS.hi[a] = p.interiorS.lo[a]
		}
		// Collide-ahead: k further inside, so no collide overwrites state a
		// pending rim stream still reads (the slab's icLo/icHi, per axis).
		p.interiorC.lo[a] = w[a] + 2*k
		p.interiorC.hi[a] = w[a] + own[a] - 2*k
		if packLate[a] {
			if lo := 2 * w[a]; lo > p.interiorC.lo[a] {
				p.interiorC.lo[a] = lo
			}
			if hi := own[a]; hi < p.interiorC.hi[a] {
				p.interiorC.hi[a] = hi
			}
		}
		if p.interiorC.lo[a] > dest.hi[a] {
			p.interiorC.lo[a] = dest.hi[a]
		}
		if p.interiorC.hi[a] < p.interiorC.lo[a] {
			p.interiorC.hi[a] = p.interiorC.lo[a]
		}
	}
	// Rim slabs: phase a expands axis a from the interior range to the
	// full destination range. Earlier axes are complete (full range);
	// later stale axes are still at their interior range.
	sGrow, cGrow := p.interiorS, p.interiorC
	for a := 0; a < 3; a++ {
		if !stale[a] {
			continue
		}
		ph := &p.phases[a]
		ph.streamRims[0], ph.streamRims[1] = axisRims(sGrow, dest, a, p.interiorS)
		ph.collideRims[0], ph.collideRims[1] = axisRims(cGrow, dest, a, p.interiorC)
		sGrow.lo[a], sGrow.hi[a] = dest.lo[a], dest.hi[a]
		cGrow.lo[a], cGrow.hi[a] = dest.lo[a], dest.hi[a]
	}
	return p
}

// axisRims returns the two axis-a slabs that expand box grown from the
// interior range to the full dest range on axis a: the slabs span grown's
// current extents on the other axes and [dest.lo, interior.lo) /
// [interior.hi, dest.hi) on axis a.
func axisRims(grown, dest box, a int, interior box) (lo, hi box) {
	lo, hi = grown, grown
	lo.lo[a], lo.hi[a] = dest.lo[a], interior.lo[a]
	hi.lo[a], hi.hi[a] = interior.hi[a], dest.hi[a]
	return lo, hi
}
