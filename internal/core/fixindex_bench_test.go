package core

// Fixup-path benchmarks on a boundary-heavy mask (the arterial-geometry
// regime): the per-box index vs the legacy whole-plane scans, both as the
// isolated apply kernels on a rim slab — the phased schedule's unit of
// work, where the plane scan pays O(plane) per phase — and as the full
// masked stream+fixup+collide step. Part of the CI benchmark smoke sweep.

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// benchMaskedStepper builds a single-rank cart stepper over a ~20% solid
// noise mask.
func benchMaskedStepper(b *testing.B, n grid.Dims, scan bool) *cartStepper {
	b.Helper()
	cfg := &Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 1,
		Opt: OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1,
		Init: waveInit(n), Solid: noiseMask(n, 7), FixupScan: scan,
	}
	if err := cfg.init(); err != nil {
		b.Fatal(err)
	}
	dec, err := decomp.NewCartesian([3]int{n.NX, n.NY, n.NZ}, [3]int{1, 1, 1})
	if err != nil {
		b.Fatal(err)
	}
	var cs *cartStepper
	fab := comm.NewFabric(1)
	if err := fab.Run(func(r *comm.Rank) error {
		cs, err = newCartStepper(cfg, dec, r)
		if err != nil {
			return err
		}
		cs.initField()
		cs.refreshAxes([3]bool{true, true, true})
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	return cs
}

// BenchmarkFixupApply isolates the bounce-back apply on one y-rim slab of
// the owned box: the strict plane scan walks and filters every link of
// the covered x-planes, the per-box index touches only the rim's rows.
func BenchmarkFixupApply(b *testing.B) {
	cs := benchMaskedStepper(b, benchDims, false)
	owned := cs.ownedBox()
	rim := owned
	rim.hi[1] = rim.lo[1] + 2 // a two-layer y-rim, full x/z extent
	cases := []struct {
		name string
		run  func()
	}{
		{"index", func() { cs.fix.applyBox(cs.f, cs.fadv, rim) }},
		{"plane-scan", func() { cs.fix.applyPlanesStrict(cs.f, cs.fadv, rim) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.run()
			}
			reportCellRate(b, rim.cells())
		})
	}
}

// BenchmarkMaskedStep is the full masked step (stream, fixups, collide
// over the owned box) with the per-box index vs the legacy plane scan.
func BenchmarkMaskedStep(b *testing.B) {
	for _, c := range []struct {
		name string
		scan bool
	}{{"index", false}, {"plane-scan", true}} {
		b.Run(c.name, func(b *testing.B) {
			cs := benchMaskedStepper(b, benchDims, c.scan)
			owned := cs.ownedBox()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs.streamBox(owned)
				cs.applyBounceBackBox(owned)
				cs.collideBox(owned)
			}
			reportCellRate(b, owned.cells())
		})
	}
}
