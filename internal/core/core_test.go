package core

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/lattice"
)

// refSolver is an independent textbook implementation used as the oracle:
// full-array pull streaming with periodic wrap in all three directions and
// per-cell BGK collision. It shares no kernel code with the solver under
// test.
func refSolver(m *lattice.Model, n grid.Dims, tau float64, steps int, init InitFunc) *grid.Field {
	f := grid.NewField(m.Q, n, grid.SoA)
	fadv := grid.NewField(m.Q, n, grid.SoA)
	feq := make([]float64, m.Q)
	for ix := 0; ix < n.NX; ix++ {
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				rho, ux, uy, uz := init(ix, iy, iz)
				m.Equilibrium(rho, ux, uy, uz, feq)
				f.SetCell(ix, iy, iz, feq)
			}
		}
	}
	wrap := func(a, n int) int { return ((a % n) + n) % n }
	fc := make([]float64, m.Q)
	for s := 0; s < steps; s++ {
		for v := 0; v < m.Q; v++ {
			for ix := 0; ix < n.NX; ix++ {
				for iy := 0; iy < n.NY; iy++ {
					for iz := 0; iz < n.NZ; iz++ {
						sx := wrap(ix-m.Cx[v], n.NX)
						sy := wrap(iy-m.Cy[v], n.NY)
						sz := wrap(iz-m.Cz[v], n.NZ)
						fadv.Set(v, ix, iy, iz, f.At(v, sx, sy, sz))
					}
				}
			}
		}
		for ix := 0; ix < n.NX; ix++ {
			for iy := 0; iy < n.NY; iy++ {
				for iz := 0; iz < n.NZ; iz++ {
					fadv.Cell(ix, iy, iz, fc)
					rho, jx, jy, jz := m.Moments(fc)
					ux, uy, uz := jx/rho, jy/rho, jz/rho
					m.Equilibrium(rho, ux, uy, uz, feq)
					for v := 0; v < m.Q; v++ {
						f.Set(v, ix, iy, iz, fc[v]-(fc[v]-feq[v])/tau)
					}
				}
			}
		}
	}
	return f
}

// waveInit is a smooth, fully 3-D initial condition exercising all velocity
// directions.
func waveInit(n grid.Dims) InitFunc {
	return func(ix, iy, iz int) (rho, ux, uy, uz float64) {
		x := 2 * math.Pi * float64(ix) / float64(n.NX)
		y := 2 * math.Pi * float64(iy) / float64(n.NY)
		z := 2 * math.Pi * float64(iz) / float64(n.NZ)
		rho = 1 + 0.04*math.Sin(x)*math.Cos(y)
		ux = 0.02 * math.Sin(y+z)
		uy = -0.015 * math.Cos(x) * math.Sin(z)
		uz = 0.01 * math.Sin(x+y)
		return
	}
}

const eqTol = 1e-12

// runAndCompare executes cfg with KeepField and compares against the oracle.
func runAndCompare(t *testing.T, cfg Config) *Result {
	t.Helper()
	cfg.KeepField = true
	if cfg.Init == nil {
		cfg.Init = waveInit(cfg.N)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s ranks=%d threads=%d depth=%d: %v", cfg.Opt, cfg.Ranks, cfg.Threads, cfg.GhostDepth, err)
	}
	want := refSolver(cfg.Model, cfg.N, cfg.Tau, cfg.Steps, cfg.Init)
	if d := grid.MaxAbsDiff(res.Field, want); d > eqTol {
		t.Errorf("%s %s ranks=%d threads=%d depth=%d layout=%v: max |Δf| = %g (tol %g)",
			cfg.Model.Name, cfg.Opt, cfg.Ranks, cfg.Threads, cfg.GhostDepth, cfg.Layout, d, eqTol)
	}
	return res
}

func TestAllOptLevelsSingleRankQ19(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 6, NZ: 5}
	for _, opt := range Levels() {
		runAndCompare(t, Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: opt, Ranks: 1, Threads: 1, GhostDepth: 1,
		})
	}
}

func TestAllOptLevelsSingleRankQ39(t *testing.T) {
	n := grid.Dims{NX: 9, NY: 7, NZ: 6}
	for _, opt := range Levels() {
		runAndCompare(t, Config{
			Model: lattice.D3Q39(), N: n, Tau: 0.9, Steps: 4,
			Opt: opt, Ranks: 1, Threads: 1, GhostDepth: 1,
		})
	}
}

func TestAllOptLevelsMultiRankQ19(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 5, NZ: 6}
	for _, opt := range Levels() {
		for _, ranks := range []int{2, 4} {
			runAndCompare(t, Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 6,
				Opt: opt, Ranks: ranks, Threads: 1, GhostDepth: 1,
			})
		}
	}
}

func TestAllOptLevelsMultiRankQ39(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 6, NZ: 7}
	for _, opt := range Levels() {
		runAndCompare(t, Config{
			Model: lattice.D3Q39(), N: n, Tau: 1.1, Steps: 4,
			Opt: opt, Ranks: 2, Threads: 1, GhostDepth: 1,
		})
	}
}

func TestDeepHaloDepthsQ19(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 5, NZ: 5}
	for _, opt := range []OptLevel{OptGC, OptNBC, OptGCC, OptSIMD} {
		for _, depth := range []int{1, 2, 3, 4} {
			for _, ranks := range []int{1, 3} {
				runAndCompare(t, Config{
					Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 8,
					Opt: opt, Ranks: ranks, Threads: 1, GhostDepth: depth,
				})
			}
		}
	}
}

func TestDeepHaloDepthsQ39(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 6, NZ: 6}
	for _, opt := range []OptLevel{OptGC, OptGCC, OptSIMD} {
		for _, depth := range []int{1, 2} {
			for _, ranks := range []int{1, 2} {
				runAndCompare(t, Config{
					Model: lattice.D3Q39(), N: n, Tau: 0.9, Steps: 5,
					Opt: opt, Ranks: ranks, Threads: 1, GhostDepth: depth,
				})
			}
		}
	}
}

func TestStepsNotMultipleOfDepth(t *testing.T) {
	n := grid.Dims{NX: 18, NY: 5, NZ: 5}
	for _, steps := range []int{1, 5, 7} {
		runAndCompare(t, Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: steps,
			Opt: OptGCC, Ranks: 3, Threads: 1, GhostDepth: 3,
		})
	}
}

func TestThreading(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 6, NZ: 8}
	for _, threads := range []int{2, 3, 4} {
		for _, opt := range []OptLevel{OptOrig, OptDH, OptGCC, OptSIMD} {
			runAndCompare(t, Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.85, Steps: 4,
				Opt: opt, Ranks: 2, Threads: threads, GhostDepth: depthFor(opt, 2),
			})
		}
	}
}

// depthFor picks a legal ghost depth for a level (Orig requires 1).
func depthFor(opt OptLevel, d int) int {
	if opt == OptOrig {
		return 1
	}
	return d
}

func TestAoSLayout(t *testing.T) {
	n := grid.Dims{NX: 10, NY: 5, NZ: 5}
	for _, opt := range []OptLevel{OptOrig, OptGC} {
		for _, ranks := range []int{1, 2} {
			runAndCompare(t, Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 4,
				Opt: opt, Ranks: ranks, Threads: 1, GhostDepth: 1, Layout: grid.AoS,
			})
		}
	}
}

func TestUnevenDecomposition(t *testing.T) {
	// 17 planes over 3 ranks: 6,6,5.
	n := grid.Dims{NX: 17, NY: 5, NZ: 5}
	for _, opt := range []OptLevel{OptOrig, OptGC, OptNBC, OptSIMD} {
		runAndCompare(t, Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.75, Steps: 5,
			Opt: opt, Ranks: 3, Threads: 1, GhostDepth: depthFor(opt, 2),
		})
	}
}

func TestConservation(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 6, NZ: 6}
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		init := waveInit(n)
		var mass0, mx0, my0, mz0 float64
		for ix := 0; ix < n.NX; ix++ {
			for iy := 0; iy < n.NY; iy++ {
				for iz := 0; iz < n.NZ; iz++ {
					rho, ux, uy, uz := init(ix, iy, iz)
					mass0 += rho
					mx0 += rho * ux
					my0 += rho * uy
					mz0 += rho * uz
				}
			}
		}
		res, err := Run(Config{
			Model: m, N: n, Tau: 0.8, Steps: 20,
			Opt: OptSIMD, Ranks: 2, Threads: 2, GhostDepth: 1, Init: init,
		})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		scale := mass0
		if math.Abs(res.Mass-mass0) > 1e-10*scale {
			t.Errorf("%s: mass %0.12f, want %0.12f", m.Name, res.Mass, mass0)
		}
		for _, c := range []struct {
			got, want float64
			name      string
		}{{res.MomX, mx0, "px"}, {res.MomY, my0, "py"}, {res.MomZ, mz0, "pz"}} {
			if math.Abs(c.got-c.want) > 1e-10*scale {
				t.Errorf("%s: %s = %g, want %g", m.Name, c.name, c.got, c.want)
			}
		}
	}
}

func TestEquilibriumIsFixedPoint(t *testing.T) {
	// A uniform equilibrium state must be exactly stationary.
	n := grid.Dims{NX: 8, NY: 6, NZ: 6}
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		res, err := Run(Config{
			Model: m, N: n, Tau: 1.0, Steps: 10,
			Opt: OptSIMD, Ranks: 2, Threads: 1, GhostDepth: 1,
			Init:      func(ix, iy, iz int) (float64, float64, float64, float64) { return 1.25, 0, 0, 0 },
			KeepField: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for v := 0; v < m.Q; v++ {
			want := 1.25 * m.W[v]
			for c := 0; c < n.Cells(); c++ {
				if math.Abs(res.Field.Data[res.Field.Idx(v, c)]-want) > 1e-13 {
					t.Fatalf("%s: uniform state drifted at v=%d", m.Name, v)
				}
			}
		}
	}
}

func TestGhostUpdatesAccounting(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 5, NZ: 5}
	m := lattice.D3Q19()
	// depth 1: no ghost recomputation.
	res1, err := Run(Config{Model: m, N: n, Tau: 0.8, Steps: 4, Opt: OptGC, Ranks: 2, GhostDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res1.GhostUpdates != 0 {
		t.Errorf("depth 1 ghost updates = %d, want 0", res1.GhostUpdates)
	}
	// depth 2, k=1: each cycle's first step computes 2·k extra planes per
	// rank; 4 steps = 2 cycles, 2 ranks.
	res2, err := Run(Config{Model: m, N: n, Tau: 0.8, Steps: 4, Opt: OptGC, Ranks: 2, GhostDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2 * 2 * 2 * n.PlaneCells())
	if res2.GhostUpdates != want {
		t.Errorf("depth 2 ghost updates = %d, want %d", res2.GhostUpdates, want)
	}
	// Message count drops with depth: depth 2 sends half as many messages.
	if m1, m2 := res1.PerRank[0].Messages, res2.PerRank[0].Messages; m2*2 != m1 {
		t.Errorf("messages: depth1=%d depth2=%d, want halving", m1, m2)
	}
	// Same total bytes either way (the paper: "the same amount of data is
	// passed" — here per unit time, since depth-2 halos are twice as wide).
	if b1, b2 := res1.PerRank[0].BytesSent, res2.PerRank[0].BytesSent; b1 != b2 {
		t.Errorf("bytes: depth1=%d depth2=%d, want equal", b1, b2)
	}
}

func TestMFlupsPositive(t *testing.T) {
	res, err := Run(Config{
		Model: lattice.D3Q19(), N: grid.Dims{NX: 16, NY: 8, NZ: 8},
		Tau: 0.8, Steps: 5, Opt: OptSIMD, Ranks: 2, GhostDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MFlups <= 0 {
		t.Errorf("MFlups = %g, want > 0", res.MFlups)
	}
	if res.InteriorUpdates != 5*16*8*8 {
		t.Errorf("InteriorUpdates = %d", res.InteriorUpdates)
	}
	if res.WallTime <= 0 {
		t.Errorf("WallTime = %v", res.WallTime)
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{Model: lattice.D3Q19(), N: grid.Dims{NX: 8, NY: 4, NZ: 4}, Tau: 0.8, Steps: 1}
	cases := []struct {
		name string
		mod  func(c *Config)
	}{
		{"nil model", func(c *Config) { c.Model = nil }},
		{"tau too small", func(c *Config) { c.Tau = 0.5 }},
		{"negative steps", func(c *Config) { c.Steps = -1 }},
		{"orig with depth", func(c *Config) { c.Opt = OptOrig; c.GhostDepth = 2 }},
		{"AoS with DH", func(c *Config) { c.Layout = grid.AoS; c.Opt = OptDH }},
		{"slab too small", func(c *Config) { c.Ranks = 4; c.GhostDepth = 3 }},
		{"tiny NY for Q39", func(c *Config) { c.Model = lattice.D3Q39() }},
		{"more ranks than planes", func(c *Config) { c.Ranks = 9 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mod(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
	if _, err := Run(base); err != nil {
		t.Errorf("base config rejected: %v", err)
	}
}

func TestOptLevelNames(t *testing.T) {
	for _, lvl := range Levels() {
		name := lvl.String()
		back, err := ParseOptLevel(name)
		if err != nil || back != lvl {
			t.Errorf("round trip failed for %v (%q)", lvl, name)
		}
	}
	if _, err := ParseOptLevel("turbo"); err == nil {
		t.Error("unknown level accepted")
	}
	if s := OptLevel(99).String(); s != "OptLevel(99)" {
		t.Errorf("unknown level String = %q", s)
	}
}

func TestCommSummary(t *testing.T) {
	res, err := Run(Config{
		Model: lattice.D3Q19(), N: grid.Dims{NX: 12, NY: 4, NZ: 4},
		Tau: 0.8, Steps: 4, Opt: OptNBC, Ranks: 4, GhostDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.CommSummary()
	if s.N != 4 || s.Min < 0 || s.Max < s.Min {
		t.Errorf("CommSummary = %+v", s)
	}
}

// TestD3Q27Solver: the generic solver machinery must handle the 27-velocity
// lattice end-to-end (all kernels are model-parametric).
func TestD3Q27Solver(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 5, NZ: 6}
	for _, opt := range []OptLevel{OptOrig, OptDH, OptGCC, OptSIMD} {
		runAndCompare(t, Config{
			Model: lattice.D3Q27(), N: n, Tau: 0.8, Steps: 4,
			Opt: opt, Ranks: 2, Threads: 1, GhostDepth: depthFor(opt, 2),
		})
	}
}
