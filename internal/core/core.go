// Package core implements the lattice Boltzmann solver of Randles et al.
// (IPDPS 2013): BGK collision with 2nd- (D3Q19) or 3rd-order (D3Q39)
// Hermite equilibria over a periodic cubic box, 1-D domain decomposition in
// x, deep-halo ghost cells, and the paper's ladder of optimizations from
// the naive implementation (Fig. 2) to the overlapped, separated
// ghost-collide, vector-restructured version (§V).
//
// Every optimization level is observationally equivalent: for identical
// configurations they produce the same distribution field up to floating
// point reassociation (~1e-12), which the test suite enforces across rank
// counts, thread counts, ghost depths and layouts.
package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/collision"
	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// OptLevel identifies a rung on the paper's optimization ladder (the x-axis
// of Fig. 8). Levels are cumulative: each includes all previous ones.
type OptLevel int

const (
	// OptOrig is the naive implementation (paper Fig. 2): no ghost cells,
	// blocking per-step exchange of the populations that crossed the rank
	// boundary during streaming, velocity-innermost branchy loops, and
	// divisions in the collision.
	OptOrig OptLevel = iota
	// OptGC adds ghost cells: a halo of depth·k planes per side exchanged
	// every depth steps (§V.A), still with blocking communication.
	OptGC
	// OptDH adds the data-handling optimizations (§V.B): loops reordered so
	// each velocity's contiguous block is traversed in memory order (the
	// streaming step becomes bulk rotated copies), temporaries hoisted, and
	// divisions replaced by reciprocal multiplications.
	OptDH
	// OptCF stands in for the paper's compiler-flag study (§V.C): the
	// generic per-velocity collision is replaced by per-model specialized
	// kernels with precomputed coefficient tables and opposite-pair
	// symmetric equilibrium evaluation — the transformations -O5/-qipa=2
	// performed for the authors, written out by hand since a pure-Go build
	// has no equivalent switch.
	OptCF
	// OptLoBr adds loop restructuring and branch reduction (§V.D):
	// per-velocity wrap index tables are precomputed so the inner streaming
	// loops contain no wrap arithmetic, and ghost/interior regions are
	// processed by separate loop nests.
	OptLoBr
	// OptNBC switches the halo exchange to non-blocking Irecv/Isend/Waitall
	// with receives posted early (§V.E).
	OptNBC
	// OptGCC separates the ghost-region computation from the domain of
	// interest (§V.F): border planes are computed and sent first, interior
	// work overlaps the messages in flight, and the ghost-adjacent rim is
	// finished after the receives complete.
	OptGCC
	// OptSIMD stands in for the double-hummer/QPX intrinsics work (§V.G):
	// the collision inner loops are restructured into 4-wide blocks with
	// fused multiply-add ordering and hoisted bounds, the shape hand-written
	// intrinsics impose. Pure Go has no SIMD intrinsics (see DESIGN.md);
	// the paper-scale effect of real intrinsics is modeled in perfsim.
	OptSIMD
)

// Levels lists all optimization levels in ladder order.
func Levels() []OptLevel {
	return []OptLevel{OptOrig, OptGC, OptDH, OptCF, OptLoBr, OptNBC, OptGCC, OptSIMD}
}

var optNames = map[OptLevel]string{
	OptOrig: "Orig", OptGC: "GC", OptDH: "DH", OptCF: "CF",
	OptLoBr: "LoBr", OptNBC: "NB-C", OptGCC: "GC-C", OptSIMD: "SIMD",
}

func (o OptLevel) String() string {
	if s, ok := optNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OptLevel(%d)", int(o))
}

// ParseOptLevel resolves a level name as printed in the paper's Fig. 8.
func ParseOptLevel(s string) (OptLevel, error) {
	for lvl, name := range optNames {
		if name == s {
			return lvl, nil
		}
	}
	return 0, fmt.Errorf("core: unknown optimization level %q", s)
}

// ParseGhostDepth parses a CLI ghost-depth argument: a single integer
// ("2") is the uniform deep-halo depth; a comma-separated triple
// ("2,1,1") sets per-axis depths (returned in axes, zero for the uniform
// form), which run on the multi-axis box stepper. Anything else — two
// values, four values, a trailing comma — is a spelled-out error rather
// than a silent fallthrough.
func ParseGhostDepth(s string) (uniform int, axes [3]int, err error) {
	parts := strings.Split(s, ",")
	switch len(parts) {
	case 1:
		uniform, err = strconv.Atoi(strings.TrimSpace(parts[0]))
		if err == nil && uniform < 1 {
			err = fmt.Errorf("depth %d < 1", uniform)
		}
		if err != nil {
			return 0, axes, fmt.Errorf("core: bad ghost depth %q: %v", s, err)
		}
		return uniform, axes, nil
	case 3:
		for a, p := range parts {
			axes[a], err = strconv.Atoi(strings.TrimSpace(p))
			if err == nil && axes[a] < 1 {
				err = fmt.Errorf("axis %d depth %d < 1", a, axes[a])
			}
			if err != nil {
				return 0, [3]int{}, fmt.Errorf("core: bad ghost depth %q: %v", s, err)
			}
		}
		// The uniform depth is the fallback for paths that take one value
		// (the slab stepper normalizes a uniform triple back to it).
		return axes[0], axes, nil
	}
	if strings.TrimSpace(parts[len(parts)-1]) == "" {
		return 0, axes, fmt.Errorf("core: bad ghost depth %q: trailing comma (want d or dx,dy,dz)", s)
	}
	return 0, axes, fmt.Errorf("core: bad ghost depth %q: %d values (want 1 uniform depth or 3 per-axis depths dx,dy,dz)", s, len(parts))
}

// StreamScheme selects the streaming storage scheme.
type StreamScheme int

const (
	// StreamTwoGrid is the classic two-field scheme: streaming copies every
	// population from f into fNew, collisions write back into f. Simple and
	// schedule-friendly, but each step moves 2·Q·8 bytes per cell and the
	// second field doubles the resident footprint.
	StreamTwoGrid StreamScheme = iota
	// StreamAA is the AA-pattern in-place scheme (Bailey et al. 2009): one
	// field, with streaming folded into the collision's reads and writes.
	// Time steps run in pairs. The first (transport) sub-step pulls each
	// cell's populations from the neighbor slots, collides, and pushes the
	// results into the *reversed* slots of the opposite neighbors: cell y's
	// read set {(v, y−c_v)} and write set {(opp(v), y+c_v)} are the same
	// exclusive slot star, so no other cell ever touches them and the
	// worker pool stays bit-exact (DESIGN.md §8/§9). The second (compact)
	// sub-step reads each cell's own slots reversed, collides, and writes
	// them back in normal arrangement — after which the array is
	// indistinguishable from the two-grid f. Halves memory traffic and
	// footprint; requires SoA, a ghost-cell level, and the split kernels.
	StreamAA
)

var streamNames = map[StreamScheme]string{
	StreamTwoGrid: "twogrid", StreamAA: "aa",
}

func (s StreamScheme) String() string {
	if n, ok := streamNames[s]; ok {
		return n
	}
	return fmt.Sprintf("StreamScheme(%d)", int(s))
}

// ParseStreamScheme resolves a CLI -stream argument.
func ParseStreamScheme(s string) (StreamScheme, error) {
	norm := strings.ToLower(strings.TrimSpace(s))
	for sc, name := range streamNames {
		if name == norm {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("core: unknown stream scheme %q (want aa or twogrid)", s)
}

// Balance selects the decomposition's cut-plane placement policy.
type Balance int

const (
	// BalanceVolume is the classic equal-extent split: every rank column
	// on an axis owns the same number of planes (±1).
	BalanceVolume Balance = iota
	// BalanceFluid places each decomposed axis's cut planes by recursive
	// bisection over the solid mask's per-plane fluid-cell histogram
	// (geom.Mask.PlaneFluids), balancing fluid sites — the paper's N_fl,
	// the quantity its performance model actually counts — instead of box
	// volume. The rank grid and neighbor topology are unchanged; only the
	// per-rank extents move, so the halo exchanger and steppers run
	// verbatim. Without a Solid mask it degrades to the volume split.
	BalanceFluid
)

var balanceNames = map[Balance]string{
	BalanceVolume: "volume", BalanceFluid: "fluid",
}

func (b Balance) String() string {
	if n, ok := balanceNames[b]; ok {
		return n
	}
	return fmt.Sprintf("Balance(%d)", int(b))
}

// ParseBalance resolves a CLI -balance argument.
func ParseBalance(s string) (Balance, error) {
	norm := strings.ToLower(strings.TrimSpace(s))
	if norm == "" {
		return BalanceVolume, nil
	}
	for b, name := range balanceNames {
		if name == norm {
			return b, nil
		}
	}
	return 0, fmt.Errorf("core: unknown balance policy %q (want volume or fluid)", s)
}

// InitFunc returns the initial macroscopic state at a global lattice point.
type InitFunc func(ix, iy, iz int) (rho, ux, uy, uz float64)

// UniformInit is the trivial initial condition: unit density at rest.
func UniformInit(ix, iy, iz int) (rho, ux, uy, uz float64) { return 1, 0, 0, 0 }

// Config describes one simulation.
type Config struct {
	Model *lattice.Model
	// N is the global interior size (periodic in all directions).
	N grid.Dims
	// Tau is the relaxation time of the hydrodynamic (shear) moments; the
	// kinematic viscosity is ν = c_s²(τ−½) for every collision operator.
	// Must exceed 0.5.
	Tau float64
	// Collision selects the collision operator. The zero value is the
	// paper's BGK, which dispatches to the specialized legacy kernels
	// bit-for-bit at every optimization level; TRT and MRT run through the
	// generic operator kernel (and therefore exclude the Fused path).
	Collision collision.Spec
	// Steps is the number of time steps.
	Steps int
	// Opt selects the optimization level.
	Opt OptLevel
	// GhostDepth is the deep-halo depth d: halo width d·k planes, exchanged
	// every d steps. Must be 1 for OptOrig (which has no ghost cells).
	GhostDepth int
	// GhostDepthAxes optionally sets the deep-halo depth per axis: axis a
	// keeps a halo of depth[a]·k cells per side, refreshed every depth[a]
	// steps, so a decomposition can spend halo width where its surface is
	// largest. The zero value applies GhostDepth to every axis; a uniform
	// non-zero value is normalized to GhostDepth. Any non-uniform setting
	// runs on the multi-axis box stepper (slab shapes included) and
	// therefore requires the SoA layout and a ghost-cell level.
	GhostDepthAxes [3]int
	// Ranks is the number of message-passing ranks ("MPI tasks").
	Ranks int
	// Decomp is the rank-grid shape (Px, Py, Pz) of the Cartesian domain
	// decomposition; its product must equal Ranks. The zero value selects
	// the paper's 1-D slab (Ranks, 1, 1), which keeps the specialized
	// slab stepper and its full optimization ladder. Multi-axis shapes
	// (pencil/block) require the SoA layout and a ghost-cell level (not
	// Orig); every other rung — the NB-C posted receives, the GC-C
	// per-axis compute/communication overlap, the fused kernel — runs on
	// them through the box schedule of schedule.go.
	Decomp [3]int
	// Threads is the number of worker threads per rank ("OpenMP threads").
	Threads int
	// Stream selects the streaming storage scheme. The zero value is the
	// classic two-grid layout; StreamAA keeps a single field and streams in
	// place via the AA pattern, halving f-memory traffic and footprint.
	// StreamAA always runs on the multi-axis box stepper (slab shapes
	// included), requires the SoA layout, a ghost-cell level, the split
	// kernels (no Fused — AA is inherently fused) and the per-box fixup
	// index (no FixupScan). Per-axis ghost depths are rounded up to the
	// next even value: exchanges happen only at step-pair boundaries, when
	// the field is in normal arrangement, so the existing pack/unpack maps
	// apply unchanged.
	Stream StreamScheme
	// Layout selects the field memory layout. The copy-based streaming
	// kernels (OptDH and above) require SoA; AoS is supported through OptGC
	// for the layout ablation.
	Layout grid.Layout
	// Fused selects the fused stream-collide kernel (one read + one write
	// of the field per step instead of three accesses) — the paper's §VII
	// future-work direction, implemented here as an extension. Requires
	// the SoA layout and a ghost-cell level (OptGC or above); runs on
	// every decomposition (the box form needs no wrap arithmetic at all)
	// but not with bounce-back walls or solids (no stream/collide split
	// for the fixups to run between).
	Fused bool
	// Boundary assigns conditions to the six global faces (walls, moving
	// walls, outflow, periodic — see BoundarySpec). Nil, and any spec
	// whose faces are all periodic, keeps the fully periodic domain. A
	// spec with non-periodic faces requires the SoA layout, a ghost-cell
	// level (not Orig) and the split kernels (no Fused), and always runs
	// on the multi-axis box stepper — including slab-shaped rank grids —
	// so the periodic slab ladder stays untouched.
	Boundary *BoundarySpec
	// Solid marks lattice points as solid walls (halfway bounce-back,
	// no-slip): a voxel mask over the global domain — built
	// programmatically (geom.FromFunc, geom.CylinderZ, ...) or loaded from
	// a voxel file (geom.Load). Its dims must equal N. Each rank slices
	// the global mask into its local bounce-back fixup index (periodic
	// axes wrap, coordinates beyond a non-wall bounded face clamp).
	// Applies to every optimization level except the fused kernel. Nil
	// means fully periodic fluid.
	Solid *geom.Mask
	// Balance selects the cut-plane placement policy of the domain
	// decomposition (see Balance). The zero value is the equal-extent
	// volume split; BalanceFluid balances fluid cells per rank over the
	// Solid mask's per-plane histograms.
	Balance Balance
	// Sparse enables sparse row-run traversal: each rank precomputes a
	// per-(x,y)-row RLE of fluid z-runs from its local slice of the Solid
	// mask and drives the row-blocked kernels over fluid runs only —
	// all-solid rows drop out of the worker pool's chunk batches, and
	// chunk weights switch from cell count to fluid-cell count so the
	// atomic queue load-balances inside the rank too. Equivalent to the
	// dense sweep to 1e-12 and bit-exact across thread counts; always
	// runs on the multi-axis box stepper (slab shapes included) with the
	// per-box fixup index (no FixupScan). Without a Solid mask every row
	// is one full-z run.
	Sparse bool
	// MeasureForces records the momentum-exchange force on the solid
	// geometry at every step: Result.ObstacleForce holds the per-step
	// force the fluid exerts on the voxel mask (drag/lift), FaceForce the
	// aggregate on the global boundary faces, both reduced across ranks.
	// Requires the split kernels (no Fused) and the per-box fixup index
	// (no FixupScan).
	MeasureForces bool
	// FixupScan selects the legacy whole-x-plane bounce-back fixup scan
	// instead of the per-box fixup index — the reference path the
	// equivalence tests and the lbmbench fixup experiment compare against.
	FixupScan bool
	// Accel is a constant body acceleration driving the flow (velocity-
	// shift forcing); zero means unforced.
	Accel [3]float64
	// Init provides the initial condition; nil means UniformInit.
	Init InitFunc
	// KeepField gathers the final global distribution field on completion
	// (for verification; costs memory proportional to the global field).
	KeepField bool
	// StepJitter, when positive, injects a deterministic per-rank delay of
	// up to StepJitter per step, reproducing the load imbalance whose
	// communication-time signature the paper plots in Fig. 9.
	StepJitter time.Duration
	// Observe enables the per-phase instrumentation recorder: each rank's
	// schedule is timed span by span (interior compute, per-axis rims,
	// pack, wire wait, unpack, fixup, face fill, sponge, forcing) into
	// Result.Observations. Purely observational — instrumented runs are
	// bit-identical to uninstrumented ones, and the disabled path costs a
	// nil check per span (fenced by BenchmarkRecorderOverhead).
	Observe bool
	// Trace additionally retains every recorded span for the Chrome
	// trace-event timeline (obs.WriteTrace); implies Observe. Memory
	// grows with steps × spans, so keep traced runs short.
	Trace bool
	// Fabric optionally supplies a pre-built fabric (e.g. with a message
	// delay model); it must have exactly Ranks ranks.
	Fabric *comm.Fabric
}

func (c *Config) init() error {
	if c.Model == nil {
		return fmt.Errorf("core: Config.Model is nil")
	}
	if c.Ranks < 1 {
		c.Ranks = 1
	}
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.GhostDepth < 1 {
		c.GhostDepth = 1
	}
	if c.GhostDepthAxes != ([3]int{}) {
		for a, d := range c.GhostDepthAxes {
			if d < 1 {
				return fmt.Errorf("core: GhostDepthAxes[%d] = %d, want >= 1 on every axis (or the zero value)", a, d)
			}
		}
		if d := c.GhostDepthAxes; d[0] == d[1] && d[1] == d[2] {
			// Uniform per-axis depths are the scalar case: normalize so
			// slab shapes keep the specialized slab stepper.
			c.GhostDepth = d[0]
			c.GhostDepthAxes = [3]int{}
		}
	}
	if c.Init == nil {
		c.Init = UniformInit
	}
	if c.Trace {
		c.Observe = true
	}
	if c.Steps < 0 {
		return fmt.Errorf("core: negative Steps %d", c.Steps)
	}
	if c.Tau <= 0.5 {
		return fmt.Errorf("core: Tau %g <= 0.5 is unstable", c.Tau)
	}
	if err := c.Collision.Validate(); err != nil {
		return err
	}
	if !c.Collision.IsBGK() && c.Fused {
		return fmt.Errorf("core: the fused kernel is specialized for BGK; %s needs the split operator path (disable Fused)", c.Collision)
	}
	k := c.Model.MaxSpeed
	if c.Opt == OptOrig && c.GhostDepth != 1 {
		return fmt.Errorf("core: OptOrig has no ghost cells; GhostDepth must be 1, got %d", c.GhostDepth)
	}
	if c.Layout == grid.AoS && c.Opt > OptGC {
		return fmt.Errorf("core: the AoS layout supports only Orig and GC levels (the copy-streaming kernels require SoA)")
	}
	if c.Fused {
		if c.Opt == OptOrig {
			return fmt.Errorf("core: the fused kernel requires ghost cells (OptGC or above)")
		}
		if c.Layout != grid.SoA {
			return fmt.Errorf("core: the fused kernel requires the SoA layout")
		}
		if c.Solid != nil {
			return fmt.Errorf("core: solid obstacles need the split stream/collide path (bounce-back runs between them); disable Fused")
		}
		if c.MeasureForces {
			return fmt.Errorf("core: momentum-exchange forces live on the bounce-back links; disable Fused")
		}
	}
	if c.Solid != nil {
		if d := c.Solid.D; d != c.N {
			return fmt.Errorf("core: solid mask dims %v != domain %v", d, c.N)
		}
	}
	if c.MeasureForces && c.FixupScan {
		return fmt.Errorf("core: force measurement requires the per-box fixup index (disable FixupScan)")
	}
	if c.Sparse && c.FixupScan {
		return fmt.Errorf("core: sparse traversal drives the per-box fixup index over fluid runs; disable FixupScan")
	}
	if c.Stream == StreamAA {
		if c.Opt == OptOrig {
			return fmt.Errorf("core: AA streaming requires ghost cells (OptGC or above)")
		}
		if c.Layout != grid.SoA {
			return fmt.Errorf("core: AA streaming requires the SoA layout")
		}
		if c.Fused {
			return fmt.Errorf("core: AA streaming is inherently fused (one field pass per sub-step); disable Fused")
		}
		if c.FixupScan {
			return fmt.Errorf("core: AA streaming applies bounce-back inside its kernels via the per-box fixup index; disable FixupScan")
		}
		if c.Boundary != nil {
			// Two open-bounded axes make corner ghost fills fills-of-fills
			// in the two-grid reference; the AA slot algebra cannot
			// reproduce that mid-pair (DESIGN.md §9).
			openAxes := 0
			for a := 0; a < 3; a++ {
				for s := 0; s < 2; s++ {
					if openFace(c.Boundary.Faces[a][s].Kind) {
						openAxes++
						break
					}
				}
			}
			if openAxes > 1 {
				return fmt.Errorf("core: AA streaming supports open faces (outflow/pressure outlet) on at most one axis, got %d", openAxes)
			}
		}
	}
	if c.MeasureForces && c.Layout != grid.SoA {
		return fmt.Errorf("core: force measurement requires the SoA layout")
	}
	if c.N.NY < 2*k || c.N.NZ < 2*k {
		return fmt.Errorf("core: NY/NZ (%d/%d) must be >= 2k = %d for %s", c.N.NY, c.N.NZ, 2*k, c.Model.Name)
	}
	if err := c.Boundary.validate(); err != nil {
		return err
	}
	if c.Boundary != nil && c.Boundary.BoundedAxes() == ([3]bool{}) {
		// A fully periodic spec is the default domain: drop it so the
		// specialized slab stepper keeps handling slab shapes.
		c.Boundary = nil
	}
	if c.Decomp == ([3]int{}) {
		c.Decomp = [3]int{c.Ranks, 1, 1}
	}
	if got := c.Decomp[0] * c.Decomp[1] * c.Decomp[2]; got != c.Ranks {
		return fmt.Errorf("core: decomposition %dx%dx%d covers %d ranks, config has %d",
			c.Decomp[0], c.Decomp[1], c.Decomp[2], got, c.Ranks)
	}
	dec, err := c.decomposition()
	if err != nil {
		return err
	}
	if c.slabPath(dec) {
		w := c.GhostDepth * k
		if minOwn := dec.MinOwn(0); minOwn < w {
			return fmt.Errorf("core: smallest slab (%d planes) < halo width %d (depth %d × k %d)", minOwn, w, c.GhostDepth, k)
		}
	} else {
		// Multi-axis decompositions, all bounded domains and per-axis
		// ghost depths use the box stepper of cart.go.
		if c.Opt == OptOrig {
			return fmt.Errorf("core: the no-ghost Orig protocol is periodic-slab-only; use a ghost-cell level")
		}
		if c.Layout != grid.SoA {
			return fmt.Errorf("core: the box stepper (multi-axis, bounded or per-axis-depth runs) requires the SoA layout")
		}
		if c.Fused && c.Boundary != nil {
			return fmt.Errorf("core: bounce-back boundaries need the split stream/collide path; disable Fused")
		}
		depths := c.ghostDepths()
		if c.Stream == StreamAA {
			// AA exchanges only at pair boundaries: effective depths round
			// up to even, and the halo must cover them.
			depths = aaDepths(depths)
		}
		for a := 0; a < 3; a++ {
			w := depths[a] * k
			if mo := dec.MinOwn(a); mo < w {
				return fmt.Errorf("core: axis %d smallest block (%d cells) < halo width %d (depth %d × k %d)", a, mo, w, depths[a], k)
			}
		}
	}
	if c.Fabric != nil && c.Fabric.N() != c.Ranks {
		return fmt.Errorf("core: supplied fabric has %d ranks, config wants %d", c.Fabric.N(), c.Ranks)
	}
	return nil
}

// decomposition builds the run's domain decomposition: equal-extent
// blocks under BalanceVolume, fluid-cell-balanced cuts (per-axis
// recursive bisection over the mask's plane histograms) under
// BalanceFluid with a solid mask. Single-column axes never need cuts.
func (c *Config) decomposition() (decomp.Cartesian, error) {
	global := [3]int{c.N.NX, c.N.NY, c.N.NZ}
	bounded := c.Boundary.BoundedAxes()
	if c.Balance == BalanceFluid && c.Solid != nil {
		var weights [3][]int
		for a := 0; a < 3; a++ {
			if c.Decomp[a] > 1 {
				weights[a] = c.Solid.PlaneFluids(a)
			}
		}
		return decomp.NewCartesianWeighted(global, c.Decomp, bounded, weights)
	}
	return decomp.NewCartesianBounded(global, c.Decomp, bounded)
}

// ghostDepths resolves the per-axis deep-halo depths (after init's
// normalization a non-zero GhostDepthAxes is non-uniform).
func (c *Config) ghostDepths() [3]int {
	if c.GhostDepthAxes != ([3]int{}) {
		return c.GhostDepthAxes
	}
	return [3]int{c.GhostDepth, c.GhostDepth, c.GhostDepth}
}

// slabPath reports whether the run uses the specialized periodic slab
// stepper: a 1-D shape with a fully periodic domain, one uniform ghost
// depth and two-grid streaming. Everything else is the box stepper.
func (c *Config) slabPath(dec decomp.Cartesian) bool {
	return dec.IsSlab() && c.Boundary == nil && c.GhostDepthAxes == ([3]int{}) &&
		c.Stream != StreamAA && !c.Sparse
}

// aaDepths rounds per-axis deep-halo depths up to the next even value:
// the AA pattern consumes 2k cells of ghost validity per step pair and
// exchanges only at pair boundaries, so its refresh cadence must be even.
func aaDepths(d [3]int) [3]int {
	for a := range d {
		if d[a]%2 != 0 {
			d[a]++
		}
	}
	return d
}

// RankStats reports per-rank communication behaviour.
type RankStats struct {
	CommTime  time.Duration
	BytesSent int64
	Messages  int64
}

// Result summarizes a completed run.
type Result struct {
	// WallTime is the longest per-rank time across the stepping loop.
	WallTime time.Duration
	// MFlups is the paper's metric: steps × interior cells / wall time /1e6
	// (Eq. 4).
	MFlups float64
	// InteriorUpdates counts interior (fluid) cell updates: steps × N_fl.
	InteriorUpdates int64
	// GhostUpdates counts the extra cell updates spent recomputing ghost
	// regions under the deep-halo schedule (the computational cost the
	// paper trades against message reduction).
	GhostUpdates int64
	// Mass and MomX/Y/Z are globally summed conserved quantities at the end.
	Mass, MomX, MomY, MomZ float64
	// Decomp is the rank-grid shape the run used.
	Decomp [3]int
	// HaloAxisBytes is the per-rank halo payload sent along each axis per
	// full exchange (max over ranks): the per-axis communication surface
	// that distinguishes slab, pencil and block decompositions. Zero on
	// undecomposed axes and for the no-ghost Orig protocol.
	HaloAxisBytes [3]int64
	// ObstacleForce is the per-step momentum-exchange force the fluid
	// exerts on the voxel mask (Config.Solid), summed over the mask's
	// links and reduced across ranks; length Steps when
	// Config.MeasureForces is set, else nil. Drag is the component along
	// the mean flow, lift the transverse one.
	ObstacleForce [][3]float64
	// FaceForce is the same measurement aggregated over the global
	// boundary faces (walls, moving walls, inlets).
	FaceForce [][3]float64
	// PerRank holds communication statistics per rank.
	PerRank []RankStats
	// Observations holds each rank's per-phase timing breakdown when
	// Config.Observe was set, else nil (obs.WriteTrace and core.NewReport
	// consume it).
	Observations []obs.RankObservation
	// Field is the gathered global distribution (layout SoA) when
	// Config.KeepField was set, else nil.
	Field *grid.Field
}

// CommSummary returns min/median/max of per-rank communication times in
// seconds (the quantity of the paper's Fig. 9).
func (r *Result) CommSummary() metrics.Summary {
	ds := make([]time.Duration, len(r.PerRank))
	for i, s := range r.PerRank {
		ds[i] = s.CommTime
	}
	return metrics.SummarizeDurations(ds)
}

// Run executes the configured simulation and returns its result. The
// fully periodic 1-D slab shape dispatches to the specialized slab
// stepper (the paper's full optimization ladder); pencil and block shapes
// — and every run with non-periodic global boundaries — use the
// generalized multi-axis stepper of cart.go.
func Run(cfg Config) (*Result, error) {
	if err := cfg.init(); err != nil {
		return nil, err
	}
	dec, err := cfg.decomposition()
	if err != nil {
		return nil, err
	}
	fab := cfg.Fabric
	if fab == nil {
		fab = comm.NewFabric(cfg.Ranks)
	}

	walls := make([]time.Duration, cfg.Ranks)
	sums := make([][5]float64, cfg.Ranks) // mass, momx, momy, momz, ghost updates
	blocks := make([][]float64, cfg.Ranks)
	axisB := make([][3]int64, cfg.Ranks)
	slab := cfg.slabPath(dec)
	var forceTotals []float64
	var obsns []obs.RankObservation
	var epoch time.Time
	if cfg.Observe {
		obsns = make([]obs.RankObservation, cfg.Ranks)
		// One epoch shared by every rank's recorder, so trace timestamps
		// align on a single timeline.
		epoch = time.Now()
	}

	runErr := fab.Run(func(r *comm.Rank) error {
		var st interface {
			initField()
			run()
			close()
			ownedSums() (mass, mx, my, mz float64)
			ghosts() int64
			gather() []float64
			axisBytes() [3]int64
			forceSeries() []float64
			setRecorder(*obs.Recorder)
			observation() obs.RankObservation
		}
		var err error
		if slab {
			st, err = newStepper(&cfg, dec, r)
		} else {
			st, err = newCartStepper(&cfg, dec, r)
		}
		if err != nil {
			return err
		}
		defer st.close()
		if cfg.Observe {
			st.setRecorder(obs.New(r.ID, epoch, cfg.Trace))
		}
		st.initField()
		r.Barrier()
		t0 := time.Now()
		st.run()
		walls[r.ID] = time.Since(t0)
		r.Barrier()

		mass, mx, my, mz := st.ownedSums()
		sums[r.ID] = [5]float64{mass, mx, my, mz, float64(st.ghosts())}
		axisB[r.ID] = st.axisBytes()
		if cfg.Observe {
			o := st.observation()
			o.Rank = r.ID
			o.CommSeconds = r.CommTime().Seconds()
			o.BytesSent = r.BytesSent()
			o.Messages = r.MessagesSent()
			o.FluidCells = rankFluids(&cfg, dec, r.ID)
			obsns[r.ID] = o
		}
		if cfg.MeasureForces {
			// Each rank holds the partial force of its owned links; the
			// fabric reduction makes every step's total
			// decomposition-independent (the per-step entries differ only
			// by float summation order across shapes).
			tot := r.AllReduceSum(st.forceSeries())
			if r.ID == 0 {
				forceTotals = tot
			}
		}
		if cfg.KeepField {
			blocks[r.ID] = st.gather()
		}
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}

	res := &Result{PerRank: make([]RankStats, cfg.Ranks), Decomp: cfg.Decomp, Observations: obsns}
	for r := 0; r < cfg.Ranks; r++ {
		if walls[r] > res.WallTime {
			res.WallTime = walls[r]
		}
		res.Mass += sums[r][0]
		res.MomX += sums[r][1]
		res.MomY += sums[r][2]
		res.MomZ += sums[r][3]
		res.GhostUpdates += int64(sums[r][4])
	}
	for r, ct := range fab.CommTimes() {
		res.PerRank[r].CommTime = ct
	}
	for r, b := range fab.BytesSent() {
		res.PerRank[r].BytesSent = b
	}
	for r, m := range fab.MessagesSent() {
		res.PerRank[r].Messages = m
	}
	for _, ab := range axisB {
		for a := 0; a < 3; a++ {
			if ab[a] > res.HaloAxisBytes[a] {
				res.HaloAxisBytes[a] = ab[a]
			}
		}
	}
	if cfg.MeasureForces {
		res.ObstacleForce = make([][3]float64, cfg.Steps)
		res.FaceForce = make([][3]float64, cfg.Steps)
		for s := 0; s < cfg.Steps && (s+1)*2*3 <= len(forceTotals); s++ {
			o := forceTotals[s*6:]
			res.ObstacleForce[s] = [3]float64{o[0], o[1], o[2]}
			res.FaceForce[s] = [3]float64{o[3], o[4], o[5]}
		}
	}
	fluid := FluidCells(cfg.N, cfg.Solid)
	res.InteriorUpdates = int64(cfg.Steps) * int64(fluid)
	res.MFlups = metrics.MFlups(cfg.Steps, fluid, res.WallTime)
	if cfg.KeepField {
		if slab {
			res.Field = assembleField(&cfg, dec, blocks)
		} else {
			res.Field = assembleCart(&cfg, dec, blocks)
		}
	}
	return res, nil
}

// rankFluids returns the number of fluid cells in rank's owned box — the
// load-balance view of a decomposition on a masked domain (the whole box
// volume when there is no mask).
func rankFluids(cfg *Config, dec decomp.Cartesian, rank int) int64 {
	var lo, hi [3]int
	vol := int64(1)
	for a := 0; a < 3; a++ {
		s, n := dec.Own(rank, a)
		lo[a], hi[a] = s, s+n
		vol *= int64(n)
	}
	if cfg.Solid == nil {
		return vol
	}
	return int64(cfg.Solid.FluidsInBox(lo, hi))
}

// assembleField glues the per-rank owned slabs into one global SoA field.
// Slabs are packed velocity-major (see stepper.ownedSlab).
func assembleField(cfg *Config, dec decomp.Cartesian, slabs [][]float64) *grid.Field {
	g := grid.NewField(cfg.Model.Q, cfg.N, grid.SoA)
	plane := cfg.N.PlaneCells()
	for r := 0; r < cfg.Ranks; r++ {
		start, size := dec.Own(r, decomp.AxisX)
		src := slabs[r]
		n := size * plane
		for v := 0; v < cfg.Model.Q; v++ {
			blk := g.V(v)
			copy(blk[start*plane:start*plane+n], src[v*n:(v+1)*n])
		}
	}
	return g
}
