package core

import (
	"math"
	"testing"

	"repro/internal/collision"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// aaVariant maps a two-grid config onto the nearest AA-legal one: the AA
// scheme is SoA-only, needs ghost cells, and is inherently fused, so the
// Orig, AoS and Fused knobs are normalized away. The returned pair
// differs ONLY in the Stream field — the comparison isolates the storage
// scheme.
func aaVariant(cfg Config) (tg, aa Config) {
	if cfg.Opt == OptOrig {
		cfg.Opt = OptGC
	}
	cfg.Layout = grid.SoA
	cfg.Fused = false
	tg = cfg
	tg.Stream = StreamTwoGrid
	aa = cfg
	aa.Stream = StreamAA
	return tg, aa
}

// fluidMaxAbsDiff compares two gathered fields over fluid cells only.
// Solid cells are excluded deliberately: neither scheme's kernels define
// their contents (the two-grid path streams stale values through them,
// the AA path leaves pulled-but-never-scattered slots behind), so the
// cross-scheme contract covers exactly the cells the physics does.
func fluidMaxAbsDiff(a, b *grid.Field, solid *geom.Mask) float64 {
	if solid == nil {
		return grid.MaxAbsDiff(a, b)
	}
	var max float64
	for v := 0; v < a.Q; v++ {
		for ix := 0; ix < a.D.NX; ix++ {
			for iy := 0; iy < a.D.NY; iy++ {
				for iz := 0; iz < a.D.NZ; iz++ {
					if solid.At(ix, iy, iz) {
						continue
					}
					if d := math.Abs(a.At(v, ix, iy, iz) - b.At(v, ix, iy, iz)); d > max {
						max = d
					}
				}
			}
		}
	}
	return max
}

// TestAAMatchesTwoGrid: the AA-pattern single-field scheme must reproduce
// the two-grid reference to reassociation tolerance on every stepper path
// it supports — the TestThreadCountInvariance path matrix normalized to
// AA-legal configs (slab shapes route to the box stepper under AA). Odd
// step counts exercise the star-arrangement recovery of the final gather.
func TestAAMatchesTwoGrid(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 16, NZ: 16}
	profile := func(gx, gy, gz int) [3]float64 {
		return [3]float64{0.02 * float64(gy%5) / 4, 0, 0}
	}
	solidFn := func(ix, iy, iz int) bool {
		dx, dy := float64(ix)-9, float64(iy)-8.3
		return dx*dx+dy*dy < 6.5
	}
	cases := []struct {
		name  string
		cfg   Config
		solid *geom.Mask
	}{
		{"slab-bgk-simd", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptSIMD, Ranks: 1, GhostDepth: 1,
		}, nil},
		{"slab-gcc-2r", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptGCC, Ranks: 2, GhostDepth: 1, Fused: true,
		}, nil},
		{"slab-trt-gcc", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 5,
			Opt: OptGCC, Ranks: 2, GhostDepth: 1,
			Collision: collision.Spec{Kind: collision.TRT},
		}, nil},
		{"pencil-cavity-trt-deep", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 5,
			Opt: OptGCC, Ranks: 4, Decomp: [3]int{2, 2, 1}, GhostDepth: 2,
			Collision: collision.Spec{Kind: collision.TRT},
			Boundary:  CavitySpec(0.05),
		}, nil},
		{"block-masked-mrt-gcc", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 5,
			Opt: OptGCC, Ranks: 8, Decomp: [3]int{2, 2, 2}, GhostDepth: 1,
			Collision: collision.Spec{Kind: collision.MRT},
			Solid:     geom.FromFunc(n, solidFn),
		}, geom.FromFunc(n, solidFn)},
		{"pencil-inlet-profile-bgk", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptGCC, Ranks: 4, Decomp: [3]int{2, 2, 1}, GhostDepth: 1,
			Boundary: InletChannelSpec(0.02, profile),
		}, nil},
		{"block-periodic-q39", Config{
			Model: lattice.D3Q39(), N: n, Tau: 0.8, Steps: 4,
			Opt: OptSIMD, Ranks: 8, Decomp: [3]int{2, 2, 2}, GhostDepth: 1, Fused: true,
		}, nil},
		{"slab-gc-2r", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptGC, Ranks: 2, GhostDepth: 1, Layout: grid.AoS,
		}, nil},
		{"slab-orig-normalized", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 5,
			Opt: OptOrig, Ranks: 2, GhostDepth: 1,
		}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tg, aa := aaVariant(tc.cfg)
			tg.Threads = 4
			aa.Threads = 4
			a := runField(t, tg)
			b := runField(t, aa)
			if d := fluidMaxAbsDiff(a, b, tc.solid); d > eqTol {
				t.Errorf("AA vs two-grid: max |Δf| = %g (tol %g)", d, eqTol)
			}
		})
	}
}

// TestAAOracle: AA against the independent textbook solver directly, at
// even and odd step counts (odd leaves the array star-arranged and the
// final gather must undo the transport push on the fly).
func TestAAOracle(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 8, NZ: 6}
	for _, steps := range []int{4, 5} {
		runAndCompare(t, Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: steps,
			Opt: OptSIMD, Ranks: 2, Threads: 2, GhostDepth: 1,
			Stream: StreamAA,
		})
	}
}

// TestAAThreadInvariance: AA transport writes each slot from exactly one
// cell (the slot star is the cell's own read set), so chunking must stay
// bit-exact like every other kernel.
func TestAAThreadInvariance(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 16, NZ: 16}
	cyl := geom.CylinderZ(n, 8, 8.3, 2.5)
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 5,
		Opt: OptGCC, Ranks: 4, Decomp: [3]int{2, 2, 1}, GhostDepth: 1,
		Boundary: InletChannelSpec(0.05, nil), Solid: cyl,
		Stream: StreamAA,
	}
	ref := base
	ref.Threads = 1
	thr := base
	thr.Threads = 8
	a := runField(t, ref)
	b := runField(t, thr)
	if d := grid.MaxAbsDiff(a, b); d != 0 {
		t.Errorf("AA threads=8 differs from threads=1: max |Δf| = %g, want bit-exact", d)
	}
}

// TestAAForceSeries: the AA momentum-exchange accumulation reads the
// pair-start state directly (even entries) and recovers the pushed
// bounce value (odd entries, one rounding from the two-grid quantity
// when the link carries a Zou-He delta), so the per-step series must
// track the two-grid one to tolerance, at full series length.
func TestAAForceSeries(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 16, NZ: 4}
	cyl := geom.CylinderZ(n, 8, 8.3, 2.5)
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 10,
		Opt: OptGCC, Ranks: 4, Decomp: [3]int{2, 2, 1}, GhostDepth: 1,
		Boundary: InletChannelSpec(0.05, nil), Solid: cyl,
		MeasureForces: true, Init: waveInit(n), Threads: 4,
	}
	tg, aa := aaVariant(base)
	want, err := Run(tg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(aa)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ObstacleForce) != len(want.ObstacleForce) {
		t.Fatalf("force series length %d, want %d", len(got.ObstacleForce), len(want.ObstacleForce))
	}
	const fTol = 1e-11
	for s := range want.ObstacleForce {
		for a := 0; a < 3; a++ {
			if d := math.Abs(got.ObstacleForce[s][a] - want.ObstacleForce[s][a]); d > fTol {
				t.Errorf("step %d axis %d: obstacle force %g != %g (|Δ| = %g)",
					s, a, got.ObstacleForce[s][a], want.ObstacleForce[s][a], d)
			}
			if d := math.Abs(got.FaceForce[s][a] - want.FaceForce[s][a]); d > fTol {
				t.Errorf("step %d axis %d: face force %g != %g (|Δ| = %g)",
					s, a, got.FaceForce[s][a], want.FaceForce[s][a], d)
			}
		}
	}
}

// TestAAMassConservation: on closed domains (periodic, cavity) both
// schemes must conserve total fluid mass to accumulated rounding —
// collision conserves per-cell mass, streaming and bounce-back only move
// it. A scheme bug that drops or duplicates a slot shows up here first.
func TestAAMassConservation(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 12, NZ: 8}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"periodic", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 6,
			Opt: OptSIMD, Ranks: 2, Threads: 2, GhostDepth: 1,
		}},
		{"cavity", Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 6,
			Opt: OptGCC, Ranks: 2, Threads: 2, GhostDepth: 1,
			Boundary: CavitySpec(0.03),
		}},
	}
	mass := func(f *grid.Field) float64 {
		var m float64
		for _, v := range f.Data {
			m += v
		}
		return m
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, scheme := range []StreamScheme{StreamTwoGrid, StreamAA} {
				cfg := tc.cfg
				cfg.Stream = scheme
				cfg.KeepField = true
				cfg.Init = waveInit(cfg.N)
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				ref := refSolver(cfg.Model, cfg.N, cfg.Tau, 0, cfg.Init)
				m0, m1 := mass(ref), mass(res.Field)
				if drift := math.Abs(m1-m0) / m0; drift > 1e-12 {
					t.Errorf("%s: relative mass drift %g over %d steps (m0=%g, m1=%g)",
						scheme, drift, cfg.Steps, m0, m1)
				}
			}
		})
	}
}

// TestAASingleField: the whole point of the scheme — the advected copy is
// gone. White-box check plus the config-validation fences.
func TestAASingleField(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 12, NZ: 8}
	cs := buildCartStepper(t, Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 2,
		Opt: OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1,
		Stream: StreamAA, Boundary: CavitySpec(0.02),
	})
	if cs.fadv != nil {
		t.Error("AA stepper allocated a second field; the footprint win is gone")
	}
	if !cs.aa {
		t.Error("AA stepper not flagged aa")
	}
	tg := buildCartStepper(t, Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 2,
		Opt: OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1,
		Boundary: CavitySpec(0.02),
	})
	if tg.fadv == nil {
		t.Error("two-grid stepper lost its advected field")
	}

	bad := []Config{
		{Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 2, Opt: OptOrig,
			Ranks: 1, Threads: 1, GhostDepth: 1, Stream: StreamAA},
		{Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 2, Opt: OptSIMD,
			Ranks: 1, Threads: 1, GhostDepth: 1, Stream: StreamAA, Fused: true},
		{Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 2, Opt: OptGC,
			Ranks: 1, Threads: 1, GhostDepth: 1, Stream: StreamAA, Layout: grid.AoS},
	}
	for i, cfg := range bad {
		if err := cfg.init(); err == nil {
			t.Errorf("bad AA config %d validated", i)
		}
	}
	// Open faces on two distinct axes: corner fills are fills-of-fills in
	// the two-grid reference, out of AA's reach — must be rejected.
	var spec BoundarySpec
	spec.Faces[0][0] = Face{Kind: BCInlet, U: [3]float64{0.02, 0, 0}}
	spec.Faces[0][1] = Face{Kind: BCPressureOutlet}
	spec.Faces[1][0] = Face{Kind: BCWall}
	spec.Faces[1][1] = Face{Kind: BCOutflow}
	twoOpen := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 2, Opt: OptGCC,
		Ranks: 1, Threads: 1, GhostDepth: 1, Stream: StreamAA, Boundary: &spec,
	}
	if err := twoOpen.init(); err == nil {
		t.Error("AA config with open faces on two axes validated")
	}
}

// TestParseStreamScheme: flag-level parsing, including rejection wording.
func TestParseStreamScheme(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want StreamScheme
		ok   bool
	}{
		{"aa", StreamAA, true},
		{"twogrid", StreamTwoGrid, true},
		{"AA", StreamAA, true},
		{"esotwist", 0, false},
		{"", 0, false},
	} {
		got, err := ParseStreamScheme(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseStreamScheme(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseStreamScheme(%q) accepted", tc.in)
		}
	}
}
