package core

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/lattice"
)

// Property tests for the box schedule planner: the geometry guarantees
// the phased overlapped stepper relies on, checked exhaustively on small
// domains. Cells are identified by local coordinates; boxes come from a
// first-of-cycle destination (the largest, most rim-heavy case).

// planCase enumerates a geometry for the planner tests.
type planCase struct {
	own, w   [3]int
	k        int
	stale    [3]bool
	packLate [3]bool
}

func planCases() []planCase {
	var cases []planCase
	for _, k := range []int{1, 3} {
		for _, depth := range [][3]int{{1, 1, 1}, {2, 1, 1}, {1, 2, 3}, {2, 2, 2}, {3, 1, 2}} {
			for _, own := range [][3]int{{4, 5, 6}, {9, 4, 7}, {3, 3, 3}} {
				var w [3]int
				ok := true
				for a := 0; a < 3; a++ {
					w[a] = depth[a] * k
					if own[a] < w[a] {
						ok = false // the exchanger's nearest-neighbor constraint
					}
				}
				if !ok {
					continue
				}
				for staleBits := 0; staleBits < 8; staleBits++ {
					var stale [3]bool
					for a := 0; a < 3; a++ {
						stale[a] = staleBits&(1<<a) != 0
					}
					// packLate marks stale axes after the first: the shape
					// the overlapped stepper uses (plus the all-false slab
					// form, covered when only one axis is stale).
					var packLate [3]bool
					seen := false
					for a := 0; a < 3; a++ {
						if stale[a] {
							packLate[a] = seen
							seen = true
						}
					}
					cases = append(cases, planCase{own: own, w: w, k: k, stale: stale, packLate: packLate})
				}
			}
		}
	}
	return cases
}

// firstStepDest returns the destination box of the first step of a cycle
// (ext[a] = depth[a]·k = w[a] on every axis).
func firstStepDest(own, w [3]int, k int) box {
	var b box
	for a := 0; a < 3; a++ {
		b.lo[a] = w[a] - (w[a] - k)
		b.hi[a] = w[a] + own[a] + (w[a] - k)
	}
	return b
}

// forBox visits every cell of a box.
func forBox(b box, f func(c [3]int)) {
	for x := b.lo[0]; x < b.hi[0]; x++ {
		for y := b.lo[1]; y < b.hi[1]; y++ {
			for z := b.lo[2]; z < b.hi[2]; z++ {
				f([3]int{x, y, z})
			}
		}
	}
}

func inBox(c [3]int, b box) bool {
	for a := 0; a < 3; a++ {
		if c[a] < b.lo[a] || c[a] >= b.hi[a] {
			return false
		}
	}
	return true
}

// TestPlanStepTiling: the interior box plus the per-axis rim slabs tile
// the destination box exactly — every cell covered once — for both the
// stream and the collide families.
func TestPlanStepTiling(t *testing.T) {
	for _, tc := range planCases() {
		dest := firstStepDest(tc.own, tc.w, tc.k)
		p := planStep(dest, tc.own, tc.w, tc.k, tc.stale, tc.packLate)
		for fam, boxes := range [2][]box{
			append([]box{p.interiorS}, rimBoxes(p, true)...),
			append([]box{p.interiorC}, rimBoxes(p, false)...),
		} {
			count := map[[3]int]int{}
			for _, b := range boxes {
				forBox(b, func(c [3]int) { count[c]++ })
			}
			bad := 0
			forBox(dest, func(c [3]int) {
				if count[c] != 1 {
					bad++
				}
			})
			total := 0
			for _, n := range count {
				total += n
			}
			if bad != 0 || total != dest.cells() {
				t.Fatalf("case %+v family %d: %d cells mis-covered (total %d, dest %d)",
					tc, fam, bad, total, dest.cells())
			}
		}
	}
}

// rimBoxes collects the plan's stream (or collide) rim slabs of every
// stale axis.
func rimBoxes(p stepPlan, stream bool) []box {
	var out []box
	for a := 0; a < 3; a++ {
		if !p.stale[a] {
			continue
		}
		if stream {
			out = append(out, p.phases[a].streamRims[0], p.phases[a].streamRims[1])
		} else {
			out = append(out, p.phases[a].collideRims[0], p.phases[a].collideRims[1])
		}
	}
	return out
}

// TestPlanStepInteriorAvoidsStaleGhosts: no input of an interior-box
// stream destination (any offset within the lattice speed k) touches a
// stale axis's ghost layers — the geometric form of the poison-value
// guarantee.
func TestPlanStepInteriorAvoidsStaleGhosts(t *testing.T) {
	for _, tc := range planCases() {
		dest := firstStepDest(tc.own, tc.w, tc.k)
		p := planStep(dest, tc.own, tc.w, tc.k, tc.stale, tc.packLate)
		forBox(p.interiorS, func(c [3]int) {
			for a := 0; a < 3; a++ {
				if !tc.stale[a] {
					continue
				}
				if c[a]-tc.k < tc.w[a] || c[a]+tc.k >= tc.w[a]+tc.own[a] {
					t.Fatalf("case %+v: interior cell %v reaches stale axis %d ghosts", tc, c, a)
				}
			}
		})
	}
}

// TestPlanStepCollideSafety: after each phase, every cell collided so far
// is at Chebyshev distance > k from every destination cell not yet
// streamed — so no collide overwrites state a pending rim stream still
// reads. Phase −1 is the interior; phase a adds axis a's rims.
func TestPlanStepCollideSafety(t *testing.T) {
	for _, tc := range planCases() {
		dest := firstStepDest(tc.own, tc.w, tc.k)
		p := planStep(dest, tc.own, tc.w, tc.k, tc.stale, tc.packLate)
		streamed := map[[3]int]bool{}
		forBox(p.interiorS, func(c [3]int) { streamed[c] = true })
		collided := []box{p.interiorC}
		check := func(phase int) {
			for _, cb := range collided {
				forBox(cb, func(c [3]int) {
					for dx := -tc.k; dx <= tc.k; dx++ {
						for dy := -tc.k; dy <= tc.k; dy++ {
							for dz := -tc.k; dz <= tc.k; dz++ {
								n := [3]int{c[0] + dx, c[1] + dy, c[2] + dz}
								if inBox(n, dest) && !streamed[n] {
									t.Fatalf("case %+v phase %d: collided cell %v within k of unstreamed %v",
										tc, phase, c, n)
								}
							}
						}
					}
				})
			}
		}
		check(-1)
		for a := 0; a < 3; a++ {
			if !p.stale[a] {
				continue
			}
			forBox(p.phases[a].streamRims[0], func(c [3]int) { streamed[c] = true })
			forBox(p.phases[a].streamRims[1], func(c [3]int) { streamed[c] = true })
			collided = append(collided, p.phases[a].collideRims[0], p.phases[a].collideRims[1])
			check(a)
		}
	}
}

// TestPlanStepLatePackBorders: collides that run before a packLate axis's
// slot — the interior collide box, and the collide rims of earlier stale
// axes — never touch that axis's border layers [w, 2w) and [own, own+w),
// whose pre-step values the late pack (message or local wrap) still
// reads.
func TestPlanStepLatePackBorders(t *testing.T) {
	inBorder := func(c [3]int, a int, w, own [3]int) bool {
		return (c[a] >= w[a] && c[a] < 2*w[a]) || (c[a] >= own[a] && c[a] < own[a]+w[a])
	}
	for _, tc := range planCases() {
		dest := firstStepDest(tc.own, tc.w, tc.k)
		p := planStep(dest, tc.own, tc.w, tc.k, tc.stale, tc.packLate)
		for a := 0; a < 3; a++ {
			if !tc.packLate[a] {
				continue
			}
			early := []box{p.interiorC}
			for b := 0; b < a; b++ {
				if p.stale[b] {
					early = append(early, p.phases[b].collideRims[0], p.phases[b].collideRims[1])
				}
			}
			for _, eb := range early {
				forBox(eb, func(c [3]int) {
					if inBorder(c, a, tc.w, tc.own) {
						t.Fatalf("case %+v: early collide cell %v inside late-packed axis %d border", tc, c, a)
					}
				})
			}
		}
	}
}

// TestPlanStepSlabDegenerate: with only axis x stale and no late packs,
// the planner reproduces the slab GC-C region boundaries of §V.F.
func TestPlanStepSlabDegenerate(t *testing.T) {
	own, w, k := 12, 4, 2 // depth 2
	dest := box{lo: [3]int{k, 0, 0}, hi: [3]int{own + 2*w - k, 8, 8}}
	p := planStep(dest, [3]int{own, 8, 8}, [3]int{w, 0, 0}, k, [3]bool{true, false, false}, [3]bool{})
	if got, want := p.interiorS.lo[0], w+k; got != want {
		t.Errorf("isLo = %d, want %d", got, want)
	}
	if got, want := p.interiorS.hi[0], w+own-k; got != want {
		t.Errorf("isHi = %d, want %d", got, want)
	}
	if got, want := p.interiorC.lo[0], w+2*k; got != want {
		t.Errorf("icLo = %d, want %d", got, want)
	}
	if got, want := p.interiorC.hi[0], w+own-2*k; got != want {
		t.Errorf("icHi = %d, want %d", got, want)
	}
	if p.interiorS.lo[1] != 0 || p.interiorS.hi[1] != 8 || p.interiorC.hi[2] != 8 {
		t.Errorf("non-stale axes must keep the full destination extent: %+v", p)
	}
}

// TestOverlapPoisonGhosts is the runtime form of the interior guarantee:
// with every ghost cell poisoned to NaN, the interior compute of the
// overlapped schedule (split and fused) produces finite values across its
// whole region — it never read a ghost before the axis's WaitUnpackAxis
// would have refreshed it.
func TestOverlapPoisonGhosts(t *testing.T) {
	for _, fused := range []bool{false, true} {
		cfg := Config{
			Model: lattice.D3Q19(), N: grid.Dims{NX: 8, NY: 7, NZ: 6},
			Tau: 0.8, Steps: 1, Opt: OptGCC, Ranks: 1, Threads: 1, GhostDepth: 2,
			Fused: fused, Init: waveInit(grid.Dims{NX: 8, NY: 7, NZ: 6}),
			// Per-axis depths force the box stepper on the 1-rank shape.
			GhostDepthAxes: [3]int{2, 2, 1},
		}
		cs := buildCartStepper(t, cfg)
		cs.initField()
		// Poison every cell outside the owned box.
		owned := box{lo: cs.w, hi: [3]int{cs.w[0] + cs.own[0], cs.w[1] + cs.own[1], cs.w[2] + cs.own[2]}}
		for v := 0; v < cs.model.Q; v++ {
			blk := cs.f.V(v)
			forBox(box{hi: [3]int{cs.d.NX, cs.d.NY, cs.d.NZ}}, func(c [3]int) {
				if !inBox(c, owned) {
					blk[cs.d.Index(c[0], c[1], c[2])] = math.NaN()
				}
			})
		}
		// Treat every axis as stale-and-messaging: the worst case.
		stale := [3]bool{true, true, true}
		dest := cs.boxFor([3]int{cs.w[0], cs.w[1], cs.w[2]})
		plan := planStep(dest, cs.own, cs.w, cs.k, stale, [3]bool{false, true, true})
		cs.computeInterior(plan)
		checkFinite := func(name string, f *grid.Field, b box) {
			for v := 0; v < cs.model.Q; v++ {
				blk := f.V(v)
				forBox(b, func(c [3]int) {
					if math.IsNaN(blk[cs.d.Index(c[0], c[1], c[2])]) {
						t.Fatalf("fused=%v: NaN in %s at %v — interior read a poisoned ghost", fused, name, c)
					}
				})
			}
		}
		if fused {
			checkFinite("fadv (fused interior)", cs.fadv, plan.interiorS)
		} else {
			checkFinite("fadv (streamed interior)", cs.fadv, plan.interiorS)
			checkFinite("f (collided interior)", cs.f, plan.interiorC)
		}
	}
}
