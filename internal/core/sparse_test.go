package core

import (
	"math"
	"testing"

	"repro/internal/collision"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// Sparse row-run traversal tests: on a masked domain the sparse kernels
// visit fluid z-runs only, so every stepper path must reproduce the dense
// masked run — same fixups, same halo schedule, same arithmetic — with
// solid cells excluded from the comparison (they are implementation-
// defined scratch that fluid cells never read).

// sparseTestMask is the bifurcating-vessel demo geometry at test scale:
// mostly solid, fluid spanning every x plane, cross-sections that move
// through y as the branches separate — the shape that exercises run
// splitting, zero-weight chunk drops and fluid-balanced cuts at once.
func sparseTestMask(n grid.Dims) *geom.Mask {
	return geom.Bifurcation(n, 0.2*float64(n.NY))
}

// runSparsePair executes cfg twice — dense and with Sparse set — and
// returns both results.
func runSparsePair(t *testing.T, cfg Config) (dense, sparse *Result) {
	t.Helper()
	cfg.KeepField = true
	if cfg.Init == nil {
		cfg.Init = waveInit(cfg.N)
	}
	d, err := Run(cfg)
	if err != nil {
		t.Fatalf("dense %s decomp=%v: %v", cfg.Opt, cfg.Decomp, err)
	}
	cfg.Sparse = true
	s, err := Run(cfg)
	if err != nil {
		t.Fatalf("sparse %s decomp=%v: %v", cfg.Opt, cfg.Decomp, err)
	}
	return d, s
}

// TestSparseMatchesDenseLevels: every ghost-cell optimization level must
// produce the identical fluid field with sparse traversal, across rank
// counts and decomposition shapes.
func TestSparseMatchesDenseLevels(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 12, NZ: 10}
	mask := sparseTestMask(n)
	for _, opt := range []OptLevel{OptGC, OptDH, OptCF, OptLoBr, OptNBC, OptGCC, OptSIMD} {
		for _, p := range [][3]int{{1, 1, 1}, {4, 1, 1}, {2, 2, 1}} {
			cfg := Config{
				Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 6,
				Opt: opt, Ranks: p[0] * p[1] * p[2], Decomp: p, Threads: 1, GhostDepth: 1,
				Solid: mask,
			}
			dense, sparse := runSparsePair(t, cfg)
			if d := maxDiffFluid(dense.Field, sparse.Field, mask.At); d > eqTol {
				t.Errorf("%s decomp=%v: sparse vs dense max fluid |Δf| = %g", opt, p, d)
			}
		}
	}
}

// TestSparseDeepHaloAndQ39: the deep-halo shrinking-box schedule and the
// extended lattice drive the sparse kernels over rim slabs and wider
// stencils.
func TestSparseDeepHaloAndQ39(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 12, NZ: 10}
	mask := sparseTestMask(n)
	dense, sparse := runSparsePair(t, Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 7,
		Opt: OptSIMD, Ranks: 4, Decomp: [3]int{2, 2, 1}, Threads: 2, GhostDepth: 2,
		Solid: mask,
	})
	if d := maxDiffFluid(dense.Field, sparse.Field, mask.At); d > eqTol {
		t.Errorf("deep halo: sparse vs dense max fluid |Δf| = %g", d)
	}
	n39 := grid.Dims{NX: 18, NY: 12, NZ: 12}
	mask39 := sparseTestMask(n39)
	dense, sparse = runSparsePair(t, Config{
		Model: lattice.D3Q39(), N: n39, Tau: 0.9, Steps: 4,
		Opt: OptSIMD, Ranks: 2, Decomp: [3]int{2, 1, 1}, Threads: 1, GhostDepth: 1,
		Solid: mask39,
	})
	if d := maxDiffFluid(dense.Field, sparse.Field, mask39.At); d > eqTol {
		t.Errorf("D3Q39: sparse vs dense max fluid |Δf| = %g", d)
	}
}

// TestSparseCollisionOperators: the operator row path (TRT, MRT) and the
// velocity-shift forcing must be unchanged by run-wise traversal.
func TestSparseCollisionOperators(t *testing.T) {
	n := grid.Dims{NX: 20, NY: 12, NZ: 10}
	mask := sparseTestMask(n)
	for _, spec := range []collision.Spec{
		{Kind: collision.TRT},
		{Kind: collision.MRT},
	} {
		dense, sparse := runSparsePair(t, Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.7, Steps: 6,
			Opt: OptSIMD, Ranks: 2, Decomp: [3]int{2, 1, 1}, Threads: 2, GhostDepth: 1,
			Solid: mask, Collision: spec,
		})
		if d := maxDiffFluid(dense.Field, sparse.Field, mask.At); d > eqTol {
			t.Errorf("%s: sparse vs dense max fluid |Δf| = %g", spec, d)
		}
	}
	dense, sparse := runSparsePair(t, Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 6,
		Opt: OptSIMD, Ranks: 2, Decomp: [3]int{2, 1, 1}, Threads: 1, GhostDepth: 1,
		Solid: mask, Accel: [3]float64{1e-5, 0, 0},
	})
	if d := maxDiffFluid(dense.Field, sparse.Field, mask.At); d > eqTol {
		t.Errorf("forcing: sparse vs dense max fluid |Δf| = %g", d)
	}
}

// TestSparseBoundaryAndSponge: open faces, the Zou-He inlet and the
// outlet sponge layer all run their face machinery dense; only the bulk
// kernels go run-wise. The combined configuration must still match.
func TestSparseBoundaryAndSponge(t *testing.T) {
	n := grid.Dims{NX: 32, NY: 10, NZ: 8}
	mask := sparseTestMask(n)
	var spec BoundarySpec
	spec.Faces[0][0] = Face{Kind: BCInlet, U: [3]float64{0.03, 0, 0}}
	spec.Faces[0][1] = Face{Kind: BCPressureOutlet, SpongeWidth: 6, SpongeStrength: 0.1}
	spec.Faces[1][0] = Face{Kind: BCWall}
	spec.Faces[1][1] = Face{Kind: BCWall}
	dense, sparse := runSparsePair(t, Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 8,
		Opt: OptGCC, Ranks: 2, Decomp: [3]int{2, 1, 1}, Threads: 2, GhostDepth: 1,
		Solid: mask, Boundary: &spec, Init: nil,
	})
	if d := maxDiffFluid(dense.Field, sparse.Field, mask.At); d > eqTol {
		t.Errorf("boundary+sponge: sparse vs dense max fluid |Δf| = %g", d)
	}
}

// TestSparseAAMatchesDense: the AA in-place kernels traverse the same
// fluid runs through their transport and compact sub-steps.
func TestSparseAAMatchesDense(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 12, NZ: 10}
	mask := sparseTestMask(n)
	for _, threads := range []int{1, 2} {
		dense, sparse := runSparsePair(t, Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 6,
			Opt: OptSIMD, Ranks: 2, Decomp: [3]int{2, 1, 1}, Threads: threads, GhostDepth: 2,
			Solid: mask, Stream: StreamAA,
		})
		if d := maxDiffFluid(dense.Field, sparse.Field, mask.At); d > eqTol {
			t.Errorf("AA threads=%d: sparse vs dense max fluid |Δf| = %g", threads, d)
		}
	}
}

// TestSparseThreadInvariance: weighted chunking partitions rows, never
// arithmetic — a sparse run must be bit-exact across thread counts,
// including the zero-weight chunk drops that differ between the inline
// single-thread path and the pooled batches.
func TestSparseThreadInvariance(t *testing.T) {
	n := grid.Dims{NX: 24, NY: 14, NZ: 10}
	mask := sparseTestMask(n)
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 6,
		Opt: OptSIMD, Ranks: 2, Decomp: [3]int{2, 1, 1}, GhostDepth: 1,
		Solid: mask, Sparse: true, KeepField: true, Init: waveInit(n),
	}
	var ref *Result
	for _, threads := range []int{1, 2, 4} {
		cfg := base
		cfg.Threads = threads
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if d := maxDiffFluid(ref.Field, res.Field, mask.At); d != 0 {
			t.Errorf("threads=%d: max fluid |Δf| = %g vs 1 thread, want bit-exact", threads, d)
		}
		if res.Mass != ref.Mass {
			t.Errorf("threads=%d: mass %0.17g vs %0.17g", threads, res.Mass, ref.Mass)
		}
	}
}

// TestBalancedCutsCrossDecomposition: fluid-balanced cut placement moves
// the rank boundaries, not the physics — slab, pencil and block grids
// over the same mask must agree to 1e-12, dense and sparse alike, and
// the balanced cuts must tighten the per-rank fluid spread.
func TestBalancedCutsCrossDecomposition(t *testing.T) {
	n := grid.Dims{NX: 32, NY: 16, NZ: 16}
	mask := sparseTestMask(n)
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 8,
		Opt: OptSIMD, Ranks: 8, Threads: 2, GhostDepth: 1,
		Solid: mask, Balance: BalanceFluid, Sparse: true,
		KeepField: true, Init: waveInit(n), Observe: true,
	}
	shapes := [][3]int{{8, 1, 1}, {4, 2, 1}, {2, 2, 2}}
	var ref *Result
	for _, p := range shapes {
		cfg := base
		cfg.Decomp = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("decomp %v: %v", p, err)
		}
		if ref == nil {
			ref = res
			// Balanced slab cuts must beat the volume split's fluid
			// spread on this mask.
			volCfg := cfg
			volCfg.Balance = BalanceVolume
			vol, err := Run(volCfg)
			if err != nil {
				t.Fatalf("volume cuts: %v", err)
			}
			spread := func(r *Result) (lo, hi int64) {
				lo, hi = math.MaxInt64, 0
				for _, o := range r.Observations {
					if o.FluidCells < lo {
						lo = o.FluidCells
					}
					if o.FluidCells > hi {
						hi = o.FluidCells
					}
				}
				return lo, hi
			}
			blo, bhi := spread(res)
			vlo, vhi := spread(vol)
			if float64(bhi)/float64(blo) >= float64(vhi)/float64(vlo) {
				t.Errorf("balanced cuts imbalance %d/%d not below volume %d/%d", bhi, blo, vhi, vlo)
			}
			continue
		}
		if d := maxDiffFluid(ref.Field, res.Field, mask.At); d > eqTol {
			t.Errorf("decomp %v vs slab: max fluid |Δf| = %g", p, d)
		}
		if d := math.Abs(res.Mass - ref.Mass); d > eqTol*ref.Mass {
			t.Errorf("decomp %v: mass %0.15f vs slab %0.15f", p, res.Mass, ref.Mass)
		}
	}
	// The AA kernels under balanced cuts: slab vs pencil.
	aa := base
	aa.Stream = StreamAA
	aa.GhostDepth = 2
	aa.Observe = false
	var aaRef *Result
	for _, p := range [][3]int{{8, 1, 1}, {4, 2, 1}} {
		cfg := aa
		cfg.Decomp = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("AA decomp %v: %v", p, err)
		}
		if aaRef == nil {
			aaRef = res
			continue
		}
		if d := maxDiffFluid(aaRef.Field, res.Field, mask.At); d > eqTol {
			t.Errorf("AA decomp %v vs slab: max fluid |Δf| = %g", p, d)
		}
	}
}

// TestSparseValidation: the traversal needs the box stepper and the
// per-box fixup index.
func TestSparseValidation(t *testing.T) {
	n := grid.Dims{NX: 16, NY: 8, NZ: 8}
	mask := sparseTestMask(n)
	base := Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 2,
		Opt: OptSIMD, Ranks: 2, Decomp: [3]int{2, 1, 1}, Threads: 1, GhostDepth: 1,
		Solid: mask, Sparse: true,
	}
	bad := base
	bad.FixupScan = true
	if _, err := Run(bad); err == nil {
		t.Error("Sparse with FixupScan accepted")
	}
	bad = base
	bad.Opt = OptOrig
	if _, err := Run(bad); err == nil {
		t.Error("Sparse with the no-ghost Orig protocol accepted (box stepper only)")
	}
	bad = base
	bad.Layout = grid.AoS
	bad.Opt = OptGC
	if _, err := Run(bad); err == nil {
		t.Error("Sparse with the AoS layout accepted (box stepper needs SoA)")
	}
	// Sparse without a mask is the dense traversal: it must run, not fail.
	ok := base
	ok.Solid = nil
	if _, err := Run(ok); err != nil {
		t.Errorf("Sparse without a mask: %v", err)
	}
}
