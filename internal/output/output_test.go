package output

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/macro"
)

func sampleFields(t *testing.T) *macro.Fields {
	t.Helper()
	m := lattice.D3Q19()
	n := grid.Dims{NX: 3, NY: 2, NZ: 4}
	f := grid.NewField(m.Q, n, grid.SoA)
	feq := make([]float64, m.Q)
	for ix := 0; ix < n.NX; ix++ {
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				m.Equilibrium(1+0.1*float64(ix), 0.01*float64(iz), 0, 0, feq)
				f.SetCell(ix, iy, iz, feq)
			}
		}
	}
	return macro.Compute(m, f, [3]float64{})
}

func TestWriteVTKStructure(t *testing.T) {
	fields := sampleFields(t)
	var sb strings.Builder
	if err := WriteVTK(&sb, "test", fields); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DATASET STRUCTURED_POINTS",
		"DIMENSIONS 4 2 3",
		"POINT_DATA 24",
		"SCALARS density double 1",
		"VECTORS velocity double",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	// 11 header/section lines plus one scalar and one vector line per cell.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 11+2*24 {
		t.Errorf("VTK output has %d lines, want %d", len(lines), 11+2*24)
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	fields := sampleFields(t)
	var sb strings.Builder
	if err := WriteCSV(&sb, fields); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "x,y,z,rho,ux,uy,uz" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+24 {
		t.Fatalf("CSV has %d lines, want 25", len(lines))
	}
	// Spot-check one row against the source data.
	for _, line := range lines[1:] {
		parts := strings.Split(line, ",")
		if len(parts) != 7 {
			t.Fatalf("row %q has %d fields", line, len(parts))
		}
		ix, _ := strconv.Atoi(parts[0])
		iz, _ := strconv.Atoi(parts[2])
		rho, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		wantRho := 1 + 0.1*float64(ix)
		if diff := rho - wantRho; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("row %q: rho %g, want %g", line, rho, wantRho)
		}
		ux, _ := strconv.ParseFloat(parts[4], 64)
		wantUx := 0.01 * float64(iz)
		if diff := ux - wantUx; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("row %q: ux %g, want %g", line, ux, wantUx)
		}
	}
}
