// Package output writes macroscopic fields to standard visualization
// formats: legacy VTK structured points (ParaView, VisIt) and CSV. Both
// writers take the derived macro.Fields, so any solver state — including
// mid-run snapshots — can be exported.
package output

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/macro"
)

// WriteVTK writes a legacy-format VTK structured-points dataset with the
// density as a scalar field and the velocity as a vector field.
func WriteVTK(w io.Writer, title string, f *macro.Fields) error {
	bw := bufio.NewWriter(w)
	n := f.D
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, title)
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET STRUCTURED_POINTS")
	// VTK expects x fastest; our layout is z fastest, so declare the
	// dimensions transposed and emit in our natural order.
	fmt.Fprintf(bw, "DIMENSIONS %d %d %d\n", n.NZ, n.NY, n.NX)
	fmt.Fprintln(bw, "ORIGIN 0 0 0")
	fmt.Fprintln(bw, "SPACING 1 1 1")
	fmt.Fprintf(bw, "POINT_DATA %d\n", n.Cells())
	fmt.Fprintln(bw, "SCALARS density double 1")
	fmt.Fprintln(bw, "LOOKUP_TABLE default")
	for c := 0; c < n.Cells(); c++ {
		fmt.Fprintf(bw, "%.9g\n", f.Rho[c])
	}
	fmt.Fprintln(bw, "VECTORS velocity double")
	for c := 0; c < n.Cells(); c++ {
		fmt.Fprintf(bw, "%.9g %.9g %.9g\n", f.Ux[c], f.Uy[c], f.Uz[c])
	}
	return bw.Flush()
}

// WriteCSV writes one row per lattice point: x,y,z,rho,ux,uy,uz.
func WriteCSV(w io.Writer, f *macro.Fields) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "x,y,z,rho,ux,uy,uz")
	n := f.D
	for ix := 0; ix < n.NX; ix++ {
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				rho, ux, uy, uz := f.At(ix, iy, iz)
				fmt.Fprintf(bw, "%d,%d,%d,%.9g,%.9g,%.9g,%.9g\n", ix, iy, iz, rho, ux, uy, uz)
			}
		}
	}
	return bw.Flush()
}
