package decomp

import (
	"testing"
	"testing/quick"
)

// cartShapes enumerates a representative set of global boxes and rank
// grids covering 1-D, 2-D and 3-D shapes with and without remainders.
var cartShapes = []struct {
	g, p [3]int
}{
	{[3]int{16, 8, 8}, [3]int{4, 1, 1}},
	{[3]int{16, 8, 8}, [3]int{1, 4, 1}},
	{[3]int{16, 8, 8}, [3]int{1, 1, 4}},
	{[3]int{16, 8, 8}, [3]int{2, 2, 1}},
	{[3]int{16, 16, 16}, [3]int{2, 2, 2}},
	{[3]int{17, 9, 11}, [3]int{3, 2, 4}},
	{[3]int{7, 7, 7}, [3]int{7, 7, 7}},
	{[3]int{32, 32, 32}, [3]int{4, 2, 1}},
}

// TestCartesianPartitionsExactly: on every axis the owned blocks tile the
// global extent with no gaps or overlaps, and block sizes are balanced to
// within one cell.
func TestCartesianPartitionsExactly(t *testing.T) {
	for _, c := range cartShapes {
		d, err := NewCartesian(c.g, c.p)
		if err != nil {
			t.Fatalf("NewCartesian(%v,%v): %v", c.g, c.p, err)
		}
		for axis := 0; axis < 3; axis++ {
			next := 0
			minSize, maxSize := c.g[axis], 0
			for i := 0; i < c.p[axis]; i++ {
				co := [3]int{}
				co[axis] = i
				start, size := d.Own(d.RankAt(co), axis)
				if start != next {
					t.Errorf("%v/%v axis %d block %d: start %d, want %d", c.g, c.p, axis, i, start, next)
				}
				if size < 1 {
					t.Errorf("%v/%v axis %d block %d: empty", c.g, c.p, axis, i)
				}
				if size < minSize {
					minSize = size
				}
				if size > maxSize {
					maxSize = size
				}
				next = start + size
			}
			if next != c.g[axis] {
				t.Errorf("%v/%v axis %d: blocks cover %d cells, want %d", c.g, c.p, axis, next, c.g[axis])
			}
			if maxSize-minSize > 1 {
				t.Errorf("%v/%v axis %d: imbalance %d (sizes %d..%d)", c.g, c.p, axis, maxSize-minSize, minSize, maxSize)
			}
			if d.MaxOwn(axis) != maxSize {
				t.Errorf("%v/%v axis %d: MaxOwn %d, want %d", c.g, c.p, axis, d.MaxOwn(axis), maxSize)
			}
		}
	}
}

// TestCartesianRankOfConsistent: RankOf agrees with Own on every cell of
// the global box.
func TestCartesianRankOfConsistent(t *testing.T) {
	for _, c := range cartShapes {
		d, _ := NewCartesian(c.g, c.p)
		for ix := 0; ix < c.g[0]; ix++ {
			for iy := 0; iy < c.g[1]; iy++ {
				for iz := 0; iz < c.g[2]; iz++ {
					r := d.RankOf(ix, iy, iz)
					for axis, gi := range [3]int{ix, iy, iz} {
						start, size := d.Own(r, axis)
						if gi < start || gi >= start+size {
							t.Fatalf("%v/%v: RankOf(%d,%d,%d)=%d but axis %d owns [%d,%d)",
								c.g, c.p, ix, iy, iz, r, axis, start, start+size)
						}
					}
				}
			}
		}
	}
}

// TestCartesianCoordsRoundTrip: Coords/RankAt are inverse bijections and
// neighbor shifts are periodic inverses.
func TestCartesianCoordsRoundTrip(t *testing.T) {
	for _, c := range cartShapes {
		d, _ := NewCartesian(c.g, c.p)
		seen := make(map[[3]int]bool)
		for r := 0; r < d.Ranks(); r++ {
			co := d.Coords(r)
			if seen[co] {
				t.Fatalf("%v/%v: duplicate coords %v", c.g, c.p, co)
			}
			seen[co] = true
			if back := d.RankAt(co); back != r {
				t.Fatalf("%v/%v: RankAt(Coords(%d)) = %d", c.g, c.p, r, back)
			}
			for axis := 0; axis < 3; axis++ {
				up := d.Neighbor(r, axis, +1)
				if d.Neighbor(up, axis, -1) != r {
					t.Fatalf("%v/%v: neighbor relations not inverse at rank %d axis %d", c.g, c.p, r, axis)
				}
			}
		}
	}
}

// TestCartesianSlabMatchesD1: the (R,1,1) shape reproduces D1 exactly —
// numbering, ownership and neighbors.
func TestCartesianSlabMatchesD1(t *testing.T) {
	prop := func(nxRaw, ranksRaw uint8) bool {
		ranks := int(ranksRaw)%7 + 1
		nx := ranks + int(nxRaw)%100
		d1, err := New(nx, ranks)
		if err != nil {
			return false
		}
		cart, err := NewCartesian([3]int{nx, 8, 8}, [3]int{ranks, 1, 1})
		if err != nil {
			return false
		}
		for r := 0; r < ranks; r++ {
			s1, n1 := d1.Own(r)
			s2, n2 := cart.Own(r, AxisX)
			if s1 != s2 || n1 != n2 {
				return false
			}
			if cart.Neighbor(r, AxisX, -1) != d1.Left(r) || cart.Neighbor(r, AxisX, +1) != d1.Right(r) {
				return false
			}
		}
		for ix := 0; ix < nx; ix++ {
			if cart.RankOf(ix, 0, 0) != d1.RankOf(ix) {
				return false
			}
		}
		return cart.IsSlab()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFactor(t *testing.T) {
	cube := [3]int{64, 64, 64}
	cases := []struct {
		ranks, maxAxes int
		want           [3]int
	}{
		{8, 1, [3]int{8, 1, 1}},
		{8, 2, [3]int{4, 2, 1}},
		{8, 3, [3]int{2, 2, 2}},
		{64, 3, [3]int{4, 4, 4}},
		{12, 3, [3]int{3, 2, 2}},
		{1, 3, [3]int{1, 1, 1}},
	}
	for _, c := range cases {
		got, err := Factor(c.ranks, c.maxAxes, cube)
		if err != nil {
			t.Fatalf("Factor(%d,%d): %v", c.ranks, c.maxAxes, err)
		}
		if got != c.want {
			t.Errorf("Factor(%d,%d) = %v, want %v", c.ranks, c.maxAxes, got, c.want)
		}
	}
	// A flat domain steers the factorization away from the thin axis.
	got, err := Factor(8, 3, [3]int{64, 64, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != 1 {
		t.Errorf("Factor(8,3,flat) = %v, want no z decomposition", got)
	}
	// Surface must not grow as axes are allowed.
	big := [3]int{512, 512, 512}
	for _, ranks := range []int{8, 16, 64, 512} {
		var prev float64
		for axes := 1; axes <= 3; axes++ {
			p, err := Factor(ranks, axes, big)
			if err != nil {
				t.Fatal(err)
			}
			s := surface(big, p)
			if axes > 1 && s > prev {
				t.Errorf("ranks %d: surface grew from %g to %g at %d axes (%v)", ranks, prev, s, axes, p)
			}
			prev = s
		}
		// At >= 8 ranks the 3-D block strictly beats the slab.
		p1, _ := Factor(ranks, 1, big)
		p3, _ := Factor(ranks, 3, big)
		if s1, s3 := surface(big, p1), surface(big, p3); s3 >= s1 {
			t.Errorf("ranks %d: 3-D surface %g not below slab surface %g", ranks, s3, s1)
		}
	}
	if _, err := Factor(5, 3, [3]int{4, 4, 4}); err == nil {
		t.Error("impossible factorization accepted")
	}
}

func TestParseShape(t *testing.T) {
	g := [3]int{32, 32, 32}
	for _, c := range []struct {
		spec string
		want [3]int
	}{
		{"1d", [3]int{8, 1, 1}},
		{"2d", [3]int{4, 2, 1}},
		{"3d", [3]int{2, 2, 2}},
		{"2x2x2", [3]int{2, 2, 2}},
		{"8x1x1", [3]int{8, 1, 1}},
		{"1X4x2", [3]int{1, 4, 2}},
	} {
		d, err := ParseShape(c.spec, 8, g)
		if err != nil {
			t.Fatalf("ParseShape(%q): %v", c.spec, err)
		}
		if d.P != c.want {
			t.Errorf("ParseShape(%q) = %v, want %v", c.spec, d.P, c.want)
		}
	}
	for _, bad := range []string{"4x4x4", "0x8x1", "2x2", "block9"} {
		if _, err := ParseShape(bad, 8, g); err == nil {
			t.Errorf("ParseShape(%q) accepted", bad)
		}
	}
}

// TestCartesianBoundedNeighbors: bounded axes end at the global edge
// (NoNeighbor) while periodic axes keep their ring; interior neighbor
// relations stay inverse.
func TestCartesianBoundedNeighbors(t *testing.T) {
	d, err := NewCartesianBounded([3]int{12, 9, 8}, [3]int{3, 2, 2}, [3]bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < d.Ranks(); r++ {
		co := d.Coords(r)
		for axis := 0; axis < 3; axis++ {
			lo, hi := d.Neighbor(r, axis, -1), d.Neighbor(r, axis, +1)
			if !d.Bounded[axis] {
				if d.Neighbor(hi, axis, -1) != r {
					t.Fatalf("periodic axis %d: neighbors not inverse at rank %d", axis, r)
				}
				continue
			}
			if co[axis] == 0 && lo != NoNeighbor {
				t.Errorf("rank %d axis %d: low edge neighbor = %d", r, axis, lo)
			}
			if co[axis] == d.P[axis]-1 && hi != NoNeighbor {
				t.Errorf("rank %d axis %d: high edge neighbor = %d", r, axis, hi)
			}
			if co[axis] > 0 && (lo == NoNeighbor || d.Neighbor(lo, axis, +1) != r) {
				t.Errorf("rank %d axis %d: interior low neighbor broken (%d)", r, axis, lo)
			}
		}
	}
}
