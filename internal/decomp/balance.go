package decomp

import "fmt"

// Weighted (fluid-cell-balanced) cut placement. The paper's performance
// model counts fluid sites, not box volume; on a sparse mask (an arterial
// geometry is ~95% solid inside its bounding box) equal-extent cuts leave
// most ranks nearly idle. BisectWeights places an axis's cut planes by
// recursive bisection over a per-plane weight histogram (geom.PlaneFluids
// in the solver), and NewCartesianWeighted wires the resulting Cuts into
// a Cartesian whose rank grid, numbering and neighbor topology are
// identical to the volume-cut one — only the plane positions move.

// BisectWeights partitions n = len(weights) planes into parts contiguous
// segments of near-equal total weight and returns the parts+1 cut
// positions (cuts[0] = 0, cuts[parts] = n, strictly increasing — every
// segment owns at least one plane even where the weights are zero).
//
// The split is recursive bisection: each level places one cut so the left
// side holds as close as possible to pl/parts of the segment's weight
// (pl = parts/2), tie-broken toward the proportional-extent position, then
// recurses into both halves. Each placed cut is optimal to the plane — no
// single-plane shift of it improves that level's split — which keeps every
// segment within one plane's weight of the bisection target.
func BisectWeights(weights []int, parts int) ([]int, error) {
	n := len(weights)
	if parts < 1 {
		return nil, fmt.Errorf("decomp: bisect into %d parts, want >= 1", parts)
	}
	if n < parts {
		return nil, fmt.Errorf("decomp: bisect %d planes into %d parts (every part needs at least one plane)", n, parts)
	}
	prefix := make([]int64, n+1)
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("decomp: negative weight %d at plane %d", w, i)
		}
		prefix[i+1] = prefix[i] + int64(w)
	}
	cuts := make([]int, 0, parts+1)
	cuts = append(cuts, 0)
	var bisect func(lo, hi, parts int)
	bisect = func(lo, hi, parts int) {
		if parts == 1 {
			return
		}
		pl := parts / 2
		pr := parts - pl
		// Left target: pl/parts of this segment's weight. Admissible cuts
		// leave at least one plane per part on both sides.
		target := (prefix[hi] - prefix[lo]) * int64(pl) / int64(parts)
		prop := lo + (hi-lo)*pl/parts
		best := -1
		var bestDiff int64
		for c := lo + pl; c <= hi-pr; c++ {
			diff := prefix[c] - prefix[lo] - target
			if diff < 0 {
				diff = -diff
			}
			if best < 0 || diff < bestDiff ||
				(diff == bestDiff && absInt(c-prop) < absInt(best-prop)) {
				best, bestDiff = c, diff
			}
		}
		bisect(lo, best, pl)
		cuts = append(cuts, best)
		bisect(best, hi, pr)
	}
	bisect(0, n, parts)
	cuts = append(cuts, n)
	return cuts, nil
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// NewCartesianWeighted is NewCartesianBounded with per-axis weighted cut
// placement: for each axis with weights[a] non-nil and more than one rank
// column, cut planes are placed by BisectWeights over weights[a] (which
// must have Global[a] entries — one weight per plane, e.g. that plane's
// fluid-cell count). Axes with nil weights, and single-column axes, keep
// the legacy equal-extent blocks.
func NewCartesianWeighted(global, p [3]int, bounded [3]bool, weights [3][]int) (Cartesian, error) {
	c, err := NewCartesianBounded(global, p, bounded)
	if err != nil {
		return Cartesian{}, err
	}
	for a := 0; a < 3; a++ {
		if weights[a] == nil || p[a] == 1 {
			continue
		}
		if len(weights[a]) != global[a] {
			return Cartesian{}, fmt.Errorf("decomp: axis %d has %d plane weights, want %d", a, len(weights[a]), global[a])
		}
		cuts, err := BisectWeights(weights[a], p[a])
		if err != nil {
			return Cartesian{}, fmt.Errorf("decomp: axis %d: %v", a, err)
		}
		c.Cuts[a] = cuts
	}
	return c, nil
}
