package decomp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Axis indices for the three Cartesian directions.
const (
	AxisX = 0
	AxisY = 1
	AxisZ = 2
)

// NoNeighbor is returned by Neighbor for a step off the global edge of a
// bounded (non-periodic) axis: there is no rank there, the face is a
// global boundary whose ghost cells are filled from boundary conditions
// rather than exchanged data.
const NoNeighbor = -1

// Decomposition is implemented by Cartesian; consumers that only need
// the rank-grid geometry (ownership, neighbors, coordinates) can take
// the interface so alternative decompositions (e.g. space-filling-curve
// or load-balanced blocks) can slot in later.
//
// Decomposition abstracts a periodic Cartesian domain decomposition: a
// rank grid laid over the global box, with balanced contiguous blocks per
// axis. The paper's 1-D slab is the shape (P,1,1); pencils are (Px,Py,1)
// and blocks (Px,Py,Pz). Rank numbering is z-fastest, matching the cell
// indexing of grid.Dims, so a slab decomposition numbers ranks exactly
// like the original D1.
type Decomposition interface {
	// Ranks returns the total rank count (product of the grid shape).
	Ranks() int
	// Shape returns the rank-grid extents (Px, Py, Pz).
	Shape() [3]int
	// Coords returns the grid coordinates of a rank.
	Coords(rank int) [3]int
	// RankAt inverts Coords.
	RankAt(c [3]int) int
	// Own returns the global start index and count owned by rank on axis.
	Own(rank, axis int) (start, size int)
	// Neighbor returns the neighbor of rank along axis in direction dir
	// (-1 toward lower indices, +1 toward higher): the periodic ring
	// neighbor on periodic axes, or NoNeighbor when the axis is bounded
	// and the step walks off the global edge.
	Neighbor(rank, axis, dir int) int
	// MaxOwn returns the largest owned extent over all ranks on axis.
	MaxOwn(axis int) int
	// RankOf returns the rank owning the global cell (ix, iy, iz).
	RankOf(ix, iy, iz int) int
}

// blockOwn returns the start and size of block i when n items are split
// into parts balanced contiguous blocks: the first n mod parts blocks get
// one extra item. This is the same formula D1 has always used.
func blockOwn(n, parts, i int) (start, size int) {
	base := n / parts
	rem := n % parts
	if i < rem {
		return i * (base + 1), base + 1
	}
	return rem*(base+1) + (i-rem)*base, base
}

// blockRankOf inverts blockOwn: the block index owning item gi.
func blockRankOf(n, parts, gi int) int {
	base := n / parts
	rem := n % parts
	cut := rem * (base + 1)
	if gi < cut {
		return gi / (base + 1)
	}
	return rem + (gi-cut)/base
}

// blockMax returns the largest block size.
func blockMax(n, parts int) int {
	if n%parts != 0 {
		return n/parts + 1
	}
	return n / parts
}

// Cartesian is a balanced block decomposition of a global box over a
// Px×Py×Pz rank grid. Axes are periodic by default (the zero Bounded
// value); a bounded axis has real global faces — its edge ranks have no
// neighbor across the boundary and its ghost faces carry boundary data.
// It implements Decomposition.
type Cartesian struct {
	Global  [3]int  // global cell extents (NX, NY, NZ)
	P       [3]int  // rank-grid extents
	Bounded [3]bool // true = non-periodic axis with global boundary faces
	// Cuts, when non-nil on an axis, override the equal-extent block
	// partition with explicit cut-plane positions: Cuts[a] has P[a]+1
	// strictly increasing entries from 0 to Global[a], and rank column i
	// owns [Cuts[a][i], Cuts[a][i+1]). A nil axis keeps the legacy
	// balanced blocks. The rank grid, numbering and neighbor topology are
	// unchanged — only where the planes fall moves, which is why the halo
	// exchanger and steppers work on weighted decompositions verbatim.
	Cuts [3][]int
}

var _ Decomposition = Cartesian{}

// NewCartesian validates and returns a fully periodic Cartesian
// decomposition of the global extents over a p[0]×p[1]×p[2] rank grid.
func NewCartesian(global, p [3]int) (Cartesian, error) {
	return NewCartesianBounded(global, p, [3]bool{})
}

// NewCartesianBounded is NewCartesian with per-axis periodicity control:
// bounded[a] = true makes axis a non-periodic.
func NewCartesianBounded(global, p [3]int, bounded [3]bool) (Cartesian, error) {
	for a := 0; a < 3; a++ {
		if p[a] < 1 {
			return Cartesian{}, fmt.Errorf("decomp: axis %d rank count %d, want >= 1", a, p[a])
		}
		if global[a] < p[a] {
			return Cartesian{}, fmt.Errorf("decomp: axis %d extent %d < %d ranks (every rank needs at least one cell)", a, global[a], p[a])
		}
	}
	return Cartesian{Global: global, P: p, Bounded: bounded}, nil
}

// Ranks returns the total rank count.
func (c Cartesian) Ranks() int { return c.P[0] * c.P[1] * c.P[2] }

// Shape returns the rank-grid extents.
func (c Cartesian) Shape() [3]int { return c.P }

// Coords returns the grid coordinates of a rank (z-fastest numbering).
func (c Cartesian) Coords(rank int) [3]int {
	cz := rank % c.P[2]
	rank /= c.P[2]
	cy := rank % c.P[1]
	cx := rank / c.P[1]
	return [3]int{cx, cy, cz}
}

// RankAt inverts Coords.
func (c Cartesian) RankAt(co [3]int) int {
	return co[2] + c.P[2]*(co[1]+c.P[1]*co[0])
}

// Own returns the global start index and count owned by rank on axis.
func (c Cartesian) Own(rank, axis int) (start, size int) {
	i := c.Coords(rank)[axis]
	if cu := c.Cuts[axis]; cu != nil {
		return cu[i], cu[i+1] - cu[i]
	}
	return blockOwn(c.Global[axis], c.P[axis], i)
}

// Neighbor returns the neighbor of rank along axis (dir ±1): the periodic
// ring neighbor, or NoNeighbor off the global edge of a bounded axis.
func (c Cartesian) Neighbor(rank, axis, dir int) int {
	co := c.Coords(rank)
	next := co[axis] + dir
	if c.Bounded[axis] {
		if next < 0 || next >= c.P[axis] {
			return NoNeighbor
		}
	} else {
		next = (next + c.P[axis]) % c.P[axis]
	}
	co[axis] = next
	return c.RankAt(co)
}

// MaxOwn returns the largest owned extent over all ranks on axis.
func (c Cartesian) MaxOwn(axis int) int {
	if cu := c.Cuts[axis]; cu != nil {
		m := 0
		for i := 0; i < len(cu)-1; i++ {
			if s := cu[i+1] - cu[i]; s > m {
				m = s
			}
		}
		return m
	}
	return blockMax(c.Global[axis], c.P[axis])
}

// MinOwn returns the smallest owned extent over all ranks on axis.
func (c Cartesian) MinOwn(axis int) int {
	if cu := c.Cuts[axis]; cu != nil {
		m := c.Global[axis]
		for i := 0; i < len(cu)-1; i++ {
			if s := cu[i+1] - cu[i]; s < m {
				m = s
			}
		}
		return m
	}
	return c.Global[axis] / c.P[axis]
}

// axisRankOf returns the rank-grid column owning plane gi on axis.
func (c Cartesian) axisRankOf(axis, gi int) int {
	cu := c.Cuts[axis]
	if cu == nil {
		return blockRankOf(c.Global[axis], c.P[axis], gi)
	}
	// sort.SearchInts(cu, gi+1) finds the first cut > gi; the owning
	// column is one before it.
	return sort.SearchInts(cu, gi+1) - 1
}

// RankOf returns the rank owning the global cell (ix, iy, iz).
func (c Cartesian) RankOf(ix, iy, iz int) int {
	return c.RankAt([3]int{
		c.axisRankOf(0, ix),
		c.axisRankOf(1, iy),
		c.axisRankOf(2, iz),
	})
}

// IsSlab reports whether the decomposition is the paper's 1-D x-slab
// shape (Py = Pz = 1).
func (c Cartesian) IsSlab() bool { return c.P[1] == 1 && c.P[2] == 1 }

// String renders the rank grid as "PxxPyxPz".
func (c Cartesian) String() string {
	return fmt.Sprintf("%dx%dx%d", c.P[0], c.P[1], c.P[2])
}

// surface returns the per-rank communication surface of shape p over the
// global extents: for each decomposed axis, the cross-section of the
// largest subdomain in the other two axes. Lower is better; this is the
// quantity a near-cubic factorization minimizes (per-rank surface shrinks
// with P^(2/3) for blocks but stays O(NY·NZ) for slabs).
func surface(global, p [3]int) float64 {
	var s float64
	for a := 0; a < 3; a++ {
		if p[a] == 1 {
			continue
		}
		cross := 1.0
		for b := 0; b < 3; b++ {
			if b != a {
				cross *= float64(blockMax(global[b], p[b]))
			}
		}
		s += 2 * cross
	}
	return s
}

// Factor returns the rank-grid shape for ranks ranks over the global
// extents using at most maxAxes decomposed axes (1 → slab, 2 → pencil,
// 3 → block). Among all admissible factorizations it picks the one with
// the smallest per-rank communication surface, tie-broken toward the most
// cubic grid and then toward decomposing x first (so shape (R,1,1) is the
// 1-D result, matching the paper).
func Factor(ranks, maxAxes int, global [3]int) ([3]int, error) {
	if ranks < 1 {
		return [3]int{}, fmt.Errorf("decomp: ranks = %d, want >= 1", ranks)
	}
	if maxAxes < 1 || maxAxes > 3 {
		return [3]int{}, fmt.Errorf("decomp: maxAxes = %d, want 1..3", maxAxes)
	}
	best := [3]int{}
	found := false
	var bestSurf float64
	bestSpread := 0
	// px descends so that, among equal-surface equal-spread shapes, the
	// x-decomposed one wins (a 1-D request yields (R,1,1), matching D1).
	for px := ranks; px >= 1; px-- {
		if ranks%px != 0 {
			continue
		}
		// py descends for the same reason: prefer y over z.
		for py := ranks / px; py >= 1; py-- {
			if (ranks/px)%py != 0 {
				continue
			}
			pz := ranks / (px * py)
			p := [3]int{px, py, pz}
			axes := 0
			admissible := true
			for a := 0; a < 3; a++ {
				if p[a] > 1 {
					axes++
				}
				if global[a] < p[a] {
					admissible = false
				}
			}
			if !admissible || axes > maxAxes {
				continue
			}
			surf := surface(global, p)
			spread := maxOf(p) - minOf(p)
			if !found || surf < bestSurf || (surf == bestSurf && spread < bestSpread) {
				best, bestSurf, bestSpread, found = p, surf, spread, true
			}
		}
	}
	if !found {
		return [3]int{}, fmt.Errorf("decomp: no %d-axis factorization of %d ranks fits the %dx%dx%d domain",
			maxAxes, ranks, global[0], global[1], global[2])
	}
	return best, nil
}

func maxOf(p [3]int) int {
	m := p[0]
	for _, v := range p[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func minOf(p [3]int) int {
	m := p[0]
	for _, v := range p[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ParseShape resolves a decomposition spec for the given rank count and
// global extents. "1d" is the paper's x-slab (Ranks,1,1), always — it
// never migrates to another axis, so Orig/Fused/ladder semantics are
// preserved exactly. "2d" (pencil) and "3d" (block) are axis budgets
// factored automatically with Factor (minimum communication surface;
// on strongly anisotropic domains the optimum may use fewer axes than
// budgeted). An explicit "PxxPyxPz" grid such as "2x2x2" must multiply
// to ranks.
func ParseShape(spec string, ranks int, global [3]int) (Cartesian, error) {
	switch strings.ToLower(spec) {
	case "", "1d", "slab":
		return NewCartesian(global, [3]int{ranks, 1, 1})
	case "2d", "pencil":
		p, err := Factor(ranks, 2, global)
		if err != nil {
			return Cartesian{}, err
		}
		return NewCartesian(global, p)
	case "3d", "block":
		p, err := Factor(ranks, 3, global)
		if err != nil {
			return Cartesian{}, err
		}
		return NewCartesian(global, p)
	}
	parts := strings.Split(strings.ToLower(spec), "x")
	if len(parts) != 3 {
		return Cartesian{}, fmt.Errorf("decomp: bad shape %q (want 1d, 2d, 3d or PxxPyxPz)", spec)
	}
	var p [3]int
	for a, s := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return Cartesian{}, fmt.Errorf("decomp: bad shape %q: %v", spec, err)
		}
		p[a] = v
	}
	if p[0]*p[1]*p[2] != ranks {
		return Cartesian{}, fmt.Errorf("decomp: shape %q has %d ranks, want %d", spec, p[0]*p[1]*p[2], ranks)
	}
	return NewCartesian(global, p)
}
