package decomp

import (
	"math/rand"
	"testing"
)

func checkCuts(t *testing.T, cuts []int, n, parts int) {
	t.Helper()
	if len(cuts) != parts+1 {
		t.Fatalf("len(cuts) = %d, want %d", len(cuts), parts+1)
	}
	if cuts[0] != 0 || cuts[parts] != n {
		t.Fatalf("cuts endpoints %d..%d, want 0..%d", cuts[0], cuts[parts], n)
	}
	for i := 0; i < parts; i++ {
		if cuts[i+1] <= cuts[i] {
			t.Fatalf("cut %d: segment [%d,%d) empty or non-monotone", i, cuts[i], cuts[i+1])
		}
	}
}

// Each recursive bisection level must place its cut optimally: no
// single-plane shift of the level's cut improves how close the left side
// gets to its pl/parts weight share.
func checkBisectOptimal(t *testing.T, weights []int, cuts []int, lo, hi, parts int) {
	t.Helper()
	if parts == 1 {
		return
	}
	pl := parts / 2
	pr := parts - pl
	// The level's cut is the one separating the first pl segments from
	// the rest within [lo, hi).
	idx := 0
	for cuts[idx] != lo {
		idx++
	}
	c := cuts[idx+pl]
	sum := func(a, b int) int64 {
		var s int64
		for i := a; i < b; i++ {
			s += int64(weights[i])
		}
		return s
	}
	target := sum(lo, hi) * int64(pl) / int64(parts)
	got := sum(lo, c) - target
	if got < 0 {
		got = -got
	}
	for alt := lo + pl; alt <= hi-pr; alt++ {
		d := sum(lo, alt) - target
		if d < 0 {
			d = -d
		}
		if d < got {
			t.Fatalf("cut at %d misses target by %d; plane %d would miss by only %d", c, got, alt, d)
		}
	}
	checkBisectOptimal(t, weights, cuts, lo, c, pl)
	checkBisectOptimal(t, weights, cuts, c, hi, pr)
}

func TestBisectWeightsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		parts := 1 + rng.Intn(8)
		n := parts + rng.Intn(60)
		weights := make([]int, n)
		for i := range weights {
			// Mix of zero-weight (all-solid) and loaded planes.
			if rng.Float64() < 0.3 {
				weights[i] = 0
			} else {
				weights[i] = rng.Intn(1000)
			}
		}
		cuts, err := BisectWeights(weights, parts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkCuts(t, cuts, n, parts)
		checkBisectOptimal(t, weights, cuts, 0, n, parts)
	}
}

// Uniform weights must reproduce near-equal extents (within one plane of
// each other), the volume-cut behavior.
func TestBisectWeightsUniform(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{{64, 8}, {63, 8}, {10, 3}, {7, 7}} {
		weights := make([]int, tc.n)
		for i := range weights {
			weights[i] = 5
		}
		cuts, err := BisectWeights(weights, tc.parts)
		if err != nil {
			t.Fatal(err)
		}
		checkCuts(t, cuts, tc.n, tc.parts)
		min, max := tc.n, 0
		for i := 0; i < tc.parts; i++ {
			s := cuts[i+1] - cuts[i]
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Errorf("n=%d parts=%d: extents range %d..%d, want spread <= 1", tc.n, tc.parts, min, max)
		}
	}
}

func TestBisectWeightsErrors(t *testing.T) {
	if _, err := BisectWeights([]int{1, 2}, 3); err == nil {
		t.Error("fewer planes than parts: want error")
	}
	if _, err := BisectWeights([]int{1, -2, 3}, 2); err == nil {
		t.Error("negative weight: want error")
	}
	if _, err := BisectWeights([]int{1, 2, 3}, 0); err == nil {
		t.Error("zero parts: want error")
	}
}

// A weighted Cartesian must keep the Decomposition contract: Own tiles
// the global box, RankOf inverts Own, Min/MaxOwn match the extents.
func TestCartesianWeightedContract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	global := [3]int{24, 18, 12}
	weights := [3][]int{}
	for a := 0; a < 3; a++ {
		weights[a] = make([]int, global[a])
		for i := range weights[a] {
			weights[a][i] = rng.Intn(500)
		}
	}
	for _, p := range [][3]int{{4, 1, 1}, {2, 3, 1}, {2, 2, 2}, {1, 1, 4}} {
		c, err := NewCartesianWeighted(global, p, [3]bool{true, false, true}, weights)
		if err != nil {
			t.Fatalf("shape %v: %v", p, err)
		}
		for a := 0; a < 3; a++ {
			// Per-axis columns tile [0, Global[a]) in order.
			next := 0
			min, max := global[a], 0
			for i := 0; i < p[a]; i++ {
				co := [3]int{}
				co[a] = i
				start, size := c.Own(c.RankAt(co), a)
				if start != next || size < 1 {
					t.Fatalf("shape %v axis %d col %d: own (%d,%d), want start %d size >= 1", p, a, i, start, size, next)
				}
				next = start + size
				if size < min {
					min = size
				}
				if size > max {
					max = size
				}
			}
			if next != global[a] {
				t.Fatalf("shape %v axis %d: columns end at %d, want %d", p, a, next, global[a])
			}
			if c.MinOwn(a) != min || c.MaxOwn(a) != max {
				t.Errorf("shape %v axis %d: Min/MaxOwn (%d,%d), want (%d,%d)", p, a, c.MinOwn(a), c.MaxOwn(a), min, max)
			}
		}
		// RankOf inverts Own on a sample of cells.
		for trial := 0; trial < 200; trial++ {
			ix, iy, iz := rng.Intn(global[0]), rng.Intn(global[1]), rng.Intn(global[2])
			r := c.RankOf(ix, iy, iz)
			pt := [3]int{ix, iy, iz}
			for a := 0; a < 3; a++ {
				start, size := c.Own(r, a)
				if pt[a] < start || pt[a] >= start+size {
					t.Fatalf("RankOf(%d,%d,%d) = %d does not own axis %d", ix, iy, iz, r, a)
				}
			}
		}
	}
}

// Nil weights on every axis must reproduce the legacy equal-extent
// decomposition exactly.
func TestCartesianWeightedNilIsLegacy(t *testing.T) {
	global, p := [3]int{20, 10, 10}, [3]int{3, 2, 1}
	w, err := NewCartesianWeighted(global, p, [3]bool{}, [3][]int{})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := NewCartesianBounded(global, p, [3]bool{})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < w.Ranks(); r++ {
		for a := 0; a < 3; a++ {
			ws, wn := w.Own(r, a)
			ls, ln := legacy.Own(r, a)
			if ws != ls || wn != ln {
				t.Fatalf("rank %d axis %d: weighted (%d,%d) != legacy (%d,%d)", r, a, ws, wn, ls, ln)
			}
		}
	}
}
