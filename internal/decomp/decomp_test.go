package decomp

import (
	"testing"
	"testing/quick"
)

func TestOwnPartitionsExactly(t *testing.T) {
	for _, c := range []struct{ nx, ranks int }{
		{10, 1}, {10, 2}, {10, 3}, {7, 7}, {129, 8}, {64, 5},
	} {
		d, err := New(c.nx, c.ranks)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", c.nx, c.ranks, err)
		}
		next := 0
		for r := 0; r < c.ranks; r++ {
			start, size := d.Own(r)
			if start != next {
				t.Errorf("nx=%d ranks=%d rank %d: start %d, want %d", c.nx, c.ranks, r, start, next)
			}
			if size < 1 {
				t.Errorf("nx=%d ranks=%d rank %d: empty slab", c.nx, c.ranks, r)
			}
			next = start + size
		}
		if next != c.nx {
			t.Errorf("nx=%d ranks=%d: slabs cover %d planes", c.nx, c.ranks, next)
		}
	}
}

func TestBalance(t *testing.T) {
	d, _ := New(10, 3)
	sizes := make([]int, 3)
	for r := 0; r < 3; r++ {
		_, sizes[r] = d.Own(r)
	}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Errorf("sizes = %v, want [4 3 3]", sizes)
	}
	if d.MaxOwn() != 4 {
		t.Errorf("MaxOwn = %d, want 4", d.MaxOwn())
	}
}

func TestNeighborsPeriodic(t *testing.T) {
	d, _ := New(16, 4)
	if d.Left(0) != 3 || d.Right(3) != 0 {
		t.Error("periodic wrap broken")
	}
	for r := 0; r < 4; r++ {
		if d.Right(d.Left(r)) != r || d.Left(d.Right(r)) != r {
			t.Errorf("neighbor relations not inverse at rank %d", r)
		}
	}
}

func TestRankOfMatchesOwn(t *testing.T) {
	prop := func(nxRaw, ranksRaw uint8) bool {
		ranks := int(ranksRaw)%7 + 1
		nx := ranks + int(nxRaw)%100
		d, err := New(nx, ranks)
		if err != nil {
			return false
		}
		for ix := 0; ix < nx; ix++ {
			r := d.RankOf(ix)
			start, size := d.Own(r)
			if ix < start || ix >= start+size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(4, 0); err == nil {
		t.Error("ranks=0 accepted")
	}
	if _, err := New(3, 4); err == nil {
		t.Error("nx<ranks accepted")
	}
}
