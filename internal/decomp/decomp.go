// Package decomp implements the one-dimensional domain decomposition used
// throughout the paper (§IV): the global x extent is split into contiguous
// slabs, one per rank, with periodic neighbor relationships. The y and z
// dimensions are never decomposed, which shifts the analysis onto the
// algorithm and enables direct study of ghost-cell depth, exactly as the
// paper argues.
package decomp

import "fmt"

// D1 is a balanced 1-D block decomposition of GlobalNX cells over Ranks
// ranks. Rank r owns a contiguous slab; when GlobalNX is not divisible by
// Ranks, the first GlobalNX mod Ranks ranks own one extra plane.
type D1 struct {
	GlobalNX int
	Ranks    int
}

// New validates and returns a decomposition.
func New(globalNX, ranks int) (D1, error) {
	if ranks < 1 {
		return D1{}, fmt.Errorf("decomp: ranks = %d, want >= 1", ranks)
	}
	if globalNX < ranks {
		return D1{}, fmt.Errorf("decomp: global NX %d < ranks %d (every rank needs at least one plane)", globalNX, ranks)
	}
	return D1{GlobalNX: globalNX, Ranks: ranks}, nil
}

// Own returns the global start plane and plane count owned by rank r.
func (d D1) Own(r int) (start, size int) {
	base := d.GlobalNX / d.Ranks
	rem := d.GlobalNX % d.Ranks
	if r < rem {
		return r * (base + 1), base + 1
	}
	return rem*(base+1) + (r-rem)*base, base
}

// Left returns the periodic left (lower-x) neighbor rank of r.
func (d D1) Left(r int) int { return (r - 1 + d.Ranks) % d.Ranks }

// Right returns the periodic right (higher-x) neighbor rank of r.
func (d D1) Right(r int) int { return (r + 1) % d.Ranks }

// RankOf returns the rank owning global plane ix.
func (d D1) RankOf(ix int) int {
	base := d.GlobalNX / d.Ranks
	rem := d.GlobalNX % d.Ranks
	cut := rem * (base + 1)
	if ix < cut {
		return ix / (base + 1)
	}
	return rem + (ix-cut)/base
}

// MaxOwn returns the largest slab size over all ranks.
func (d D1) MaxOwn() int {
	base := d.GlobalNX / d.Ranks
	if d.GlobalNX%d.Ranks != 0 {
		return base + 1
	}
	return base
}
