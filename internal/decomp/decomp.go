// Package decomp implements pluggable Cartesian domain decompositions.
// The paper (§IV) restricts itself to the one-dimensional slab split in x
// to isolate the ghost-cell-depth analysis; that shape survives here as D1
// and as the Cartesian shape (P,1,1). The Cartesian type (cartesian.go)
// generalizes to 2-D pencil and 3-D block rank grids, whose per-rank
// communication surface shrinks with P^(2/3) where the slab's stays
// O(NY·NZ) — the surface-to-volume argument that motivates every
// beyond-slab scaling study.
package decomp

import "fmt"

// D1 is a balanced 1-D block decomposition of GlobalNX cells over Ranks
// ranks. Rank r owns a contiguous slab; when GlobalNX is not divisible by
// Ranks, the first GlobalNX mod Ranks ranks own one extra plane.
type D1 struct {
	GlobalNX int
	Ranks    int
}

// New validates and returns a decomposition.
func New(globalNX, ranks int) (D1, error) {
	if ranks < 1 {
		return D1{}, fmt.Errorf("decomp: ranks = %d, want >= 1", ranks)
	}
	if globalNX < ranks {
		return D1{}, fmt.Errorf("decomp: global NX %d < ranks %d (every rank needs at least one plane)", globalNX, ranks)
	}
	return D1{GlobalNX: globalNX, Ranks: ranks}, nil
}

// Own returns the global start plane and plane count owned by rank r.
func (d D1) Own(r int) (start, size int) {
	return blockOwn(d.GlobalNX, d.Ranks, r)
}

// Left returns the periodic left (lower-x) neighbor rank of r.
func (d D1) Left(r int) int { return (r - 1 + d.Ranks) % d.Ranks }

// Right returns the periodic right (higher-x) neighbor rank of r.
func (d D1) Right(r int) int { return (r + 1) % d.Ranks }

// RankOf returns the rank owning global plane ix.
func (d D1) RankOf(ix int) int {
	return blockRankOf(d.GlobalNX, d.Ranks, ix)
}

// MaxOwn returns the largest slab size over all ranks.
func (d D1) MaxOwn() int {
	return blockMax(d.GlobalNX, d.Ranks)
}
