package perfsim

import (
	"fmt"

	"repro/internal/core"
)

// Coeffs is a fitted machine-coefficient set: the output of the
// calibration loop (internal/tune) and the override perfsim runs with
// once a fit exists. A nil Job.Coeffs keeps the named-machine calibration
// path of calibration.go.
//
// The named calibrations describe the paper's Blue Gene nodes from
// published statements (per-optimization-level memory efficiencies, SMT
// yield, saturation core counts). Coeffs instead describes whatever host
// the observations came from, with a deliberately smaller model: one
// effective kernel-stream bandwidth (the per-level memEff ladder collapses
// — on the local Go kernels the NB-C/GC-C/SIMD rungs share the same
// compute kernels and differ in protocol, which the schedule simulation
// already models), one copy bandwidth for pack/unpack/wrap traffic, a
// two-parameter wire model, a per-message software cost, and the Amdahl
// thread-team coefficient. Every value is recovered from instrumented
// real runs by tune.Fit, so the coefficients carry no hand-picked anchors.
type Coeffs struct {
	// MemBW is the node's effective streamed bandwidth for the solver's
	// compute kernels at full saturation, bytes/s. It absorbs the kernel
	// efficiency factor (the calibration path's memEff), so it is below
	// the hardware's peak store bandwidth.
	MemBW float64 `json:"mem_bw"`
	// BWSaturation is the number of busy workers (tasks × threads on the
	// node) needed to stream at MemBW; a lone worker reaches
	// MemBW/BWSaturation. Fractional values are meaningful (a single
	// worker may come close to saturating a laptop-class memory system).
	BWSaturation float64 `json:"bw_saturation"`
	// CopyBW is the plain-copy bandwidth for pack/unpack, boundary ghost
	// fills and intra-node halo hops, bytes/s at saturation.
	CopyBW float64 `json:"copy_bw"`
	// LinkBW is the wire bandwidth per link, bytes/s, and Latency the
	// per-message wire latency, seconds. On a sweep with an injected
	// delay model these recover the injected constants; on a bare
	// in-process fabric they measure the channel transport itself.
	LinkBW  float64 `json:"link_bw"`
	Latency float64 `json:"latency"`
	// MsgSW is the per-message software cost on the critical path,
	// seconds (the calibration path's msgSWOverhead).
	MsgSW float64 `json:"msg_sw"`
	// ThreadSerialFrac is the Amdahl serial fraction each extra worker
	// thread adds to a task's compute windows; the team efficiency is
	// 1/(1 + c·(t−1)). See calibration.parallelEff.
	ThreadSerialFrac float64 `json:"thread_serial_frac"`
	// KernelCost multiplies the per-cell cost for non-BGK collision
	// kernels, keyed by collision.Kind strings ("trt", "mrt"); absent
	// keys cost 1 (the BGK baseline the bytes/flops specs describe).
	KernelCost map[string]float64 `json:"kernel_cost,omitempty"`
	// FusedAdjust and AAAdjust correct the built-in traffic models of the
	// fused kernel and the AA storage scheme (both nominally 2/3 of the
	// three-access baseline) toward the observed cost; zero means 1.
	FusedAdjust float64 `json:"fused_adjust,omitempty"`
	AAAdjust    float64 `json:"aa_adjust,omitempty"`
}

// Validate rejects non-physical coefficient sets.
func (c *Coeffs) Validate() error {
	pos := []struct {
		name string
		v    float64
	}{
		{"mem_bw", c.MemBW}, {"copy_bw", c.CopyBW}, {"link_bw", c.LinkBW},
	}
	for _, p := range pos {
		if p.v <= 0 {
			return fmt.Errorf("perfsim: coeffs %s = %g, want > 0", p.name, p.v)
		}
	}
	if c.Latency < 0 || c.MsgSW < 0 || c.ThreadSerialFrac < 0 {
		return fmt.Errorf("perfsim: coeffs latency/msg_sw/thread_serial_frac must be >= 0")
	}
	if c.BWSaturation < 1 {
		return fmt.Errorf("perfsim: coeffs bw_saturation = %g, want >= 1", c.BWSaturation)
	}
	return nil
}

// parallelEff is the thread-team efficiency at t worker threads (the same
// Amdahl form as the calibration path).
func (c *Coeffs) parallelEff(threads int) float64 {
	return 1 / (1 + c.ThreadSerialFrac*float64(threads-1))
}

// CellCost returns the per-cell cost multiplier of a candidate kernel
// configuration relative to the BGK split-kernel baseline: the fitted
// collision-kernel cost times the fitted correction for the fused or AA
// traffic model. Callers place it in Job.CellCost.
func (c *Coeffs) CellCost(kernel string, fused bool, stream core.StreamScheme) float64 {
	cost := 1.0
	if c.KernelCost != nil {
		if v, ok := c.KernelCost[kernel]; ok && v > 0 {
			cost = v
		}
	}
	if fused && c.FusedAdjust > 0 {
		cost *= c.FusedAdjust
	}
	if stream == core.StreamAA && c.AAAdjust > 0 {
		cost *= c.AAAdjust
	}
	return cost
}
