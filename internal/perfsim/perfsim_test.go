package perfsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/machine"
)

// fig8Job is the paper's Fig. 8 configuration: 128 nodes, flat MPI — 4
// tasks/node (virtual node mode) on BG/P, 32 unthreaded tasks/node on BG/Q
// ("these results are from 128 nodes using 32 tasks per node with an
// unthreaded implementation", §VI).
func fig8Job(m machine.Machine, spec machine.KernelSpec, k int, opt core.OptLevel) Job {
	tasks := m.CoresPerNode
	if m.ThreadsPerCore > 1 {
		tasks = 2 * m.CoresPerNode
	}
	return Job{
		Machine: m, Spec: spec, K: k,
		Nodes: 128, TasksPerNode: tasks, ThreadsPerTask: 1,
		NX: 128 * tasks * 64, NY: 64, NZ: 64,
		Steps: 20, Depth: 1, Opt: opt,
		Imbalance: 0.05, Seed: 7,
	}
}

func mustRun(t *testing.T, j Job) *Result {
	t.Helper()
	res, err := Run(j)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestFig8LadderMonotone: each optimization level must not be slower than
// the previous one, on both machines and both lattices.
func TestFig8LadderMonotone(t *testing.T) {
	for _, m := range []machine.Machine{machine.BGP(), machine.BGQ()} {
		for _, spec := range []machine.KernelSpec{machine.SpecD3Q19(), machine.SpecD3Q39()} {
			k := 1
			if spec.Q == 39 {
				k = 3
			}
			prev := 0.0
			for _, opt := range core.Levels() {
				res := mustRun(t, fig8Job(m, spec, k, opt))
				if res.MFlups < prev*0.98 {
					t.Errorf("%s %s: %v = %.0f MFlup/s < previous %.0f", m.Name, spec.Name, opt, res.MFlups, prev)
				}
				if res.MFlups > prev {
					prev = res.MFlups
				}
			}
		}
	}
}

// TestFig8HeadlineRatios pins the paper's headline results: ~3× overall
// improvement on BG/P and ~7.5-8× on BG/Q, with the tuned code reaching
// ~92%/83% (BG/P) and ~85%/79% (BG/Q) of the Table II bound.
func TestFig8HeadlineRatios(t *testing.T) {
	cases := []struct {
		m          machine.Machine
		spec       machine.KernelSpec
		k          int
		minR, maxR float64 // acceptable Orig→SIMD ratio window
		minF, maxF float64 // acceptable fraction of Table II bound
	}{
		{machine.BGP(), machine.SpecD3Q19(), 1, 2.4, 3.8, 0.85, 1.0},
		{machine.BGP(), machine.SpecD3Q39(), 3, 2.4, 3.8, 0.70, 0.95},
		{machine.BGQ(), machine.SpecD3Q19(), 1, 6.0, 9.5, 0.78, 0.95},
		{machine.BGQ(), machine.SpecD3Q39(), 3, 6.0, 9.5, 0.65, 0.9},
	}
	for _, c := range cases {
		orig := mustRun(t, fig8Job(c.m, c.spec, c.k, core.OptOrig))
		simd := mustRun(t, fig8Job(c.m, c.spec, c.k, core.OptSIMD))
		ratio := simd.MFlups / orig.MFlups
		if ratio < c.minR || ratio > c.maxR {
			t.Errorf("%s %s: Orig→SIMD ratio %.2f, want in [%.1f, %.1f]", c.m.Name, c.spec.Name, ratio, c.minR, c.maxR)
		}
		bound := machine.MaxMFlups(c.m, c.spec).Attainable * float64(128)
		frac := simd.MFlups / bound
		if frac < c.minF || frac > c.maxF {
			t.Errorf("%s %s: tuned at %.0f%% of bound, want %.0f%%-%.0f%%", c.m.Name, c.spec.Name, 100*frac, 100*c.minF, 100*c.maxF)
		}
	}
}

// TestQ39SlowerThanQ19: the extended model must cost roughly the Table II
// factor (~2×) in MFlup/s at equal optimization.
func TestQ39SlowerThanQ19(t *testing.T) {
	for _, m := range []machine.Machine{machine.BGP(), machine.BGQ()} {
		q19 := mustRun(t, fig8Job(m, machine.SpecD3Q19(), 1, core.OptSIMD))
		q39 := mustRun(t, fig8Job(m, machine.SpecD3Q39(), 3, core.OptSIMD))
		ratio := q19.MFlups / q39.MFlups
		if ratio < 1.6 || ratio > 3.2 {
			t.Errorf("%s: Q19/Q39 = %.2f, want ~2 (456 vs 936 bytes/cell)", m.Name, ratio)
		}
	}
}

// TestFig9CommBalance: the paper's Fig. 9 compares (a) the no-ghost-cell
// code with non-blocking messaging, (b) non-blocking + ghost cells, and
// (c) the separated ghost collide. The spread (max−min of per-rank comm
// time) and the maximum must both shrink down the ladder.
func TestFig9CommBalance(t *testing.T) {
	job := func(opt core.OptLevel, depth int) Job {
		return Job{
			Machine: machine.BGP(), Spec: machine.SpecD3Q19(), K: 1,
			Nodes: 64, TasksPerNode: 4, ThreadsPerTask: 1,
			NX: 64 * 4 * 24, NY: 96, NZ: 96,
			Steps: 60, Depth: depth, Opt: opt,
			Imbalance: 0.15, PersistentImbalance: 0.25, Seed: 11,
		}
	}
	noGC := mustRun(t, job(core.OptOrig, 1))
	nbcGC := mustRun(t, job(core.OptNBC, 3))
	gcc := mustRun(t, job(core.OptGCC, 3))
	sp1 := noGC.CommSummary()
	sp2 := nbcGC.CommSummary()
	sp3 := gcc.CommSummary()
	spread1 := sp1.Max - sp1.Min
	spread2 := sp2.Max - sp2.Min
	spread3 := sp3.Max - sp3.Min
	if !(spread3 < spread1 && spread2 < spread1) {
		t.Errorf("comm spread did not shrink: no-GC %.3g, NB-C+GC %.3g, GC-C %.3g", spread1, spread2, spread3)
	}
	if sp3.Max >= sp2.Max || sp2.Max >= sp1.Max {
		t.Errorf("max comm did not shrink: no-GC %.3g, NB-C+GC %.3g, GC-C %.3g", sp1.Max, sp2.Max, sp3.Max)
	}
}

// TestFig10DeepHaloTradeoff: at small per-rank sizes depth 1 must win (the
// ghost overhead dominates); at large sizes depth ≥ 2 must win (message
// reduction dominates) — the crossover of Fig. 10.
func TestFig10DeepHaloTradeoff(t *testing.T) {
	job := func(nx, depth int) Job {
		return Job{
			Machine: machine.BGP(), Spec: machine.SpecD3Q19(), K: 1,
			Nodes: 512, TasksPerNode: 4, ThreadsPerTask: 1,
			NX: nx, NY: 156, NZ: 156,
			Steps: 60, Depth: depth, Opt: core.OptNBC,
			Imbalance: 0.40, Seed: 5,
		}
	}
	// Small: 8k planes over 2048 ranks → ~4 planes/rank.
	smallD1 := mustRun(t, job(8192, 1))
	smallD2 := mustRun(t, job(8192, 2))
	if smallD2.Seconds < smallD1.Seconds {
		t.Errorf("small system: depth 2 (%.3gs) beat depth 1 (%.3gs); ghost overhead should dominate", smallD2.Seconds, smallD1.Seconds)
	}
	// Large: 128k planes → 64 planes/rank.
	largeD1 := mustRun(t, job(131072, 1))
	largeD2 := mustRun(t, job(131072, 2))
	if largeD2.Seconds >= largeD1.Seconds {
		t.Errorf("large system: depth 2 (%.3gs) did not beat depth 1 (%.3gs)", largeD2.Seconds, largeD1.Seconds)
	}
}

// TestFig10OOM: the paper reports the 133k D3Q19 case with GC=4 exceeded
// node memory on BG/P.
func TestFig10OOM(t *testing.T) {
	j := Job{
		Machine: machine.BGP(), Spec: machine.SpecD3Q19(), K: 1,
		Nodes: 512, TasksPerNode: 4, ThreadsPerTask: 1,
		NX: 133000, NY: 512, NZ: 512,
		Steps: 1, Depth: 4, Opt: core.OptSIMD,
	}
	res := mustRun(t, j)
	if !res.OOM {
		t.Errorf("133k×512×512 over 2048 ranks with depth 4 fits in %.1f MB? bytes/task = %.0f MB",
			float64(machine.BGP().MemPerNodeBytes)/4/1e6, res.BytesPerTask/1e6)
	}
}

// TestFig11HybridQ39: for the extended model, fewer tasks with more threads
// must beat flat MPI at equal core count (ghost-cell reduction), the
// paper's key hybrid finding.
func TestFig11HybridQ39(t *testing.T) {
	job := func(tasks, threads, depth int) Job {
		return Job{
			Machine: machine.BGP(), Spec: machine.SpecD3Q39(), K: 3,
			Nodes: 32, TasksPerNode: tasks, ThreadsPerTask: threads,
			NX: 32 * 4 * 50, NY: 48, NZ: 48,
			Steps: 30, Depth: depth, Opt: core.OptSIMD,
			Imbalance: 0.15, Seed: 3,
		}
	}
	best := func(tasks, threads int) float64 {
		bestT := 0.0
		for depth := 1; depth <= 4; depth++ {
			res := mustRun(t, job(tasks, threads, depth))
			if bestT == 0 || res.Seconds < bestT {
				bestT = res.Seconds
			}
		}
		return bestT
	}
	hybrid := best(1, 4) // 1 task × 4 threads
	vn := best(4, 1)     // virtual node mode: 4 tasks × 1 thread
	if hybrid >= vn {
		t.Errorf("D3Q39: hybrid 1×4 (%.3gs) did not beat VN 4×1 (%.3gs)", hybrid, vn)
	}
}

// TestFig11BGQTasksThreads: on BG/Q, 4 tasks × 16 threads must beat both
// 64 tasks × 1 thread and 1 task × 64 threads (§VI.B: "the optimal pairing
// ... is actually four tasks per node with 16 threads").
func TestFig11BGQTasksThreads(t *testing.T) {
	job := func(tasks, threads int) Job {
		return Job{
			Machine: machine.BGQ(), Spec: machine.SpecD3Q39(), K: 3,
			Nodes: 16, TasksPerNode: tasks, ThreadsPerTask: threads,
			NX: 16 * 4 * 200, NY: 48, NZ: 48,
			Steps: 30, Depth: 2, Opt: core.OptSIMD,
			Imbalance: 0.15, Seed: 9,
		}
	}
	t4x16 := mustRun(t, job(4, 16)).Seconds
	t64x1 := mustRun(t, job(64, 1)).Seconds
	t1x64 := mustRun(t, job(1, 64)).Seconds
	if t4x16 >= t64x1 {
		t.Errorf("4×16 (%.3gs) did not beat 64×1 (%.3gs)", t4x16, t64x1)
	}
	if t4x16 >= t1x64 {
		t.Errorf("4×16 (%.3gs) did not beat 1×64 (%.3gs)", t4x16, t1x64)
	}
}

// TestThreadsScaleComputeWindow: ThreadsPerTask must scale the simulated
// compute windows through the parallel-efficiency model — more threads
// per task shrink wall time monotonically up to core count, one thread is
// exactly the unthreaded model (eff = 1), and the team never reaches
// ideal speedup (the serial fraction of chunk claims and batch barriers).
func TestThreadsScaleComputeWindow(t *testing.T) {
	if got := bgqCalibration.parallelEff(1); got != 1 {
		t.Errorf("parallelEff(1) = %g, want exactly 1", got)
	}
	prevEff := 1.0
	for _, th := range []int{2, 4, 16, 64} {
		eff := bgqCalibration.parallelEff(th)
		if eff >= prevEff || eff <= 0 {
			t.Errorf("parallelEff(%d) = %g, want in (0, %g)", th, eff, prevEff)
		}
		prevEff = eff
	}
	job := func(threads int) Job {
		return Job{
			Machine: machine.BGQ(), Spec: machine.SpecD3Q19(), K: 1,
			Nodes: 8, TasksPerNode: 1, ThreadsPerTask: threads,
			NX: 8 * 64, NY: 64, NZ: 64,
			Steps: 10, Depth: 1, Opt: core.OptSIMD, Seed: 1,
		}
	}
	t1 := mustRun(t, job(1)).Seconds
	prev := t1
	for _, th := range []int{2, 4, 8, 16} {
		cur := mustRun(t, job(th)).Seconds
		if cur >= prev {
			t.Errorf("%d threads (%.4gs) not faster than fewer (%.4gs)", th, cur, prev)
		}
		prev = cur
	}
	// Sub-ideal but substantial scaling at 16 threads on 16 cores.
	speedup := t1 / prev
	if speedup >= 16 {
		t.Errorf("speedup %.2fx at 16 threads is at or above ideal", speedup)
	}
	if speedup < 4 {
		t.Errorf("speedup %.2fx at 16 threads, want >= 4x", speedup)
	}
}

func TestValidation(t *testing.T) {
	base := fig8Job(machine.BGP(), machine.SpecD3Q19(), 1, core.OptSIMD)
	bad := base
	bad.ThreadsPerTask = 99
	if _, err := Run(bad); err == nil {
		t.Error("oversubscribed threads accepted")
	}
	bad = base
	bad.Depth = 0
	if _, err := Run(bad); err == nil {
		t.Error("depth 0 accepted")
	}
	bad = base
	bad.Opt = core.OptOrig
	bad.Depth = 2
	if _, err := Run(bad); err == nil {
		t.Error("Orig with depth 2 accepted")
	}
	bad = base
	bad.NX = 10
	if _, err := Run(bad); err == nil {
		t.Error("NX < ranks accepted")
	}
	bad = base
	bad.Steps = 0
	if _, err := Run(bad); err == nil {
		t.Error("0 steps accepted")
	}
}

func TestDeterminism(t *testing.T) {
	j := fig8Job(machine.BGQ(), machine.SpecD3Q19(), 1, core.OptNBC)
	a := mustRun(t, j)
	b := mustRun(t, j)
	if a.Seconds != b.Seconds || a.MFlups != b.MFlups {
		t.Error("same job, different results")
	}
	j.Seed++
	c := mustRun(t, j)
	if c.Seconds == a.Seconds {
		t.Error("different seed produced identical timing")
	}
}

func TestDefaultCross(t *testing.T) {
	q19 := DefaultCross(19)
	if len(q19) != 1 || q19[0] != 5 {
		t.Errorf("DefaultCross(19) = %v, want [5]", q19)
	}
	q39 := DefaultCross(39)
	if len(q39) != 3 || q39[0] != 11 || q39[1] != 6 || q39[2] != 1 {
		t.Errorf("DefaultCross(39) = %v, want [11 6 1]", q39)
	}
}

// TestGhostFractionGrowsWithDepth validates the overhead accounting.
func TestGhostFractionGrowsWithDepth(t *testing.T) {
	j := fig8Job(machine.BGP(), machine.SpecD3Q19(), 1, core.OptGC)
	j.Depth = 1
	d1 := mustRun(t, j)
	j.Depth = 3
	d3 := mustRun(t, j)
	if d1.GhostUpdateFraction != 0 {
		t.Errorf("depth 1 ghost fraction = %g, want 0", d1.GhostUpdateFraction)
	}
	if d3.GhostUpdateFraction <= 0 {
		t.Errorf("depth 3 ghost fraction = %g, want > 0", d3.GhostUpdateFraction)
	}
}

// decompJob is a BG/Q job at paper-like scale used for the decomposition
// shape comparisons.
func decompJob(ranks int, p [3]int, n int) Job {
	return Job{
		Machine: machine.BGQ(), Spec: machine.SpecD3Q19(), K: 1,
		Nodes: ranks, TasksPerNode: 1, ThreadsPerTask: 16,
		NX: n, NY: n, NZ: n, Decomp: p,
		Steps: 20, Depth: 1, Opt: core.OptNBC,
		Imbalance: 0.05, Seed: 13,
	}
}

// TestDecompSurfaceShrinks: at >= 8 ranks the 3-D block's total per-rank
// halo payload must be strictly below the slab's, and per-axis volumes
// must be populated only on decomposed axes.
func TestDecompSurfaceShrinks(t *testing.T) {
	for _, ranks := range []int{8, 64} {
		slab := mustRun(t, decompJob(ranks, [3]int{ranks, 1, 1}, 256))
		p3, err := decomp.Factor(ranks, 3, [3]int{256, 256, 256})
		if err != nil {
			t.Fatal(err)
		}
		block := mustRun(t, decompJob(ranks, p3, 256))
		if slab.AxisBytes[1] != 0 || slab.AxisBytes[2] != 0 {
			t.Errorf("ranks %d: slab reports y/z traffic %v", ranks, slab.AxisBytes)
		}
		for a := 0; a < 3; a++ {
			if p3[a] > 1 && block.AxisBytes[a] == 0 {
				t.Errorf("ranks %d: block shape %v missing axis %d traffic", ranks, p3, a)
			}
		}
		if block.SurfaceBytes() >= slab.SurfaceBytes() {
			t.Errorf("ranks %d: block surface %.0f not below slab %.0f",
				ranks, block.SurfaceBytes(), slab.SurfaceBytes())
		}
	}
}

// TestDecompBlockFasterAtScale: with a slab so thin that its faces
// dominate, the 3-D block must finish sooner.
func TestDecompBlockFasterAtScale(t *testing.T) {
	const ranks, n = 512, 512
	slab := mustRun(t, decompJob(ranks, [3]int{ranks, 1, 1}, n))
	block := mustRun(t, decompJob(ranks, [3]int{8, 8, 8}, n))
	if block.Seconds >= slab.Seconds {
		t.Errorf("512 ranks: 8x8x8 (%.4gs) did not beat slab (%.4gs)", block.Seconds, slab.Seconds)
	}
}

// TestDecompGhostAccountingMulti: deep halos on a block recompute ghost
// shells on every decomposed axis.
func TestDecompGhostAccountingMulti(t *testing.T) {
	j := decompJob(8, [3]int{2, 2, 2}, 64)
	j.Depth = 1
	d1 := mustRun(t, j)
	j.Depth = 2
	d2 := mustRun(t, j)
	if d1.GhostUpdateFraction != 0 {
		t.Errorf("depth 1 ghost fraction = %g, want 0", d1.GhostUpdateFraction)
	}
	if d2.GhostUpdateFraction <= 0 {
		t.Errorf("depth 2 ghost fraction = %g, want > 0", d2.GhostUpdateFraction)
	}
	// At 8 ranks on 64³ a slab is only 8 planes thick, so its relative
	// deep-halo recompute overhead exceeds the chunky 32³ block's — the
	// same surface-to-volume argument that shrinks the block's messages.
	js := decompJob(8, [3]int{8, 1, 1}, 64)
	js.Depth = 2
	slab := mustRun(t, js)
	if d2.GhostUpdateFraction >= slab.GhostUpdateFraction {
		t.Errorf("block ghost fraction %g not below thin-slab %g", d2.GhostUpdateFraction, slab.GhostUpdateFraction)
	}
}

func TestDecompValidation(t *testing.T) {
	j := decompJob(8, [3]int{2, 2, 1}, 64)
	if _, err := Run(j); err == nil {
		t.Error("shape/rank mismatch accepted")
	}
	j = decompJob(8, [3]int{2, 2, 2}, 64)
	j.Opt = core.OptOrig
	if _, err := Run(j); err == nil {
		t.Error("Orig with multi-axis decomposition accepted")
	}
	j = decompJob(8, [3]int{2, 2, 2}, 64)
	j.NZ = 1
	if _, err := Run(j); err == nil {
		t.Error("axis overcommit accepted")
	}
}

// TestMultiAxisOverlap: with the per-axis GC-C overlap modeled, a
// multi-axis GC-C run must expose less communication — and finish no
// later — than the same job at NB-C, on both pencil and block shapes.
func TestMultiAxisOverlap(t *testing.T) {
	for _, shape := range [][3]int{{8, 8, 1}, {4, 4, 4}} {
		base := Job{
			Machine: machine.BGP(), Spec: machine.SpecD3Q19(), K: 1,
			Nodes: 64, TasksPerNode: 1, ThreadsPerTask: 4,
			NX: 256, NY: 256, NZ: 256, Decomp: shape,
			Steps: 20, Depth: 1, Opt: core.OptNBC,
			Imbalance: 0.05, Seed: 11,
		}
		nbc := mustRun(t, base)
		gcc := base
		gcc.Opt = core.OptGCC
		over := mustRun(t, gcc)
		if over.Seconds > nbc.Seconds*1.001 {
			t.Errorf("shape %v: GC-C %.4fs slower than NB-C %.4fs", shape, over.Seconds, nbc.Seconds)
		}
		if over.CommSummary().Max >= nbc.CommSummary().Max {
			t.Errorf("shape %v: GC-C exposed comm %.4fs not below NB-C %.4fs",
				shape, over.CommSummary().Max, nbc.CommSummary().Max)
		}
	}
}

// TestBoundedAxesReduceCommunication: with bounded (non-periodic) axes,
// edge ranks skip the wraparound messages, so the simulated schedule must
// be no slower than the periodic one, strictly cheaper in exposed
// communication, and report a smaller per-axis surface when every rank of
// an axis is an edge rank (P = 2).
func TestBoundedAxesReduceCommunication(t *testing.T) {
	base := Job{
		Machine: machine.BGQ(), Spec: machine.SpecD3Q19(), K: 1,
		Nodes: 8, TasksPerNode: 2, ThreadsPerTask: 1,
		NX: 64, NY: 64, NZ: 64,
		Decomp: [3]int{4, 2, 2},
		Steps:  12, Depth: 1, Opt: core.OptNBC, Seed: 3,
	}
	periodic := mustRun(t, base)
	bounded := base
	bounded.Bounded = [3]bool{true, true, false}
	bnd := mustRun(t, bounded)

	sum := func(cs []float64) float64 {
		var s float64
		for _, c := range cs {
			s += c
		}
		return s
	}
	if sum(bnd.CommSeconds) >= sum(periodic.CommSeconds) {
		t.Errorf("bounded comm %g not below periodic %g", sum(bnd.CommSeconds), sum(periodic.CommSeconds))
	}
	if bnd.Seconds > periodic.Seconds*1.0001 {
		t.Errorf("bounded run slower than periodic: %g vs %g", bnd.Seconds, periodic.Seconds)
	}
	// y and z have P=2: every rank is an edge rank on y, so the bounded y
	// surface halves; the periodic z axis is untouched.
	if got, want := bnd.AxisBytes[1], periodic.AxisBytes[1]/2; got != want {
		t.Errorf("bounded y-axis bytes = %g, want %g", got, want)
	}
	if bnd.AxisBytes[2] != periodic.AxisBytes[2] {
		t.Errorf("periodic z-axis bytes changed: %g vs %g", bnd.AxisBytes[2], periodic.AxisBytes[2])
	}
	// x has P=4: interior x ranks still message both ways, so the busiest
	// rank's x surface is unchanged.
	if bnd.AxisBytes[0] != periodic.AxisBytes[0] {
		t.Errorf("x-axis busiest-rank bytes changed: %g vs %g", bnd.AxisBytes[0], periodic.AxisBytes[0])
	}

	// The bounded slab schedule: a 2-rank slab with a bounded x axis
	// exchanges one face per rank instead of two.
	slab := Job{
		Machine: machine.BGQ(), Spec: machine.SpecD3Q19(), K: 1,
		Nodes: 2, TasksPerNode: 1, ThreadsPerTask: 1,
		NX: 64, NY: 32, NZ: 32,
		Steps: 10, Depth: 1, Opt: core.OptGC, Seed: 5,
	}
	slabP := mustRun(t, slab)
	slabB := slab
	slabB.Bounded = [3]bool{true, false, false}
	slabBnd := mustRun(t, slabB)
	if got, want := slabBnd.AxisBytes[0], slabP.AxisBytes[0]/2; got != want {
		t.Errorf("bounded slab x bytes = %g, want %g", got, want)
	}
	if sum(slabBnd.CommSeconds) >= sum(slabP.CommSeconds) {
		t.Errorf("bounded slab comm %g not below periodic %g", sum(slabBnd.CommSeconds), sum(slabP.CommSeconds))
	}

	// Orig cannot run bounded (no ghost layer to fill).
	bad := slabB
	bad.Opt = core.OptOrig
	if _, err := Run(bad); err == nil {
		t.Error("bounded Orig accepted")
	}
}

// TestAAStreamModel: the AA in-place scheme must halve the resident field
// footprint (one field instead of two) and run at least as fast as the
// two-grid layout at the same configuration (a third less streamed
// traffic on a bandwidth-bound kernel), with odd ghost depths rounded up
// to the even pair cadence rather than rejected.
func TestAAStreamModel(t *testing.T) {
	tg := fig8Job(machine.BGP(), machine.SpecD3Q19(), 1, core.OptSIMD)
	tg.Depth = 2 // even: AA's pair-cadence rounding leaves the halo margins equal
	aa := tg
	aa.Stream = core.StreamAA
	rtg := mustRun(t, tg)
	raa := mustRun(t, aa)
	if got, want := raa.BytesPerTask, rtg.BytesPerTask/2; got != want {
		t.Errorf("AA BytesPerTask = %g, want half of two-grid (%g)", got, want)
	}
	if raa.MFlups < rtg.MFlups {
		t.Errorf("AA MFlups %.0f < two-grid %.0f: less traffic must not be slower", raa.MFlups, rtg.MFlups)
	}
	odd := aa
	odd.Depth = 3
	even := aa
	even.Depth = 4
	ro, re := mustRun(t, odd), mustRun(t, even)
	if ro.Seconds != re.Seconds {
		t.Errorf("AA depth 3 (rounds to 4) simulated %.3fs, depth 4 %.3fs; want equal", ro.Seconds, re.Seconds)
	}
	orig := tg
	orig.Opt = core.OptOrig
	orig.Stream = core.StreamAA
	if _, err := Run(orig); err == nil {
		t.Error("AA + OptOrig accepted; the no-ghost protocol has nowhere to exchange pairs")
	}
}

// maskedJob is an 8-rank slab over a domain whose fluid lives entirely in
// the first quarter of the x axis — the concentrated-work profile where
// equal-extent cuts leave six of eight ranks idle.
func maskedJob(fluids []int, weights [3][]int) Job {
	return Job{
		Machine: machine.BGQ(), Spec: machine.SpecD3Q19(), K: 1,
		Nodes: 8, TasksPerNode: 1, ThreadsPerTask: 1,
		NX: 128, NY: 32, NZ: 32,
		Steps: 10, Depth: 1, Opt: core.OptNBC, Seed: 1,
		Weights: weights, RankFluids: fluids,
	}
}

// TestRankFluidsBalancedCuts: with the sparse cost model (per-rank compute
// windows scale by fluid fraction), fluid-balanced cut placement must
// predict a strictly faster run than equal-extent volume cuts over the
// same mask — the observe-predict counterpart of `lbmbench -exp balance`.
func TestRankFluidsBalancedCuts(t *testing.T) {
	d := grid.Dims{NX: 128, NY: 32, NZ: 32}
	mask := geom.FromFunc(d, func(ix, iy, iz int) bool {
		return ix >= d.NX/4 // fluid quarter at low x, solid elsewhere
	})
	global := [3]int{d.NX, d.NY, d.NZ}
	p := [3]int{8, 1, 1}

	volDec, err := decomp.NewCartesian(global, p)
	if err != nil {
		t.Fatal(err)
	}
	volume := mustRun(t, maskedJob(FluidCounts(volDec, mask), [3][]int{}))

	wx := mask.PlaneFluids(0)
	balDec, err := decomp.NewCartesianWeighted(global, p, [3]bool{}, [3][]int{wx})
	if err != nil {
		t.Fatal(err)
	}
	balanced := mustRun(t, maskedJob(FluidCounts(balDec, mask), [3][]int{wx}))

	// Volume cuts concentrate all fluid on two of eight ranks; balanced
	// cuts spread it across the team, so the critical path must shrink by
	// well over the 1.5× acceptance floor of the end-to-end experiment.
	if balanced.Seconds >= volume.Seconds/1.5 {
		t.Errorf("balanced cuts %.4gs not 1.5x under volume cuts %.4gs", balanced.Seconds, volume.Seconds)
	}
	if balanced.MFlups <= volume.MFlups {
		t.Errorf("balanced MFlups %.0f not above volume %.0f", balanced.MFlups, volume.MFlups)
	}
	// Both normalize Mflup/s by fluid cells, not box volume: an all-dense
	// job of the same box at the same wall time would report 4x the rate.
	if fl, box := mask.Fluids(), d.Cells(); fl*4 != box {
		t.Fatalf("mask fluid fraction drifted: %d fluid of %d cells", fl, box)
	}
}

// TestRankFluidsValidation: the sparse cost model's inputs are checked —
// length, sign, emptiness, and exclusivity with the synthetic Imbalance
// knob (the mask is the imbalance).
func TestRankFluidsValidation(t *testing.T) {
	d := grid.Dims{NX: 128, NY: 32, NZ: 32}
	mask := geom.FromFunc(d, func(ix, iy, iz int) bool { return ix >= d.NX/4 })
	dec, err := decomp.NewCartesian([3]int{d.NX, d.NY, d.NZ}, [3]int{8, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	fluids := FluidCounts(dec, mask)

	bad := maskedJob(fluids, [3][]int{})
	bad.Imbalance = 0.05
	if _, err := Run(bad); err == nil {
		t.Error("RankFluids with synthetic Imbalance accepted")
	}
	bad = maskedJob(fluids[:4], [3][]int{})
	if _, err := Run(bad); err == nil {
		t.Error("short RankFluids accepted")
	}
	neg := append([]int(nil), fluids...)
	neg[0] = -1
	bad = maskedJob(neg, [3][]int{})
	if _, err := Run(bad); err == nil {
		t.Error("negative fluid count accepted")
	}
	bad = maskedJob(make([]int, 8), [3][]int{})
	if _, err := Run(bad); err == nil {
		t.Error("all-zero fluid counts accepted")
	}
}

// TestRankPhasesSumToClock: the phase decomposition must be exact — every
// term added to a rank's phase vector is a clock-delta term of the same
// schedule branch, so the vector sums to the rank's total to float
// round-off, on every protocol and decomposition.
func TestRankPhasesSumToClock(t *testing.T) {
	m := machine.BGP()
	spec := machine.SpecD3Q19()
	jobs := []Job{
		{Machine: m, Spec: spec, K: 1, Nodes: 4, TasksPerNode: 1, ThreadsPerTask: 1,
			NX: 64, NY: 32, NZ: 32, Steps: 6, Depth: 1, Opt: core.OptOrig, Seed: 3},
		{Machine: m, Spec: spec, K: 1, Nodes: 4, TasksPerNode: 1, ThreadsPerTask: 1,
			NX: 64, NY: 32, NZ: 32, Steps: 6, Depth: 1, Opt: core.OptGC, Seed: 3},
		{Machine: m, Spec: spec, K: 1, Nodes: 4, TasksPerNode: 1, ThreadsPerTask: 1,
			NX: 64, NY: 32, NZ: 32, Steps: 6, Depth: 2, Opt: core.OptNBC, Seed: 3},
		{Machine: m, Spec: spec, K: 1, Nodes: 4, TasksPerNode: 1, ThreadsPerTask: 1,
			NX: 64, NY: 32, NZ: 32, Steps: 6, Depth: 2, Opt: core.OptGCC, Imbalance: 0.05, Seed: 3},
		{Machine: m, Spec: spec, K: 1, Nodes: 8, TasksPerNode: 1, ThreadsPerTask: 1,
			NX: 64, NY: 64, NZ: 32, Decomp: [3]int{2, 2, 2}, Steps: 6, Depth: 1, Opt: core.OptGCC, Seed: 3},
		{Machine: m, Spec: spec, K: 1, Nodes: 8, TasksPerNode: 1, ThreadsPerTask: 1,
			NX: 64, NY: 64, NZ: 32, Decomp: [3]int{2, 4, 1}, Steps: 6, Depth: 1, Opt: core.OptSIMD, Seed: 3},
	}
	for _, j := range jobs {
		res := mustRun(t, j)
		if len(res.RankPhases) != len(res.PerRankSeconds) {
			t.Fatalf("%v decomp %v: %d phase vectors for %d ranks", j.Opt, j.Decomp, len(res.RankPhases), len(res.PerRankSeconds))
		}
		for r, ph := range res.RankPhases {
			want := res.PerRankSeconds[r]
			if got := ph.Total(); want == 0 || got < want*(1-1e-9) || got > want*(1+1e-9) {
				t.Errorf("%v decomp %v rank %d: phases sum to %.9f, clock %.9f", j.Opt, j.Decomp, r, got, want)
			}
		}
	}
}
