// Package perfsim is a discrete-event performance simulator for the
// paper-scale experiments: it executes the solver's communication and
// computation *schedule* — the same deep-halo cycles, message sizes,
// blocking/non-blocking/overlapped exchange semantics and load imbalance
// propagation as internal/core — against the Blue Gene machine models of
// internal/machine, using virtual clocks instead of real kernels.
//
// This is the substitution layer (DESIGN.md): the repository's real kernels
// demonstrate every trade-off at laptop scale, and perfsim projects the
// same schedule onto the published hardware constants to regenerate the
// shapes of Fig. 8-11 and Tables III/IV at 128-2048 ranks.
//
// Per-optimization-level efficiency factors are calibrated once, in
// calibration.go, against the paper's own statements (e.g. "DH gained 30%
// on BG/P but 75% on BG/Q", "O3 on BG/Q produced 2.5×"); everything else —
// ghost-cell overhead, message counts and sizes, overlap windows, the
// min/median/max communication spread — emerges from the simulated
// schedule.
package perfsim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/geom"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Job describes one simulated run.
type Job struct {
	Machine machine.Machine
	Spec    machine.KernelSpec
	// K is the lattice max speed (planes crossed per step): 1 for D3Q19,
	// 3 for D3Q39.
	K int
	// CrossPlaneVels[m-1] counts velocities with cx ≥ m (populations that
	// cross m planes), sizing the naive protocol's per-step messages. Use
	// DefaultCross. Symmetric in the two directions.
	CrossPlaneVels []int

	Nodes          int
	TasksPerNode   int
	ThreadsPerTask int

	// NX, NY, NZ is the global domain, decomposed across all tasks.
	NX, NY, NZ int
	// Decomp is the rank-grid shape (Px, Py, Pz); its product must equal
	// Nodes × TasksPerNode. The zero value selects the paper's 1-D slab.
	// Multi-axis shapes model the sequential per-axis exchange of the
	// real cart solver: per-axis message sizes shrink with the block
	// cross-sections, which is how 3-D beats 1-D per-rank surface at
	// scale.
	Decomp [3]int
	// Bounded marks non-periodic axes (walls, lids, outflow): the edge
	// ranks of a bounded axis have no wraparound partner, so they skip
	// the message across the global boundary and write their boundary
	// ghost faces locally instead (a memory copy, not a message) — the
	// schedule of the bounded solver. An interior rank of a bounded axis
	// communicates exactly like a periodic one.
	Bounded [3]bool
	Steps   int
	Depth   int // ghost-cell depth (1 for OptOrig)
	Opt     core.OptLevel
	// Fused models the fused stream-collide kernel: one read and one
	// write of the field per step instead of the split path's three
	// accesses, so the streamed bytes per cell drop to 2/3 (the same
	// traffic argument as the AA scheme, which it is incompatible with).
	// Requires a ghost-cell level.
	Fused bool
	// Stream selects the storage scheme modeled. The two-grid layout keeps
	// two resident fields and streams three field accesses per cell per
	// step (read f, write fadv, re-read for the collide); the AA in-place
	// scheme keeps one field touched twice per sub-step, so the resident
	// footprint halves and the streamed traffic drops by a third. AA
	// exchanges only at pair boundaries, so Depth rounds up to even.
	Stream core.StreamScheme

	// Weights, when non-nil on a decomposed axis, places that axis's cut
	// planes by weighted recursive bisection (decomp.NewCartesianWeighted
	// over the axis's per-plane fluid histogram, geom.PlaneFluids) instead
	// of equal extents — the solver's -balance fluid policy. The rank grid
	// and schedule are unchanged; only the per-rank extents move.
	Weights [3][]int
	// RankFluids, when non-nil, gives each rank's fluid-cell count (length
	// Nodes × TasksPerNode, e.g. from FluidCounts): compute windows scale
	// by each rank's fluid fraction — the sparse-traversal cost model on a
	// masked domain — and MFlups normalizes by total fluid cells, the
	// paper's Mflup/s. The geometry then IS the load imbalance, so the
	// synthetic Imbalance knob is rejected alongside it (Persistent-
	// Imbalance, which models machine asymmetry rather than work
	// asymmetry, still composes).
	RankFluids []int

	// Imbalance is the peak fractional per-step compute jitter (uniform in
	// [0, Imbalance], redrawn every step); PersistentImbalance is a
	// per-rank slowdown drawn once per run (uniform in [0, Persistent-
	// Imbalance]) modeling structural asymmetry — OS noise pinned to
	// certain nodes, network position — which is what stretches the
	// paper's Fig. 9 min→max span to 4.8-40 s. Seed makes both
	// reproducible.
	Imbalance           float64
	PersistentImbalance float64
	Seed                uint64

	// Coeffs, when non-nil, replaces the named-machine calibration with a
	// fitted coefficient set (see coeffs.go): the closed-loop calibration
	// path of internal/tune. The Machine then only supplies the hardware
	// envelope (core counts for validation, the flop roofline, node
	// memory for the OOM check); every rate comes from the coefficients.
	Coeffs *Coeffs
	// CellCost scales the per-cell kernel cost (bytes and flops): the
	// fitted cost of a non-BGK collision kernel or a storage-scheme
	// correction, usually Coeffs.CellCost(...). Zero means 1.
	CellCost float64
}

// FluidCounts returns each rank's fluid-cell count under dec: the
// per-rank work profile a masked job hands to Job.RankFluids, and the
// objective a candidate cut placement is priced on.
func FluidCounts(dec decomp.Cartesian, mask *geom.Mask) []int {
	out := make([]int, dec.Ranks())
	for r := range out {
		var lo, hi [3]int
		for a := 0; a < 3; a++ {
			s, n := dec.Own(r, a)
			lo[a], hi[a] = s, s+n
		}
		out[r] = mask.FluidsInBox(lo, hi)
	}
	return out
}

// DefaultCross returns the crossing-velocity counts for the two lattices of
// the paper: D3Q19 has 5 populations with cx ≥ 1; D3Q39 has 11 with cx ≥ 1,
// 6 with cx ≥ 2 and 1 with cx ≥ 3.
func DefaultCross(q int) []int {
	switch q {
	case 19:
		return []int{5}
	case 39:
		return []int{11, 6, 1}
	default:
		return []int{q / 4}
	}
}

// Result reports the simulated execution.
type Result struct {
	// Seconds is the slowest rank's finish time.
	Seconds float64
	// MFlups is steps × interior cells / seconds / 1e6.
	MFlups float64
	// PerRankSeconds and CommSeconds give per-rank totals; CommSeconds is
	// the exposed (non-overlapped) communication wait, the paper's Fig. 9
	// quantity.
	PerRankSeconds []float64
	CommSeconds    []float64
	// BytesPerTask is the resident field memory per task; OOM reports
	// whether it exceeds the per-task share of node memory (the paper's
	// "individual nodes ran out of memory" cases).
	BytesPerTask float64
	OOM          bool
	// GhostUpdateFraction is extra ghost-cell updates / interior updates.
	GhostUpdateFraction float64
	// AxisBytes is the per-rank halo payload sent along each axis per
	// full exchange (widest rank, both directions): the per-axis
	// communication surface of the decomposition shape. Zero on
	// undecomposed axes and for the no-ghost Orig protocol.
	AxisBytes [3]float64
	// RankPhases decomposes each rank's clock into the observability
	// layer's phase taxonomy (interior, rim, pack, wire, unpack, face):
	// the predicted counterpart of a real run's per-phase breakdown, the
	// observe-predict bridge of the calibration loop. The terms sum to
	// PerRankSeconds exactly by construction.
	RankPhases []obs.PhaseSeconds
}

// SurfaceBytes returns the total per-rank halo payload per exchange.
func (r *Result) SurfaceBytes() float64 {
	return r.AxisBytes[0] + r.AxisBytes[1] + r.AxisBytes[2]
}

// CommSummary returns min/median/max of per-rank exposed communication time.
func (r *Result) CommSummary() metrics.Summary { return metrics.Summarize(r.CommSeconds) }

func (j *Job) validate() error {
	if j.Nodes < 1 || j.TasksPerNode < 1 || j.ThreadsPerTask < 1 {
		return fmt.Errorf("perfsim: nodes/tasks/threads must be >= 1")
	}
	hw := j.TasksPerNode * j.ThreadsPerTask
	if maxHW := j.Machine.CoresPerNode * j.Machine.ThreadsPerCore; hw > maxHW {
		return fmt.Errorf("perfsim: %d tasks × %d threads = %d exceeds %d hardware threads on %s",
			j.TasksPerNode, j.ThreadsPerTask, hw, maxHW, j.Machine.Name)
	}
	if j.Depth < 1 {
		return fmt.Errorf("perfsim: depth %d < 1", j.Depth)
	}
	if j.Opt == core.OptOrig && j.Depth != 1 {
		return fmt.Errorf("perfsim: OptOrig requires depth 1")
	}
	if j.K < 1 {
		return fmt.Errorf("perfsim: K %d < 1", j.K)
	}
	ranks := j.Nodes * j.TasksPerNode
	if j.Decomp == ([3]int{}) {
		j.Decomp = [3]int{ranks, 1, 1}
	}
	if got := j.Decomp[0] * j.Decomp[1] * j.Decomp[2]; got != ranks {
		return fmt.Errorf("perfsim: decomposition %dx%dx%d covers %d ranks, job has %d",
			j.Decomp[0], j.Decomp[1], j.Decomp[2], got, ranks)
	}
	if j.Opt == core.OptOrig && !(j.Decomp[1] == 1 && j.Decomp[2] == 1) {
		return fmt.Errorf("perfsim: the no-ghost Orig protocol is slab-only")
	}
	if j.Opt == core.OptOrig && j.Bounded != ([3]bool{}) {
		return fmt.Errorf("perfsim: the no-ghost Orig protocol is periodic-only (boundaries need ghost cells)")
	}
	for a, n := range [3]int{j.NX, j.NY, j.NZ} {
		if n < j.Decomp[a] {
			return fmt.Errorf("perfsim: axis %d extent %d < %d ranks", a, n, j.Decomp[a])
		}
	}
	if j.Steps < 1 {
		return fmt.Errorf("perfsim: steps %d < 1", j.Steps)
	}
	if j.Fused {
		if j.Opt == core.OptOrig {
			return fmt.Errorf("perfsim: the fused kernel requires ghost cells (OptOrig is split-only)")
		}
		if j.Stream == core.StreamAA {
			return fmt.Errorf("perfsim: AA streaming is inherently fused; drop Fused")
		}
	}
	if j.CellCost < 0 {
		return fmt.Errorf("perfsim: negative cell-cost multiplier %g", j.CellCost)
	}
	if j.Coeffs != nil {
		if err := j.Coeffs.Validate(); err != nil {
			return err
		}
	}
	if j.RankFluids != nil {
		if len(j.RankFluids) != ranks {
			return fmt.Errorf("perfsim: %d rank fluid counts, job has %d ranks", len(j.RankFluids), ranks)
		}
		var sum int64
		for r, n := range j.RankFluids {
			if n < 0 {
				return fmt.Errorf("perfsim: negative fluid count %d at rank %d", n, r)
			}
			sum += int64(n)
		}
		if sum == 0 {
			return fmt.Errorf("perfsim: rank fluid counts sum to zero")
		}
		if j.Imbalance > 0 {
			return fmt.Errorf("perfsim: RankFluids and the synthetic Imbalance knob are exclusive (the mask is the imbalance)")
		}
	}
	return nil
}

// rates bundles the per-task effective rates derived from the machine
// model, thread configuration and optimization level.
type rates struct {
	taskBW    float64 // bytes/s streamed by one task's kernels
	taskBWRaw float64 // bytes/s for pack/unpack copies (no kernel penalty)
	taskFlops float64 // flop/s for one task
	linkBW    float64
	latency   float64
	intraBW   float64 // bytes/s for halo hops between tasks of one node
	msgSW     float64 // per-message software cost on the critical path
}

func (j *Job) deriveRates() rates {
	m := j.Machine
	if c := j.Coeffs; c != nil {
		// Fitted-coefficient path: one effective kernel bandwidth with a
		// worker-count saturation ramp and the Amdahl thread penalty; the
		// machine model contributes only the flop roofline (the kernels
		// are bandwidth-bound everywhere the fit applies).
		totalHW := float64(j.TasksPerNode * j.ThreadsPerTask)
		bwFrac := totalHW / c.BWSaturation
		if bwFrac > 1 {
			bwFrac = 1
		}
		eff := c.parallelEff(j.ThreadsPerTask)
		tpn := float64(j.TasksPerNode)
		return rates{
			taskBW:    c.MemBW * bwFrac / tpn * eff,
			taskBWRaw: c.CopyBW * bwFrac / tpn * eff,
			taskFlops: m.PeakFlops / tpn,
			linkBW:    c.LinkBW,
			latency:   c.Latency,
			intraBW:   c.CopyBW,
			msgSW:     c.MsgSW,
		}
	}
	cal := calibrationFor(m.Name)
	memEff := cal.memEff[j.Opt]
	flopEff := cal.flopEff(j.Opt)

	totalHW := float64(j.TasksPerNode * j.ThreadsPerTask)
	cores := float64(m.CoresPerNode)
	coreEquiv := totalHW
	if totalHW > cores {
		coreEquiv = cores + cal.smtYield*(totalHW-cores)
	}
	bwFrac := coreEquiv / cal.bwSaturationUnits
	if bwFrac > 1 {
		bwFrac = 1
	}
	flopFrac := coreEquiv / cores
	if flopFrac > 1 {
		flopFrac = 1
	}
	// The thread team's parallel efficiency scales every compute window:
	// each extra worker adds a serial fraction (chunk claims, batch
	// barriers), which is the reason 4 tasks × 16 threads beats 1 × 64
	// on BG/Q even though both saturate the node.
	eff := cal.parallelEff(j.ThreadsPerTask)

	tpn := float64(j.TasksPerNode)
	return rates{
		taskBW:    m.MemBWBytes * memEff * bwFrac / tpn * eff,
		taskBWRaw: m.MemBWBytes * bwFrac / tpn * eff,
		taskFlops: m.PeakFlops * flopEff * flopFrac / tpn * eff,
		linkBW:    m.TorusLinkBytes,
		latency:   m.LinkLatency,
		intraBW:   m.MemBWBytes / 2,
		msgSW:     cal.msgSWOverhead,
	}
}

// Run simulates the job and returns its result.
func Run(j Job) (*Result, error) {
	if err := j.validate(); err != nil {
		return nil, err
	}
	if j.CrossPlaneVels == nil {
		j.CrossPlaneVels = DefaultCross(j.Spec.Q)
	}
	fields := 2.0
	if j.Stream == core.StreamAA {
		if j.Opt == core.OptOrig {
			return nil, fmt.Errorf("perfsim: AA streaming requires ghost cells (OptOrig is two-grid-only)")
		}
		if j.Depth%2 == 1 {
			j.Depth++
		}
		fields = 1
		// 456 B/cell for D3Q19 is exactly 3 accesses × 8 B × 19; AA makes 2.
		j.Spec.BytesPerCell *= 2.0 / 3.0
	}
	if j.Fused {
		// One read + one write per cell instead of three accesses; the
		// resident footprint stays two fields.
		j.Spec.BytesPerCell *= 2.0 / 3.0
	}
	if j.CellCost > 0 {
		j.Spec.BytesPerCell *= j.CellCost
		j.Spec.FlopsPerCell *= j.CellCost
	}
	ranks := j.Nodes * j.TasksPerNode
	dec, err := decomp.NewCartesianWeighted([3]int{j.NX, j.NY, j.NZ}, j.Decomp, j.Bounded, j.Weights)
	if err != nil {
		return nil, err
	}
	rt := j.deriveRates()
	w := j.Depth * j.K
	plane := float64(j.NY * j.NZ)
	q := float64(j.Spec.Q)

	// Per-task memory: the scheme's resident fields (two for two-grid, one
	// for AA) over the owned block plus margins — 2W per decomposed-path
	// axis (slab: x only; multi-axis: all three), 2k for OptOrig.
	var bytesPerTask float64
	if dec.IsSlab() {
		maxOwn := float64(dec.MaxOwn(0))
		margins := float64(2 * w)
		if j.Opt == core.OptOrig {
			margins = float64(2 * j.K)
		}
		bytesPerTask = fields * 8 * q * (maxOwn + margins) * plane
	} else {
		cells := 1.0
		for a := 0; a < 3; a++ {
			cells *= float64(dec.MaxOwn(a) + 2*w)
		}
		bytesPerTask = fields * 8 * q * cells
	}
	oom := bytesPerTask > j.Machine.MemPerNodeBytes/float64(j.TasksPerNode)

	st := &simState{
		j: j, dec: dec, rt: rt, ranks: ranks,
		w: w, plane: plane, q: q,
		clock: make([]float64, ranks),
		comm:  make([]float64, ranks),
		phase: make([]obs.PhaseSeconds, ranks),
		rng:   make([]*metrics.RNG, ranks),
		slow:  make([]float64, ranks),
	}
	for r := 0; r < ranks; r++ {
		st.rng[r] = metrics.NewRNG(j.Seed*0x9e3779b97f4a7c15 + uint64(r) + 1)
		st.slow[r] = 1 + j.PersistentImbalance*st.rng[r].Float64()
	}
	if j.RankFluids != nil {
		// Sparse-traversal cost model: each rank's compute window scales by
		// its fluid fraction — the cut placement, not a random draw, decides
		// who the straggler is.
		st.ffrac = make([]float64, ranks)
		for r := 0; r < ranks; r++ {
			var vol float64 = 1
			for a := 0; a < 3; a++ {
				_, n := dec.Own(r, a)
				vol *= float64(n)
			}
			st.ffrac[r] = float64(j.RankFluids[r]) / vol
		}
	}
	ghost := st.run()

	res := &Result{
		PerRankSeconds: st.clock,
		CommSeconds:    st.comm,
		BytesPerTask:   bytesPerTask,
		OOM:            oom,
		AxisBytes:      st.axisBytes(),
		RankPhases:     st.phase,
	}
	for _, c := range st.clock {
		if c > res.Seconds {
			res.Seconds = c
		}
	}
	interior := float64(j.Steps) * float64(j.NX) * plane
	cells := j.NX * j.NY * j.NZ
	if j.RankFluids != nil {
		// Mflup/s counts fluid-cell updates, the paper's normalization for
		// sparse geometries (and the solver's own MFlups on masked runs).
		cells = 0
		for _, n := range j.RankFluids {
			cells += n
		}
	}
	res.MFlups = metrics.MFlupsFromSeconds(j.Steps, cells, res.Seconds)
	res.GhostUpdateFraction = ghost / interior
	return res, nil
}

// simState carries the virtual clocks through the cycle loop.
type simState struct {
	j     Job
	dec   decomp.Cartesian
	rt    rates
	ranks int
	w     int
	plane float64
	q     float64
	clock []float64
	comm  []float64
	phase []obs.PhaseSeconds // per-rank clock decomposition (Result.RankPhases)
	rng   []*metrics.RNG
	slow  []float64 // per-rank persistent slowdown factor
	ffrac []float64 // per-rank fluid fraction (nil = dense, fraction 1)
}

// fluidScale returns rank r's compute-window scale: its fluid fraction
// under the sparse cost model, 1 on dense jobs.
func (st *simState) fluidScale(r int) float64 {
	if st.ffrac == nil {
		return 1
	}
	return st.ffrac[r]
}

// sameNode reports whether two ranks are tasks of one node (consecutive
// ranks fill a node). Intra-node halo traffic bypasses the torus.
func (st *simState) sameNode(a, b int) bool {
	return a/st.j.TasksPerNode == b/st.j.TasksPerNode
}

// stepTime returns the jittered compute time of step s of a cycle on rank
// r: max of the bandwidth and flop rooflines over the computed planes.
// Ghost-cell implementations additionally collide k boundary rows per side
// every step, the overhead the paper notes is "not accounted for" in its
// performance model ("2 extra boundary rows are added around each
// processor boundary", §VI) — collision is roughly half a cell update, so
// the two sides cost k plane-equivalents.
func (st *simState) stepTime(r, s int) float64 {
	_, own := st.dec.Own(r, decomp.AxisX)
	extra := float64(2 * (st.j.Depth - s - 1) * st.j.K)
	if st.j.Opt != core.OptOrig {
		extra += float64(st.j.K)
	}
	cells := (float64(own) + extra) * st.plane * st.fluidScale(r)
	tb := cells * st.j.Spec.BytesPerCell / st.rt.taskBW
	tf := cells * st.j.Spec.FlopsPerCell / st.rt.taskFlops
	t := tb
	if tf > t {
		t = tf
	}
	return t * st.slow[r] * (1 + st.j.Imbalance*st.rng[r].Float64())
}

// ghostExtraCells returns the per-cycle ghost-region updates of rank r.
func (st *simState) ghostExtraCells(runLen int) float64 {
	var extra float64
	for s := 0; s < runLen; s++ {
		extra += float64(2 * (st.j.Depth - s - 1) * st.j.K)
	}
	return extra * st.plane
}

// run executes all cycles and returns total ghost-cell updates.
func (st *simState) run() float64 {
	j := st.j
	if j.Opt == core.OptOrig {
		return st.runOrig()
	}
	if !st.dec.IsSlab() {
		return st.runMulti()
	}
	var ghost float64
	haloBytes := st.q * float64(st.w) * st.plane * 8 // per direction
	wire := st.rt.latency + haloBytes/st.rt.linkBW
	// Halo traffic between tasks of one node moves through shared memory,
	// not the torus.
	wireIntra := haloBytes / st.rt.intraBW
	faceT := haloBytes / st.rt.taskBWRaw
	// Each cycle touches two border faces (packed toward neighbors, or
	// written in place from boundary data on a bounded edge — same copy
	// cost either way) and two ghost faces (unpacked or boundary-filled).
	packT := 2 * faceT
	unpackT := packT
	sw := st.rt.msgSW

	sendAt := make([]float64, st.ranks)
	for done := 0; done < j.Steps; {
		runLen := j.Depth
		if rest := j.Steps - done; rest < runLen {
			runLen = rest
		}
		// Borders are ready at cycle start; every protocol packs first.
		for r := 0; r < st.ranks; r++ {
			sendAt[r] = st.clock[r] + packT
		}
		for r := 0; r < st.ranks; r++ {
			left := st.dec.Neighbor(r, decomp.AxisX, -1)
			right := st.dec.Neighbor(r, decomp.AxisX, +1)
			// A bounded-axis edge rank has fewer messages: nothing crosses
			// the global boundary in either direction.
			nmsg := 0.0
			recvReady := math.Inf(-1)
			if left != decomp.NoNeighbor {
				nmsg++
				wl := wire
				if st.sameNode(r, left) {
					wl = wireIntra
				}
				if t := sendAt[left] + sw + wl; t > recvReady {
					recvReady = t
				}
			}
			if right != decomp.NoNeighbor {
				nmsg++
				wr := wire
				if st.sameNode(r, right) {
					wr = wireIntra
				}
				if t := sendAt[right] + sw + wr; t > recvReady {
					recvReady = t
				}
			}
			// Phase decomposition (Result.RankPhases): each branch's terms
			// are exactly the clock-delta terms, so phases sum to the clock
			// by construction. The posting software cost joins Pack (it is
			// send-side work); a blocked send's wire joins Wire.
			ph := &st.phase[r]
			ph[obs.Pack] += packT + nmsg*sw
			ph[obs.Unpack] += unpackT
			switch {
			case j.Opt >= core.OptGCC:
				// Overlap: interior of the first step hides the wait; the
				// posting software cost is not hideable.
				t0 := st.stepTime(r, 0)
				_, own := st.dec.Own(r, decomp.AxisX)
				interior := float64(own-2*j.K) / (float64(own) + float64(2*(j.Depth-1)*j.K))
				if interior < 0 {
					interior = 0
				}
				rimStart := sendAt[r] + nmsg*sw + interior*t0
				wait := recvReady - rimStart
				if wait < 0 || math.IsInf(wait, -1) {
					wait = 0
				}
				st.comm[r] += nmsg*sw + wait + unpackT
				st.clock[r] = rimStart + wait + unpackT + (1-interior)*t0
				ph[obs.Interior] += interior * t0
				ph[obs.Rim] += (1 - interior) * t0
				ph[obs.Wire] += wait
				for s := 1; s < runLen; s++ {
					dt := st.stepTime(r, s)
					st.clock[r] += dt
					ph[obs.Interior] += dt
				}
			case j.Opt >= core.OptNBC:
				// Non-blocking: sends are DMA'd; the rank pays the posting
				// software cost and then waits only for the receives.
				ready := sendAt[r] + nmsg*sw
				if recvReady > ready {
					ready = recvReady
				}
				st.comm[r] += (ready - sendAt[r]) + unpackT
				st.clock[r] = ready + unpackT
				ph[obs.Wire] += ready - sendAt[r] - nmsg*sw
				for s := 0; s < runLen; s++ {
					dt := st.stepTime(r, s)
					st.clock[r] += dt
					ph[obs.Interior] += dt
				}
			default:
				// Blocking sends return only after delivery: the software
				// costs of the directions serialize, then the wire.
				sendDone := sendAt[r] + nmsg*sw
				if nmsg > 0 {
					sendDone += wire
				}
				ready := sendDone
				if recvReady > ready {
					ready = recvReady
				}
				st.comm[r] += (ready - st.clock[r] - packT) + unpackT
				st.clock[r] = ready + unpackT
				ph[obs.Wire] += ready - sendAt[r] - nmsg*sw
				for s := 0; s < runLen; s++ {
					dt := st.stepTime(r, s)
					st.clock[r] += dt
					ph[obs.Interior] += dt
				}
			}
			ghost += st.ghostExtraCells(runLen)
		}
		done += runLen
	}
	return ghost
}

// runOrig simulates the naive protocol: stream, blocking exchange of the
// crossed populations, collide — every step.
func (st *simState) runOrig() float64 {
	j := st.j
	var crossVals float64
	for _, c := range j.CrossPlaneVels {
		crossVals += float64(c)
	}
	msgBytes := crossVals * st.plane * 8
	wire := st.rt.latency + msgBytes/st.rt.linkBW
	wireIntra := msgBytes / st.rt.intraBW
	packT := 2 * msgBytes / st.rt.taskBWRaw
	// The naive code sends one message per crossed plane per direction
	// (before the message-aggregation tuning), each paying the software
	// cost.
	nmsg := float64(j.K)
	sw := st.rt.msgSW
	sendAt := make([]float64, st.ranks)
	stepT := make([]float64, st.ranks)
	for s := 0; s < j.Steps; s++ {
		for r := 0; r < st.ranks; r++ {
			stepT[r] = st.stepTime(r, 0)
			sendAt[r] = st.clock[r] + 0.5*stepT[r] + packT
		}
		for r := 0; r < st.ranks; r++ {
			left := st.dec.Neighbor(r, decomp.AxisX, -1)
			right := st.dec.Neighbor(r, decomp.AxisX, +1)
			wl, wr := wire, wire
			if st.sameNode(r, left) {
				wl = wireIntra
			}
			if st.sameNode(r, right) {
				wr = wireIntra
			}
			recvReady := sendAt[left] + nmsg*sw + wl
			if t := sendAt[right] + nmsg*sw + wr; t > recvReady {
				recvReady = t
			}
			sendDone := sendAt[r] + 2*nmsg*sw + wire
			ready := sendDone
			if recvReady > ready {
				ready = recvReady
			}
			st.comm[r] += (ready - sendAt[r]) + packT
			st.clock[r] = ready + packT + 0.5*stepT[r]
			// Phases: stream + collide halves → Interior; egress pack →
			// Pack; send/recv exposure → Wire; the merge copy → Unpack.
			ph := &st.phase[r]
			ph[obs.Interior] += stepT[r]
			ph[obs.Pack] += packT
			ph[obs.Wire] += ready - sendAt[r]
			ph[obs.Unpack] += packT
		}
	}
	return 0
}

// ownBlock returns rank r's owned extents on all three axes.
func (st *simState) ownBlock(r int) [3]int {
	var own [3]int
	for a := 0; a < 3; a++ {
		_, own[a] = st.dec.Own(r, a)
	}
	return own
}

// axisHaloBytes returns rank r's halo payload per direction along axis:
// q · w · cross-section, where the cross-section spans the other axes'
// full local extents (ghosts included — later-axis ghost layers ride
// along in the sequential exchange, exactly as in the real packer).
// Multi-axis only: the slab schedule keeps its own haloBytes in run().
func (st *simState) axisHaloBytes(r, axis int) float64 {
	own := st.ownBlock(r)
	cross := 1.0
	for b := 0; b < 3; b++ {
		if b != axis {
			cross *= float64(own[b] + 2*st.w)
		}
	}
	return st.q * float64(st.w) * cross * 8
}

// faces returns how many of rank r's two faces on axis carry a message
// (0, 1 or 2): bounded-axis edge ranks lose the wraparound face.
func (st *simState) faces(r, axis int) float64 {
	n := 0.0
	for _, dir := range [2]int{-1, +1} {
		if st.dec.Neighbor(r, axis, dir) != decomp.NoNeighbor {
			n++
		}
	}
	return n
}

// axisBytes reports the busiest rank's per-axis halo payload per full
// exchange (message-carrying faces only); zero on undecomposed axes and
// for Orig.
func (st *simState) axisBytes() [3]float64 {
	var out [3]float64
	if st.j.Opt == core.OptOrig {
		return out
	}
	p := st.dec.Shape()
	for a := 0; a < 3; a++ {
		if p[a] == 1 {
			continue
		}
		for r := 0; r < st.ranks; r++ {
			var face float64
			if st.dec.IsSlab() {
				face = st.q * float64(st.w) * st.plane * 8
			} else {
				face = st.axisHaloBytes(r, a)
			}
			if b := st.faces(r, a) * face; b > out[a] {
				out[a] = b
			}
		}
	}
	return out
}

// stepTimeMulti is stepTime for a multi-axis block: the computed box
// grows by 2·(depth−s−1)·k on every axis, plus the k-cell-equivalent
// boundary-collide overhead per decomposed axis.
func (st *simState) stepTimeMulti(r, s int) float64 {
	own := st.ownBlock(r)
	e := 2 * (st.j.Depth - s - 1) * st.j.K
	cells := 1.0
	for a := 0; a < 3; a++ {
		cells *= float64(own[a] + e)
	}
	p := st.dec.Shape()
	for a := 0; a < 3; a++ {
		if p[a] == 1 {
			continue
		}
		cross := 1.0
		for b := 0; b < 3; b++ {
			if b != a {
				cross *= float64(own[b])
			}
		}
		cells += float64(st.j.K) * cross
	}
	cells *= st.fluidScale(r)
	tb := cells * st.j.Spec.BytesPerCell / st.rt.taskBW
	tf := cells * st.j.Spec.FlopsPerCell / st.rt.taskFlops
	t := tb
	if tf > t {
		t = tf
	}
	return t * st.slow[r] * (1 + st.j.Imbalance*st.rng[r].Float64())
}

// ghostExtraMulti returns rank r's per-cycle ghost-box updates.
func (st *simState) ghostExtraMulti(r, runLen int) float64 {
	own := st.ownBlock(r)
	interior := float64(own[0]) * float64(own[1]) * float64(own[2])
	var extra float64
	for s := 0; s < runLen; s++ {
		e := 2 * (st.j.Depth - s - 1) * st.j.K
		cells := 1.0
		for a := 0; a < 3; a++ {
			cells *= float64(own[a] + e)
		}
		extra += cells - interior
	}
	return extra
}

// overlapWindows returns, for rank r, the compute seconds the GC-C
// phased schedule can hide under each decomposed axis's messages: the
// interior box computes while the first messaging axis's data flies, and
// each later axis's wire time hides the previous axis's rim slabs —
// shares of the first step's compute time t0, in proportion to the box
// schedule's cell counts (exposed comm per axis is then max(0, wire −
// hidden compute)).
func (st *simState) overlapWindows(r int, t0 float64) [3]float64 {
	p := st.dec.Shape()
	own := st.ownBlock(r)
	e := float64(2 * (st.j.Depth - 1) * st.j.K)
	var full, cur [3]float64
	total := 1.0
	for a := 0; a < 3; a++ {
		full[a] = float64(own[a]) + e
		cur[a] = full[a]
		if p[a] > 1 {
			v := float64(own[a]) - 2*float64(st.j.K)
			if v < 0 {
				v = 0
			}
			cur[a] = v
		}
		total *= full[a]
	}
	cells := func(x [3]float64) float64 { return x[0] * x[1] * x[2] }
	var out [3]float64
	prev := cells(cur) // the interior box, hidden under the first axis
	for a := 0; a < 3; a++ {
		if p[a] == 1 {
			continue
		}
		out[a] = t0 * prev / total
		before := cells(cur)
		cur[a] = full[a]
		prev = cells(cur) - before // axis a's rim, hidden under the next
	}
	return out
}

// runMulti simulates the multi-axis deep-halo schedule: one sequential
// per-axis exchange per cycle (undecomposed axes wrap with local copies,
// decomposed axes message their ring neighbors), then runLen compute
// steps on the shrinking box. NB-C and above post receives early; GC-C
// and above additionally overlap each axis's wire time with the box
// schedule's compute (interior box for the first messaging axis, the
// previous axis's rims for the rest), mirroring internal/core's phased
// cart stepper.
func (st *simState) runMulti() float64 {
	j := st.j
	p := st.dec.Shape()
	sw := st.rt.msgSW
	nonblocking := j.Opt >= core.OptNBC
	overlap := j.Opt >= core.OptGCC
	var ghost float64
	sendAt := make([]float64, st.ranks)
	t0 := make([]float64, st.ranks)
	used := make([]float64, st.ranks)
	wins := make([][3]float64, st.ranks)
	// The first decomposed axis's messages fly over the interior box; each
	// later axis's fly over the previous axis's rims (overlapWindows) —
	// which phase the hidden compute belongs to in the decomposition.
	firstMsg := -1
	for a := 0; a < 3; a++ {
		if p[a] > 1 {
			firstMsg = a
			break
		}
	}
	for done := 0; done < j.Steps; {
		runLen := j.Depth
		if rest := j.Steps - done; rest < runLen {
			runLen = rest
		}
		if overlap {
			for r := 0; r < st.ranks; r++ {
				t0[r] = st.stepTimeMulti(r, 0)
				used[r] = 0
				wins[r] = st.overlapWindows(r, t0[r])
			}
		}
		for axis := 0; axis < 3; axis++ {
			if p[axis] == 1 {
				if j.Bounded[axis] {
					// Bounded undecomposed axis: both ghost faces are
					// boundary-filled in place — one write per face, no
					// border pack and no message.
					for r := 0; r < st.ranks; r++ {
						dt := 2 * st.axisHaloBytes(r, axis) / st.rt.taskBWRaw
						st.clock[r] += dt
						st.phase[r][obs.Face] += dt
					}
					continue
				}
				// Local periodic wrap: pack+unpack copies on both sides.
				for r := 0; r < st.ranks; r++ {
					dt := 4 * st.axisHaloBytes(r, axis) / st.rt.taskBWRaw
					st.clock[r] += dt
					st.phase[r][obs.Pack] += dt / 2
					st.phase[r][obs.Unpack] += dt / 2
				}
				continue
			}
			for r := 0; r < st.ranks; r++ {
				// Two face-sized copies per cycle regardless of geometry:
				// borders packed toward neighbors, boundary ghost faces
				// written from boundary data (edge ranks swap one for the
				// other).
				packT := 2 * st.axisHaloBytes(r, axis) / st.rt.taskBWRaw
				sendAt[r] = st.clock[r] + packT
				st.phase[r][obs.Pack] += packT
			}
			for r := 0; r < st.ranks; r++ {
				bytes := st.axisHaloBytes(r, axis)
				wire := st.rt.latency + bytes/st.rt.linkBW
				wireIntra := bytes / st.rt.intraBW
				nmsg := 0.0
				recvReady := math.Inf(-1)
				for _, dir := range [2]int{-1, +1} {
					nb := st.dec.Neighbor(r, axis, dir)
					if nb == decomp.NoNeighbor {
						continue
					}
					nmsg++
					w := wire
					if st.sameNode(r, nb) {
						w = wireIntra
					}
					if t := sendAt[nb] + sw + w; t > recvReady {
						recvReady = t
					}
				}
				unpackT := 2 * bytes / st.rt.taskBWRaw
				ph := &st.phase[r]
				ph[obs.Pack] += nmsg * sw
				ph[obs.Unpack] += unpackT
				if overlap {
					// The axis's wire time is (partially) hidden behind the
					// schedule's compute window; only the remainder — and the
					// unhideable posting cost and unpack — is exposed.
					hide := wins[r][axis]
					hidden := sendAt[r] + nmsg*sw + hide
					wait := recvReady - hidden
					if wait < 0 || math.IsInf(wait, -1) {
						wait = 0
					}
					st.comm[r] += nmsg*sw + wait + unpackT
					st.clock[r] = hidden + wait + unpackT
					used[r] += hide
					if axis == firstMsg {
						ph[obs.Interior] += hide
					} else {
						ph[obs.Rim] += hide
					}
					ph[obs.Wire] += wait
				} else if nonblocking {
					ready := sendAt[r] + nmsg*sw
					if recvReady > ready {
						ready = recvReady
					}
					st.comm[r] += (ready - sendAt[r]) + unpackT
					st.clock[r] = ready + unpackT
					ph[obs.Wire] += ready - sendAt[r] - nmsg*sw
				} else {
					sendDone := sendAt[r] + nmsg*sw
					if nmsg > 0 {
						sendDone += wire
					}
					ready := sendDone
					if recvReady > ready {
						ready = recvReady
					}
					// Pack time is compute, not comm — same accounting
					// as the slab path.
					st.comm[r] += (ready - sendAt[r]) + unpackT
					st.clock[r] = ready + unpackT
					ph[obs.Wire] += ready - sendAt[r] - nmsg*sw
				}
			}
		}
		for r := 0; r < st.ranks; r++ {
			ph := &st.phase[r]
			if overlap {
				// The first step's compute already ran inside the overlap
				// windows; add only what remains of it — the trailing rims
				// after the last axis's unpack (interior when nothing
				// messaged).
				if rest := t0[r] - used[r]; rest > 0 {
					st.clock[r] += rest
					if firstMsg >= 0 {
						ph[obs.Rim] += rest
					} else {
						ph[obs.Interior] += rest
					}
				}
				for s := 1; s < runLen; s++ {
					dt := st.stepTimeMulti(r, s)
					st.clock[r] += dt
					ph[obs.Interior] += dt
				}
			} else {
				for s := 0; s < runLen; s++ {
					dt := st.stepTimeMulti(r, s)
					st.clock[r] += dt
					ph[obs.Interior] += dt
				}
			}
			ghost += st.ghostExtraMulti(r, runLen)
		}
		done += runLen
	}
	return ghost
}
