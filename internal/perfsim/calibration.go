package perfsim

import "repro/internal/core"

// calibration holds the per-machine efficiency factors of the simulator.
//
// These are the only fitted constants in perfsim; everything else (message
// sizes and counts, ghost overhead, overlap windows, imbalance propagation)
// is derived from the simulated schedule. Each value is anchored to a
// statement in the paper, cited inline. memEff is the fraction of the
// node's main-store bandwidth the kernels stream at for each cumulative
// optimization level; flopEff the fraction of peak flop/s reachable.
type calibration struct {
	memEff map[core.OptLevel]float64
	// flopEffScalar applies below OptSIMD, flopEffSIMD at OptSIMD.
	flopEffScalar, flopEffSIMD float64
	// smtYield is the marginal throughput of a hardware thread beyond one
	// per core.
	smtYield float64
	// bwSaturationUnits is the core-equivalents needed to saturate the
	// node's memory bandwidth.
	bwSaturationUnits float64
	// threadSerialFrac is the serial fraction each extra worker thread
	// adds to a task's compute windows — chunk claims, batch publish and
	// quiesce, the end-of-batch barrier. The team's parallel efficiency
	// is the Amdahl-style 1/(1 + threadSerialFrac·(t−1)); see
	// parallelEff. The coefficient is small because the in-rank runtime
	// amortizes claim overhead over coarse chunks (minChunkCells in
	// core's chunk queue), and it is what makes 4 tasks × 16 threads
	// beat 1 × 64 on BG/Q even though both saturate the node.
	threadSerialFrac float64
	// msgSWOverhead is the per-message fixed cost on the critical path, in
	// seconds: MPI stack and request handling, DMA descriptor setup,
	// rendezvous handshakes, plus the synchronization-noise absorption the
	// uniform-jitter model underestimates. It is the cost that deep halos
	// amortize ("the reduction in number of messages allows for easier
	// masking of the messaging latency", §VI.A); its value is fitted to
	// place the Fig. 10 depth crossover near the paper's 32-66
	// planes/processor band.
	msgSWOverhead float64
}

func (c calibration) flopEff(opt core.OptLevel) float64 {
	if opt >= core.OptSIMD {
		return c.flopEffSIMD
	}
	return c.flopEffScalar
}

// parallelEff returns the thread-team parallel efficiency at t worker
// threads per task: 1 at one thread, decaying as 1/(1 + c·(t−1)). It
// multiplies every per-task compute rate, so ThreadsPerTask scales the
// simulated compute windows directly.
func (c calibration) parallelEff(threads int) float64 {
	return 1 / (1 + c.threadSerialFrac*float64(threads-1))
}

// bgpCalibration: anchors —
//   - final tuned code reaches 92% (D3Q19) of the Table II bound and 43%
//     hardware efficiency in collide (§VI) → memEff[SIMD] ≈ 0.95 before
//     communication losses;
//   - overall improvement ≈ 3× (§I, §VI) → memEff[Orig] ≈ 0.33;
//   - DH was "a moderate impact ... 30%" (§V.B) → DH = 1.3 × GC;
//   - on BG/P the compiler level (O5/qipa) and GC-C gave the largest Q39
//     gains (§VI) → CF is the biggest single scalar step;
//   - SIMD intrinsics: "we failed to have SIMD double hummer intrinsics
//     leveraged, cutting our potential hardware efficiency in half"
//     (§V.G) → the SIMD step recovers the last ~40%.
var bgpCalibration = calibration{
	memEff: map[core.OptLevel]float64{
		core.OptOrig: 0.31, core.OptGC: 0.35, core.OptDH: 0.455,
		core.OptCF: 0.60, core.OptLoBr: 0.66, core.OptNBC: 0.68,
		core.OptGCC: 0.70, core.OptSIMD: 0.95,
	},
	flopEffScalar:     0.20, // no double-hummer: scalar FPU issue
	flopEffSIMD:       0.40, // 31% of peak measured overall, 43% in collide
	smtYield:          0.0,  // PowerPC 450: 1 thread per core
	bwSaturationUnits: 4,    // all 4 cores needed to stream at 13.6 GB/s
	threadSerialFrac:  0.001,
	msgSWOverhead:     500e-6, // 850 MHz cores: substantial per-message cost
}

// bgqCalibration: anchors —
//   - final results at 85% (D3Q19) / 79% (D3Q39) of the bound (§VI) →
//     memEff[SIMD] ≈ 0.90;
//   - overall improvement ≈ 7.5-8× (§I, §VI) → memEff[Orig] ≈ 0.115;
//   - DH: "a very significant impact of a 75% increase in MFlup/s on
//     BG/Q" (§V.B) → DH = 1.75 × GC;
//   - CF: "a lower optimization setting of O3 ... increased the produced
//     MFlup/s by 2.5×" (§V.C) → CF = 2.5 × DH;
//   - intrinsics "provided less of an impact" on BG/Q (§VI) → modest SIMD
//     step;
//   - the A2 core needs multiple hardware threads to reach issue-rate
//     saturation ("max issue rate per core rose from 16.19% to 29.52%",
//     §VI) → smtYield 0.45, saturation ≈ 24 core-equivalents.
var bgqCalibration = calibration{
	memEff: map[core.OptLevel]float64{
		core.OptOrig: 0.115, core.OptGC: 0.12, core.OptDH: 0.21,
		core.OptCF: 0.525, core.OptLoBr: 0.60, core.OptNBC: 0.63,
		core.OptGCC: 0.70, core.OptSIMD: 0.90,
	},
	flopEffScalar:     0.15,
	flopEffSIMD:       0.30,
	smtYield:          0.45,
	bwSaturationUnits: 24,
	threadSerialFrac:  0.001,
	msgSWOverhead:     150e-6,
}

// DefaultThreadSerialFrac is genericCalibration's Amdahl coefficient for
// unfitted hosts. The Blue Gene calibrations keep their paper-anchored
// 0.001; the generic machine has no paper to anchor to, so the shipped
// default doubles that to cover the chunk-claim and batch-barrier
// overheads the closed-loop fit (tune.Fit) observes on local worker
// pools. A host with a real calibration supersedes it through the
// lbm-fit coefficient file; tune's TestDefaultThreadSerialFracRoundTrip
// pins that the fit recovers exactly this value from a sweep generated
// at it, so the constant can only ever be replaced by a fit-reproducible
// number.
const DefaultThreadSerialFrac = 0.002

// genericCalibration covers non-Blue-Gene machines with neutral factors.
var genericCalibration = calibration{
	memEff: map[core.OptLevel]float64{
		core.OptOrig: 0.3, core.OptGC: 0.32, core.OptDH: 0.45,
		core.OptCF: 0.55, core.OptLoBr: 0.6, core.OptNBC: 0.62,
		core.OptGCC: 0.65, core.OptSIMD: 0.8,
	},
	flopEffScalar:     0.2,
	flopEffSIMD:       0.4,
	smtYield:          0.3,
	bwSaturationUnits: 8,
	threadSerialFrac:  DefaultThreadSerialFrac,
	msgSWOverhead:     100e-6,
}

func calibrationFor(machineName string) calibration {
	switch machineName {
	case "BG/P":
		return bgpCalibration
	case "BG/Q":
		return bgqCalibration
	default:
		return genericCalibration
	}
}
