package experiments

import (
	"fmt"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/lattice"
)

// threadCounts returns the sweep points 1, 2, 4, ... up to max, always
// including max itself.
func threadCounts(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for t := 1; t < max; t *= 2 {
		out = append(out, t)
	}
	return append(out, max)
}

// RealThreads sweeps worker threads per rank with the real kernels: the
// in-rank analog of the paper's Fig. 11 hybrid study, isolating the
// threading model itself. Each row runs four configurations at the same
// domain:
//
//   - bgk: the split stream/collide path at OptSIMD on one rank;
//   - fused: the fused kernel on the same rank;
//   - op: the generic operator path (TRT unless colSpec names another
//     non-BGK operator) — its "gap" column is bgk/op, the cost of the
//     operator indirection, which the z-run-blocked kernel must hold
//     near 1 at every thread count;
//   - cavity: the operator on a 2-rank GC-C lid-driven cavity, whose
//     thin rim slabs exercise the shared chunk queue (a static per-axis
//     partition would flatline here).
//
// MFlup/s is million fluid-lattice updates per second — cell rate.
func RealThreads(modelName string, maxThreads, steps int, colSpec collision.Spec) (*Table, error) {
	m, err := lattice.ByName(modelName)
	if err != nil {
		return nil, err
	}
	opSpec := colSpec
	if opSpec.IsBGK() {
		opSpec = collision.Spec{Kind: collision.TRT}
	}
	n := realDims(m)
	t := &Table{
		Title: fmt.Sprintf("Thread sweep (real kernels) — %s, %s, %s operator, local machine (MFlup/s)",
			m.Name, n, opSpec),
		Header: []string{"threads", "bgk", "vs 1T", "fused", opSpec.String(), "op gap", "cavity GC-C 2r"},
	}
	var bgk1 float64
	for _, th := range threadCounts(maxThreads) {
		base := core.Config{
			Model: m, N: n, Tau: 0.8, Steps: steps,
			Opt: core.OptSIMD, Ranks: 1, Threads: th, GhostDepth: 1,
		}
		bgkCfg := base
		fusedCfg := base
		fusedCfg.Fused = true
		opCfg := base
		opCfg.Collision = opSpec
		cavCfg := base
		cavCfg.Opt = core.OptGCC
		cavCfg.Ranks, cavCfg.Decomp = 2, [3]int{2, 1, 1}
		cavCfg.Collision = opSpec
		cavCfg.Boundary = core.CavitySpec(0.05)
		var rates [4]float64
		for i, cfg := range []core.Config{bgkCfg, fusedCfg, opCfg, cavCfg} {
			res, err := core.Run(cfg)
			if err != nil {
				return nil, err
			}
			rates[i] = res.MFlups
		}
		if th == 1 {
			bgk1 = rates[0]
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", th),
			fmt.Sprintf("%.2f", rates[0]),
			fmt.Sprintf("%.2fx", rates[0]/bgk1),
			fmt.Sprintf("%.2f", rates[1]),
			fmt.Sprintf("%.2f", rates[2]),
			fmt.Sprintf("%.2fx", rates[0]/rates[2]),
			fmt.Sprintf("%.2f", rates[3]),
		})
	}
	t.Notes = append(t.Notes,
		"op gap = bgk / operator rate on the identical domain (the cost of the generic path)",
		"cavity column: bounded box stepper, 2 slab ranks, GC-C rims drained from the shared chunk queue")
	return t, nil
}
