package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/machine"
	"repro/internal/perfsim"
)

// DecompTable compares slab (1-D), pencil (2-D) and block (3-D) rank
// grids on a Blue Gene machine model: per-axis and total halo payload
// per rank per exchange, and the projected runtime at three optimization
// levels — NB-C (posted receives), GC-C (the per-axis compute/
// communication overlap) and Fused (GC-C schedule with the fused
// stream-collide kernel's 2·Q·8 bytes per cell). This is the
// beyond-paper experiment the Cartesian decomposition unlocks — the
// paper's §IV fixes the slab to isolate ghost-depth effects, and this
// table shows both where that choice stops scaling (slab surface stays
// O(NY·NZ) per rank while the block's shrinks with P^(2/3)) and that the
// overlap and the fused kernel now compose with every shape instead of
// trading off against the decomposition.
func DecompTable(machineName string) (*Table, error) {
	m, err := machine.ByName(machineName)
	if err != nil {
		return nil, err
	}
	const n = 512 // global cube edge
	t := &Table{
		Title: fmt.Sprintf("Decomposition scaling — %s, D3Q19, %d^3 cells, depth 1 (per-rank halo KB/exchange; time per opt level)",
			m.Name, n),
		Header: []string{"ranks", "shape", "grid", "opt", "x KB", "y KB", "z KB", "total KB", "time (s)", "GFlup/s"},
	}
	shapes := []struct {
		axes  int
		label string
	}{{1, "slab"}, {2, "pencil"}, {3, "block"}}
	opts := []struct {
		label string
		opt   core.OptLevel
		fused bool
	}{
		{"NB-C", core.OptNBC, false},
		{"GC-C", core.OptGCC, false},
		// The fused kernel subsumes the SIMD-shaped collide and runs on
		// the GC-C schedule (OptSIMD is cumulative), with 2·Q·8 instead of
		// 3·Q·8 bytes per cell.
		{"Fused", core.OptSIMD, true},
	}
	for _, ranks := range []int{8, 64, 512} {
		for _, sh := range shapes {
			axes, label := sh.axes, sh.label
			p, err := decomp.Factor(ranks, axes, [3]int{n, n, n})
			if err != nil {
				return nil, err
			}
			for _, o := range opts {
				spec := machine.SpecD3Q19()
				if o.fused {
					// One read + one write of the field per cell instead of
					// the split path's three accesses.
					spec.BytesPerCell = core.FusedBytesPerCell(spec.Q)
				}
				res, err := perfsim.Run(perfsim.Job{
					Machine: m, Spec: spec, K: 1,
					Nodes: ranks, TasksPerNode: 1, ThreadsPerTask: min(16, m.CoresPerNode),
					NX: n, NY: n, NZ: n, Decomp: p,
					Steps: 50, Depth: 1, Opt: o.opt,
					Imbalance: 0.05, Seed: 21,
				})
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%d", ranks),
					label,
					fmt.Sprintf("%dx%dx%d", p[0], p[1], p[2]),
					o.label,
					kb(res.AxisBytes[0]), kb(res.AxisBytes[1]), kb(res.AxisBytes[2]),
					kb(res.SurfaceBytes()),
					fmt.Sprintf("%.3f", res.Seconds),
					fmt.Sprintf("%.2f", res.MFlups/1e3),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"slab surface per rank is constant in the rank count; pencil and block shrink it, crossing over by 8 ranks",
		"shapes picked by decomp.Factor: the minimum-surface near-cubic factorization per axis budget",
		"GC-C overlaps each axis's messages with the box schedule's interior/rim compute; Fused runs the SIMD-quality kernels at 2·Q·8 B/cell on the same schedule")
	return t, nil
}

func kb(b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", b/1024)
}
