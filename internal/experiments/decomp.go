package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/machine"
	"repro/internal/perfsim"
)

// DecompTable compares slab (1-D), pencil (2-D) and block (3-D) rank
// grids on a Blue Gene machine model: per-axis and total halo payload
// per rank per exchange, and the projected runtime. This is the
// beyond-paper experiment the Cartesian decomposition unlocks — the
// paper's §IV fixes the slab to isolate ghost-depth effects, and this
// table shows where that choice stops scaling: slab surface stays
// O(NY·NZ) per rank while the block's shrinks with P^(2/3).
func DecompTable(machineName string) (*Table, error) {
	m, err := machine.ByName(machineName)
	if err != nil {
		return nil, err
	}
	const n = 512 // global cube edge
	t := &Table{
		Title: fmt.Sprintf("Decomposition scaling — %s, D3Q19, %d^3 cells, depth 1, NB-C (per-rank halo KB/exchange)",
			m.Name, n),
		Header: []string{"ranks", "shape", "grid", "x KB", "y KB", "z KB", "total KB", "time (s)", "GFlup/s"},
	}
	shapes := []struct {
		axes  int
		label string
	}{{1, "slab"}, {2, "pencil"}, {3, "block"}}
	for _, ranks := range []int{8, 64, 512} {
		for _, sh := range shapes {
			axes, label := sh.axes, sh.label
			p, err := decomp.Factor(ranks, axes, [3]int{n, n, n})
			if err != nil {
				return nil, err
			}
			res, err := perfsim.Run(perfsim.Job{
				Machine: m, Spec: machine.SpecD3Q19(), K: 1,
				Nodes: ranks, TasksPerNode: 1, ThreadsPerTask: min(16, m.CoresPerNode),
				NX: n, NY: n, NZ: n, Decomp: p,
				Steps: 50, Depth: 1, Opt: core.OptNBC,
				Imbalance: 0.05, Seed: 21,
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", ranks),
				label,
				fmt.Sprintf("%dx%dx%d", p[0], p[1], p[2]),
				kb(res.AxisBytes[0]), kb(res.AxisBytes[1]), kb(res.AxisBytes[2]),
				kb(res.SurfaceBytes()),
				fmt.Sprintf("%.3f", res.Seconds),
				fmt.Sprintf("%.2f", res.MFlups/1e3),
			})
		}
	}
	t.Notes = append(t.Notes,
		"slab surface per rank is constant in the rank count; pencil and block shrink it, crossing over by 8 ranks",
		"shapes picked by decomp.Factor: the minimum-surface near-cubic factorization per axis budget")
	return t, nil
}

func kb(b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", b/1024)
}
