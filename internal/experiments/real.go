package experiments

import (
	"fmt"
	"time"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/lattice"
)

// The Real* experiments execute the actual Go kernels on the local machine
// at laptop scale. They demonstrate the same qualitative trade-offs as the
// perfsim projections with no model in between; EXPERIMENTS.md records both
// alongside the paper's values.

// realDims returns a laptop-scale domain for a model (D3Q39 cells carry ~2×
// the data, so its box is smaller).
func realDims(m *lattice.Model) grid.Dims {
	if m.Q == 39 {
		return grid.Dims{NX: 48, NY: 24, NZ: 24}
	}
	return grid.Dims{NX: 64, NY: 32, NZ: 32}
}

// realShape resolves a decomposition spec against a Real* run's rank
// count and dims ("1d" yields the paper's slab).
func realShape(spec string, ranks int, n grid.Dims) ([3]int, error) {
	d, err := decomp.ParseShape(spec, ranks, [3]int{n.NX, n.NY, n.NZ})
	if err != nil {
		return [3]int{}, err
	}
	return d.P, nil
}

// realDepth parses the -depth argument of the Real* experiments ("2" or
// per-axis "2,1,1").
func realDepth(spec string) (int, [3]int, error) {
	if spec == "" {
		return 1, [3]int{}, nil
	}
	return core.ParseGhostDepth(spec)
}

// RealFig8 measures MFlup/s for each optimization level with the real
// kernels (the local analog of Fig. 8). Orig always runs the 1-D slab
// (the no-ghost protocol is slab-only); the other levels use the
// requested decomposition shape. colSpec selects the collision operator
// (TRT/MRT show the ladder with the generic operator kernel in place of
// the specialized BGK collide).
func RealFig8(modelName string, ranks, threads, steps int, decompSpec, depthSpec string, colSpec collision.Spec, stream core.StreamScheme) (*Table, error) {
	m, err := lattice.ByName(modelName)
	if err != nil {
		return nil, err
	}
	n := realDims(m)
	shape, err := realShape(decompSpec, ranks, n)
	if err != nil {
		return nil, err
	}
	depth, depthAxes, err := realDepth(depthSpec)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 8 (real kernels) — %s, %s, %d ranks (%dx%dx%d), %s, %s streaming, local machine (MFlup/s)", m.Name, n, ranks, shape[0], shape[1], shape[2], colSpec, stream),
		Header: []string{"level", "MFlup/s", "speedup vs Orig"},
	}
	var first float64
	for _, opt := range core.Levels() {
		sh := shape
		da := depthAxes
		d := depth
		st := stream
		if opt == core.OptOrig {
			// The no-ghost protocol is slab-only, depth-1-only, and has no
			// ghost layer for AA streaming to exchange into.
			sh, d, da, st = [3]int{ranks, 1, 1}, 1, [3]int{}, core.StreamTwoGrid
		}
		res, err := core.Run(core.Config{
			Model: m, N: n, Tau: 0.8, Steps: steps,
			Opt: opt, Ranks: ranks, Decomp: sh, Threads: threads,
			GhostDepth: d, GhostDepthAxes: da,
			Collision: colSpec, Stream: st,
		})
		if err != nil {
			return nil, err
		}
		if opt == core.OptOrig {
			first = res.MFlups
		}
		t.Rows = append(t.Rows, []string{
			opt.String(),
			fmt.Sprintf("%.2f", res.MFlups),
			fmt.Sprintf("%.2fx", res.MFlups/first),
		})
	}
	return t, nil
}

// RealFig9 measures the per-rank communication-time balance with injected
// per-step jitter (the local analog of Fig. 9).
func RealFig9(modelName string, ranks, threads, steps int, decompSpec, depthSpec string, colSpec collision.Spec, stream core.StreamScheme) (*Table, error) {
	m, err := lattice.ByName(modelName)
	if err != nil {
		return nil, err
	}
	n := realDims(m)
	shape, err := realShape(decompSpec, ranks, n)
	if err != nil {
		return nil, err
	}
	depth, depthAxes, err := realDepth(depthSpec)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 9 (real kernels) — %s, %d ranks, per-rank comm time (ms)", m.Name, ranks),
		Header: []string{"protocol", "min", "median", "max"},
	}
	configs := []struct {
		label string
		opt   core.OptLevel
	}{
		{"blocking, no ghost cells (Orig)", core.OptOrig},
		{"NB-C & GC", core.OptNBC},
		{"GC-C", core.OptGCC},
	}
	for _, c := range configs {
		sh := shape
		da := depthAxes
		d := depth
		st := stream
		if c.opt == core.OptOrig {
			sh, d, da, st = [3]int{ranks, 1, 1}, 1, [3]int{}, core.StreamTwoGrid
		}
		res, err := core.Run(core.Config{
			Model: m, N: n, Tau: 0.8, Steps: steps,
			Opt: c.opt, Ranks: ranks, Decomp: sh, Threads: threads,
			GhostDepth: d, GhostDepthAxes: da,
			Collision:  colSpec,
			Stream:     st,
			StepJitter: 2 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		s := res.CommSummary()
		t.Rows = append(t.Rows, []string{
			c.label,
			fmt.Sprintf("%.1f", 1e3*s.Min),
			fmt.Sprintf("%.1f", 1e3*s.Median),
			fmt.Sprintf("%.1f", 1e3*s.Max),
		})
	}
	t.Notes = append(t.Notes, "deterministic per-rank jitter of up to 2 ms/step injected to provoke imbalance")
	return t, nil
}

// RealFig10 sweeps ghost depth × domain size with the real kernels (the
// local analog of Fig. 10), reporting runtimes normalized to depth 1.
func RealFig10(modelName string, ranks, threads, steps int, decompSpec string, colSpec collision.Spec, stream core.StreamScheme) (*Table, error) {
	m, err := lattice.ByName(modelName)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 10 (real kernels) — %s, %d ranks (time / time at GC=1)", m.Name, ranks),
		Header: []string{"NX", "GC=1", "GC=2", "GC=3", "GC=4"},
	}
	ny := 16
	if m.Q == 39 {
		ny = 8
	}
	for _, nx := range []int{ranks * 8 * m.MaxSpeed, ranks * 16 * m.MaxSpeed, ranks * 32 * m.MaxSpeed} {
		row := []string{fmt.Sprintf("%d", nx)}
		var base float64
		for depth := 1; depth <= 4; depth++ {
			if nx/ranks < depth*m.MaxSpeed {
				row = append(row, "n/a")
				continue
			}
			dims := grid.Dims{NX: nx, NY: ny, NZ: ny}
			sh, err := realShape(decompSpec, ranks, dims)
			if err != nil {
				return nil, err
			}
			res, err := core.Run(core.Config{
				Model: m, N: dims,
				Tau: 0.8, Steps: steps,
				Opt: core.OptSIMD, Ranks: ranks, Decomp: sh, Threads: threads, GhostDepth: depth,
				Collision:  colSpec,
				Stream:     stream,
				StepJitter: time.Millisecond,
			})
			if err != nil {
				return nil, err
			}
			secs := res.WallTime.Seconds()
			if depth == 1 {
				base = secs
			}
			row = append(row, fmt.Sprintf("%.3f", secs/base))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RealFig11 sweeps ranks×threads at a fixed total worker count (the local
// analog of Fig. 11).
func RealFig11(modelName string, steps int, decompSpec, depthSpec string, colSpec collision.Spec, stream core.StreamScheme) (*Table, error) {
	m, err := lattice.ByName(modelName)
	if err != nil {
		return nil, err
	}
	n := realDims(m)
	depth, depthAxes, err := realDepth(depthSpec)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 11 (real kernels) — %s, %s tasks×threads on the local machine", m.Name, n),
		Header: []string{"tasks-threads", "time (ms)", "MFlup/s"},
	}
	for _, c := range [][2]int{{1, 1}, {1, 2}, {1, 4}, {2, 1}, {2, 2}, {4, 1}} {
		sh, err := realShape(decompSpec, c[0], n)
		if err != nil {
			return nil, err
		}
		res, err := core.Run(core.Config{
			Model: m, N: n, Tau: 0.8, Steps: steps,
			Opt: core.OptSIMD, Ranks: c[0], Decomp: sh, Threads: c[1],
			GhostDepth: depth, GhostDepthAxes: depthAxes,
			Collision: colSpec, Stream: stream,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d-%d", c[0], c[1]),
			fmt.Sprintf("%.1f", 1e3*res.WallTime.Seconds()),
			fmt.Sprintf("%.2f", res.MFlups),
		})
	}
	return t, nil
}
