package experiments

import (
	"math"
	"testing"

	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/perfsim"
	"repro/internal/tune"
)

// TestAnchoredFallbackEquivalence pins that `-exp predict`'s anchored
// fallback and the fit's AnchoredMAPE baseline are the same model: for
// every bridge job, tune.PriceAnchored on matching dims must reproduce
// predictOne's phases and total. A drift here would make the
// fitted-vs-anchored comparison meaningless.
func TestAnchoredFallbackEquivalence(t *testing.T) {
	m, err := lattice.ByName("D3Q19")
	if err != nil {
		t.Fatal(err)
	}
	dims := realDims(m)
	sw := &tune.Sweep{
		Model: m.Name,
		Dims:  [3]int{dims.NX, dims.NY, dims.NZ},
		Steps: 4,
	}
	const bw = 7.3e9
	for _, jb := range predictJobs() {
		pt := tune.Point{
			Label: jb.label, Opt: jb.opt, Ranks: jb.ranks,
			Decomp: jb.decomp, Depth: jb.depth, Threads: 1, Kernel: "bgk",
		}
		phases, total, err := tune.PriceAnchored(sw, pt, bw)
		if err != nil {
			t.Fatal(err)
		}
		p, err := predictOne(m, jb, 4, bw, nil)
		if err != nil {
			t.Fatal(err)
		}
		relEq := func(name string, a, b float64) {
			t.Helper()
			if a == 0 && b == 0 {
				return
			}
			if d := math.Abs(a - b); d > 1e-6*math.Max(math.Abs(a), math.Abs(b)) {
				t.Errorf("%s: %s: anchored %g vs predict %g", jb.label, name, a, b)
			}
		}
		for _, ph := range []obs.Phase{obs.Interior, obs.Rim, obs.Pack, obs.Wire, obs.Unpack} {
			relEq(ph.String(), phases[ph], p.phases[ph])
		}
		relEq("total", total, p.total)
	}
}

// TestPredictFittedPath: a fitted coefficient set switches the bridge off
// the one-point anchor.
func TestPredictFittedPath(t *testing.T) {
	coeffs := &perfsim.Coeffs{
		MemBW: 10e9, BWSaturation: 2, CopyBW: 16e9,
		LinkBW: predictLinkBW, Latency: predictLatency, MsgSW: 1e-5,
		ThreadSerialFrac: perfsim.DefaultThreadSerialFrac,
	}
	rep, err := Predict("D3Q19", 2, coeffs)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fitted {
		t.Error("report not marked fitted")
	}
	if rep.MemBWAnchor != 0 {
		t.Errorf("fitted report carries an anchor: %g", rep.MemBWAnchor)
	}
	for _, jb := range rep.Jobs {
		if jb.PredictedTotal <= 0 {
			t.Errorf("%s: predicted total %g, want > 0", jb.Label, jb.PredictedTotal)
		}
	}
}

// TestTuneScenarios: the registry's scenarios must enumerate non-empty,
// solver-accepted candidate spaces (sampled via the default candidate).
func TestTuneScenarios(t *testing.T) {
	for _, name := range TuneScenarioNames() {
		s, err := TuneScenario(name)
		if err != nil {
			t.Fatal(err)
		}
		cands := tune.Enumerate(s, tune.DefaultSpace(4))
		if len(cands) == 0 {
			t.Errorf("%s: empty candidate space", name)
		}
		if _, err := tune.DefaultCandidate().Config(s, 1); err != nil {
			t.Errorf("%s: default candidate rejected: %v", name, err)
		}
	}
	if _, err := TuneScenario("nope"); err == nil {
		t.Error("unknown scenario should error")
	}
}
