package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/perfsim"
	"repro/internal/tune"
)

// The auto-tuning experiments close ROADMAP direction 3's loop end to
// end: `-exp fit` observes the calibration sweep and fits perfsim's
// machine coefficients to it, `-exp tune` searches the execution-config
// space with the fitted model and confirms the short-list against real
// runs (the local analog of the paper's Tables III/IV: model ranking vs
// measurement), and `-exp bench` records the default-vs-tuned MFlup/s
// for the fixed scenario set.

// RunFit collects the calibration sweep with the real instrumented
// solver and fits the coefficient model to it.
func RunFit(modelName string, steps int) (*tune.FitResult, error) {
	sw, err := tune.Collect(modelName, steps)
	if err != nil {
		return nil, err
	}
	return tune.Fit(sw)
}

// FitTable renders a fit result for the terminal.
func FitTable(r *tune.FitResult) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Closed-loop calibration — %s, %d-step sweep, fitted perfsim coefficients", r.Model, r.Steps),
		Header: []string{"coefficient", "fitted", "unit"},
	}
	c := r.Coeffs
	t.Rows = append(t.Rows,
		[]string{"mem_bw", fmt.Sprintf("%.3f", c.MemBW/1e9), "GB/s effective kernel bandwidth"},
		[]string{"bw_saturation", fmt.Sprintf("%.2f", c.BWSaturation), "worker-equivalents to saturate"},
		[]string{"copy_bw", fmt.Sprintf("%.3f", c.CopyBW/1e9), "GB/s pack/unpack + intra-node hops"},
		[]string{"link_bw", fmt.Sprintf("%.3f", c.LinkBW/1e6), "MB/s wire bandwidth"},
		[]string{"latency", fmt.Sprintf("%.1f", c.Latency*1e6), "µs per message"},
		[]string{"msg_sw", fmt.Sprintf("%.2f", c.MsgSW*1e6), "µs software cost per message"},
		[]string{"thread_serial_frac", fmt.Sprintf("%.5f", c.ThreadSerialFrac), "Amdahl serial fraction per extra worker"},
	)
	for _, k := range []string{"trt", "mrt"} {
		if v, ok := c.KernelCost[k]; ok {
			t.Rows = append(t.Rows, []string{"kernel_cost[" + k + "]", fmt.Sprintf("%.3f", v), "cell cost vs bgk"})
		}
	}
	if c.FusedAdjust > 0 {
		t.Rows = append(t.Rows, []string{"fused_adjust", fmt.Sprintf("%.3f", c.FusedAdjust), "fused stream-collide cost factor"})
	}
	if c.AAAdjust > 0 {
		t.Rows = append(t.Rows, []string{"aa_adjust", fmt.Sprintf("%.3f", c.AAAdjust), "AA-pattern cost factor"})
	}
	mape := "whole-sweep per-phase MAPE:"
	for _, p := range []string{"interior", "rim", "pack", "wire", "unpack"} {
		if v, ok := r.PhaseMAPE[p]; ok {
			mape += fmt.Sprintf("  %s %.0f%%", p, 100*v)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("objective (duration-weighted phase MAPE): seed %.1f%% → fitted %.1f%%; one-point-anchored fallback %.1f%%",
			100*r.SeedMAPE, 100*r.FittedMAPE, 100*r.AnchoredMAPE),
		mape,
		fmt.Sprintf("total MAPE %.0f%%, Pearson r = %.3f on sweep wall times (%d objective evaluations)",
			100*r.TotalMAPE, r.PearsonR, r.Evals),
	)
	return t
}

// TuneScenarioNames is the fixed benchmark scenario set: a dense bounded
// cavity and a mostly-solid vascular mask, the two regimes where the
// tuner's wins come from different knobs (threads/protocol vs
// balance/sparse traversal).
func TuneScenarioNames() []string { return []string{"cavity64", "bifurcation96"} }

// TuneScenario resolves a named tuning scenario.
func TuneScenario(name string) (*tune.Scenario, error) {
	switch name {
	case "cavity64":
		m := lattice.D3Q19()
		const lidU, re = 0.1, 100.0
		n := grid.Dims{NX: 64, NY: 64, NZ: 64}
		return &tune.Scenario{
			Name: name, Model: m, N: n,
			Tau:      m.TauForViscosity(lidU * float64(n.NY) / re),
			Boundary: core.CavitySpec(lidU),
		}, nil
	case "bifurcation96":
		m := lattice.D3Q19()
		n := grid.Dims{NX: 96, NY: 48, NZ: 48}
		return &tune.Scenario{
			Name: name, Model: m, N: n, Tau: 0.8,
			Solid: geom.Bifurcation(n, 0.1*float64(n.NY)),
		}, nil
	}
	return nil, fmt.Errorf("experiments: unknown tuning scenario %q (have %v)", name, TuneScenarioNames())
}

// RunTune auto-tunes one scenario: price the candidate space with the
// fitted coefficients (nil falls back to the uncalibrated envelope),
// confirm the top-k with short real runs, return the winner.
func RunTune(scenarioName string, coeffs *perfsim.Coeffs, workers, topK, confirmSteps int) (*tune.Tuned, error) {
	s, err := TuneScenario(scenarioName)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return tune.Tune(s, coeffs, tune.Options{
		MaxWorkers: workers, TopK: topK, ConfirmSteps: confirmSteps,
	})
}

// candLabel compresses a candidate into one table cell.
func candLabel(c tune.Candidate) string {
	s := fmt.Sprintf("%s r%d %dx%dx%d t%d d%d,%d,%d %s",
		c.Opt, c.Ranks, c.Decomp[0], c.Decomp[1], c.Decomp[2], c.Threads,
		c.Depth[0], c.Depth[1], c.Depth[2], c.Stream)
	if c.Kernel != "bgk" {
		s += " " + c.Kernel
	}
	if c.Fused {
		s += " fused"
	}
	if c.Balance != "" {
		s += " " + c.Balance
	}
	if c.Sparse {
		s += " sparse"
	}
	return s
}

// TuneTable renders the tuner's predicted-vs-measured short-list.
func TuneTable(tn *tune.Tuned) *Table {
	t := &Table{
		Title: fmt.Sprintf("Auto-tune — %s (%s, %dx%dx%d, %d workers): predicted vs measured",
			tn.Scenario, tn.Model, tn.N[0], tn.N[1], tn.N[2], tn.MaxWorkers),
		Header: []string{"candidate", "pred s", "meas s", "MFlup/s"},
	}
	for _, r := range tn.TopK {
		mark := ""
		if r.Candidate == tn.Choice {
			mark = " *"
		}
		t.Rows = append(t.Rows, []string{
			candLabel(r.Candidate) + mark,
			fmt.Sprintf("%.4f", r.PredictedSeconds),
			fmt.Sprintf("%.4f", r.MeasuredSeconds),
			fmt.Sprintf("%.2f", r.MeasuredMFlups),
		})
	}
	t.Rows = append(t.Rows, []string{
		candLabel(tune.DefaultCandidate()) + " (default)",
		"", fmt.Sprintf("%.4f", tn.BaselineSeconds), fmt.Sprintf("%.2f", tn.BaselineMFlups),
	})
	speedup := 0.0
	if tn.BaselineMFlups > 0 {
		speedup = tn.MeasuredMFlups / tn.BaselineMFlups
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d candidates priced, top %d confirmed with real runs; * = winner (%.2fx the default's MFlup/s)",
			tn.Candidates, len(tn.TopK), speedup),
		fmt.Sprintf("cache key %s (machine + scenario + size + geometry + worker budget)", tn.Key),
	)
	return t
}
