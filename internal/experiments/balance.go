package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/metrics"
)

// RealBalance measures the fluid-balanced decomposition and sparse
// row-run traversal on a mostly-solid vascular mask with the real
// kernels: the same bifurcation geometry runs under (a) equal-extent
// volume cuts with dense traversal, (b) fluid-balanced cuts with dense
// traversal, and (c) fluid-balanced cuts with sparse traversal. The
// table reports end-to-end Mflup/s (fluid-cell normalized), the
// per-rank fluid-cell spread each cut policy produces, and the
// resulting imbalance ratio — the arterial-geometry argument of the
// paper's §VII carried onto the working code.
func RealBalance(modelName string, ranks, threads, steps int) (*Table, error) {
	m, err := lattice.ByName(modelName)
	if err != nil {
		return nil, err
	}
	n := grid.Dims{NX: 96, NY: 48, NZ: 48}
	mask := geom.Bifurcation(n, 0.1*float64(n.NY))
	fluid := mask.Fluids()
	solidFrac := 100 * float64(mask.Solids()) / float64(n.Cells())

	t := &Table{
		Title: fmt.Sprintf("Balance (real kernels) — %s, %s bifurcation mask (%.0f%% solid, %d fluid cells), %d ranks, %d threads",
			m.Name, n, solidFrac, fluid, ranks, threads),
		Header: []string{"cuts", "traversal", "MFlup/s", "speedup", "fluid/rank min", "median", "max", "imbalance"},
	}

	cases := []struct {
		label, traversal string
		balance          core.Balance
		sparse           bool
	}{
		{"volume", "dense", core.BalanceVolume, false},
		{"fluid", "dense", core.BalanceFluid, false},
		{"fluid", "sparse", core.BalanceFluid, true},
	}
	var base float64
	for _, c := range cases {
		res, err := core.Run(core.Config{
			Model: m, N: n, Tau: 0.8, Steps: steps,
			Opt: core.OptSIMD, Ranks: ranks, Decomp: [3]int{ranks, 1, 1},
			Threads: threads, GhostDepth: 1,
			Solid: mask, Balance: c.balance, Sparse: c.sparse,
			Observe: true,
		})
		if err != nil {
			return nil, err
		}
		perRank := make([]float64, len(res.Observations))
		for i, o := range res.Observations {
			perRank[i] = float64(o.FluidCells)
		}
		s := metrics.Summarize(perRank)
		imb := "n/a"
		if s.Min > 0 {
			imb = fmt.Sprintf("%.2fx", s.Max/s.Min)
		}
		if base == 0 {
			base = res.MFlups
		}
		t.Rows = append(t.Rows, []string{
			c.label, c.traversal,
			fmt.Sprintf("%.2f", res.MFlups),
			fmt.Sprintf("%.2fx", res.MFlups/base),
			fmt.Sprintf("%.0f", s.Min),
			fmt.Sprintf("%.0f", s.Median),
			fmt.Sprintf("%.0f", s.Max),
			imb,
		})
	}
	t.Notes = append(t.Notes,
		"Mflup/s counts fluid-cell updates only; all three runs integrate the identical geometry",
		"volume cuts split the box into equal extents; fluid cuts place planes by fluid-cell bisection",
		"sparse traversal visits fluid z-runs only and weights thread chunks by fluid cells")
	return t, nil
}
