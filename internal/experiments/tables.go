package experiments

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/machine"
)

// Table1Q19 renders the D3Q19 half of the paper's Table I: the velocity
// shells with weights, neighbor order and distance.
func Table1Q19() *Table { return table1For(lattice.D3Q19()) }

// Table1Q39 renders the D3Q39 half of Table I.
func Table1Q39() *Table { return table1For(lattice.D3Q39()) }

func table1For(m *lattice.Model) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table I — %s lattice (c_s² = %.4f)", m.Name, m.CsSq),
		Header: []string{"shell", "example ξ_i", "count", "w_i", "distance"},
	}
	type shell struct {
		example string
		count   int
		w       float64
		dist    float64
	}
	var shells []shell
	for i := 0; i < m.Q; i++ {
		d := m.NeighborOrderDistance(i)
		w := m.W[i]
		found := false
		for si := range shells {
			if shells[si].w == w && shells[si].dist == d {
				shells[si].count++
				found = true
				break
			}
		}
		if !found {
			shells = append(shells, shell{
				example: fmt.Sprintf("(%d,%d,%d)", m.Cx[i], m.Cy[i], m.Cz[i]),
				count:   1, w: w, dist: d,
			})
		}
	}
	for si, s := range shells {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", si),
			s.example,
			fmt.Sprintf("%d", s.count),
			fmt.Sprintf("%.6g", s.w),
			fmt.Sprintf("%.4g", s.dist),
		})
	}
	if m.Name == "D3Q39" {
		t.Notes = append(t.Notes,
			"the paper's printed 1/142 for the (2,2,0) shell is a transcription error; 1/432 normalizes the weights (see lattice tests)")
	}
	return t
}

// Table2 evaluates the attainable-MFlup/s model (paper Table II) for both
// machines and lattices.
func Table2() *Table {
	t := &Table{
		Title:  "Table II — maximum attainable MFlup/s (Eq. 5)",
		Header: []string{"system", "lattice", "B_m", "P(Bm) MFlup/s", "P_peak", "P(Ppeak) MFlup/s", "limit", "paper P(Bm)"},
	}
	paper := map[string]string{
		"BG/P D3Q19": "29", "BG/Q D3Q19": "94",
		"BG/P D3Q39": "14.5", "BG/Q D3Q39": "45",
	}
	for _, m := range []machine.Machine{machine.BGP(), machine.BGQ()} {
		for _, spec := range []machine.KernelSpec{machine.SpecD3Q19(), machine.SpecD3Q39()} {
			b := machine.MaxMFlups(m, spec)
			limit := "flops"
			if b.BandwidthLimited {
				limit = "bandwidth"
			}
			t.Rows = append(t.Rows, []string{
				m.Name, spec.Name,
				fmt.Sprintf("%.1f GB/s", m.MemBWBytes/1e9),
				fmt.Sprintf("%.1f", b.PBm),
				fmt.Sprintf("%.1f GF/s", m.PeakFlops/1e9),
				fmt.Sprintf("%.1f", b.PPeak),
				limit,
				paper[m.Name+" "+spec.Name],
			})
		}
	}
	t.Notes = append(t.Notes, "in all cases the code is bandwidth limited, as in the paper")
	return t
}

// SectionIIICBounds renders the torus-bandwidth lower bounds of §III.C.
func SectionIIICBounds() *Table {
	t := &Table{
		Title:  "§III.C — torus-bandwidth lower bounds (all loads/stores at torus speed)",
		Header: []string{"system", "lattice", "bound MFlup/s", "paper"},
	}
	paper := map[string]string{
		"BG/P D3Q19": "11.1", "BG/Q D3Q19": "70",
		"BG/P D3Q39": "5.4", "BG/Q D3Q39": "34",
	}
	for _, m := range []machine.Machine{machine.BGP(), machine.BGQ()} {
		for _, spec := range []machine.KernelSpec{machine.SpecD3Q19(), machine.SpecD3Q39()} {
			t.Rows = append(t.Rows, []string{
				m.Name, spec.Name,
				fmt.Sprintf("%.1f", machine.TorusBoundMFlups(m, spec)),
				paper[m.Name+" "+spec.Name],
			})
		}
	}
	return t
}
