package experiments

// The fixup-index experiment: the per-box bounce-back fixup index vs the
// legacy whole-plane scan, end to end, on a boundary-heavy voxel mask
// (the arterial-geometry regime of the paper's §I). The plane scan's cost
// shows on the phased GC-C schedule, where every per-axis rim phase walks
// and filters the full plane lists; the per-box index touches only each
// phase's own links.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/metrics"
)

// RealFixup compares wall time and MFlup/s of the two fixup paths over a
// ~20% solid noise mask with bounded walls, on the overlapped schedule.
func RealFixup(modelName string, ranks, steps int, decompSpec, depthSpec string) (*Table, error) {
	m, err := lattice.ByName(modelName)
	if err != nil {
		return nil, err
	}
	n := grid.Dims{NX: 48, NY: 32, NZ: 32}
	if m.MaxSpeed > 1 {
		n = grid.Dims{NX: 40, NY: 24, NZ: 24}
	}
	shape, err := realShape(decompSpec, ranks, n)
	if err != nil {
		return nil, err
	}
	depth, depthAxes, err := realDepth(depthSpec)
	if err != nil {
		return nil, err
	}
	rng := metrics.NewRNG(0x5eed)
	mask := geom.FromFunc(n, func(ix, iy, iz int) bool { return rng.Float64() < 0.2 })
	var spec core.BoundarySpec
	spec.Faces[1][0] = core.Face{Kind: core.BCWall}
	spec.Faces[1][1] = core.Face{Kind: core.BCWall}
	t := &Table{
		Title: fmt.Sprintf("Fixup paths (real kernels) — %s, %s, %d ranks (%dx%dx%d), GC-C, %.0f%% solid noise mask",
			m.Name, n, ranks, shape[0], shape[1], shape[2], 20.0),
		Header: []string{"fixup path", "wall ms", "MFlup/s", "speedup"},
	}
	var first time.Duration
	for _, c := range []struct {
		label string
		scan  bool
	}{
		{"whole-plane scan", true},
		{"per-box index", false},
	} {
		res, err := core.Run(core.Config{
			Model: m, N: n, Tau: 0.8, Steps: steps,
			Opt: core.OptGCC, Ranks: ranks, Decomp: shape, Threads: 1,
			GhostDepth: depth, GhostDepthAxes: depthAxes,
			Solid: mask, Boundary: &spec, FixupScan: c.scan,
		})
		if err != nil {
			return nil, err
		}
		if c.scan {
			first = res.WallTime
		}
		t.Rows = append(t.Rows, []string{
			c.label,
			fmt.Sprintf("%.1f", float64(res.WallTime.Microseconds())/1000),
			fmt.Sprintf("%.2f", res.MFlups),
			fmt.Sprintf("%.2fx", float64(first)/float64(res.WallTime)),
		})
	}
	return t, nil
}
