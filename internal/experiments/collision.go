package experiments

import (
	"fmt"
	"math"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/physics"
)

// CollisionTable compares the collision operators with the real kernels
// on the local machine: transport-coefficient accuracy (shear-wave and
// Taylor-Green viscosity against ν = c_s²(τ−½)), stability on the
// under-resolved τ = 0.51 Re=1000 cavity that motivates the subsystem
// (BGK diverges there; the split-rate operators survive), and the
// per-cell cost of the generic operator kernel relative to the BGK fast
// path. This is the beyond-paper experiment the collision axis unlocks —
// the paper's §V ladder fixes BGK, which caps the reachable Reynolds
// number regardless of how fast the kernels run.
func CollisionTable(modelName string) (*Table, error) {
	m, err := lattice.ByName(modelName)
	if err != nil {
		return nil, err
	}
	specs := []collision.Spec{
		{Kind: collision.BGK},
		{Kind: collision.TRT},
		{Kind: collision.TRT, Magic: 3.0 / 16},
		{Kind: collision.MRT},
	}
	t := &Table{
		Title: fmt.Sprintf("Collision operators (real kernels) — %s, viscosity accuracy, low-tau stability, kernel cost", m.Name),
		Header: []string{"operator", "shear nu err (tau=0.7)", "TG nu err (tau=0.8)",
			"tau=0.51 Re=1000 cavity", "MFlup/s (periodic 32^3)"},
	}
	// Size the stability cavity so the lid runs at ≈ 0.1 lattice units
	// (Re = 1000 at τ = 0.51 then fixes L = Re·ν/0.1 = 100·c_s²: 33 for
	// D3Q19, 67 for D3Q39); much faster lids exceed the low-Mach envelope
	// for every operator, slower ones stop stressing τ → ½.
	const stabSteps = 1500
	stabL := int(100*m.CsSq + 0.5)
	for _, spec := range specs {
		spec := spec
		mod := func(c *core.Config) { c.Collision = spec }
		shear, err := physics.ShearWaveViscosity(m, grid.Dims{NX: 32, NY: 6, NZ: 6}, 0.7, 80, mod)
		if err != nil {
			return nil, err
		}
		tg, err := physics.TaylorGreenViscosity(m, grid.Dims{NX: 24, NY: 24, NZ: 6}, 0.8, 80, mod)
		if err != nil {
			return nil, err
		}
		stable, err := lowTauCavityStable(m, spec, stabL, stabSteps)
		if err != nil {
			return nil, err
		}
		perf, err := core.Run(core.Config{
			Model: m, N: grid.Dims{NX: 32, NY: 32, NZ: 32}, Tau: 0.8, Steps: 10,
			Opt: core.OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1,
			Collision: spec,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			spec.String(),
			fmt.Sprintf("%.2f%%", 100*shear.RelError),
			fmt.Sprintf("%.2f%%", 100*tg.RelError),
			stable,
			fmt.Sprintf("%.1f", perf.MFlups),
		})
	}
	t.Notes = append(t.Notes,
		"viscosity is set by the shear rate 1/tau alone: all operators hit the same nu within tolerance",
		fmt.Sprintf("stability column: %d steps of an under-resolved L=%d cavity at tau=0.51 (Re=1000); BGK's divergence is the tau->1/2 wall TRT/MRT remove", stabSteps, stabL),
		"BGK runs the specialized paired/blocked kernels; trt/mrt pay the generic per-cell operator kernel")
	return t, nil
}

// lowTauCavityStable runs the under-resolved low-tau cavity and reports
// "stable" or "DIVERGED".
func lowTauCavityStable(m *lattice.Model, spec collision.Spec, l, steps int) (string, error) {
	const tau = 0.51
	lidU := 1000 * m.Viscosity(tau) / float64(l)
	res, err := core.Run(core.Config{
		Model: m, N: grid.Dims{NX: l, NY: l, NZ: 2 * m.MaxSpeed}, Tau: tau, Steps: steps,
		Opt: core.OptSIMD, Ranks: 1, Threads: 1, GhostDepth: 1,
		Collision: spec,
		Boundary:  core.CavitySpec(lidU),
	})
	if err != nil {
		return "", err
	}
	if math.IsNaN(res.Mass) || math.IsInf(res.Mass, 0) {
		return "DIVERGED", nil
	}
	return "stable", nil
}
