// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §6 for the experiment index). Paper-scale
// results come from the perfsim discrete-event simulator over the Blue
// Gene machine models; the Real* variants execute the actual Go kernels on
// the local machine at laptop scale. Each generator returns a Table that
// renders as fixed-width text.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment: a title, column headers, string rows and
// free-form notes (paper comparison, caveats).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as fixed-width text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Names lists the experiment identifiers accepted by Generate.
func Names() []string {
	return []string{"table1", "table2", "fig8", "fig9", "fig10", "table3", "table4", "fig11", "decomp", "collision"}
}

// Generate runs one experiment by name. The machine argument applies to
// fig8, fig9 and fig11 ("bgp" or "bgq"); fig10 and tables 3/4 use the
// machines the paper used (BG/P at 2048 procs for D3Q19, BG/Q 16 nodes for
// D3Q39).
func Generate(name, machineName string) ([]*Table, error) {
	switch name {
	case "table1":
		return []*Table{Table1Q19(), Table1Q39()}, nil
	case "table2":
		t2 := Table2()
		return []*Table{t2, SectionIIICBounds()}, nil
	case "fig8":
		t, err := Fig8(machineName)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	case "fig9":
		t, err := Fig9(machineName)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	case "fig10":
		a, err := Fig10Q19()
		if err != nil {
			return nil, err
		}
		b, err := Fig10Q39()
		if err != nil {
			return nil, err
		}
		return []*Table{a, b}, nil
	case "table3":
		t, err := Table3()
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	case "table4":
		t, err := Table4()
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	case "fig11":
		t, err := Fig11(machineName)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	case "decomp":
		t, err := DecompTable(machineName)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	case "collision":
		// Real kernels at laptop scale (the operator axis is a capability
		// experiment, not a machine-model projection).
		t, err := CollisionTable("D3Q19")
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (want one of %s)", name, strings.Join(Names(), ", "))
}

// GenerateAll runs every experiment for both machines where applicable.
func GenerateAll() ([]*Table, error) {
	var out []*Table
	add := func(ts []*Table, err error) error {
		if err != nil {
			return err
		}
		out = append(out, ts...)
		return nil
	}
	if err := add(Generate("table1", "")); err != nil {
		return nil, err
	}
	if err := add(Generate("table2", "")); err != nil {
		return nil, err
	}
	for _, m := range []string{"bgp", "bgq"} {
		if err := add(Generate("fig8", m)); err != nil {
			return nil, err
		}
	}
	if err := add(Generate("fig9", "bgp")); err != nil {
		return nil, err
	}
	if err := add(Generate("fig10", "")); err != nil {
		return nil, err
	}
	if err := add(Generate("table3", "")); err != nil {
		return nil, err
	}
	if err := add(Generate("table4", "")); err != nil {
		return nil, err
	}
	for _, m := range []string{"bgp", "bgq"} {
		if err := add(Generate("fig11", m)); err != nil {
			return nil, err
		}
	}
	if err := add(Generate("decomp", "bgq")); err != nil {
		return nil, err
	}
	if err := add(Generate("collision", "")); err != nil {
		return nil, err
	}
	return out, nil
}
