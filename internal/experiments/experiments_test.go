package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/collision"
	"repro/internal/core"
)

func TestTable1Shapes(t *testing.T) {
	q19 := Table1Q19()
	if len(q19.Rows) != 3 {
		t.Errorf("D3Q19 has %d shells, want 3", len(q19.Rows))
	}
	q39 := Table1Q39()
	if len(q39.Rows) != 6 {
		t.Errorf("D3Q39 has %d shells, want 6", len(q39.Rows))
	}
	var total int
	for _, r := range q39.Rows {
		n, err := strconv.Atoi(r[2])
		if err != nil {
			t.Fatalf("bad count %q", r[2])
		}
		total += n
	}
	if total != 39 {
		t.Errorf("D3Q39 shells cover %d velocities", total)
	}
}

func TestTable2Values(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) != 4 {
		t.Fatalf("Table II has %d rows, want 4", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r[6] != "bandwidth" {
			t.Errorf("%s %s limited by %s, want bandwidth", r[0], r[1], r[6])
		}
	}
	txt := tb.Render()
	for _, want := range []string{"29.8", "94.3", "14.5", "45.9"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Table II output missing %q:\n%s", want, txt)
		}
	}
}

func TestSectionIIICBounds(t *testing.T) {
	tb := SectionIIICBounds()
	txt := tb.Render()
	for _, want := range []string{"11.2", "5.4", "70.2", "34.2"} {
		if !strings.Contains(txt, want) {
			t.Errorf("bounds output missing %q:\n%s", want, txt)
		}
	}
}

func TestFig8BothMachines(t *testing.T) {
	for _, m := range []string{"bgp", "bgq"} {
		tb, err := Fig8(m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(tb.Rows) != 9 { // 8 levels + model peak
			t.Errorf("%s: %d rows, want 9", m, len(tb.Rows))
		}
		// MFlup/s must be non-decreasing down the ladder for both models.
		for col := 1; col <= 3; col += 2 {
			prev := 0.0
			for i := 0; i < 8; i++ {
				v, err := strconv.ParseFloat(tb.Rows[i][col], 64)
				if err != nil {
					t.Fatalf("%s row %d: %v", m, i, err)
				}
				if v < prev*0.98 {
					t.Errorf("%s: ladder not monotone at row %d col %d (%.0f < %.0f)", m, i, col, v, prev)
				}
				prev = v
			}
		}
	}
}

func TestFig9Structure(t *testing.T) {
	tb, err := Fig9("bgp")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 { // 2 models × 3 protocols
		t.Fatalf("%d rows, want 6", len(tb.Rows))
	}
	// Max comm time must shrink down the protocol ladder for each model.
	for _, base := range []int{0, 3} {
		var maxes [3]float64
		for i := 0; i < 3; i++ {
			v, err := strconv.ParseFloat(tb.Rows[base+i][4], 64)
			if err != nil {
				t.Fatal(err)
			}
			maxes[i] = v
		}
		if !(maxes[2] < maxes[1] && maxes[1] < maxes[0]) {
			t.Errorf("rows %d..%d: max comm %.2f -> %.2f -> %.2f did not shrink", base, base+2, maxes[0], maxes[1], maxes[2])
		}
	}
}

func TestFig10ShapesAndOOM(t *testing.T) {
	a, err := Fig10Q19()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 5 {
		t.Fatalf("Fig10a rows = %d", len(a.Rows))
	}
	// Small sizes: deep halos hurt (ratio > 1); the largest size must
	// prefer depth >= 2.
	smallGC2, err := strconv.ParseFloat(a.Rows[0][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	if smallGC2 <= 1 {
		t.Errorf("8k: GC=2 ratio %.3f, want > 1", smallGC2)
	}
	if best := a.Rows[4][5]; best == "GC=1" {
		t.Errorf("133k: best depth is GC=1, want deeper")
	}
	// The paper's OOM case: 133k with GC=4.
	if a.Rows[4][4] != "OOM" {
		t.Errorf("133k GC=4 = %q, want OOM", a.Rows[4][4])
	}
	b, err := Fig10Q39()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 6 {
		t.Fatalf("Fig10b rows = %d", len(b.Rows))
	}
	if best := b.Rows[5][5]; best == "GC=1" {
		t.Errorf("200k: best depth is GC=1, want deeper")
	}
}

func TestTable3Shape(t *testing.T) {
	tb, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	// Smallest ratio must prefer depth 1; largest must prefer > 1.
	if tb.Rows[0][1] != "1" {
		t.Errorf("R=4 optimal depth %s, want 1", tb.Rows[0][1])
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] == "1" {
		t.Errorf("R=66 optimal depth 1, want deeper (paper: 2)")
	}
}

func TestTable4Shape(t *testing.T) {
	tb, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][1] != "1" {
		t.Errorf("R=64 optimal depth %s, want 1", tb.Rows[0][1])
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] == "1" {
		t.Errorf("R=800 optimal depth 1, want deeper (paper: 2 or 3)")
	}
}

func TestFig11BGP(t *testing.T) {
	tb, err := Fig11("bgp")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(tb.Rows))
	}
	get := func(row, col int) float64 {
		v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
		if err != nil {
			t.Fatalf("row %d col %d: %v", row, col, err)
		}
		return v
	}
	// Threading must help: 4T beats 1T for both models.
	if !(get(3, 1) < get(0, 1) && get(3, 3) < get(0, 3)) {
		t.Error("4 threads did not beat 1 thread")
	}
	// The paper's key hybrid finding: for D3Q39, 4T beats VN.
	if !(get(3, 3) < get(4, 3)) {
		t.Errorf("D3Q39: 4T (%.2f) did not beat VN (%.2f)", get(3, 3), get(4, 3))
	}
}

func TestFig11BGQ(t *testing.T) {
	tb, err := Fig11("bgq")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 13 {
		t.Fatalf("%d rows, want 13", len(tb.Rows))
	}
	times := map[string]float64{}
	for _, r := range tb.Rows {
		v, err := strconv.ParseFloat(r[3], 64) // D3Q39 time
		if err != nil {
			t.Fatal(err)
		}
		times[r[0]] = v
	}
	// §VI.B: 4 tasks × 16 threads is the optimum for the higher-order model.
	for _, other := range []string{"64-1", "1-64", "16-1", "4-1"} {
		if times["4-16"] >= times[other] {
			t.Errorf("4-16 (%.2f) did not beat %s (%.2f)", times["4-16"], other, times[other])
		}
	}
}

func TestGenerateDispatch(t *testing.T) {
	for _, name := range []string{"table1", "table2"} {
		ts, err := Generate(name, "")
		if err != nil || len(ts) == 0 {
			t.Errorf("Generate(%q): %v", name, err)
		}
	}
	if _, err := Generate("fig99", ""); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := Generate("fig8", "cray"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestRenderAlignment(t *testing.T) {
	tb := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "y"}},
		Notes:  []string{"n"},
	}
	out := tb.Render()
	for _, want := range []string{"== T ==", "xxx", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRealFig8SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real-kernel experiment in -short mode")
	}
	tb, err := RealFig8("D3Q19", 2, 2, 3, "1d", "2,1,1", collision.Spec{}, core.StreamTwoGrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Errorf("%d rows, want 8", len(tb.Rows))
	}
}

func TestRealFig11SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real-kernel experiment in -short mode")
	}
	tb, err := RealFig11("D3Q19", 3, "1d", "1", collision.Spec{}, core.StreamTwoGrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Errorf("%d rows, want 6", len(tb.Rows))
	}
}

func TestRealFig9SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real-kernel experiment in -short mode")
	}
	tb, err := RealFig9("D3Q19", 2, 1, 4, "1d", "1", collision.Spec{}, core.StreamTwoGrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Errorf("%d rows, want 3", len(tb.Rows))
	}
}

// The -stream flag threads through the real-kernel tables; one AA rung
// keeps that wiring exercised (depth 1 rounds up to 2 inside the run).
func TestRealFig9AASmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real-kernel experiment in -short mode")
	}
	tb, err := RealFig9("D3Q19", 2, 1, 4, "1d", "1", collision.Spec{}, core.StreamAA)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Errorf("%d rows, want 3", len(tb.Rows))
	}
}

func TestRealFig10SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real-kernel experiment in -short mode")
	}
	tb, err := RealFig10("D3Q19", 2, 2, 4, "2d", collision.Spec{}, core.StreamTwoGrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Errorf("%d rows, want 3", len(tb.Rows))
	}
	// Each row's GC=1 column is the normalization base.
	for _, r := range tb.Rows {
		if r[1] != "1.000" {
			t.Errorf("GC=1 column = %q, want 1.000", r[1])
		}
	}
}

func TestRealThreadsSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real-kernel experiment in -short mode")
	}
	tb, err := RealThreads("D3Q19", 2, 2, collision.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 { // threads 1, 2
		t.Errorf("%d rows, want 2", len(tb.Rows))
	}
	// The operator column defaults to TRT when the spec is BGK.
	if !strings.Contains(tb.Header[4], "trt") {
		t.Errorf("operator column header %q, want trt", tb.Header[4])
	}
}

func TestThreadCounts(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{3, []int{1, 2, 3}},
		{8, []int{1, 2, 4, 8}},
		{6, []int{1, 2, 4, 6}},
		{0, []int{1}},
	}
	for _, c := range cases {
		got := threadCounts(c.max)
		if len(got) != len(c.want) {
			t.Errorf("threadCounts(%d) = %v, want %v", c.max, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("threadCounts(%d) = %v, want %v", c.max, got, c.want)
				break
			}
		}
	}
}

func TestRealExperimentsRejectBadModel(t *testing.T) {
	if _, err := RealFig8("D2Q9", 1, 1, 1, "1d", "1", collision.Spec{}, core.StreamTwoGrid); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := RealFig10("D2Q9", 1, 1, 1, "1d", collision.Spec{}, core.StreamTwoGrid); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestCollisionTable(t *testing.T) {
	if testing.Short() {
		t.Skip("real-kernel experiment in -short mode")
	}
	tb, err := CollisionTable("D3Q19")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tb.Rows))
	}
	// The capability story: BGK diverges at tau=0.51, the split-rate
	// operators survive.
	if tb.Rows[0][0] != "bgk" || tb.Rows[0][3] != "DIVERGED" {
		t.Errorf("BGK row = %v, want a tau=0.51 divergence", tb.Rows[0])
	}
	for _, r := range tb.Rows[1:] {
		if r[3] != "stable" {
			t.Errorf("%s unstable at tau=0.51 (%v)", r[0], r)
		}
	}
	if _, err := CollisionTable("D2Q9"); err == nil {
		t.Error("unknown model accepted")
	}
}
