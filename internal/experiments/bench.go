package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/perfsim"
	"repro/internal/tune"
)

// BenchSchema identifies the benchmark record's JSON shape.
const BenchSchema = "lbm-bench/v1"

// BenchEntry is one scenario's default-vs-tuned measurement.
type BenchEntry struct {
	Scenario      string         `json:"scenario"`
	Model         string         `json:"model"`
	N             [3]int         `json:"n"`
	Steps         int            `json:"steps"`
	DefaultMFlups float64        `json:"default_mflups"`
	TunedMFlups   float64        `json:"tuned_mflups"`
	Speedup       float64        `json:"speedup"`
	Choice        tune.Candidate `json:"choice"`
	Candidates    int            `json:"candidates"`
}

// BenchReport is the fixed-scenario benchmark record (BENCH_10.json): the
// tuned config's MFlup/s against the stock default on every scenario, the
// number CI tracks across PRs.
type BenchReport struct {
	Schema  string          `json:"schema"`
	Machine obs.MachineInfo `json:"machine"`
	Workers int             `json:"workers"`
	Fitted  bool            `json:"fitted"`
	Entries []BenchEntry    `json:"entries"`
}

// RunBench tunes and measures the fixed scenario set.
func RunBench(coeffs *perfsim.Coeffs, workers, topK, steps int) (*BenchReport, error) {
	rep := &BenchReport{
		Schema:  BenchSchema,
		Machine: obs.HostInfo(),
		Workers: workers,
		Fitted:  coeffs != nil,
	}
	for _, name := range TuneScenarioNames() {
		tn, err := RunTune(name, coeffs, workers, topK, steps)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		speedup := 0.0
		if tn.BaselineMFlups > 0 {
			speedup = tn.MeasuredMFlups / tn.BaselineMFlups
		}
		rep.Entries = append(rep.Entries, BenchEntry{
			Scenario:      tn.Scenario,
			Model:         tn.Model,
			N:             tn.N,
			Steps:         steps,
			DefaultMFlups: tn.BaselineMFlups,
			TunedMFlups:   tn.MeasuredMFlups,
			Speedup:       speedup,
			Choice:        tn.Choice,
			Candidates:    tn.Candidates,
		})
		rep.Workers = tn.MaxWorkers
	}
	return rep, nil
}

// WriteBench serializes a benchmark record as indented JSON.
func WriteBench(w io.Writer, r *BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// BenchTable renders the benchmark record for the terminal.
func BenchTable(r *BenchReport) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Benchmark — tuned vs default MFlup/s (%d workers)", r.Workers),
		Header: []string{"scenario", "default", "tuned", "speedup", "choice"},
	}
	for _, e := range r.Entries {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (%s %dx%dx%d)", e.Scenario, e.Model, e.N[0], e.N[1], e.N[2]),
			fmt.Sprintf("%.2f", e.DefaultMFlups),
			fmt.Sprintf("%.2f", e.TunedMFlups),
			fmt.Sprintf("%.2fx", e.Speedup),
			candLabel(e.Choice),
		})
	}
	if r.Fitted {
		t.Notes = append(t.Notes, "candidates priced with fitted coefficients (lbm-fit/v1)")
	} else {
		t.Notes = append(t.Notes, "candidates priced with the uncalibrated envelope (no fit file); pass -fit for the closed loop")
	}
	return t
}
