package experiments

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestPredictBridgeSmallRun: the observe→predict bridge on a tiny step
// count must pair every sweep job with a prediction and produce finite
// agreement scores — the contract `lbmbench -exp predict` and CI rely on.
func TestPredictBridgeSmallRun(t *testing.T) {
	rep, err := Predict("D3Q19", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != PredictSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, PredictSchema)
	}
	if len(rep.Jobs) < 3 {
		t.Fatalf("sweep has %d jobs, want >= 3", len(rep.Jobs))
	}
	if rep.MemBWAnchor <= 0 {
		t.Errorf("memory-bandwidth anchor = %g, want > 0", rep.MemBWAnchor)
	}
	for _, jb := range rep.Jobs {
		if jb.ObservedTotal <= 0 || jb.PredictedTotal <= 0 {
			t.Errorf("%s: totals obs %g / pred %g, want > 0", jb.Label, jb.ObservedTotal, jb.PredictedTotal)
		}
		if jb.Observed["interior"] <= 0 || jb.Predicted["interior"] <= 0 {
			t.Errorf("%s: interior obs %g / pred %g, want > 0", jb.Label, jb.Observed["interior"], jb.Predicted["interior"])
		}
	}
	// The anchor fits the first job's interior phase exactly.
	first := rep.Jobs[0]
	if o, p := first.Observed["interior"], first.Predicted["interior"]; math.Abs(p-o) > 1e-9*o {
		t.Errorf("anchored interior: obs %g, pred %g, want equal", o, p)
	}
	if len(rep.PhaseMAPE) == 0 {
		t.Error("no per-phase MAPE entries")
	}
	for name, v := range rep.PhaseMAPE {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("MAPE[%s] = %g, want finite and non-negative", name, v)
		}
	}
	if math.IsNaN(rep.TotalMAPE) || rep.TotalMAPE < 0 {
		t.Errorf("total MAPE = %g", rep.TotalMAPE)
	}

	// The report round-trips as JSON and the table renders every job twice
	// (observed and predicted rows).
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "machine", "mem_bw_anchor", "jobs", "phase_mape", "total_mape", "pearson_r"} {
		if _, ok := m[key]; !ok {
			t.Errorf("predict report missing key %q", key)
		}
	}
	text := rep.Table().Render()
	if got := strings.Count(text, "pred"); got < len(rep.Jobs) {
		t.Errorf("rendered table has %d pred rows, want %d", got, len(rep.Jobs))
	}
	if !strings.Contains(text, "per-phase MAPE") {
		t.Error("rendered table lacks the per-phase MAPE note")
	}
}
