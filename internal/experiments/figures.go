package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/perfsim"
)

// modelParams bundles the per-lattice constants the simulator needs.
type modelParams struct {
	spec machine.KernelSpec
	k    int
}

var q19Params = modelParams{spec: machine.SpecD3Q19(), k: 1}
var q39Params = modelParams{spec: machine.SpecD3Q39(), k: 3}

// fig8Tasks returns the flat-MPI task count per node used in Fig. 8:
// virtual-node mode (4) on BG/P, 32 unthreaded tasks on BG/Q (§VI).
func fig8Tasks(m machine.Machine) int {
	if m.ThreadsPerCore > 1 {
		return 2 * m.CoresPerNode
	}
	return m.CoresPerNode
}

// fig8Job is the simulated Fig. 8 workload: 128 nodes, 64 planes of
// 64×64 cells per rank.
func fig8Job(m machine.Machine, p modelParams, opt core.OptLevel) perfsim.Job {
	tasks := fig8Tasks(m)
	return perfsim.Job{
		Machine: m, Spec: p.spec, K: p.k,
		Nodes: 128, TasksPerNode: tasks, ThreadsPerTask: 1,
		NX: 128 * tasks * 64, NY: 64, NZ: 64,
		Steps: 50, Depth: 1, Opt: opt,
		Imbalance: 0.05, Seed: 7,
	}
}

// Fig8 regenerates the optimization-ladder figure for one machine: MFlup/s
// per optimization level for both lattices, against the model peak.
func Fig8(machineName string) (*Table, error) {
	m, err := machine.ByName(machineName)
	if err != nil {
		return nil, err
	}
	nodes := 128
	t := &Table{
		Title:  fmt.Sprintf("Fig. 8 — %s optimization impacts (128 nodes, MFlup/s)", m.Name),
		Header: []string{"level", "D3Q19", "%peak", "D3Q39", "%peak"},
	}
	peak19 := machine.MaxMFlups(m, q19Params.spec).Attainable * float64(nodes)
	peak39 := machine.MaxMFlups(m, q39Params.spec).Attainable * float64(nodes)
	var first19, first39, last19, last39 float64
	for _, opt := range core.Levels() {
		r19, err := perfsim.Run(fig8Job(m, q19Params, opt))
		if err != nil {
			return nil, err
		}
		r39, err := perfsim.Run(fig8Job(m, q39Params, opt))
		if err != nil {
			return nil, err
		}
		if opt == core.OptOrig {
			first19, first39 = r19.MFlups, r39.MFlups
		}
		last19, last39 = r19.MFlups, r39.MFlups
		t.Rows = append(t.Rows, []string{
			opt.String(),
			fmt.Sprintf("%.0f", r19.MFlups), fmt.Sprintf("%.0f%%", 100*r19.MFlups/peak19),
			fmt.Sprintf("%.0f", r39.MFlups), fmt.Sprintf("%.0f%%", 100*r39.MFlups/peak39),
		})
	}
	t.Rows = append(t.Rows, []string{
		"model peak",
		fmt.Sprintf("%.0f", peak19), "100%",
		fmt.Sprintf("%.0f", peak39), "100%",
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("overall improvement: D3Q19 %.1f×, D3Q39 %.1f×", last19/first19, last39/first39))
	switch m.Name {
	case "BG/P":
		t.Notes = append(t.Notes, "paper: 92% (D3Q19) and 83% (D3Q39) of predicted peak; ~3× overall")
	case "BG/Q":
		t.Notes = append(t.Notes, "paper: 85% (D3Q19) and 79% (D3Q39) of predicted peak; ~7.5× overall")
	}
	return t, nil
}

// Fig9 regenerates the communication-balance figure: min/median/max
// per-rank communication time for the three protocol stages, both models.
func Fig9(machineName string) (*Table, error) {
	m, err := machine.ByName(machineName)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 9 — %s per-rank communication time (s), 256 ranks, 300 steps", m.Name),
		Header: []string{"model", "protocol", "min", "median", "max"},
	}
	configs := []struct {
		label string
		opt   core.OptLevel
		depth int
	}{
		{"NB-C (no ghost cells)", core.OptOrig, 1},
		{"NB-C & GC", core.OptNBC, 3},
		{"GC-C", core.OptGCC, 3},
	}
	for _, p := range []modelParams{q19Params, q39Params} {
		for _, cfgc := range configs {
			job := perfsim.Job{
				Machine: m, Spec: p.spec, K: p.k,
				Nodes: 64, TasksPerNode: 4, ThreadsPerTask: 1,
				NX: 64 * 4 * 24, NY: 96, NZ: 96,
				Steps: 300, Depth: cfgc.depth, Opt: cfgc.opt,
				Imbalance: 0.15, PersistentImbalance: 0.25, Seed: 11,
			}
			res, err := perfsim.Run(job)
			if err != nil {
				return nil, err
			}
			s := res.CommSummary()
			t.Rows = append(t.Rows, []string{
				p.spec.Name, cfgc.label,
				fmt.Sprintf("%.2f", s.Min), fmt.Sprintf("%.2f", s.Median), fmt.Sprintf("%.2f", s.Max),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper (BG/P, D3Q19): naive non-blocking spans 4.8-40 s; GC-C narrows it to 3-5 s",
		"the paper's \"NB-C\" solid lines are the no-ghost-cell code, reproduced here by the naive protocol",
		"for D3Q39 the depth-1-equivalent halo ships 117 planes vs the naive protocol's 18, so its wire time partly offsets the wait reduction — the paper does not quantify this either")
	return t, nil
}

// fig10Q19Job is the D3Q19 deep-halo workload: 2048 processors of BG/P
// (512 nodes in virtual-node mode).
func fig10Q19Job(nx, depth int) perfsim.Job {
	return perfsim.Job{
		Machine: machine.BGP(), Spec: q19Params.spec, K: q19Params.k,
		Nodes: 512, TasksPerNode: 4, ThreadsPerTask: 1,
		NX: nx, NY: 156, NZ: 156,
		Steps: 300, Depth: depth, Opt: core.OptNBC,
		Imbalance: 0.40, Seed: 5,
	}
}

// fig10Q39Job is the D3Q39 workload: 16 nodes of BG/Q with 16 tasks and 1
// thread each ("due to differences in memory constraints").
func fig10Q39Job(nx, depth int) perfsim.Job {
	return perfsim.Job{
		Machine: machine.BGQ(), Spec: q39Params.spec, K: q39Params.k,
		Nodes: 16, TasksPerNode: 16, ThreadsPerTask: 1,
		NX: nx, NY: 40, NZ: 40,
		Steps: 300, Depth: depth, Opt: core.OptNBC,
		Imbalance: 0.40, Seed: 5,
	}
}

// Fig10Q19 regenerates Fig. 10(a): runtime vs ghost depth, normalized to
// depth 1, across decomposed-dimension sizes.
func Fig10Q19() (*Table, error) {
	return fig10For("Fig. 10a — D3Q19 deep halos, 2048 procs BG/P (time / time at GC=1)",
		[]int{8192, 16384, 32768, 65536, 133000},
		[]string{"8k", "16k", "32k", "64k", "133k"},
		fig10Q19Job,
		"paper: GC=2/3 become optimal at 64k and 133k; GC=4 at 133k ran out of memory")
}

// Fig10Q39 regenerates Fig. 10(b) on 16 BG/Q nodes.
func Fig10Q39() (*Table, error) {
	return fig10For("Fig. 10b — D3Q39 deep halos, 16 nodes BG/Q × 16 tasks (time / time at GC=1)",
		[]int{16384, 32768, 65536, 133120, 174080, 204800},
		[]string{"16k", "32k", "64k", "133k", "170k", "200k"},
		fig10Q39Job,
		"paper: deeper levels start to pay off at the larger sizes; ratios beyond 800:1 untestable")
}

func fig10For(title string, sizes []int, labels []string, job func(nx, depth int) perfsim.Job, paperNote string) (*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{"size", "GC=1", "GC=2", "GC=3", "GC=4", "best"},
	}
	for i, nx := range sizes {
		row := []string{labels[i]}
		var base float64
		best, bestD := 0.0, 0
		for depth := 1; depth <= 4; depth++ {
			j := job(nx, depth)
			ranks := j.Nodes * j.TasksPerNode
			if nx/ranks < depth*j.K {
				row = append(row, "n/a")
				continue
			}
			res, err := perfsim.Run(j)
			if err != nil {
				return nil, err
			}
			if res.OOM {
				row = append(row, "OOM")
				continue
			}
			if depth == 1 {
				base = res.Seconds
			}
			if best == 0 || res.Seconds < best {
				best, bestD = res.Seconds, depth
			}
			row = append(row, fmt.Sprintf("%.3f", res.Seconds/base))
		}
		row = append(row, fmt.Sprintf("GC=%d", bestD))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, paperNote)
	return t, nil
}

// Table3 sweeps the lattice-points-per-processor ratio and reports the
// optimal ghost depth for D3Q19 (paper Table III).
func Table3() (*Table, error) {
	t := &Table{
		Title:  "Table III — optimal D3Q19 ghost depth vs planes/processor (2048 procs BG/P)",
		Header: []string{"R (planes/proc)", "optimal depth (ours)", "paper"},
	}
	paper := func(r int) string {
		switch {
		case r <= 16:
			return "1"
		case r <= 32:
			return "3"
		case r <= 66:
			return "2"
		default:
			return "untested"
		}
	}
	for _, r := range []int{4, 8, 16, 24, 32, 48, 64, 66} {
		best, bestD := 0.0, 0
		for depth := 1; depth <= 4; depth++ {
			if r < depth*q19Params.k {
				continue
			}
			res, err := perfsim.Run(fig10Q19Job(r*2048, depth))
			if err != nil {
				return nil, err
			}
			if best == 0 || res.Seconds < best {
				best, bestD = res.Seconds, depth
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r), fmt.Sprintf("%d", bestD), paper(r),
		})
	}
	t.Notes = append(t.Notes,
		"shape reproduced: depth 1 at small ratios, deeper halos at large ratios; the paper's non-monotonic 3-then-2 ordering at mid ratios is within its measurement noise (see EXPERIMENTS.md)")
	return t, nil
}

// Table4 is the D3Q39 analog on 16 BG/Q nodes (paper Table IV).
func Table4() (*Table, error) {
	t := &Table{
		Title:  "Table IV — optimal D3Q39 ghost depth vs planes/processor (256 tasks BG/Q)",
		Header: []string{"R (planes/proc)", "optimal depth (ours)", "paper"},
	}
	paper := func(r int) string {
		switch {
		case r < 256:
			return "1"
		case r <= 532:
			return "3"
		case r <= 680:
			return "2"
		case r <= 800:
			return "2 or 3"
		default:
			return "untested"
		}
	}
	for _, r := range []int{64, 128, 256, 384, 512, 600, 680, 800} {
		best, bestD := 0.0, 0
		for depth := 1; depth <= 4; depth++ {
			if r < depth*q39Params.k {
				continue
			}
			res, err := perfsim.Run(fig10Q39Job(r*256, depth))
			if err != nil {
				return nil, err
			}
			if best == 0 || res.Seconds < best {
				best, bestD = res.Seconds, depth
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r), fmt.Sprintf("%d", bestD), paper(r),
		})
	}
	return t, nil
}

// Fig11 regenerates the hybrid tasks×threads study for one machine: the
// runtime of the best ghost depth for each configuration.
func Fig11(machineName string) (*Table, error) {
	m, err := machine.ByName(machineName)
	if err != nil {
		return nil, err
	}
	type combo struct {
		label          string
		tasks, threads int
	}
	var combos []combo
	var nodes int
	if m.Name == "BG/P" {
		nodes = 32
		combos = []combo{
			{"1T", 1, 1}, {"2T", 1, 2}, {"3T", 1, 3}, {"4T", 1, 4}, {"VN", 4, 1},
		}
	} else {
		nodes = 16
		for _, c := range [][2]int{{1, 64}, {2, 32}, {4, 1}, {4, 4}, {4, 8}, {4, 16}, {8, 8}, {16, 1}, {16, 2}, {16, 4}, {32, 1}, {32, 2}, {64, 1}} {
			combos = append(combos, combo{fmt.Sprintf("%d-%d", c[0], c[1]), c[0], c[1]})
		}
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 11 — %s hybrid study (relative runtime at best ghost depth)", m.Name),
		Header: []string{"tasks-threads", "D3Q19 time", "D3Q19 depth", "D3Q39 time", "D3Q39 depth"},
	}
	// The paper holds the global domain fixed at the maximum tested ratio:
	// 66 planes per processor (D3Q19) and 800 (D3Q39), processor = core.
	procs := nodes * m.CoresPerNode
	for _, c := range combos {
		row := []string{c.label}
		for _, p := range []modelParams{q19Params, q39Params} {
			perProc := 66
			if p.spec.Q == 39 {
				perProc = 800
			}
			nx := perProc * procs
			bestT, bestD := 0.0, 0
			for depth := 1; depth <= 4; depth++ {
				ranks := nodes * c.tasks
				if nx/ranks < depth*p.k {
					continue
				}
				res, err := perfsim.Run(perfsim.Job{
					Machine: m, Spec: p.spec, K: p.k,
					Nodes: nodes, TasksPerNode: c.tasks, ThreadsPerTask: c.threads,
					NX: nx, NY: 48, NZ: 48,
					Steps: 50, Depth: depth, Opt: core.OptSIMD,
					Imbalance: 0.15, Seed: 3,
				})
				if err != nil {
					return nil, err
				}
				if bestT == 0 || res.Seconds < bestT {
					bestT, bestD = res.Seconds, depth
				}
			}
			row = append(row, fmt.Sprintf("%.2f", bestT), fmt.Sprintf("%d", bestD))
		}
		t.Rows = append(t.Rows, row)
	}
	if m.Name == "BG/P" {
		t.Notes = append(t.Notes,
			"paper: 4T ≈ VN for D3Q19; for D3Q39 the 4-thread hybrid with deep halos outperforms virtual-node mode")
	} else {
		t.Notes = append(t.Notes, "paper: the optimal pairing is 4 tasks × 16 threads for both models")
	}
	return t, nil
}
