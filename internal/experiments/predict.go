package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/perfsim"
	"repro/internal/tune"
)

// The observe→predict bridge: run the real instrumented solver across a
// small protocol sweep, run perfsim on a "local" machine model over the
// same jobs, and score the per-phase agreement. This is the observation
// half of ROADMAP direction 3's calibration loop; the closed-loop fit
// (internal/tune) searches the coefficient space until the phases match,
// and a fitted coefficient set replaces the bridge's one-point bandwidth
// anchor when the caller passes one.
//
// Both worlds share one wire model: the real runs install a fabric
// DelayFunc of latency + bytes/linkBW with the tune package's constants,
// and the simulated machine carries the same numbers, so the comparison
// isolates the schedule and roofline models rather than the interconnect
// guess.
const (
	predictLatency = tune.WireLatency
	predictLinkBW  = tune.WireLinkBW
)

// predictPhases are the phases scored by the bridge — the ones perfsim's
// schedule decomposition predicts (fixup/face/sponge/force are zero in the
// periodic sweep).
var predictPhases = []obs.Phase{obs.Interior, obs.Rim, obs.Pack, obs.Wire, obs.Unpack}

// predictMachine is the "local" machine model: bandwidth anchored by the
// observe pass, a flop roofline high enough to never bind (the kernels
// here are bandwidth-limited, §III.C), and the shared wire constants.
func predictMachine(memBW float64) machine.Machine {
	return machine.Machine{
		Name:            "local",
		MemBWBytes:      memBW,
		PeakFlops:       1e15,
		TorusLinkBytes:  predictLinkBW,
		TorusLinks:      12,
		LinkLatency:     predictLatency,
		CoresPerNode:    1,
		ThreadsPerCore:  1,
		MemPerNodeBytes: 1 << 40,
	}
}

// PredictRow pairs one job's observed and predicted per-phase breakdowns
// (seconds, mean across ranks; totals are wall seconds).
type PredictRow struct {
	Label          string             `json:"label"`
	Observed       map[string]float64 `json:"observed"`
	Predicted      map[string]float64 `json:"predicted"`
	ObservedTotal  float64            `json:"observed_total"`
	PredictedTotal float64            `json:"predicted_total"`
}

// PredictReport is the structured output of the bridge.
type PredictReport struct {
	Schema  string          `json:"schema"`
	Machine obs.MachineInfo `json:"machine"`
	Model   string          `json:"model"`
	Steps   int             `json:"steps"`
	// MemBWAnchor is the calibrated memory bandwidth (bytes/s): the one
	// free parameter of the anchored fallback, fit to the first job's
	// interior phase. Zero when the prediction ran with fitted
	// coefficients instead.
	MemBWAnchor float64 `json:"mem_bw_anchor,omitempty"`
	// Fitted is true when the prediction used a fitted coefficient set
	// (lbm-fit/v1) instead of the one-point anchor.
	Fitted    bool               `json:"fitted,omitempty"`
	Jobs      []PredictRow       `json:"jobs"`
	PhaseMAPE map[string]float64 `json:"phase_mape"`
	TotalMAPE float64            `json:"total_mape"`
	PearsonR  float64            `json:"pearson_r"`
}

// PredictSchema identifies the report's JSON shape.
const PredictSchema = "lbm-predict/v1"

// predictJob is one sweep point, run identically in both worlds.
type predictJob struct {
	label  string
	opt    core.OptLevel
	ranks  int
	decomp [3]int
	depth  int
}

func predictJobs() []predictJob {
	return []predictJob{
		{"slab GC blocking d1 r2", core.OptGC, 2, [3]int{2, 1, 1}, 1},
		{"slab NB-C d1 r2", core.OptNBC, 2, [3]int{2, 1, 1}, 1},
		{"slab GC-C d2 r2", core.OptGCC, 2, [3]int{2, 1, 1}, 2},
		{"pencil GC-C d1 r4", core.OptGCC, 4, [3]int{2, 2, 1}, 1},
	}
}

// Predict runs the observe→predict bridge and scores the agreement. A
// non-nil coeffs prices the sweep with the fitted coefficient model; nil
// falls back to the one-point memory-bandwidth anchor (the pre-fit
// behavior, kept reachable for comparison and for hosts without a fit).
func Predict(modelName string, steps int, coeffs *perfsim.Coeffs) (*PredictReport, error) {
	m, err := lattice.ByName(modelName)
	if err != nil {
		return nil, err
	}
	n := realDims(m)
	jobs := predictJobs()
	delay := func(src, dst, bytes int) time.Duration {
		return time.Duration((predictLatency + float64(bytes)/predictLinkBW) * float64(time.Second))
	}

	// Observe pass: the real solver, instrumented, with the shared wire
	// model injected into the fabric.
	observed := make([]obs.PhaseSeconds, len(jobs))
	obsTotals := make([]float64, len(jobs))
	for i, jb := range jobs {
		res, err := core.Run(core.Config{
			Model: m, N: n, Tau: 0.8, Steps: steps,
			Opt: jb.opt, Ranks: jb.ranks, Decomp: jb.decomp, Threads: 1,
			GhostDepth: jb.depth,
			Observe:    true,
			Fabric:     comm.NewFabric(jb.ranks).WithDelay(delay),
		})
		if err != nil {
			return nil, fmt.Errorf("predict: %s: %w", jb.label, err)
		}
		observed[i] = meanObserved(res.Observations)
		obsTotals[i] = res.WallTime.Seconds()
	}

	// Predict pass: perfsim over the same jobs. With fitted coefficients
	// the model is fully specified; otherwise the memory bandwidth is the
	// one anchored parameter — fit so the first job's predicted interior
	// matches its observed interior (prediction scales as 1/B_m with the
	// flop roofline out of play), then held fixed for the sweep.
	const memBW0 = 8e9
	memBW := 0.0
	if coeffs == nil {
		p0, err := predictOne(m, jobs[0], steps, memBW0, nil)
		if err != nil {
			return nil, err
		}
		memBW = memBW0
		if o := observed[0][obs.Interior]; o > 0 && p0.phases[obs.Interior] > 0 {
			memBW = memBW0 * p0.phases[obs.Interior] / o
		}
	}
	// The fitted path still needs a valid machine envelope (flop roofline,
	// validation bounds); its bandwidth fields are inert under Coeffs.
	envBW := memBW
	if coeffs != nil {
		envBW = memBW0
	}
	predicted := make([]obs.PhaseSeconds, len(jobs))
	predTotals := make([]float64, len(jobs))
	for i, jb := range jobs {
		p, err := predictOne(m, jb, steps, envBW, coeffs)
		if err != nil {
			return nil, err
		}
		predicted[i] = p.phases
		predTotals[i] = p.total
	}

	rep := &PredictReport{
		Schema:      PredictSchema,
		Machine:     obs.HostInfo(),
		Model:       m.Name,
		Steps:       steps,
		MemBWAnchor: memBW,
		Fitted:      coeffs != nil,
		PhaseMAPE:   map[string]float64{},
		TotalMAPE:   metrics.MAPE(obsTotals, predTotals),
		PearsonR:    metrics.Pearson(obsTotals, predTotals),
	}
	for i, jb := range jobs {
		row := PredictRow{
			Label:          jb.label,
			Observed:       map[string]float64{},
			Predicted:      map[string]float64{},
			ObservedTotal:  obsTotals[i],
			PredictedTotal: predTotals[i],
		}
		for _, p := range predictPhases {
			row.Observed[p.String()] = observed[i][p]
			row.Predicted[p.String()] = predicted[i][p]
		}
		rep.Jobs = append(rep.Jobs, row)
	}
	for _, p := range predictPhases {
		ov := make([]float64, len(jobs))
		pv := make([]float64, len(jobs))
		for i := range jobs {
			ov[i], pv[i] = observed[i][p], predicted[i][p]
		}
		if mape := metrics.MAPE(ov, pv); !math.IsNaN(mape) {
			rep.PhaseMAPE[p.String()] = mape
		}
	}
	return rep, nil
}

type predictSim struct {
	phases obs.PhaseSeconds
	total  float64
}

func predictOne(m *lattice.Model, jb predictJob, steps int, memBW float64, coeffs *perfsim.Coeffs) (predictSim, error) {
	dims := realDims(m)
	res, err := perfsim.Run(perfsim.Job{
		Machine: predictMachine(memBW),
		Spec:    machine.SpecForQ(m.Q),
		K:       m.MaxSpeed,
		Nodes:   jb.ranks, TasksPerNode: 1, ThreadsPerTask: 1,
		NX: dims.NX, NY: dims.NY, NZ: dims.NZ,
		Decomp: jb.decomp,
		Steps:  steps,
		Depth:  jb.depth,
		Opt:    jb.opt,
		Seed:   1,
		Coeffs: coeffs,
	})
	if err != nil {
		return predictSim{}, fmt.Errorf("predict: %s: %w", jb.label, err)
	}
	var mean obs.PhaseSeconds
	for _, ph := range res.RankPhases {
		for p := range mean {
			mean[p] += ph[p]
		}
	}
	for p := range mean {
		mean[p] /= float64(len(res.RankPhases))
	}
	return predictSim{phases: mean, total: res.Seconds}, nil
}

// meanObserved averages the per-rank observed phase vectors.
func meanObserved(ranks []obs.RankObservation) obs.PhaseSeconds {
	var mean obs.PhaseSeconds
	if len(ranks) == 0 {
		return mean
	}
	for i := range ranks {
		v := ranks[i].Vector()
		for p := range mean {
			mean[p] += v[p]
		}
	}
	for p := range mean {
		mean[p] /= float64(len(ranks))
	}
	return mean
}

// Table renders the report for the terminal.
func (r *PredictReport) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Observe→predict bridge — %s, %d steps, real runs vs perfsim %q machine (seconds, mean across ranks)",
			r.Model, r.Steps, "local"),
		Header: []string{"job", "", "total", "interior", "rim", "pack", "wire", "unpack"},
	}
	row := func(label, kind string, total float64, ph map[string]float64) []string {
		out := []string{label, kind, fmt.Sprintf("%.4f", total)}
		for _, p := range predictPhases {
			out = append(out, fmt.Sprintf("%.4f", ph[p.String()]))
		}
		return out
	}
	for _, jb := range r.Jobs {
		t.Rows = append(t.Rows,
			row(jb.Label, "obs", jb.ObservedTotal, jb.Observed),
			row("", "pred", jb.PredictedTotal, jb.Predicted))
	}
	mape := "per-phase MAPE:"
	for _, p := range predictPhases {
		if v, ok := r.PhaseMAPE[p.String()]; ok {
			mape += fmt.Sprintf("  %s %.0f%%", p, 100*v)
		}
	}
	calib := fmt.Sprintf("memory bandwidth anchored on the first job's interior phase (B_m = %.2f GB/s); pass a fitted coefficient set (-fit, from `lbmbench -exp fit`) for the closed-loop calibration", r.MemBWAnchor/1e9)
	if r.Fitted {
		calib = "priced with fitted coefficients (lbm-fit/v1) — the closed-loop calibration of ROADMAP direction 3"
	}
	t.Notes = append(t.Notes,
		mape,
		fmt.Sprintf("total MAPE %.0f%%, Pearson r = %.3f on job totals", 100*r.TotalMAPE, r.PearsonR),
		calib,
		fmt.Sprintf("shared wire model: %.0f µs latency + bytes / %.0f MB/s, injected into the real fabric and the simulated machine alike", 1e6*predictLatency, predictLinkBW/1e6),
	)
	return t
}
