// Package machine models the target hardware of the paper's performance
// study — the IBM Blue Gene/P and Blue Gene/Q nodes — and implements the
// analytic performance bounds of §III: Wellein et al.'s attainable-MFlup/s
// model (Table II) and the torus-bandwidth lower bounds (§III.C).
//
// The hardware constants come from the paper and its references [15]-[17];
// see DESIGN.md for the substitution rationale (we simulate these machines
// rather than run on them).
package machine

import "fmt"

// Machine describes one compute platform.
type Machine struct {
	Name string
	// MemBWBytes is the main-store bandwidth per node, bytes/s (B_m).
	MemBWBytes float64
	// PeakFlops is the peak floating-point rate per node, flop/s.
	PeakFlops float64
	// TorusLinkBytes is the usable bandwidth of one unidirectional torus
	// link, bytes/s.
	TorusLinkBytes float64
	// TorusLinks is the number of unidirectional links per node.
	TorusLinks int
	// LinkLatency is the per-message latency of the interconnect, seconds.
	LinkLatency float64
	// CoresPerNode and ThreadsPerCore bound the tasks×threads products of
	// the hybrid study.
	CoresPerNode   int
	ThreadsPerCore int
	// MemPerNodeBytes bounds the problem size per node (the paper's
	// out-of-memory cases in Fig. 10).
	MemPerNodeBytes float64
}

// BGP returns the IBM Blue Gene/P node model: 4-core 850 MHz PowerPC 450,
// 13.6 GFlop/s and 13.6 GB/s per node, 2 GB memory, 3-D torus with 6
// bidirectional neighbor links at 425 MB/s per direction [15].
func BGP() Machine {
	return Machine{
		Name:            "BG/P",
		MemBWBytes:      13.6e9,
		PeakFlops:       13.6e9,
		TorusLinkBytes:  425e6,
		TorusLinks:      12, // 6 neighbors × 2 directions
		LinkLatency:     3e-6,
		CoresPerNode:    4,
		ThreadsPerCore:  1,
		MemPerNodeBytes: 2 << 30,
	}
}

// BGQ returns the IBM Blue Gene/Q node model: 16-core (+1 service) 1.6 GHz
// A2, 204.8 GFlop/s and 43 GB/s per node, 16 GB memory, 5-D torus with 10
// bidirectional links at an effective 1.6 GB/s per direction [16], [17].
func BGQ() Machine {
	return Machine{
		Name:            "BG/Q",
		MemBWBytes:      43e9,
		PeakFlops:       204.8e9,
		TorusLinkBytes:  1.6e9,
		TorusLinks:      20, // 10 neighbors × 2 directions
		LinkLatency:     1.5e-6,
		CoresPerNode:    16,
		ThreadsPerCore:  4,
		MemPerNodeBytes: 16 << 30,
	}
}

// ByName returns the machine with the given name.
func ByName(name string) (Machine, error) {
	switch name {
	case "BG/P", "bgp", "BGP":
		return BGP(), nil
	case "BG/Q", "bgq", "BGQ":
		return BGQ(), nil
	}
	return Machine{}, fmt.Errorf("machine: unknown machine %q (want bgp or bgq)", name)
}

// KernelSpec carries the per-lattice-point costs of the paper's
// implementation (§III.B): two loads and one store per velocity (B = 3·Q·8
// bytes) and the counted core floating-point operations.
type KernelSpec struct {
	Name         string
	Q            int
	BytesPerCell float64
	FlopsPerCell float64
}

// SpecD3Q19 is the paper's D3Q19 kernel: 456 bytes and 178 flops per cell.
func SpecD3Q19() KernelSpec {
	return KernelSpec{Name: "D3Q19", Q: 19, BytesPerCell: 456, FlopsPerCell: 178}
}

// SpecD3Q39 is the paper's D3Q39 kernel: 936 bytes and 190 flops per cell.
func SpecD3Q39() KernelSpec {
	return KernelSpec{Name: "D3Q39", Q: 39, BytesPerCell: 936, FlopsPerCell: 190}
}

// SpecForQ returns the paper's kernel spec for a lattice with q velocities,
// deriving bytes as 3·q·8 for other lattices.
func SpecForQ(q int) KernelSpec {
	switch q {
	case 19:
		return SpecD3Q19()
	case 39:
		return SpecD3Q39()
	default:
		return KernelSpec{Name: fmt.Sprintf("Q%d", q), Q: q, BytesPerCell: float64(3 * 8 * q), FlopsPerCell: 180}
	}
}

// Bound is the roofline evaluation of Eq. (5): P = min(B_m/B, P_peak/F),
// in MFlup/s, with the limiting factor identified.
type Bound struct {
	// PBm is the bandwidth-bound MFlup/s: B_m / B.
	PBm float64
	// PPeak is the compute-bound MFlup/s: P_peak / F.
	PPeak float64
	// Attainable is min(PBm, PPeak).
	Attainable float64
	// BandwidthLimited reports whether PBm < PPeak (true for every
	// machine/lattice pair in the paper — "in all cases, the code is
	// extremely bandwidth limited").
	BandwidthLimited bool
	// HWEfficiencyCap is PBm/PPeak: the highest fraction of peak flop/s the
	// kernel can reach when bandwidth-bound (38% for D3Q19 and 20% for
	// D3Q39 on BG/P, §III.C).
	HWEfficiencyCap float64
}

// MaxMFlups evaluates the attainable-performance model (paper Eq. 5 /
// Table II) for one node.
func MaxMFlups(m Machine, k KernelSpec) Bound {
	b := Bound{
		PBm:   m.MemBWBytes / k.BytesPerCell / 1e6,
		PPeak: m.PeakFlops / k.FlopsPerCell / 1e6,
	}
	b.Attainable = b.PBm
	b.BandwidthLimited = true
	if b.PPeak < b.PBm {
		b.Attainable = b.PPeak
		b.BandwidthLimited = false
	}
	b.HWEfficiencyCap = b.PBm / b.PPeak
	return b
}

// TorusBoundMFlups is the §III.C lower bound: the MFlup/s attained if every
// load and store went over the torus, i.e. all links' aggregate bandwidth
// divided by the bytes per cell.
func TorusBoundMFlups(m Machine, k KernelSpec) float64 {
	agg := float64(m.TorusLinks) * m.TorusLinkBytes
	return agg / k.BytesPerCell / 1e6
}

// FieldBytesPerCell returns the resident memory per lattice point for the
// two-array implementation: 2 fields × q × 8 bytes.
func FieldBytesPerCell(q int) float64 { return 2 * 8 * float64(q) }
