package machine

import (
	"math"
	"testing"
)

// TestTableII pins the paper's Table II values: attainable MFlup/s per node
// for each machine × lattice, and the limiting factor.
func TestTableII(t *testing.T) {
	cases := []struct {
		m          Machine
		k          KernelSpec
		pbm, ppeak float64 // paper's printed values
		tolPbm     float64
		tolPpeak   float64
	}{
		// BG/P D3Q19: 29 / 76.4 (the paper rounds 29.8 down to 29).
		{BGP(), SpecD3Q19(), 29, 76.4, 1.0, 0.1},
		// BG/Q D3Q19: 94 / 1150.
		{BGQ(), SpecD3Q19(), 94, 1150, 1.0, 1.0},
		// BG/P D3Q39: 14.5 / 71.5.
		{BGP(), SpecD3Q39(), 14.5, 71.5, 0.1, 0.2},
		// BG/Q D3Q39: 45 / 1077.
		{BGQ(), SpecD3Q39(), 45, 1077, 1.0, 1.0},
	}
	for _, c := range cases {
		b := MaxMFlups(c.m, c.k)
		if math.Abs(b.PBm-c.pbm) > c.tolPbm {
			t.Errorf("%s %s: P(Bm) = %.1f MFlup/s, paper %.1f", c.m.Name, c.k.Name, b.PBm, c.pbm)
		}
		if math.Abs(b.PPeak-c.ppeak) > c.tolPpeak {
			t.Errorf("%s %s: P(Ppeak) = %.1f MFlup/s, paper %.1f", c.m.Name, c.k.Name, b.PPeak, c.ppeak)
		}
		if !b.BandwidthLimited {
			t.Errorf("%s %s: not bandwidth limited; the paper finds all cases are", c.m.Name, c.k.Name)
		}
		if b.Attainable != b.PBm {
			t.Errorf("%s %s: attainable %g != PBm %g under bandwidth limit", c.m.Name, c.k.Name, b.Attainable, b.PBm)
		}
	}
}

// TestSectionIIICBounds pins the torus lower bounds: 11.1 & 70 MFlup/s for
// D3Q19 and 5.4 & 34 for D3Q39 on BG/P & BG/Q.
func TestSectionIIICBounds(t *testing.T) {
	cases := []struct {
		m    Machine
		k    KernelSpec
		want float64
		tol  float64
	}{
		{BGP(), SpecD3Q19(), 11.1, 0.2},
		{BGQ(), SpecD3Q19(), 70, 1.5},
		{BGP(), SpecD3Q39(), 5.4, 0.1},
		{BGQ(), SpecD3Q39(), 34, 1.0},
	}
	for _, c := range cases {
		if got := TorusBoundMFlups(c.m, c.k); math.Abs(got-c.want) > c.tol {
			t.Errorf("%s %s: torus bound = %.2f MFlup/s, paper %.1f", c.m.Name, c.k.Name, got, c.want)
		}
	}
}

// TestHWEfficiencyCaps pins §III.C: "the models have the potential of
// achieving 38% (D3Q19) and 20% (D3Q39) hardware efficiency" on BG/P.
func TestHWEfficiencyCaps(t *testing.T) {
	if got := MaxMFlups(BGP(), SpecD3Q19()).HWEfficiencyCap; math.Abs(got-0.38) > 0.015 {
		t.Errorf("BG/P D3Q19 efficiency cap = %.3f, paper 0.38", got)
	}
	if got := MaxMFlups(BGP(), SpecD3Q39()).HWEfficiencyCap; math.Abs(got-0.20) > 0.015 {
		t.Errorf("BG/P D3Q39 efficiency cap = %.3f, paper 0.20", got)
	}
}

func TestBytesPerCell(t *testing.T) {
	// §III.B: "two load operations and one store operation for every
	// velocity mode": (19+19+19)·8 = 456 and (39+39+39)·8 = 936.
	if got := SpecD3Q19().BytesPerCell; got != 456 {
		t.Errorf("D3Q19 bytes/cell = %g, want 456", got)
	}
	if got := SpecD3Q39().BytesPerCell; got != 936 {
		t.Errorf("D3Q39 bytes/cell = %g, want 936", got)
	}
	if got := FieldBytesPerCell(19); got != 304 {
		t.Errorf("field bytes/cell(19) = %g, want 304", got)
	}
}

func TestSpecForQ(t *testing.T) {
	if s := SpecForQ(19); s.FlopsPerCell != 178 {
		t.Errorf("SpecForQ(19) flops = %g", s.FlopsPerCell)
	}
	if s := SpecForQ(39); s.FlopsPerCell != 190 {
		t.Errorf("SpecForQ(39) flops = %g", s.FlopsPerCell)
	}
	if s := SpecForQ(27); s.BytesPerCell != 648 {
		t.Errorf("SpecForQ(27) bytes = %g, want 648", s.BytesPerCell)
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"bgp", "BG/P", "BGQ"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("cray"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestMachineShapes(t *testing.T) {
	p, q := BGP(), BGQ()
	if p.CoresPerNode*p.ThreadsPerCore != 4 {
		t.Errorf("BG/P supports %d hardware threads, want 4", p.CoresPerNode*p.ThreadsPerCore)
	}
	if q.CoresPerNode*q.ThreadsPerCore != 64 {
		t.Errorf("BG/Q supports %d hardware threads, want 64", q.CoresPerNode*q.ThreadsPerCore)
	}
	// The paper's central observation: BG/Q grew flops ~15× but bandwidth
	// only ~3× over BG/P, widening the bandwidth/flop gap.
	flopRatio := q.PeakFlops / p.PeakFlops
	bwRatio := q.MemBWBytes / p.MemBWBytes
	if flopRatio < 10 || bwRatio > 5 {
		t.Errorf("flop ratio %.1f, bw ratio %.1f: expected growing disparity", flopRatio, bwRatio)
	}
}
