// Package scenario is the registry of named flow scenarios behind the
// lbmrun CLI: each scenario turns the generic flag set (domain, Reynolds
// number, geometry file, ...) into a solver configuration and knows how to
// report its own physics after the run. The CLI derives its help text and
// its unknown-scenario errors from the registry, so adding a scenario here
// is the whole job — no switch statements to keep in sync.
package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/physics"
)

// Params carries the scenario-relevant CLI flags. Configure may read any
// of them; flags a scenario ignores are simply unused.
type Params struct {
	Model *lattice.Model
	// N is the requested global domain (-nx/-ny/-nz). Scenarios with an
	// intrinsic geometry (channel) override it and report the final shape
	// through the Config.
	N grid.Dims
	// Amplitude is the initial perturbation amplitude (wave).
	Amplitude float64
	// Re is the Reynolds number (cavity: LidU·NY/ν; channel: Ū·D/ν).
	Re float64
	// LidU is the cavity lid speed in lattice units.
	LidU float64
	// UMean is the channel mean inflow speed Ū in lattice units.
	UMean float64
	// D is the channel cylinder diameter in cells (the resolution knob).
	D int
	// GeomPath optionally loads a voxel mask (-geom): extra obstacles for
	// wave, a replacement for the default cylinder in channel.
	GeomPath string
	// StepsSet reports whether the user pinned -steps (scenarios with a
	// physics-determined default run length honor the override).
	StepsSet bool
	// channel carries the benchmark's geometry/measurement shell from
	// Configure to Report.
	channel *physics.CylinderChannelResult
	// CollisionSet reports whether the user picked -collision explicitly
	// (the channel defaults to TRT otherwise — its τ ≈ 0.53 sits where
	// BGK is fragile next to voxelized walls).
	CollisionSet bool
}

// Scenario is one registered flow setup.
type Scenario struct {
	Name string
	// Summary is the one-line description the CLI help derives.
	Summary string
	// Configure turns the flag values into the final solver config. cfg
	// arrives pre-filled with the generic flags (model, opt level, ranks,
	// decomposition, threads, depth, collision, steps); Configure adjusts
	// whatever the scenario owns (domain, tau, boundaries, geometry,
	// init, measurement).
	Configure func(p *Params, cfg *core.Config) error
	// Report, when non-nil, prints scenario-specific physics after the
	// run (centerline errors, force coefficients, ...). The returned
	// lines are printed verbatim by the CLI.
	Report func(p *Params, cfg *core.Config, res *core.Result) []string
}

var registry = map[string]*Scenario{}

// Register adds a scenario; duplicate names panic (registration is
// package-init time).
func Register(s *Scenario) {
	if _, dup := registry[s.Name]; dup {
		panic("scenario: duplicate " + s.Name)
	}
	registry[s.Name] = s
}

// Names lists the registered scenarios, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get resolves a scenario by name; the error of an unknown name lists
// every valid one.
func Get(name string) (*Scenario, error) {
	if s, ok := registry[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (want %s)", name, strings.Join(Names(), ", "))
}

// Usage returns the one-line flag help derived from the registry.
func Usage() string {
	var parts []string
	for _, name := range Names() {
		parts = append(parts, fmt.Sprintf("%s (%s)", name, registry[name].Summary))
	}
	return "flow scenario: " + strings.Join(parts, ", ")
}

// loadGeom loads the -geom voxel mask and checks it against the domain.
func loadGeom(path string, n grid.Dims) (*geom.Mask, error) {
	m, err := geom.Load(path)
	if err != nil {
		return nil, err
	}
	if m.D != n {
		return nil, fmt.Errorf("scenario: -geom mask is %v, domain is %v", m.D, n)
	}
	return m, nil
}

func init() {
	Register(&Scenario{
		Name:    "wave",
		Summary: "periodic shear wave, optional -geom obstacles",
		Configure: func(p *Params, cfg *core.Config) error {
			n, a := p.N, p.Amplitude
			cfg.Init = func(ix, iy, iz int) (rho, ux, uy, uz float64) {
				x := 2 * math.Pi * float64(ix) / float64(n.NX)
				y := 2 * math.Pi * float64(iy) / float64(n.NY)
				return 1 + a*math.Sin(x)*math.Cos(y), a * math.Sin(y), -a * math.Cos(x), 0
			}
			if p.GeomPath != "" {
				m, err := loadGeom(p.GeomPath, n)
				if err != nil {
					return err
				}
				cfg.Solid = m
			}
			return nil
		},
	})

	Register(&Scenario{
		Name:    "cavity",
		Summary: "bounded lid-driven cavity, -re sets tau",
		Configure: func(p *Params, cfg *core.Config) error {
			// Lid along +x on the high-y face; z periodic (quasi-2-D).
			// Re = LidU·NY/ν sets tau.
			cfg.Tau = cfg.Model.TauForViscosity(p.LidU * float64(p.N.NY) / p.Re)
			cfg.Boundary = core.CavitySpec(p.LidU)
			cfg.Init = nil // from rest
			cfg.KeepField = true
			if !p.StepsSet {
				cfg.Steps = physics.CavitySteadySteps(p.Re, p.N.NY, p.LidU)
			}
			return nil
		},
		Report: func(p *Params, cfg *core.Config, res *core.Result) []string {
			if p.N.NX != p.N.NY {
				return nil
			}
			prof := physics.CavityProfiles(cfg.Model, res.Field, p.LidU)
			eu, ev, err := prof.CompareCavity(int(p.Re))
			if err != nil {
				return nil
			}
			return []string{fmt.Sprintf("centerline   max |Δu| %.4f, |Δv| %.4f of lid speed vs Hou et al. Re=%d", eu, ev, int(p.Re))}
		},
	})

	Register(&Scenario{
		Name:    "channel",
		Summary: "inlet-driven flow past a cylinder, vortex shedding at -re 100",
		Configure: func(p *Params, cfg *core.Config) error {
			// The benchmark owns the kernel shape: reject flags it would
			// otherwise silently drop.
			if cfg.Layout != grid.SoA {
				return fmt.Errorf("scenario: the channel requires the SoA layout")
			}
			if cfg.Fused {
				return fmt.Errorf("scenario: the channel's bounce-back obstacle needs the split kernels (drop -fused)")
			}
			col := cfg.Collision
			if !p.CollisionSet {
				col = collision.Spec{Kind: collision.TRT}
			}
			bc := physics.CylinderChannelConfig{
				Model: cfg.Model, D: p.D, Re: p.Re, UMean: p.UMean,
				Collision: col,
				Ranks:     cfg.Ranks, Decomp: cfg.Decomp, Threads: cfg.Threads,
				Opt: cfg.Opt, GhostDepth: cfg.GhostDepth,
			}
			if p.StepsSet {
				bc.Steps = cfg.Steps
			}
			built, shell, err := physics.BuildCylinderChannel(bc)
			if err != nil {
				return err
			}
			built.GhostDepthAxes = cfg.GhostDepthAxes
			built.Fabric = cfg.Fabric
			built.KeepField = cfg.KeepField
			built.StepJitter = cfg.StepJitter
			built.Balance = cfg.Balance
			built.Sparse = cfg.Sparse
			built.Observe = cfg.Observe
			built.Trace = cfg.Trace
			if p.GeomPath != "" {
				m, err := loadGeom(p.GeomPath, built.N)
				if err != nil {
					return err
				}
				built.Solid = m
			}
			*cfg = built
			p.channel = shell
			return nil
		},
		Report: func(p *Params, cfg *core.Config, res *core.Result) []string {
			shell := p.channel
			if shell == nil {
				return nil
			}
			if err := shell.Analyze(res); err != nil {
				return []string{"channel      " + err.Error()}
			}
			out := []string{fmt.Sprintf("forces       mean Cd %.4f (max %.4f), max |Cl| %.4f over steps [%d, %d)",
				shell.Cd, shell.CdMax, shell.ClMax, shell.From, shell.Steps)}
			if shell.St > 0 {
				out = append(out, fmt.Sprintf("shedding     St = %.4f over %d periods", shell.St, shell.Periods))
			} else {
				out = append(out, "shedding     none detected (steady wake)")
			}
			if ref, ok := physics.CylinderRefFor(p.Re); ok {
				line := fmt.Sprintf("reference    Schaefer-Turek Re=%g: Cd in [%.2f, %.2f]", ref.Re, ref.CdLo, ref.CdHi)
				if ref.StLo > 0 {
					line += fmt.Sprintf(", St in [%.3f, %.3f]", ref.StLo, ref.StHi)
				}
				out = append(out, line)
			}
			return out
		},
	})
}
