package scenario

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
)

func TestRegistryNamesAndErrors(t *testing.T) {
	names := Names()
	for _, want := range []string{"wave", "cavity", "channel"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("scenario %q not registered (have %v)", want, names)
		}
	}
	if _, err := Get("wave"); err != nil {
		t.Errorf("Get(wave): %v", err)
	}
	_, err := Get("vortex")
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	// The error (and the flag usage) must list every valid name — the
	// registry, not a hand-maintained string, is the source of truth.
	for _, n := range names {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("unknown-scenario error %q does not list %q", err, n)
		}
		if !strings.Contains(Usage(), n) {
			t.Errorf("usage %q does not list %q", Usage(), n)
		}
	}
}

func TestWaveConfigure(t *testing.T) {
	sc, err := Get("wave")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Model: lattice.D3Q19(), N: grid.Dims{NX: 12, NY: 8, NZ: 6}, Amplitude: 0.01}
	cfg := core.Config{Model: p.Model, N: p.N, Tau: 0.8, Steps: 3, Opt: core.OptSIMD}
	if err := sc.Configure(&p, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Init == nil {
		t.Fatal("wave left Init nil")
	}
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWaveGeomFile(t *testing.T) {
	n := grid.Dims{NX: 12, NY: 8, NZ: 6}
	mask := geom.FromFunc(n, func(ix, iy, iz int) bool { return ix == 4 && iy < 4 })
	path := filepath.Join(t.TempDir(), "m.csv")
	if err := geom.Save(path, mask); err != nil {
		t.Fatal(err)
	}
	sc, _ := Get("wave")
	p := Params{Model: lattice.D3Q19(), N: n, Amplitude: 0.01, GeomPath: path}
	cfg := core.Config{Model: p.Model, N: n, Tau: 0.8, Steps: 2, Opt: core.OptSIMD}
	if err := sc.Configure(&p, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Solid == nil || !cfg.Solid.Equal(mask) {
		t.Fatal("geom file not loaded into Config.Solid")
	}
	// A mask of the wrong shape is a configuration error.
	p.N = grid.Dims{NX: 10, NY: 8, NZ: 6}
	cfg2 := core.Config{Model: p.Model, N: p.N, Tau: 0.8, Steps: 2, Opt: core.OptSIMD}
	if err := sc.Configure(&p, &cfg2); err == nil {
		t.Fatal("mismatched -geom mask accepted")
	}
}

func TestCavityConfigure(t *testing.T) {
	sc, _ := Get("cavity")
	p := Params{Model: lattice.D3Q19(), N: grid.Dims{NX: 16, NY: 16, NZ: 2}, Re: 100, LidU: 0.1}
	cfg := core.Config{Model: p.Model, N: p.N, Tau: 0.8, Steps: 99, Opt: core.OptSIMD}
	if err := sc.Configure(&p, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Boundary == nil || cfg.Boundary.Faces[1][1].Kind != core.BCMovingWall {
		t.Fatal("cavity boundary not configured")
	}
	if cfg.Steps == 99 {
		t.Fatal("cavity did not apply its steady-state step default")
	}
	p.StepsSet = true
	cfg.Steps = 99
	if err := sc.Configure(&p, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Steps != 99 {
		t.Fatal("cavity overrode the user's -steps")
	}
}

func TestChannelConfigure(t *testing.T) {
	sc, _ := Get("channel")
	p := Params{Model: lattice.D3Q19(), N: grid.Dims{NX: 64, NY: 32, NZ: 32}, Re: 20, UMean: 0.05, D: 8}
	cfg := core.Config{Model: p.Model, N: p.N, Tau: 0.8, Steps: 100, Opt: core.OptSIMD}
	if err := sc.Configure(&p, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.N.NX != 22*8 {
		t.Fatalf("channel domain %v, want NX = %d", cfg.N, 22*8)
	}
	if cfg.Solid == nil || cfg.Solid.Empty() {
		t.Fatal("channel has no cylinder")
	}
	if !cfg.MeasureForces {
		t.Fatal("channel does not measure forces")
	}
	if cfg.Boundary == nil || cfg.Boundary.Faces[0][0].Kind != core.BCInlet {
		t.Fatal("channel inlet missing")
	}
	// Without -collision the channel defaults to TRT.
	if cfg.Collision.IsBGK() {
		t.Fatal("channel did not default to TRT")
	}
	// A very short run end to end, with the scenario's report.
	p.StepsSet = true
	cfg2 := core.Config{Model: p.Model, N: p.N, Tau: 0.8, Steps: 90, Opt: core.OptSIMD}
	if err := sc.Configure(&p, &cfg2); err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Report == nil {
		t.Fatal("channel has no report")
	}
	lines := sc.Report(&p, &cfg2, res)
	if len(lines) == 0 {
		t.Fatal("channel report empty")
	}
}
