// Command lbmbench regenerates the paper's tables and figures.
//
// By default an experiment is produced at paper scale via the perfsim
// discrete-event simulator over the Blue Gene machine models; with -real
// the corresponding real-kernel experiment runs on the local machine
// instead (fig8, fig9, fig10, fig11 only).
//
// Examples:
//
//	lbmbench -exp table2
//	lbmbench -exp fig8 -machine bgq
//	lbmbench -exp fig8 -real -model d3q39
//	lbmbench -exp fig8 -real -collision trt
//	lbmbench -exp collision
//	lbmbench -exp predict -steps 10
//	lbmbench -exp fit -steps 10 -json fit.json
//	lbmbench -exp predict -fit fit.json
//	lbmbench -exp tune -fit fit.json -scenario cavity64 -json tuned.json
//	lbmbench -exp bench -fit fit.json -json BENCH_10.json
//	lbmbench -exp all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/perfsim"
	"repro/internal/tune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbmbench: ")

	var (
		exp      = flag.String("exp", "all", "experiment: table1, table2, fig8, fig9, fig10, table3, table4, fig11, decomp, collision, fixup, threads, balance, predict, fit, tune, bench, or all")
		machine  = flag.String("machine", "bgp", "machine for fig8/fig9/fig11/decomp: bgp or bgq")
		real     = flag.Bool("real", false, "run the real kernels locally instead of the paper-scale simulator (fixup, threads and balance are real-only)")
		model    = flag.String("model", "D3Q19", "model for -real and collision experiments")
		ranks    = flag.Int("ranks", 4, "ranks for -real experiments")
		threads  = flag.Int("threads", 1, "worker threads per rank for -real experiments; for -exp threads the top of the sweep (0 = runtime.NumCPU()/ranks, floor 1)")
		steps    = flag.Int("steps", 30, "steps for -real experiments")
		decomp   = flag.String("decomp", "1d", "decomposition for -real experiments: 1d, 2d, 3d or PxxPyxPz")
		depth    = flag.String("depth", "1", "ghost-cell depth for -real fig8/fig9/fig11: one value or per-axis dx,dy,dz (fig10 sweeps depth itself)")
		collide  = flag.String("collision", "bgk", "collision operator for -real experiments: bgk, trt or mrt")
		magic    = flag.Float64("magic", 0, "TRT magic parameter Lambda for -real experiments (0 = 1/4)")
		mrtRates = flag.String("mrt-rates", "", "MRT ghost rates by order for -real experiments (comma-separated from order 3)")
		stream   = flag.String("stream", "twogrid", "streaming storage for -real fig8/fig9/fig10/fig11: twogrid (separate advected field) or aa (in-place AA pattern, half the f-memory)")
		reportF  = flag.String("report", "", "for -exp predict: also write the structured bridge report (JSON) to this file")
		fitF     = flag.String("fit", "", "fitted coefficients file (lbm-fit/v1, from -exp fit): prices predict/tune/bench with the closed-loop calibration instead of the one-point anchor")
		jsonF    = flag.String("json", "", "for -exp fit/tune/bench: write the structured result (JSON) to this file")
		scenF    = flag.String("scenario", "", "for -exp tune: tuning scenario (default: all of them; required with -json)")
		workers  = flag.Int("workers", 0, "for -exp tune/bench: worker budget ranks*threads (0 = runtime.NumCPU())")
		topK     = flag.Int("topk", 3, "for -exp tune/bench: predicted-best candidates confirmed with real runs")
		gateMAPE = flag.Float64("gate-mape", 0, "for -exp fit: exit non-zero if the fitted objective MAPE exceeds this fraction (also requires fitted < anchored)")
		gateR    = flag.Float64("gate-pearson", 0, "for -exp fit: exit non-zero if the whole-sweep Pearson r on wall times falls below this")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}()
	}

	kind, err := collision.ParseKind(*collide)
	if err != nil {
		log.Fatal(err)
	}
	rates, err := collision.ParseRates(*mrtRates)
	if err != nil {
		log.Fatal(err)
	}
	// Validate eagerly so flag misuse (e.g. -magic with bgk) fails with a
	// message instead of being silently dropped.
	colSpec := collision.Spec{Kind: kind, Magic: *magic, GhostRates: rates}
	if err := colSpec.Validate(); err != nil {
		log.Fatal(err)
	}
	// The perfsim experiments model BGK kernels and the collision table
	// sweeps its own operator list: a non-default collision spec only
	// applies to -real runs, so reject it elsewhere rather than silently
	// producing output that ignores the flags.
	if !*real && (!colSpec.IsBGK() || *magic != 0 || rates != nil) {
		log.Fatalf("-collision/-magic/-mrt-rates apply to -real experiments only (got -exp %s without -real)", *exp)
	}

	if !*real && *depth != "1" {
		log.Fatalf("-depth applies to -real experiments only (got -exp %s without -real)", *exp)
	}
	scheme, err := core.ParseStreamScheme(*stream)
	if err != nil {
		log.Fatal(err)
	}
	if !*real && scheme != core.StreamTwoGrid {
		log.Fatalf("-stream applies to -real experiments only (got -exp %s without -real)", *exp)
	}
	if *reportF != "" && *exp != "predict" {
		log.Fatalf("-report applies to -exp predict only (got -exp %s)", *exp)
	}
	tuningExp := *exp == "predict" || *exp == "fit" || *exp == "tune" || *exp == "bench"
	if *fitF != "" && !tuningExp {
		log.Fatalf("-fit applies to -exp predict/fit/tune/bench (got -exp %s)", *exp)
	}
	if *jsonF != "" && !(*exp == "fit" || *exp == "tune" || *exp == "bench") {
		log.Fatalf("-json applies to -exp fit/tune/bench (got -exp %s)", *exp)
	}
	if tuningExp && *real {
		log.Fatalf("-exp %s already runs the real kernels; drop -real", *exp)
	}
	// The calibration loop: -fit loads fitted coefficients (lbm-fit/v1)
	// and predict/tune/bench price with them instead of the anchored
	// fallback.
	var coeffs *perfsim.Coeffs
	if *fitF != "" && *exp != "fit" {
		fr, err := tune.LoadFit(*fitF)
		if err != nil {
			log.Fatal(err)
		}
		coeffs = &fr.Coeffs
	}
	switch *exp {
	case "fit":
		res, err := experiments.RunFit(*model, *steps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FitTable(res).Render())
		if *jsonF != "" {
			if err := tune.SaveFit(*jsonF, res); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("fit written to %s\n", *jsonF)
		}
		if *gateMAPE > 0 {
			if res.FittedMAPE > *gateMAPE {
				log.Fatalf("calibration gate: fitted MAPE %.1f%% exceeds the %.1f%% gate",
					100*res.FittedMAPE, 100**gateMAPE)
			}
			if res.FittedMAPE >= res.AnchoredMAPE {
				log.Fatalf("calibration gate: fitted MAPE %.2f%% does not beat the anchored fallback's %.2f%%",
					100*res.FittedMAPE, 100*res.AnchoredMAPE)
			}
		}
		if *gateR > 0 && res.PearsonR < *gateR {
			log.Fatalf("calibration gate: Pearson r %.3f below the %.3f gate", res.PearsonR, *gateR)
		}
		return
	case "tune":
		names := experiments.TuneScenarioNames()
		if *scenF != "" {
			names = []string{*scenF}
		} else if *jsonF != "" {
			log.Fatal("-json with -exp tune needs -scenario (one tuned config per file)")
		}
		for _, name := range names {
			tn, err := experiments.RunTune(name, coeffs, *workers, *topK, *steps)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(experiments.TuneTable(tn).Render())
			if *jsonF != "" {
				if err := tune.SaveTuned(*jsonF, tn); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("tuned config written to %s\n", *jsonF)
			}
		}
		return
	case "bench":
		rep, err := experiments.RunBench(coeffs, *workers, *topK, *steps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.BenchTable(rep).Render())
		if *jsonF != "" {
			f, err := os.Create(*jsonF)
			if err != nil {
				log.Fatal(err)
			}
			if err := experiments.WriteBench(f, rep); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("benchmark record written to %s\n", *jsonF)
		}
		return
	}
	if *exp == "predict" {
		rep, err := experiments.Predict(*model, *steps, coeffs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep.Table().Render())
		if *reportF != "" {
			f, err := os.Create(*reportF)
			if err != nil {
				log.Fatal(err)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("report written to %s\n", *reportF)
		}
		return
	}
	if *real {
		nthreads, err := core.ResolveThreads(*threads, *ranks)
		if err != nil {
			log.Fatal(err)
		}
		tb, err := realExperiment(*exp, *model, *ranks, nthreads, *steps, *decomp, *depth, colSpec, scheme)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tb.Render())
		return
	}
	if *threads != 1 {
		log.Fatalf("-threads applies to -real experiments only (got -exp %s without -real)", *exp)
	}
	if *exp == "collision" {
		// The collision comparison always runs the real kernels; honor the
		// -model flag directly.
		tb, err := experiments.CollisionTable(*model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tb.Render())
		return
	}

	var tables []*experiments.Table
	if *exp == "all" {
		tables, err = experiments.GenerateAll()
	} else {
		tables, err = experiments.Generate(*exp, *machine)
	}
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
}

func realExperiment(exp, model string, ranks, threads, steps int, decomp, depth string, colSpec collision.Spec, stream core.StreamScheme) (*experiments.Table, error) {
	switch exp {
	case "fig8":
		return experiments.RealFig8(model, ranks, threads, steps, decomp, depth, colSpec, stream)
	case "fig9":
		return experiments.RealFig9(model, ranks, threads, steps, decomp, depth, colSpec, stream)
	case "fig10":
		if depth != "1" {
			return nil, fmt.Errorf("fig10 sweeps ghost depth itself; drop -depth")
		}
		return experiments.RealFig10(model, ranks, threads, steps, decomp, colSpec, stream)
	case "fig11":
		return experiments.RealFig11(model, steps, decomp, depth, colSpec, stream)
	case "collision":
		return experiments.CollisionTable(model)
	case "fixup":
		if stream != core.StreamTwoGrid {
			return nil, fmt.Errorf("fixup compares the fixup-scan path, which AA streaming replaces; drop -stream")
		}
		return experiments.RealFixup(model, ranks, steps, decomp, depth)
	case "threads":
		if stream != core.StreamTwoGrid {
			return nil, fmt.Errorf("threads sweeps the two-grid kernels; drop -stream")
		}
		return experiments.RealThreads(model, threads, steps, colSpec)
	case "balance":
		if stream != core.StreamTwoGrid {
			return nil, fmt.Errorf("balance sweeps cut policy and traversal on the two-grid kernels; drop -stream")
		}
		return experiments.RealBalance(model, ranks, threads, steps)
	}
	return nil, fmt.Errorf("-real supports fig8, fig9, fig10, fig11, collision, fixup, threads, balance (got %q)", exp)
}
