// Command lbmbench regenerates the paper's tables and figures.
//
// By default an experiment is produced at paper scale via the perfsim
// discrete-event simulator over the Blue Gene machine models; with -real
// the corresponding real-kernel experiment runs on the local machine
// instead (fig8, fig9, fig10, fig11 only).
//
// Examples:
//
//	lbmbench -exp table2
//	lbmbench -exp fig8 -machine bgq
//	lbmbench -exp fig8 -real -model d3q39
//	lbmbench -exp all
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbmbench: ")

	var (
		exp     = flag.String("exp", "all", "experiment: table1, table2, fig8, fig9, fig10, table3, table4, fig11, decomp, or all")
		machine = flag.String("machine", "bgp", "machine for fig8/fig9/fig11/decomp: bgp or bgq")
		real    = flag.Bool("real", false, "run the real kernels locally instead of the paper-scale simulator")
		model   = flag.String("model", "D3Q19", "model for -real experiments")
		ranks   = flag.Int("ranks", 4, "ranks for -real experiments")
		steps   = flag.Int("steps", 30, "steps for -real experiments")
		decomp  = flag.String("decomp", "1d", "decomposition for -real experiments: 1d, 2d, 3d or PxxPyxPz")
	)
	flag.Parse()

	if *real {
		tb, err := realExperiment(*exp, *model, *ranks, *steps, *decomp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tb.Render())
		return
	}

	var tables []*experiments.Table
	var err error
	if *exp == "all" {
		tables, err = experiments.GenerateAll()
	} else {
		tables, err = experiments.Generate(*exp, *machine)
	}
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
}

func realExperiment(exp, model string, ranks, steps int, decomp string) (*experiments.Table, error) {
	switch exp {
	case "fig8":
		return experiments.RealFig8(model, ranks, steps, decomp)
	case "fig9":
		return experiments.RealFig9(model, ranks, steps, decomp)
	case "fig10":
		return experiments.RealFig10(model, ranks, steps, decomp)
	case "fig11":
		return experiments.RealFig11(model, steps, decomp)
	}
	return nil, fmt.Errorf("-real supports fig8, fig9, fig10, fig11 (got %q)", exp)
}
