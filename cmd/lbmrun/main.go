// Command lbmrun executes one lattice Boltzmann simulation with the real
// kernels on the local machine and reports the paper's metrics: MFlup/s,
// wall time, per-rank communication balance and conservation checksums.
// The flow setup comes from the scenario registry (internal/scenario):
// wave, cavity, channel — plus voxel geometry files via -geom.
//
// Examples:
//
//	lbmrun -model d3q39 -nx 48 -ny 24 -nz 24 -steps 100 -ranks 4 -threads 2 -opt SIMD -depth 2
//	lbmrun -scenario cavity -nx 48 -ny 48 -nz 2 -re 100 -steps 8000 -decomp 2d -ranks 4
//	lbmrun -scenario cavity -nx 64 -ny 64 -nz 2 -re 1000 -collision trt -threads 4
//	lbmrun -scenario channel -d 16 -re 100 -ranks 2
//	lbmrun -scenario wave -geom mask.csv -steps 500
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/macro"
	"repro/internal/obs"
	"repro/internal/output"
	"repro/internal/perfsim"
	"repro/internal/scenario"
	"repro/internal/tune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbmrun: ")

	var (
		modelName = flag.String("model", "D3Q19", "velocity model: D3Q19 or D3Q39")
		nx        = flag.Int("nx", 64, "global lattice points in x (decomposed dimension)")
		ny        = flag.Int("ny", 32, "global lattice points in y")
		nz        = flag.Int("nz", 32, "global lattice points in z")
		steps     = flag.Int("steps", 100, "time steps")
		tau       = flag.Float64("tau", 0.8, "BGK relaxation time (> 0.5)")
		optName   = flag.String("opt", "SIMD", "optimization level: Orig, GC, DH, CF, LoBr, NB-C, GC-C, SIMD")
		ranks     = flag.Int("ranks", 1, "message-passing ranks")
		decompF   = flag.String("decomp", "1d", "domain decomposition: 1d (slab), 2d (pencil), 3d (block), or explicit PxxPyxPz (e.g. 2x2x2)")
		threads   = flag.Int("threads", 1, "worker threads per rank (0 = runtime.NumCPU()/ranks, floor 1)")
		depth     = flag.String("depth", "1", "ghost-cell depth: one value (exchange every depth steps) or per-axis dx,dy,dz (e.g. 2,1,1)")
		layout    = flag.String("layout", "soa", "memory layout: soa or aos")
		fused     = flag.Bool("fused", false, "fused stream-collide kernel (§VII future work; needs SoA and a GC level)")
		stream    = flag.String("stream", "twogrid", "streaming storage: twogrid (separate advected field) or aa (in-place AA pattern, half the f-memory; needs SoA and a GC level)")
		amplitude = flag.Float64("amplitude", 0.02, "initial perturbation amplitude")
		scen      = flag.String("scenario", "wave", scenario.Usage())
		re        = flag.Float64("re", 100, "Reynolds number (cavity: lidU*NY/nu; channel: Umean*D/nu)")
		lidU      = flag.Float64("lidu", 0.1, "cavity scenario: lid speed in lattice units")
		uMean     = flag.Float64("umean", 0.08, "channel scenario: mean inflow speed in lattice units")
		diam      = flag.Int("d", 16, "channel scenario: cylinder diameter in cells (sets the domain 22Dx4.1D; the Re=100 wake needs >= 16)")
		geomPath  = flag.String("geom", "", "voxel mask file (.csv or .raw): obstacles for wave, replaces the cylinder for channel")
		balanceF  = flag.String("balance", "volume", "cut-plane placement: volume (equal extents) or fluid (equal fluid cells per rank, needs a mask)")
		sparse    = flag.Bool("sparse", false, "sparse row-run traversal: kernels visit fluid z-runs only (needs a mask; wins on mostly-solid domains)")
		collide   = flag.String("collision", "bgk", "collision operator: bgk (the paper's kernels), trt or mrt (stable toward tau=0.5 / high Re)")
		magic     = flag.Float64("magic", 0, "TRT magic parameter Lambda (0 = the default 1/4)")
		mrtRates  = flag.String("mrt-rates", "", "MRT ghost-moment rates by order, comma-separated from order 3 (empty = magic-paired defaults)")
		auto      = flag.Bool("auto", false, "auto-tune the execution config: load a cached tuned config for this scenario/geometry/machine, or search the config space (pricing with -fit coefficients when given), then run with the winner — overrides -opt/-ranks/-decomp/-threads/-depth/-stream/-fused/-balance/-sparse")
		tunedF    = flag.String("tuned", "", "tuned-config cache file for -auto (default lbm-tuned-<key>.json; stale keys force a re-tune)")
		fitFlag   = flag.String("fit", "", "fitted coefficients file (lbm-fit/v1, from lbmbench -exp fit) for -auto candidate pricing")
		out       = flag.String("out", "", "write the final macroscopic fields to this file (.vtk or .csv)")
		observe   = flag.Bool("observe", false, "record the per-phase breakdown (step timers in every stepper path) and print it")
		reportF   = flag.String("report", "", "write a structured run report (JSON) to this file; implies -observe")
		traceF    = flag.String("trace", "", "write a Chrome trace-event timeline (JSON, open in chrome://tracing or Perfetto) to this file; implies -observe")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	flag.Parse()

	model, err := lattice.ByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := core.ParseOptLevel(*optName)
	if err != nil {
		log.Fatal(err)
	}
	lay := grid.SoA
	switch *layout {
	case "soa", "SoA":
	case "aos", "AoS":
		lay = grid.AoS
	default:
		log.Fatalf("unknown layout %q", *layout)
	}

	scheme, err := core.ParseStreamScheme(*stream)
	if err != nil {
		log.Fatal(err)
	}

	kind, err := collision.ParseKind(*collide)
	if err != nil {
		log.Fatal(err)
	}
	rates, err := collision.ParseRates(*mrtRates)
	if err != nil {
		log.Fatal(err)
	}
	// Pass the parameters through unconditionally: Spec.Validate rejects
	// e.g. -magic on bgk/mrt or -mrt-rates on bgk/trt with a real message
	// instead of silently ignoring the flag.
	colSpec := collision.Spec{Kind: kind, Magic: *magic, GhostRates: rates}
	if err := colSpec.Validate(); err != nil {
		log.Fatal(err)
	}

	n := grid.Dims{NX: *nx, NY: *ny, NZ: *nz}
	dec, err := decomp.ParseShape(*decompF, *ranks, [3]int{n.NX, n.NY, n.NZ})
	if err != nil {
		log.Fatal(err)
	}
	nthreads, err := core.ResolveThreads(*threads, *ranks)
	if err != nil {
		log.Fatal(err)
	}
	depthUniform, depthAxes, err := core.ParseGhostDepth(*depth)
	if err != nil {
		log.Fatal(err)
	}
	balance, err := core.ParseBalance(*balanceF)
	if err != nil {
		log.Fatal(err)
	}

	sc, err := scenario.Get(*scen)
	if err != nil {
		log.Fatal(err)
	}
	params := scenario.Params{
		Model: model, N: n, Amplitude: *amplitude,
		Re: *re, LidU: *lidU, UMean: *uMean, D: *diam,
		GeomPath: *geomPath,
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "steps":
			params.StepsSet = true
		case "collision":
			params.CollisionSet = true
		}
	})

	cfg := core.Config{
		Model: model, N: n, Tau: *tau, Steps: *steps,
		Opt: opt, Ranks: *ranks, Decomp: dec.P, Threads: nthreads,
		GhostDepth: depthUniform, GhostDepthAxes: depthAxes,
		Layout: lay, Fused: *fused, Collision: colSpec, Stream: scheme,
		Balance: balance, Sparse: *sparse,
		KeepField: *out != "",
		Observe:   *observe || *reportF != "" || *traceF != "",
		Trace:     *traceF != "",
	}
	if err := sc.Configure(&params, &cfg); err != nil {
		log.Fatal(err)
	}
	if *auto {
		if err := autoTune(&cfg, sc.Name, *tunedF, *fitFlag); err != nil {
			log.Fatal(err)
		}
	} else if *tunedF != "" || *fitFlag != "" {
		log.Fatal("-tuned/-fit apply to -auto runs only")
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}
	res, err := core.Run(cfg)
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		log.Fatal(err)
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	n = cfg.N // scenarios with intrinsic geometry override the domain
	fluid := core.FluidCells(n, cfg.Solid)
	fmt.Printf("model        %s (Q=%d, c_s^2=%.4f, k=%d)\n", model.Name, model.Q, model.CsSq, model.MaxSpeed)
	fmt.Printf("scenario     %s\n", sc.Name)
	fmt.Printf("domain       %s  (%d fluid cells)\n", n, fluid)
	fmt.Printf("config       opt=%s ranks=%d decomp=%dx%dx%d balance=%s sparse=%v threads=%d depth=%s layout=%s fused=%v stream=%s collision=%s tau=%.4f\n",
		cfg.Opt, cfg.Ranks, cfg.Decomp[0], cfg.Decomp[1], cfg.Decomp[2], cfg.Balance, cfg.Sparse, cfg.Threads, *depth, lay, cfg.Fused, cfg.Stream, cfg.Collision, cfg.Tau)
	fmt.Printf("steps        %d\n", cfg.Steps)
	if hb := res.HaloAxisBytes; hb != [3]int64{} {
		fmt.Printf("halo surface %.1f KB/rank/exchange (x %.1f, y %.1f, z %.1f)\n",
			float64(hb[0]+hb[1]+hb[2])/1024, float64(hb[0])/1024, float64(hb[1])/1024, float64(hb[2])/1024)
	}
	fmt.Printf("wall time    %v\n", res.WallTime)
	fmt.Printf("performance  %.2f MFlup/s\n", res.MFlups)
	fmt.Printf("ghost work   %d extra cell updates (%.2f%% of interior)\n",
		res.GhostUpdates, 100*float64(res.GhostUpdates)/float64(res.InteriorUpdates))
	s := res.CommSummary()
	fmt.Printf("comm (s)     min %.4f  median %.4f  max %.4f  mean %.4f\n", s.Min, s.Median, s.Max, s.Mean)
	fmt.Printf("mass         %.10f (per cell %.10f)\n", res.Mass, res.Mass/float64(fluid))
	fmt.Printf("momentum     (%.3e, %.3e, %.3e)\n", res.MomX, res.MomY, res.MomZ)

	var rep *obs.Report
	if cfg.Observe {
		rep = core.NewReport(&cfg, res)
		rep.Config.Scenario = sc.Name
		if fs := rep.FluidCells; fs != nil {
			imb := 1.0
			if fs.Min > 0 {
				imb = fs.Max / fs.Min
			}
			fmt.Printf("fluid/rank   min %.0f  median %.0f  max %.0f  (imbalance %.2fx)\n",
				fs.Min, fs.Median, fs.Max, imb)
		}
		if ws := rep.WorkerWeights; ws != nil {
			fmt.Printf("chunk weight min %.0f  median %.0f  max %.0f per worker (%d workers)\n",
				ws.Min, ws.Median, ws.Max, ws.N)
		}
		fmt.Println("phases (s/rank, spread across ranks)")
		for _, ps := range rep.Phases {
			name := ps.Phase
			if ps.Axis != obs.NoAxis {
				name = fmt.Sprintf("%s[%c]", ps.Phase, "xyz"[ps.Axis])
			}
			fmt.Printf("  %-11s min %.4f  median %.4f  max %.4f  mean %.4f  (%d spans)\n",
				name, ps.Seconds.Min, ps.Seconds.Median, ps.Seconds.Max, ps.Seconds.Mean, ps.Count)
		}
	}

	if math.IsNaN(res.Mass) {
		log.Println("simulation diverged (NaN mass): reduce amplitude or increase tau")
		os.Exit(1)
	}

	if sc.Report != nil {
		for _, line := range sc.Report(&params, &cfg, res) {
			fmt.Println(line)
		}
	}

	if *reportF != "" {
		f, err := os.Create(*reportF)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WriteReport(f, rep); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("report       written to %s\n", *reportF)
	}
	if *traceF != "" {
		f, err := os.Create(*traceF)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WriteTrace(f, res.Observations); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("trace        written to %s\n", *traceF)
	}

	if *out != "" {
		if err := writeFields(*out, model, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fields       written to %s\n", *out)
	}
}

// autoTune replaces the config's execution knobs with the auto-tuner's
// choice for this scenario: a cached tuned config if its key matches
// (same scenario, geometry, size, machine and worker budget), otherwise a
// fresh search — priced with fitted coefficients when a fit file is given
// — whose winner is cached for the next run.
func autoTune(cfg *core.Config, scenName, tunedPath, fitPath string) error {
	s := &tune.Scenario{
		Name: scenName, Model: cfg.Model, N: cfg.N, Tau: cfg.Tau,
		Boundary: cfg.Boundary, Solid: cfg.Solid,
		Accel: cfg.Accel, Init: cfg.Init,
	}
	workers := runtime.NumCPU()
	key := tune.CacheKey(s, workers)
	if tunedPath == "" {
		tunedPath = fmt.Sprintf("lbm-tuned-%s.json", key)
	}
	tn, err := tune.LoadCached(tunedPath, key)
	if err != nil {
		return err
	}
	if tn == nil {
		var coeffs *perfsim.Coeffs
		if fitPath != "" {
			fr, err := tune.LoadFit(fitPath)
			if err != nil {
				return err
			}
			coeffs = &fr.Coeffs
		}
		fmt.Printf("auto-tune    searching (no cached config at %s)...\n", tunedPath)
		tn, err = tune.Tune(s, coeffs, tune.Options{MaxWorkers: workers})
		if err != nil {
			return err
		}
		if err := tune.SaveTuned(tunedPath, tn); err != nil {
			return err
		}
		fmt.Printf("auto-tune    %d candidates priced, winner cached to %s\n", tn.Candidates, tunedPath)
	} else {
		fmt.Printf("auto-tune    cached config %s (key %s)\n", tunedPath, key)
	}
	return tn.Choice.Apply(cfg)
}

// writeFields exports the final macroscopic state in the format implied by
// the file extension.
func writeFields(path string, model *lattice.Model, res *core.Result) error {
	fields := macro.Compute(model, res.Field, [3]float64{})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".vtk"):
		return output.WriteVTK(f, "lbmrun", fields)
	case strings.HasSuffix(path, ".csv"):
		return output.WriteCSV(f, fields)
	}
	return fmt.Errorf("unknown output format %q (want .vtk or .csv)", path)
}
