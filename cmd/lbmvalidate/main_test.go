package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestQuickSuiteGolden pins the -quick -list output shape: the check
// names, their order and their tolerances are the regression surface a
// physics change must consciously update (go test ./cmd/lbmvalidate
// -update regenerates the file).
func TestQuickSuiteGolden(t *testing.T) {
	var buf bytes.Buffer
	writeList(&buf, suite(true))
	golden := filepath.Join("testdata", "quick_suite.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("quick suite shape changed.\n--- got ---\n%s--- want ---\n%s(run with -update to accept)", buf.String(), want)
	}
}

// TestFullSuiteExtendsQuick: the full suite must contain every quick
// check (same names, same order) plus the long-transient extras, so CI's
// quick run is a strict subset of the full validation.
func TestFullSuiteExtendsQuick(t *testing.T) {
	quick, full := suite(true), suite(false)
	if len(full) <= len(quick) {
		t.Fatalf("full suite (%d checks) not larger than quick (%d)", len(full), len(quick))
	}
	seen := make(map[string]bool, len(full))
	for _, c := range full {
		seen[c.name] = true
	}
	for _, c := range quick {
		if !seen[c.name] && c.name != "lid-driven cavity Re=100 centerlines vs Hou et al. (L=32)" {
			t.Errorf("quick check %q missing from the full suite", c.name)
		}
	}
	// The full suite must include the Re=400 long-transient check.
	if !seen["lid-driven cavity Re=400 centerlines vs Hou et al. (L=48)"] {
		t.Error("full suite lacks the Re=400 cavity check")
	}
}
