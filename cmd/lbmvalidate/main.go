// Command lbmvalidate runs the physics validation suite: lattice sanity
// (weights, isotropy order), viscosity from shear-wave and Taylor-Green
// decay, sound speeds, conservation — for both velocity models — and the
// bounded-domain scenarios: the body-force Poiseuille channel between
// global wall faces and the lid-driven cavity against the Hou et al.
// Re=100/400 reference centerlines. It exits non-zero if any check fails
// its tolerance.
//
// Flags: -quick shrinks domains and step counts for CI; -list prints the
// check list (names and tolerances) without running anything — the
// golden-file regression test pins that output shape.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/physics"
)

// check is one validation: run returns a non-negative measure (usually a
// relative error) that must not exceed tol.
type check struct {
	name string
	tol  float64
	run  func() (measure float64, err error)
}

// suite assembles the validation checks. The quick variant shrinks
// domains and step counts but keeps every check's identity, so the -list
// output shape is the regression surface.
func suite(quick bool) []check {
	steps := 80
	shearN := grid.Dims{NX: 32, NY: 6, NZ: 6}
	tgN := grid.Dims{NX: 24, NY: 24, NZ: 6}
	soundN := grid.Dims{NX: 48, NY: 6, NZ: 6}
	// The cavity's step count scales with L inside RunCavity (16
	// convective times), so quick mode shrinks only the resolution.
	cavityL := 48
	if quick {
		steps = 40
		shearN = grid.Dims{NX: 16, NY: 6, NZ: 6}
		tgN = grid.Dims{NX: 16, NY: 16, NZ: 6}
		soundN = grid.Dims{NX: 32, NY: 6, NZ: 6}
		cavityL = 32
	}

	var cs []check
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		m := m
		cs = append(cs, check{
			name: m.Name + " lattice consistency (weights, moments, symmetry)",
			tol:  0,
			run:  func() (float64, error) { return 0, m.Validate() },
		})
		wantOrder := 5
		if m.Order >= 3 {
			wantOrder = 7
		}
		cs = append(cs, check{
			name: fmt.Sprintf("%s isotropy through rank %d", m.Name, wantOrder),
			tol:  0.5,
			run: func() (float64, error) {
				if got := m.IsotropyOrder(wantOrder, 1e-12); got < wantOrder {
					return 1, nil
				}
				return 0, nil
			},
		})
		for _, tau := range []float64{0.7, 1.0} {
			tau := tau
			cs = append(cs, check{
				name: fmt.Sprintf("%s shear-wave viscosity (tau=%.1f)", m.Name, tau),
				tol:  0.05,
				run: func() (float64, error) {
					res, err := physics.ShearWaveViscosity(m, shearN, tau, steps, nil)
					if err != nil {
						return 0, err
					}
					return res.RelError, nil
				},
			})
		}
		cs = append(cs, check{
			name: m.Name + " Taylor-Green viscosity (tau=0.8)",
			tol:  0.07,
			run: func() (float64, error) {
				res, err := physics.TaylorGreenViscosity(m, tgN, 0.8, steps, nil)
				if err != nil {
					return 0, err
				}
				return res.RelError, nil
			},
		})
		cs = append(cs, check{
			name: m.Name + " sound speed",
			tol:  0.06,
			run: func() (float64, error) {
				res, err := physics.MeasureSoundSpeed(m, soundN, 0.8)
				if err != nil {
					return 0, err
				}
				return res.RelError, nil
			},
		})
		cs = append(cs, check{
			name: m.Name + " mass/momentum conservation (20 steps, 2 ranks)",
			tol:  1e-9,
			run:  func() (float64, error) { return conservation(m) },
		})
	}

	// Bounded-domain scenarios: the global-boundary wall path.
	cs = append(cs, check{
		name: "D3Q19 Poiseuille channel vs parabola (global walls, H=16)",
		tol:  0.02,
		run: func() (float64, error) {
			res, err := physics.PoiseuilleChannel(lattice.D3Q19(), 16, 1.0, 1e-6, 0, nil)
			if err != nil {
				return 0, err
			}
			return res.MaxRelErr, nil
		},
	})
	cs = append(cs, check{
		name: "D3Q39 Poiseuille channel vs parabola (global walls, H=18)",
		tol:  0.02,
		run: func() (float64, error) {
			res, err := physics.PoiseuilleChannel(lattice.D3Q39(), 18, 1.0, 1e-6, 0, nil)
			if err != nil {
				return 0, err
			}
			return res.MaxRelErr, nil
		},
	})
	cs = append(cs, check{
		name: fmt.Sprintf("lid-driven cavity Re=100 centerlines vs Hou et al. (L=%d)", cavityL),
		tol:  0.03,
		run:  func() (float64, error) { return cavityErr(100, cavityL, 0, collision.Spec{}) },
	})
	// Overlap schedule check: the per-axis GC-C overlap on the box stepper
	// (pencil shape, split and fused kernels) must agree with the slab
	// GC-C reference field to reassociation level.
	cs = append(cs, check{
		name: "overlap-box: pencil GC-C + fused vs slab GC-C (1e-12)",
		tol:  1e-12,
		run:  overlapBox,
	})
	// Collision-operator checks: TRT must reproduce the BGK viscosity
	// (the even/shear rate alone sets ν), for both lattices.
	cs = append(cs, check{
		name: "trt-viscosity: D3Q19+D3Q39 shear wave (tau=0.7, magic 1/4)",
		tol:  0.05,
		run: func() (float64, error) {
			worst := 0.0
			for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
				res, err := physics.ShearWaveViscosity(m, shearN, 0.7, steps, func(c *core.Config) {
					c.Collision = collision.Spec{Kind: collision.TRT}
				})
				if err != nil {
					return 0, err
				}
				worst = math.Max(worst, res.RelError)
			}
			return worst, nil
		},
	})
	// Cylinder-channel checks (the geometry subsystem end to end:
	// voxel mask, Zou-He inlet, pressure outlet, momentum-exchange
	// forces). Quick mode validates the steady 2D-1 drag at a coarser
	// cylinder; the full suite adds the vortex-shedding 2D-2 Strouhal.
	cylD := 10
	if quick {
		cylD = 8
	}
	cs = append(cs, check{
		name: "channel-cylinder: Re=20 steady drag vs Schaefer-Turek 2D-1",
		tol:  0.05,
		run:  func() (float64, error) { return cylinderSteadyErr(cylD) },
	})
	if !quick {
		cs = append(cs, check{
			name: "channel-cylinder: Re=100 Strouhal vs Schaefer-Turek 2D-2",
			tol:  0.05,
			run:  cylinderSheddingErr,
		})
		cs = append(cs, check{
			name: "lid-driven cavity Re=400 centerlines vs Hou et al. (L=48)",
			tol:  0.03,
			run:  func() (float64, error) { return cavityErr(400, 48, 16000, collision.Spec{}) },
		})
		// The workload the collision subsystem unlocks: Re=1000 needs TRT
		// (tau = 0.538 at L=64 diverges under BGK) and ~48 convective
		// times of spin-up.
		cs = append(cs, check{
			name: "cavity-re1000: TRT centerlines vs Ghia et al. (L=64)",
			tol:  0.03,
			run: func() (float64, error) {
				return cavityErr(1000, 64, 30720, collision.Spec{Kind: collision.TRT})
			},
		})
	}
	return cs
}

// cylinderSteadyErr runs the Schäfer-Turek 2D-1 case (Re = 20, steady)
// and returns the drag coefficient's relative deviation from the
// reference interval midpoint; a detected shedding frequency in the
// steady regime is an error.
func cylinderSteadyErr(d int) (float64, error) {
	res, err := physics.RunCylinderChannel(physics.CylinderChannelConfig{
		D: d, Re: 20, UMean: 0.08,
		Collision: collision.Spec{Kind: collision.TRT},
		Threads:   4,
	})
	if err != nil {
		return 0, err
	}
	if res.St != 0 {
		return 0, fmt.Errorf("steady Re=20 wake reported shedding (St = %.3f)", res.St)
	}
	ref, _ := physics.CylinderRefFor(20)
	mid := (ref.CdLo + ref.CdHi) / 2
	return math.Abs(res.Cd-mid) / mid, nil
}

// cylinderSheddingErr runs the 2D-2 vortex-shedding case (Re = 100) and
// returns the Strouhal number's relative deviation from the reference
// midpoint; no established shedding, or a maximum drag coefficient
// outside 10% of the reference, is an error.
func cylinderSheddingErr() (float64, error) {
	res, err := physics.RunCylinderChannel(physics.CylinderChannelConfig{
		D: 16, Re: 100, UMean: 0.08,
		Collision: collision.Spec{Kind: collision.TRT},
		Threads:   4,
	})
	if err != nil {
		return 0, err
	}
	if res.St == 0 || res.Periods < 3 {
		return 0, fmt.Errorf("no vortex shedding detected at Re=100 (|Cl|max = %.4f)", res.ClMax)
	}
	ref, _ := physics.CylinderRefFor(100)
	cdMid := (ref.CdLo + ref.CdHi) / 2
	if d := math.Abs(res.CdMax-cdMid) / cdMid; d > 0.10 {
		return 0, fmt.Errorf("max drag coefficient %.3f deviates %.1f%% from the reference %.2f (tol 10%%)", res.CdMax, 100*d, cdMid)
	}
	// With the outlet sponge in place (the default), the drag envelope must
	// be flat: reflected pressure waves previously modulated the per-period
	// Cd maxima well above this bound.
	if res.Periods >= 3 && res.CdRipple > 0.002 {
		return 0, fmt.Errorf("drag envelope ripple %.3f%% exceeds 0.2%% — outlet reflection is back", 100*res.CdRipple)
	}
	stMid := (ref.StLo + ref.StHi) / 2
	return math.Abs(res.St-stMid) / stMid, nil
}

// cavityErr runs a cavity and returns the worst centerline deviation from
// the tabulated reference, in lid units.
func cavityErr(re, l, steps int, spec collision.Spec) (float64, error) {
	res, err := physics.RunCavity(physics.CavityConfig{
		L: l, Re: float64(re), Steps: steps, Collision: spec, Threads: 4,
	})
	if err != nil {
		return 0, err
	}
	errU, errV, err := res.CompareCavity(re)
	if err != nil {
		return 0, err
	}
	return math.Max(errU, errV), nil
}

// overlapBox runs one problem three ways — slab GC-C (the paper's
// overlapped schedule), box GC-C on a 2-D pencil (the per-axis phased
// schedule) and the fused kernel on the same pencil — and returns the
// worst field deviation from the slab reference.
func overlapBox() (float64, error) {
	n := grid.Dims{NX: 24, NY: 16, NZ: 16}
	init := func(ix, iy, iz int) (rho, ux, uy, uz float64) {
		x := 2 * math.Pi * float64(ix) / float64(n.NX)
		y := 2 * math.Pi * float64(iy) / float64(n.NY)
		return 1 + 0.03*math.Sin(x)*math.Cos(y), 0.01 * math.Sin(y), -0.01 * math.Cos(x), 0
	}
	base := core.Config{
		Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 12,
		Opt: core.OptGCC, Ranks: 4, Threads: 2, GhostDepth: 2,
		Init: init, KeepField: true,
	}
	slab := base
	slab.Decomp = [3]int{4, 1, 1}
	ref, err := core.Run(slab)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, fused := range []bool{false, true} {
		cfg := base
		cfg.Decomp = [3]int{2, 2, 1}
		cfg.Fused = fused
		res, err := core.Run(cfg)
		if err != nil {
			return 0, err
		}
		worst = math.Max(worst, grid.MaxAbsDiff(ref.Field, res.Field))
	}
	return worst, nil
}

// conservation measures the relative drift of total mass over a short run.
func conservation(m *lattice.Model) (float64, error) {
	n := grid.Dims{NX: 12, NY: 6, NZ: 6}
	init := func(ix, iy, iz int) (rho, ux, uy, uz float64) {
		x := 2 * math.Pi * float64(ix) / float64(n.NX)
		return 1 + 0.03*math.Sin(x), 0.01 * math.Cos(x), 0, 0
	}
	var mass0 float64
	for ix := 0; ix < n.NX; ix++ {
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				rho, _, _, _ := init(ix, iy, iz)
				mass0 += rho
			}
		}
	}
	res, err := core.Run(core.Config{
		Model: m, N: n, Tau: 0.8, Steps: 20,
		Opt: core.OptSIMD, Ranks: 2, Threads: 1, GhostDepth: 1, Init: init,
	})
	if err != nil {
		return 0, err
	}
	return math.Abs(res.Mass-mass0) / mass0, nil
}

// writeList prints the check list: one "name  tol" line per check. This
// is the -list output the golden-file test pins.
func writeList(w io.Writer, cs []check) {
	for _, c := range cs {
		fmt.Fprintf(w, "%-62s tol %g\n", c.name, c.tol)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbmvalidate: ")
	quick := flag.Bool("quick", false, "smaller domains and fewer steps")
	list := flag.Bool("list", false, "print the check list without running")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the suite to this file")
	memProf := flag.String("memprofile", "", "write a heap profile (post-run) to this file")
	flag.Parse()

	cs := suite(*quick)
	if *list {
		writeList(os.Stdout, cs)
		return
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}

	failures := 0
	for _, c := range cs {
		measure, err := c.run()
		var status string
		switch {
		case err != nil:
			status = "ERROR: " + err.Error()
			failures++
		case measure > c.tol:
			status = fmt.Sprintf("FAIL (err %.2f%% > %.2f%%)", 100*measure, 100*c.tol)
			failures++
		default:
			status = fmt.Sprintf("ok   (err %.2f%%)", 100*measure)
		}
		fmt.Printf("%-62s %s\n", c.name, status)
	}

	// Flush the profiles before the failure exit: os.Exit skips defers, and
	// a failing suite is exactly when the profile is wanted.
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}

	fmt.Printf("\nKnudsen regimes: Kn=0.01 -> %s (%s), Kn=0.5 -> %s (%s)\n",
		physics.ClassifyKnudsen(0.01), physics.ModelForKnudsen(0.01).Name,
		physics.ClassifyKnudsen(0.5), physics.ModelForKnudsen(0.5).Name)

	if failures > 0 {
		fmt.Printf("\n%d validation(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall validations passed")
}
