// Command lbmvalidate runs the physics validation suite: lattice sanity
// (weights, isotropy order), viscosity from shear-wave and Taylor-Green
// decay, sound speeds, and conservation — for both velocity models.
// It exits non-zero if any check fails its tolerance.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/physics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbmvalidate: ")
	quick := flag.Bool("quick", false, "smaller domains and fewer steps")
	flag.Parse()

	failures := 0
	check := func(name string, err error, relErr, tol float64) {
		status := "ok"
		if err != nil {
			status = "ERROR: " + err.Error()
			failures++
		} else if relErr > tol {
			status = fmt.Sprintf("FAIL (err %.2f%% > %.2f%%)", 100*relErr, 100*tol)
			failures++
		} else {
			status = fmt.Sprintf("ok   (err %.2f%%)", 100*relErr)
		}
		fmt.Printf("%-52s %s\n", name, status)
	}

	steps := 80
	shearN := grid.Dims{NX: 32, NY: 6, NZ: 6}
	tgN := grid.Dims{NX: 24, NY: 24, NZ: 6}
	soundN := grid.Dims{NX: 48, NY: 6, NZ: 6}
	if *quick {
		steps = 40
		shearN = grid.Dims{NX: 16, NY: 6, NZ: 6}
		tgN = grid.Dims{NX: 16, NY: 16, NZ: 6}
		soundN = grid.Dims{NX: 32, NY: 6, NZ: 6}
	}

	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		fmt.Printf("=== %s ===\n", m.Name)
		if err := m.Validate(); err != nil {
			check("lattice consistency", err, 0, 1)
		} else {
			check("lattice consistency (weights, moments, symmetry)", nil, 0, 1)
		}
		wantOrder := 5
		if m.Order >= 3 {
			wantOrder = 7
		}
		orderErr := 0.0
		if got := m.IsotropyOrder(wantOrder, 1e-12); got < wantOrder {
			orderErr = 1
		}
		check(fmt.Sprintf("isotropy through rank %d", wantOrder), nil, orderErr, 0.5)

		for _, tau := range []float64{0.7, 1.0} {
			res, err := physics.ShearWaveViscosity(m, shearN, tau, steps, nil)
			relErr := 0.0
			if err == nil {
				relErr = res.RelError
			}
			check(fmt.Sprintf("shear-wave viscosity (tau=%.1f)", tau), err, relErr, 0.05)
		}
		tg, err := physics.TaylorGreenViscosity(m, tgN, 0.8, steps)
		relErr := 0.0
		if err == nil {
			relErr = tg.RelError
		}
		check("Taylor-Green viscosity (tau=0.8)", err, relErr, 0.07)

		ss, err := physics.MeasureSoundSpeed(m, soundN, 0.8)
		relErr = 0.0
		if err == nil {
			relErr = ss.RelError
		}
		check("sound speed", err, relErr, 0.06)

		consErr, err := conservation(m)
		check("mass/momentum conservation (20 steps, 2 ranks)", err, consErr, 1e-9)
	}

	fmt.Printf("\nKnudsen regimes: Kn=0.01 -> %s (%s), Kn=0.5 -> %s (%s)\n",
		physics.ClassifyKnudsen(0.01), physics.ModelForKnudsen(0.01).Name,
		physics.ClassifyKnudsen(0.5), physics.ModelForKnudsen(0.5).Name)

	if failures > 0 {
		fmt.Printf("\n%d validation(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall validations passed")
}

// conservation measures the relative drift of total mass over a short run.
func conservation(m *lattice.Model) (float64, error) {
	n := grid.Dims{NX: 12, NY: 6, NZ: 6}
	init := func(ix, iy, iz int) (rho, ux, uy, uz float64) {
		x := 2 * math.Pi * float64(ix) / float64(n.NX)
		return 1 + 0.03*math.Sin(x), 0.01 * math.Cos(x), 0, 0
	}
	var mass0 float64
	for ix := 0; ix < n.NX; ix++ {
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				rho, _, _, _ := init(ix, iy, iz)
				mass0 += rho
			}
		}
	}
	res, err := core.Run(core.Config{
		Model: m, N: n, Tau: 0.8, Steps: 20,
		Opt: core.OptSIMD, Ranks: 2, Threads: 1, GhostDepth: 1, Init: init,
	})
	if err != nil {
		return 0, err
	}
	return math.Abs(res.Mass-mass0) / mass0, nil
}
