// Hybrid: the tasks×threads study of the paper's Fig. 11, live on the
// local machine, plus the paper-scale projection on the Blue Gene models.
// At a fixed worker budget, more threads per rank mean fewer domains and
// therefore fewer ghost cells — the effect that made the 4-thread hybrid
// beat virtual-node mode for the D3Q39 model.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro"
)

func main() {
	log.SetFlags(0)

	model := repro.D3Q39()
	n := repro.Dims{NX: 48, NY: 16, NZ: 16}
	fmt.Printf("Local hybrid sweep: %s on %s (GOMAXPROCS=%d)\n\n", model.Name, n, runtime.GOMAXPROCS(0))
	fmt.Printf("%-14s %-12s %-10s %-14s\n", "ranks-threads", "time (ms)", "MFlup/s", "ghost overhead")
	for _, c := range [][2]int{{1, 1}, {1, 2}, {1, 4}, {2, 1}, {2, 2}, {4, 1}} {
		res, err := repro.Run(repro.Config{
			Model: model, N: n, Tau: 0.9, Steps: 40,
			Opt: repro.OptSIMD, Ranks: c[0], Threads: c[1], GhostDepth: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d-%-12d %-12.1f %-10.2f %.2f%%\n",
			c[0], c[1], 1e3*res.WallTime.Seconds(), res.MFlups,
			100*float64(res.GhostUpdates)/float64(res.InteriorUpdates))
	}

	// Paper-scale projection: 32 BG/P nodes, D3Q39, best ghost depth per
	// configuration (the setting of Fig. 11a).
	fmt.Println("\nPaper-scale projection (32 BG/P nodes, D3Q39, best depth 1-4):")
	fmt.Printf("%-14s %-12s\n", "tasks-threads", "time (s)")
	for _, c := range [][2]int{{1, 1}, {1, 2}, {1, 3}, {1, 4}, {4, 1}} {
		best := 0.0
		for depth := 1; depth <= 4; depth++ {
			res, err := repro.SimulateCluster(repro.ClusterJob{
				Machine: repro.BGP(), Spec: repro.KernelSpec{Name: "D3Q39", Q: 39, BytesPerCell: 936, FlopsPerCell: 190},
				K:     3,
				Nodes: 32, TasksPerNode: c[0], ThreadsPerTask: c[1],
				NX: 32 * 4 * 200, NY: 32, NZ: 32,
				Steps: 100, Depth: depth, Opt: repro.OptSIMD,
				Imbalance: 0.1, Seed: 3,
			})
			if err != nil {
				log.Fatal(err)
			}
			if best == 0 || res.Seconds < best {
				best = res.Seconds
			}
		}
		label := "hybrid"
		if c[0] == 4 {
			label = "virtual node"
		}
		fmt.Printf("%d-%-12d %-12.2f (%s)\n", c[0], c[1], best, label)
	}
	fmt.Println("\nPaper finding: for D3Q39 the 4-thread hybrid outperforms virtual-node")
	fmt.Println("mode because it quarters the number of domains and hence ghost cells.")
}
