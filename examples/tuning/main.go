// Tuning: the closed calibration loop end to end (DESIGN.md §12). The
// demo observes the 12-point calibration sweep with the real solver,
// fits perfsim's machine coefficients to the observed phase vectors
// (reporting the fitted error next to the old one-point-anchored
// baseline), then hands the fitted model to the auto-tuner on a small
// arterial scenario: every runnable candidate is priced in simulation,
// the predicted top-k are confirmed with short real runs, and the
// measured winner is applied to a longer run against the default
// configuration. `lbmbench -exp fit|tune|bench` and `lbmrun -auto` are
// the production wiring of exactly these calls.
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/tune"
)

func main() {
	log.SetFlags(0)

	// Observe: run the calibration sweep (thread ladder, blocking and
	// overlapped exchange rungs, kernel holdouts) with per-phase timers.
	fmt.Println("collecting calibration sweep (real runs, instrumented)...")
	sw, err := tune.Collect("D3Q19", 6)
	if err != nil {
		log.Fatal(err)
	}

	// Fit: deterministic coefficient search against the observed phases.
	fit, err := tune.Fit(sw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfit (%d model evaluations):\n", fit.Evals)
	fmt.Printf("  mem BW %.2f GB/s  copy BW %.2f GB/s  link BW %.1f MB/s\n",
		fit.Coeffs.MemBW/1e9, fit.Coeffs.CopyBW/1e9, fit.Coeffs.LinkBW/1e6)
	fmt.Printf("  latency %.0f µs  msg SW %.0f µs  serial frac %.4f\n",
		fit.Coeffs.Latency*1e6, fit.Coeffs.MsgSW*1e6, fit.Coeffs.ThreadSerialFrac)
	fmt.Printf("  per-phase MAPE: fitted %.1f%%  vs one-point anchor %.1f%%\n",
		100*fit.FittedMAPE, 100*fit.AnchoredMAPE)

	// Tune: price the whole candidate space with the fitted model on the
	// bifurcation vessel, confirm the predicted top-3 with real runs.
	d := grid.Dims{NX: 48, NY: 24, NZ: 24}
	s := &tune.Scenario{
		Name:  "example-bifurcation",
		Model: lattice.D3Q19(),
		N:     d,
		Tau:   0.8,
		Solid: geom.Bifurcation(d, 0.1*float64(d.NY)),
	}
	workers := runtime.NumCPU()
	tn, err := tune.Tune(s, &fit.Coeffs, tune.Options{MaxWorkers: workers, ConfirmSteps: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntuner: %d candidates priced, top %d confirmed (cache key %s)\n",
		tn.Candidates, len(tn.TopK), tn.Key)
	for _, r := range tn.TopK {
		fmt.Printf("  predicted %8.1f ms  measured %8.1f ms  %v\n",
			1e3*r.PredictedSeconds, 1e3*r.MeasuredSeconds, r.Candidate)
	}

	// Apply: the winning candidate is just execution knobs — the same
	// physics config runs tuned and default.
	run := func(c tune.Candidate) float64 {
		cfg := core.Config{Model: s.Model, N: s.N, Tau: s.Tau, Steps: 40, Solid: s.Solid}
		if err := c.Apply(&cfg); err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res.MFlups
	}
	def := run(tune.DefaultCandidate())
	won := run(tn.Choice)
	fmt.Printf("\n40-step runs: default %.2f MFlup/s → tuned %.2f MFlup/s (%.2fx)\n",
		def, won, won/def)
}
