// Scaling: the deep-halo trade-off of the paper's Fig. 10, live on the
// local machine, plus the slab/pencil/block decomposition crossover the
// Cartesian rank grid unlocks. Sweeps ghost-cell depth for several
// domain sizes over message-passing ranks with injected per-step load
// imbalance, then compares measured per-rank communication volume across
// decomposition shapes at fixed rank count.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)
	deepHaloSweep()
	decompositionCrossover()
	threadSweep()
}

// threadSweep scales worker threads inside one rank: the persistent
// pool's chunk queue partitions each box along its longest axis, so both
// the split BGK path and the generic TRT operator path ride the whole
// team. The sweep tops out at runtime.NumCPU() (ResolveThreads(0, 1)).
func threadSweep() {
	model := repro.D3Q19()
	n := repro.Dims{NX: 48, NY: 32, NZ: 32}
	maxT, err := repro.ResolveThreads(0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIn-rank thread sweep: %s, %s, 1 rank, up to %d threads\n\n", model.Name, n, maxT)
	fmt.Printf("%-8s %-12s %-12s %-10s\n", "threads", "bgk MFlup/s", "trt MFlup/s", "op gap")
	for t := 1; t <= maxT; t *= 2 {
		var rates [2]float64
		for i, spec := range []repro.CollisionSpec{{}, {Kind: repro.CollisionTRT}} {
			res, err := repro.Run(repro.Config{
				Model: model, N: n, Tau: 0.7, Steps: 40,
				Opt: repro.OptSIMD, Ranks: 1, Threads: t, GhostDepth: 1,
				Collision: spec,
				Init: func(ix, iy, iz int) (rho, ux, uy, uz float64) {
					return 1 + 0.02*math.Sin(2*math.Pi*float64(ix)/float64(n.NX)), 0, 0, 0
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			rates[i] = res.MFlups
		}
		fmt.Printf("%-8d %-12.2f %-12.2f %.2fx\n", t, rates[0], rates[1], rates[0]/rates[1])
	}
	fmt.Println("\nAll workers drain one chunk queue, so thin rim slabs and full boxes")
	fmt.Println("alike use the whole team; the z-run-blocked operator kernel keeps the")
	fmt.Println("TRT gap near 1x at every thread count.")
}

// decompositionCrossover runs the same problem under 1-D, 2-D and 3-D
// rank grids and reports measured per-rank message traffic: the slab's
// surface is a full NY×NZ face pair regardless of rank count, while the
// block's per-axis faces shrink with the subdomain cross-sections. Each
// shape runs at three rungs — NB-C, the per-axis GC-C overlap and the
// fused kernel on the GC-C schedule — now that the overlap and fused
// paths compose with every decomposition instead of being slab-only.
func decompositionCrossover() {
	const ranks = 8
	model := repro.D3Q19()
	n := repro.Dims{NX: 32, NY: 32, NZ: 32}
	fmt.Printf("Decomposition crossover: %s, %s, %d ranks, measured traffic\n\n", model.Name, n, ranks)
	fmt.Printf("%-8s %-8s %-8s %-14s %-14s %-10s\n", "shape", "grid", "opt", "sent/rank (KB)", "msgs/rank", "MFlup/s")
	opts := []struct {
		label string
		opt   repro.OptLevel
		fused bool
	}{
		{"NB-C", repro.OptNBC, false},
		{"GC-C", repro.OptGCC, false},
		{"Fused", repro.OptGCC, true},
	}
	for _, spec := range []string{"1d", "2d", "3d"} {
		shape, err := repro.ParseDecomp(spec, ranks, n)
		if err != nil {
			log.Fatal(err)
		}
		for _, o := range opts {
			res, err := repro.Run(repro.Config{
				Model: model, N: n, Tau: 0.8, Steps: 40,
				Opt: o.opt, Ranks: ranks, Decomp: shape, Threads: 1, GhostDepth: 1,
				Fused: o.fused,
				Init: func(ix, iy, iz int) (rho, ux, uy, uz float64) {
					return 1 + 0.02*math.Sin(2*math.Pi*float64(ix)/float64(n.NX)), 0, 0, 0
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			var maxBytes, maxMsgs int64
			for _, pr := range res.PerRank {
				if pr.BytesSent > maxBytes {
					maxBytes = pr.BytesSent
				}
				if pr.Messages > maxMsgs {
					maxMsgs = pr.Messages
				}
			}
			fmt.Printf("%-8s %dx%dx%-4d %-8s %-14.1f %-14d %-10.2f\n",
				spec, shape[0], shape[1], shape[2], o.label, float64(maxBytes)/1024, maxMsgs, res.MFlups)
		}
	}
	fmt.Println("\nThe 3-D block trades more, smaller messages for less total surface;")
	fmt.Println("past ~8 ranks its per-rank traffic drops below the slab's fixed faces.")
	fmt.Println("GC-C hides each axis's messages behind interior/rim compute, and the")
	fmt.Println("fused kernel halves the kernel traffic — on every shape.")
}

func deepHaloSweep() {

	const ranks = 4
	model := repro.D3Q19()
	fmt.Printf("Deep-halo sweep: %s, %d ranks, 1 thread, injected jitter 1ms/step\n\n", model.Name, ranks)
	fmt.Printf("%-14s %-10s %-10s %-12s %-22s\n", "domain", "depth", "MFlup/s", "t/t(GC=1)", "comm min/med/max (ms)")

	for _, nxPerRank := range []int{8, 32, 96} {
		n := repro.Dims{NX: ranks * nxPerRank, NY: 16, NZ: 16}
		var base float64
		for depth := 1; depth <= 4; depth++ {
			if nxPerRank < depth*model.MaxSpeed {
				continue
			}
			res, err := repro.Run(repro.Config{
				Model: model, N: n, Tau: 0.8, Steps: 60,
				Opt: repro.OptSIMD, Ranks: ranks, Threads: 1, GhostDepth: depth,
				StepJitter: time.Millisecond,
				Init: func(ix, iy, iz int) (rho, ux, uy, uz float64) {
					return 1 + 0.02*math.Sin(2*math.Pi*float64(ix)/float64(n.NX)), 0, 0, 0
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			secs := res.WallTime.Seconds()
			if depth == 1 {
				base = secs
			}
			s := res.CommSummary()
			fmt.Printf("%-14s GC=%-7d %-10.2f %-12.3f %.1f / %.1f / %.1f\n",
				n, depth, res.MFlups, secs/base, 1e3*s.Min, 1e3*s.Median, 1e3*s.Max)
		}
		fmt.Println()
	}
	fmt.Println("Deeper halos trade extra ghost-cell computation for fewer messages;")
	fmt.Println("they pay off once the per-rank domain is large enough (paper Fig. 10).")
}
