// Scaling: the deep-halo trade-off of the paper's Fig. 10, live on the
// local machine. Sweeps ghost-cell depth for several domain sizes over
// message-passing ranks with injected per-step load imbalance, reporting
// runtime (normalized to depth 1) and the per-rank communication balance
// of Fig. 9.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)

	const ranks = 4
	model := repro.D3Q19()
	fmt.Printf("Deep-halo sweep: %s, %d ranks, 1 thread, injected jitter 1ms/step\n\n", model.Name, ranks)
	fmt.Printf("%-14s %-10s %-10s %-12s %-22s\n", "domain", "depth", "MFlup/s", "t/t(GC=1)", "comm min/med/max (ms)")

	for _, nxPerRank := range []int{8, 32, 96} {
		n := repro.Dims{NX: ranks * nxPerRank, NY: 16, NZ: 16}
		var base float64
		for depth := 1; depth <= 4; depth++ {
			if nxPerRank < depth*model.MaxSpeed {
				continue
			}
			res, err := repro.Run(repro.Config{
				Model: model, N: n, Tau: 0.8, Steps: 60,
				Opt: repro.OptSIMD, Ranks: ranks, Threads: 1, GhostDepth: depth,
				StepJitter: time.Millisecond,
				Init: func(ix, iy, iz int) (rho, ux, uy, uz float64) {
					return 1 + 0.02*math.Sin(2*math.Pi*float64(ix)/float64(n.NX)), 0, 0, 0
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			secs := res.WallTime.Seconds()
			if depth == 1 {
				base = secs
			}
			s := res.CommSummary()
			fmt.Printf("%-14s GC=%-7d %-10.2f %-12.3f %.1f / %.1f / %.1f\n",
				n, depth, res.MFlups, secs/base, 1e3*s.Min, 1e3*s.Median, 1e3*s.Max)
		}
		fmt.Println()
	}
	fmt.Println("Deeper halos trade extra ghost-cell computation for fewer messages;")
	fmt.Println("they pay off once the per-rank domain is large enough (paper Fig. 10).")
}
