// Channel: a body-force-driven channel flow with solid walls and a plate
// obstacle — the irregular-geometry use case (microfluidic devices,
// arterial flow) that motivates the paper's application. Demonstrates the
// obstacle mask with halfway bounce-back, velocity-shift forcing, and the
// MFlup/s metric counting only fluid cells (the paper's N_fl).
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro"
)

func main() {
	log.SetFlags(0)

	model := repro.D3Q19()
	n := repro.Dims{NX: 48, NY: 24, NZ: 11}
	tau := 1.0
	accel := 2e-6

	// Channel walls at z extremes plus a plate partly blocking the duct.
	solid := func(ix, iy, iz int) bool {
		if iz == 0 || iz == n.NZ-1 {
			return true
		}
		return ix == n.NX/3 && iy < n.NY/2
	}

	res, err := repro.Run(repro.Config{
		Model: model, N: n, Tau: tau, Steps: 3000,
		Opt: repro.OptSIMD, Ranks: 2, Threads: 2, GhostDepth: 1,
		Solid: solid, Accel: [3]float64{accel, 0, 0},
		KeepField: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Channel with plate: %s on %s, tau=%.1f, a=%.1e\n", model.Name, n, tau, accel)
	fmt.Printf("  %.2f MFlup/s over %d fluid cells (solids excluded from N_fl)\n\n",
		res.MFlups, res.InteriorUpdates/3000)

	// Velocity magnitude map at mid-height, rendered as ASCII.
	fc := make([]float64, model.Q)
	var umax float64
	u := make([][]float64, n.NX)
	for ix := 0; ix < n.NX; ix++ {
		u[ix] = make([]float64, n.NY)
		for iy := 0; iy < n.NY; iy++ {
			if solid(ix, iy, n.NZ/2) {
				u[ix][iy] = -1
				continue
			}
			res.Field.Cell(ix, iy, n.NZ/2, fc)
			rho, jx, jy, jz := model.Moments(fc)
			ux, uy, uz := jx/rho+accel/2, jy/rho, jz/rho
			u[ix][iy] = math.Sqrt(ux*ux + uy*uy + uz*uz)
			if u[ix][iy] > umax {
				umax = u[ix][iy]
			}
		}
	}
	shades := " .:-=+*#%@"
	fmt.Println("  |u| at mid-height (X solid, flow left to right, periodic):")
	for iy := n.NY - 1; iy >= 0; iy-- {
		var b strings.Builder
		b.WriteString("  ")
		for ix := 0; ix < n.NX; ix++ {
			if u[ix][iy] < 0 {
				b.WriteByte('X')
				continue
			}
			lvl := int(u[ix][iy] / umax * float64(len(shades)-1))
			b.WriteByte(shades[lvl])
		}
		fmt.Println(b.String())
	}
	fmt.Printf("\n  peak |u| = %.5f (lattice units); mass/cell = %.9f\n",
		umax, res.Mass/float64(res.InteriorUpdates/3000))
	fmt.Println("  The flow accelerates through the open half of the duct and")
	fmt.Println("  recovers downstream — the clogging-device scenario of §I.")
}
