// Channel: vortex shedding past a voxelized cylinder — the geometry
// subsystem end to end. A parabolic Zou-He velocity inlet drives flow
// down a walled channel (the Schäfer-Turek benchmark geometry), the flow
// separates around a voxel-mask cylinder, and the wake rolls up into the
// Kármán vortex street; the momentum-exchange force series on the
// cylinder yields the drag/lift coefficients and the Strouhal number that
// the paper-scale references pin. The run uses a 2-rank slab
// decomposition so the obstacle's fixup links straddle a rank boundary.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro/internal/collision"
	"repro/internal/physics"
)

func main() {
	log.SetFlags(0)

	const (
		d  = 16  // cylinder diameter in cells (D=16 resolves the Re=100 wake)
		re = 100 // vortex-shedding regime (2D-2 benchmark)
	)
	res, err := physics.RunCylinderChannel(physics.CylinderChannelConfig{
		D: d, Re: re,
		Collision: collision.Spec{Kind: collision.TRT},
		Ranks:     2, Decomp: [3]int{2, 1, 1}, Threads: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cylinder channel: %v (D=%d, Re=%d, tau=%.4f), %d steps on a 2-rank slab\n",
		res.N, d, re, res.Tau, res.Steps)
	fmt.Printf("  %.2f MFlup/s over %d fluid cells (solids excluded from N_fl)\n\n",
		res.Res.MFlups, res.Res.InteriorUpdates/int64(res.Steps))

	// The lift trace over the last shedding periods, rendered as a strip.
	fmt.Println("  lift coefficient (each row ~40 steps; the oscillation IS the vortex street):")
	stride := 40
	for s := res.Steps - 18*stride; s < res.Steps; s += stride {
		cl := res.Lift[s]
		pos := int((cl + 1.2) / 2.4 * 48)
		if pos < 0 {
			pos = 0
		}
		if pos > 47 {
			pos = 47
		}
		line := []byte(strings.Repeat(" ", 48))
		line[24] = '|'
		line[pos] = '*'
		fmt.Printf("  step %6d %s cL=%+.3f\n", s, line, cl)
	}

	fmt.Printf("\n  mean Cd %.3f (max %.3f), max |Cl| %.3f, St %.4f over %d periods\n",
		res.Cd, res.CdMax, res.ClMax, res.St, res.Periods)
	if ref, ok := physics.CylinderRefFor(re); ok {
		fmt.Printf("  Schaefer-Turek 2D-2 references: Cd(max) in [%.2f, %.2f], St in [%.3f, %.3f]\n",
			ref.CdLo, ref.CdHi, ref.StLo, ref.StHi)
		if ref.StLo > 0 && res.St > 0 {
			mid := (ref.StLo + ref.StHi) / 2
			fmt.Printf("  St deviation from the reference midpoint: %.1f%%\n", 100*math.Abs(res.St-mid)/mid)
		}
	}
	fmt.Println("\n  The cylinder sheds opposite-signed vortices at a single frequency —")
	fmt.Println("  the lift oscillation above — while the drag oscillates at twice it:")
	fmt.Println("  the classic Karman-street signature, measured entirely through the")
	fmt.Println("  momentum-exchange links of the voxel mask.")
}
