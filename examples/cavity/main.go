// Cavity: the lid-driven cavity of Hou et al. — the first bounded
// scenario. All six global faces are real boundaries or periodic wraps
// (no lattice cells are spent on walls): x and y are no-slip walls, the
// high-y lid slides along +x, and z stays periodic. The run uses a 2-D
// pencil decomposition to show bounded axes and halo exchange composing:
// interior rank faces exchange, global faces bounce back. At the end the
// centerline profiles are compared against the Re=100 reference data the
// paper's validation (Hou et al. / Ghia, Ghia & Shin) tabulates.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro/internal/collision"
	"repro/internal/lattice"
	"repro/internal/physics"
)

func main() {
	log.SetFlags(0)

	const (
		L  = 48
		re = 100
	)
	res, err := physics.RunCavity(physics.CavityConfig{
		L: L, Re: re,
		Ranks: 4, Decomp: [3]int{2, 2, 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lid-driven cavity: %d x %d, Re=%d, tau=%.4f, %d steps on a 2x2x1 pencil grid\n",
		L, L, re, res.Tau, res.Steps)
	fmt.Printf("  %.2f MFlup/s; cavity mass %.6f per cell (bounce-back leaks nothing)\n\n",
		res.Res.MFlups, res.Res.Mass/float64(L*L*2))

	// Velocity-magnitude map (x-y plane): the primary vortex center sits
	// slightly above and right of the cavity center at Re=100.
	m := lattice.D3Q19()
	f := res.Res.Field
	fc := make([]float64, m.Q)
	var umax float64
	u := make([][]float64, L)
	for ix := 0; ix < L; ix++ {
		u[ix] = make([]float64, L)
		for iy := 0; iy < L; iy++ {
			f.Cell(ix, iy, 0, fc)
			rho, jx, jy, jz := m.Moments(fc)
			ux, uy, uz := jx/rho, jy/rho, jz/rho
			u[ix][iy] = math.Sqrt(ux*ux + uy*uy + uz*uz)
			if u[ix][iy] > umax {
				umax = u[ix][iy]
			}
		}
	}
	shades := " .:-=+*#%@"
	fmt.Println("  |u| (lid slides -> along the top; walls elsewhere):")
	for iy := L - 1; iy >= 0; iy -= 2 {
		var b strings.Builder
		b.WriteString("  |")
		for ix := 0; ix < L; ix++ {
			lvl := int(u[ix][iy] / umax * float64(len(shades)-1))
			b.WriteByte(shades[lvl])
		}
		b.WriteString("|")
		fmt.Println(b.String())
	}
	fmt.Println("  +" + strings.Repeat("-", L) + "+")

	// Centerline validation against the reference tables.
	fmt.Println("\n  u/U along the vertical centerline vs Hou et al. (Re=100):")
	fmt.Printf("  %-8s %-10s %-10s %s\n", "y", "reference", "simulated", "delta")
	for _, p := range physics.CavityRefU(re) {
		if p.Coord == 0 || p.Coord == 1 {
			continue
		}
		got := physics.InterpProfile(res.YU, res.U, 0, 1, p.Coord)
		fmt.Printf("  %-8.4f %-10.5f %-10.5f %+.4f\n", p.Coord, p.Value, got, got-p.Value)
	}
	eu, ev, err := res.CompareCavity(re)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  max deviation: u %.2f%%, v %.2f%% of lid speed (Hou et al. report ~1%% at 256^2)\n",
		100*eu, 100*ev)

	// The collision-operator axis: at Re=1000 the cavity needs tau = 0.51
	// on this resolution — past BGK's stability wall. TRT splits the
	// even/odd relaxation rates (magic Lambda = 1/4) and runs it stably;
	// lbmvalidate's cavity-re1000 check validates the converged profiles
	// against Ghia et al. at L=64 within 3%.
	fmt.Println("\nRe=1000 at tau=0.51 (under-resolved, L=32): the operator axis")
	for _, spec := range []collision.Spec{{}, {Kind: collision.TRT}} {
		stab, err := physics.RunCavity(physics.CavityConfig{
			L: 32, Re: 1000, Steps: 4000, Collision: spec,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, _, cmpErr := stab.CompareCavity(1000); cmpErr != nil {
			fmt.Printf("  %-16s DIVERGED (%v)\n", spec, cmpErr)
			continue
		}
		fmt.Printf("  %-16s stable: mass %.6f per cell after %d steps\n",
			spec, stab.Res.Mass/float64(32*32*2), stab.Steps)
	}
}
