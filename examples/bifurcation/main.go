// Bifurcation: the sparse-geometry subsystem end to end. The demo builds
// the Y-shaped vessel mask (geom.Bifurcation — a parent tube splitting
// into two daughter branches, ~95% of the bounding box solid), then
// integrates the same flow twice on an 8-rank slab: once with the classic
// equal-extent decomposition and dense traversal, once with fluid-
// balanced cut placement and sparse row-run traversal. The fluid-cell
// spread across ranks and the fluid-normalized Mflup/s show why arterial
// geometries need both layers — equal volumes are not equal work, and
// visiting solid cells is not work at all. The same mask feeds
// `lbmbench -exp balance -real` and BenchmarkSparseStep.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)

	n := grid.Dims{NX: 96, NY: 48, NZ: 48}
	mask := geom.Bifurcation(n, 0.1*float64(n.NY))
	fmt.Printf("Bifurcation mask: %v box, %d fluid cells (%.1f%% solid)\n\n",
		n, mask.Fluids(), 100*float64(mask.Solids())/float64(n.Cells()))

	for _, c := range []struct {
		label   string
		balance core.Balance
		sparse  bool
	}{
		{"volume cuts, dense traversal", core.BalanceVolume, false},
		{"fluid cuts,  sparse traversal", core.BalanceFluid, true},
	} {
		res, err := core.Run(core.Config{
			Model: lattice.D3Q19(), N: n, Tau: 0.8, Steps: 50,
			Opt: core.OptSIMD, Ranks: 8, Decomp: [3]int{8, 1, 1}, Threads: 2,
			GhostDepth: 1, Solid: mask,
			Balance: c.balance, Sparse: c.sparse, Observe: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		perRank := make([]float64, len(res.Observations))
		for i, o := range res.Observations {
			perRank[i] = float64(o.FluidCells)
		}
		s := metrics.Summarize(perRank)
		fmt.Printf("%s\n", c.label)
		fmt.Printf("  fluid/rank min %.0f  median %.0f  max %.0f  (imbalance %.2fx)\n",
			s.Min, s.Median, s.Max, s.Max/s.Min)
		fmt.Printf("  %.2f MFlup/s, wall %v\n\n", res.MFlups, res.WallTime)
	}
}
