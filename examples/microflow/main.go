// Microflow: the paper's motivating use case — flows beyond the continuum
// regime. This example sweeps the Knudsen number of a microchannel-like
// shear flow, shows which regimes conventional Navier-Stokes CFD covers,
// picks the appropriate lattice per regime, and demonstrates that the
// higher-order D3Q39 model contains D3Q19's hydrodynamics: with relaxation
// times matched to one physical viscosity, both lattices measure the same
// shear-wave decay.
package main

import (
	"fmt"
	"log"

	"repro/internal/grid"
	"repro/internal/lattice"
	"repro/internal/physics"
)

func main() {
	log.SetFlags(0)

	const L = 32 // channel width in lattice units
	fmt.Println("Knudsen sweep for a channel of width", L, "lattice units:")
	fmt.Printf("%-10s %-16s %-14s %-8s\n", "Kn", "regime", "NS valid?", "model")
	for _, kn := range []float64{0.0005, 0.005, 0.05, 0.2, 1.0, 20} {
		m := physics.ModelForKnudsen(kn)
		fmt.Printf("%-10.4f %-16s %-14v %-8s\n",
			kn, physics.ClassifyKnudsen(kn), physics.NavierStokesValid(kn), m.Name)
	}

	// Matched-viscosity comparison: both lattices must reproduce
	// ν = c_s²(τ−½) for the same physical ν, despite different c_s.
	n := grid.Dims{NX: L, NY: 6, NZ: 6}
	nu := 0.08
	fmt.Printf("\nShear-wave viscosity at matched nu=%.3f (80 steps):\n", nu)
	fmt.Printf("%-8s %-8s %-12s %-12s %-8s\n", "model", "tau", "nu measured", "nu theory", "error")
	for _, m := range []*lattice.Model{lattice.D3Q19(), lattice.D3Q39()} {
		tau := m.TauForViscosity(nu)
		res, err := physics.ShearWaveViscosity(m, n, tau, 80, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-8.4f %-12.5f %-12.5f %.2f%%\n",
			m.Name, tau, res.NuMeasured, res.NuTheory, 100*res.RelError)
	}

	// At finite Kn, the D3Q39's relaxation time stays near the stable
	// range while representing a much more rarefied flow.
	fmt.Println("\nRelaxation times for finite-Kn channel flow (D3Q39):")
	fmt.Printf("%-8s %-10s %-12s\n", "Kn", "tau", "regime")
	q39 := lattice.D3Q39()
	for _, kn := range []float64{0.01, 0.05, 0.1, 0.3} {
		tau := physics.TauForKnudsen(q39, kn, L)
		fmt.Printf("%-8.2f %-10.4f %-12s\n", kn, tau, physics.ClassifyKnudsen(kn))
	}
	fmt.Println("\nThe D3Q39 model's 3rd-order equilibrium keeps the higher kinetic")
	fmt.Println("moments (§II, Eq. 3), which is what extends validity into the")
	fmt.Println("transition regime — at double the memory traffic per cell (Table II).")
}
