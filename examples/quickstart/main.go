// Quickstart: run a small Taylor-Green vortex on the standard D3Q19
// lattice through the public API, verify the viscosity against theory, and
// report the paper's MFlup/s metric.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	log.SetFlags(0)

	n := repro.Dims{NX: 32, NY: 32, NZ: 8}
	model := repro.D3Q19()
	tau := 0.8
	steps := 120
	u0 := 0.01
	kx := 2 * math.Pi / float64(n.NX)
	ky := 2 * math.Pi / float64(n.NY)

	res, err := repro.Run(repro.Config{
		Model: model, N: n, Tau: tau, Steps: steps,
		Opt: repro.OptSIMD, Ranks: 2, Threads: 2, GhostDepth: 1,
		Init: func(ix, iy, iz int) (rho, ux, uy, uz float64) {
			x, y := kx*float64(ix), ky*float64(iy)
			return 1, u0 * math.Cos(x) * math.Sin(y), -u0 * math.Sin(x) * math.Cos(y), 0
		},
		KeepField: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Kinetic energy after `steps` steps vs the analytic Taylor-Green decay
	// E(t) = E(0)·exp(−2ν(kx²+ky²)t) with ν = c_s²(τ−½).
	var energy float64
	fc := make([]float64, model.Q)
	for ix := 0; ix < n.NX; ix++ {
		for iy := 0; iy < n.NY; iy++ {
			for iz := 0; iz < n.NZ; iz++ {
				res.Field.Cell(ix, iy, iz, fc)
				rho, jx, jy, jz := model.Moments(fc)
				energy += (jx*jx + jy*jy + jz*jz) / (2 * rho)
			}
		}
	}
	e0 := u0 * u0 / 4 * float64(n.Cells()) // mean of cos²sin² patterns
	nu := model.Viscosity(tau)
	want := e0 * math.Exp(-2*nu*(kx*kx+ky*ky)*float64(steps))

	fmt.Printf("Taylor-Green vortex, %s on %s, tau=%.2f\n", model.Name, n, tau)
	fmt.Printf("  performance: %.2f MFlup/s (wall %v)\n", res.MFlups, res.WallTime)
	fmt.Printf("  kinetic energy: %.6e (analytic %.6e, dev %.2f%%)\n",
		energy, want, 100*math.Abs(energy-want)/want)
	fmt.Printf("  mass conservation: %.12f per cell\n", res.Mass/float64(n.Cells()))
}
