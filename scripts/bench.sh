#!/bin/sh
# bench.sh — the closed-loop benchmark: fit perfsim's coefficients to an
# observed sweep, auto-tune the fixed scenario set with the fitted model,
# and record default-vs-tuned MFlup/s to BENCH_10.json. CI runs this and
# keeps the outputs as artifacts; run it locally to refresh the committed
# record after a performance-relevant change.
#
# Usage: scripts/bench.sh [outdir]   (default: repo root)
set -e

cd "$(dirname "$0")/.."
out="${1:-.}"
mkdir -p "$out"

go run ./cmd/lbmbench -exp fit -steps 10 -json "$out/fit.json"
go run ./cmd/lbmbench -exp bench -fit "$out/fit.json" -steps 20 -json "$out/BENCH_10.json"
